package rind

import (
	"ollock/internal/obs"
)

// closeReporter is implemented by the in-package indicators whose Close
// cannot otherwise tell "already closed" (no transition) apart from
// "closed with surplus" (transition, not acquired); the instrumented
// wrapper counts close events per transition, matching the C-SNZI's
// internal accounting.
type closeReporter interface {
	Indicator
	closeReport() (transitioned, acquired bool)
}

// Instrument attaches an obs.Stats block to an indicator, returning the
// indicator to use in its place. It is the single point where csnzi.*
// event counting joins the indicator layer:
//
//   - A nil stats block returns ind unchanged (zero-overhead-off).
//   - The CSNZI adapter routes the block into the C-SNZI itself, whose
//     internal accounting (root vs. tree arrivals, per-retry CAS
//     counts) is exact and predates this layer.
//   - Central and Sharded are wrapped with a decorator that emits the
//     same csnzi.* counter names, so snapshots are comparable across
//     indicators: direct/gate arrivals count as csnzi.arrive.root,
//     sharded slot arrivals as csnzi.arrive.tree, failures as
//     csnzi.arrive.fail, and open/close transitions as csnzi.open and
//     csnzi.close. csnzi.cas.retry stays zero for them (their retry
//     loops are not instrumented); see ALGORITHMS.md.
//
// Instrument must be called before the indicator is shared between
// goroutines.
func Instrument(ind Indicator, st *obs.Stats) Indicator {
	if st == nil || ind == nil {
		return ind
	}
	switch x := ind.(type) {
	case *CSNZI:
		x.cs.SetStats(st)
		return x
	case closeReporter:
		return &instrumented{inner: x, st: st}
	default:
		return ind
	}
}

// instrumented decorates a non-C-SNZI indicator with csnzi.*-named
// event counting.
type instrumented struct {
	inner closeReporter
	st    *obs.Stats
}

func (w *instrumented) count(lc *obs.Local, e obs.Event, id int) {
	if lc != nil {
		lc.Inc(e)
		return
	}
	w.st.Inc(e, id)
}

// Arrive implements Indicator.
func (w *instrumented) Arrive(id int) Ticket { return w.ArriveLocal(id, nil) }

// ArriveLocal implements Indicator.
func (w *instrumented) ArriveLocal(id int, lc *obs.Local) Ticket {
	t := w.inner.ArriveLocal(id, nil)
	switch {
	case !t.Arrived():
		w.count(lc, obs.CSNZIArriveFail, id)
	case t.kind == ticketSlot:
		w.count(lc, obs.CSNZIArriveTree, id)
	default:
		w.count(lc, obs.CSNZIArriveRoot, id)
	}
	return t
}

// Depart implements Indicator.
func (w *instrumented) Depart(t Ticket) bool { return w.inner.Depart(t) }

// Query implements Indicator.
func (w *instrumented) Query() (nonzero, open bool) { return w.inner.Query() }

// Close implements Indicator.
func (w *instrumented) Close() bool {
	transitioned, acquired := w.inner.closeReport()
	if transitioned {
		w.st.Inc(obs.CSNZIClose, 0)
	}
	return acquired
}

// CloseIfEmpty implements Indicator.
func (w *instrumented) CloseIfEmpty() bool {
	if w.inner.CloseIfEmpty() {
		w.st.Inc(obs.CSNZIClose, 0)
		return true
	}
	return false
}

// Open implements Indicator.
func (w *instrumented) Open() {
	w.inner.Open()
	w.st.Inc(obs.CSNZIOpen, 0)
}

// OpenWithArrivals implements Indicator.
func (w *instrumented) OpenWithArrivals(cnt int, close bool) {
	w.inner.OpenWithArrivals(cnt, close)
	w.st.Inc(obs.CSNZIOpen, 0)
}

// DirectTicket implements Indicator.
func (w *instrumented) DirectTicket() Ticket { return w.inner.DirectTicket() }

// TradeToRoot implements Indicator.
func (w *instrumented) TradeToRoot(t Ticket) Ticket { return w.inner.TradeToRoot(t) }

// SoleDirect implements Indicator.
func (w *instrumented) SoleDirect() bool { return w.inner.SoleDirect() }

// TryUpgrade implements Indicator.
func (w *instrumented) TryUpgrade() bool { return w.inner.TryUpgrade() }
