package rind

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"ollock/internal/atomicx"
	"ollock/internal/obs"
	"ollock/internal/park"
)

// Sharded is a closable read indicator built from cache-line-padded
// per-proc ingress/egress counter pairs behind one closable gate word —
// the "ingress-egress" point of BRAVO's read-indicator taxonomy, made
// closable so the OLL locks can use it.
//
// Readers stripe across slots: an arrival CASes its slot's ingress
// counter up, a departure fetch-adds the slot's egress counter. Under a
// read-mostly workload distinct procs touch distinct cache lines and
// never agree on anything — the same non-communication the C-SNZI tree
// buys, without the tree's propagation logic, at the price of writers
// summing every slot.
//
// # Protocol
//
// Gate word: bit 63 = closed, bit 62 = drained (the closed indicator's
// surplus has provably reached zero; claimed by exactly one CAS), bit
// 61 = pending (a multi-step probe or open-transition is in flight),
// bits 31-60 = close-epoch sequence counter (incremented on every open
// transition), low 31 bits = direct-arrival count (OpenWithArrivals
// hand-offs and TradeToRoot transfers).
//
// The epoch counter exists to break an ABA on the drain claim: without
// it, the gate word "closed, direct=0" recurs bit-identically in every
// close epoch, so a departer preempted inside tryDrain between its sum
// and its claim CAS could resume after the owner has Opened and a new
// writer has Closed, succeed the stale CAS, and spuriously hand the
// lock over while new-epoch readers hold slot arrivals. With the epoch
// in the word, a claim CAS formed in epoch N can only succeed while the
// gate is still in epoch N, where the claim is genuine. (The counter
// wraps at 2^30 opens; a claimant would have to stall across exactly
// that many open transitions to alias, the standard seqlock caveat.)
//
// Slot ingress word: bit 63 = sealed, low bits = cumulative arrivals.
// Arrivals CAS the ingress, so sealing a slot (setting bit 63) makes
// further arrivals fail cleanly: a failed arrival never modifies any
// counter, which is what makes drain detection exact.
//
// Closing sets the gate's closed bit, then seals every slot. Any
// thread that sums the slots under a closed gate first helps seal them
// (sealing is an idempotent CAS), so a sum taken under a closed gate
// only ever reads frozen ingress words: per-slot surplus is then
// monotonically nonincreasing, a sum of zero implies the true surplus
// is zero and stays zero. The last counter modification is followed by
// such a sum (the departer's own), so the drain is never missed; the
// drained bit's CAS makes its observation exactly-once.
//
// While the gate is pending — CloseIfEmpty and TryUpgrade probe via
// pending so they can roll back, and Open/OpenWithArrivals reset the
// slot pairs under it — arrivals spin rather than fail, and Close
// waits. Arrive therefore fails iff the indicator is closed, with no
// transient-failure window (a GOLL reader that fails must find a
// closer to queue behind).
type Sharded struct {
	gate  atomicx.PaddedUint64
	slots []shard
	// sealHook, when set, observes committed close transitions (see
	// SetSealHook in describe.go). Nil when tracing is off.
	sealHook func(epoch uint64)
	// pol selects how gate waits and CAS retries pause (nil = the
	// legacy backoff spin); see SetWaitPolicy.
	pol *park.Policy
}

// shard is one ingress/egress pair, alone on its cache line (a proc's
// arrive and depart touch the same line, which that proc mostly owns).
type shard struct {
	_       atomicx.Pad
	ingress atomic.Uint64
	egress  atomic.Uint64
	_       [atomicx.CacheLineSize - 16]byte
}

// Gate word layout.
const (
	gateClosed     = uint64(1) << 63
	gateDrained    = uint64(1) << 62
	gatePending    = uint64(1) << 61
	gateEpochShift = 31
	gateEpochMask  = ((uint64(1) << 30) - 1) << gateEpochShift
	gateEpochInc   = uint64(1) << gateEpochShift
	gateDirectMask = (uint64(1) << 31) - 1
)

// Slot ingress seal flag.
const sealedBit = uint64(1) << 63

// DefaultShards is the default slot count: one per processor, capped.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 32 {
		n = 32
	}
	return n
}

// NewSharded returns an open sharded indicator with zero surplus and
// nshards ingress/egress slots (nshards <= 0 selects DefaultShards).
func NewSharded(nshards int) *Sharded {
	if nshards <= 0 {
		nshards = DefaultShards()
	}
	return &Sharded{slots: make([]shard, nshards)}
}

// SetWaitPolicy routes the indicator's pauses — gate-pending waits and
// CAS retry backoff — through a wait policy (see internal/park). Call
// during lock construction, before the indicator is shared; a nil
// policy (the default) keeps the legacy exponential-backoff spin.
func (s *Sharded) SetWaitPolicy(pol *park.Policy) { s.pol = pol }

func (s *Sharded) slotIndex(id int) int32 {
	// Unsigned reduction: -id would overflow for math.MinInt and leave
	// the remainder negative.
	return int32(uint(id) % uint(len(s.slots)))
}

// Arrive implements Indicator.
func (s *Sharded) Arrive(id int) Ticket { return s.ArriveLocal(id, nil) }

// ArriveLocal implements Indicator. The lc buffer is used only by the
// Instrument wrapper; the raw indicator keeps no counters of its own.
func (s *Sharded) ArriveLocal(id int, _ *obs.Local) Ticket {
	ld := s.pol.Ladder()
	for {
		g := s.gate.Load()
		if g&gateClosed != 0 {
			return Ticket{}
		}
		if g&gatePending != 0 {
			// A probe or open-transition is deciding; wait it out
			// rather than failing (it either commits to closed, making
			// us fail honestly, or finishes open, letting us in).
			ld.Pause()
			continue
		}
		idx := s.slotIndex(id)
		sl := &s.slots[idx]
		for {
			x := sl.ingress.Load()
			if x&sealedBit != 0 {
				break // sealed under us: re-read the gate
			}
			if sl.ingress.CompareAndSwap(x, x+1) {
				return Ticket{kind: ticketSlot, slot: idx}
			}
			ld.Pause()
		}
	}
}

// Depart implements Indicator.
func (s *Sharded) Depart(t Ticket) bool {
	switch t.kind {
	case ticketSlot:
		sl := &s.slots[t.slot]
		sl.egress.Add(1)
		g := s.gate.Load()
		if g&gateClosed == 0 {
			return true
		}
		return !s.tryDrain(g)
	case ticketDirect:
		return s.departDirect()
	default:
		panic("rind: Depart with failed ticket")
	}
}

func (s *Sharded) departDirect() bool {
	ld := s.pol.Ladder()
	for {
		g := s.gate.Load()
		if g&gateDirectMask == 0 {
			panic("rind: direct Depart without matching arrival")
		}
		ng := g - 1
		if s.gate.CompareAndSwap(g, ng) {
			if ng&gateClosed == 0 || ng&gateDirectMask != 0 {
				return true
			}
			return !s.tryDrain(ng)
		}
		ld.Pause()
	}
}

// tryDrain attempts to claim the drained state of a closed gate whose
// word was read as g. It returns true iff this call won the claim (the
// caller owns the write-acquired indicator or must hand it over).
func (s *Sharded) tryDrain(g uint64) bool {
	epoch := g & gateEpochMask
	for {
		if g&gateDrained != 0 || g&gateDirectMask != 0 {
			return false
		}
		if s.sumSealed() != 0 {
			return false
		}
		// The claim CAS re-validates the whole gate word — including the
		// close epoch, so a claim formed before an Open/Close cycle can
		// never land on the new epoch's gate (see the layout comment):
		// if the direct count moved, someone else drained, or the epoch
		// advanced, it fails and the reload re-evaluates.
		if s.gate.CompareAndSwap(g, g|gateDrained) {
			return true
		}
		g = s.gate.Load()
		if g&gateClosed == 0 || g&gateEpochMask != epoch {
			// Reopened, or a later close epoch entirely: this call's
			// drain is no longer ours to claim.
			return false
		}
	}
}

// sumSealed seals every slot (idempotent help: a sum under a closed
// gate must never read a moving ingress) and returns the summed
// surplus. Per slot the egress is read first: with the ingress frozen
// the slot surplus can only be overestimated, never underestimated, so
// a zero sum proves a true — and, closed, permanent — zero surplus.
func (s *Sharded) sumSealed() uint64 {
	var total uint64
	for i := range s.slots {
		sl := &s.slots[i]
		for {
			x := sl.ingress.Load()
			if x&sealedBit != 0 {
				break
			}
			if sl.ingress.CompareAndSwap(x, x|sealedBit) {
				break
			}
		}
		e := sl.egress.Load()
		in := sl.ingress.Load() &^ sealedBit
		total += in - e
	}
	return total
}

func (s *Sharded) unsealSlots() {
	for i := range s.slots {
		sl := &s.slots[i]
		for {
			x := sl.ingress.Load()
			if x&sealedBit == 0 || sl.ingress.CompareAndSwap(x, x&^sealedBit) {
				break
			}
		}
	}
}

// quickSum is the advisory (unsealed, racy) surplus estimate used by
// Query and the CloseIfEmpty pre-check.
func (s *Sharded) quickSum() uint64 {
	var total uint64
	for i := range s.slots {
		sl := &s.slots[i]
		e := sl.egress.Load()
		in := sl.ingress.Load() &^ sealedBit
		total += in - e
	}
	return total
}

// Query implements Indicator. The pending state reports open: a probe
// in flight has not closed anything yet, and callers polling for open
// (GOLL's retry loop, the FOLL writer's pre-close wait) must treat it
// as such.
func (s *Sharded) Query() (nonzero, open bool) {
	g := s.gate.Load()
	return g&gateDirectMask != 0 || s.quickSum() != 0, g&gateClosed == 0
}

// Close implements Indicator.
func (s *Sharded) Close() bool {
	_, acquired := s.closeReport()
	return acquired
}

// closeReport exposes the transition/acquisition split for the
// Instrument wrapper.
func (s *Sharded) closeReport() (transitioned, acquired bool) {
	ld := s.pol.Ladder()
	for {
		g := s.gate.Load()
		if g&gateClosed != 0 {
			return false, false
		}
		if g&gatePending != 0 {
			ld.Pause() // wait out the probe / open-transition
			continue
		}
		if s.gate.CompareAndSwap(g, g|gateClosed) {
			s.sealed(g)
			// Seal and try to claim the drain ourselves. Losing the
			// race (or finding surplus) is fine: the last departer's
			// own sum claims it then.
			return true, s.tryDrain(g | gateClosed)
		}
		ld.Pause()
	}
}

// CloseIfEmpty implements Indicator. The probe takes the gate pending,
// seals and sums, and either commits to closed+drained or rolls back;
// arrivals spin out the pending window instead of failing.
func (s *Sharded) CloseIfEmpty() bool {
	g := s.gate.Load()
	if g&^gateEpochMask != 0 || s.quickSum() != 0 {
		return false
	}
	if !s.gate.CompareAndSwap(g, g|gatePending) {
		return false
	}
	if s.sumSealed() == 0 && s.gate.CompareAndSwap(g|gatePending, g|gateClosed|gateDrained) {
		s.sealed(g)
		return true // slots stay sealed while closed
	}
	// Surplus appeared (a straddling arrival, or a TradeToRoot bumped
	// the direct count): roll back. Unseal before publishing the open
	// gate — arrivals check the gate before touching a slot.
	s.unsealSlots()
	s.clearPending()
	return false
}

func (s *Sharded) clearPending() {
	for {
		g := s.gate.Load()
		if s.gate.CompareAndSwap(g, g&^gatePending) {
			return
		}
	}
}

// Open implements Indicator.
func (s *Sharded) Open() {
	s.openWithArrivals(0, false)
}

// OpenWithArrivals implements Indicator.
func (s *Sharded) OpenWithArrivals(cnt int, close bool) {
	if cnt < 0 || uint64(cnt) > gateDirectMask {
		panic(fmt.Sprintf("rind: OpenWithArrivals count %d out of range", cnt))
	}
	s.openWithArrivals(cnt, close)
}

func (s *Sharded) openWithArrivals(cnt int, close bool) {
	g := s.gate.Load()
	if g&^gateEpochMask != gateClosed|gateDrained {
		panic(fmt.Sprintf("rind: Open on %s", s.describe(g)))
	}
	epoch := g & gateEpochMask
	w := uint64(cnt)
	if close {
		if w == 0 {
			return // identity: stays write-acquired
		}
		// Handed-off direct arrivals under a still-closed gate; the
		// slots stay sealed (so their sums cannot move) and the last
		// direct departer re-drains, all within the same close epoch.
		s.gate.Store(gateClosed | epoch | w)
		return
	}
	// Open transition: bump the close epoch, retiring any drain claim
	// still in flight from the epoch that just ended, and reset the
	// slot pairs under the pending state so concurrent closers wait and
	// arrivals spin (a plain reset would race a closer's seals). The
	// owner of a drained indicator is the only possible gate writer
	// here, so plain stores suffice for the gate itself. Per slot the
	// egress resets before the ingress: the ingress store also unseals,
	// and a stale arriver may CAS the slot the moment it is unsealed.
	epoch = (epoch + gateEpochInc) & gateEpochMask
	s.gate.Store(epoch | gatePending)
	for i := range s.slots {
		sl := &s.slots[i]
		sl.egress.Store(0)
		sl.ingress.Store(0)
	}
	s.gate.Store(epoch | w)
}

// DirectTicket implements Indicator.
func (s *Sharded) DirectTicket() Ticket { return directTicket }

// TradeToRoot implements Indicator: the held slot arrival moves into
// the gate's direct count (direct count up first, then the slot
// departure — the order keeps the total surplus visibly nonzero, so a
// concurrent summer can never claim a spurious drain).
func (s *Sharded) TradeToRoot(t Ticket) Ticket {
	switch t.kind {
	case ticketDirect:
		return t
	case ticketSlot:
	default:
		panic("rind: TradeToRoot with failed ticket")
	}
	ld := s.pol.Ladder()
	for {
		g := s.gate.Load()
		if g&gateDirectMask == gateDirectMask {
			panic("rind: direct-arrival count overflow")
		}
		if s.gate.CompareAndSwap(g, g+1) {
			break
		}
		ld.Pause()
	}
	s.slots[t.slot].egress.Add(1)
	return directTicket
}

// SoleDirect implements Indicator.
func (s *Sharded) SoleDirect() bool {
	return s.gate.Load()&gateDirectMask == 1 && s.quickSum() == 0
}

// TryUpgrade implements Indicator: probe via pending (stalling
// arrivals), seal and sum, and either commit — consuming the caller's
// direct arrival — or roll back.
func (s *Sharded) TryUpgrade() bool {
	ld := s.pol.Ladder()
	var g uint64
	for {
		g = s.gate.Load()
		if g&gateDirectMask != 1 {
			return false
		}
		if g&gatePending != 0 {
			ld.Pause()
			continue
		}
		if s.gate.CompareAndSwap(g, g|gatePending) {
			break
		}
		ld.Pause()
	}
	wasClosed := g&gateClosed != 0
	if s.sumSealed() == 0 && s.gate.CompareAndSwap(g|gatePending, g&gateEpochMask|gateClosed|gateDrained) {
		s.sealed(g)
		return true // sole arrival consumed; write-acquired
	}
	if !wasClosed {
		// Our probe did the sealing; a closed gate's seals belong to
		// the closer and stay.
		s.unsealSlots()
	}
	s.clearPending()
	return false
}

func (s *Sharded) describe(g uint64) string {
	state := "OPEN"
	if g&gateClosed != 0 {
		state = "CLOSED"
	}
	if g&gatePending != 0 {
		state += "+PENDING"
	}
	if g&gateDrained != 0 {
		state += "+DRAINED"
	}
	return fmt.Sprintf("Sharded{state=%s epoch=%d direct=%d slots=%d}",
		state, (g&gateEpochMask)>>gateEpochShift, g&gateDirectMask, s.quickSum())
}

// Shards returns the slot count (diagnostic).
func (s *Sharded) Shards() int { return len(s.slots) }
