package rind

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ollock/internal/csnzi"
	"ollock/internal/obs"
)

// implsUnderTest returns fresh instances of every indicator, including
// two C-SNZI configurations: the default (sequentially, every arrival
// takes the direct root path) and a zero-retry one (every arrival is
// forced through the leaf tree), so both ticket flavours are exercised.
func implsUnderTest() map[string]Indicator {
	return map[string]Indicator{
		"csnzi":      NewCSNZI(),
		"csnzi-tree": NewCSNZI(csnzi.WithLeaves(4), csnzi.WithDirectRetries(0)),
		"central":    NewCentral(),
		"sharded":    NewSharded(4),
		"sharded-1":  NewSharded(1),
	}
}

// model is the naive reference: a surplus, a closed flag, and the
// outstanding tickets classified by directness (SoleDirect attributes
// the surplus, so the model must track where each arrival landed —
// taken from the real ticket the implementation returned).
type model struct {
	surplus int
	closed  bool
	direct  int // outstanding tickets with Direct() true
	other   int
}

// TestIndicatorPropertySequential drives every implementation plus the
// reference model through randomized sequential op traces and asserts
// identical observable behavior: arrive fails iff closed, Depart
// reports the drain iff it takes a closed indicator to zero, Close and
// CloseIfEmpty acquire iff open-and-empty, Query mirrors the model
// state, and TryUpgrade succeeds iff the surplus is exactly one direct
// arrival.
func TestIndicatorPropertySequential(t *testing.T) {
	for name, ind := range implsUnderTest() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				runTrace(t, ind, rand.New(rand.NewSource(seed)), 4000)
				// Fresh instance per seed.
				ind = implsUnderTest()[name]
			}
		})
	}
}

func runTrace(t *testing.T, ind Indicator, rng *rand.Rand, steps int) {
	t.Helper()
	var m model
	var tickets []Ticket
	take := func() (int, Ticket) {
		i := rng.Intn(len(tickets))
		return i, tickets[i]
	}
	drop := func(i int) {
		tickets[i] = tickets[len(tickets)-1]
		tickets = tickets[:len(tickets)-1]
	}
	classify := func(tk Ticket, delta int) {
		if tk.Direct() {
			m.direct += delta
		} else {
			m.other += delta
		}
	}
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); op {
		case 0, 1, 2: // arrive
			tk := ind.Arrive(rng.Intn(8))
			if tk.Arrived() != !m.closed {
				t.Fatalf("step %d: Arrive succeeded=%v, model closed=%v", step, tk.Arrived(), m.closed)
			}
			if tk.Arrived() {
				m.surplus++
				classify(tk, +1)
				tickets = append(tickets, tk)
			}
		case 3, 4, 5: // depart
			if len(tickets) == 0 {
				continue
			}
			i, tk := take()
			drop(i)
			m.surplus--
			classify(tk, -1)
			wantAlive := !(m.closed && m.surplus == 0)
			if got := ind.Depart(tk); got != wantAlive {
				t.Fatalf("step %d: Depart=%v, want %v (closed=%v surplus=%d)", step, got, wantAlive, m.closed, m.surplus)
			}
		case 6: // close or closeIfEmpty
			wantAcq := !m.closed && m.surplus == 0
			if rng.Intn(2) == 0 {
				if got := ind.Close(); got != wantAcq {
					t.Fatalf("step %d: Close=%v, want %v (closed=%v surplus=%d)", step, got, wantAcq, m.closed, m.surplus)
				}
				m.closed = true
			} else {
				if got := ind.CloseIfEmpty(); got != wantAcq {
					t.Fatalf("step %d: CloseIfEmpty=%v, want %v", step, got, wantAcq)
				}
				if wantAcq {
					m.closed = true
				}
			}
		case 7: // open / openWithArrivals (legal only when write-acquired)
			if !(m.closed && m.surplus == 0) {
				continue
			}
			cnt := rng.Intn(4)
			close := rng.Intn(2) == 0
			if cnt == 0 && !close {
				ind.Open()
			} else {
				ind.OpenWithArrivals(cnt, close)
			}
			m.closed = close
			m.surplus += cnt
			m.direct += cnt
			for j := 0; j < cnt; j++ {
				tickets = append(tickets, ind.DirectTicket())
			}
		case 8: // query + soleDirect
			nonzero, open := ind.Query()
			if nonzero != (m.surplus > 0) || open != !m.closed {
				t.Fatalf("step %d: Query=(%v,%v), model surplus=%d closed=%v", step, nonzero, open, m.surplus, m.closed)
			}
			wantSole := m.direct == 1 && m.other == 0
			if got := ind.SoleDirect(); got != wantSole {
				t.Fatalf("step %d: SoleDirect=%v, want %v (direct=%d other=%d)", step, got, wantSole, m.direct, m.other)
			}
		case 9: // tradeToRoot + tryUpgrade
			if len(tickets) > 0 && rng.Intn(2) == 0 {
				i, tk := take()
				nt := ind.TradeToRoot(tk)
				if !nt.Direct() {
					t.Fatalf("step %d: TradeToRoot ticket not direct", step)
				}
				classify(tk, -1)
				m.direct++
				tickets[i] = nt
				continue
			}
			wantUp := m.direct == 1 && m.other == 0
			if got := ind.TryUpgrade(); got != wantUp {
				t.Fatalf("step %d: TryUpgrade=%v, want %v (direct=%d other=%d)", step, got, wantUp, m.direct, m.other)
			}
			if wantUp {
				// The sole direct arrival is consumed: write-acquired.
				m = model{closed: true}
				tickets = tickets[:0]
			}
		}
	}
}

// TestShardedDrainExactlyOnce closes the indicator against a churn of
// concurrent readers and checks the hand-off accounting: per cycle,
// ownership is observed exactly once — either the Close acquired
// outright or exactly one Depart reported the drain.
func TestShardedDrainExactlyOnce(t *testing.T) {
	const readers = 8
	const cycles = 2000
	ind := NewSharded(4)
	var drains atomic.Int64 // drain signals observed by departers
	var handoff = make(chan struct{}, readers)
	var stop atomic.Bool

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !stop.Load() {
				tk := ind.Arrive(id)
				if !tk.Arrived() {
					continue
				}
				if !ind.Depart(tk) {
					drains.Add(1)
					handoff <- struct{}{}
				}
			}
		}(r)
	}

	var expectDrains int64
	for c := 0; c < cycles; c++ {
		if !ind.Close() {
			<-handoff // exactly one departer must signal
			expectDrains++
		}
		// Write-acquired: the surplus must be (and stay) zero.
		if nonzero, open := ind.Query(); nonzero || open {
			t.Fatalf("cycle %d: Query=(%v,%v) while write-acquired", c, nonzero, open)
		}
		ind.Open()
	}
	stop.Store(true)
	// Unblock readers that are mid-arrive on a closed gate.
	wg.Wait()
	if got := drains.Load(); got != expectDrains {
		t.Fatalf("observed %d drain signals, want %d", got, expectDrains)
	}
	if len(handoff) != 0 {
		t.Fatalf("%d surplus hand-off signals", len(handoff))
	}
}

// TestShardedCloseIfEmptyConcurrent races the probing writer fast path
// against reader churn: mutual exclusion between a successful
// CloseIfEmpty and any reader holding an arrival is checked with a
// shared variable, and the probe's rollback must let readers through
// again (no stuck-pending livelock).
func TestShardedCloseIfEmptyConcurrent(t *testing.T) {
	const readers = 6
	ind := NewSharded(3)
	var inCrit atomic.Int64 // readers inside the "critical section"
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !stop.Load() {
				tk := ind.Arrive(id)
				if !tk.Arrived() {
					continue
				}
				inCrit.Add(1)
				inCrit.Add(-1)
				if !ind.Depart(tk) {
					// The writer closed under us and we drained it:
					// hand back by reopening (we own it now).
					ind.Open()
				}
			}
		}(r)
	}
	acquired := 0
	for i := 0; i < 200000 && acquired < 500; i++ {
		if ind.CloseIfEmpty() {
			acquired++
			if n := inCrit.Load(); n != 0 {
				t.Fatalf("CloseIfEmpty acquired with %d readers inside", n)
			}
			ind.Open()
		}
	}
	stop.Store(true)
	wg.Wait()
	if acquired == 0 {
		t.Fatal("CloseIfEmpty never acquired under churn")
	}
}

// TestShardedUpgradeConcurrent stresses TradeToRoot/TryUpgrade against
// reader churn: at most one upgrader can win per drained cycle, and a
// failed upgrader must still hold its (now direct) arrival.
func TestShardedUpgradeConcurrent(t *testing.T) {
	const procs = 6
	ind := NewSharded(3)
	var writeOwners atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < procs; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !stop.Load() {
				tk := ind.Arrive(id)
				if !tk.Arrived() {
					continue
				}
				tk = ind.TradeToRoot(tk)
				if ind.TryUpgrade() {
					if n := writeOwners.Add(1); n != 1 {
						t.Errorf("%d simultaneous write owners", n)
					}
					writeOwners.Add(-1)
					ind.Open()
					continue
				}
				if !ind.Depart(tk) {
					ind.Open()
				}
			}
		}(r)
	}
	defer wg.Wait()
	defer stop.Store(true)
	// Let the churn run for a fixed number of successful upgrades
	// observed indirectly: just give it some iterations.
	for i := 0; i < 200000; i++ {
		if stop.Load() {
			break
		}
	}
}

// TestInstrumentCounters checks that the decorator emits the csnzi.*
// names for the non-C-SNZI indicators, and that the C-SNZI adapter
// routes the block into the tree itself.
func TestInstrumentCounters(t *testing.T) {
	for _, name := range []string{"central", "sharded", "csnzi"} {
		t.Run(name, func(t *testing.T) {
			st := obs.New(obs.WithScopes("csnzi"))
			var ind Indicator
			switch name {
			case "central":
				ind = Instrument(NewCentral(), st)
			case "sharded":
				ind = Instrument(NewSharded(2), st)
			case "csnzi":
				ind = Instrument(NewCSNZI(), st)
			}
			tk := ind.Arrive(0)
			ind.Depart(tk)
			if !ind.CloseIfEmpty() {
				t.Fatal("CloseIfEmpty on empty open indicator failed")
			}
			tk2 := ind.Arrive(1) // must fail and count
			if tk2.Arrived() {
				t.Fatal("Arrive succeeded while closed")
			}
			ind.Open()
			if !ind.Close() { // empty open close: transition + acquire
				t.Fatal("Close on empty open indicator failed")
			}
			ind.OpenWithArrivals(2, true)
			d := ind.DirectTicket()
			ind.Depart(d)
			if ind.Depart(d) {
				t.Fatal("last direct depart of closed indicator did not report drain")
			}
			ind.Open()

			sn := st.Snapshot()
			arrive := sn.Counter("csnzi.arrive.root") + sn.Counter("csnzi.arrive.tree")
			if arrive != 1 {
				t.Fatalf("arrive count = %d, want 1 (counters: %v)", arrive, sn.Counters)
			}
			if got := sn.Counter("csnzi.arrive.fail"); got != 1 {
				t.Fatalf("csnzi.arrive.fail = %d, want 1", got)
			}
			if got := sn.Counter("csnzi.close"); got != 2 {
				t.Fatalf("csnzi.close = %d, want 2", got)
			}
			// Open, OpenWithArrivals, Open: three open events.
			if got := sn.Counter("csnzi.open"); got != 3 {
				t.Fatalf("csnzi.open = %d, want 3", got)
			}
		})
	}
}

// TestShardedTicketFits keeps the Ticket value small enough for the
// zero-alloc read path (it is copied through the lock Proc structs).
func TestShardedShards(t *testing.T) {
	if got := NewSharded(0).Shards(); got != DefaultShards() {
		t.Fatalf("default shards = %d, want %d", got, DefaultShards())
	}
	if got := NewSharded(7).Shards(); got != 7 {
		t.Fatalf("shards = %d, want 7", got)
	}
}
