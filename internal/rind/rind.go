// Package rind defines the closable read-indicator contract the OLL
// locks are built on, and its three implementations.
//
// The paper's core move is compositional: "take a reader-writer lock
// and replace the central reader count with a C-SNZI". BRAVO (Dice &
// Kogan, ATC '19) generalizes the observation — a reader-writer lock
// design is largely a choice of *read indicator*: the mechanism through
// which readers announce and retract their presence and writers block
// new readers and detect the old ones draining. This package makes that
// choice a first-class axis of the module:
//
//   - CSNZI: the paper's closable scalable nonzero indicator tree
//     (package csnzi) — the default, and the subject of the paper.
//   - Central: a single CAS-able counter word (central.Lockword), the
//     degenerate indicator the paper's introduction criticizes; kept as
//     the ablation floor.
//   - Sharded: cache-line-padded per-proc ingress/egress counter pairs
//     behind a closable gate word, in the style of BRAVO's
//     ingress-egress taxonomy — readers stripe across slots, writers
//     seal the slots and sum them.
//
// A closable indicator tracks a surplus (arrivals minus departures) and
// an open/closed state. While closed, Arrive fails without changing the
// surplus, so once a closed indicator's surplus drains to zero it stays
// zero until reopened. The locks map their entire state onto this:
//
//	lock free       = open, surplus 0
//	write-acquired  = closed, surplus 0
//	read-acquired   = surplus > 0 (open, or closed when a writer waits)
//
// Exactly one caller observes each drain: the Depart that takes a
// closed indicator's surplus to zero returns false (all others return
// true), or the Close/CloseIfEmpty/TryUpgrade call that transitions an
// empty indicator reports acquisition. That exactly-once property is
// what lets the locks hand ownership over without further arbitration.
package rind

import (
	"ollock/internal/csnzi"
	"ollock/internal/obs"
)

// Indicator is a closable read indicator. Implementations must be safe
// for concurrent use. The zero state of every implementation returned
// by the package constructors is open with zero surplus.
type Indicator interface {
	// Arrive attempts to increment the surplus. It fails (returns a
	// ticket for which Arrived is false) iff the indicator is closed;
	// a failed arrival never modifies the surplus. The id selects the
	// arrival point (leaf, slot) under contention; pass a stable
	// per-goroutine value.
	Arrive(id int) Ticket

	// ArriveLocal is Arrive with event accounting routed through the
	// caller's per-proc buffer (obs.Local). A nil lc falls back to the
	// indicator's shared stats block, if any.
	ArriveLocal(id int, lc *obs.Local) Ticket

	// Depart decrements the surplus. It returns false iff the
	// resulting state is closed with zero surplus — the caller was the
	// last departer out of a closed indicator and must hand the
	// guarded resource to the closer. The ticket must come from a
	// successful Arrive (or be a DirectTicket matched by an
	// OpenWithArrivals), each ticket departing at most once.
	Depart(t Ticket) bool

	// Query returns whether the indicator has a surplus and whether it
	// is open. Both answers can be stale by the time they return.
	Query() (nonzero, open bool)

	// Close transitions the indicator from open to closed. It returns
	// true iff the closer thereby acquired the indicator outright:
	// the transition happened with the surplus zero (and, arrivals now
	// failing, it stays zero). Closing an already-closed indicator
	// returns false and changes nothing.
	Close() bool

	// CloseIfEmpty closes the indicator only if it is open with zero
	// surplus, reporting whether it did. This is the writer fast path.
	CloseIfEmpty() bool

	// Open reopens the indicator. It requires (and panics otherwise)
	// that the indicator is closed with zero surplus.
	Open()

	// OpenWithArrivals atomically opens the indicator, performs cnt
	// direct arrivals, and, if close is set, closes it again. The
	// matching departures must use DirectTicket, and must not begin
	// until OpenWithArrivals returns. Like Open it requires the
	// indicator to be closed with zero surplus.
	OpenWithArrivals(cnt int, close bool)

	// DirectTicket constructs the ticket for a departure matching an
	// OpenWithArrivals arrival (a reader woken by a releasing writer
	// that pre-arrived on its behalf).
	DirectTicket() Ticket

	// TradeToRoot converts the ticket of a held arrival into a direct
	// ticket, so that SoleDirect/TryUpgrade can attribute the surplus.
	// The caller must hold a successful arrival. Direct tickets are
	// returned unchanged.
	TradeToRoot(t Ticket) Ticket

	// SoleDirect reports whether exactly one direct arrival and no
	// other surplus exists — the probe behind write upgrade (§3.2.1):
	// a caller holding a direct ticket learns whether it is the only
	// thread with an arrival. Advisory: the answer can be stale.
	SoleDirect() bool

	// TryUpgrade attempts to atomically transition from "exactly one
	// direct arrival, no other surplus" to "closed with zero surplus"
	// (write-acquired), regardless of the current open/closed state.
	// On success the caller's direct arrival is consumed (do not
	// Depart it). It fails if any other arrival exists.
	TryUpgrade() bool
}

// Factory constructs indicators. FOLL/ROLL hold one indicator per
// ring-pool node, so they take a Factory rather than an Indicator;
// recycled nodes then recycle indicators of any kind.
type Factory func() Indicator

// Ticket kinds. A Ticket is a small value naming where an arrival
// landed; it carries no pointers beyond the C-SNZI node reference.
const (
	ticketFailed uint8 = iota // failed arrival (zero Ticket)
	ticketDirect              // direct arrival (root word / gate word)
	ticketCSNZI               // C-SNZI tree arrival
	ticketSlot                // sharded-indicator slot arrival
)

// Ticket names the arrival point an Arrive landed at. Tickets are
// opaque: obtain them from Arrive or DirectTicket and pass them back to
// Depart (or TradeToRoot) on the same indicator. The zero Ticket is a
// failed arrival.
type Ticket struct {
	cs   csnzi.Ticket // ticketCSNZI: the underlying tree ticket
	slot int32        // ticketSlot: the slot index
	kind uint8
}

// Arrived reports whether the Arrive that produced t succeeded.
func (t Ticket) Arrived() bool { return t.kind != ticketFailed }

// Direct reports whether t departs directly at the central word (root
// or gate).
func (t Ticket) Direct() bool { return t.kind == ticketDirect }

// directTicket is the shared direct ticket value.
var directTicket = Ticket{kind: ticketDirect}

// CSNZIFactory returns a Factory producing C-SNZI-backed indicators
// with the given configuration.
func CSNZIFactory(opts ...csnzi.Option) Factory {
	return func() Indicator { return NewCSNZI(opts...) }
}

// CentralFactory returns a Factory producing centralized single-word
// indicators.
func CentralFactory() Factory {
	return func() Indicator { return NewCentral() }
}

// ShardedFactory returns a Factory producing sharded ingress/egress
// indicators with nshards slots each (nshards <= 0 selects
// DefaultShards).
func ShardedFactory(nshards int) Factory {
	return func() Indicator { return NewSharded(nshards) }
}
