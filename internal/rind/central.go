package rind

import (
	"ollock/internal/central"
	"ollock/internal/obs"
)

// Central is the degenerate centralized read indicator: a single
// CAS-able counter word with a closed bit — exactly the word at the
// heart of the naive centralized lock (it *is* central.Lockword), and
// what a C-SNZI with zero leaves reduces to. Every arrival and
// departure hits the one word; it exists as the ablation floor the
// paper measures the C-SNZI against.
//
// All Central tickets are direct: the word is the root.
type Central struct {
	w central.Lockword
}

// NewCentral returns an open centralized indicator with zero surplus.
func NewCentral() *Central { return &Central{} }

// Arrive implements Indicator.
func (c *Central) Arrive(id int) Ticket {
	if c.w.Arrive() {
		return directTicket
	}
	return Ticket{}
}

// ArriveLocal implements Indicator. The centralized word does its own
// accounting-free arrivals; lc is used only by the Instrument wrapper.
func (c *Central) ArriveLocal(id int, _ *obs.Local) Ticket { return c.Arrive(id) }

// Depart implements Indicator.
func (c *Central) Depart(t Ticket) bool {
	if t.kind != ticketDirect {
		panic("rind: Depart with failed ticket")
	}
	return c.w.Depart()
}

// Query implements Indicator.
func (c *Central) Query() (nonzero, open bool) { return c.w.Query() }

// Close implements Indicator.
func (c *Central) Close() bool {
	_, acquired := c.w.Close()
	return acquired
}

// closeReport exposes the transition/acquisition split for the
// Instrument wrapper (close events are counted per transition).
func (c *Central) closeReport() (transitioned, acquired bool) { return c.w.Close() }

// CloseIfEmpty implements Indicator.
func (c *Central) CloseIfEmpty() bool { return c.w.CloseIfEmpty() }

// Open implements Indicator.
func (c *Central) Open() { c.w.Open() }

// OpenWithArrivals implements Indicator.
func (c *Central) OpenWithArrivals(cnt int, close bool) { c.w.OpenWithArrivals(cnt, close) }

// DirectTicket implements Indicator.
func (c *Central) DirectTicket() Ticket { return directTicket }

// TradeToRoot implements Indicator. Central arrivals are already
// direct.
func (c *Central) TradeToRoot(t Ticket) Ticket {
	if t.kind != ticketDirect {
		panic("rind: TradeToRoot with foreign ticket")
	}
	return t
}

// SoleDirect implements Indicator.
func (c *Central) SoleDirect() bool { return c.w.Count() == 1 }

// TryUpgrade implements Indicator.
func (c *Central) TryUpgrade() bool { return c.w.TryUpgrade() }
