package rind

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestAbandonDrainExactlyOnce is the sealed-drain exactness property
// under abandonment, for every indicator kind: a writer closes the
// indicator against a churn of readers that all ABANDON (rather than
// release) their arrivals, and per close cycle exactly one abandoner
// inherits the drain hand-off. This is the accounting the lock-layer
// cancellation paths depend on — a cancelled reader is a departure
// like any other, and the exactly-once hand-off survives any mix of
// cancellations and normal releases.
func TestAbandonDrainExactlyOnce(t *testing.T) {
	for name := range implsUnderTest() {
		t.Run(name, func(t *testing.T) {
			const readers = 8
			const cycles = 1500
			ind := implsUnderTest()[name]
			var inherits atomic.Int64
			handoff := make(chan struct{}, readers)
			var stop atomic.Bool

			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for !stop.Load() {
						tk := ind.Arrive(id)
						if !tk.Arrived() {
							continue
						}
						// Simulated deadline expiry: every arrival is
						// abandoned instead of departed normally.
						if Abandon(ind, tk) {
							inherits.Add(1)
							handoff <- struct{}{}
						}
					}
				}(r)
			}

			var expect int64
			for c := 0; c < cycles; c++ {
				if !ind.Close() {
					<-handoff // exactly one abandoner must inherit
					expect++
				}
				if nonzero, open := ind.Query(); nonzero || open {
					t.Fatalf("cycle %d: Query=(%v,%v) while write-acquired", c, nonzero, open)
				}
				ind.Open()
			}
			stop.Store(true)
			wg.Wait()
			if got := inherits.Load(); got != expect {
				t.Fatalf("observed %d drain inheritances, want %d", got, expect)
			}
			if len(handoff) != 0 {
				t.Fatalf("%d surplus hand-off signals", len(handoff))
			}
		})
	}
}

// TestAbandonMixedWithDepart interleaves abandoning and normally
// departing readers against the closer: the drain must still be
// observed exactly once per cycle regardless of which flavour of
// departure takes the surplus to zero.
func TestAbandonMixedWithDepart(t *testing.T) {
	for name := range implsUnderTest() {
		t.Run(name, func(t *testing.T) {
			const readers = 6
			const cycles = 1000
			ind := implsUnderTest()[name]
			var drains atomic.Int64
			handoff := make(chan struct{}, readers)
			var stop atomic.Bool

			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					abandoner := id%2 == 0
					for !stop.Load() {
						tk := ind.Arrive(id)
						if !tk.Arrived() {
							continue
						}
						var inherited bool
						if abandoner {
							inherited = Abandon(ind, tk)
						} else {
							inherited = !ind.Depart(tk)
						}
						if inherited {
							drains.Add(1)
							handoff <- struct{}{}
						}
					}
				}(r)
			}

			var expect int64
			for c := 0; c < cycles; c++ {
				if !ind.Close() {
					<-handoff
					expect++
				}
				ind.Open()
			}
			stop.Store(true)
			wg.Wait()
			if got := drains.Load(); got != expect {
				t.Fatalf("observed %d drains, want %d", got, expect)
			}
		})
	}
}

// TestAbandonSequentialContract pins the return-value contract: while
// the indicator is open (or closed with remaining surplus) Abandon
// reports no inheritance; the abandonment that takes a closed
// indicator to zero reports inheritance.
func TestAbandonSequentialContract(t *testing.T) {
	for name, ind := range implsUnderTest() {
		t.Run(name, func(t *testing.T) {
			t1 := ind.Arrive(0)
			t2 := ind.Arrive(1)
			if !t1.Arrived() || !t2.Arrived() {
				t.Fatal("arrivals on open indicator failed")
			}
			if Abandon(ind, t1) {
				t.Fatal("Abandon on open indicator reported inheritance")
			}
			if ind.Close() {
				t.Fatal("Close acquired with surplus outstanding")
			}
			if !Abandon(ind, t2) {
				t.Fatal("last abandoner out of closed indicator did not inherit the drain")
			}
			ind.Open()
		})
	}
}
