package rind

import (
	"math"
	"testing"
)

// TestShardedSlotIndexExtremeIDs pins the unsigned slot reduction:
// negating math.MinInt overflows and stays negative, so the old
// `-id % n` computation produced a negative index and panicked.
func TestShardedSlotIndexExtremeIDs(t *testing.T) {
	ind := NewSharded(3)
	for _, id := range []int{0, 1, -1, -7, math.MinInt, math.MaxInt} {
		idx := ind.slotIndex(id)
		if idx < 0 || int(idx) >= ind.Shards() {
			t.Fatalf("slotIndex(%d) = %d, out of range [0,%d)", id, idx, ind.Shards())
		}
		tk := ind.Arrive(id)
		if !tk.Arrived() {
			t.Fatalf("Arrive(%d) failed on an open indicator", id)
		}
		if !ind.Depart(tk) {
			t.Fatal("Depart reported a drain on an open indicator")
		}
	}
}

// TestShardedDrainClaimEpochABA replays, hand-stepped, the cross-epoch
// ABA the gate's close-epoch counter exists to prevent: a departer
// preempted inside tryDrain between its sum and its claim CAS must not
// be able to resume after a full Open/Close cycle and succeed the stale
// CAS — the gate word of the new close epoch has to differ from the one
// the departer read, or the lock is handed over while the new epoch's
// readers still hold slot arrivals.
func TestShardedDrainClaimEpochABA(t *testing.T) {
	ind := NewSharded(2)

	// Close epoch 0: two readers in, a writer closes behind them, the
	// first reader departs without draining.
	t1 := ind.Arrive(1)
	t2 := ind.Arrive(2)
	if !t1.Arrived() || !t2.Arrived() {
		t.Fatal("arrivals failed on an open indicator")
	}
	if ind.Close() {
		t.Fatal("Close acquired with surplus 2")
	}
	if !ind.Depart(t1) {
		t.Fatal("first departer claimed the drain with surplus left")
	}

	// Second departer, stepped by hand to the preemption point: it has
	// bumped its egress, read the closed gate, and summed zero — and
	// stalls just before the drain-claim CAS.
	ind.slots[t2.slot].egress.Add(1)
	gStale := ind.gate.Load()
	if gStale&gateClosed == 0 || gStale&gateDrained != 0 || gStale&gateDirectMask != 0 {
		t.Fatalf("unexpected gate %#x at the preemption point", gStale)
	}
	if ind.sumSealed() != 0 {
		t.Fatal("surplus left after both departures")
	}

	// A concurrent claimant wins the epoch-0 drain instead, and the
	// owner runs a full Open/Close cycle: the gate is once again
	// "closed, direct=0" — now with a new-epoch reader inside.
	if !ind.tryDrain(gStale) {
		t.Fatal("concurrent claimant failed to drain the emptied epoch")
	}
	ind.Open()
	t3 := ind.Arrive(3)
	if !t3.Arrived() {
		t.Fatal("arrival failed after reopen")
	}
	if ind.Close() {
		t.Fatal("Close acquired with surplus 1")
	}

	// The stalled departer resumes and issues the claim CAS it had
	// formed in epoch 0. Without the epoch counter the new closed gate
	// word recurs bit-identically and this CAS succeeds.
	if ind.gate.CompareAndSwap(gStale, gStale|gateDrained) {
		t.Fatal("stale drain-claim CAS from a prior close epoch succeeded")
	}
	// And the full resume path (tryDrain re-evaluates after the failed
	// CAS) must give the drain up rather than re-claim it.
	if ind.tryDrain(gStale) {
		t.Fatal("stale tryDrain claimed a later epoch's drain")
	}
	if ind.gate.Load()&gateDrained != 0 {
		t.Fatal("gate drained while a reader holds an arrival")
	}

	// The drain still happens exactly once, at the real last departer.
	if ind.Depart(t3) {
		t.Fatal("last departer out of the closed gate missed the drain")
	}
	ind.Open()
	if nonzero, open := ind.Query(); nonzero || !open {
		t.Fatalf("end state nonzero=%v open=%v, want empty and open", nonzero, open)
	}
}
