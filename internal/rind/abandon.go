package rind

// Abandon retracts an arrival on behalf of a caller that is giving up
// on acquisition (deadline expiry or context cancellation) rather than
// releasing a held lock. Mechanically it is a Depart — the indicator
// does not distinguish why a surplus unit leaves — but the contract on
// the return value is inverted to match what an abandoning caller must
// check: Abandon reports whether the caller was the last departer out
// of a closed indicator and thereby INHERITED the drain hand-off.
//
// An abandoner that inherits the drain cannot simply walk away: the
// closer (a writer that Closed the indicator and is waiting for the
// surplus to hit zero) is owed exactly one hand-off signal, and this
// departure just became it. The lock-layer cancellation paths
// (goll/foll/roll deadline.go) handle inheritance by running the same
// last-departer duty a normal RUnlock would — waking the writer or
// discharging the group hand-off — before returning "not acquired" to
// their caller. That is what keeps sealed-drain accounting exact under
// abandonment: every closed indicator drains to zero exactly once, no
// matter how many of its departures were cancellations.
//
// The ticket must come from a successful Arrive on ind and must not be
// used again (neither Depart nor Abandon).
func Abandon(ind Indicator, t Ticket) (inheritedDrain bool) {
	return !ind.Depart(t)
}
