package rind

import (
	"ollock/internal/csnzi"
	"ollock/internal/obs"
)

// CSNZI adapts the paper's closable scalable nonzero indicator (package
// csnzi) to the Indicator contract. It is the default indicator of
// every OLL lock.
//
// The adapter is a thin ticket translation: the C-SNZI's own arrival
// policy, intermediate states and instrumentation are untouched, so the
// csnzi.* counters (including per-retry CAS accounting) keep their
// exact pre-refactor semantics.
type CSNZI struct {
	cs *csnzi.CSNZI
}

// NewCSNZI returns an open C-SNZI-backed indicator with zero surplus.
func NewCSNZI(opts ...csnzi.Option) *CSNZI {
	return &CSNZI{cs: csnzi.New(opts...)}
}

// WrapCSNZI adapts an existing, custom-configured C-SNZI (tree width,
// fanout, arrival policy) — the knob the ablation benchmarks turn.
func WrapCSNZI(c *csnzi.CSNZI) *CSNZI { return &CSNZI{cs: c} }

// Inner returns the underlying C-SNZI (diagnostics and ablation).
func (c *CSNZI) Inner() *csnzi.CSNZI { return c.cs }

// Arrive implements Indicator.
func (c *CSNZI) Arrive(id int) Ticket { return c.ArriveLocal(id, nil) }

// ArriveLocal implements Indicator.
func (c *CSNZI) ArriveLocal(id int, lc *obs.Local) Ticket {
	t := c.cs.ArriveLocal(id, lc)
	switch {
	case t.Direct():
		return directTicket
	case t.Arrived():
		return Ticket{kind: ticketCSNZI, cs: t}
	default:
		return Ticket{}
	}
}

// Depart implements Indicator.
func (c *CSNZI) Depart(t Ticket) bool {
	switch t.kind {
	case ticketDirect:
		return c.cs.Depart(c.cs.DirectTicket())
	case ticketCSNZI:
		return c.cs.Depart(t.cs)
	default:
		panic("rind: Depart with failed ticket")
	}
}

// Query implements Indicator.
func (c *CSNZI) Query() (nonzero, open bool) { return c.cs.Query() }

// Close implements Indicator.
func (c *CSNZI) Close() bool { return c.cs.Close() }

// CloseIfEmpty implements Indicator.
func (c *CSNZI) CloseIfEmpty() bool { return c.cs.CloseIfEmpty() }

// Open implements Indicator.
func (c *CSNZI) Open() { c.cs.Open() }

// OpenWithArrivals implements Indicator.
func (c *CSNZI) OpenWithArrivals(cnt int, close bool) { c.cs.OpenWithArrivals(cnt, close) }

// DirectTicket implements Indicator.
func (c *CSNZI) DirectTicket() Ticket { return directTicket }

// TradeToRoot implements Indicator.
func (c *CSNZI) TradeToRoot(t Ticket) Ticket {
	switch t.kind {
	case ticketDirect:
		return t
	case ticketCSNZI:
		c.cs.TradeToRoot(t.cs)
		return directTicket
	default:
		panic("rind: TradeToRoot with failed ticket")
	}
}

// SoleDirect implements Indicator.
func (c *CSNZI) SoleDirect() bool { return c.cs.SoleDirect() }

// TryUpgrade implements Indicator.
func (c *CSNZI) TryUpgrade() bool { return c.cs.TryUpgrade() }
