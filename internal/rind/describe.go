package rind

import (
	"fmt"

	"ollock/internal/trace"
)

// Tree reports whether t's arrival landed at a distributed arrival
// point (a C-SNZI tree leaf or a sharded slot) rather than the central
// word. The trace layer uses it to classify arrive decisions
// (trace.RouteTree vs. RouteRoot) without widening the Indicator
// interface.
func (t Ticket) Tree() bool { return t.kind == ticketCSNZI || t.kind == ticketSlot }

// TraceRoute classifies a successful arrival as a trace route: tree
// (distributed arrival point) or root (central word). Failed tickets
// report RouteNone.
func (t Ticket) TraceRoute() trace.Route {
	switch {
	case t.Tree():
		return trace.RouteTree
	case t.kind == ticketDirect:
		return trace.RouteRoot
	default:
		return trace.RouteNone
	}
}

// Describe renders an indicator's live state for diagnostics (trace
// watchdog dumps): decoded gate/root word plus surplus estimate. The
// answer is advisory — words are read racily, exactly like Query.
func Describe(ind Indicator) string {
	switch x := ind.(type) {
	case *instrumented:
		return Describe(x.inner)
	case *CSNZI:
		return x.cs.Describe()
	case *Sharded:
		return x.DescribeGate()
	case *Central:
		nonzero, open := x.Query()
		state := "OPEN"
		if !open {
			state = "CLOSED"
		}
		return fmt.Sprintf("Central{state=%s count=%d nonzero=%v}", state, x.w.Count(), nonzero)
	default:
		nonzero, open := ind.Query()
		return fmt.Sprintf("Indicator{open=%v nonzero=%v}", open, nonzero)
	}
}

// GateWord returns the raw gate word (diagnostic; see the layout
// comment on Sharded).
func (s *Sharded) GateWord() uint64 { return s.gate.Load() }

// DescribeGate decodes the current gate word: open/closed/pending/
// drained state, close epoch, direct-arrival count, and the advisory
// slot surplus.
func (s *Sharded) DescribeGate() string { return s.describe(s.gate.Load()) }

// SetSealHook registers fn to be called with the close epoch whenever a
// close transition commits with the slots sealed (Close, CloseIfEmpty,
// TryUpgrade) — the trace layer's ind.seal event source. Set it before
// the indicator is shared; fn may be called from any goroutine that
// closes the indicator and must be cheap and non-blocking.
func (s *Sharded) SetSealHook(fn func(epoch uint64)) { s.sealHook = fn }

// sealed reports a committed close transition to the seal hook.
func (s *Sharded) sealed(g uint64) {
	if s.sealHook != nil {
		s.sealHook((g & gateEpochMask) >> gateEpochShift)
	}
}
