package snzi

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"ollock/internal/xrand"
)

func TestSequentialBasics(t *testing.T) {
	s := New()
	if s.Query() {
		t.Fatal("fresh SNZI must report no surplus")
	}
	t1 := s.Arrive(0)
	if !s.Query() {
		t.Fatal("surplus must be visible after Arrive")
	}
	t2 := s.Arrive(1)
	s.Depart(t1)
	if !s.Query() {
		t.Fatal("surplus must remain with one arrival outstanding")
	}
	s.Depart(t2)
	if s.Query() {
		t.Fatal("surplus must be gone after all departures")
	}
}

func TestLazyTreeAllocation(t *testing.T) {
	s := New()
	// Uncontended arrivals go directly to the root; no tree is built.
	tk := s.Arrive(0)
	s.Depart(tk)
	if s.TreeAllocated() {
		t.Fatal("tree allocated on the uncontended path")
	}
}

func TestNoTreeConfiguration(t *testing.T) {
	s := New(WithLeaves(0))
	tickets := make([]Ticket, 10)
	for i := range tickets {
		tickets[i] = s.Arrive(i)
	}
	if !s.Query() {
		t.Fatal("no surplus reported")
	}
	for _, tk := range tickets {
		s.Depart(tk)
	}
	if s.Query() {
		t.Fatal("surplus after all departures")
	}
	if s.TreeAllocated() {
		t.Fatal("tree allocated with WithLeaves(0)")
	}
}

// TestMatchesCounterModel drives a random interleaving of arrivals and
// departures through the SNZI and checks Query against a plain counter
// reference model after every operation.
func TestMatchesCounterModel(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		s := New(WithLeaves(4), WithDirectRetries(0))
		var outstanding []Ticket
		model := 0
		for op := 0; op < 400; op++ {
			if model > 0 && r.Bool(0.5) {
				i := r.Intn(len(outstanding))
				s.Depart(outstanding[i])
				outstanding[i] = outstanding[len(outstanding)-1]
				outstanding = outstanding[:len(outstanding)-1]
				model--
			} else {
				outstanding = append(outstanding, s.Arrive(r.Intn(16)))
				model++
			}
			if s.Query() != (model > 0) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentSurplusTracking(t *testing.T) {
	s := New(WithLeaves(8))
	const goroutines, iters = 8, 3000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tk := s.Arrive(id)
				if !s.Query() {
					t.Error("Query false while holding an arrival")
					return
				}
				s.Depart(tk)
			}
		}(g)
	}
	wg.Wait()
	if s.Query() {
		t.Fatal("surplus left after all goroutines departed")
	}
}

func TestDeepTree(t *testing.T) {
	// fanout 2 with 8 leaves forces multiple interior layers; surplus
	// tracking must still be exact.
	s := New(WithLeaves(8), WithFanout(2), WithDirectRetries(0))
	var tickets []Ticket
	for i := 0; i < 8; i++ {
		tickets = append(tickets, s.Arrive(i))
	}
	if !s.Query() {
		t.Fatal("no surplus with 8 arrivals")
	}
	for i, tk := range tickets {
		s.Depart(tk)
		want := i != len(tickets)-1
		if s.Query() != want {
			t.Fatalf("after %d departures Query = %v, want %v", i+1, s.Query(), want)
		}
	}
}

func TestNegativeIDs(t *testing.T) {
	s := New(WithLeaves(4), WithDirectRetries(0))
	tk := s.Arrive(-17)
	if !s.Query() {
		t.Fatal("arrival with negative id lost")
	}
	s.Depart(tk)
	if s.Query() {
		t.Fatal("departure with negative id lost")
	}
}

func BenchmarkArriveDepartUncontended(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.Depart(s.Arrive(0))
	}
}

func BenchmarkArriveDepartParallel(b *testing.B) {
	s := New(WithLeaves(64))
	var id atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		me := int(id.Add(1))
		for pb.Next() {
			s.Depart(s.Arrive(me))
		}
	})
}
