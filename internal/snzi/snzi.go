// Package snzi implements a plain scalable nonzero indicator (SNZI),
// the PODC'07 object of Ellen, Lev, Luchangco and Moir, using the
// simplified hierarchical algorithm of Lev et al. (TRANSACT'09) that the
// paper's C-SNZI builds on.
//
// A SNZI supports Arrive, Depart and Query: Query reports whether there
// is a surplus of arrivals (more Arrives than Departs), without revealing
// the count. The tree structure lets concurrent arrivals and departures
// at different leaves proceed without touching shared cache lines as
// long as they do not change a node's count between zero and nonzero.
//
// This package exists both as the prior-work baseline the closable
// variant (package csnzi) extends, and as a standalone reusable
// indicator (e.g. "are any requests in flight?").
package snzi

import (
	"sync/atomic"

	"ollock/internal/atomicx"
)

// SNZI is a scalable nonzero indicator. Use New to create one.
type SNZI struct {
	root atomicx.PaddedUint64
	// tree is built lazily on the first tree arrival so uncontended
	// indicators pay only for the root word.
	tree    atomic.Pointer[tree]
	leaves  int
	fanout  int
	retries int
}

// node is an interior or leaf counter of the SNZI tree. parent == nil
// means the parent is the root word.
type node struct {
	_      atomicx.Pad
	cnt    atomic.Uint64
	_      [atomicx.CacheLineSize - 8]byte
	parent *node
	owner  *SNZI
}

type tree struct {
	leaves []node
	// inner holds the intermediate layers (if fanout < leaves), one
	// slice per layer so parent pointers into a layer stay valid as
	// further layers are added.
	inner [][]node
}

// Option configures a SNZI.
type Option func(*SNZI)

// WithLeaves sets the number of leaf nodes (0 disables the tree: all
// operations go to the root, i.e. a centralized counter).
func WithLeaves(n int) Option { return func(s *SNZI) { s.leaves = n } }

// WithFanout sets the maximum number of children per interior node.
// Values >= the leaf count give the flat root+leaves shape of the
// paper's Figure 2.
func WithFanout(n int) Option { return func(s *SNZI) { s.fanout = n } }

// WithDirectRetries sets how many failed root CASes an Arrive tolerates
// before diverting to the tree.
func WithDirectRetries(n int) Option { return func(s *SNZI) { s.retries = n } }

// defaultLeaves is the default tree width.
const defaultLeaves = 32

// New returns an empty SNZI.
func New(opts ...Option) *SNZI {
	s := &SNZI{leaves: defaultLeaves, retries: 2}
	for _, o := range opts {
		o(s)
	}
	if s.fanout <= 0 {
		s.fanout = s.leaves // flat by default
	}
	return s
}

// Ticket identifies the node an Arrive landed on; it must be passed back
// to Depart. The zero Ticket is a direct (root) ticket.
type Ticket struct {
	n *node // nil => departed from the root
}

// Arrive increments the surplus. The id parameter spreads concurrent
// arrivers across leaves (threads with distinct ids contend on distinct
// leaves); any stable per-goroutine value works. Arrive on a plain SNZI
// always succeeds.
func (s *SNZI) Arrive(id int) Ticket {
	failures := 0
	for {
		old := s.root.Load()
		if s.leaves > 0 && (treeCount(old) > 0 || failures >= s.retries) {
			leaf := s.leafFor(id)
			leaf.treeArrive()
			return Ticket{n: leaf}
		}
		if s.root.CompareAndSwap(old, old+1) {
			return Ticket{}
		}
		failures++
	}
}

// Depart decrements the surplus. The ticket must come from a matching
// Arrive. Depart must not be called when the surplus is zero.
func (s *SNZI) Depart(t Ticket) {
	if t.n == nil {
		s.rootDepartDirect()
		return
	}
	t.n.treeDepart()
}

// Query reports whether there is a surplus of arrivals.
func (s *SNZI) Query() bool {
	return s.root.Load() != 0
}

// Root word layout: bits 0..30 direct count, bits 31..61 tree count.
// (Shared layout with csnzi, minus the closed bit, so tests can compare
// like for like.)
const (
	treeOne    = uint64(1) << 31
	countMask  = (uint64(1) << 31) - 1
	treeCntMsk = countMask << 31
)

func treeCount(w uint64) uint64 { return (w >> 31) & countMask }

func (s *SNZI) rootTreeArrive() {
	for {
		old := s.root.Load()
		if s.root.CompareAndSwap(old, old+treeOne) {
			return
		}
	}
}

func (s *SNZI) rootTreeDepart() {
	for {
		old := s.root.Load()
		if s.root.CompareAndSwap(old, old-treeOne) {
			return
		}
	}
}

func (s *SNZI) rootDepartDirect() {
	for {
		old := s.root.Load()
		if s.root.CompareAndSwap(old, old-1) {
			return
		}
	}
}

// treeArrive implements the hierarchical arrival: a node whose count is
// zero must arrive at its parent before publishing its own nonzero
// count, and undo the parent arrival if another thread made the node
// nonzero concurrently. This preserves the invariant that a subtree root
// has a surplus iff some node in the subtree does.
func (n *node) treeArrive() {
	arrivedAtParent := false
	for {
		x := n.cnt.Load()
		if x == 0 && !arrivedAtParent {
			n.parentArrive()
			arrivedAtParent = true
		}
		if n.cnt.CompareAndSwap(x, x+1) {
			if arrivedAtParent && x != 0 {
				n.parentDepart()
			}
			return
		}
	}
}

// treeDepart decrements the node and propagates a departure to the
// parent when the count returns to zero.
func (n *node) treeDepart() {
	for {
		x := n.cnt.Load()
		if n.cnt.CompareAndSwap(x, x-1) {
			if x == 1 {
				n.parentDepart()
			}
			return
		}
	}
}

func (n *node) parentArrive() {
	if n.parent == nil {
		n.owner.rootTreeArrive()
		return
	}
	n.parent.treeArrive()
}

func (n *node) parentDepart() {
	if n.parent == nil {
		n.owner.rootTreeDepart()
		return
	}
	n.parent.treeDepart()
}

// leafFor returns the leaf assigned to id, building the tree on first
// use.
func (s *SNZI) leafFor(id int) *node {
	t := s.tree.Load()
	if t == nil {
		t = s.buildTree()
	}
	if id < 0 {
		id = -id
	}
	return &t.leaves[id%len(t.leaves)]
}

func (s *SNZI) buildTree() *tree {
	t := newTree(s.leaves, s.fanout, func(n *node) { n.owner = s })
	if s.tree.CompareAndSwap(nil, t) {
		return t
	}
	return s.tree.Load()
}

// newTree builds a tree of counter nodes with the given number of leaves
// and fanout. Nodes in the top layer get parent == nil (the root word).
// setOwner is applied to every node.
func newTree(leaves, fanout int, setOwner func(*node)) *tree {
	t := &tree{leaves: make([]node, leaves)}
	layer := make([]*node, leaves)
	for i := range t.leaves {
		layer[i] = &t.leaves[i]
	}
	for len(layer) > fanout {
		nParents := (len(layer) + fanout - 1) / fanout
		parentNodes := make([]node, nParents)
		t.inner = append(t.inner, parentNodes)
		for i, child := range layer {
			child.parent = &parentNodes[i/fanout]
		}
		layer = layer[:nParents]
		for i := range layer {
			layer[i] = &parentNodes[i]
		}
	}
	// Top layer parents are the root (nil).
	for i := range t.leaves {
		setOwner(&t.leaves[i])
	}
	for _, ns := range t.inner {
		for i := range ns {
			setOwner(&ns[i])
		}
	}
	return t
}

// TreeAllocated reports whether the leaf tree has been built (it is
// allocated lazily); exposed for tests and introspection.
func (s *SNZI) TreeAllocated() bool { return s.tree.Load() != nil }
