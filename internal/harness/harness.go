// Package harness implements the paper's evaluation methodology (§5.1)
// for real-goroutine runs: every thread repeatedly acquires and releases
// one shared lock in a tight loop with an empty critical section,
// choosing read vs. write with a private PRNG against a target read
// percentage; throughput is total acquisitions divided by the time for
// all threads to finish, averaged over several runs.
//
// On machines with many cores this harness reproduces the relative
// ordering of the locks directly; the companion package internal/sim
// reproduces the paper's 256-hardware-thread topology when the host
// cannot (see DESIGN.md §4).
package harness

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ollock/internal/locksuite"
	"ollock/internal/obs"
	"ollock/internal/xrand"
)

// Config describes one throughput measurement.
type Config struct {
	// Impl is the lock implementation under test.
	Impl locksuite.Impl
	// Threads is the number of concurrently acquiring goroutines.
	Threads int
	// ReadFraction is the probability an acquisition is a read (the
	// paper evaluates 1.0, 0.99, 0.95, 0.80, 0.50, 0.0).
	ReadFraction float64
	// OpsPerThread is the number of acquisitions each thread performs
	// (the paper uses 100,000, or 10,000 at read fractions <= 0.5).
	OpsPerThread int
	// Runs is how many times to repeat the measurement; the reported
	// throughput is the mean (the paper uses 3).
	Runs int
	// Seed makes the read/write decision sequences reproducible.
	Seed uint64
}

// Result is the outcome of a measurement.
type Result struct {
	Config     Config
	Throughput float64 // acquisitions per second, mean over runs
	PerRun     []float64
	Elapsed    time.Duration // total wall time across runs
}

// Run executes the measurement described by cfg.
func Run(cfg Config) Result {
	if cfg.Threads <= 0 || cfg.OpsPerThread <= 0 {
		panic("harness: Threads and OpsPerThread must be positive")
	}
	runs := cfg.Runs
	if runs <= 0 {
		runs = 1
	}
	res := Result{Config: cfg}
	start := time.Now()
	for r := 0; r < runs; r++ {
		res.PerRun = append(res.PerRun, oneRun(cfg, uint64(r)))
	}
	res.Elapsed = time.Since(start)
	var sum float64
	for _, v := range res.PerRun {
		sum += v
	}
	res.Throughput = sum / float64(len(res.PerRun))
	return res
}

func oneRun(cfg Config, run uint64) float64 {
	return oneRunOn(cfg, cfg.Impl.New(cfg.Threads), run)
}

// RunOn executes one run of the cfg workload against an
// already-constructed lock (mk makes the per-goroutine Procs),
// returning the throughput. For tools that must keep hold of the lock
// instance — cmd/locktrace drives a traced lock this way and then
// snapshots its flight recorder. cfg.Impl and cfg.Runs are ignored.
func RunOn(cfg Config, mk locksuite.ProcMaker) float64 {
	if cfg.Threads <= 0 || cfg.OpsPerThread <= 0 {
		panic("harness: Threads and OpsPerThread must be positive")
	}
	return oneRunOn(cfg, mk, 0)
}

// oneRunWith times one run against an already-constructed lock (used
// by RunInstrumented, which needs the instance to read its counters).
func oneRunWith(cfg Config, mk locksuite.ProcMaker) float64 {
	return oneRunOn(cfg, mk, 0)
}

func oneRunOn(cfg Config, mk locksuite.ProcMaker, run uint64) float64 {
	var ready, done sync.WaitGroup
	startGate := make(chan struct{})
	ready.Add(cfg.Threads)
	done.Add(cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		go func(id int) {
			defer done.Done()
			p := mk()
			rng := xrand.New(cfg.Seed + uint64(id)*0x9E3779B9 + run*0x85EBCA6B + 1)
			ready.Done()
			<-startGate
			for i := 0; i < cfg.OpsPerThread; i++ {
				if rng.Bool(cfg.ReadFraction) {
					p.RLock()
					p.RUnlock()
				} else {
					p.Lock()
					p.Unlock()
				}
			}
		}(t)
	}
	ready.Wait()
	begin := time.Now()
	close(startGate)
	done.Wait()
	elapsed := time.Since(begin)
	total := float64(cfg.Threads * cfg.OpsPerThread)
	return total / elapsed.Seconds()
}

// LatencyStats summarizes acquisition latency for one kind of
// acquisition. P50 and P99 are log-bucket midpoint estimates from the
// obs histogram (the module's one histogram implementation); Max is
// exact.
type LatencyStats struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// LatencyResult extends Result with per-kind acquisition latency (from
// the start of the acquire call to lock ownership) — the fairness
// measurement complementing the paper's throughput metric.
type LatencyResult struct {
	Result
	Read, Write LatencyStats
}

// RunLatency executes the measurement with per-acquisition latency
// accounting (one timestamped run; cfg.Runs is ignored). Each thread
// records nanosecond samples into its own obs.Histogram (single-writer
// by construction); the histograms are merged only after the run, so
// the accounting adds no cross-thread coherence traffic.
func RunLatency(cfg Config) LatencyResult {
	if cfg.Threads <= 0 || cfg.OpsPerThread <= 0 {
		panic("harness: Threads and OpsPerThread must be positive")
	}
	mk := cfg.Impl.New(cfg.Threads)
	type hist struct {
		h obs.Histogram
		_ [8]uint64 // keep adjacent thread slots off one cache line
	}
	readH := make([]hist, cfg.Threads)
	writeH := make([]hist, cfg.Threads)
	var ready, done sync.WaitGroup
	startGate := make(chan struct{})
	ready.Add(cfg.Threads)
	done.Add(cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		go func(id int) {
			defer done.Done()
			p := mk()
			rng := xrand.New(cfg.Seed + uint64(id)*0x9E3779B9 + 1)
			ready.Done()
			<-startGate
			for i := 0; i < cfg.OpsPerThread; i++ {
				if rng.Bool(cfg.ReadFraction) {
					t0 := time.Now()
					p.RLock()
					lat := time.Since(t0)
					p.RUnlock()
					readH[id].h.Record(lat.Nanoseconds())
				} else {
					t0 := time.Now()
					p.Lock()
					lat := time.Since(t0)
					p.Unlock()
					writeH[id].h.Record(lat.Nanoseconds())
				}
			}
		}(t)
	}
	ready.Wait()
	begin := time.Now()
	close(startGate)
	done.Wait()
	elapsed := time.Since(begin)

	out := LatencyResult{Result: Result{Config: cfg, Elapsed: elapsed}}
	total := float64(cfg.Threads * cfg.OpsPerThread)
	out.Throughput = total / elapsed.Seconds()
	out.PerRun = []float64{out.Throughput}
	fold := func(hs []hist) LatencyStats {
		var m obs.Histogram
		for i := range hs {
			m.Merge(&hs[i].h)
		}
		s := LatencyStats{Count: int64(m.Count()), Max: time.Duration(m.Max())}
		if s.Count > 0 {
			s.Mean = time.Duration(int64(m.Mean()))
			s.P50 = time.Duration(m.Quantile(0.50))
			s.P99 = time.Duration(m.Quantile(0.99))
		}
		return s
	}
	out.Read = fold(readH)
	out.Write = fold(writeH)
	return out
}

// InstrumentedResult extends Result with the lock's internal counter
// Snapshot (empty for kinds without instrumentation).
type InstrumentedResult struct {
	Result
	Snapshot obs.Snapshot
}

// RunInstrumented executes one run with the lock's obs instrumentation
// attached and returns its counter Snapshot alongside the throughput.
// One lock instance serves the whole measurement (cfg.Runs is
// ignored), so the snapshot covers exactly the reported operations.
// Kinds without a NewStats constructor run uninstrumented and return
// an empty snapshot.
func RunInstrumented(cfg Config) InstrumentedResult {
	if cfg.Threads <= 0 || cfg.OpsPerThread <= 0 {
		panic("harness: Threads and OpsPerThread must be positive")
	}
	var mk locksuite.ProcMaker
	var st *obs.Stats
	if cfg.Impl.NewStats != nil {
		mk, st = cfg.Impl.NewStats(cfg.Threads)
	} else {
		mk = cfg.Impl.New(cfg.Threads)
	}
	out := InstrumentedResult{Result: Result{Config: cfg}}
	begin := time.Now()
	out.PerRun = []float64{oneRunWith(cfg, mk)}
	out.Elapsed = time.Since(begin)
	out.Throughput = out.PerRun[0]
	out.Snapshot = st.Snapshot()
	return out
}

// Point is one (threads, throughput) sample of a sweep.
type Point struct {
	Threads    int
	Throughput float64
}

// Series is a lock's throughput curve across thread counts — one line of
// a Figure 5 panel.
type Series struct {
	Lock   string
	Points []Point
}

// Sweep measures impl at every thread count in threads.
func Sweep(impl locksuite.Impl, threads []int, readFraction float64, opsPerThread, runs int, seed uint64) Series {
	s := Series{Lock: impl.Name}
	for _, n := range threads {
		r := Run(Config{
			Impl:         impl,
			Threads:      n,
			ReadFraction: readFraction,
			OpsPerThread: opsPerThread,
			Runs:         runs,
			Seed:         seed,
		})
		s.Points = append(s.Points, Point{Threads: n, Throughput: r.Throughput})
	}
	return s
}

// Panel is a full Figure 5 panel: every lock's curve at one read
// fraction.
type Panel struct {
	ReadFraction float64
	Series       []Series
}

// WriteTable renders the panel as an aligned text table, thread counts
// as rows and locks as columns, mirroring how the paper's plots are
// read.
func (p Panel) WriteTable(w io.Writer) error {
	threadSet := map[int]bool{}
	for _, s := range p.Series {
		for _, pt := range s.Points {
			threadSet[pt.Threads] = true
		}
	}
	threads := make([]int, 0, len(threadSet))
	for n := range threadSet {
		threads = append(threads, n)
	}
	sort.Ints(threads)

	if _, err := fmt.Fprintf(w, "read%% = %g\n%-8s", p.ReadFraction*100, "threads"); err != nil {
		return err
	}
	for _, s := range p.Series {
		if _, err := fmt.Fprintf(w, " %14s", s.Lock); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, n := range threads {
		if _, err := fmt.Fprintf(w, "%-8d", n); err != nil {
			return err
		}
		for _, s := range p.Series {
			v := lookup(s, n)
			if v < 0 {
				if _, err := fmt.Fprintf(w, " %14s", "-"); err != nil {
					return err
				}
			} else if _, err := fmt.Fprintf(w, " %14.3e", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func lookup(s Series, threads int) float64 {
	for _, pt := range s.Points {
		if pt.Threads == threads {
			return pt.Throughput
		}
	}
	return -1
}
