package harness

import (
	"strings"
	"testing"

	"ollock/internal/locksuite"
)

func implByName(t *testing.T, name string) locksuite.Impl {
	impl := locksuite.ByName(name)
	if impl == nil {
		t.Fatalf("no lock named %q", name)
	}
	return *impl
}

func TestRunCompletesAllKinds(t *testing.T) {
	for _, impl := range locksuite.Locks {
		impl := impl
		t.Run(impl.Name, func(t *testing.T) {
			t.Parallel()
			res := Run(Config{
				Impl:         impl,
				Threads:      4,
				ReadFraction: 0.9,
				OpsPerThread: 300,
				Runs:         2,
				Seed:         42,
			})
			if res.Throughput <= 0 {
				t.Fatalf("throughput = %v, want > 0", res.Throughput)
			}
			if len(res.PerRun) != 2 {
				t.Fatalf("PerRun has %d entries, want 2", len(res.PerRun))
			}
		})
	}
}

func TestRunReadOnlyAndWriteOnly(t *testing.T) {
	impl := implByName(t, "goll")
	for _, frac := range []float64{0.0, 1.0} {
		res := Run(Config{Impl: impl, Threads: 3, ReadFraction: frac, OpsPerThread: 200, Runs: 1})
		if res.Throughput <= 0 {
			t.Fatalf("frac %v: throughput %v", frac, res.Throughput)
		}
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Threads=0")
		}
	}()
	Run(Config{Impl: locksuite.Locks[0], Threads: 0, OpsPerThread: 1})
}

func TestSweepShape(t *testing.T) {
	impl := implByName(t, "roll")
	s := Sweep(impl, []int{1, 2, 4}, 0.99, 200, 1, 7)
	if s.Lock != "roll" {
		t.Fatalf("series lock = %q", s.Lock)
	}
	if len(s.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(s.Points))
	}
	for i, pt := range s.Points {
		if pt.Throughput <= 0 {
			t.Fatalf("point %d throughput %v", i, pt.Throughput)
		}
	}
	if s.Points[0].Threads != 1 || s.Points[2].Threads != 4 {
		t.Fatal("thread counts out of order")
	}
}

func TestPanelWriteTable(t *testing.T) {
	p := Panel{
		ReadFraction: 0.99,
		Series: []Series{
			{Lock: "goll", Points: []Point{{1, 1e6}, {2, 2e6}}},
			{Lock: "roll", Points: []Point{{1, 1.5e6}, {4, 3e6}}},
		},
	}
	var sb strings.Builder
	if err := p.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"read% = 99", "goll", "roll", "1 ", "2 ", "4 "} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// Missing sample renders as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing samples not rendered as '-':\n%s", out)
	}
}

func TestDeterministicOpCount(t *testing.T) {
	// The harness must execute exactly Threads*OpsPerThread operations;
	// we verify via a counting lock wrapper.
	var ops counterImpl
	impl := locksuite.Impl{Name: "counter", New: ops.factory()}
	Run(Config{Impl: impl, Threads: 3, ReadFraction: 0.5, OpsPerThread: 100, Runs: 2})
	if got := ops.count.Load(); got != 2*3*100 {
		t.Fatalf("op count = %d, want 600", got)
	}
}

func TestRunLatencySanity(t *testing.T) {
	impl := implByName(t, "foll")
	res := RunLatency(Config{
		Impl:         impl,
		Threads:      4,
		ReadFraction: 0.8,
		OpsPerThread: 500,
		Seed:         11,
	})
	if res.Read.Count+res.Write.Count != 4*500 {
		t.Fatalf("latency counts %d+%d, want %d", res.Read.Count, res.Write.Count, 4*500)
	}
	if res.Read.Count == 0 || res.Write.Count == 0 {
		t.Fatal("one kind never sampled at 80% reads")
	}
	if res.Read.Mean <= 0 || res.Write.Mean <= 0 {
		t.Fatal("non-positive mean latency")
	}
	if res.Read.Max < res.Read.Mean || res.Write.Max < res.Write.Mean {
		t.Fatal("max below mean")
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestRunLatencyReadOnlyHasNoWrites(t *testing.T) {
	impl := implByName(t, "goll")
	res := RunLatency(Config{Impl: impl, Threads: 2, ReadFraction: 1.0, OpsPerThread: 200, Seed: 5})
	if res.Write.Count != 0 {
		t.Fatalf("write count = %d at 100%% reads", res.Write.Count)
	}
	if res.Write.Mean != 0 || res.Write.Max != 0 {
		t.Fatal("write stats nonzero with no writes")
	}
}
