package harness

import (
	"sync"
	"sync/atomic"

	"ollock/internal/locksuite"
)

// counterImpl is a test double: a real RWMutex that counts acquisitions.
type counterImpl struct {
	count atomic.Int64
}

type countingProc struct {
	c *counterImpl
	m *sync.RWMutex
}

func (p *countingProc) RLock()   { p.c.count.Add(1); p.m.RLock() }
func (p *countingProc) RUnlock() { p.m.RUnlock() }
func (p *countingProc) Lock()    { p.c.count.Add(1); p.m.Lock() }
func (p *countingProc) Unlock()  { p.m.Unlock() }

func (c *counterImpl) factory() func(int) locksuite.ProcMaker {
	return func(maxProcs int) locksuite.ProcMaker {
		m := new(sync.RWMutex)
		return func() locksuite.Proc { return &countingProc{c: c, m: m} }
	}
}
