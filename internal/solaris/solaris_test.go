package solaris

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFastPathDiagnostics(t *testing.T) {
	l := New()
	l.RLock()
	l.RLock()
	if l.Readers() != 2 || l.WriteLocked() {
		t.Fatalf("Readers=%d WriteLocked=%v, want 2/false", l.Readers(), l.WriteLocked())
	}
	l.RUnlock()
	l.RUnlock()
	l.Lock()
	if !l.WriteLocked() || l.Readers() != 0 {
		t.Fatal("write state wrong")
	}
	l.Unlock()
	if l.WriteLocked() || l.Readers() != 0 {
		t.Fatal("release state wrong")
	}
}

// TestReadersDoNotOvertakeWaitingWriter: once a writer is queued
// (writeWanted set), a newly arriving reader must queue behind it rather
// than barging, preserving writer progress.
func TestReadersDoNotOvertakeWaitingWriter(t *testing.T) {
	l := New()
	l.RLock() // hold for reading

	writerIn := make(chan struct{})
	go func() {
		l.Lock()
		close(writerIn)
		time.Sleep(20 * time.Millisecond)
		l.Unlock()
	}()

	// Wait until the writer has registered (writeWanted set).
	for {
		if l.word.Load()&writeWanted != 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	readerIn := make(chan struct{})
	go func() {
		l.RLock()
		close(readerIn)
		l.RUnlock()
	}()

	select {
	case <-readerIn:
		t.Fatal("reader overtook a waiting writer")
	case <-time.After(30 * time.Millisecond):
	}

	l.RUnlock() // last reader: hands off to the writer
	<-writerIn
	select {
	case <-readerIn:
	case <-time.After(20 * time.Second):
		t.Fatal("queued reader never granted")
	}
}

// TestWriterHandsOffToReaderGroup: a releasing writer wakes all waiting
// readers as one group, with the reader count pre-set.
func TestWriterHandsOffToReaderGroup(t *testing.T) {
	l := New()
	l.Lock()

	const readers = 4
	var active atomic.Int32
	var wg sync.WaitGroup
	entered := make(chan struct{}, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.RLock()
			active.Add(1)
			entered <- struct{}{}
			// Hold until every reader of the group has entered, proving
			// they were granted together.
			for active.Load() < readers {
				time.Sleep(time.Millisecond)
			}
			l.RUnlock()
		}()
	}
	// Give the readers time to queue.
	time.Sleep(30 * time.Millisecond)
	l.Unlock()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatalf("reader group not granted together: %d entered", active.Load())
	}
}

// TestOwnershipHandoffNoBarging: while waiters exist the lock never
// looks free, so a spinning TryLock-style CAS on the raw word cannot
// sneak in. We approximate by checking hasWaiters stays set through a
// handoff chain.
func TestHandoffChain(t *testing.T) {
	l := New()
	var order []int
	var mu sync.Mutex
	l.Lock()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			l.Lock()
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			l.Unlock()
		}(i)
		time.Sleep(10 * time.Millisecond) // stable queue order
	}
	l.Unlock()
	wg.Wait()
	if len(order) != 3 {
		t.Fatalf("got %d writers through, want 3", len(order))
	}
	// FIFO among equal-priority writers.
	for i, id := range order {
		if id != i {
			t.Fatalf("handoff order %v, want FIFO [0 1 2]", order)
		}
	}
}

func TestRUnlockPanicsWithoutRLock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New().RUnlock()
}

func TestUnlockPanicsWithoutLock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New().Unlock()
}
