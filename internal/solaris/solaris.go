// Package solaris implements a user-space version of the Solaris kernel
// reader-writer lock (§3.1 of the paper; the "Solaris Like" baseline of
// its evaluation).
//
// The lock state is a single CAS-able lockword holding an active-reader
// count, a writeLocked bit, a writeWanted bit, and a hasWaiters bit.
// Conflicted threads enqueue themselves, under the turnstile mutex, into
// a wait queue, and the last releasing thread hands ownership directly
// to the next thread(s) in line — the lock never appears free while
// threads wait, so a woken thread always already owns the lock.
//
// The kernel turnstile (sleep/wakeup with priority inheritance) is
// replaced, exactly as in the paper's methodology (§5.1), by a
// mutex-protected queue with spin-based condition variables
// (internal/waitq + internal/spin).
package solaris

import (
	"ollock/internal/atomicx"
	"ollock/internal/spin"
	"ollock/internal/waitq"
)

// Lockword layout.
const (
	writeLocked = uint64(1) << 0
	writeWanted = uint64(1) << 1
	hasWaiters  = uint64(1) << 2
	readerOne   = uint64(1) << 3
	readerMask  = ^uint64(7)
)

func readers(w uint64) uint64 { return w >> 3 }

// RWLock is a Solaris-style reader-writer lock. Use New.
type RWLock struct {
	word atomicx.PaddedUint64
	meta spin.Mutex
	q    waitq.Queue
}

// New returns an unlocked lock.
func New() *RWLock { return &RWLock{} }

// RLock acquires the lock for reading. Readers do not overtake waiting
// writers: if writeWanted is set, the reader queues.
func (l *RWLock) RLock() {
	var b atomicx.Backoff
	for {
		w := l.word.Load()
		if w&(writeLocked|writeWanted) == 0 {
			if l.word.CompareAndSwap(w, w+readerOne) {
				return
			}
			b.Pause()
			continue
		}
		// Conflicting request: set hasWaiters and enqueue, atomically
		// with respect to releases (both happen under the queue mutex
		// or re-validate the word with CAS).
		l.meta.Lock()
		w = l.word.Load()
		if w&(writeLocked|writeWanted) == 0 {
			// Lock became compatible while we acquired the mutex.
			l.meta.Unlock()
			continue
		}
		if !l.word.CompareAndSwap(w, w|hasWaiters) {
			l.meta.Unlock()
			continue
		}
		e := l.q.Enqueue(waitq.Reader, 0)
		l.meta.Unlock()
		e.Wait()
		// The releaser transferred ownership: reader count already
		// includes us.
		return
	}
}

// Lock acquires the lock for writing.
func (l *RWLock) Lock() {
	var b atomicx.Backoff
	for {
		w := l.word.Load()
		if w&(writeLocked|readerMask) == 0 && w&hasWaiters == 0 {
			if l.word.CompareAndSwap(w, w|writeLocked) {
				return
			}
			b.Pause()
			continue
		}
		l.meta.Lock()
		w = l.word.Load()
		if w&(writeLocked|readerMask|hasWaiters) == 0 {
			l.meta.Unlock()
			continue
		}
		if !l.word.CompareAndSwap(w, w|hasWaiters|writeWanted) {
			l.meta.Unlock()
			continue
		}
		e := l.q.Enqueue(waitq.Writer, 0)
		l.meta.Unlock()
		e.Wait()
		// Ownership transferred: writeLocked is already set for us.
		return
	}
}

// TryRLock acquires for reading without waiting: one attempt at the
// fast-path CAS under the same compatibility condition RLock uses. A
// CAS lost to a concurrent update reports failure rather than retrying.
func (l *RWLock) TryRLock() bool {
	w := l.word.Load()
	return w&(writeLocked|writeWanted) == 0 && l.word.CompareAndSwap(w, w+readerOne)
}

// TryLock acquires for writing without waiting: one attempt at the
// fast-path CAS on a fully free word.
func (l *RWLock) TryLock() bool {
	w := l.word.Load()
	return w&(writeLocked|readerMask|hasWaiters) == 0 && l.word.CompareAndSwap(w, w|writeLocked)
}

// RUnlock releases a read acquisition. If this is the last reader and
// threads are waiting, ownership is handed over directly.
func (l *RWLock) RUnlock() {
	for {
		w := l.word.Load()
		if readers(w) == 0 {
			panic("solaris: RUnlock without RLock")
		}
		if readers(w) == 1 && w&hasWaiters != 0 {
			l.handoff(waitq.Reader)
			return
		}
		if l.word.CompareAndSwap(w, w-readerOne) {
			return
		}
	}
}

// Unlock releases a write acquisition, handing over directly if threads
// are waiting.
func (l *RWLock) Unlock() {
	for {
		w := l.word.Load()
		if w&writeLocked == 0 {
			panic("solaris: Unlock without Lock")
		}
		if w&hasWaiters != 0 {
			l.handoff(waitq.Writer)
			return
		}
		if l.word.CompareAndSwap(w, w&^writeLocked) {
			return
		}
	}
}

// handoff transfers ownership to the next batch in the queue. The caller
// is the last holder (sole writer, or last reader with waiters present).
// hasWaiters is set, so no thread can fast-path acquire (readers are
// blocked by writeWanted or writeLocked; writers by readers/writeLocked,
// and a free-looking word cannot arise because we never release here).
func (l *RWLock) handoff(releaser waitq.Kind) {
	l.meta.Lock()
	batch := l.q.DequeueHandoff(releaser)
	if batch == nil {
		// Waiters bit was set but the queue drained? Impossible by
		// construction: the bit is only set together with an enqueue and
		// only handoffs dequeue. Guard anyway.
		l.storeWord(0)
		l.meta.Unlock()
		return
	}
	var w uint64
	if batch.Kind == waitq.Writer {
		w = writeLocked
	} else {
		w = uint64(batch.Count()) * readerOne
	}
	if l.q.NumWriters() > 0 {
		w |= writeWanted
	}
	if !l.q.Empty() {
		w |= hasWaiters
	}
	l.storeWord(w)
	l.meta.Unlock()
	batch.Signal()
}

// storeWord installs a new lockword during handoff. A CAS loop is not
// needed: every mutation path either holds the queue mutex (waiter
// registration) or is excluded by the bits the old word has set (fast
// paths), so the plain store cannot lose an update. We still assert the
// exclusion in race-enabled tests via the atomic store's total order.
func (l *RWLock) storeWord(w uint64) { l.word.Store(w) }

// Readers returns the active reader count (diagnostic).
func (l *RWLock) Readers() int { return int(readers(l.word.Load())) }

// WriteLocked reports whether a writer holds the lock (diagnostic).
func (l *RWLock) WriteLocked() bool { return l.word.Load()&writeLocked != 0 }
