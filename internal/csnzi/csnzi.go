// Package csnzi implements the closable scalable nonzero indicator
// (C-SNZI), the core data structure of "Scalable Reader-Writer Locks"
// (Lev, Luchangco, Olszewski, SPAA 2009).
//
// A C-SNZI extends a SNZI (package snzi) with Open and Close: while
// closed, Arrive operations fail and do not change the surplus, so once
// a closed C-SNZI's surplus drains to zero it stays zero until reopened.
// The reader-writer locks in this module use it as their entire lock
// state: readers Arrive/Depart, writers Close/Open.
//
//	lock free            = open, surplus 0
//	write-acquired       = closed, surplus 0
//	read-acquired        = surplus > 0 (open, or closed when a writer waits)
//
// # Implementation
//
// The root is a single CAS-able 64-bit word packing the open/closed bit
// and two counters: arrivals made directly at the root and arrivals
// propagated up from the leaf tree. Two counters (rather than the single
// count of the paper's Figure 2 pseudocode) implement both the
// performance refinement of §5.1 — the arrival policy favors the cheap
// direct path until it observes contention or sees that other threads
// are already using the tree — and the write-upgrade support of §3.2.1,
// which must detect "I am the only reader" by checking direct == 1 and
// tree == 0.
//
// The leaf tree is allocated lazily, so uncontended C-SNZIs cost one
// word. Arrivals return a Ticket naming the node arrived at; the ticket
// must be passed back to Depart.
package csnzi

import (
	"fmt"
	"sync/atomic"

	"ollock/internal/atomicx"
	"ollock/internal/obs"
)

// Root word layout:
//
//	bit  63     : closed flag (set = CLOSED)
//	bits 31..61 : tree-arrival count (31 bits)
//	bits 0..30  : direct-arrival count (31 bits)
//
// "Write-acquired" (closed, surplus zero) is therefore the exact word
// value closedBit, which keeps the hot-path comparisons in Close,
// Depart and treeArrive single integer compares.
const (
	closedBit  = uint64(1) << 63
	treeOne    = uint64(1) << 31
	count31    = (uint64(1) << 31) - 1
	directMask = count31
	treeMask   = count31 << 31
)

func directCount(w uint64) uint64 { return w & directMask }
func treeCount(w uint64) uint64   { return (w >> 31) & count31 }
func isClosed(w uint64) bool      { return w&closedBit != 0 }
func surplus(w uint64) uint64     { return directCount(w) + treeCount(w) }

// CSNZI is a closable scalable nonzero indicator. Use New. A CSNZI is
// initially open with zero surplus.
type CSNZI struct {
	root    atomicx.PaddedUint64
	tree    atomic.Pointer[tree]
	leaves  int
	fanout  int
	retries int
	// stats is the optional instrumentation block (nil = off; every
	// obs call on it is then an inlined no-op branch).
	stats *obs.Stats
}

// node is a leaf or interior counter. parent == nil means its parent is
// the root word.
//
// The count word carries two transient flag bits implementing the
// intermediate-state optimization of the underlying SNZI algorithm,
// which §2.2 references ("required to reduce the contention on the root
// node ... does not add any additional CompareAndSwap operations") and
// which the paper's own implementation uses:
//
//   - halfBit: a zero-crossing arrival is in flight. The claimer (the
//     thread that CASed 0 -> halfBit|1) performs the single parent
//     arrival; concurrent arrivers join provisionally (CAS +1 under the
//     flag) and wait for the resolution rather than racing to the
//     parent. Provisional joining both caps parent traffic at one
//     operation per zero-crossing and keeps the node's surplus
//     accumulating while the parent arrival is in flight.
//   - failBit: the parent arrival failed (C-SNZI closed, no surplus);
//     provisional joiners un-count themselves, the last one returning
//     the node to zero.
//
// A departer can never observe either flag: its own outstanding arrival
// keeps the plain count >= 1.
type node struct {
	_      atomicx.Pad
	cnt    atomic.Uint64
	_      [atomicx.CacheLineSize - 8]byte
	parent *node
	owner  *CSNZI
}

// Node count-word flags.
const (
	nodeHalfBit   = uint64(1) << 63
	nodeFailBit   = uint64(1) << 62
	nodeCountMask = nodeFailBit - 1
)

type tree struct {
	leaves []node
	// inner holds intermediate layers, one slice per layer so parent
	// pointers into a layer stay valid as further layers are added.
	inner [][]node
}

// Option configures a CSNZI at construction.
type Option func(*CSNZI)

// WithLeaves sets the number of leaf nodes. Zero disables the tree, which
// degenerates the C-SNZI into the centralized lockword of the Solaris
// lock — useful for ablation.
func WithLeaves(n int) Option { return func(c *CSNZI) { c.leaves = n } }

// WithFanout bounds the children per interior node; values >= the leaf
// count give the flat root+leaves shape of the paper's Figure 2.
func WithFanout(n int) Option { return func(c *CSNZI) { c.fanout = n } }

// WithDirectRetries sets how many failed direct root CASes an Arrive
// tolerates before diverting to the tree (the "failed several times"
// policy of §2.2).
func WithDirectRetries(n int) Option { return func(c *CSNZI) { c.retries = n } }

// WithStats attaches an instrumentation block (see internal/obs);
// the C-SNZI then counts root vs. tree arrivals, failed arrivals,
// CAS retries, and close/open transitions under the csnzi.* names.
func WithStats(s *obs.Stats) Option { return func(c *CSNZI) { c.stats = s } }

// SetStats attaches an instrumentation block after construction. It
// must be called before the C-SNZI is shared between goroutines.
func (c *CSNZI) SetStats(s *obs.Stats) { c.stats = s }

// DefaultLeaves is the default tree width. It is sized for tens of
// hardware threads; widen it on bigger machines via WithLeaves.
const DefaultLeaves = 32

// New returns an open C-SNZI with zero surplus.
func New(opts ...Option) *CSNZI {
	c := &CSNZI{leaves: DefaultLeaves, retries: 2}
	for _, o := range opts {
		o(c)
	}
	if c.fanout <= 0 {
		c.fanout = c.leaves
	}
	return c
}

// Ticket names the node an Arrive landed at. Tickets are opaque: obtain
// them from Arrive or DirectTicket and pass them to Depart (or
// TradeToRoot). The zero Ticket is a failed arrival.
type Ticket struct {
	n      *node
	direct bool
}

// Arrived reports whether the Arrive operation that produced t
// succeeded.
func (t Ticket) Arrived() bool { return t.direct || t.n != nil }

// Direct reports whether t departs directly at the root.
func (t Ticket) Direct() bool { return t.direct }

// DirectTicket constructs a ticket that departs from the root node. It
// is used by a reader that was woken by a releasing writer: the writer
// pre-arrived at the root on the reader's behalf via OpenWithArrivals.
func (c *CSNZI) DirectTicket() Ticket { return Ticket{direct: true} }

// Arrive attempts to increment the surplus. It fails (returns a ticket
// for which Arrived is false) iff the C-SNZI is closed. The id parameter
// selects the leaf used under contention; pass a stable per-goroutine
// value so distinct goroutines hit distinct leaves.
//
// Policy (§2.2, §5.1): arrive directly at the root unless the direct CAS
// has already failed several times, or the tree count shows other
// threads are arriving through the tree (contention was recently
// observed), in which case arrive at this thread's leaf.
func (c *CSNZI) Arrive(id int) Ticket { return c.ArriveLocal(id, nil) }

// ArriveLocal is Arrive with the event accounting routed through the
// caller's per-proc buffer (obs.Local), so the arrival hot path does
// no shared-cell atomics. A nil lc falls back to the C-SNZI's own
// stats block (and to a no-op when that is nil too).
func (c *CSNZI) ArriveLocal(id int, lc *obs.Local) Ticket {
	failures := 0
	for {
		old := c.root.Load()
		if isClosed(old) {
			c.count(lc, obs.CSNZIArriveFail, id)
			return Ticket{}
		}
		if c.leaves > 0 && (treeCount(old) > 0 || failures >= c.retries) {
			leaf := c.leafFor(id)
			if leaf.treeArrive() {
				c.count(lc, obs.CSNZIArriveTree, id)
				return Ticket{n: leaf}
			}
			c.count(lc, obs.CSNZIArriveFail, id)
			return Ticket{}
		}
		if c.root.CompareAndSwap(old, old+1) {
			c.count(lc, obs.CSNZIArriveRoot, id)
			return Ticket{direct: true}
		}
		failures++
		c.count(lc, obs.CSNZICASRetry, id)
	}
}

// count records one event into the caller's buffer when it has one,
// else into the C-SNZI's shared stats block.
func (c *CSNZI) count(lc *obs.Local, e obs.Event, id int) {
	if lc != nil {
		lc.Inc(e)
		return
	}
	c.stats.Inc(e, id)
}

// Depart decrements the surplus. It returns false iff the resulting
// state is closed with zero surplus — i.e. the caller was the last
// departer from a closed C-SNZI and must hand the guarded resource to
// the closer. The ticket must come from a successful Arrive (or be a
// DirectTicket matched by an OpenWithArrivals), each ticket departing at
// most once per arrival.
func (c *CSNZI) Depart(t Ticket) bool {
	if t.n == nil {
		if !t.direct {
			panic("csnzi: Depart with failed ticket")
		}
		return c.rootDepartDirect()
	}
	return t.n.treeDepart()
}

// Query returns whether the C-SNZI has a surplus and whether it is open.
func (c *CSNZI) Query() (nonzero, open bool) {
	w := c.root.Load()
	return surplus(w) > 0, !isClosed(w)
}

// Close transitions the C-SNZI from open to closed. It returns true iff
// the state changed from OPEN to CLOSED with the surplus zero (and still
// zero: arrivals can no longer succeed) — for the locks, "true" means
// the closer acquired the lock for writing outright.
func (c *CSNZI) Close() bool {
	for {
		old := c.root.Load()
		if isClosed(old) {
			return false
		}
		new := old | closedBit
		if c.root.CompareAndSwap(old, new) {
			c.stats.Inc(obs.CSNZIClose, 0)
			return new == closedBit
		}
	}
}

// CloseIfEmpty closes the C-SNZI only if it is open with zero surplus,
// reporting whether it did. This is the writer fast path: one CAS
// acquires a free lock.
func (c *CSNZI) CloseIfEmpty() bool {
	for {
		old := c.root.Load()
		if old != 0 {
			return false
		}
		if c.root.CompareAndSwap(0, closedBit) {
			c.stats.Inc(obs.CSNZIClose, 0)
			return true
		}
	}
}

// Open reopens the C-SNZI. It requires (and panics otherwise) that the
// C-SNZI is closed with zero surplus, per the Figure 1 specification.
func (c *CSNZI) Open() {
	if w := c.root.Load(); w != closedBit {
		panic(fmt.Sprintf("csnzi: Open on %s", describe(w)))
	}
	c.stats.Inc(obs.CSNZIOpen, 0)
	c.root.Store(0)
}

// OpenWithArrivals atomically opens the C-SNZI, performs cnt direct
// arrivals, and, if close is set, closes it again (§2.1). The matching
// departures must use DirectTicket. Like Open it requires the C-SNZI to
// be closed with zero surplus. It panics if cnt is negative or exceeds
// the 31-bit counter range.
func (c *CSNZI) OpenWithArrivals(cnt int, close bool) {
	if cnt < 0 || uint64(cnt) > count31 {
		panic(fmt.Sprintf("csnzi: OpenWithArrivals count %d out of range", cnt))
	}
	if w := c.root.Load(); w != closedBit {
		panic(fmt.Sprintf("csnzi: OpenWithArrivals on %s", describe(w)))
	}
	w := uint64(cnt)
	if close {
		w |= closedBit
	}
	c.stats.Inc(obs.CSNZIOpen, 0)
	c.root.Store(w)
}

// --- Write-upgrade support (§3.2.1) ---

// TradeToRoot converts a tree ticket into a direct ticket by arriving
// directly at the root and then departing from the original node. After
// TradeToRoot the caller's surplus contribution is recorded in the
// direct counter, so SoleDirect can answer "am I the only arriver?".
//
// The caller must currently hold a successful arrival (surplus > 0), so
// the direct arrival is performed even if the C-SNZI is closed: it is an
// internal transfer, not a new logical arrival. Direct tickets are
// returned unchanged.
func (c *CSNZI) TradeToRoot(t Ticket) Ticket {
	if t.direct {
		return t
	}
	if t.n == nil {
		panic("csnzi: TradeToRoot with failed ticket")
	}
	// Unconditional direct arrival: surplus is provably nonzero (we hold
	// an arrival), so this cannot resurrect a drained closed C-SNZI.
	for {
		old := c.root.Load()
		if c.root.CompareAndSwap(old, old+1) {
			break
		}
	}
	t.n.treeDepart()
	return Ticket{direct: true}
}

// SoleDirect reports whether the direct counter is exactly one and the
// tree counter zero — i.e. whether a caller who holds a direct ticket is
// the only thread with an arrival.
func (c *CSNZI) SoleDirect() bool {
	w := c.root.Load()
	return directCount(w) == 1 && treeCount(w) == 0
}

// TryUpgrade attempts to atomically transition from "sole direct
// arrival" to "closed with zero surplus" (write-acquired), regardless of
// the current open/closed state. On success the caller's direct arrival
// is consumed (do not Depart it) and the caller owns the closed C-SNZI.
// It fails if any other arrival exists.
func (c *CSNZI) TryUpgrade() bool {
	for {
		old := c.root.Load()
		if directCount(old) != 1 || treeCount(old) != 0 {
			return false
		}
		if c.root.CompareAndSwap(old, closedBit) {
			return true
		}
	}
}

// --- root helpers ---

func (c *CSNZI) rootDepartDirect() bool {
	for {
		old := c.root.Load()
		new := old - 1
		if c.root.CompareAndSwap(old, new) {
			return new != closedBit
		}
	}
}

// rootTreeArrive is the base case of treeArrive: it fails only when the
// whole C-SNZI is closed with zero surplus. (If it is closed but some
// surplus exists, the arrival is linearized at the earlier moment the
// arriving thread saw the C-SNZI open — see §2.2.)
func (c *CSNZI) rootTreeArrive() bool {
	for {
		old := c.root.Load()
		if old == closedBit {
			return false
		}
		if c.root.CompareAndSwap(old, old+treeOne) {
			return true
		}
	}
}

func (c *CSNZI) rootTreeDepart() bool {
	for {
		old := c.root.Load()
		new := old - treeOne
		if c.root.CompareAndSwap(old, new) {
			return new != closedBit
		}
	}
}

// --- tree nodes ---

// treeArrive increments this node, returning false iff the arrival
// failed because the C-SNZI is closed with zero surplus.
//
// A node at zero is claimed with the intermediate state; only the
// claimer arrives at the parent (before publishing the node's nonzero
// count, so a failed parent arrival needs no cleanup beyond the local
// unwind — the property that makes closability cheap). Concurrent
// arrivers join provisionally and share the claimer's outcome.
func (n *node) treeArrive() bool {
	for {
		x := n.cnt.Load()
		switch {
		case x&nodeFailBit != 0:
			// A failed zero-crossing is unwinding; wait it out.
			atomicx.SpinUntil(func() bool { return n.cnt.Load()&nodeFailBit == 0 })

		case x&nodeHalfBit != 0:
			// Zero-crossing in flight: join provisionally.
			if !n.cnt.CompareAndSwap(x, x+1) {
				continue
			}
			atomicx.SpinUntil(func() bool { return n.cnt.Load()&nodeHalfBit == 0 })
			if n.cnt.Load()&nodeFailBit == 0 {
				return true // counted; the claimer's parent arrival stands
			}
			n.uncount()
			return false

		case x > 0:
			if n.cnt.CompareAndSwap(x, x+1) {
				return true
			}

		default: // x == 0: claim the zero-crossing
			if !n.cnt.CompareAndSwap(0, nodeHalfBit|1) {
				continue
			}
			ok := n.parentArrive()
			// Resolve: publish the count on success; otherwise un-count
			// ourselves and hand the unwind to any provisional joiners.
			for {
				x := n.cnt.Load()
				cnt := x & nodeCountMask
				var next uint64
				switch {
				case ok:
					next = cnt
				case cnt == 1:
					next = 0
				default:
					next = nodeFailBit | (cnt - 1)
				}
				if n.cnt.CompareAndSwap(x, next) {
					return ok
				}
			}
		}
	}
}

// uncount removes one provisional arrival during a failure unwind; the
// last leaver returns the node to zero (clearing the fail flag).
func (n *node) uncount() {
	for {
		x := n.cnt.Load()
		cnt := x & nodeCountMask
		var next uint64
		if cnt == 1 {
			next = 0
		} else {
			next = nodeFailBit | (cnt - 1)
		}
		if n.cnt.CompareAndSwap(x, next) {
			return
		}
	}
}

// treeDepart decrements this node, propagating to the parent when the
// count returns to zero. Returns false iff the C-SNZI ends closed with
// zero surplus. The flags are never visible here: the departer's own
// arrival keeps the count positive until this CAS.
func (n *node) treeDepart() bool {
	for {
		x := n.cnt.Load()
		if x&(nodeHalfBit|nodeFailBit) != 0 || x == 0 {
			panic("csnzi: Depart without matching arrival")
		}
		if n.cnt.CompareAndSwap(x, x-1) {
			if x == 1 {
				return n.parentDepart()
			}
			return true
		}
	}
}

func (n *node) parentArrive() bool {
	if n.parent == nil {
		return n.owner.rootTreeArrive()
	}
	return n.parent.treeArrive()
}

func (n *node) parentDepart() bool {
	if n.parent == nil {
		return n.owner.rootTreeDepart()
	}
	return n.parent.treeDepart()
}

// leafFor returns the leaf node assigned to id, building the tree on
// first use (lazy allocation, §2.2: only contended C-SNZIs pay the
// space).
func (c *CSNZI) leafFor(id int) *node {
	t := c.tree.Load()
	if t == nil {
		t = c.buildTree()
	}
	if id < 0 {
		id = -id
	}
	return &t.leaves[id%len(t.leaves)]
}

func (c *CSNZI) buildTree() *tree {
	t := &tree{leaves: make([]node, c.leaves)}
	layer := make([]*node, c.leaves)
	for i := range t.leaves {
		layer[i] = &t.leaves[i]
	}
	for len(layer) > c.fanout {
		nParents := (len(layer) + c.fanout - 1) / c.fanout
		parentNodes := make([]node, nParents)
		t.inner = append(t.inner, parentNodes)
		for i, child := range layer {
			child.parent = &parentNodes[i/c.fanout]
		}
		layer = layer[:nParents]
		for i := range layer {
			layer[i] = &parentNodes[i]
		}
	}
	for i := range t.leaves {
		t.leaves[i].owner = c
	}
	for _, ns := range t.inner {
		for i := range ns {
			ns[i].owner = c
		}
	}
	if c.tree.CompareAndSwap(nil, t) {
		return t
	}
	return c.tree.Load()
}

// TreeAllocated reports whether the leaf tree has been built; exposed
// for tests asserting lazy allocation.
func (c *CSNZI) TreeAllocated() bool { return c.tree.Load() != nil }

// Snapshot returns the current root word decomposed for diagnostics and
// tests: the direct count, tree count, and open flag. The three values
// are mutually consistent (single atomic load).
func (c *CSNZI) Snapshot() (direct, tree uint64, open bool) {
	w := c.root.Load()
	return directCount(w), treeCount(w), !isClosed(w)
}

func describe(w uint64) string {
	state := "OPEN"
	if isClosed(w) {
		state = "CLOSED"
	}
	return fmt.Sprintf("C-SNZI{state=%s direct=%d tree=%d}", state, directCount(w), treeCount(w))
}

// Describe renders the current root word for diagnostics — the decoded
// indicator state a trace watchdog dump reports for C-SNZI-backed
// locks.
func (c *CSNZI) Describe() string { return describe(c.root.Load()) }
