package csnzi

import (
	"sync"
	"sync/atomic"
	"testing"
)

// These tests target the intermediate-state (half/fail) node protocol:
// concurrent zero-crossing arrivals at one leaf, and the failure unwind
// when the C-SNZI is closed mid-crossing.

// TestZeroCrossingStorm hammers a single leaf with concurrent
// arrive/depart pairs so the count crosses zero constantly, exercising
// claim, provisional join, and resolution under real concurrency.
func TestZeroCrossingStorm(t *testing.T) {
	c := New(WithLeaves(1), WithDirectRetries(0))
	const goroutines, iters = 8, 4000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tk := c.Arrive(id)
				if !tk.Arrived() {
					t.Error("arrival failed on an open C-SNZI")
					return
				}
				if nz, _ := c.Query(); !nz {
					t.Error("no surplus while holding an arrival")
					return
				}
				c.Depart(tk)
			}
		}(g)
	}
	wg.Wait()
	if nz, open := c.Query(); nz || !open {
		t.Fatalf("final state (nz=%v open=%v), want drained and open", nz, open)
	}
	// The leaf itself must be exactly zero (no stuck flags or counts).
	leaf := &c.tree.Load().leaves[0]
	if v := leaf.cnt.Load(); v != 0 {
		t.Fatalf("leaf count = %#x after quiescence, want 0", v)
	}
}

// TestFailureUnwindUnderClose: with the C-SNZI closed and empty
// (write-acquired), a burst of concurrent tree arrivals must all fail
// and leave every node at exactly zero.
func TestFailureUnwindUnderClose(t *testing.T) {
	c := New(WithLeaves(1), WithDirectRetries(0))
	// Build the tree first (one arrival), then close empty.
	tk := c.Arrive(0)
	c.Depart(tk)
	if !c.CloseIfEmpty() {
		t.Fatal("CloseIfEmpty failed")
	}
	const goroutines = 8
	var failed atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if c.Arrive(id).Arrived() {
					t.Error("arrival succeeded on closed empty C-SNZI")
					return
				}
				failed.Add(1)
			}
		}(g)
	}
	wg.Wait()
	if failed.Load() != goroutines*500 {
		t.Fatalf("%d failures recorded, want %d", failed.Load(), goroutines*500)
	}
	leaf := &c.tree.Load().leaves[0]
	if v := leaf.cnt.Load(); v != 0 {
		t.Fatalf("leaf count = %#x after failed burst, want 0", v)
	}
	c.Open()
	if !c.Arrive(1).Arrived() {
		t.Fatal("arrival failed after reopen")
	}
}

// TestCloseRacingZeroCrossing interleaves closers with leaf arrivals so
// some crossings succeed and some hit the closed root mid-claim; the
// exclusive-ownership invariant must hold throughout.
func TestCloseRacingZeroCrossing(t *testing.T) {
	c := New(WithLeaves(2), WithDirectRetries(0))
	var exclusive atomic.Int32
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !stop.Load() {
				tk := c.Arrive(id)
				if !tk.Arrived() {
					continue
				}
				if !c.Depart(tk) {
					// Last departer from a closed C-SNZI: exclusive.
					if n := exclusive.Add(1); n != 1 {
						t.Errorf("%d exclusive owners", n)
					}
					exclusive.Add(-1)
					c.Open()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			if c.Close() {
				if n := exclusive.Add(1); n != 1 {
					t.Errorf("%d exclusive owners", n)
				}
				exclusive.Add(-1)
				c.Open()
			}
		}
		stop.Store(true)
	}()
	wg.Wait()
}

// TestDepartPanicsOnOverDepart: the flag-protocol depart asserts it
// never runs without a matching arrival.
func TestDepartPanicsOnOverDepart(t *testing.T) {
	c := New(WithLeaves(1), WithDirectRetries(0))
	tk := c.Arrive(0)
	c.Depart(tk)
	defer func() {
		if recover() == nil {
			t.Fatal("double depart did not panic")
		}
	}()
	c.Depart(tk) // ticket already spent
}

// TestDeepTreeZeroCrossing exercises the claim protocol recursively
// through interior nodes.
func TestDeepTreeZeroCrossing(t *testing.T) {
	c := New(WithLeaves(8), WithFanout(2), WithDirectRetries(0))
	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tk := c.Arrive(id)
				c.Depart(tk)
			}
		}(g)
	}
	wg.Wait()
	if nz, _ := c.Query(); nz {
		t.Fatal("surplus left after quiescence")
	}
	tr := c.tree.Load()
	for i := range tr.leaves {
		if v := tr.leaves[i].cnt.Load(); v != 0 {
			t.Fatalf("leaf %d = %#x, want 0", i, v)
		}
	}
	for _, layer := range tr.inner {
		for i := range layer {
			if v := layer[i].cnt.Load(); v != 0 {
				t.Fatalf("interior node = %#x, want 0", v)
			}
		}
	}
}
