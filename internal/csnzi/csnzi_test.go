package csnzi

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"ollock/internal/xrand"
)

// specModel is the sequential C-SNZI specification of Figure 1, used as
// the reference for property tests.
type specModel struct {
	surplus int
	open    bool
}

func newSpecModel() *specModel { return &specModel{open: true} }

func (m *specModel) Arrive() bool {
	if m.open {
		m.surplus++
		return true
	}
	return false
}

func (m *specModel) Depart() bool {
	if m.surplus <= 0 {
		panic("spec: Depart with no surplus")
	}
	m.surplus--
	return !(m.surplus == 0 && !m.open)
}

func (m *specModel) Close() bool {
	if m.open {
		m.open = false
		return m.surplus == 0
	}
	return false
}

func (m *specModel) CloseIfEmpty() bool {
	if m.open && m.surplus == 0 {
		m.open = false
		return true
	}
	return false
}

func (m *specModel) Open() {
	if m.open || m.surplus != 0 {
		panic("spec: Open precondition violated")
	}
	m.open = true
}

func (m *specModel) OpenWithArrivals(cnt int, close bool) {
	if m.open || m.surplus != 0 {
		panic("spec: OpenWithArrivals precondition violated")
	}
	m.surplus = cnt
	m.open = !close
}

func (m *specModel) Query() (bool, bool) { return m.surplus > 0, m.open }

// TestMatchesSpecModel drives random operation sequences through both
// the implementation and the Figure 1 reference model and requires
// identical observable behaviour at every step. This is the main
// functional-correctness property test for the C-SNZI.
func TestMatchesSpecModel(t *testing.T) {
	configs := []struct {
		name string
		opts []Option
	}{
		{"flat", []Option{WithLeaves(4), WithDirectRetries(0)}},
		{"deep", []Option{WithLeaves(8), WithFanout(2), WithDirectRetries(0)}},
		{"rootOnly", []Option{WithLeaves(0)}},
		{"default", nil},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			if err := quick.Check(func(seed uint64) bool {
				return runSpecComparison(t, seed, cfg.opts)
			}, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

func runSpecComparison(t *testing.T, seed uint64, opts []Option) bool {
	r := xrand.New(seed)
	c := New(opts...)
	m := newSpecModel()
	var tickets []Ticket // successful, not-yet-departed arrivals
	// directOwed tracks arrivals granted via OpenWithArrivals; they
	// depart with DirectTicket.
	directOwed := 0
	for op := 0; op < 500; op++ {
		switch r.Intn(6) {
		case 0, 1: // Arrive
			tk := c.Arrive(r.Intn(16))
			want := m.Arrive()
			if tk.Arrived() != want {
				t.Logf("seed %d op %d: Arrive = %v, spec %v", seed, op, tk.Arrived(), want)
				return false
			}
			if !want && m.surplus > 0 {
				// Spec bookkeeping: failed model arrivals roll back.
			}
			if tk.Arrived() {
				tickets = append(tickets, tk)
			} else {
				// model.Arrive already returned false without counting
			}
		case 2: // Depart
			if len(tickets)+directOwed == 0 {
				continue
			}
			var got bool
			if directOwed > 0 && (len(tickets) == 0 || r.Bool(0.5)) {
				got = c.Depart(c.DirectTicket())
				directOwed--
			} else {
				i := r.Intn(len(tickets))
				got = c.Depart(tickets[i])
				tickets[i] = tickets[len(tickets)-1]
				tickets = tickets[:len(tickets)-1]
			}
			want := m.Depart()
			if got != want {
				t.Logf("seed %d op %d: Depart = %v, spec %v", seed, op, got, want)
				return false
			}
		case 3: // Close or CloseIfEmpty
			if r.Bool(0.5) {
				if got, want := c.Close(), m.Close(); got != want {
					t.Logf("seed %d op %d: Close = %v, spec %v", seed, op, got, want)
					return false
				}
			} else {
				if got, want := c.CloseIfEmpty(), m.CloseIfEmpty(); got != want {
					t.Logf("seed %d op %d: CloseIfEmpty = %v, spec %v", seed, op, got, want)
					return false
				}
			}
		case 4: // Open / OpenWithArrivals when precondition holds
			if m.open || m.surplus != 0 {
				continue
			}
			if r.Bool(0.5) {
				c.Open()
				m.Open()
			} else {
				n := r.Intn(5)
				cl := r.Bool(0.5)
				c.OpenWithArrivals(n, cl)
				m.OpenWithArrivals(n, cl)
				directOwed += n
			}
		case 5: // Query
			gotNZ, gotOpen := c.Query()
			wantNZ, wantOpen := m.Query()
			if gotNZ != wantNZ || gotOpen != wantOpen {
				t.Logf("seed %d op %d: Query = (%v,%v), spec (%v,%v)", seed, op, gotNZ, gotOpen, wantNZ, wantOpen)
				return false
			}
		}
	}
	return true
}

func TestLifecycleAsLockState(t *testing.T) {
	// Walk the exact state transitions the GOLL lock performs.
	c := New()

	// Writer acquires free lock.
	if !c.CloseIfEmpty() {
		t.Fatal("CloseIfEmpty on free C-SNZI failed")
	}
	// Reader attempt fails while write-locked.
	if c.Arrive(1).Arrived() {
		t.Fatal("Arrive succeeded on closed C-SNZI")
	}
	// Second writer attempt fails.
	if c.CloseIfEmpty() {
		t.Fatal("CloseIfEmpty succeeded on closed C-SNZI")
	}
	if c.Close() {
		t.Fatal("Close on closed C-SNZI returned true")
	}
	// Writer hands over to 3 readers with another writer waiting: open
	// with arrivals, immediately re-closed.
	c.OpenWithArrivals(3, true)
	nz, open := c.Query()
	if !nz || open {
		t.Fatalf("Query = (%v,%v), want (true,false)", nz, open)
	}
	// New readers cannot join (writer waiting).
	if c.Arrive(2).Arrived() {
		t.Fatal("Arrive succeeded while closed with surplus")
	}
	// The three readers depart; the last one must see false (handoff).
	if !c.Depart(c.DirectTicket()) || !c.Depart(c.DirectTicket()) {
		t.Fatal("non-last Depart returned false")
	}
	if c.Depart(c.DirectTicket()) {
		t.Fatal("last Depart from closed C-SNZI returned true")
	}
	// Lock is now write-acquired by the waiting writer; it releases.
	c.Open()
	if !c.Arrive(3).Arrived() {
		t.Fatal("Arrive failed on reopened C-SNZI")
	}
}

func TestCloseWithSurplusThenDrain(t *testing.T) {
	c := New(WithLeaves(4), WithDirectRetries(0))
	t1 := c.Arrive(0)
	t2 := c.Arrive(1)
	if c.Close() {
		t.Fatal("Close with surplus returned true")
	}
	if c.Depart(t1) != true {
		t.Fatal("first Depart (surplus 2->1) returned false")
	}
	if c.Depart(t2) != false {
		t.Fatal("last Depart from closed C-SNZI returned true")
	}
	// Now closed with zero surplus: arrivals keep failing.
	if c.Arrive(2).Arrived() {
		t.Fatal("Arrive succeeded on drained closed C-SNZI")
	}
}

func TestOpenPanicsWhenOpen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Open on open C-SNZI did not panic")
		}
	}()
	New().Open()
}

func TestOpenPanicsWithSurplus(t *testing.T) {
	c := New()
	tk := c.Arrive(0)
	c.Close()
	_ = tk
	defer func() {
		if recover() == nil {
			t.Fatal("Open with surplus did not panic")
		}
	}()
	c.Open()
}

func TestOpenWithArrivalsRangeCheck(t *testing.T) {
	c := New()
	c.CloseIfEmpty()
	defer func() {
		if recover() == nil {
			t.Fatal("OpenWithArrivals(-1) did not panic")
		}
	}()
	c.OpenWithArrivals(-1, false)
}

func TestDepartFailedTicketPanics(t *testing.T) {
	c := New()
	c.CloseIfEmpty()
	bad := c.Arrive(0) // fails
	defer func() {
		if recover() == nil {
			t.Fatal("Depart(failed ticket) did not panic")
		}
	}()
	c.Depart(bad)
}

func TestLazyTreeAllocation(t *testing.T) {
	c := New()
	tk := c.Arrive(0)
	c.Depart(tk)
	if c.TreeAllocated() {
		t.Fatal("tree allocated on uncontended direct path")
	}
	// Force tree usage.
	c2 := New(WithDirectRetries(0), WithLeaves(2))
	tk2 := c2.Arrive(0)
	if !c2.TreeAllocated() {
		t.Fatal("tree not allocated with DirectRetries=0")
	}
	c2.Depart(tk2)
}

func TestTreeCountAttractsArrivals(t *testing.T) {
	// Once one thread arrives via the tree, subsequent arrivals must
	// also use the tree (tree count > 0 policy) rather than the root.
	c := New(WithLeaves(4), WithDirectRetries(0))
	t1 := c.Arrive(0)
	d0, tr0, _ := c.Snapshot()
	if d0 != 0 || tr0 != 1 {
		t.Fatalf("after tree arrival Snapshot = (%d,%d), want (0,1)", d0, tr0)
	}
	// Same leaf again: tree count at root stays 1 (no propagation).
	t2 := c.Arrive(0)
	d1, tr1, _ := c.Snapshot()
	if d1 != 0 || tr1 != 1 {
		t.Fatalf("second arrival at same leaf Snapshot = (%d,%d), want (0,1)", d1, tr1)
	}
	c.Depart(t2)
	c.Depart(t1)
	if nz, _ := c.Query(); nz {
		t.Fatal("surplus left")
	}
}

func TestTradeToRootAndSoleDirect(t *testing.T) {
	c := New(WithLeaves(4), WithDirectRetries(0))
	tk := c.Arrive(5) // tree arrival
	if tk.Direct() {
		t.Fatal("expected tree ticket with DirectRetries=0")
	}
	if c.SoleDirect() {
		t.Fatal("SoleDirect true with a tree arrival outstanding")
	}
	tk = c.TradeToRoot(tk)
	if !tk.Direct() {
		t.Fatal("TradeToRoot did not return a direct ticket")
	}
	if !c.SoleDirect() {
		t.Fatal("SoleDirect false after trading the only arrival to the root")
	}
	d, tr, open := c.Snapshot()
	if d != 1 || tr != 0 || !open {
		t.Fatalf("Snapshot = (%d,%d,%v), want (1,0,true)", d, tr, open)
	}
	c.Depart(tk)
}

func TestTradeToRootIdempotentOnDirect(t *testing.T) {
	c := New()
	tk := c.Arrive(0) // direct
	tk2 := c.TradeToRoot(tk)
	if !tk2.Direct() {
		t.Fatal("direct ticket lost direct-ness")
	}
	d, _, _ := c.Snapshot()
	if d != 1 {
		t.Fatalf("direct count = %d after no-op trade, want 1", d)
	}
	c.Depart(tk2)
}

func TestTryUpgrade(t *testing.T) {
	c := New()
	tk := c.Arrive(0)
	_ = tk
	if !c.TryUpgrade() {
		t.Fatal("TryUpgrade failed as the sole reader")
	}
	d, tr, open := c.Snapshot()
	if d != 0 || tr != 0 || open {
		t.Fatalf("after upgrade Snapshot = (%d,%d,%v), want (0,0,false)", d, tr, open)
	}
	// The upgraded holder is now a writer; release.
	c.Open()
}

func TestTryUpgradeFailsWithOtherReaders(t *testing.T) {
	c := New()
	t1 := c.Arrive(0)
	t2 := c.Arrive(1)
	if c.TryUpgrade() {
		t.Fatal("TryUpgrade succeeded with two readers")
	}
	c.Depart(t1)
	c.Depart(t2)
}

func TestTryUpgradeWhileClosed(t *testing.T) {
	// A writer is waiting (C-SNZI closed with our surplus); upgrade must
	// still succeed for the sole reader, leaving the lock write-acquired.
	c := New()
	tk := c.Arrive(0)
	_ = tk
	if c.Close() {
		t.Fatal("Close returned true with a reader present")
	}
	if !c.TryUpgrade() {
		t.Fatal("TryUpgrade failed for sole reader under closed C-SNZI")
	}
	d, tr, open := c.Snapshot()
	if d != 0 || tr != 0 || open {
		t.Fatalf("Snapshot = (%d,%d,%v), want (0,0,false)", d, tr, open)
	}
}

func TestConcurrentReadersNoWriters(t *testing.T) {
	c := New(WithLeaves(8))
	const goroutines, iters = 8, 3000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tk := c.Arrive(id)
				if !tk.Arrived() {
					t.Error("Arrive failed on an open C-SNZI")
					return
				}
				if nz, _ := c.Query(); !nz {
					t.Error("Query reported no surplus while holding arrival")
					return
				}
				c.Depart(tk)
			}
		}(g)
	}
	wg.Wait()
	if nz, open := c.Query(); nz || !open {
		t.Fatalf("final Query = (%v,%v), want (false,true)", nz, open)
	}
}

func TestConcurrentReadersAndClosers(t *testing.T) {
	// Readers arrive/depart while a closer repeatedly closes and, once
	// drained, reopens. Invariant: a "last depart" (Depart==false) or a
	// "Close returned true" gives the closer exclusive ownership; both
	// must never be outstanding at once, and every close is eventually
	// reopened.
	c := New(WithLeaves(8))
	var exclusiveOwners atomic.Int32
	var stop atomic.Bool
	var wg sync.WaitGroup

	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !stop.Load() {
				tk := c.Arrive(id)
				if !tk.Arrived() {
					continue // closed; retry
				}
				if !c.Depart(tk) {
					// We were the last departer from a closed C-SNZI: we
					// own the handoff and must reopen on the closer's
					// behalf.
					if n := exclusiveOwners.Add(1); n != 1 {
						t.Errorf("%d simultaneous exclusive owners", n)
					}
					exclusiveOwners.Add(-1)
					c.Open()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			if c.Close() {
				// Acquired exclusively with zero surplus.
				if n := exclusiveOwners.Add(1); n != 1 {
					t.Errorf("%d simultaneous exclusive owners", n)
				}
				exclusiveOwners.Add(-1)
				c.Open()
			}
			// If Close returned false either it was already closed or
			// surplus existed; the last departer reopens.
		}
		stop.Store(true)
	}()
	wg.Wait()
}

func TestSnapshotConsistency(t *testing.T) {
	c := New(WithLeaves(0))
	tks := make([]Ticket, 5)
	for i := range tks {
		tks[i] = c.Arrive(i)
	}
	d, tr, open := c.Snapshot()
	if d != 5 || tr != 0 || !open {
		t.Fatalf("Snapshot = (%d,%d,%v), want (5,0,true)", d, tr, open)
	}
	for _, tk := range tks {
		c.Depart(tk)
	}
}

func BenchmarkArriveDepartUncontendedDirect(b *testing.B) {
	c := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Depart(c.Arrive(0))
	}
}

func BenchmarkArriveDepartTreePath(b *testing.B) {
	c := New(WithLeaves(8), WithDirectRetries(0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Depart(c.Arrive(0))
	}
}

func BenchmarkArriveDepartParallel(b *testing.B) {
	c := New(WithLeaves(64))
	var id atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		me := int(id.Add(1))
		for pb.Next() {
			c.Depart(c.Arrive(me))
		}
	})
}

// Ablation: tree width sweep for the contended arrival path.
func BenchmarkTreeWidth(b *testing.B) {
	for _, leaves := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		b.Run(benchName("leaves", leaves), func(b *testing.B) {
			c := New(WithLeaves(leaves), WithDirectRetries(0))
			var id atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				me := int(id.Add(1))
				for pb.Next() {
					c.Depart(c.Arrive(me))
				}
			})
		})
	}
}

// Ablation: direct-retry threshold for the adaptive arrival policy.
func BenchmarkDirectRetries(b *testing.B) {
	for _, retries := range []int{0, 1, 2, 4, 8} {
		b.Run(benchName("retries", retries), func(b *testing.B) {
			c := New(WithLeaves(32), WithDirectRetries(retries))
			var id atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				me := int(id.Add(1))
				for pb.Next() {
					c.Depart(c.Arrive(me))
				}
			})
		})
	}
}

func benchName(k string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return k + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return k + "=" + string(buf[i:])
}
