package prof_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ollock/internal/prof"
)

// The shim pair below reconstructs the production call shape so the
// capture skip count (tuned for lock method → lockcore helper →
// Acquired → capture) lands where it does in real locks: profAcquire
// plays the lockcore ProcInstr helper, lockEnter plays the lock
// method — so lockEnter is the recorded leaf frame and the test
// function is the caller frame, exactly like goll.(*Proc).Lock and the
// user's call site.

//go:noinline
func profAcquire(lo *prof.Local, block time.Duration) {
	ts := lo.Tick()
	if ts != 0 && block > 0 {
		time.Sleep(block)
	}
	lo.Acquired(ts, block > 0)
}

//go:noinline
func lockEnter(lo *prof.Local, block time.Duration) {
	profAcquire(lo, block)
}

// TestSampledAcquisitionAccounting drives sampled contended
// acquisitions with holds through the shims and checks the accumulated
// record: counts scaled by the rate, blocked and held time nonzero,
// leaf frame on the shim lock method.
func TestSampledAcquisitionAccounting(t *testing.T) {
	p := prof.New(2)
	lo := p.Register("unit").NewLocal()
	const calls = 10
	for i := 0; i < calls; i++ {
		lockEnter(lo, time.Millisecond)
		time.Sleep(time.Millisecond)
		lo.Released()
	}
	s := p.Profile()
	if len(s.Records) != 1 {
		t.Fatalf("got %d records, want 1 (single call site)", len(s.Records))
	}
	r := s.Records[0]
	if r.Lock != "unit" {
		t.Errorf("record lock %q, want %q", r.Lock, "unit")
	}
	// rate 2, 10 calls: 5 elected samples, scaled back to 10.
	if r.Contentions != calls {
		t.Errorf("scaled contentions = %d, want %d", r.Contentions, calls)
	}
	if r.Holds != calls {
		t.Errorf("scaled holds = %d, want %d", r.Holds, calls)
	}
	if r.DelayNs == 0 {
		t.Error("contended sampled acquisitions accumulated no blocked time")
	}
	if r.HeldNs == 0 {
		t.Error("released holds accumulated no held time")
	}
	site := r.Site()
	if site.Func == "" {
		t.Error("record site did not symbolize")
	}
}

// TestUncontendedSampleIsHoldOnly: a fast-path (contended=false) sample
// arms the hold but charges no contention.
func TestUncontendedSampleIsHoldOnly(t *testing.T) {
	p := prof.New(1)
	lo := p.Register("fast").NewLocal()
	lockEnter(lo, 0)
	lo.Released()
	s := p.Profile()
	if len(s.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(s.Records))
	}
	r := s.Records[0]
	if r.Contentions != 0 || r.DelayNs != 0 {
		t.Errorf("uncontended sample charged contention: %d / %dns", r.Contentions, r.DelayNs)
	}
	if r.Holds != 1 {
		t.Errorf("holds = %d, want 1", r.Holds)
	}
}

// TestEncodeParseRoundTrip: WriteProfile's protobuf decodes with the
// in-repo parser — schema, period, labels, symbolized leaf and caller
// frames all intact.
func TestEncodeParseRoundTrip(t *testing.T) {
	p := prof.New(1)
	lo := p.Register("rt").NewLocal()
	for i := 0; i < 4; i++ {
		lockEnter(lo, time.Millisecond)
		lo.Released()
	}
	var buf bytes.Buffer
	if err := p.Profile().WriteProfile(&buf, prof.Contention); err != nil {
		t.Fatal(err)
	}
	parsed, err := prof.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("parsing our own profile: %v", err)
	}
	if len(parsed.SampleTypes) != 2 ||
		parsed.SampleTypes[0] != (prof.PValueType{Type: "contentions", Unit: "count"}) ||
		parsed.SampleTypes[1] != (prof.PValueType{Type: "delay", Unit: "nanoseconds"}) {
		t.Fatalf("sample types = %+v, want contentions/count + delay/nanoseconds", parsed.SampleTypes)
	}
	if parsed.DefaultType != "delay" {
		t.Errorf("default sample type %q, want delay", parsed.DefaultType)
	}
	if parsed.Period != 1 || parsed.PeriodType.Type != "contentions" {
		t.Errorf("period %d/%+v, want 1 contentions/count", parsed.Period, parsed.PeriodType)
	}
	if parsed.TimeNanos == 0 {
		t.Error("profile has no timestamp")
	}
	if len(parsed.Samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(parsed.Samples))
	}
	sm := parsed.Samples[0]
	if sm.Labels["lock"] != "rt" {
		t.Errorf("sample lock label %q, want rt", sm.Labels["lock"])
	}
	if sm.Values[0] != 4 {
		t.Errorf("contentions value %d, want 4", sm.Values[0])
	}
	if sm.Values[1] <= 0 {
		t.Errorf("delay value %d, want > 0", sm.Values[1])
	}
	if len(sm.Funcs) == 0 || !strings.Contains(sm.Funcs[0], "lockEnter") {
		t.Fatalf("leaf frame = %v, want the shim lock method lockEnter first", sm.Funcs)
	}
	var caller bool
	for _, f := range sm.Funcs {
		if strings.Contains(f, "TestEncodeParseRoundTrip") {
			caller = true
		}
	}
	if !caller {
		t.Errorf("no frame symbolizes to the test call site; stack: %v", sm.Funcs)
	}
}

// TestHoldProfileEncoding: the hold metric exports holds/count +
// held/nanoseconds and skips contention-only records.
func TestHoldProfileEncoding(t *testing.T) {
	p := prof.New(1)
	lo := p.Register("h").NewLocal()
	lockEnter(lo, 0)
	time.Sleep(time.Millisecond)
	lo.Released()
	var buf bytes.Buffer
	if err := p.Profile().WriteProfile(&buf, prof.Hold); err != nil {
		t.Fatal(err)
	}
	parsed, err := prof.Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.SampleTypes) != 2 ||
		parsed.SampleTypes[0] != (prof.PValueType{Type: "holds", Unit: "count"}) ||
		parsed.SampleTypes[1] != (prof.PValueType{Type: "held", Unit: "nanoseconds"}) {
		t.Fatalf("sample types = %+v, want holds/count + held/nanoseconds", parsed.SampleTypes)
	}
	if len(parsed.Samples) != 1 || parsed.Samples[0].Values[0] != 1 || parsed.Samples[0].Values[1] <= 0 {
		t.Fatalf("hold samples = %+v, want one sample with holds=1, held>0", parsed.Samples)
	}
}

// TestFoldedOutput: the flamegraph exporter emits root-first
// semicolon-joined stacks prefixed with the lock name, space, weight.
func TestFoldedOutput(t *testing.T) {
	p := prof.New(1)
	lo := p.Register("fold").NewLocal()
	lockEnter(lo, time.Millisecond)
	lo.Released()
	var buf bytes.Buffer
	if err := p.Profile().WriteFolded(&buf, prof.Contention); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(buf.String())
	if out == "" {
		t.Fatal("folded output is empty")
	}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "fold;") {
			t.Errorf("folded line %q does not start with the lock name", line)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("folded line %q is not 'stack weight'", line)
		}
		if !strings.Contains(fields[0], "lockEnter") {
			t.Errorf("folded stack %q missing the leaf lock method", fields[0])
		}
		if !strings.HasSuffix(fields[0], "lockEnter") {
			t.Errorf("folded stack %q should end with the leaf (root-first order)", fields[0])
		}
	}
}

// TestSnapshotSub: deltas subtract per (lock, stack), drop idle rows,
// and stamp the interval duration.
func TestSnapshotSub(t *testing.T) {
	p := prof.New(1)
	lo := p.Register("d").NewLocal()
	lockEnter(lo, time.Millisecond)
	lo.Released()
	before := p.Profile()
	const extra = 3
	for i := 0; i < extra; i++ {
		lockEnter(lo, time.Millisecond)
		lo.Released()
	}
	after := p.Profile()
	delta := after.Sub(before)
	if len(delta.Records) != 1 {
		t.Fatalf("delta has %d records, want 1", len(delta.Records))
	}
	if c := delta.Records[0].Contentions; c != extra {
		t.Errorf("delta contentions = %d, want %d", c, extra)
	}
	if delta.DurationNanos <= 0 {
		t.Error("delta has no duration")
	}
	// Identical snapshots: every row is idle and dropped.
	if empty := after.Sub(after); len(empty.Records) != 0 {
		t.Errorf("self-delta has %d records, want 0", len(empty.Records))
	}
}

// TestGoToolPprofRaw shells out to `go tool pprof -raw` to prove the
// encoding is accepted by the canonical consumer, not just our own
// parser. Skipped when the toolchain is unavailable or in -short mode.
func TestGoToolPprofRaw(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: not shelling out to go tool pprof")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH")
	}
	p := prof.New(1)
	lo := p.Register("pprof").NewLocal()
	for i := 0; i < 3; i++ {
		lockEnter(lo, time.Millisecond)
		lo.Released()
	}
	file := filepath.Join(t.TempDir(), "lock.pb.gz")
	f, err := os.Create(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Profile().WriteProfile(f, prof.Contention); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(goBin, "tool", "pprof", "-raw", file).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -raw: %v\n%s", err, out)
	}
	for _, want := range []string{"contentions/count", "delay/nanoseconds", "lockEnter", "lock:[pprof]"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("pprof -raw output missing %q:\n%s", want, out)
		}
	}
}
