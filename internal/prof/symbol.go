package prof

import (
	"runtime"
	"strings"
)

// Frame is one symbolized stack frame (inline-expanded: one PC can
// yield several).
type Frame struct {
	Func string
	File string
	Line int
}

// pruneInternal drops leading (leaf-side) frames that belong to the
// profiler plumbing itself. The capture skip count already lands on
// the lock method, so normally nothing is pruned; this is the
// belt-and-braces guard against inlining shifting a
// prof/lockcore frame into the captured window.
func pruneInternal(stack []uintptr) []uintptr {
	for len(stack) > 0 {
		f := leafFunc(stack[0])
		if strings.HasPrefix(f, "ollock/internal/prof.") ||
			strings.HasPrefix(f, "ollock/internal/lockcore.") {
			stack = stack[1:]
			continue
		}
		break
	}
	return stack
}

// leafFunc names the innermost function at pc ("" when unknown).
func leafFunc(pc uintptr) string {
	frames := runtime.CallersFrames([]uintptr{pc})
	f, _ := frames.Next()
	return f.Function
}

// expandPC symbolizes one PC into its inline-expanded frames,
// innermost first (the runtime.CallersFrames order).
func expandPC(pc uintptr) []Frame {
	var out []Frame
	frames := runtime.CallersFrames([]uintptr{pc})
	for {
		f, more := frames.Next()
		if f.Function != "" || f.File != "" {
			out = append(out, Frame{Func: f.Function, File: f.File, Line: f.Line})
		}
		if !more {
			break
		}
	}
	return out
}

// symbolizeStack expands a whole (pruned) stack, leaf-first, flattening
// inline frames in place.
func symbolizeStack(stack []uintptr) []Frame {
	var out []Frame
	for _, pc := range stack {
		fs := expandPC(pc)
		if len(fs) == 0 {
			out = append(out, Frame{Func: "?", Line: 0})
			continue
		}
		out = append(out, fs...)
	}
	return out
}
