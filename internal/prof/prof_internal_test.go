package prof

import (
	"testing"
)

// TestTickPacing: the per-proc pacer elects exactly one acquisition in
// rate, and the returned timestamp is nonzero only on elections.
func TestTickPacing(t *testing.T) {
	p := New(4)
	lo := p.Register("l").NewLocal()
	elected := 0
	for i := 1; i <= 40; i++ {
		ts := lo.Tick()
		if ts != 0 {
			elected++
			if i%4 != 0 {
				t.Errorf("tick %d elected; want elections only on multiples of 4", i)
			}
		}
	}
	if elected != 10 {
		t.Fatalf("40 ticks at rate 4 elected %d samples, want 10", elected)
	}
}

// TestNilDiscipline: the whole handle chain is nil-safe — a nil
// Profiler registers a nil LockProf, which mints a nil Local, whose
// every method is a no-op.
func TestNilDiscipline(t *testing.T) {
	var p *Profiler
	lp := p.Register("x")
	if lp != nil {
		t.Fatal("nil Profiler registered a non-nil handle")
	}
	lo := lp.NewLocal()
	if lo != nil {
		t.Fatal("nil LockProf minted a non-nil Local")
	}
	if ts := lo.Tick(); ts != 0 {
		t.Fatalf("nil Local Tick() = %d, want 0", ts)
	}
	lo.Acquired(1, true) // must not panic
	lo.Contended(1)
	lo.Released()
	if p.Rate() != 0 || p.Dropped() != 0 {
		t.Fatal("nil Profiler reports nonzero rate or drops")
	}
	s := p.Profile()
	if len(s.Records) != 0 {
		t.Fatal("nil Profiler snapshot has records")
	}
	if _, ok := p.HottestSite(""); ok {
		t.Fatal("nil Profiler has a hottest site")
	}
}

// TestMergeDedup: the same (lock, stack) pair accumulates into one
// record; a different lock id with the same stack gets its own.
func TestMergeDedup(t *testing.T) {
	p := New(1)
	p.Register("a")
	p.Register("b")
	var pcs [MaxStackDepth]uintptr
	pcs[0], pcs[1] = 0x1000, 0x2000
	for i := 0; i < 3; i++ {
		p.merge(0, &pcs, 2, true, 10)
	}
	p.merge(1, &pcs, 2, true, 10)
	s := p.Profile()
	if len(s.Records) != 2 {
		t.Fatalf("got %d records, want 2 (one per lock)", len(s.Records))
	}
	byLock := map[string]Record{}
	for _, r := range s.Records {
		byLock[r.Lock] = r
	}
	if r := byLock["a"]; r.Contentions != 3 || r.DelayNs != 30 {
		t.Errorf(`lock "a" = %d contentions / %dns, want 3 / 30`, r.Contentions, r.DelayNs)
	}
	if r := byLock["b"]; r.Contentions != 1 || r.DelayNs != 10 {
		t.Errorf(`lock "b" = %d contentions / %dns, want 1 / 10`, r.Contentions, r.DelayNs)
	}
}

// TestTableDropsOnFullProbeWindow: when a probe window fills, samples
// are dropped and counted instead of growing the table or corrupting
// existing records.
func TestTableDropsOnFullProbeWindow(t *testing.T) {
	p := New(1)
	p.Register("drop")
	// A marker record inserted first; its counts must survive the flood.
	var marker [MaxStackDepth]uintptr
	marker[0] = 0xfeed
	p.merge(0, &marker, 1, true, 7)

	var pcs [MaxStackDepth]uintptr
	inserted := 0
	for i := uintptr(1); p.Dropped() == 0 && i < 1<<20; i++ {
		pcs[0] = i << 4 // spread across shards and slots
		p.merge(0, &pcs, 1, true, 1)
		inserted++
	}
	if p.Dropped() == 0 {
		t.Fatalf("no drops after %d distinct stacks (capacity %d)", inserted, numShards*shardSlots)
	}
	s := p.Profile()
	if len(s.Records) > numShards*shardSlots {
		t.Fatalf("snapshot has %d records, above table capacity %d", len(s.Records), numShards*shardSlots)
	}
	if s.Dropped != p.Dropped() {
		t.Errorf("snapshot Dropped=%d, profiler says %d", s.Dropped, p.Dropped())
	}
	// The flood merged more into the marker's slot? No — distinct stacks
	// never alias it: re-merge the marker and check its row.
	p.merge(0, &marker, 1, true, 3)
	found := false
	for _, r := range p.Profile().Records {
		if len(r.Stack) == 1 && r.Stack[0] == 0xfeed {
			found = true
			if r.Contentions != 2 || r.DelayNs != 10 {
				t.Errorf("marker record = %d contentions / %dns, want 2 / 10", r.Contentions, r.DelayNs)
			}
		}
	}
	if !found {
		t.Error("marker record vanished under table pressure")
	}
}

// TestRateScaling: Profile multiplies raw counts by the sampling rate
// (each sampled event estimates rate real events).
func TestRateScaling(t *testing.T) {
	p := New(8)
	var pcs [MaxStackDepth]uintptr
	pcs[0] = 0x42
	p.Register("r")
	p.merge(0, &pcs, 1, true, 100)
	s := p.Profile()
	if len(s.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(s.Records))
	}
	if r := s.Records[0]; r.Contentions != 8 || r.DelayNs != 800 {
		t.Errorf("scaled record = %d contentions / %dns, want 8 / 800", r.Contentions, r.DelayNs)
	}
	if s.Rate != 8 {
		t.Errorf("snapshot Rate = %d, want 8", s.Rate)
	}
}
