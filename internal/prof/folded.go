package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteFolded writes the snapshot in folded-stack format — one
// "lock;root;...;leaf weight" line per distinct stack, root-first with
// the lock name as the synthetic root frame — directly consumable by
// flamegraph.pl, speedscope, and inferno. The weight is the metric's
// nanosecond value (contention delay or held time).
func (s *Snapshot) WriteFolded(w io.Writer, m Metric) error {
	weights := map[string]uint64{}
	for i := range s.Records {
		r := &s.Records[i]
		_, ns, ok := sampleValues(r, m)
		if !ok || ns == 0 {
			continue
		}
		frames := symbolizeStack(pruneInternal(r.Stack))
		parts := make([]string, 0, len(frames)+1)
		parts = append(parts, r.Lock)
		for j := len(frames) - 1; j >= 0; j-- {
			name := frames[j].Func
			if name == "" {
				name = "?"
			}
			parts = append(parts, name)
		}
		// Distinct PC stacks can fold to one symbolic stack (different
		// call offsets in the same caller); merge their weights.
		weights[strings.Join(parts, ";")] += ns
	}
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if weights[keys[i]] != weights[keys[j]] {
			return weights[keys[i]] > weights[keys[j]]
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, weights[k]); err != nil {
			return err
		}
	}
	return nil
}
