package prof

// This file is the validating counterpart of pproto.go: a minimal
// profile.proto decoder, enough to round-trip what the encoder emits
// (and what any conforming encoder emits for the fields we read). It
// exists so tests and `lockmon profcheck` can verify emitted profiles
// without a proto dependency or shelling out to `go tool pprof`.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// PValueType is a decoded ValueType (type/unit string pair).
type PValueType struct {
	Type string
	Unit string
}

// PSample is one decoded sample, symbolized through the profile's own
// location/function tables.
type PSample struct {
	// Funcs is the sample's stack as function names, leaf first,
	// inline-expanded in table order.
	Funcs []string
	// Values parallels the profile's sample types.
	Values []int64
	// Labels holds the sample's string labels (e.g. "lock").
	Labels map[string]string
}

// Parsed is the subset of a pprof profile the validator needs.
type Parsed struct {
	SampleTypes   []PValueType
	PeriodType    PValueType
	Period        int64
	TimeNanos     int64
	DurationNanos int64
	DefaultType   string
	Samples       []PSample
}

// Parse decodes a pprof profile.proto blob, gzip-wrapped or raw.
func Parse(data []byte) (*Parsed, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: bad gzip header: %w", err)
		}
		raw, err := io.ReadAll(gz)
		if err != nil {
			return nil, fmt.Errorf("prof: gzip body: %w", err)
		}
		data = raw
	}
	return parseProfile(data)
}

// rawSample holds a sample before symbol resolution.
type rawSample struct {
	locIDs []uint64
	values []int64
	labels [][2]uint64 // (key, str) string-table indexes
}

type rawLine struct {
	funcID uint64
}

func parseProfile(data []byte) (*Parsed, error) {
	var (
		strs        []string
		sampleTypes [][2]uint64 // (type, unit) indexes
		periodType  [2]uint64
		samples     []rawSample
		locLines    = map[uint64][]rawLine{}
		funcNames   = map[uint64]uint64{} // function id -> name index
		p           = &Parsed{}
		defaultIdx  uint64
	)
	err := eachField(data, func(field, wire int, v uint64, payload []byte) error {
		switch field {
		case fProfileSampleType:
			vt, err := parseValueType(payload)
			if err != nil {
				return err
			}
			sampleTypes = append(sampleTypes, vt)
		case fProfileSample:
			s, err := parseSample(payload)
			if err != nil {
				return err
			}
			samples = append(samples, s)
		case fProfileLocation:
			id, lines, err := parseLocation(payload)
			if err != nil {
				return err
			}
			locLines[id] = lines
		case fProfileFunction:
			id, name, err := parseFunction(payload)
			if err != nil {
				return err
			}
			funcNames[id] = name
		case fProfileStringTable:
			strs = append(strs, string(payload))
		case fProfileTimeNanos:
			p.TimeNanos = int64(v)
		case fProfileDurationNanos:
			p.DurationNanos = int64(v)
		case fProfilePeriodType:
			vt, err := parseValueType(payload)
			if err != nil {
				return err
			}
			periodType = vt
		case fProfilePeriod:
			p.Period = int64(v)
		case fProfileDefaultType:
			defaultIdx = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	str := func(i uint64) string {
		if i < uint64(len(strs)) {
			return strs[i]
		}
		return ""
	}
	for _, vt := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, PValueType{Type: str(vt[0]), Unit: str(vt[1])})
	}
	p.PeriodType = PValueType{Type: str(periodType[0]), Unit: str(periodType[1])}
	p.DefaultType = str(defaultIdx)
	for _, rs := range samples {
		ps := PSample{Values: rs.values, Labels: map[string]string{}}
		for _, id := range rs.locIDs {
			lines, ok := locLines[id]
			if !ok {
				return nil, fmt.Errorf("prof: sample references unknown location %d", id)
			}
			for _, ln := range lines {
				nameIdx, ok := funcNames[ln.funcID]
				if !ok {
					return nil, fmt.Errorf("prof: location %d references unknown function %d", id, ln.funcID)
				}
				ps.Funcs = append(ps.Funcs, str(nameIdx))
			}
		}
		for _, kv := range rs.labels {
			ps.Labels[str(kv[0])] = str(kv[1])
		}
		p.Samples = append(p.Samples, ps)
	}
	return p, nil
}

func parseValueType(b []byte) ([2]uint64, error) {
	var vt [2]uint64
	err := eachField(b, func(field, wire int, v uint64, _ []byte) error {
		switch field {
		case fValueTypeType:
			vt[0] = v
		case fValueTypeUnit:
			vt[1] = v
		}
		return nil
	})
	return vt, err
}

func parseSample(b []byte) (rawSample, error) {
	var s rawSample
	err := eachField(b, func(field, wire int, v uint64, payload []byte) error {
		switch field {
		case fSampleLocationID:
			ids, err := repeatedUint64(wire, v, payload)
			if err != nil {
				return err
			}
			s.locIDs = append(s.locIDs, ids...)
		case fSampleValue:
			vals, err := repeatedUint64(wire, v, payload)
			if err != nil {
				return err
			}
			for _, u := range vals {
				s.values = append(s.values, int64(u))
			}
		case fSampleLabel:
			var kv [2]uint64
			err := eachField(payload, func(f, _ int, lv uint64, _ []byte) error {
				switch f {
				case fLabelKey:
					kv[0] = lv
				case fLabelStr:
					kv[1] = lv
				}
				return nil
			})
			if err != nil {
				return err
			}
			s.labels = append(s.labels, kv)
		}
		return nil
	})
	return s, err
}

func parseLocation(b []byte) (id uint64, lines []rawLine, err error) {
	err = eachField(b, func(field, wire int, v uint64, payload []byte) error {
		switch field {
		case fLocationID:
			id = v
		case fLocationLine:
			var ln rawLine
			err := eachField(payload, func(f, _ int, lv uint64, _ []byte) error {
				if f == fLineFunctionID {
					ln.funcID = lv
				}
				return nil
			})
			if err != nil {
				return err
			}
			lines = append(lines, ln)
		}
		return nil
	})
	return id, lines, err
}

func parseFunction(b []byte) (id, name uint64, err error) {
	err = eachField(b, func(field, wire int, v uint64, _ []byte) error {
		switch field {
		case fFunctionID:
			id = v
		case fFunctionName:
			name = v
		}
		return nil
	})
	return id, name, err
}

// repeatedUint64 reads a repeated varint field in either encoding:
// packed (one length-delimited payload of varints) or expanded (one
// varint per field occurrence).
func repeatedUint64(wire int, v uint64, payload []byte) ([]uint64, error) {
	if wire == 0 {
		return []uint64{v}, nil
	}
	if wire != 2 {
		return nil, fmt.Errorf("prof: repeated varint field with wire type %d", wire)
	}
	var out []uint64
	for len(payload) > 0 {
		u, n := uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("prof: truncated packed varint")
		}
		out = append(out, u)
		payload = payload[n:]
	}
	return out, nil
}

// eachField walks one protobuf message, invoking fn per field with the
// varint value (wire 0/1/5, widened) or the payload (wire 2).
func eachField(b []byte, fn func(field, wire int, v uint64, payload []byte) error) error {
	for len(b) > 0 {
		key, n := uvarint(b)
		if n <= 0 {
			return fmt.Errorf("prof: truncated field key")
		}
		b = b[n:]
		field, wire := int(key>>3), int(key&7)
		var v uint64
		var payload []byte
		switch wire {
		case 0:
			v, n = uvarint(b)
			if n <= 0 {
				return fmt.Errorf("prof: truncated varint in field %d", field)
			}
			b = b[n:]
		case 1:
			if len(b) < 8 {
				return fmt.Errorf("prof: truncated fixed64 in field %d", field)
			}
			for i := 0; i < 8; i++ {
				v |= uint64(b[i]) << (8 * i)
			}
			b = b[8:]
		case 2:
			ln, n := uvarint(b)
			if n <= 0 || uint64(len(b)-n) < ln {
				return fmt.Errorf("prof: truncated length-delimited field %d", field)
			}
			payload = b[n : n+int(ln)]
			b = b[n+int(ln):]
		case 5:
			if len(b) < 4 {
				return fmt.Errorf("prof: truncated fixed32 in field %d", field)
			}
			for i := 0; i < 4; i++ {
				v |= uint64(b[i]) << (8 * i)
			}
			b = b[4:]
		default:
			return fmt.Errorf("prof: unsupported wire type %d in field %d", wire, field)
		}
		if err := fn(field, wire, v, payload); err != nil {
			return err
		}
	}
	return nil
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}
