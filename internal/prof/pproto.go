package prof

// This file is a hand-rolled, dependency-free encoder for the pprof
// profile.proto format (gzip-wrapped protobuf), producing files that
// `go tool pprof`, speedscope, and every continuous profiler consume.
// Only the wire format is implemented — varints, length-delimited
// submessages, packed repeated scalars — against the field numbers of
// github.com/google/pprof/proto/profile.proto; there is no generated
// code and no proto dependency.
//
// A contention profile carries the runtime mutex-profile sample types
// (contentions/count, delay/nanoseconds); a hold profile carries
// holds/count and held/nanoseconds. Locations are one-per-PC with full
// inline expansion via runtime.CallersFrames, and every sample is
// labeled with its lock's registered name (label key "lock"), so
// `pprof -tagfocus` splits a multi-lock profile apart.

import (
	"compress/gzip"
	"io"
)

// Metric selects which value pair a profile or folded export carries.
type Metric int

const (
	// Contention: contentions/count + delay/nanoseconds (the runtime
	// mutex-profile shape). Samples come from slow-path acquisitions.
	Contention Metric = iota
	// Hold: holds/count + held/nanoseconds. Samples come from every
	// sampled acquisition, fast or slow.
	Hold
)

func (m Metric) String() string {
	if m == Hold {
		return "hold"
	}
	return "contention"
}

// profile.proto field numbers (Profile message).
const (
	fProfileSampleType    = 1
	fProfileSample        = 2
	fProfileLocation      = 4
	fProfileFunction      = 5
	fProfileStringTable   = 6
	fProfileTimeNanos     = 9
	fProfileDurationNanos = 10
	fProfilePeriodType    = 11
	fProfilePeriod        = 12
	fProfileDefaultType   = 14
)

// ValueType fields.
const (
	fValueTypeType = 1
	fValueTypeUnit = 2
)

// Sample fields.
const (
	fSampleLocationID = 1
	fSampleValue      = 2
	fSampleLabel      = 3
)

// Label fields.
const (
	fLabelKey = 1
	fLabelStr = 2
)

// Location fields.
const (
	fLocationID      = 1
	fLocationAddress = 3
	fLocationLine    = 4
)

// Line fields.
const (
	fLineFunctionID = 1
	fLineLine       = 2
)

// Function fields.
const (
	fFunctionID         = 1
	fFunctionName       = 2
	fFunctionSystemName = 3
	fFunctionFilename   = 4
)

// pbuf is a minimal protobuf writer.
type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// tagVarint writes a wire-type-0 field.
func (p *pbuf) tagVarint(field int, v uint64) {
	p.varint(uint64(field)<<3 | 0)
	p.varint(v)
}

func (p *pbuf) tagInt64(field int, v int64) { p.tagVarint(field, uint64(v)) }

// tagBytes writes a wire-type-2 (length-delimited) field.
func (p *pbuf) tagBytes(field int, payload []byte) {
	p.varint(uint64(field)<<3 | 2)
	p.varint(uint64(len(payload)))
	p.b = append(p.b, payload...)
}

func (p *pbuf) tagString(field int, s string) {
	p.varint(uint64(field)<<3 | 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// packedUint64 writes a repeated scalar field in packed encoding.
func (p *pbuf) packedUint64(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner pbuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.tagBytes(field, inner.b)
}

func (p *pbuf) packedInt64(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var inner pbuf
	for _, v := range vs {
		inner.varint(uint64(v))
	}
	p.tagBytes(field, inner.b)
}

// stringTable interns strings; index 0 is "" per the proto contract.
type stringTable struct {
	idx  map[string]uint64
	list []string
}

func newStringTable() *stringTable {
	return &stringTable{idx: map[string]uint64{"": 0}, list: []string{""}}
}

func (st *stringTable) of(s string) uint64 {
	if i, ok := st.idx[s]; ok {
		return i
	}
	i := uint64(len(st.list))
	st.idx[s] = i
	st.list = append(st.list, s)
	return i
}

// sampleValues extracts the metric's value pair from a record,
// reporting false when the record has nothing for this metric.
func sampleValues(r *Record, m Metric) (count, ns uint64, ok bool) {
	if m == Hold {
		return r.Holds, r.HeldNs, r.Holds != 0 || r.HeldNs != 0
	}
	return r.Contentions, r.DelayNs, r.Contentions != 0 || r.DelayNs != 0
}

// WriteProfile encodes the snapshot as a gzip-compressed pprof
// profile.proto carrying the metric's value pair.
func (s *Snapshot) WriteProfile(w io.Writer, m Metric) error {
	st := newStringTable()
	var out pbuf

	// sample_type: (contentions|holds)/count, (delay|held)/nanoseconds.
	countName, nsName := "contentions", "delay"
	if m == Hold {
		countName, nsName = "holds", "held"
	}
	for _, vt := range [][2]string{{countName, "count"}, {nsName, "nanoseconds"}} {
		var b pbuf
		b.tagVarint(fValueTypeType, st.of(vt[0]))
		b.tagVarint(fValueTypeUnit, st.of(vt[1]))
		out.tagBytes(fProfileSampleType, b.b)
	}

	// Locations and functions are interned across samples: one location
	// per distinct PC (with inline expansion), one function per
	// (name, file) pair.
	locID := map[uintptr]uint64{}
	type funcKey struct{ name, file string }
	funcID := map[funcKey]uint64{}
	var locs, funcs pbuf

	locationOf := func(pc uintptr) uint64 {
		if id, ok := locID[pc]; ok {
			return id
		}
		id := uint64(len(locID) + 1)
		locID[pc] = id
		var lb pbuf
		lb.tagVarint(fLocationID, id)
		lb.tagVarint(fLocationAddress, uint64(pc))
		for _, f := range expandPC(pc) {
			if f.Func == "" && f.File == "" {
				continue
			}
			k := funcKey{f.Func, f.File}
			fid, ok := funcID[k]
			if !ok {
				fid = uint64(len(funcID) + 1)
				funcID[k] = fid
				var fb pbuf
				fb.tagVarint(fFunctionID, fid)
				fb.tagVarint(fFunctionName, st.of(f.Func))
				fb.tagVarint(fFunctionSystemName, st.of(f.Func))
				fb.tagVarint(fFunctionFilename, st.of(f.File))
				funcs.tagBytes(fProfileFunction, fb.b)
			}
			var line pbuf
			line.tagVarint(fLineFunctionID, fid)
			line.tagInt64(fLineLine, int64(f.Line))
			lb.tagBytes(fLocationLine, line.b)
		}
		locs.tagBytes(fProfileLocation, lb.b)
		return id
	}

	lockKey := st.of("lock")
	for i := range s.Records {
		r := &s.Records[i]
		count, ns, ok := sampleValues(r, m)
		if !ok {
			continue
		}
		stack := pruneInternal(r.Stack)
		if len(stack) == 0 {
			continue
		}
		ids := make([]uint64, len(stack))
		for j, pc := range stack {
			ids[j] = locationOf(pc)
		}
		var sb pbuf
		sb.packedUint64(fSampleLocationID, ids)
		sb.packedInt64(fSampleValue, []int64{int64(count), int64(ns)})
		var lb pbuf
		lb.tagVarint(fLabelKey, lockKey)
		lb.tagVarint(fLabelStr, st.of(r.Lock))
		sb.tagBytes(fSampleLabel, lb.b)
		out.tagBytes(fProfileSample, sb.b)
	}

	out.b = append(out.b, locs.b...)
	out.b = append(out.b, funcs.b...)

	// period: one sampled acquisition stands for rate acquisitions.
	var pt pbuf
	pt.tagVarint(fValueTypeType, st.of(countName))
	pt.tagVarint(fValueTypeUnit, st.of("count"))
	out.tagBytes(fProfilePeriodType, pt.b)
	out.tagInt64(fProfilePeriod, int64(s.Rate))
	out.tagInt64(fProfileTimeNanos, s.TimeNanos)
	if s.DurationNanos > 0 {
		out.tagInt64(fProfileDurationNanos, s.DurationNanos)
	}
	out.tagVarint(fProfileDefaultType, st.of(nsName))

	// The string table indexes were assigned on first use above; emit
	// it last (field order is irrelevant in protobuf).
	for _, str := range st.list {
		out.tagString(fProfileStringTable, str)
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		return err
	}
	return gz.Close()
}
