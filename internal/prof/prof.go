// Package prof is the call-site lock profiler: a sampling layer that
// answers the question neither the obs counters ("how often") nor the
// flight recorder ("which phase") can — *which code* is paying for the
// contention. On sampled slow-path acquisitions it captures the caller
// stack via runtime.Callers and accumulates per-stack records of
// contention counts, blocked nanoseconds, hold counts, and held
// nanoseconds in a striped fixed-size stack table, exactly the shape of
// the Go runtime's mutex profile but attributed per lock.
//
// Sampling follows runtime.SetMutexProfileFraction: each per-proc
// handle counts acquisitions and elects every rate-th one, so the
// profile-off fast path is one predictable nil-check branch and the
// sampled-miss path (counter bumped, sample not chosen) is one
// increment and one compare — neither allocates. Only an elected
// acquisition reads the clock and walks the stack, and even that path
// is allocation-free (the PC buffer is a fixed-size stack array).
// Values exported by Profile are scaled by the sampling rate, so a
// 1-in-rate profile estimates the full population the same way the
// runtime's mutex profile does.
//
// Consumers: WriteProfile encodes pprof profile.proto (pproto.go),
// WriteFolded emits flamegraph folded-stack text (folded.go), Parse
// round-trips the protobuf for validation (decode.go), and HottestSite
// reduces a lock's records to the single worst call site for the
// doctor's findings.
package prof

import (
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// MaxStackDepth bounds captured stacks (the runtime's mutex profile
	// uses 32 as well). Deeper stacks are truncated at the root end.
	MaxStackDepth = 32
	// DefaultRate samples one acquisition in eight per proc — cheap
	// enough to leave on, dense enough to profile a contended lock in
	// seconds.
	DefaultRate = 8

	// The stack table: numShards shards of shardSlots open-addressed
	// records each (4096 records total, far above the distinct-stack
	// count of any realistic lock workload). A shard's records never
	// move and are never deleted, so a *record stays valid for the
	// profiler's lifetime — which is what lets a Local hold its pending
	// hold sample as a bare pointer.
	numShards  = 16
	shardSlots = 256
	// maxProbe bounds the linear probe before a sample is dropped
	// (counted in Dropped) rather than degrading into a table scan.
	maxProbe = 32
)

// record is one (lock, stack) row of the table. depth == 0 marks a
// free slot (captured stacks always have at least one frame).
type record struct {
	hash        uint64
	contentions uint64
	delayNs     uint64
	holds       uint64
	heldNs      uint64
	depth       int32
	lock        uint16
	pcs         [MaxStackDepth]uintptr
}

type shard struct {
	mu   sync.Mutex
	recs [shardSlots]record
}

// Profiler owns a profile: the sampling rate, the epoch its timestamps
// are relative to, the lock-name registry, and the striped stack
// table. Create one with New, hand out per-lock handles with Register.
type Profiler struct {
	rate    int64
	epoch   time.Time
	dropped atomic.Uint64

	mu    sync.Mutex
	locks []string

	shards [numShards]shard
}

// New returns an empty profiler sampling one acquisition in rate per
// proc (rate <= 0 selects DefaultRate; rate 1 records every
// acquisition).
func New(rate int) *Profiler {
	if rate <= 0 {
		rate = DefaultRate
	}
	return &Profiler{rate: int64(rate), epoch: time.Now()}
}

// Rate returns the sampling rate (1 = every acquisition).
func (p *Profiler) Rate() int {
	if p == nil {
		return 0
	}
	return int(p.rate)
}

// Dropped reports how many samples were discarded because their
// shard's probe window was full.
func (p *Profiler) Dropped() uint64 {
	if p == nil {
		return 0
	}
	return p.dropped.Load()
}

// now reads the profile clock: nanoseconds since the epoch, never zero
// (zero is the "not sampled" sentinel Tick returns).
func (p *Profiler) now() int64 {
	ts := int64(time.Since(p.epoch))
	if ts <= 0 {
		ts = 1
	}
	return ts
}

// Register adds a lock to the profile under name and returns its
// handle. A nil Profiler returns a nil handle, which propagates the
// nil-off discipline to every Local created from it.
func (p *Profiler) Register(name string) *LockProf {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	id := len(p.locks)
	if id > int(^uint16(0)) {
		panic("prof: too many locks registered")
	}
	p.locks = append(p.locks, name)
	return &LockProf{p: p, id: uint16(id)}
}

// lockName resolves a registered lock id.
func (p *Profiler) lockName(id uint16) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) < len(p.locks) {
		return p.locks[id]
	}
	return "lock?"
}

// LockProf is one lock's registration with a Profiler; locks hold one
// and mint a Local per Proc.
type LockProf struct {
	p  *Profiler
	id uint16
}

// Profiler returns the owning profiler (nil for a nil handle).
func (lp *LockProf) Profiler() *Profiler {
	if lp == nil {
		return nil
	}
	return lp.p
}

// NewLocal mints the per-proc sampling handle. A nil LockProf returns
// nil; every Local method nil-checks, so unprofiled procs pay one
// branch per site.
func (lp *LockProf) NewLocal() *Local {
	if lp == nil {
		return nil
	}
	return &Local{p: lp.p, lock: lp.id}
}

// Local is a single-goroutine sampling handle: the per-proc election
// counter plus the pending hold sample armed by Acquired and closed by
// Released. A Proc is single-goroutine by contract, so no field needs
// atomics.
type Local struct {
	p         *Profiler
	holdRec   *record
	holdShard *shard
	holdStart int64
	tick      int64
	lock      uint16
}

// Tick advances the sampling pacer at the top of an acquisition and
// returns a nonzero profile-clock timestamp when this acquisition is
// elected for sampling, 0 otherwise (including when profiling is off).
// The returned value is threaded to Acquired, whose work is entirely
// gated on it.
func (lo *Local) Tick() int64 {
	if lo == nil {
		return 0
	}
	lo.tick++
	if lo.tick < lo.p.rate {
		return 0
	}
	return lo.tickElect()
}

// tickElect is the elected-sample tail of Tick, kept out of line so
// Tick stays within the inlining budget of the lock fast paths.
func (lo *Local) tickElect() int64 {
	lo.tick = 0
	return lo.p.now()
}

// Acquired completes a sampled acquisition: it captures the caller
// stack, charges blocked time since ts to the call site when contended,
// and arms the hold sample that Released will close. A zero ts (not
// sampled, or profiling off) makes it a no-op.
func (lo *Local) Acquired(ts int64, contended bool) {
	if lo == nil || ts == 0 {
		return
	}
	lo.capture(ts, contended, true)
}

// Contended records a sampled contention event without arming a hold
// sample. The BRAVO wrapper charges revocation cost to writer call
// sites this way while the base lock owns the hold accounting.
func (lo *Local) Contended(ts int64) {
	if lo == nil || ts == 0 {
		return
	}
	lo.capture(ts, true, false)
}

// Released closes the pending hold sample, if any.
func (lo *Local) Released() {
	if lo == nil || lo.holdRec == nil {
		return
	}
	lo.releaseSlow()
}

// capture walks the caller stack and merges the sample into the table.
// The skip count lands on the lock method itself (the profile's leaf,
// like sync.(*Mutex).Lock in the runtime's mutex profile): frame 1 is
// capture, 2 the Acquired/Contended wrapper, 3 the lockcore ProcInstr
// helper, 4 the lock method. Inlined frames count as logical frames
// (Go >= 1.12), so the skip is stable whether or not the thin wrappers
// inline; encode-time pruning catches any residue.
func (lo *Local) capture(ts int64, contended, armHold bool) {
	var pcs [MaxStackDepth]uintptr
	n := runtime.Callers(4, pcs[:])
	if n == 0 {
		return
	}
	now := lo.p.now()
	var blocked uint64
	if contended && now > ts {
		blocked = uint64(now - ts)
	}
	rec, sh := lo.p.merge(lo.lock, &pcs, n, contended, blocked)
	if armHold && rec != nil {
		lo.holdRec, lo.holdShard, lo.holdStart = rec, sh, now
	}
}

func (lo *Local) releaseSlow() {
	rec, sh := lo.holdRec, lo.holdShard
	lo.holdRec, lo.holdShard = nil, nil
	held := lo.p.now() - lo.holdStart
	if held < 0 {
		held = 0
	}
	sh.mu.Lock()
	rec.holds++
	rec.heldNs += uint64(held)
	sh.mu.Unlock()
}

// merge folds one sample into the (lock, stack) record, claiming a
// free slot on first sight. A full probe window drops the sample (the
// profile under-reports rather than growing or scanning).
func (p *Profiler) merge(lock uint16, pcs *[MaxStackDepth]uintptr, n int, contended bool, blocked uint64) (*record, *shard) {
	h := hashStack(lock, pcs[:n])
	sh := &p.shards[h%numShards]
	// High bits pick the slot so shard and slot selection stay
	// independent.
	base := h >> 32
	sh.mu.Lock()
	var rec *record
	for i := uint64(0); i < maxProbe; i++ {
		r := &sh.recs[(base+i)%shardSlots]
		if r.depth == 0 {
			r.hash, r.lock, r.depth = h, lock, int32(n)
			copy(r.pcs[:], pcs[:n])
			rec = r
			break
		}
		if r.hash == h && r.lock == lock && r.depth == int32(n) {
			rec = r
			break
		}
	}
	if rec == nil {
		sh.mu.Unlock()
		p.dropped.Add(1)
		return nil, nil
	}
	if contended {
		rec.contentions++
		rec.delayNs += blocked
	}
	sh.mu.Unlock()
	return rec, sh
}

// hashStack is FNV-1a over the lock id and the PC slice.
func hashStack(lock uint16, pcs []uintptr) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(lock)) * prime64
	for _, pc := range pcs {
		h = (h ^ uint64(pc)) * prime64
	}
	return h
}

// Record is one call stack's accumulated profile values, scaled by the
// sampling rate (each sampled event stands for rate events, the
// runtime mutex-profile estimator).
type Record struct {
	// Lock is the registered lock name.
	Lock string
	// Stack is the captured caller stack, leaf (the lock method) first.
	Stack []uintptr
	// Contentions counts slow-path acquisitions; DelayNs is their
	// accumulated blocked time.
	Contentions uint64
	DelayNs     uint64
	// Holds counts sampled acquisitions (fast or slow); HeldNs is their
	// accumulated ownership time.
	Holds  uint64
	HeldNs uint64
}

// Snapshot is a point-in-time copy of a profiler's records, or the
// difference of two (see Sub).
type Snapshot struct {
	// Rate is the sampling rate the values are already scaled by.
	Rate int
	// TimeNanos is the wall-clock time of the snapshot (Unix
	// nanoseconds); DurationNanos is nonzero only for delta snapshots.
	TimeNanos     int64
	DurationNanos int64
	// Dropped counts samples discarded on full probe windows.
	Dropped uint64
	// Records are ordered by contention delay, then held time,
	// descending (deterministic for equal values via the stack bytes).
	Records []Record
}

// Profile snapshots the table. Values are scaled by the sampling rate;
// a nil Profiler yields an empty snapshot.
func (p *Profiler) Profile() *Snapshot {
	if p == nil {
		return &Snapshot{Rate: 1, TimeNanos: time.Now().UnixNano()}
	}
	s := &Snapshot{
		Rate:      int(p.rate),
		TimeNanos: time.Now().UnixNano(),
		Dropped:   p.dropped.Load(),
	}
	rate := uint64(p.rate)
	for si := range p.shards {
		sh := &p.shards[si]
		sh.mu.Lock()
		for ri := range sh.recs {
			r := &sh.recs[ri]
			if r.depth == 0 {
				continue
			}
			s.Records = append(s.Records, Record{
				Lock:        p.lockName(r.lock),
				Stack:       append([]uintptr(nil), r.pcs[:r.depth]...),
				Contentions: r.contentions * rate,
				DelayNs:     r.delayNs * rate,
				Holds:       r.holds * rate,
				HeldNs:      r.heldNs * rate,
			})
		}
		sh.mu.Unlock()
	}
	sortRecords(s.Records)
	return s
}

func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].DelayNs != recs[j].DelayNs {
			return recs[i].DelayNs > recs[j].DelayNs
		}
		if recs[i].HeldNs != recs[j].HeldNs {
			return recs[i].HeldNs > recs[j].HeldNs
		}
		if recs[i].Lock != recs[j].Lock {
			return recs[i].Lock < recs[j].Lock
		}
		return stackKey(recs[i].Stack) < stackKey(recs[j].Stack)
	})
}

// stackKey renders a stack as a comparable map key (cold paths only).
func stackKey(stack []uintptr) string {
	var b strings.Builder
	for _, pc := range stack {
		b.WriteByte(byte(pc))
		b.WriteByte(byte(pc >> 8))
		b.WriteByte(byte(pc >> 16))
		b.WriteByte(byte(pc >> 24))
		b.WriteByte(byte(pc >> 32))
		b.WriteByte(byte(pc >> 40))
		b.WriteByte(byte(pc >> 48))
		b.WriteByte(byte(pc >> 56))
	}
	return b.String()
}

// Sub returns the delta s - old: per-(lock, stack) value differences,
// dropping rows that saw no activity in between. DurationNanos is the
// wall time between the snapshots. Both snapshots must come from the
// same profiler (same rate, cumulative values).
func (s *Snapshot) Sub(old *Snapshot) *Snapshot {
	type key struct {
		lock  string
		stack string
	}
	prev := make(map[key]Record, len(old.Records))
	for _, r := range old.Records {
		prev[key{r.Lock, stackKey(r.Stack)}] = r
	}
	out := &Snapshot{
		Rate:          s.Rate,
		TimeNanos:     s.TimeNanos,
		DurationNanos: s.TimeNanos - old.TimeNanos,
		Dropped:       monus(s.Dropped, old.Dropped),
	}
	for _, r := range s.Records {
		if o, ok := prev[key{r.Lock, stackKey(r.Stack)}]; ok {
			r.Contentions = monus(r.Contentions, o.Contentions)
			r.DelayNs = monus(r.DelayNs, o.DelayNs)
			r.Holds = monus(r.Holds, o.Holds)
			r.HeldNs = monus(r.HeldNs, o.HeldNs)
		}
		if r.Contentions == 0 && r.DelayNs == 0 && r.Holds == 0 && r.HeldNs == 0 {
			continue
		}
		out.Records = append(out.Records, r)
	}
	sortRecords(out.Records)
	return out
}

func monus(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Site is one symbolized call site with its contention totals.
type Site struct {
	// Func/File/Line locate the first non-internal caller frame — the
	// user code that asked for the lock, not the lock method itself.
	Func string
	File string
	Line int
	// Contentions and DelayNs are the owning record's (rate-scaled)
	// contention totals.
	Contentions uint64
	DelayNs     uint64
}

// HottestSite returns the call site with the greatest accumulated
// contention delay for the named lock (empty name matches any lock);
// ok is false when no contention has been recorded.
func (p *Profiler) HottestSite(lock string) (Site, bool) {
	if p == nil {
		return Site{}, false
	}
	return p.Profile().HottestSite(lock)
}

// HottestSite is the snapshot form of Profiler.HottestSite.
func (s *Snapshot) HottestSite(lock string) (Site, bool) {
	var best *Record
	for i := range s.Records {
		r := &s.Records[i]
		if lock != "" && r.Lock != lock {
			continue
		}
		if r.Contentions == 0 {
			continue
		}
		if best == nil || r.DelayNs > best.DelayNs {
			best = r
		}
	}
	if best == nil {
		return Site{}, false
	}
	return best.Site(), true
}

// Site symbolizes the record's caller site — the first frame outside
// this module's internal packages — and pairs it with the record's
// (rate-scaled) contention totals.
func (r *Record) Site() Site {
	fn, file, line := callerSite(r.Stack)
	return Site{
		Func: fn, File: file, Line: line,
		Contentions: r.Contentions, DelayNs: r.DelayNs,
	}
}

// callerSite symbolizes the first frame outside this module's internal
// packages — the user call site. Falls back to the leaf frame when the
// whole stack is internal (a test inside internal/, say).
func callerSite(stack []uintptr) (fn, file string, line int) {
	if len(stack) == 0 {
		return "?", "", 0
	}
	frames := runtime.CallersFrames(stack)
	for {
		f, more := frames.Next()
		if f.Function != "" && fn == "" {
			fn, file, line = f.Function, f.File, f.Line // leaf fallback
		}
		if f.Function != "" && !strings.HasPrefix(f.Function, "ollock/internal/") {
			return f.Function, f.File, f.Line
		}
		if !more {
			return fn, file, line
		}
	}
}
