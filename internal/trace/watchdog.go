// Stall watchdog: a background goroutine that polls the stall words
// every waiting Local publishes (see Local.Begin) and, when a waiter
// has been stuck in one phase past a threshold, writes a post-mortem
// dump of the lock's live wait-queue/indicator state through the
// StateDumpers registered on the lock (LockTrace.AddDumper).
//
// The watchdog is strictly an observer: it reads the padded stall
// words, never the rings the procs are writing, and the dumpers it
// calls are read-only descriptions of lock state. Each distinct stall
// (same proc, same wait-start) is reported once.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Stall describes one waiter stuck past the watchdog threshold.
type Stall struct {
	Lock   string
	LockID uint16
	Proc   int32
	Phase  Phase
	Since  int64 // wait-start, ns since the tracer epoch
	Waited time.Duration
}

// Watchdog polls a Tracer's waiters for stalls.
type Watchdog struct {
	tr        *Tracer
	threshold time.Duration
	interval  time.Duration
	out       io.Writer

	// rec is a watchdog-owned ring so stalls also appear as KindStall
	// events in the recording, attributed to the stuck (lock, proc)
	// track. Only the watchdog writes it (single-writer rule).
	rec *Local

	mu   sync.Mutex
	seen map[uint64]int64 // (lock,proc) -> wait-start already reported
	stop chan struct{}
	done chan struct{}
}

// NewWatchdog returns a watchdog reporting waiters stuck longer than
// threshold to out. Call Start to begin polling (at threshold/4, at
// least every millisecond), or CheckNow to poll synchronously (tests,
// cmd/locktrace watch). A nil tracer yields an inert watchdog.
func NewWatchdog(tr *Tracer, threshold time.Duration, out io.Writer) *Watchdog {
	w := &Watchdog{tr: tr, threshold: threshold, out: out, seen: map[uint64]int64{}}
	w.interval = threshold / 4
	if w.interval < time.Millisecond {
		w.interval = time.Millisecond
	}
	if tr != nil {
		w.rec = &Local{tr: tr, proc: -1}
		w.rec.ring.init(256)
		tr.mu.Lock()
		tr.locals = append(tr.locals, w.rec)
		tr.mu.Unlock()
	}
	return w
}

// Start launches the polling goroutine. Stop terminates it.
func (w *Watchdog) Start() {
	if w.tr == nil || w.stop != nil {
		return
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		tick := time.NewTicker(w.interval)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				w.CheckNow()
			}
		}
	}()
}

// Stop terminates the polling goroutine and waits for it to exit.
func (w *Watchdog) Stop() {
	if w.stop == nil {
		return
	}
	close(w.stop)
	<-w.done
	w.stop, w.done = nil, nil
}

// CheckNow scans every waiter once, dumping state for each new stall,
// and returns the stalls found (reported or not). It must not be
// called concurrently with itself or with a running Start loop.
func (w *Watchdog) CheckNow() []Stall {
	if w.tr == nil {
		return nil
	}
	w.tr.mu.Lock()
	locals := append([]*Local(nil), w.tr.locals...)
	w.tr.mu.Unlock()
	now := w.tr.Now()
	var stalls []Stall
	for _, l := range locals {
		ph, since, ok := l.stall()
		if !ok {
			continue
		}
		waited := time.Duration(now - since)
		if waited < w.threshold {
			continue
		}
		s := Stall{
			Lock: w.tr.LockName(l.lock), LockID: l.lock, Proc: l.proc,
			Phase: ph, Since: since, Waited: waited,
		}
		stalls = append(stalls, s)
		key := uint64(l.lock)<<32 | uint64(uint32(l.proc))
		w.mu.Lock()
		dup := w.seen[key] == since
		if !dup {
			w.seen[key] = since
		}
		w.mu.Unlock()
		if dup {
			continue
		}
		w.rec.ring.put(now,
			uint64(KindStall)<<56|uint64(ph)<<48|uint64(l.lock)<<32|uint64(uint32(l.proc)),
			uint64(waited))
		w.report(s)
	}
	return stalls
}

// report writes the stall header and the lock's live-state dump.
func (w *Watchdog) report(s Stall) {
	if w.out == nil {
		return
	}
	fmt.Fprintf(w.out, "trace watchdog: proc %d of lock %q stuck in %s for %v\n",
		s.Proc, s.Lock, s.Phase, s.Waited.Round(time.Millisecond))
	dumpers := w.tr.dumpersOf(s.LockID)
	if len(dumpers) == 0 {
		fmt.Fprintf(w.out, "  (no state dumpers registered for this lock)\n")
		return
	}
	fmt.Fprintf(w.out, "--- live state of %q ---\n", s.Lock)
	for _, d := range dumpers {
		d.DumpLockState(w.out)
	}
	fmt.Fprintf(w.out, "--- end state ---\n")
}
