// Flight-recorder ring buffers and the per-proc emission handle.
//
// Each Local is owned by exactly one goroutine (the Proc it was minted
// for), so ring writes need no CAS: the writer publishes each event's
// three words with atomic stores and then advances the position word.
// Readers (Tracer.Snapshot, the watchdog) run concurrently; they copy
// the window and discard any slot the writer may have overwritten
// while they copied, so a snapshot never contains torn events.
package trace

import (
	"sync/atomic"

	"ollock/internal/atomicx"
)

// eventWords is the fixed binary event width: timestamp, meta
// (kind/phase/lock/proc), arg.
const eventWords = 3

// ring is a single-writer flight-recorder buffer of fixed-width binary
// events. Capacity is a power of two; the write position only grows,
// so slot i of event n is (n & mask) * eventWords and the live window
// is [pos-cap, pos).
type ring struct {
	mask uint64
	buf  []atomic.Uint64
	pos  atomic.Uint64 // events ever written (next sequence number)
}

func (r *ring) init(capEvents int) {
	r.mask = uint64(capEvents - 1)
	r.buf = make([]atomic.Uint64, capEvents*eventWords)
}

// put appends one event. Single writer: load/store of pos need no CAS.
//
//go:noinline
func (r *ring) put(ts int64, meta, arg uint64) {
	p := r.pos.Load()
	i := (p & r.mask) * eventWords
	r.buf[i].Store(uint64(ts))
	r.buf[i+1].Store(meta)
	r.buf[i+2].Store(arg)
	r.pos.Store(p + 1)
}

// snapshot appends the ring's live window to out, oldest first,
// skipping any event the writer may have overwritten while we copied.
func (r *ring) snapshot(out []Event) []Event {
	if r.buf == nil {
		return out
	}
	capEvents := r.mask + 1
	hi := r.pos.Load()
	lo := uint64(0)
	if hi > capEvents {
		lo = hi - capEvents
	}
	type raw struct{ ts, meta, arg uint64 }
	tmp := make([]raw, 0, hi-lo)
	for n := lo; n < hi; n++ {
		i := (n & r.mask) * eventWords
		tmp = append(tmp, raw{r.buf[i].Load(), r.buf[i+1].Load(), r.buf[i+2].Load()})
	}
	// Any slot with sequence number below the writer's new window start
	// may have been overwritten (torn) during the copy: drop it.
	if hi2 := r.pos.Load(); hi2 > capEvents && hi2-capEvents > lo {
		tmp = tmp[hi2-capEvents-lo:]
		lo = hi2 - capEvents
	}
	for _, w := range tmp {
		out = append(out, Event{
			Ts:    int64(w.ts),
			Arg:   w.arg,
			Proc:  int32(uint32(w.meta)),
			Lock:  uint16(w.meta >> 32),
			Kind:  Kind(w.meta >> 56),
			Phase: Phase(w.meta >> 48),
		})
	}
	return out
}

// Local is the per-(lock, proc) emission handle. A nil *Local is the
// trace-off state: every method returns after one branch, emitting
// nothing and allocating nothing — the exact discipline of obs.Local.
// A Local must only be used by the goroutine driving its Proc.
type Local struct {
	_    atomicx.Pad
	tr   *Tracer
	lock uint16
	proc int32
	// waiting tracks (single-writer) whether a Begin published a stall
	// word that Acquired/End must retract.
	waiting bool
	ring    ring
	// wait is the watchdog's view: phase in the top byte, span start
	// (ns since epoch, truncated to 56 bits) below; zero = not waiting.
	wait atomicx.PaddedUint64
}

// meta packs the event descriptor word.
func (l *Local) meta(k Kind, ph Phase) uint64 {
	return uint64(k)<<56 | uint64(ph)<<48 | uint64(l.lock)<<32 | uint64(uint32(l.proc))
}

// Now returns the tracer's clock reading, or 0 when tracing is off.
// Call it once at operation entry and pass the value to Acquired so
// the acquisition latency rides inside a single event.
func (l *Local) Now() int64 {
	if l == nil {
		return 0
	}
	return l.tr.Now()
}

// Emit records an instant event at the current time.
func (l *Local) Emit(k Kind, ph Phase, arg uint64) {
	if l == nil {
		return
	}
	l.ring.put(l.tr.Now(), l.meta(k, ph), arg)
}

// EmitAt records an instant event at an explicit timestamp — used to
// open a phase retroactively once an operation turns out to be slow
// (the fast path never paid for the event). Snapshot re-sorts, so mild
// out-of-order emission within a ring is fine.
func (l *Local) EmitAt(ts int64, k Kind, ph Phase, arg uint64) {
	if l == nil {
		return
	}
	l.ring.put(ts, l.meta(k, ph), arg)
}

// Begin opens a phase span at the current time and publishes the stall
// word the watchdog polls.
func (l *Local) Begin(ph Phase) {
	if l == nil {
		return
	}
	l.beginAt(l.tr.Now(), ph)
}

// BeginAt is Begin with an explicit (usually retroactive) start time.
func (l *Local) BeginAt(ts int64, ph Phase) {
	if l == nil {
		return
	}
	l.beginAt(ts, ph)
}

//go:noinline
func (l *Local) beginAt(ts int64, ph Phase) {
	l.ring.put(ts, l.meta(KindPhaseBegin, ph), 0)
	l.wait.Store(uint64(ph)<<56 | uint64(ts)&waitTsMask)
	l.waiting = true
}

const waitTsMask = 1<<56 - 1

// End closes the open phase span without an acquisition (e.g. a BRAVO
// revocation finishing) and retracts the stall word.
func (l *Local) End(ph Phase) {
	if l == nil {
		return
	}
	l.ring.put(l.tr.Now(), l.meta(KindPhaseEnd, ph), 0)
	if l.waiting {
		l.wait.Store(0)
		l.waiting = false
	}
}

// Acquired records a Read/WriteAcquired event whose Arg packs the
// latency since t0 (a Now() taken at operation entry) and the arrival
// route, closes any open phase span, and retracts the stall word.
func (l *Local) Acquired(k Kind, t0 int64, r Route) {
	if l == nil {
		return
	}
	l.acquired(k, t0, r)
}

//go:noinline
func (l *Local) acquired(k Kind, t0 int64, r Route) {
	ts := l.tr.Now()
	l.ring.put(ts, l.meta(k, PhaseNone), PackAcquire(ts-t0, r))
	if l.waiting {
		l.wait.Store(0)
		l.waiting = false
	}
}

// Released records a Read/WriteReleased instant.
func (l *Local) Released(k Kind) {
	if l == nil {
		return
	}
	l.ring.put(l.tr.Now(), l.meta(k, PhaseNone), 0)
}

// stall decodes the published stall word: the phase the proc is stuck
// in and when it entered it. ok is false when the proc is not waiting.
func (l *Local) stall() (ph Phase, since int64, ok bool) {
	w := l.wait.Load()
	if w == 0 {
		return 0, 0, false
	}
	return Phase(w >> 56), int64(w & waitTsMask), true
}
