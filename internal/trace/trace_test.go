package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPackAcquireRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		lat   int64
		route Route
	}{
		{0, RouteNone},
		{1, RouteRoot},
		{12345, RouteTree},
		{1 << 40, RouteDirect},
		{1<<60 - 1, RouteJoin},
		{-5, RouteBravoFast}, // negative latency clamps to 0
	} {
		e := Event{Arg: PackAcquire(tc.lat, tc.route)}
		wantLat := tc.lat
		if wantLat < 0 {
			wantLat = 0
		}
		if e.Latency() != wantLat {
			t.Errorf("PackAcquire(%d, %v): Latency = %d, want %d", tc.lat, tc.route, e.Latency(), wantLat)
		}
		if e.Route() != tc.route {
			t.Errorf("PackAcquire(%d, %v): Route = %v, want %v", tc.lat, tc.route, e.Route(), tc.route)
		}
	}
}

func TestPackHandoff(t *testing.T) {
	if got := PackHandoff(3, true); got != 3<<1|1 {
		t.Errorf("PackHandoff(3, true) = %d", got)
	}
	if got := PackHandoff(7, false); got != 7<<1 {
		t.Errorf("PackHandoff(7, false) = %d", got)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(1); k < NumKinds; k++ {
		name := k.String()
		if name == "" || name == "kind?" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
		back, ok := KindByName(name)
		if !ok || back != k {
			t.Fatalf("KindByName(%q) = %v, %v; want %v, true", name, back, ok, k)
		}
	}
	if _, ok := KindByName("no.such.kind"); ok {
		t.Fatal("KindByName accepted an unknown name")
	}
}

// TestNilLocalIsNoOp pins the zero-overhead-off discipline: every
// emission method on a nil Local (and nil Tracer/LockTrace upstream)
// is safe and free of allocation.
func TestNilLocalIsNoOp(t *testing.T) {
	var tr *Tracer
	lt := tr.Register("x")
	if lt != nil {
		t.Fatal("nil Tracer.Register returned non-nil handle")
	}
	l := lt.NewLocal(0)
	if l != nil {
		t.Fatal("nil LockTrace.NewLocal returned non-nil Local")
	}
	if n := testing.AllocsPerRun(100, func() {
		t0 := l.Now()
		l.Begin(PhaseQueueWait)
		l.BeginAt(t0, PhaseArrive)
		l.Emit(KindHandoff, PhaseNone, 1)
		l.EmitAt(t0, KindIndOpen, PhaseNone, 0)
		l.Acquired(KindReadAcquired, t0, RouteRoot)
		l.End(PhaseRevoke)
		l.Released(KindReadReleased)
	}); n != 0 {
		t.Fatalf("nil Local methods allocate %.1f times per run, want 0", n)
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil Tracer.Snapshot returned events")
	}
}

// TestRingWrapKeepsNewest fills a ring past capacity and checks the
// snapshot window holds exactly the newest capEvents events, oldest
// first.
func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(4) // rounds to 4
	l := tr.Register("l").NewLocal(0)
	for i := 0; i < 11; i++ {
		l.EmitAt(int64(i), KindHandoff, PhaseNone, uint64(i))
	}
	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot has %d events, want 4 (ring capacity)", len(evs))
	}
	for i, e := range evs {
		if want := uint64(7 + i); e.Arg != want {
			t.Errorf("event %d: arg = %d, want %d (newest window, oldest first)", i, e.Arg, want)
		}
	}
}

// TestSnapshotMergesAndSorts interleaves two procs' rings with
// out-of-order timestamps and checks the merged snapshot is
// time-sorted with proc as tie-break.
func TestSnapshotMergesAndSorts(t *testing.T) {
	tr := New(16)
	lt := tr.Register("l")
	a, b := lt.NewLocal(0), lt.NewLocal(1)
	a.EmitAt(30, KindIndOpen, PhaseNone, 0)
	a.EmitAt(10, KindIndClose, PhaseNone, 0)
	b.EmitAt(20, KindHandoff, PhaseNone, 0)
	b.EmitAt(10, KindIndDrain, PhaseNone, 0)
	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Ts < evs[i-1].Ts {
			t.Fatalf("snapshot not time-sorted: %v", evs)
		}
		if evs[i].Ts == evs[i-1].Ts && evs[i].Proc < evs[i-1].Proc {
			t.Fatalf("tie not broken by proc: %v", evs)
		}
	}
}

// TestSnapshotConcurrentWithEmitter drives one emitter goroutine while
// snapshotting repeatedly; under -race this checks the single-writer
// ring + concurrent-reader protocol is data-race-free, and every
// returned event must be well-formed (never torn: a torn slot would
// surface as an out-of-window timestamp).
func TestSnapshotConcurrentWithEmitter(t *testing.T) {
	tr := New(64)
	l := tr.Register("l").NewLocal(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l.EmitAt(int64(i), KindHandoff, PhaseNone, i)
		}
	}()
	for i := 0; i < 200; i++ {
		for _, e := range tr.Snapshot() {
			if e.Kind != KindHandoff || uint64(e.Ts) != e.Arg {
				t.Errorf("torn or corrupt event: %+v", e)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestStallWordLifecycle checks Begin publishes the watchdog stall
// word and Acquired/End retract it.
func TestStallWordLifecycle(t *testing.T) {
	tr := New(16)
	l := tr.Register("l").NewLocal(3)
	if _, _, ok := l.stall(); ok {
		t.Fatal("fresh Local reports waiting")
	}
	l.BeginAt(100, PhaseQueueWait)
	ph, since, ok := l.stall()
	if !ok || ph != PhaseQueueWait || since != 100 {
		t.Fatalf("stall() = %v, %d, %v; want queue.wait, 100, true", ph, since, ok)
	}
	l.Acquired(KindReadAcquired, 100, RouteDirect)
	if _, _, ok := l.stall(); ok {
		t.Fatal("Acquired did not retract the stall word")
	}
	l.Begin(PhaseRevoke)
	l.End(PhaseRevoke)
	if _, _, ok := l.stall(); ok {
		t.Fatal("End did not retract the stall word")
	}
}

// stringDumper implements StateDumper with a fixed payload.
type stringDumper struct{ s string }

func (d stringDumper) DumpLockState(w io.Writer) { io.WriteString(w, d.s) }

// TestWatchdogReportsWedgedWaiter wedges a fake waiter (a Local whose
// Begin is backdated past the threshold) and checks CheckNow finds the
// stall, reports it once with the registered dumper's live state, and
// records a KindStall event on the watchdog's ring.
func TestWatchdogReportsWedgedWaiter(t *testing.T) {
	tr := New(64)
	lt := tr.Register("goll")
	lt.AddDumper(stringDumper{"queue: 1 waiter (wedged)\n"})
	l := lt.NewLocal(7)

	var buf bytes.Buffer
	wd := NewWatchdog(tr, 5*time.Millisecond, &buf)

	// Wedge: the wait starts at the tracer epoch and real time advances
	// past the threshold before the scan.
	l.BeginAt(1, PhaseQueueWait)
	time.Sleep(20 * time.Millisecond)

	stalls := wd.CheckNow()
	if len(stalls) != 1 {
		t.Fatalf("CheckNow found %d stalls, want 1", len(stalls))
	}
	s := stalls[0]
	if s.Lock != "goll" || s.Proc != 7 || s.Phase != PhaseQueueWait {
		t.Fatalf("stall = %+v", s)
	}
	if s.Waited < 5*time.Millisecond {
		t.Fatalf("waited = %v, want >= threshold", s.Waited)
	}
	out := buf.String()
	if !strings.Contains(out, `proc 7 of lock "goll" stuck in queue.wait`) {
		t.Fatalf("report missing stall header:\n%s", out)
	}
	if !strings.Contains(out, "queue: 1 waiter (wedged)") {
		t.Fatalf("report missing dumper output:\n%s", out)
	}

	// Same stall again: found but not re-reported.
	buf.Reset()
	if again := wd.CheckNow(); len(again) != 1 {
		t.Fatalf("second CheckNow found %d stalls, want 1", len(again))
	}
	if buf.Len() != 0 {
		t.Fatalf("duplicate stall re-reported:\n%s", buf.String())
	}

	// The stall is also an event in the recording.
	var stallEvents int
	for _, e := range tr.Snapshot() {
		if e.Kind == KindStall {
			stallEvents++
			if e.Proc != 7 || e.Phase != PhaseQueueWait {
				t.Fatalf("stall event = %+v", e)
			}
		}
	}
	if stallEvents != 1 {
		t.Fatalf("recording has %d stall events, want 1", stallEvents)
	}

	// Acquisition clears the stall; the next scan is quiet.
	l.Acquired(KindReadAcquired, 0, RouteDirect)
	if quiet := wd.CheckNow(); len(quiet) != 0 {
		t.Fatalf("stall survived acquisition: %+v", quiet)
	}
}

// TestFoldAccountingIdentity checks the profile's invariant on a
// synthetic slow acquisition: explicit spans partition the packed
// latency, the remainder lands in arrive, and coverage is exactly 1.
func TestFoldAccountingIdentity(t *testing.T) {
	evs := []Event{
		// Proc 0: acquisition with latency 100, of which 70 was an
		// explicit queue.wait span -> 30 must fall to arrive.
		{Ts: 130, Proc: 0, Kind: KindPhaseBegin, Phase: PhaseQueueWait},
		{Ts: 200, Proc: 0, Kind: KindReadAcquired, Arg: PackAcquire(100, RouteDirect)},
		// Proc 1: standalone revoke span of 40 (no acquisition).
		{Ts: 300, Proc: 1, Kind: KindPhaseBegin, Phase: PhaseRevoke},
		{Ts: 340, Proc: 1, Kind: KindPhaseEnd, Phase: PhaseRevoke},
	}
	sortEvents(evs)
	p := Fold(evs, func(uint16) string { return "goll" })
	if p.Acquires != 1 {
		t.Fatalf("acquires = %d, want 1", p.Acquires)
	}
	if p.TotalWait != 140 {
		t.Fatalf("total wait = %d, want 140", p.TotalWait)
	}
	if p.Coverage() != 1 {
		t.Fatalf("coverage = %v, want 1", p.Coverage())
	}
	byPhase := map[string]time.Duration{}
	for _, r := range p.Rows {
		byPhase[r.Phase] = r.Total
	}
	if byPhase["queue.wait"] != 70 || byPhase["arrive"] != 30 || byPhase["revoke"] != 40 {
		t.Fatalf("phase totals = %v, want queue.wait=70 arrive=30 revoke=40", byPhase)
	}
}

// TestFoldNeverOverAttributes: when clock granularity makes the spans
// sum past the packed latency, attribution clamps to the latency.
func TestFoldNeverOverAttributes(t *testing.T) {
	evs := []Event{
		{Ts: 0, Proc: 0, Kind: KindPhaseBegin, Phase: PhaseQueueWait},
		// Span covers 100ns but the packed latency says 60.
		{Ts: 100, Proc: 0, Kind: KindReadAcquired, Arg: PackAcquire(60, RouteDirect)},
	}
	p := Fold(evs, func(uint16) string { return "l" })
	if p.TotalWait != 60 || p.Attributed != 60 {
		t.Fatalf("total=%d attributed=%d, want 60/60", p.TotalWait, p.Attributed)
	}
	if c := p.Coverage(); c != 1 {
		t.Fatalf("coverage = %v, want 1 (clamped)", c)
	}
}

// TestRecordingRoundTrip serializes a live snapshot and decodes it
// back, checking events survive the JSON round trip.
func TestRecordingRoundTrip(t *testing.T) {
	tr := New(16)
	lt := tr.Register("roll")
	l := lt.NewLocal(2)
	l.BeginAt(10, PhaseQueueWait)
	l.Acquired(KindWriteAcquired, tr.Now()-1234, RouteDirect)
	l.Released(KindWriteReleased)

	rec := tr.Record()
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs, lockName, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("decoded %d events, want 3", len(evs))
	}
	if lockName(evs[0].Lock) != "roll" {
		t.Fatalf("lock name = %q, want roll", lockName(evs[0].Lock))
	}
	var acq *Event
	for i := range evs {
		if evs[i].Kind == KindWriteAcquired {
			acq = &evs[i]
		}
	}
	if acq == nil {
		t.Fatal("write.acquired lost in round trip")
	}
	if acq.Route() != RouteDirect || acq.Latency() < 1234 {
		t.Fatalf("acquired arg lost: route=%v lat=%d", acq.Route(), acq.Latency())
	}
}

func TestReadRecordingRejectsBadVersion(t *testing.T) {
	_, err := ReadRecording(strings.NewReader(`{"version": 99, "locks": [], "events": []}`))
	if err == nil {
		t.Fatal("version 99 accepted")
	}
}

// TestWriteChromeTrace checks the exporter's output is valid JSON in
// the Chrome trace-event shape: process/thread metadata, an acquire
// span enclosing the phase span, a held span, and shifted pid/tid (no
// pid 0, tids clear of the proc=-1 watchdog track).
func TestWriteChromeTrace(t *testing.T) {
	evs := []Event{
		{Ts: 1000, Proc: 0, Kind: KindPhaseBegin, Phase: PhaseQueueWait},
		{Ts: 2000, Proc: 0, Kind: KindReadAcquired, Arg: PackAcquire(1500, RouteDirect)},
		{Ts: 5000, Proc: 0, Kind: KindReadReleased},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs, func(uint16) string { return "goll" }); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int64   `json:"pid"`
			Tid  int64   `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exporter wrote invalid JSON: %v", err)
	}
	want := map[string]bool{}
	for _, e := range out.TraceEvents {
		if e.Pid == 0 {
			t.Errorf("event %q has pid 0", e.Name)
		}
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			want["process"] = true
		case e.Ph == "M" && e.Name == "thread_name":
			want["thread"] = true
		case e.Ph == "X" && e.Name == "queue.wait":
			want["phase"] = true
			if e.Ts != 1.0 || e.Dur != 1.0 { // us
				t.Errorf("phase span ts=%v dur=%v, want 1/1", e.Ts, e.Dur)
			}
		case e.Ph == "X" && e.Name == "acquire.read":
			want["acquire"] = true
			if e.Ts != 0.5 || e.Dur != 1.5 {
				t.Errorf("acquire span ts=%v dur=%v, want 0.5/1.5", e.Ts, e.Dur)
			}
		case e.Ph == "X" && e.Name == "read.held":
			want["held"] = true
			if e.Ts != 2.0 || e.Dur != 3.0 {
				t.Errorf("held span ts=%v dur=%v, want 2/3", e.Ts, e.Dur)
			}
		}
	}
	for _, k := range []string{"process", "thread", "phase", "acquire", "held"} {
		if !want[k] {
			t.Errorf("exporter output missing %s record", k)
		}
	}
}
