// Contention profile: fold a trace into wait-time-by-phase-by-lock
// tables, the pprof-style "top" view of where acquisition time went.
//
// The accounting identity the profile maintains: every Acquired event
// carries its full acquisition latency (packed by the emitting lock),
// and the explicit phase spans recorded during a slow acquisition
// partition that latency; whatever the spans do not cover is the
// arrive work that preceded queuing (the whole latency, on the
// conflict-free path). Total wall wait is therefore the sum of
// acquisition latencies plus standalone spans (BRAVO revocation, which
// runs after the write is acquired), and coverage reports how much of
// it the named phases account for.
package trace

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"sort"
	"time"
)

// PhaseRow is one (lock, phase) aggregate.
type PhaseRow struct {
	Lock  string
	Phase string
	Count uint64
	Total time.Duration
	Max   time.Duration
}

// Profile is a folded contention profile.
type Profile struct {
	Rows []PhaseRow
	// TotalWait is the wall time procs spent acquiring (sum of
	// acquisition latencies plus standalone spans such as revocation).
	TotalWait time.Duration
	// Attributed is the portion of TotalWait assigned to named phases.
	Attributed time.Duration
	// Acquires counts Read/WriteAcquired events folded in.
	Acquires uint64
}

// Coverage reports Attributed/TotalWait (1 when nothing was waited).
func (p *Profile) Coverage() float64 {
	if p.TotalWait <= 0 {
		return 1
	}
	return float64(p.Attributed) / float64(p.TotalWait)
}

// Fold builds the profile from a sorted event stream (Tracer.Snapshot
// or Recording.Decode output).
func Fold(evs []Event, lockName func(uint16) string) *Profile {
	type key struct {
		lock  uint16
		phase Phase
	}
	type pkey struct {
		lock uint16
		proc int32
	}
	type open struct {
		phase Phase
		ts    int64
	}
	rows := map[key]*PhaseRow{}
	opens := map[pkey]open{}
	pending := map[pkey]int64{} // span time since the last Acquired
	p := &Profile{}

	add := func(lock uint16, ph Phase, d int64) {
		if d < 0 {
			d = 0
		}
		k := key{lock, ph}
		r := rows[k]
		if r == nil {
			r = &PhaseRow{Lock: lockName(lock), Phase: ph.String()}
			rows[k] = r
		}
		r.Count++
		r.Total += time.Duration(d)
		if time.Duration(d) > r.Max {
			r.Max = time.Duration(d)
		}
	}

	for _, e := range evs {
		pk := pkey{e.Lock, e.Proc}
		switch e.Kind {
		case KindPhaseBegin:
			if o, ok := opens[pk]; ok {
				d := e.Ts - o.ts
				add(e.Lock, o.phase, d)
				pending[pk] += d
			}
			opens[pk] = open{e.Phase, e.Ts}
		case KindPhaseEnd:
			// A span closed outside an acquisition (e.g. revoke): it is
			// its own wall wait, fully attributed.
			if o, ok := opens[pk]; ok {
				d := e.Ts - o.ts
				if d < 0 {
					d = 0
				}
				add(e.Lock, o.phase, d)
				p.TotalWait += time.Duration(d)
				p.Attributed += time.Duration(d)
				delete(opens, pk)
			}
		case KindReadAcquired, KindWriteAcquired:
			if o, ok := opens[pk]; ok {
				d := e.Ts - o.ts
				add(e.Lock, o.phase, d)
				pending[pk] += d
				delete(opens, pk)
			}
			lat := e.Latency()
			spans := pending[pk]
			delete(pending, pk)
			if spans > lat {
				spans = lat // clock-granularity slop: never over-attribute
			}
			// The uncovered remainder is pre-queue arrive work.
			if rem := lat - spans; rem > 0 {
				add(e.Lock, PhaseArrive, rem)
			}
			p.Acquires++
			p.TotalWait += time.Duration(lat)
			p.Attributed += time.Duration(lat)
		}
	}
	for k := range rows {
		p.Rows = append(p.Rows, *rows[k])
	}
	sort.Slice(p.Rows, func(i, j int) bool {
		if p.Rows[i].Total != p.Rows[j].Total {
			return p.Rows[i].Total > p.Rows[j].Total
		}
		if p.Rows[i].Lock != p.Rows[j].Lock {
			return p.Rows[i].Lock < p.Rows[j].Lock
		}
		return p.Rows[i].Phase < p.Rows[j].Phase
	})
	return p
}

// WriteTop renders the profile as a pprof-style top table: phases
// sorted by cumulative wait, with each row's share of total wall wait.
func (p *Profile) WriteTop(w io.Writer) {
	fmt.Fprintf(w, "wall wait %v over %d acquisitions, %.1f%% attributed to phases\n",
		p.TotalWait, p.Acquires, 100*p.Coverage())
	fmt.Fprintf(w, "%-12s %-12s %10s %14s %14s %7s\n",
		"LOCK", "PHASE", "COUNT", "TOTAL", "MAX", "WAIT%")
	for _, r := range p.Rows {
		pct := 0.0
		if p.TotalWait > 0 {
			pct = 100 * float64(r.Total) / float64(p.TotalWait)
		}
		fmt.Fprintf(w, "%-12s %-12s %10d %14v %14v %6.1f%%\n",
			r.Lock, r.Phase, r.Count, r.Total, r.Max, pct)
	}
}

// Do runs f under pprof labels naming the traced lock, so CPU profiles
// sampled during a traced workload can be sliced by lock in pprof
// (`-tagfocus ollock_lock=<name>`). This is the runtime/pprof.Do
// integration point cmd/locktrace record uses around its workload.
func Do(lock string, f func()) {
	pprof.Do(context.Background(), pprof.Labels("ollock_lock", lock),
		func(context.Context) { f() })
}
