// Package trace is a flight-recorder tracing layer for the OLL lock
// stack, modeled on the Go runtime tracer: each (lock, proc) pair owns
// a cache-line-padded lock-free ring buffer of fixed-width binary
// events, written by exactly one goroutine and overwriting the oldest
// events when full, so a recording is always the recent past and never
// blocks the locks.
//
// Where internal/obs answers "how often" (counters) and "how long in
// aggregate" (histograms), trace answers "which phase of which
// acquisition stalled, and in what order": every event carries a
// monotonic nanosecond timestamp, the lock, the proc, an event kind,
// and a phase/argument word, so consumers can reconstruct per-proc
// phase timelines (export.go), fold wait time by phase (profile.go),
// or watch for stuck waiters live (watchdog.go).
//
// The instrumentation discipline is the same as obs.Local: every
// emission method nil-checks its receiver first, so a lock built
// without WithTrace pays one predictable branch per site and zero
// allocations — trace-off must be free enough to leave compiled in
// everywhere.
package trace

import (
	"io"
	"sort"
	"sync"
	"time"
)

// Kind identifies what happened. Kinds are instants except PhaseBegin/
// PhaseEnd, which open and close a phase span on the emitting proc's
// timeline; the Read/WriteAcquired kinds also close whatever phase is
// open (the acquisition the phase belonged to is over).
type Kind uint8

const (
	KindNone       Kind = iota
	KindPhaseBegin      // phase span opens (Phase says which)
	KindPhaseEnd        // phase span closes without an acquisition (e.g. revoke done)

	KindReadAcquired  // read ownership gained; Arg packs latency + route
	KindReadReleased  // read ownership released
	KindWriteAcquired // write ownership gained; Arg packs latency + route
	KindWriteReleased // write ownership released

	KindArriveFail   // indicator arrival failed (closed); the slow path begins
	KindQueueEnqueue // GOLL wait-queue enqueue; Arg: 0 reader, 1 writer
	KindGroupEnqueue // FOLL/ROLL fresh reader node enqueued at the tail
	KindOvertake     // ROLL reader joined a non-tail waiting group
	KindHintHit      // ROLL lastReader hint led straight to a joinable node
	KindHintMiss     // ROLL lastReader hint was stale; backward search ran

	KindIndClose // indicator open -> closed (writer blocks new readers)
	KindIndOpen  // indicator reopened; Arg = direct arrivals granted
	KindIndDrain // closed indicator's surplus hit zero; emitter must hand off
	KindIndSeal  // rind.Sharded slot seal sweep; Arg = close epoch

	KindHandoff // releasing thread hands ownership on; Arg packs batch size + kind

	KindBravoRecheckFail // BRAVO published slot invalidated by the re-check
	KindBravoRevoke      // BRAVO revocation scan finished; Arg = slots revoked

	KindStall // watchdog: waiter stuck past threshold; Arg = waited ns

	KindPark   // waiter left the direct-spin path; Arg: 0 channel park, 1 array slot, 2 sleep ladder
	KindUnpark // parked waiter woken by a grant; Arg mirrors the KindPark mechanism

	KindCancel // acquisition abandoned; Arg: 0 deadline expiry, 1 context cancellation

	NumKinds
)

// kindNames are the dotted wire names (ALGORITHMS.md trace glossary).
var kindNames = [NumKinds]string{
	KindNone:         "none",
	KindPhaseBegin:   "phase.begin",
	KindPhaseEnd:     "phase.end",
	KindReadAcquired: "read.acquired", KindReadReleased: "read.released",
	KindWriteAcquired: "write.acquired", KindWriteReleased: "write.released",
	KindArriveFail:   "arrive.fail",
	KindQueueEnqueue: "queue.enqueue",
	KindGroupEnqueue: "group.enqueue",
	KindOvertake:     "overtake",
	KindHintHit:      "hint.hit", KindHintMiss: "hint.miss",
	KindIndClose: "ind.close", KindIndOpen: "ind.open",
	KindIndDrain: "ind.drain", KindIndSeal: "ind.seal",
	KindHandoff:          "handoff",
	KindBravoRecheckFail: "bravo.recheck.fail",
	KindBravoRevoke:      "bravo.revoke",
	KindStall:            "stall",
	KindPark:             "park",
	KindUnpark:           "unpark",
	KindCancel:           "cancel",
}

func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "kind?"
}

// KindByName resolves a dotted kind name (inverse of Kind.String);
// it returns KindNone, false for unknown names.
func KindByName(name string) (Kind, bool) {
	for k := Kind(1); k < NumKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return KindNone, false
}

// Phase labels a span of a proc's timeline during which it is doing (or
// stuck in) one protocol step of an acquisition.
type Phase uint8

const (
	PhaseNone      Phase = iota
	PhaseArrive          // arrive-start to arrival resolution (slow path only; fast arrivals are folded into the Acquired event's latency)
	PhaseQueueWait       // blocked in a wait queue / behind a queue node
	PhaseSpinWait        // FOLL/ROLL reader spinning on its group node's grant flag
	PhaseDrainWait       // writer waiting for a closed reader group to drain
	PhaseRevoke          // BRAVO writer revoking published fast-path readers
	PhaseReadHeld        // synthesized by consumers from Acquired..Released
	PhaseWriteHeld       // synthesized by consumers from Acquired..Released

	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseNone:      "none",
	PhaseArrive:    "arrive",
	PhaseQueueWait: "queue.wait",
	PhaseSpinWait:  "spin.wait",
	PhaseDrainWait: "drain.wait",
	PhaseRevoke:    "revoke",
	PhaseReadHeld:  "read.held",
	PhaseWriteHeld: "write.held",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "phase?"
}

// Route says where a successful arrival landed; it rides in the low
// bits of an Acquired event's Arg (see PackAcquire).
type Route uint8

const (
	RouteNone      Route = iota
	RouteRoot            // direct arrival at the indicator's central word
	RouteTree            // C-SNZI tree leaf or sharded slot arrival
	RouteDirect          // pre-made direct arrival handed over by a releaser
	RouteJoin            // FOLL/ROLL join of an existing reader group node
	RouteBravoFast       // BRAVO visible-readers-table fast path

	numRoutes
)

var routeNames = [numRoutes]string{"none", "root", "tree", "direct", "join", "bravo"}

func (r Route) String() string {
	if r < numRoutes {
		return routeNames[r]
	}
	return "route?"
}

// PackAcquire packs an acquisition latency and arrival route into the
// Arg word of a Read/WriteAcquired event. Latencies are clamped to 60
// bits (36 years); negative latencies (clock retreat can't happen on a
// monotonic clock, but belt and braces) clamp to zero.
func PackAcquire(latency int64, r Route) uint64 {
	if latency < 0 {
		latency = 0
	}
	return uint64(latency)<<4 | uint64(r&0xf)
}

// PackHandoff packs a hand-off batch's size and kind into the Arg word
// of a KindHandoff event (size<<1 | writer bit).
func PackHandoff(count int, writer bool) uint64 {
	w := uint64(0)
	if writer {
		w = 1
	}
	return uint64(count)<<1 | w
}

// Event is one decoded trace event. The Arg word is kind-specific; for
// Acquired kinds use Latency/Route.
type Event struct {
	Ts    int64 // nanoseconds since the Tracer's epoch
	Arg   uint64
	Proc  int32
	Lock  uint16
	Kind  Kind
	Phase Phase
}

// Latency returns the packed acquisition latency of an Acquired event
// (0 for other kinds' Args, which simply decode meaninglessly).
func (e Event) Latency() int64 { return int64(e.Arg >> 4) }

// Route returns the packed arrival route of an Acquired event.
func (e Event) Route() Route { return Route(e.Arg & 0xf) }

// StateDumper is implemented by locks (and indicator wrappers) that can
// describe their live wait-queue/indicator state for a watchdog
// post-mortem dump. Implementations must be safe to call from a
// goroutine that holds no acquisition.
type StateDumper interface {
	DumpLockState(w io.Writer)
}

// Tracer owns a recording: the epoch all timestamps are relative to,
// the lock-name registry, and every per-proc ring created under it.
// Create one with New, hand out per-lock handles with Register, and
// read the recording back with Snapshot.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	perProc int // ring capacity (events) per (lock, proc) pair
	locks   []lockEntry
	locals  []*Local
}

type lockEntry struct {
	name    string
	dumpers []StateDumper
}

// DefaultEventsPerProc is the default ring capacity (events per lock
// per proc): 8192 events x 24 bytes = 192 KiB per proc — roughly the
// flight-recorder window the Go runtime tracer keeps per P.
const DefaultEventsPerProc = 8192

// New returns an empty Tracer recording into rings of eventsPerProc
// events (rounded up to a power of two; <= 0 selects
// DefaultEventsPerProc).
func New(eventsPerProc int) *Tracer {
	if eventsPerProc <= 0 {
		eventsPerProc = DefaultEventsPerProc
	}
	cap := 1
	for cap < eventsPerProc {
		cap <<= 1
	}
	return &Tracer{epoch: time.Now(), perProc: cap}
}

// Now returns the current timestamp (nanoseconds since the epoch) on
// the tracer's clock. A nil Tracer reads as time zero.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// Register adds a lock to the recording under name and returns its
// handle. A nil Tracer returns a nil handle, which propagates the
// nil-off discipline to every Local created from it.
func (t *Tracer) Register(name string) *LockTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.locks)
	if id > int(^uint16(0)) {
		panic("trace: too many locks registered")
	}
	t.locks = append(t.locks, lockEntry{name: name})
	return &LockTrace{tr: t, id: uint16(id)}
}

// LockName resolves a registered lock id to its name.
func (t *Tracer) LockName(id uint16) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) < len(t.locks) {
		return t.locks[id].name
	}
	return "lock?"
}

// Snapshot drains a consistent copy of every ring, merged and sorted by
// timestamp. Emitters keep running; events overwritten mid-copy are
// discarded rather than returned torn (see ring.snapshot). Snapshot is
// a cold path and allocates freely.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	locals := append([]*Local(nil), t.locals...)
	t.mu.Unlock()
	var out []Event
	for _, l := range locals {
		out = l.ring.snapshot(out)
	}
	sortEvents(out)
	return out
}

// sortEvents orders events by timestamp with proc as a deterministic
// tie-break; the sort is stable so ties within one ring keep their
// emission order (snapshot appends in ring order).
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Ts != evs[j].Ts {
			return evs[i].Ts < evs[j].Ts
		}
		return evs[i].Proc < evs[j].Proc
	})
}

// AddDumper attaches a live-state dumper to the lock for watchdog
// post-mortems. Multiple dumpers compose (the facade registers the
// BRAVO wrapper and its base lock separately). Nil-safe.
func (lt *LockTrace) AddDumper(d StateDumper) {
	if lt == nil || d == nil {
		return
	}
	lt.tr.mu.Lock()
	lt.tr.locks[lt.id].dumpers = append(lt.tr.locks[lt.id].dumpers, d)
	lt.tr.mu.Unlock()
}

// dumpersOf returns a copy of the lock's dumpers.
func (t *Tracer) dumpersOf(id uint16) []StateDumper {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.locks) {
		return nil
	}
	return append([]StateDumper(nil), t.locks[id].dumpers...)
}

// LockTrace is a per-lock handle: the lock's id in the recording plus
// the tracer. Locks hold one and mint a Local per Proc.
type LockTrace struct {
	tr *Tracer
	id uint16
}

// Tracer returns the owning tracer (nil for a nil handle).
func (lt *LockTrace) Tracer() *Tracer {
	if lt == nil {
		return nil
	}
	return lt.tr
}

// NewLocal mints the single-writer emission handle for proc. A nil
// LockTrace returns nil: every Local method nil-checks, so
// uninstrumented procs pay one branch per site.
func (lt *LockTrace) NewLocal(proc int) *Local {
	if lt == nil {
		return nil
	}
	l := &Local{tr: lt.tr, lock: lt.id, proc: int32(proc)}
	l.ring.init(lt.tr.perProc)
	lt.tr.mu.Lock()
	lt.tr.locals = append(lt.tr.locals, l)
	lt.tr.mu.Unlock()
	return l
}
