// Recording serialization and the Perfetto/Chrome trace-event exporter.
//
// A Recording is the portable JSON form of a snapshot (cmd/locktrace
// record writes one; export/top read it back). WriteChromeTrace turns
// a snapshot into Chrome trace-event JSON — the format Perfetto and
// chrome://tracing load — rendering each lock as a process and each
// proc as a track whose phase spans nest inside its acquisition spans.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// RecordingVersion identifies the recording JSON layout.
const RecordingVersion = 1

// JSONEvent is one event in a Recording: the Event fields with enums
// spelled out so recordings are self-describing and diffable.
type JSONEvent struct {
	Ts    int64  `json:"ts"`
	Proc  int32  `json:"proc"`
	Lock  string `json:"lock"`
	Kind  string `json:"kind"`
	Phase string `json:"phase,omitempty"`
	Arg   uint64 `json:"arg,omitempty"`
	// Route and Lat decode Arg for the *.acquired kinds.
	Route string `json:"route,omitempty"`
	Lat   int64  `json:"lat,omitempty"`
}

// Recording is the portable form of a trace snapshot.
type Recording struct {
	Version int         `json:"version"`
	Locks   []string    `json:"locks"`
	Events  []JSONEvent `json:"events"`
}

// Record snapshots the tracer into a portable Recording.
func (t *Tracer) Record() Recording {
	rec := Recording{Version: RecordingVersion}
	if t == nil {
		return rec
	}
	t.mu.Lock()
	for _, le := range t.locks {
		rec.Locks = append(rec.Locks, le.name)
	}
	t.mu.Unlock()
	for _, e := range t.Snapshot() {
		je := JSONEvent{
			Ts:   e.Ts,
			Proc: e.Proc,
			Lock: t.LockName(e.Lock),
			Kind: e.Kind.String(),
		}
		if e.Phase != PhaseNone {
			je.Phase = e.Phase.String()
		}
		switch e.Kind {
		case KindReadAcquired, KindWriteAcquired:
			je.Route = e.Route().String()
			je.Lat = e.Latency()
		default:
			je.Arg = e.Arg
		}
		rec.Events = append(rec.Events, je)
	}
	return rec
}

// WriteJSON writes the recording as indented JSON.
func (rec Recording) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(rec)
}

// ReadRecording parses a recording written by WriteJSON.
func ReadRecording(r io.Reader) (Recording, error) {
	var rec Recording
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return rec, err
	}
	if rec.Version != RecordingVersion {
		return rec, fmt.Errorf("trace: unsupported recording version %d", rec.Version)
	}
	return rec, nil
}

// Decode converts the recording back to binary events plus a lock-name
// resolver, so the profile and exporter run identically on live
// snapshots and on recordings read from disk.
func (rec Recording) Decode() ([]Event, func(uint16) string, error) {
	ids := map[string]uint16{}
	names := append([]string(nil), rec.Locks...)
	for i, n := range names {
		ids[n] = uint16(i)
	}
	lookup := func(id uint16) string {
		if int(id) < len(names) {
			return names[id]
		}
		return "lock?"
	}
	evs := make([]Event, 0, len(rec.Events))
	for i, je := range rec.Events {
		k, ok := KindByName(je.Kind)
		if !ok {
			return nil, nil, fmt.Errorf("trace: event %d: unknown kind %q", i, je.Kind)
		}
		id, ok := ids[je.Lock]
		if !ok {
			id = uint16(len(names))
			names = append(names, je.Lock)
			ids[je.Lock] = id
		}
		e := Event{Ts: je.Ts, Proc: je.Proc, Lock: id, Kind: k, Arg: je.Arg}
		if je.Phase != "" {
			for p := Phase(0); p < NumPhases; p++ {
				if p.String() == je.Phase {
					e.Phase = p
					break
				}
			}
		}
		if k == KindReadAcquired || k == KindWriteAcquired {
			r := RouteNone
			for cand := Route(0); cand < numRoutes; cand++ {
				if cand.String() == je.Route {
					r = cand
					break
				}
			}
			e.Arg = PackAcquire(je.Lat, r)
		}
		evs = append(evs, e)
	}
	sortEvents(evs)
	return evs, lookup, nil
}

// chromeEvent is one Chrome trace-event object. Fields follow the
// Trace Event Format spec (ph: "X" complete, "i" instant, "M"
// metadata); ts/dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

func durp(ns int64) *float64 {
	if ns < 0 {
		ns = 0
	}
	d := us(ns)
	return &d
}

// WriteChromeTrace renders events (a Snapshot or a decoded Recording)
// as Chrome trace-event JSON: one process per lock, one track (thread)
// per proc. Acquisition spans ("acquire.read"/"acquire.write", built
// from the latency packed into Acquired events) enclose the explicit
// phase spans; held spans run from Acquired to the next Released;
// everything else renders as an instant.
func WriteChromeTrace(w io.Writer, evs []Event, lockName func(uint16) string) error {
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	type key struct {
		lock uint16
		proc int32
	}
	type open struct {
		phase Phase
		ts    int64
	}
	type held struct {
		kind Kind
		ts   int64
	}
	opens := map[key]open{}
	helds := map[key]held{}
	seenLock := map[uint16]bool{}
	seenTrack := map[key]bool{}
	// pid 0 confuses some consumers; shift ids by 1. Procs can be -1
	// (tracer-internal tracks), so shift tids by 2.
	pid := func(l uint16) int64 { return int64(l) + 1 }
	tid := func(p int32) int64 { return int64(p) + 2 }

	meta := func(k key) {
		if !seenLock[k.lock] {
			seenLock[k.lock] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid(k.lock), Tid: 0,
				Args: map[string]any{"name": lockName(k.lock)},
			})
		}
		if !seenTrack[k] {
			seenTrack[k] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid(k.lock), Tid: tid(k.proc),
				Args: map[string]any{"name": fmt.Sprintf("proc %d", k.proc)},
			})
		}
	}
	span := func(k key, name, cat string, from, to int64, args map[string]any) {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Ph: "X", Cat: cat, Ts: us(from), Dur: durp(to - from),
			Pid: pid(k.lock), Tid: tid(k.proc), Args: args,
		})
	}
	closeOpen := func(k key, to int64) {
		if o, ok := opens[k]; ok {
			span(k, o.phase.String(), "phase", o.ts, to, nil)
			delete(opens, k)
		}
	}

	for _, e := range evs {
		k := key{e.Lock, e.Proc}
		meta(k)
		switch e.Kind {
		case KindPhaseBegin:
			closeOpen(k, e.Ts)
			opens[k] = open{e.Phase, e.Ts}
		case KindPhaseEnd:
			closeOpen(k, e.Ts)
		case KindReadAcquired, KindWriteAcquired:
			closeOpen(k, e.Ts)
			name := "acquire.read"
			if e.Kind == KindWriteAcquired {
				name = "acquire.write"
			}
			if lat := e.Latency(); lat > 0 {
				span(k, name, "acquire", e.Ts-lat, e.Ts,
					map[string]any{"route": e.Route().String()})
			}
			helds[k] = held{e.Kind, e.Ts}
		case KindReadReleased, KindWriteReleased:
			if h, ok := helds[k]; ok {
				name := PhaseReadHeld.String()
				if h.kind == KindWriteAcquired {
					name = PhaseWriteHeld.String()
				}
				span(k, name, "held", h.ts, e.Ts, nil)
				delete(helds, k)
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Kind.String(), Ph: "i", S: "t", Ts: us(e.Ts),
				Pid: pid(k.lock), Tid: tid(k.proc),
			})
		default:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Kind.String(), Ph: "i", S: "t", Ts: us(e.Ts),
				Pid: pid(k.lock), Tid: tid(k.proc),
				Args: map[string]any{"arg": e.Arg},
			})
		}
	}
	// Deterministic output: the span/instant stream follows event order
	// already; metadata events were interleaved at first sight, which is
	// valid, but sort all metadata first for readability.
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		mi, mj := out.TraceEvents[i].Ph == "M", out.TraceEvents[j].Ph == "M"
		return mi && !mj
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
