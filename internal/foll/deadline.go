// Timed/cancellable acquisition surface for the FOLL lock. The cores
// live in foll.go (rlock/lock, deadline-threaded); this file adds the
// abandonment machinery — readers retract their arrival through the
// indicator's Depart accounting, writers race a gstate CAS against the
// grant chain (see grant), and duties that cannot be unwound are
// detached onto reaper goroutines that finish the protocol verbatim —
// plus the try/duration/context sugar. See ALGORITHMS.md §17.
package foll

import (
	"context"
	"time"

	"ollock/internal/lockcore"
	"ollock/internal/rind"
)

// abandon finalizes a failed timed acquisition: the kind's timeout or
// cancel counter (split by expiry cause), one KindCancel trace event,
// and — when ph is nonzero — the open wait-phase span's close.
func (p *Proc) abandon(ph lockcore.Phase, dl lockcore.Deadline) {
	p.l.in.Inc(lockcore.CancelEvent(lockcore.FOLLTimeout, lockcore.FOLLCancel, dl), p.id)
	p.pi.Emit(lockcore.KindCancel, 0, lockcore.CancelArg(dl))
	if ph != 0 {
		p.pi.End(ph)
	}
}

// departAbandoned retracts a read arrival whose wait timed out. The
// common case is a plain Depart. Drawing the group's last ticket from a
// closed indicator instead means this canceler inherited the
// last-departer duty (signal the closing writer, recycle the node):
// discharged inline when the group has already been granted, and handed
// to a reaper that waits out the group's grant otherwise — signaling
// the writer before the lock reaches the group would break mutual
// exclusion.
func (p *Proc) departAbandoned(n *Node, t rind.Ticket) {
	l := p.l
	if n.ind.Depart(t) {
		return
	}
	p.pi.Emit(lockcore.KindIndDrain, 0, 0)
	if !n.flag.Blocked() {
		// Granted: with a closed indicator and zero surplus every other
		// member has departed, so the hand-off duty is ours, now.
		succ := n.qNext.Load()
		l.grant(succ, p.id, p.pi.TR)
		n.qNext.Store(nil)
		freeReaderNode(n)
		p.pi.Inc(lockcore.FOLLNodeRecycle)
		p.pi.Emit(lockcore.KindHandoff, 0, lockcore.PackHandoff(1, true))
		return
	}
	go l.reapReaderGroup(n, p.id)
}

// reapReaderGroup is the detached last-departer duty of an all-canceled
// reader group: wait for the group's grant, pass the lock straight
// through to the closing writer, and recycle the node. No trace ring
// here — rings are single-writer and belong to the proc's goroutine.
func (l *RWLock) reapReaderGroup(n *Node, id int) {
	n.flag.Wait(l.in.Wait, id, nil)
	succ := n.qNext.Load()
	l.grant(succ, id, nil)
	n.qNext.Store(nil)
	freeReaderNode(n)
	l.in.Inc(lockcore.FOLLNodeRecycle, id)
}

// reapClosedEmpty is the detached duty of a writer that timed out after
// closing its reader predecessor empty: collect the predecessor's
// grant, recycle it, and release the write acquisition the protocol
// forced through.
func (l *RWLock) reapClosedEmpty(w, oldTail *Node, id int) {
	oldTail.flag.Wait(l.in.Wait, id, nil)
	oldTail.qNext.Store(nil)
	freeReaderNode(oldTail)
	l.in.Inc(lockcore.FOLLNodeRecycle, id)
	l.unlockNode(w, id, nil)
}

// cancelWriteWait abandons a write acquisition blocked on its own grant
// flag. Winning the gstate race detaches the queued node (the grant
// chain will skip and orphan it, so the proc gets a fresh one); losing
// it means a grant is already in flight — collect the acquisition and
// release it through the normal path. Returns false either way.
func (p *Proc) cancelWriteWait(dl lockcore.Deadline, t0, pt int64, ph lockcore.Phase) bool {
	l := p.l
	w := p.wNode
	if w.gstate.CompareAndSwap(gLive, gAbandoned) {
		p.wNode = &Node{kind: kindWriter}
		p.abandon(ph, dl)
		return false
	}
	w.flag.Wait(l.in.Wait, p.id, p.pi.TR)
	p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteDirect)
	p.pi.ProfAcquired(pt, true)
	p.Unlock()
	p.abandon(0, dl)
	return false
}

// TryRLock acquires for reading without waiting; it reports success.
func (p *Proc) TryRLock() bool {
	l := p.l
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	tail := l.tail.Load()
	switch {
	case tail == nil:
		rNode := p.allocReaderNode()
		rNode.flag.Set(false)
		rNode.gstate.Store(gLive)
		rNode.qNext.Store(nil)
		if !l.tail.CompareAndSwap(nil, rNode) {
			freeReaderNode(rNode)
			return false
		}
		p.pi.Inc(lockcore.FOLLReadEnqueue)
		p.pi.Emit(lockcore.KindGroupEnqueue, 0, 0)
		rNode.ind.Open()
		t := rNode.ind.ArriveLocal(p.id, p.pi.LC)
		if !t.Arrived() {
			// A writer closed the node already; the closer owns cleanup.
			p.pi.Emit(lockcore.KindArriveFail, 0, 0)
			return false
		}
		p.departFrom, p.ticket = rNode, t
		p.pi.Acquired(lockcore.KindReadAcquired, t0, t.TraceRoute())
		p.pi.ProfAcquired(pt, false)
		return true
	case tail.kind == kindReader && !tail.flag.Blocked():
		t := tail.ind.ArriveLocal(p.id, p.pi.LC)
		if !t.Arrived() {
			p.pi.Emit(lockcore.KindArriveFail, 0, 0)
			return false
		}
		if tail.flag.Blocked() {
			// The node was recycled and re-enqueued waiting between the
			// two loads; we joined a blocked group. Back out.
			p.departAbandoned(tail, t)
			return false
		}
		p.pi.Inc(lockcore.FOLLReadJoin)
		p.departFrom, p.ticket = tail, t
		p.pi.Acquired(lockcore.KindReadAcquired, t0, lockcore.RouteJoin)
		p.pi.ProfAcquired(pt, false)
		return true
	}
	return false
}

// TryLock acquires for writing without waiting; it reports success.
func (p *Proc) TryLock() bool {
	l := p.l
	if l.tail.Load() != nil {
		return false
	}
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	w := p.wNode
	w.qNext.Store(nil)
	w.gstate.Store(gLive)
	if !l.tail.CompareAndSwap(nil, w) {
		return false
	}
	p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteRoot)
	p.pi.ProfAcquired(pt, false)
	return true
}

// RLockDeadline acquires for reading, abandoning on expiry; it reports
// whether the lock was acquired. A zero deadline never expires.
func (p *Proc) RLockDeadline(dl lockcore.Deadline) bool { return p.rlock(dl) }

// LockDeadline acquires for writing, abandoning on expiry; it reports
// whether the lock was acquired.
func (p *Proc) LockDeadline(dl lockcore.Deadline) bool { return p.lock(dl) }

// RLockFor acquires for reading, giving up after d. The try-first shape
// keeps the uncontended timed acquisition at untimed speed: anchoring
// the deadline costs a clock read, which only a failed immediate
// attempt — the one a non-positive d is owed anyway — has to pay.
func (p *Proc) RLockFor(d time.Duration) bool {
	if p.TryRLock() {
		return true
	}
	return p.rlock(lockcore.After(d))
}

// LockFor acquires for writing, giving up after d.
func (p *Proc) LockFor(d time.Duration) bool {
	if p.TryLock() {
		return true
	}
	return p.lock(lockcore.After(d))
}

// RLockCtx acquires for reading, abandoning when ctx is done. It
// returns nil on acquisition and the context's error otherwise.
func (p *Proc) RLockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dl := lockcore.FromContext(ctx)
	if p.rlock(dl) {
		return nil
	}
	return dl.Err()
}

// LockCtx acquires for writing, abandoning when ctx is done. It
// returns nil on acquisition and the context's error otherwise.
func (p *Proc) LockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dl := lockcore.FromContext(ctx)
	if p.lock(dl) {
		return nil
	}
	return dl.Err()
}

// NodesInUse returns the number of allocated ring-pool nodes
// (diagnostic; exact only at quiescence).
func (l *RWLock) NodesInUse() int {
	c := 0
	for i := range l.ring {
		if l.ring[i].allocState.Load() == allocInUse {
			c++
		}
	}
	return c
}

// Idle reports whether the lock is free (diagnostic; exact only at
// quiescence): either the queue is empty, or the tail is a drained
// reader group — an open, zero-surplus, unblocked reader node, which
// is how the lock rests after read-mostly traffic (the node stays in
// place for future readers to join).
func (l *RWLock) Idle() bool {
	n := l.tail.Load()
	if n == nil {
		return true
	}
	if n.kind != kindReader || n.flag.Blocked() {
		return false
	}
	nonzero, open := n.ind.Query()
	return open && !nonzero
}
