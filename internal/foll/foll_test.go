package foll

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ollock/internal/xrand"
)

func TestProcLimit(t *testing.T) {
	l := New(2)
	l.NewProc()
	l.NewProc()
	defer func() {
		if recover() == nil {
			t.Fatal("exceeding maxProcs did not panic")
		}
	}()
	l.NewProc()
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// TestReadersShareOneNode: concurrent readers on an uncontended lock all
// join the single enqueued reader node — observable as at most one
// in-use ring node at any time.
func TestReadersShareOneNode(t *testing.T) {
	const procs = 8
	l := New(procs)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := l.NewProc()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.RLock()
				p.RUnlock()
			}
		}()
	}
	// Sample the pool occupancy while the readers hammer the lock.
	maxInUse := 0
	for i := 0; i < 200; i++ {
		inUse := 0
		for j := range l.ring {
			if l.ring[j].allocState.Load() == allocInUse {
				inUse++
			}
		}
		if inUse > maxInUse {
			maxInUse = inUse
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	// Read-only workload: only one node is ever enqueued at a time, plus
	// transient allocations that are freed unenqueued. Seeing more than
	// 2 in use would mean nodes leak or readers fragment across nodes.
	if maxInUse > 2 {
		t.Fatalf("up to %d ring nodes in use under read-only load, want <= 2", maxInUse)
	}
}

// TestNodeRecycling: nodes freed by last-departing readers are reusable;
// the ring never exhausts across many writer/reader alternations.
func TestNodeRecycling(t *testing.T) {
	const procs = 4
	l := New(procs)
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := l.NewProc()
			r := xrand.New(uint64(id+1) * 1299709)
			for i := 0; i < 3000; i++ {
				if r.Bool(0.7) {
					p.RLock()
					p.RUnlock()
				} else {
					p.Lock()
					p.Unlock()
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stalled: likely ring pool exhaustion or lost signal")
	}
	// Quiescent: at most one node may remain in use — the drained reader
	// node legitimately left enqueued at the head (it is recycled only
	// when a later writer closes it), and it must be the queue tail.
	inUse := 0
	for i := range l.ring {
		if l.ring[i].allocState.Load() != allocFree {
			inUse++
			if tail := l.tail.Load(); tail != &l.ring[i] {
				t.Fatalf("in-use ring node %d is not the enqueued tail", i)
			}
		}
	}
	if inUse > 1 {
		t.Fatalf("%d ring nodes in use after quiescence, want <= 1", inUse)
	}
}

// TestFIFOWritersNoOvertake: FOLL is FIFO — a reader arriving after a
// queued writer waits for it.
func TestFIFOWritersNoOvertake(t *testing.T) {
	l := New(4)
	holder := l.NewProc()
	wproc := l.NewProc()
	rproc := l.NewProc()

	holder.RLock()
	writerIn := make(chan struct{})
	go func() {
		wproc.Lock()
		close(writerIn)
		time.Sleep(10 * time.Millisecond)
		wproc.Unlock()
	}()
	time.Sleep(30 * time.Millisecond) // writer queued, closed holder's node

	readerIn := make(chan struct{})
	go func() {
		rproc.RLock()
		close(readerIn)
		rproc.RUnlock()
	}()
	select {
	case <-readerIn:
		t.Fatal("reader overtook queued writer in FOLL")
	case <-time.After(30 * time.Millisecond):
	}
	holder.RUnlock()
	<-writerIn
	select {
	case <-readerIn:
	case <-time.After(20 * time.Second):
		t.Fatal("queued reader never admitted")
	}
}

// TestWriterClosesEmptyReaderNode: a writer behind a reader node whose
// readers have all departed (C-SNZI open, surplus 0) must reclaim the
// node itself and proceed.
func TestWriterClosesEmptyReaderNode(t *testing.T) {
	l := New(2)
	rp := l.NewProc()
	wp := l.NewProc()
	// Reader leaves an empty-but-enqueued node at the head.
	rp.RLock()
	rp.RUnlock()
	// Writer must get through it without any reader signalling.
	done := make(chan struct{})
	go func() {
		wp.Lock()
		wp.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("writer stuck behind empty reader node")
	}
}

func TestSequentialKindSwitching(t *testing.T) {
	l := New(1)
	p := l.NewProc()
	for i := 0; i < 2000; i++ {
		p.RLock()
		p.RUnlock()
		p.Lock()
		p.Unlock()
	}
	// The trailing Lock/Unlock closed and recycled any drained reader
	// node, so the ring must be fully free here.
	for i := range l.ring {
		if l.ring[i].allocState.Load() != allocFree {
			t.Fatalf("ring node %d leaked", i)
		}
	}
}

func TestMixedInvariantStress(t *testing.T) {
	const procs = 8
	l := New(procs)
	var readers, writers atomic.Int32
	var bad atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := l.NewProc()
			r := xrand.New(uint64(id+1) * 104729)
			for i := 0; i < 2000; i++ {
				if r.Bool(0.85) {
					p.RLock()
					readers.Add(1)
					if writers.Load() != 0 {
						bad.Add(1)
					}
					readers.Add(-1)
					p.RUnlock()
				} else {
					p.Lock()
					if writers.Add(1) != 1 || readers.Load() != 0 {
						bad.Add(1)
					}
					writers.Add(-1)
					p.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d exclusion violations", bad.Load())
	}
}

func TestMaxProcsAccessor(t *testing.T) {
	if New(5).MaxProcs() != 5 {
		t.Fatal("MaxProcs mismatch")
	}
}
