package foll

import (
	"context"
	"sync"
	"testing"
	"time"

	"ollock/internal/lockcore"
	"ollock/internal/obs"
)

// holdWrite grabs the write lock on a fresh proc and returns a release
// func.
func holdWrite(l *RWLock) func() {
	p := l.NewProc()
	p.Lock()
	return p.Unlock
}

func TestWriteTimeoutBehindWriter(t *testing.T) {
	st := obs.New()
	l := New(4, WithInstr(lockcore.Instr{Stats: st}))
	release := holdWrite(l)
	p := l.NewProc()
	if p.LockFor(20 * time.Millisecond) {
		t.Fatal("LockFor succeeded while lock held")
	}
	if got := st.Count(obs.FOLLTimeout); got != 1 {
		t.Fatalf("foll.timeout = %d, want 1", got)
	}
	release()
	// The abandoned node must be skipped: the lock must still work.
	if !p.LockFor(time.Second) {
		t.Fatal("LockFor failed on free lock")
	}
	p.Unlock()
	if !l.Idle() {
		t.Fatal("queue not empty at quiescence")
	}
}

func TestReadTimeoutBehindWriter(t *testing.T) {
	st := obs.New()
	l := New(4, WithInstr(lockcore.Instr{Stats: st}))
	release := holdWrite(l)
	p := l.NewProc()
	if p.RLockFor(20 * time.Millisecond) {
		t.Fatal("RLockFor succeeded while write-held")
	}
	if got := st.Count(obs.FOLLTimeout); got != 1 {
		t.Fatalf("foll.timeout = %d, want 1", got)
	}
	release()
	if !p.RLockFor(time.Second) {
		t.Fatal("RLockFor failed on free lock")
	}
	p.RUnlock()
}

func TestReadCtxCancel(t *testing.T) {
	st := obs.New()
	l := New(4, WithInstr(lockcore.Instr{Stats: st}))
	release := holdWrite(l)
	defer release()
	p := l.NewProc()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := p.RLockCtx(ctx); err != context.Canceled {
		t.Fatalf("RLockCtx = %v, want context.Canceled", err)
	}
	if got := st.Count(obs.FOLLCancel); got != 1 {
		t.Fatalf("foll.cancel = %d, want 1", got)
	}
}

// TestAllReadersCancelGroupWithWriterBehind drives the reaper path: a
// waiting reader group whose every member times out while a writer has
// already closed the group's indicator. The reaper must hand the lock
// through to the writer and recycle the node.
func TestAllReadersCancelGroupWithWriterBehind(t *testing.T) {
	l := New(8)
	release := holdWrite(l)

	const readers = 3
	var rg sync.WaitGroup
	for i := 0; i < readers; i++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			p := l.NewProc()
			if p.RLockFor(50 * time.Millisecond) {
				p.RUnlock()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let the group form behind the writer

	wDone := make(chan struct{})
	go func() {
		p := l.NewProc()
		p.Lock() // closes the reader group's indicator
		p.Unlock()
		close(wDone)
	}()
	time.Sleep(10 * time.Millisecond) // let the writer close the group
	rg.Wait()                         // all readers cancel; last one spawns the reaper
	release()                         // grant reaches the group, reaper passes it on

	select {
	case <-wDone:
	case <-time.After(5 * time.Second):
		t.Fatal("writer behind an all-canceled group never acquired (lost wakeup)")
	}
	deadline := time.Now().Add(time.Second)
	for l.NodesInUse() != 0 || !l.Idle() {
		if time.Now().After(deadline) {
			t.Fatalf("at quiescence: NodesInUse=%d Idle=%v", l.NodesInUse(), l.Idle())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTrySemantics(t *testing.T) {
	l := New(4)
	p1 := l.NewProc()
	p2 := l.NewProc()
	if !p1.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	if p2.TryLock() || p2.TryRLock() {
		t.Fatal("Try succeeded while write-held")
	}
	p1.Unlock()
	if !p1.TryRLock() {
		t.Fatal("TryRLock failed on free lock")
	}
	if !p2.TryRLock() {
		t.Fatal("TryRLock (join) failed on read-held lock")
	}
	if p2.TryLock() {
		t.Fatal("TryLock succeeded while read-held")
	}
	p1.RUnlock()
	p2.RUnlock()
}
