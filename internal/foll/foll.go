// Package foll implements the FOLL lock — the FIFO distributed-queue
// OLL reader-writer lock of §4.2 (Figure 4) of "Scalable Reader-Writer
// Locks".
//
// FOLL extends the MCS queue-lock idea: writers enqueue per-thread
// nodes and spin locally, but successive readers share a single queue
// node through a per-node C-SNZI, so under read-only workloads readers
// never write the tail pointer — they just arrive at and depart from the
// C-SNZI of the reader node at the tail. A writer enqueuing behind a
// reader node closes that node's C-SNZI, which simultaneously blocks
// later readers from joining the node and arranges for the last reader
// to signal the writer.
//
// Reader nodes outlive the acquisition of the thread that enqueued them
// (the enqueuer need not be the last to depart), so they are recycled
// through a ring pool of N nodes for N threads, per the availability
// argument of §4.2.1: a node is freed exactly once per allocation,
// either by the thread that allocated but never enqueued it, or by the
// unique thread that observed the node's C-SNZI become closed with zero
// surplus (the last departing reader, or the closing writer when no
// readers were present).
package foll

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"ollock/internal/atomicx"
	"ollock/internal/obs"
	"ollock/internal/park"
	"ollock/internal/rind"
	"ollock/internal/trace"
)

// Node kinds.
const (
	kindReader uint32 = iota
	kindWriter
)

// Node allocation states (reader nodes only).
const (
	allocFree uint32 = iota
	allocInUse
)

// Node is a queue node. Writer nodes belong to one thread each; reader
// nodes live in the lock's ring pool and are shared by groups of
// readers.
type Node struct {
	kind  uint32 // immutable
	qNext atomicx.PaddedPointer[Node]
	// flag is the node's grant flag (the "spin" boolean of Figure 4),
	// policy-aware so blocked threads can yield or park instead of
	// burning CPU; see internal/park.
	flag park.Flag
	// Reader-node-only fields.
	ind        rind.Indicator // closed whenever the node is not enqueued
	allocState atomic.Uint32
	ringNext   *Node // immutable ring pointer for the pool
}

// RWLock is a FOLL reader-writer lock for up to a fixed number of
// participating goroutines. Use New, then create one Proc per goroutine.
type RWLock struct {
	tail    atomicx.PaddedPointer[Node]
	ring    []Node
	procs   atomic.Int64
	factory rind.Factory
	// stats is the optional instrumentation block (nil = off), shared
	// with every ring node's indicator.
	stats *obs.Stats
	// lt is the optional flight-recorder handle (nil = off).
	lt *trace.LockTrace
	// pol is the wait policy every blocking site routes through (nil =
	// pure spinning, the paper's behavior).
	pol *park.Policy
}

// Proc is a per-goroutine handle. It carries the thread-local state of
// the paper's pseudocode (default reader node, writer node, last arrival
// ticket). A Proc supports one outstanding acquisition at a time.
type Proc struct {
	l          *RWLock
	id         int
	rNode      *Node // default ring start for allocation
	wNode      *Node
	departFrom *Node
	ticket     rind.Ticket
	// lc is the proc's buffered counter view (nil when the lock is
	// uninstrumented); the read hot path counts through it so the
	// shared stats cells are touched only once per obs.FlushEvery
	// events.
	lc *obs.Local
	// tr is the proc's flight-recorder ring (nil when untraced).
	tr *trace.Local
}

// Option configures the lock.
type Option func(*RWLock)

// WithStats attaches an instrumentation block (see internal/obs). The
// lock counts group joins vs. new-node enqueues and ring-pool
// recycling under foll.*, and shares the block with every ring node's
// C-SNZI (csnzi.* counters, including the per-group close/open churn).
func WithStats(s *obs.Stats) Option { return func(l *RWLock) { l.stats = s } }

// WithIndicator substitutes a read-indicator factory (see
// internal/rind) for the per-node C-SNZIs. A factory rather than an
// instance: every ring-pool node carries its own indicator, and
// recycled nodes then recycle indicators of the chosen kind.
func WithIndicator(f rind.Factory) Option { return func(l *RWLock) { l.factory = f } }

// WithTrace attaches a flight-recorder handle (see internal/trace). The
// lock emits queue/group/hand-off lifecycle events per proc and
// registers itself as a live-state dumper for the stall watchdog.
func WithTrace(lt *trace.LockTrace) Option { return func(l *RWLock) { l.lt = lt } }

// WithWaitPolicy selects how blocked threads wait (see internal/park):
// node grant flags become parking-capable, and the untimed waits
// (indicator opening, successor linking) descend the policy's ladder. A
// nil policy (the default) spins exactly as the paper does.
func WithWaitPolicy(pol *park.Policy) Option { return func(l *RWLock) { l.pol = pol } }

// New returns a FOLL lock sized for maxProcs participating goroutines
// (the ring pool holds exactly maxProcs reader nodes, which §4.2.1
// proves sufficient).
func New(maxProcs int, opts ...Option) *RWLock {
	if maxProcs <= 0 {
		panic("foll: maxProcs must be positive")
	}
	l := &RWLock{ring: make([]Node, maxProcs)}
	for _, o := range opts {
		o(l)
	}
	if l.factory == nil {
		l.factory = rind.CSNZIFactory()
	}
	for i := range l.ring {
		n := &l.ring[i]
		n.kind = kindReader
		n.ringNext = &l.ring[(i+1)%maxProcs]
		n.ind = rind.Instrument(l.factory(), l.stats)
		// Fresh nodes start closed with no surplus (§4.2: "when just
		// allocated, has a closed C-SNZI"): a node's indicator is open
		// only while the node is enqueued.
		n.ind.CloseIfEmpty()
	}
	l.lt.AddDumper(l)
	return l
}

// NewProc registers a goroutine with the lock; it panics if more than
// maxProcs handles are created. Each handle gets a distinct default
// ring node, which keeps allocation contention low.
func (l *RWLock) NewProc() *Proc {
	id := int(l.procs.Add(1)) - 1
	if id >= len(l.ring) {
		panic("foll: more procs than maxProcs")
	}
	return &Proc{
		l:     l,
		id:    id,
		rNode: &l.ring[id],
		wNode: &Node{kind: kindWriter},
		lc:    l.stats.NewLocal(id),
		tr:    l.lt.NewLocal(id),
	}
}

// allocReaderNode returns a free reader node, walking the ring from the
// proc's default node. Availability is guaranteed by the §4.2.1
// accounting (N nodes, N threads), so the walk terminates.
func (p *Proc) allocReaderNode() *Node {
	cur := p.rNode
	for {
		if cur.allocState.Load() == allocFree &&
			cur.allocState.CompareAndSwap(allocFree, allocInUse) {
			return cur
		}
		cur = cur.ringNext
		if cur == p.rNode {
			// Full loop without success: another thread is between
			// freeing and reallocating; yield and retry.
			runtime.Gosched()
		}
	}
}

// freeReaderNode returns a node to the pool. At most one thread frees a
// node per allocation (the §4.2.1 argument), so a plain store suffices.
func freeReaderNode(n *Node) {
	n.allocState.Store(allocFree)
}

// RLock acquires the lock for reading.
func (p *Proc) RLock() {
	l := p.l
	t0 := p.tr.Now()
	var rNode *Node
	for {
		tail := l.tail.Load()
		switch {
		case tail == nil:
			// Empty queue: enqueue a fresh reader node with spin=false
			// (its readers may run immediately), then open its C-SNZI
			// and join it.
			if rNode == nil {
				rNode = p.allocReaderNode()
			}
			rNode.flag.Set(false)
			rNode.qNext.Store(nil)
			if !l.tail.CompareAndSwap(nil, rNode) {
				continue // tail changed; retry (keep rNode)
			}
			p.lc.Inc(obs.FOLLReadEnqueue)
			p.tr.Emit(trace.KindGroupEnqueue, 0, 0)
			rNode.ind.Open()
			t := rNode.ind.ArriveLocal(p.id, p.lc)
			if t.Arrived() {
				p.departFrom = rNode
				p.ticket = t
				p.tr.Acquired(trace.KindReadAcquired, t0, t.TraceRoute())
				return
			}
			// A writer closed the node between Open and Arrive. The node
			// is in the queue; the closer owns its cleanup. Retry with a
			// new node.
			p.tr.Emit(trace.KindArriveFail, 0, 0)
			rNode = nil

		case tail.kind == kindWriter:
			// Enqueue a fresh reader node behind the writer, waiting
			// (spin=true) until the writer's release.
			if rNode == nil {
				rNode = p.allocReaderNode()
			}
			rNode.flag.Set(true)
			rNode.qNext.Store(nil)
			if !l.tail.CompareAndSwap(tail, rNode) {
				continue
			}
			p.lc.Inc(obs.FOLLReadEnqueue)
			p.tr.Emit(trace.KindGroupEnqueue, 0, 1)
			tail.qNext.Store(rNode)
			rNode.ind.Open()
			t := rNode.ind.ArriveLocal(p.id, p.lc)
			if t.Arrived() {
				p.departFrom = rNode
				p.ticket = t
				if p.tr != nil && rNode.flag.Blocked() {
					p.tr.Begin(trace.PhaseSpinWait)
				}
				rNode.flag.Wait(l.pol, p.id, p.tr)
				p.tr.Acquired(trace.KindReadAcquired, t0, t.TraceRoute())
				return
			}
			p.tr.Emit(trace.KindArriveFail, 0, 0)
			rNode = nil

		default:
			// Tail is a reader node: join it.
			t := tail.ind.ArriveLocal(p.id, p.lc)
			if t.Arrived() {
				p.lc.Inc(obs.FOLLReadJoin)
				if rNode != nil {
					freeReaderNode(rNode) // allocated but never enqueued
				}
				p.departFrom = tail
				p.ticket = t
				if p.tr != nil && tail.flag.Blocked() {
					p.tr.Begin(trace.PhaseSpinWait)
				}
				tail.flag.Wait(l.pol, p.id, p.tr)
				p.tr.Acquired(trace.KindReadAcquired, t0, trace.RouteJoin)
				return
			}
			// Arrive failed: a writer closed the node after enqueuing
			// behind it, so the tail must have changed. Retry.
			p.tr.Emit(trace.KindArriveFail, 0, 0)
		}
	}
}

// RUnlock releases a read acquisition. If this thread is the last to
// depart a closed C-SNZI, it signals the writer that closed it and
// recycles the reader node.
func (p *Proc) RUnlock() {
	n := p.departFrom
	if n.ind.Depart(p.ticket) {
		p.tr.Released(trace.KindReadReleased)
		return
	}
	// Last departer: the closing writer linked itself before closing, so
	// qNext is set.
	p.tr.Emit(trace.KindIndDrain, 0, 0)
	succ := n.qNext.Load()
	succ.flag.Clear(p.l.pol)
	n.qNext.Store(nil) // clean up before recycling
	freeReaderNode(n)
	p.lc.Inc(obs.FOLLNodeRecycle)
	p.tr.Emit(trace.KindHandoff, 0, trace.PackHandoff(1, true))
	p.tr.Released(trace.KindReadReleased)
}

// Lock acquires the lock for writing, exactly as in the MCS mutex except
// for the reader-node predecessor handling.
func (p *Proc) Lock() {
	l := p.l
	t0 := p.tr.Now()
	var w0 time.Time
	if l.stats.Enabled() {
		w0 = time.Now()
	}
	w := p.wNode
	w.qNext.Store(nil)
	oldTail := l.tail.Swap(w)
	if oldTail == nil {
		p.tr.Acquired(trace.KindWriteAcquired, t0, trace.RouteRoot)
		if l.stats.Enabled() {
			l.stats.Observe(obs.FOLLWriteWait, p.id, time.Since(w0).Nanoseconds())
		}
		return // free lock acquired
	}
	w.flag.Set(true)
	oldTail.qNext.Store(w)
	p.tr.Emit(trace.KindQueueEnqueue, 0, 1)
	if oldTail.kind == kindWriter {
		p.tr.BeginAt(t0, trace.PhaseQueueWait)
		w.flag.Wait(l.pol, p.id, p.tr)
		p.tr.Acquired(trace.KindWriteAcquired, t0, trace.RouteDirect)
		if l.stats.Enabled() {
			l.stats.Observe(obs.FOLLWriteWait, p.id, time.Since(w0).Nanoseconds())
		}
		return
	}
	// Reader predecessor. Its C-SNZI may not be open yet (the enqueuer
	// opens it just after the enqueue; see also node recycling): wait
	// until it is, then close it to stop further readers joining.
	p.tr.BeginAt(t0, trace.PhaseDrainWait)
	park.WaitCond(l.pol, p.id, p.tr, func() bool {
		_, open := oldTail.ind.Query()
		return open
	})
	closedEmpty := oldTail.ind.Close()
	p.tr.Emit(trace.KindIndClose, 0, 0)
	if closedEmpty {
		// Closed empty: no readers will signal us. Wait for the
		// predecessor node's own grant and recycle it ourselves.
		oldTail.flag.Wait(l.pol, p.id, p.tr)
		oldTail.qNext.Store(nil)
		freeReaderNode(oldTail)
		l.stats.Inc(obs.FOLLNodeRecycle, p.id)
		p.tr.Acquired(trace.KindWriteAcquired, t0, trace.RouteRoot)
		if l.stats.Enabled() {
			l.stats.Observe(obs.FOLLWriteWait, p.id, time.Since(w0).Nanoseconds())
		}
		return
	}
	// Readers exist: the last departer will signal us.
	w.flag.Wait(l.pol, p.id, p.tr)
	p.tr.Acquired(trace.KindWriteAcquired, t0, trace.RouteDirect)
	if l.stats.Enabled() {
		l.stats.Observe(obs.FOLLWriteWait, p.id, time.Since(w0).Nanoseconds())
	}
}

// Unlock releases a write acquisition.
func (p *Proc) Unlock() {
	l := p.l
	w := p.wNode
	if w.qNext.Load() == nil {
		if l.tail.CompareAndSwap(w, nil) {
			p.tr.Released(trace.KindWriteReleased)
			return
		}
		park.WaitCond(l.pol, p.id, p.tr, func() bool { return w.qNext.Load() != nil })
	}
	succ := w.qNext.Load()
	succ.flag.Clear(l.pol)
	w.qNext.Store(nil) // clean up
	p.tr.Emit(trace.KindHandoff, 0, trace.PackHandoff(1, succ.kind == kindWriter))
	p.tr.Released(trace.KindWriteReleased)
}

// MaxProcs returns the ring size (diagnostic).
func (l *RWLock) MaxProcs() int { return len(l.ring) }

// DumpLockState renders the live queue for the trace watchdog: the tail
// node plus every in-use ring node. All fields involved are atomics (or
// immutable), so the racy read is safe, merely advisory.
func (l *RWLock) DumpLockState(w io.Writer) {
	tail := l.tail.Load()
	if tail == nil {
		fmt.Fprintf(w, "foll: queue empty (lock free)\n")
		return
	}
	fmt.Fprintf(w, "foll: tail node: %s\n", l.describeNode(tail))
	for i := range l.ring {
		n := &l.ring[i]
		if n.allocState.Load() == allocInUse && n != tail {
			fmt.Fprintf(w, "foll: ring node %d: %s\n", i, l.describeNode(n))
		}
	}
}

func (l *RWLock) describeNode(n *Node) string {
	if n.kind == kindWriter {
		return fmt.Sprintf("writer spin=%v", n.flag.Blocked())
	}
	return fmt.Sprintf("reader spin=%v ind=%s", n.flag.Blocked(), rind.Describe(n.ind))
}
