// Package foll implements the FOLL lock — the FIFO distributed-queue
// OLL reader-writer lock of §4.2 (Figure 4) of "Scalable Reader-Writer
// Locks".
//
// FOLL extends the MCS queue-lock idea: writers enqueue per-thread
// nodes and spin locally, but successive readers share a single queue
// node through a per-node C-SNZI, so under read-only workloads readers
// never write the tail pointer — they just arrive at and depart from the
// C-SNZI of the reader node at the tail. A writer enqueuing behind a
// reader node closes that node's C-SNZI, which simultaneously blocks
// later readers from joining the node and arranges for the last reader
// to signal the writer.
//
// Reader nodes outlive the acquisition of the thread that enqueued them
// (the enqueuer need not be the last to depart), so they are recycled
// through a ring pool of N nodes for N threads, per the availability
// argument of §4.2.1: a node is freed exactly once per allocation,
// either by the thread that allocated but never enqueued it, or by the
// unique thread that observed the node's C-SNZI become closed with zero
// surplus (the last departing reader, or the closing writer when no
// readers were present).
package foll

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"

	"ollock/internal/atomicx"
	"ollock/internal/lockcore"
	"ollock/internal/rind"
)

// Node kinds.
const (
	kindReader uint32 = iota
	kindWriter
)

// Node allocation states (reader nodes only).
const (
	allocFree uint32 = iota
	allocInUse
)

// Node grant states: the one-word race between a hand-off and an
// abandonment. A node enters the queue gLive; whoever hands the lock to
// it first CASes gLive→gGranted and only then clears its flag, while a
// writer abandoning a timed acquisition CASes gLive→gAbandoned and
// walks away. Exactly one CAS wins, so a grant is never delivered to an
// abandoned node (the granter skips it; see grant) and an abandonment
// never swallows an in-flight grant (the canceler that loses the race
// must collect the acquisition and release it normally). Reader nodes
// are reset to gLive at every enqueue but never abandoned — canceling
// readers leave through the indicator's Depart accounting, which keeps
// the §4.2.1 pool invariant intact.
const (
	gLive uint32 = iota
	gGranted
	gAbandoned
)

// Node is a queue node. Writer nodes belong to one thread each; reader
// nodes live in the lock's ring pool and are shared by groups of
// readers.
type Node struct {
	kind  uint32 // immutable
	qNext atomicx.PaddedPointer[Node]
	// flag is the node's grant flag (the "spin" boolean of Figure 4),
	// policy-aware so blocked threads can yield or park instead of
	// burning CPU; see internal/park via lockcore.
	flag lockcore.Flag
	// gstate is the grant/abandon race word (see the g* constants).
	gstate atomic.Uint32
	// Reader-node-only fields.
	ind        rind.Indicator // closed whenever the node is not enqueued
	allocState atomic.Uint32
	ringNext   *Node // immutable ring pointer for the pool
}

// RWLock is a FOLL reader-writer lock for up to a fixed number of
// participating goroutines. Use New, then create one Proc per goroutine.
type RWLock struct {
	tail    atomicx.PaddedPointer[Node]
	ring    []Node
	procs   atomic.Int64
	factory rind.Factory
	// in is the instrumentation bundle (zero = all off): the stats
	// block is shared with every ring node's indicator, and the wait
	// policy routes every blocking site.
	in lockcore.Instr
}

// Proc is a per-goroutine handle. It carries the thread-local state of
// the paper's pseudocode (default reader node, writer node, last arrival
// ticket). A Proc supports one outstanding acquisition at a time.
type Proc struct {
	l          *RWLock
	id         int
	rNode      *Node // default ring start for allocation
	wNode      *Node
	departFrom *Node
	ticket     rind.Ticket
	// pi is the proc's instrumentation view (buffered counters +
	// flight-recorder ring); one predictable branch per site when off.
	pi lockcore.ProcInstr
}

// Option configures the lock.
type Option func(*RWLock)

// WithIndicator substitutes a read-indicator factory (see
// internal/rind) for the per-node C-SNZIs. A factory rather than an
// instance: every ring-pool node carries its own indicator, and
// recycled nodes then recycle indicators of the chosen kind.
func WithIndicator(f rind.Factory) Option { return func(l *RWLock) { l.factory = f } }

// WithInstr attaches the instrumentation bundle (see internal/lockcore):
// the stats block (foll.* join/enqueue/recycle counters, shared with
// every ring node's csnzi.* counters), the flight-recorder handle
// (queue/group/hand-off lifecycle events), and the wait policy that
// makes node grant flags parking-capable. The zero bundle (the default)
// spins exactly as the paper does, uninstrumented.
func WithInstr(in lockcore.Instr) Option { return func(l *RWLock) { l.in = in } }

// New returns a FOLL lock sized for maxProcs participating goroutines
// (the ring pool holds exactly maxProcs reader nodes, which §4.2.1
// proves sufficient).
func New(maxProcs int, opts ...Option) *RWLock {
	if maxProcs <= 0 {
		panic("foll: maxProcs must be positive")
	}
	l := &RWLock{ring: make([]Node, maxProcs)}
	for _, o := range opts {
		o(l)
	}
	if l.factory == nil {
		l.factory = rind.CSNZIFactory()
	}
	for i := range l.ring {
		n := &l.ring[i]
		n.kind = kindReader
		n.ringNext = &l.ring[(i+1)%maxProcs]
		n.ind = rind.Instrument(l.factory(), l.in.Stats)
		// Fresh nodes start closed with no surplus (§4.2: "when just
		// allocated, has a closed C-SNZI"): a node's indicator is open
		// only while the node is enqueued.
		n.ind.CloseIfEmpty()
	}
	l.in.AddDumper(l)
	return l
}

// NewProc registers a goroutine with the lock; it panics if more than
// maxProcs handles are created. Each handle gets a distinct default
// ring node, which keeps allocation contention low.
func (l *RWLock) NewProc() *Proc {
	id := int(l.procs.Add(1)) - 1
	if id >= len(l.ring) {
		panic("foll: more procs than maxProcs")
	}
	return &Proc{
		l:     l,
		id:    id,
		rNode: &l.ring[id],
		wNode: &Node{kind: kindWriter},
		pi:    l.in.NewProc(id),
	}
}

// allocReaderNode returns a free reader node, walking the ring from the
// proc's default node. Availability is guaranteed by the §4.2.1
// accounting (N nodes, N threads), so the walk terminates.
func (p *Proc) allocReaderNode() *Node {
	cur := p.rNode
	for {
		if cur.allocState.Load() == allocFree &&
			cur.allocState.CompareAndSwap(allocFree, allocInUse) {
			return cur
		}
		cur = cur.ringNext
		if cur == p.rNode {
			// Full loop without success: another thread is between
			// freeing and reallocating; yield and retry.
			runtime.Gosched()
		}
	}
}

// freeReaderNode returns a node to the pool. At most one thread frees a
// node per allocation (the §4.2.1 argument), so a plain store suffices.
func freeReaderNode(n *Node) {
	n.allocState.Store(allocFree)
}

// grant hands the lock to n, skipping nodes whose writers abandoned
// their acquisition. Every hand-off site routes through here: winning
// the gstate CAS commits the grant before the flag is cleared, and
// losing it means the node's writer timed out, so ownership passes to
// the successor instead — waiting for the enqueue/link race to settle
// exactly as Unlock does, and emptying the queue if the abandoned node
// was the tail. Skipped writer nodes are garbage (their procs already
// replaced them); reader nodes are never abandoned, so for them the
// CAS always succeeds.
func (l *RWLock) grant(n *Node, id int, tr *lockcore.TraceLocal) {
	for {
		if n.gstate.CompareAndSwap(gLive, gGranted) {
			n.flag.Clear(l.in.Wait)
			return
		}
		succ := n.qNext.Load()
		if succ == nil {
			if l.tail.CompareAndSwap(n, nil) {
				return // abandoned tail: the queue is now empty
			}
			lockcore.WaitCond(l.in.Wait, id, tr, func() bool { return n.qNext.Load() != nil })
			succ = n.qNext.Load()
		}
		n.qNext.Store(nil)
		n = succ
	}
}

// RLock acquires the lock for reading.
func (p *Proc) RLock() { p.rlock(lockcore.Deadline{}) }

// rlock is the read-acquisition core, shared by RLock (zero deadline,
// which never expires) and the timed variants in deadline.go. It
// reports whether the lock was acquired.
func (p *Proc) rlock(dl lockcore.Deadline) bool {
	l := p.l
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	slow := false
	var rNode *Node
	for {
		if !dl.None() && dl.Expired() {
			// Not enqueued and holding no arrival: just walk away.
			if rNode != nil {
				freeReaderNode(rNode)
			}
			p.abandon(0, dl)
			return false
		}
		tail := l.tail.Load()
		switch {
		case tail == nil:
			// Empty queue: enqueue a fresh reader node with spin=false
			// (its readers may run immediately), then open its C-SNZI
			// and join it.
			if rNode == nil {
				rNode = p.allocReaderNode()
			}
			rNode.flag.Set(false)
			rNode.gstate.Store(gLive)
			rNode.qNext.Store(nil)
			if !l.tail.CompareAndSwap(nil, rNode) {
				slow = true
				continue // tail changed; retry (keep rNode)
			}
			p.pi.Inc(lockcore.FOLLReadEnqueue)
			p.pi.Emit(lockcore.KindGroupEnqueue, 0, 0)
			rNode.ind.Open()
			t := rNode.ind.ArriveLocal(p.id, p.pi.LC)
			if t.Arrived() {
				p.departFrom = rNode
				p.ticket = t
				p.pi.Acquired(lockcore.KindReadAcquired, t0, t.TraceRoute())
				p.pi.ProfAcquired(pt, slow)
				return true
			}
			// A writer closed the node between Open and Arrive. The node
			// is in the queue; the closer owns its cleanup. Retry with a
			// new node.
			p.pi.Emit(lockcore.KindArriveFail, 0, 0)
			slow = true
			rNode = nil

		case tail.kind == kindWriter:
			// Enqueue a fresh reader node behind the writer, waiting
			// (spin=true) until the writer's release.
			if rNode == nil {
				rNode = p.allocReaderNode()
			}
			rNode.flag.Set(true)
			rNode.gstate.Store(gLive)
			rNode.qNext.Store(nil)
			if !l.tail.CompareAndSwap(tail, rNode) {
				slow = true
				continue
			}
			p.pi.Inc(lockcore.FOLLReadEnqueue)
			p.pi.Emit(lockcore.KindGroupEnqueue, 0, 1)
			tail.qNext.Store(rNode)
			rNode.ind.Open()
			t := rNode.ind.ArriveLocal(p.id, p.pi.LC)
			if t.Arrived() {
				if p.pi.Tracing() && rNode.flag.Blocked() {
					p.pi.Begin(lockcore.PhaseSpinWait)
				}
				if !rNode.flag.WaitUntil(l.in.Wait, p.id, p.pi.TR, dl) {
					p.departAbandoned(rNode, t)
					p.abandon(lockcore.PhaseSpinWait, dl)
					return false
				}
				p.departFrom = rNode
				p.ticket = t
				p.pi.Acquired(lockcore.KindReadAcquired, t0, t.TraceRoute())
				p.pi.ProfAcquired(pt, true)
				return true
			}
			p.pi.Emit(lockcore.KindArriveFail, 0, 0)
			slow = true
			rNode = nil

		default:
			// Tail is a reader node: join it.
			t := tail.ind.ArriveLocal(p.id, p.pi.LC)
			if t.Arrived() {
				p.pi.Inc(lockcore.FOLLReadJoin)
				if rNode != nil {
					freeReaderNode(rNode) // allocated but never enqueued
				}
				blocked := tail.flag.Blocked()
				if p.pi.Tracing() && blocked {
					p.pi.Begin(lockcore.PhaseSpinWait)
				}
				if !tail.flag.WaitUntil(l.in.Wait, p.id, p.pi.TR, dl) {
					p.departAbandoned(tail, t)
					p.abandon(lockcore.PhaseSpinWait, dl)
					return false
				}
				p.departFrom = tail
				p.ticket = t
				p.pi.Acquired(lockcore.KindReadAcquired, t0, lockcore.RouteJoin)
				p.pi.ProfAcquired(pt, slow || blocked)
				return true
			}
			// Arrive failed: a writer closed the node after enqueuing
			// behind it, so the tail must have changed. Retry.
			p.pi.Emit(lockcore.KindArriveFail, 0, 0)
			slow = true
		}
	}
}

// RUnlock releases a read acquisition. If this thread is the last to
// depart a closed C-SNZI, it signals the writer that closed it and
// recycles the reader node.
func (p *Proc) RUnlock() {
	n := p.departFrom
	if n.ind.Depart(p.ticket) {
		p.pi.Released(lockcore.KindReadReleased)
		p.pi.ProfReleased()
		return
	}
	// Last departer: the closing writer linked itself before closing, so
	// qNext is set.
	p.pi.Emit(lockcore.KindIndDrain, 0, 0)
	succ := n.qNext.Load()
	p.l.grant(succ, p.id, p.pi.TR)
	n.qNext.Store(nil) // clean up before recycling
	freeReaderNode(n)
	p.pi.Inc(lockcore.FOLLNodeRecycle)
	p.pi.Emit(lockcore.KindHandoff, 0, lockcore.PackHandoff(1, true))
	p.pi.Released(lockcore.KindReadReleased)
	p.pi.ProfReleased()
}

// Lock acquires the lock for writing, exactly as in the MCS mutex except
// for the reader-node predecessor handling.
func (p *Proc) Lock() { p.lock(lockcore.Deadline{}) }

// lock is the write-acquisition core, shared by Lock (zero deadline)
// and the timed variants in deadline.go. It reports whether the lock
// was acquired.
func (p *Proc) lock(dl lockcore.Deadline) bool {
	l := p.l
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	w0 := l.in.SpanStart()
	w := p.wNode
	w.qNext.Store(nil)
	w.gstate.Store(gLive)
	oldTail := l.tail.Swap(w)
	if oldTail == nil {
		p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteRoot)
		p.pi.ProfAcquired(pt, false)
		l.in.SpanObserve(lockcore.FOLLWriteWait, p.id, w0)
		return true // free lock acquired
	}
	w.flag.Set(true)
	oldTail.qNext.Store(w)
	p.pi.Emit(lockcore.KindQueueEnqueue, 0, 1)
	if oldTail.kind == kindWriter {
		p.pi.BeginAt(t0, lockcore.PhaseQueueWait)
		if !w.flag.WaitUntil(l.in.Wait, p.id, p.pi.TR, dl) {
			return p.cancelWriteWait(dl, t0, pt, lockcore.PhaseQueueWait)
		}
		p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteDirect)
		p.pi.ProfAcquired(pt, true)
		l.in.SpanObserve(lockcore.FOLLWriteWait, p.id, w0)
		return true
	}
	// Reader predecessor. Its C-SNZI may not be open yet (the enqueuer
	// opens it just after the enqueue; see also node recycling): wait
	// until it is, then close it to stop further readers joining. This
	// wait is deliberately unbounded even on timed paths — the enqueuer
	// opens the indicator within a few instructions of the enqueue.
	p.pi.BeginAt(t0, lockcore.PhaseDrainWait)
	lockcore.WaitCond(l.in.Wait, p.id, p.pi.TR, func() bool {
		_, open := oldTail.ind.Query()
		return open
	})
	closedEmpty := oldTail.ind.Close()
	p.pi.Emit(lockcore.KindIndClose, 0, 0)
	if closedEmpty {
		// Closed empty: no readers will signal us. Wait for the
		// predecessor node's own grant and recycle it ourselves.
		if !oldTail.flag.WaitUntil(l.in.Wait, p.id, p.pi.TR, dl) {
			// Duty-phase abandonment: closing the predecessor committed
			// us to recycling it and to the write acquisition that
			// follows — neither can be unwound. Detach both onto a
			// reaper that finishes the protocol verbatim and releases.
			p.wNode = &Node{kind: kindWriter}
			go l.reapClosedEmpty(w, oldTail, p.id)
			p.abandon(lockcore.PhaseDrainWait, dl)
			return false
		}
		oldTail.qNext.Store(nil)
		freeReaderNode(oldTail)
		l.in.Inc(lockcore.FOLLNodeRecycle, p.id)
		p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteRoot)
		p.pi.ProfAcquired(pt, true)
		l.in.SpanObserve(lockcore.FOLLWriteWait, p.id, w0)
		return true
	}
	// Readers exist: the last departer will signal us.
	if !w.flag.WaitUntil(l.in.Wait, p.id, p.pi.TR, dl) {
		return p.cancelWriteWait(dl, t0, pt, lockcore.PhaseDrainWait)
	}
	p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteDirect)
	p.pi.ProfAcquired(pt, true)
	l.in.SpanObserve(lockcore.FOLLWriteWait, p.id, w0)
	return true
}

// Unlock releases a write acquisition.
func (p *Proc) Unlock() {
	l := p.l
	w := p.wNode
	if w.qNext.Load() == nil {
		if l.tail.CompareAndSwap(w, nil) {
			p.pi.Released(lockcore.KindWriteReleased)
			p.pi.ProfReleased()
			return
		}
		lockcore.WaitCond(l.in.Wait, p.id, p.pi.TR, func() bool { return w.qNext.Load() != nil })
	}
	succ := w.qNext.Load()
	l.grant(succ, p.id, p.pi.TR)
	w.qNext.Store(nil) // clean up
	p.pi.Emit(lockcore.KindHandoff, 0, lockcore.PackHandoff(1, succ.kind == kindWriter))
	p.pi.Released(lockcore.KindWriteReleased)
	p.pi.ProfReleased()
}

// unlockNode is the release protocol on an explicit node, for reapers
// releasing an acquisition whose proc already walked away (the proc's
// wNode was replaced, so p.Unlock no longer reaches the queued node).
func (l *RWLock) unlockNode(w *Node, id int, tr *lockcore.TraceLocal) {
	if w.qNext.Load() == nil {
		if l.tail.CompareAndSwap(w, nil) {
			return
		}
		lockcore.WaitCond(l.in.Wait, id, tr, func() bool { return w.qNext.Load() != nil })
	}
	succ := w.qNext.Load()
	l.grant(succ, id, tr)
	w.qNext.Store(nil)
}

// MaxProcs returns the ring size (diagnostic).
func (l *RWLock) MaxProcs() int { return len(l.ring) }

// DumpLockState renders the live queue for the trace watchdog: the tail
// node plus every in-use ring node. All fields involved are atomics (or
// immutable), so the racy read is safe, merely advisory.
func (l *RWLock) DumpLockState(w io.Writer) {
	tail := l.tail.Load()
	if tail == nil {
		fmt.Fprintf(w, "foll: queue empty (lock free)\n")
		return
	}
	fmt.Fprintf(w, "foll: tail node: %s\n", l.describeNode(tail))
	for i := range l.ring {
		n := &l.ring[i]
		if n.allocState.Load() == allocInUse && n != tail {
			fmt.Fprintf(w, "foll: ring node %d: %s\n", i, l.describeNode(n))
		}
	}
}

func (l *RWLock) describeNode(n *Node) string {
	if n.kind == kindWriter {
		return fmt.Sprintf("writer spin=%v", n.flag.Blocked())
	}
	return fmt.Sprintf("reader spin=%v ind=%s", n.flag.Blocked(), rind.Describe(n.ind))
}
