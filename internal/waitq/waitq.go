// Package waitq implements the mutex-protected queue of waiting threads
// used by the GOLL and Solaris-like reader-writer locks. It is the
// user-space analogue of the Solaris turnstile: threads enqueue
// themselves (with their read/write intention and a priority), block on
// a spin-based waiter object, and are dequeued in hand-off batches — a
// single writer, or a group of readers that may all hold the lock
// simultaneously.
//
// The queue itself is not thread-safe: the owning lock serializes all
// queue operations under its "metalock" (queue mutex), exactly as in the
// paper's Figure 3. What this package provides is the ordering policy:
// which waiter(s) a releasing thread hands the lock to.
package waitq

import (
	"ollock/internal/park"
	"ollock/internal/spin"
	"ollock/internal/trace"
)

// Kind is a waiting thread's intention.
type Kind int

// Waiter intentions.
const (
	Reader Kind = iota
	Writer
)

func (k Kind) String() string {
	if k == Reader {
		return "reader"
	}
	return "writer"
}

// Entry is one waiting thread. After Enqueue returns an Entry, the
// enqueuing thread calls Wait (outside the queue mutex); the thread that
// dequeues it calls Signal via the returned Batch.
type Entry struct {
	kind       Kind
	priority   int
	w          spin.Waiter
	prev, next *Entry
	q          *Queue
	linked     bool
}

// Wait blocks the calling thread until the entry is signaled by a
// hand-off.
func (e *Entry) Wait() { e.w.Wait() }

// WaitWith is Wait under a wait policy: the blocked thread descends the
// policy's spin→yield→park ladder (or moves onto its waiting-array
// slot) instead of spinning unconditionally. id is the caller's proc id
// and tr (nil ok) receives park/unpark trace events.
func (e *Entry) WaitWith(pol *park.Policy, id int, tr *trace.Local) {
	e.w.WaitWith(pol, id, tr)
}

// WaitUntil is WaitWith with a bound: true once the entry is signaled
// by a hand-off, false if dl expired first. After a false return the
// entry may still be dequeued and signaled by a concurrent releaser —
// the canceling thread must take the queue mutex and consult Cancel to
// learn which side won.
func (e *Entry) WaitUntil(pol *park.Policy, id int, tr *trace.Local, dl park.Deadline) bool {
	return e.w.WaitUntil(pol, id, tr, dl)
}

// Kind returns the entry's intention.
func (e *Entry) Kind() Kind { return e.kind }

// Queue is an ordered list of waiting threads with reader/writer
// batching. The zero value is an empty queue. All methods require
// external synchronization.
type Queue struct {
	head, tail *Entry
	numWriters int
	numReaders int
}

// Enqueue appends a waiter of the given kind and priority and returns
// its entry. Higher priority values are preferred by hand-off; equal
// priorities keep FIFO order.
func (q *Queue) Enqueue(kind Kind, priority int) *Entry {
	e := &Entry{kind: kind, priority: priority, q: q}
	if q.tail == nil {
		q.head, q.tail = e, e
	} else {
		e.prev = q.tail
		q.tail.next = e
		q.tail = e
	}
	if kind == Writer {
		q.numWriters++
	} else {
		q.numReaders++
	}
	e.linked = true
	return e
}

// Cancel unlinks e if it is still queued, reporting whether it did.
// Like every Queue method it requires the owning lock's mutex — that
// serialization is what makes the return value decisive: true means no
// hand-off will ever signal e (the canceling thread owns the
// abandonment); false means a releaser already dequeued e into a batch
// and a signal is coming (the canceling thread must wait it out and
// then give the acquisition back).
func (q *Queue) Cancel(e *Entry) bool {
	if !e.linked {
		return false
	}
	q.remove(e)
	return true
}

// Len returns the number of waiting threads.
func (q *Queue) Len() int { return q.numWriters + q.numReaders }

// NumWriters returns the number of waiting writers. The GOLL lock uses
// it to decide whether a reader hand-off must leave the C-SNZI closed.
func (q *Queue) NumWriters() int { return q.numWriters }

// NumReaders returns the number of waiting readers.
func (q *Queue) NumReaders() int { return q.numReaders }

// Empty reports whether no threads are waiting.
func (q *Queue) Empty() bool { return q.head == nil }

// remove unlinks e from the queue.
func (q *Queue) remove(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		q.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		q.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
	if e.kind == Writer {
		q.numWriters--
	} else {
		q.numReaders--
	}
}

// Batch is the set of threads a releasing thread hands the lock to:
// either exactly one writer, or one or more readers.
type Batch struct {
	Kind    Kind
	entries []*Entry
}

// Count returns the number of threads in the batch (the OpenWithArrivals
// count for a reader batch).
func (b *Batch) Count() int { return len(b.entries) }

// Signal wakes every thread in the batch. Call it after releasing the
// queue mutex, as the paper's pseudocode does.
func (b *Batch) Signal() {
	for _, e := range b.entries {
		e.w.Signal()
	}
}

// SignalWith is Signal under a wait policy: each grant additionally
// wakes a parked waiter or bumps its waiting-array slot. The wake hint
// lives in the waiter itself, so entries that never left the spin phase
// still cost one store each.
func (b *Batch) SignalWith(pol *park.Policy) {
	for _, e := range b.entries {
		e.w.SignalWith(pol)
	}
}

// DequeueHandoff removes and returns the batch that a releasing thread
// of the given kind hands the lock to, or nil if the queue is empty.
//
// The policy is the one the paper uses for the GOLL lock (§5.1), which
// is the Solaris policy: readers hand the lock over to writers, and
// writers hand the lock over to readers — unless a higher-priority
// writer is waiting.
//
//   - releaser == Reader: pick the best (highest-priority, FIFO among
//     equals) waiting writer; if no writer waits, batch all waiting
//     readers.
//   - releaser == Writer: batch all waiting readers, unless some waiting
//     writer has strictly higher priority than every waiting reader, in
//     which case pick that writer; if no reader waits, pick the best
//     writer.
func (q *Queue) DequeueHandoff(releaser Kind) *Batch {
	if q.head == nil {
		return nil
	}
	bestW := q.bestWriter()
	switch releaser {
	case Reader:
		if bestW != nil {
			q.remove(bestW)
			return &Batch{Kind: Writer, entries: []*Entry{bestW}}
		}
		return q.takeAllReaders()
	default: // Writer
		if q.numReaders == 0 {
			q.remove(bestW)
			return &Batch{Kind: Writer, entries: []*Entry{bestW}}
		}
		if bestW != nil && bestW.priority > q.maxReaderPriority() {
			q.remove(bestW)
			return &Batch{Kind: Writer, entries: []*Entry{bestW}}
		}
		return q.takeAllReaders()
	}
}

// DequeueFIFO removes and returns the head batch with strict queue-order
// fairness: the head entry, plus (if it is a reader) all consecutive
// readers behind it. Used by locks that want queue order rather than the
// Solaris alternation policy.
func (q *Queue) DequeueFIFO() *Batch {
	if q.head == nil {
		return nil
	}
	if q.head.kind == Writer {
		w := q.head
		q.remove(w)
		return &Batch{Kind: Writer, entries: []*Entry{w}}
	}
	var entries []*Entry
	for q.head != nil && q.head.kind == Reader {
		e := q.head
		q.remove(e)
		entries = append(entries, e)
	}
	return &Batch{Kind: Reader, entries: entries}
}

func (q *Queue) bestWriter() *Entry {
	var best *Entry
	for e := q.head; e != nil; e = e.next {
		if e.kind == Writer && (best == nil || e.priority > best.priority) {
			best = e
		}
	}
	return best
}

func (q *Queue) maxReaderPriority() int {
	max := int(^uint(0) >> 1) // start at -inf
	max = -max - 1
	for e := q.head; e != nil; e = e.next {
		if e.kind == Reader && e.priority > max {
			max = e.priority
		}
	}
	return max
}

// TakeReaders removes every waiting reader and returns them as one
// (possibly empty) batch. Used by lock downgrade, which admits all
// waiting readers alongside the downgrading writer.
func (q *Queue) TakeReaders() *Batch {
	return q.takeAllReaders()
}

// takeAllReaders removes every waiting reader (regardless of position:
// the Solaris hand-off wakes all readers, letting them overtake queued
// writers) and returns them as one batch.
func (q *Queue) takeAllReaders() *Batch {
	var entries []*Entry
	e := q.head
	for e != nil {
		next := e.next
		if e.kind == Reader {
			q.remove(e)
			entries = append(entries, e)
		}
		e = next
	}
	return &Batch{Kind: Reader, entries: entries}
}

// EntryInfo describes one waiting thread for diagnostics.
type EntryInfo struct {
	Kind     Kind
	Priority int
}

// Entries returns the waiting threads in queue order. Like every Queue
// method it requires the owning lock's mutex; the trace watchdog takes
// it before dumping the queue chain.
func (q *Queue) Entries() []EntryInfo {
	var out []EntryInfo
	for e := q.head; e != nil; e = e.next {
		out = append(out, EntryInfo{Kind: e.kind, Priority: e.priority})
	}
	return out
}
