package waitq

import (
	"testing"
)

func kinds(q *Queue) (readers, writers int) {
	return q.NumReaders(), q.NumWriters()
}

func TestEnqueueCounts(t *testing.T) {
	var q Queue
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("zero queue not empty")
	}
	q.Enqueue(Reader, 0)
	q.Enqueue(Writer, 0)
	q.Enqueue(Reader, 0)
	r, w := kinds(&q)
	if r != 2 || w != 1 || q.Len() != 3 || q.Empty() {
		t.Fatalf("counts = (%d readers, %d writers, len %d)", r, w, q.Len())
	}
}

func TestDequeueHandoffEmpty(t *testing.T) {
	var q Queue
	if q.DequeueHandoff(Reader) != nil || q.DequeueHandoff(Writer) != nil {
		t.Fatal("dequeue from empty queue must return nil")
	}
}

func TestReaderReleasePrefersWriter(t *testing.T) {
	var q Queue
	q.Enqueue(Reader, 0)
	q.Enqueue(Writer, 0)
	q.Enqueue(Reader, 0)
	b := q.DequeueHandoff(Reader)
	if b.Kind != Writer || b.Count() != 1 {
		t.Fatalf("batch = (%v, %d), want single writer", b.Kind, b.Count())
	}
	if r, w := kinds(&q); r != 2 || w != 0 {
		t.Fatalf("after dequeue counts = (%d,%d), want (2,0)", r, w)
	}
}

func TestReaderReleaseNoWriterBatchesAllReaders(t *testing.T) {
	var q Queue
	q.Enqueue(Reader, 0)
	q.Enqueue(Reader, 0)
	q.Enqueue(Reader, 0)
	b := q.DequeueHandoff(Reader)
	if b.Kind != Reader || b.Count() != 3 {
		t.Fatalf("batch = (%v, %d), want 3 readers", b.Kind, b.Count())
	}
	if !q.Empty() {
		t.Fatal("queue not drained")
	}
}

func TestWriterReleasePrefersReaders(t *testing.T) {
	var q Queue
	q.Enqueue(Writer, 0)
	q.Enqueue(Reader, 0)
	q.Enqueue(Reader, 0)
	b := q.DequeueHandoff(Writer)
	if b.Kind != Reader || b.Count() != 2 {
		t.Fatalf("batch = (%v, %d), want 2 readers", b.Kind, b.Count())
	}
	if r, w := kinds(&q); r != 0 || w != 1 {
		t.Fatalf("counts = (%d,%d), want (0,1): writer must remain", r, w)
	}
}

func TestWriterReleaseNoReadersPicksWriterFIFO(t *testing.T) {
	var q Queue
	e1 := q.Enqueue(Writer, 0)
	q.Enqueue(Writer, 0)
	b := q.DequeueHandoff(Writer)
	if b.Kind != Writer || b.Count() != 1 || b.entries[0] != e1 {
		t.Fatal("expected the first-enqueued writer")
	}
}

func TestHighPriorityWriterBeatsReaders(t *testing.T) {
	var q Queue
	q.Enqueue(Reader, 0)
	hi := q.Enqueue(Writer, 10)
	q.Enqueue(Reader, 0)
	b := q.DequeueHandoff(Writer)
	if b.Kind != Writer || b.entries[0] != hi {
		t.Fatal("high-priority writer not preferred over readers")
	}
	if r, w := kinds(&q); r != 2 || w != 0 {
		t.Fatalf("counts = (%d,%d), want (2,0)", r, w)
	}
}

func TestEqualPriorityWriterDoesNotBeatReaders(t *testing.T) {
	var q Queue
	q.Enqueue(Writer, 5)
	q.Enqueue(Reader, 5)
	b := q.DequeueHandoff(Writer)
	if b.Kind != Reader {
		t.Fatal("equal-priority writer must not overtake readers on writer release")
	}
}

func TestReaderReleasePicksHighestPriorityWriter(t *testing.T) {
	var q Queue
	q.Enqueue(Writer, 1)
	hi := q.Enqueue(Writer, 7)
	q.Enqueue(Writer, 3)
	b := q.DequeueHandoff(Reader)
	if b.entries[0] != hi {
		t.Fatal("highest-priority writer not selected")
	}
}

func TestReaderBatchSkipsInterveningWriters(t *testing.T) {
	// Solaris hand-off wakes ALL waiting readers even when writers sit
	// between them in queue order.
	var q Queue
	q.Enqueue(Reader, 0)
	q.Enqueue(Writer, 0)
	q.Enqueue(Reader, 0)
	q.Enqueue(Writer, 0)
	q.Enqueue(Reader, 0)
	b := q.DequeueHandoff(Writer)
	if b.Kind != Reader || b.Count() != 3 {
		t.Fatalf("batch = (%v,%d), want all 3 readers", b.Kind, b.Count())
	}
	if r, w := kinds(&q); r != 0 || w != 2 {
		t.Fatalf("counts = (%d,%d), want (0,2)", r, w)
	}
}

func TestDequeueFIFOWriterHead(t *testing.T) {
	var q Queue
	w1 := q.Enqueue(Writer, 0)
	q.Enqueue(Reader, 0)
	b := q.DequeueFIFO()
	if b.Kind != Writer || b.entries[0] != w1 {
		t.Fatal("FIFO dequeue must return head writer")
	}
}

func TestDequeueFIFOReaderRun(t *testing.T) {
	var q Queue
	q.Enqueue(Reader, 0)
	q.Enqueue(Reader, 0)
	q.Enqueue(Writer, 0)
	q.Enqueue(Reader, 0)
	b := q.DequeueFIFO()
	if b.Kind != Reader || b.Count() != 2 {
		t.Fatalf("batch = (%v,%d), want the 2-reader head run", b.Kind, b.Count())
	}
	if r, w := kinds(&q); r != 1 || w != 1 {
		t.Fatalf("counts = (%d,%d), want (1,1)", r, w)
	}
	b2 := q.DequeueFIFO()
	if b2.Kind != Writer {
		t.Fatal("second FIFO dequeue must be the writer")
	}
	b3 := q.DequeueFIFO()
	if b3.Kind != Reader || b3.Count() != 1 {
		t.Fatal("third FIFO dequeue must be the trailing reader")
	}
	if q.DequeueFIFO() != nil {
		t.Fatal("empty queue must dequeue nil")
	}
}

func TestSignalWakesAll(t *testing.T) {
	var q Queue
	e1 := q.Enqueue(Reader, 0)
	e2 := q.Enqueue(Reader, 0)
	b := q.DequeueHandoff(Writer)
	done := make(chan int, 2)
	go func() { e1.Wait(); done <- 1 }()
	go func() { e2.Wait(); done <- 2 }()
	b.Signal()
	<-done
	<-done
}

func TestEntryKind(t *testing.T) {
	var q Queue
	if q.Enqueue(Reader, 0).Kind() != Reader || q.Enqueue(Writer, 0).Kind() != Writer {
		t.Fatal("Kind accessor wrong")
	}
	if Reader.String() != "reader" || Writer.String() != "writer" {
		t.Fatal("String() wrong")
	}
}

func TestRemoveMiddleLinksIntact(t *testing.T) {
	var q Queue
	q.Enqueue(Reader, 0)
	w := q.Enqueue(Writer, 0)
	q.Enqueue(Reader, 0)
	_ = w
	// Remove the middle writer via a reader-release handoff.
	b := q.DequeueHandoff(Reader)
	if b.Kind != Writer {
		t.Fatal("want writer")
	}
	// Remaining two readers must come out as one batch.
	b2 := q.DequeueHandoff(Reader)
	if b2.Kind != Reader || b2.Count() != 2 {
		t.Fatalf("batch = (%v,%d), want 2 readers", b2.Kind, b2.Count())
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}
