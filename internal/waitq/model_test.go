package waitq

import (
	"testing"
	"testing/quick"

	"ollock/internal/xrand"
)

// modelEntry mirrors one queued waiter in the reference model.
type modelEntry struct {
	writer   bool
	priority int
	id       int
}

// model is a straightforward reimplementation of the hand-off policy
// used as the oracle for property testing: a slice, linear scans, no
// cleverness.
type model struct {
	entries []modelEntry
	nextID  int
}

func (m *model) enqueue(writer bool, priority int) int {
	id := m.nextID
	m.nextID++
	m.entries = append(m.entries, modelEntry{writer: writer, priority: priority, id: id})
	return id
}

func (m *model) counts() (readers, writers int) {
	for _, e := range m.entries {
		if e.writer {
			writers++
		} else {
			readers++
		}
	}
	return
}

func (m *model) bestWriter() (int, bool) {
	best, found := -1, false
	for i, e := range m.entries {
		if e.writer && (!found || e.priority > m.entries[best].priority) {
			best, found = i, true
		}
	}
	return best, found
}

func (m *model) takeAt(i int) modelEntry {
	e := m.entries[i]
	m.entries = append(m.entries[:i:i], m.entries[i+1:]...)
	return e
}

func (m *model) takeReaders() []modelEntry {
	var readers, rest []modelEntry
	for _, e := range m.entries {
		if e.writer {
			rest = append(rest, e)
		} else {
			readers = append(readers, e)
		}
	}
	m.entries = rest
	return readers
}

// dequeueHandoff mirrors Queue.DequeueHandoff.
func (m *model) dequeueHandoff(releaserWriter bool) (writerBatch bool, ids []int) {
	if len(m.entries) == 0 {
		return false, nil
	}
	wi, hasW := m.bestWriter()
	if !releaserWriter {
		if hasW {
			return true, []int{m.takeAt(wi).id}
		}
		for _, e := range m.takeReaders() {
			ids = append(ids, e.id)
		}
		return false, ids
	}
	readers, _ := m.counts()
	if readers == 0 {
		return true, []int{m.takeAt(wi).id}
	}
	if hasW {
		maxR := -1 << 62
		for _, e := range m.entries {
			if !e.writer && e.priority > maxR {
				maxR = e.priority
			}
		}
		if m.entries[wi].priority > maxR {
			return true, []int{m.takeAt(wi).id}
		}
	}
	for _, e := range m.takeReaders() {
		ids = append(ids, e.id)
	}
	return false, ids
}

// TestDequeueMatchesModel drives random operation sequences through the
// real queue and the oracle, requiring identical batches (kind, size,
// and identity order for writers; set equality in FIFO order for reader
// groups, which both produce).
func TestDequeueMatchesModel(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		var q Queue
		var m model
		ids := map[*Entry]int{}
		for op := 0; op < 300; op++ {
			switch r.Intn(3) {
			case 0: // enqueue
				writer := r.Bool(0.4)
				prio := r.Intn(4)
				e := q.Enqueue(kindOf(writer), prio)
				ids[e] = m.enqueue(writer, prio)
			default: // dequeue as reader or writer releaser
				releaserWriter := r.Bool(0.5)
				b := q.DequeueHandoff(kindOf(releaserWriter))
				wantWriter, wantIDs := m.dequeueHandoff(releaserWriter)
				if b == nil {
					if wantIDs != nil {
						t.Logf("seed %d op %d: real empty, model %v", seed, op, wantIDs)
						return false
					}
					continue
				}
				if (b.Kind == Writer) != wantWriter || b.Count() != len(wantIDs) {
					t.Logf("seed %d op %d: batch (%v,%d) vs model (%v,%d)",
						seed, op, b.Kind, b.Count(), wantWriter, len(wantIDs))
					return false
				}
				for i, e := range b.entries {
					if ids[e] != wantIDs[i] {
						t.Logf("seed %d op %d: batch ids diverge at %d: %d vs %d",
							seed, op, i, ids[e], wantIDs[i])
						return false
					}
				}
			}
			// Counts must always agree.
			mr, mw := m.counts()
			if q.NumReaders() != mr || q.NumWriters() != mw || q.Len() != mr+mw {
				t.Logf("seed %d op %d: counts (%d,%d) vs model (%d,%d)",
					seed, op, q.NumReaders(), q.NumWriters(), mr, mw)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func kindOf(writer bool) Kind {
	if writer {
		return Writer
	}
	return Reader
}

// TestFIFOMatchesModel checks DequeueFIFO against a simple list oracle.
func TestFIFOMatchesModel(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		var q Queue
		var list []modelEntry
		nextID := 0
		ids := map[*Entry]int{}
		for op := 0; op < 200; op++ {
			if r.Bool(0.55) {
				writer := r.Bool(0.4)
				e := q.Enqueue(kindOf(writer), 0)
				ids[e] = nextID
				list = append(list, modelEntry{writer: writer, id: nextID})
				nextID++
			} else {
				b := q.DequeueFIFO()
				if len(list) == 0 {
					if b != nil {
						return false
					}
					continue
				}
				var want []modelEntry
				if list[0].writer {
					want, list = list[:1], list[1:]
				} else {
					i := 0
					for i < len(list) && !list[i].writer {
						i++
					}
					want, list = list[:i], list[i:]
				}
				if b.Count() != len(want) {
					return false
				}
				for i, e := range b.entries {
					if ids[e] != want[i].id {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
