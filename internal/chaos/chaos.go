// Package chaos is a deterministic-schedule fault injector for the
// lock stack: it widens the race windows at the protocols' linearization
// points (indicator close/drain, queue enqueue, hand-off, park) by
// injecting randomized delays, yields and micro-sleeps drawn from a
// seeded pseudo-random schedule.
//
// The injector rides the lockcore.Instr seam: every instrumentation
// emit site in the algorithms marks a protocol step, so perturbing
// exactly there shakes the interleavings a torture run explores without
// adding a single new hook to the lock code. A lock built without
// chaos carries a nil *Proc and pays one predictable branch.
//
// Determinism is per proc: each Proc derives its own xorshift stream
// from the injector seed and the proc id (splitmix64 mixing), so the
// *decisions* a given goroutine's handle makes are a pure function of
// (seed, id, call index). The schedule the OS produces still varies —
// the point is that a failing seed biases the same windows again on
// the next run, not that wall-clock interleavings replay exactly; the
// hand-steppable replays live in the sim mirror.
//
// The package deliberately avoids math/rand: the generator must be
// allocation-free, seedable per proc, and stable across Go releases so
// a chaos seed recorded in a CI failure keeps meaning the same
// schedule.
package chaos

import (
	"runtime"
	"sync/atomic"
	"time"

	"ollock/internal/atomicx"
)

// Injector is one torture run's fault source. Create with New; hand
// each lock-stack goroutine its own Proc.
type Injector struct {
	seed  uint64
	count atomic.Uint64
}

// New returns an injector drawing every schedule from seed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed}
}

// Seed returns the injector's seed (for failure reports: re-running
// with the same seed re-biases the same windows).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Count returns the total number of perturbations injected so far,
// across all procs.
func (in *Injector) Count() uint64 {
	if in == nil {
		return 0
	}
	return in.count.Load()
}

// splitmix64 is the standard seed-mixing finalizer; it turns
// (seed, id) into a well-distributed xorshift starting state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewProc returns the per-goroutine fault stream for proc id. A nil
// injector returns a nil Proc (chaos off), on which Perturb is a
// nil-check and nothing else.
func (in *Injector) NewProc(id int) *Proc {
	if in == nil {
		return nil
	}
	s := splitmix64(in.seed ^ splitmix64(uint64(int64(id))))
	if s == 0 {
		s = 0x9e3779b97f4a7c15 // xorshift must not start at zero
	}
	return &Proc{rng: s, inj: in}
}

// Proc is one goroutine's fault stream. Not safe for concurrent use —
// exactly like the obs.Local / trace.Local views it rides alongside.
type Proc struct {
	rng uint64
	inj *Injector
}

// Perturb draws the next schedule decision and maybe delays the
// caller: usually nothing, else a short bounded spin, a scheduler
// yield, or (rarely) a microsecond-scale sleep — the three delay
// shapes that respectively stretch a race window within a quantum,
// force a reschedule at the window, and simulate a preempted-
// mid-protocol thread. Nil-safe.
func (p *Proc) Perturb() {
	if p == nil {
		return
	}
	x := p.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rng = x
	if x&3 != 0 {
		return // 3 in 4 draws: no perturbation
	}
	p.inj.count.Add(1)
	switch draw := (x >> 2) & 31; {
	case draw < 20:
		for i := uint64(0); i < (x>>7)&63; i++ {
			atomicx.ProcYield()
		}
	case draw < 31:
		runtime.Gosched()
	default:
		time.Sleep(time.Duration(1+(x>>7)&15) * time.Microsecond)
	}
}
