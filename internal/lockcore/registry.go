package lockcore

// Caps declares what a lock kind can do — the capability matrix the
// facade's option validation, the tool layer's flag enumeration, and
// the capability-matrix tests all read. A false field means the facade
// rejects the corresponding option with a uniform error rather than
// silently ignoring it.
type Caps struct {
	// Indicator: the kind accepts a non-default read indicator
	// (WithIndicator; the OLL locks and their biased wrappers).
	Indicator bool
	// Wait: the kind accepts a non-default wait policy (WithWait).
	Wait bool
	// Upgrade: the kind's Procs implement TryUpgrade/Downgrade (the
	// Upgrader interface). Note the BRAVO-wrapped kinds lose this — the
	// wrapper's Proc does not forward upgrades.
	Upgrade bool
	// Priority: the kind's Procs implement SetPriority.
	Priority bool
	// BoundedProcs: the kind is sized by maxProcs (NewProc panics
	// beyond it), so construction requires maxProcs > 0.
	BoundedProcs bool
	// Instrumented: the kind carries obs counters (Scopes below);
	// SnapshotOf works on locks of this kind built with stats on.
	Instrumented bool
	// Profiled: the kind's acquire/release paths carry call-site
	// profiler hooks (WithProfile; the OLL locks and their biased
	// wrappers).
	Profiled bool
	// Cancellable: the kind's Procs implement timed/cancellable
	// acquisition (RLockFor/LockFor and RLockCtx/LockCtx — the
	// DeadlineProc interface) with safe abandonment.
	Cancellable bool
}

// KindDesc describes one lock kind: the single source from which the
// facade's Kinds/New/statScopes, the cmd tools' kind enumeration, and
// the simulator's and locksuite's lock tables are generated.
// Constructors are registered next to each consumer (the facade builds
// real locks, simlock builds simulated ones) in tables keyed by Name;
// a sync test asserts the tables and this registry agree.
type KindDesc struct {
	// Name is the kind's wire name (ollock.Kind value, sim table name,
	// cmd flag value).
	Name string
	// Doc is a one-line description for help text.
	Doc string
	// Caps is the kind's capability matrix.
	Caps Caps
	// Scopes is the obs scope set an instrumented lock of this kind
	// reports (before the bias/park scopes options add on top).
	Scopes []string
	// ForceBias marks the pre-biased wrapper kinds (bravo-*): New wraps
	// the BiasBase kind with the BRAVO fast path unconditionally.
	ForceBias bool
	// BiasBase is the kind a ForceBias kind wraps.
	BiasBase string
	// Figure5 marks the five locks of the paper's Figure 5, in registry
	// order (the benchfig5 default set).
	Figure5 bool
	// IndicatorMatrix marks the kinds whose sim/suite tables also carry
	// -central/-sharded read-indicator variants.
	IndicatorMatrix bool
}

// MatrixIndicators lists the non-default read-indicator variants the
// IndicatorMatrix kinds are tabled with (the default C-SNZI is covered
// by the plain entries).
func MatrixIndicators() []string { return []string{"central", "sharded"} }

// descs is the kind registry, in the canonical enumeration order
// (Kinds(), the sim lock table, and every cmd tool's help text follow
// it): the three OLL locks, the prior-work baselines, then the
// pre-biased wrappers.
var descs = []KindDesc{
	{
		Name: "goll", Doc: "general OLL lock (§3): wait queue, priorities, upgrade/downgrade",
		Caps:    Caps{Indicator: true, Wait: true, Upgrade: true, Priority: true, Instrumented: true, Profiled: true, Cancellable: true},
		Scopes:  []string{"csnzi", "goll"},
		Figure5: true, IndicatorMatrix: true,
	},
	{
		Name: "foll", Doc: "FIFO distributed-queue OLL lock (§4.2)",
		Caps:    Caps{Indicator: true, Wait: true, BoundedProcs: true, Instrumented: true, Profiled: true, Cancellable: true},
		Scopes:  []string{"csnzi", "foll"},
		Figure5: true, IndicatorMatrix: true,
	},
	{
		Name: "roll", Doc: "reader-preference distributed-queue OLL lock (§4.3)",
		Caps:    Caps{Indicator: true, Wait: true, BoundedProcs: true, Instrumented: true, Profiled: true, Cancellable: true},
		Scopes:  []string{"csnzi", "roll"},
		Figure5: true, IndicatorMatrix: true,
	},
	{
		Name: "ksuh", Doc: "Krieger–Stumm–Unrau–Hanna fair baseline (ICPP '93)",
		Figure5: true,
	},
	{
		Name: "mcs-rw", Doc: "Mellor-Crummey & Scott fair reader-writer baseline (PPoPP '91)",
	},
	{
		Name: "solaris", Doc: "user-space Solaris kernel lock baseline",
		Figure5: true,
	},
	{
		Name: "hsieh", Doc: "Hsieh–Weihl private-mutex baseline (IPPS '92)",
		Caps: Caps{BoundedProcs: true},
	},
	{
		Name: "central", Doc: "naive centralized counter+flag baseline",
		Caps: Caps{Wait: true, Cancellable: true},
	},
	{
		Name: "bravo-goll", Doc: "GOLL under the BRAVO biased reader fast path",
		Caps:      Caps{Indicator: true, Wait: true, Instrumented: true, Profiled: true, Cancellable: true},
		Scopes:    []string{"csnzi", "goll"},
		ForceBias: true, BiasBase: "goll",
	},
	{
		Name: "bravo-roll", Doc: "ROLL under the BRAVO biased reader fast path",
		Caps:      Caps{Indicator: true, Wait: true, BoundedProcs: true, Instrumented: true, Profiled: true, Cancellable: true},
		Scopes:    []string{"csnzi", "roll"},
		ForceBias: true, BiasBase: "roll",
	},
}

// Descs returns the kind registry in canonical order. The slice is
// freshly allocated; callers may reorder or filter it.
func Descs() []KindDesc {
	out := make([]KindDesc, len(descs))
	copy(out, descs)
	return out
}

// DescOf returns the descriptor for a kind name.
func DescOf(name string) (KindDesc, bool) {
	for _, d := range descs {
		if d.Name == name {
			return d, true
		}
	}
	return KindDesc{}, false
}
