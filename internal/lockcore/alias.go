// Re-exports of the obs/trace/park surface the algorithm packages use.
// goll, foll, roll, bravo, and central import only lockcore (a layering
// rule enforced by a test in the module root); everything they need
// from the instrumentation substrate is aliased here, so adding an
// event or phase for a new lock kind means extending this file, not
// threading a new import through five packages.
package lockcore

import (
	"context"
	"time"

	"ollock/internal/obs"
	"ollock/internal/park"
	"ollock/internal/trace"
)

// Event is an obs counter identity (see internal/obs for the glossary).
type Event = obs.Event

// HistID is an obs histogram identity.
type HistID = obs.HistID

// Counter events the algorithm packages emit.
const (
	GOLLHandoff        = obs.GOLLHandoff
	GOLLUpgradeAttempt = obs.GOLLUpgradeAttempt
	GOLLUpgradeFail    = obs.GOLLUpgradeFail
	GOLLDowngrade      = obs.GOLLDowngrade
	GOLLTimeout        = obs.GOLLTimeout
	GOLLCancel         = obs.GOLLCancel

	FOLLReadJoin    = obs.FOLLReadJoin
	FOLLReadEnqueue = obs.FOLLReadEnqueue
	FOLLNodeRecycle = obs.FOLLNodeRecycle
	FOLLTimeout     = obs.FOLLTimeout
	FOLLCancel      = obs.FOLLCancel

	ROLLReadJoin    = obs.ROLLReadJoin
	ROLLReadEnqueue = obs.ROLLReadEnqueue
	ROLLNodeRecycle = obs.ROLLNodeRecycle
	ROLLOvertake    = obs.ROLLOvertake
	ROLLHintHit     = obs.ROLLHintHit
	ROLLHintMiss    = obs.ROLLHintMiss
	ROLLTimeout     = obs.ROLLTimeout
	ROLLCancel      = obs.ROLLCancel

	BravoFastRead      = obs.BravoFastRead
	BravoSlowRead      = obs.BravoSlowRead
	BravoBiasArm       = obs.BravoBiasArm
	BravoRevoke        = obs.BravoRevoke
	BravoSlotCollision = obs.BravoSlotCollision
	BravoRevokeAbort   = obs.BravoRevokeAbort
)

// Histograms the algorithm packages sample.
const (
	GOLLWriteWait  = obs.GOLLWriteWait
	FOLLWriteWait  = obs.FOLLWriteWait
	ROLLWriteWait  = obs.ROLLWriteWait
	BravoDrainWait = obs.BravoDrainWait
)

// Kind is a trace event kind; Phase a timeline span label; Route an
// arrival route (see internal/trace).
type (
	TraceKind = trace.Kind
	Phase     = trace.Phase
	Route     = trace.Route
)

// Trace kinds the algorithm packages emit.
const (
	KindReadAcquired  = trace.KindReadAcquired
	KindReadReleased  = trace.KindReadReleased
	KindWriteAcquired = trace.KindWriteAcquired
	KindWriteReleased = trace.KindWriteReleased

	KindArriveFail   = trace.KindArriveFail
	KindQueueEnqueue = trace.KindQueueEnqueue
	KindGroupEnqueue = trace.KindGroupEnqueue
	KindOvertake     = trace.KindOvertake
	KindHintHit      = trace.KindHintHit
	KindHintMiss     = trace.KindHintMiss

	KindIndClose = trace.KindIndClose
	KindIndOpen  = trace.KindIndOpen
	KindIndDrain = trace.KindIndDrain

	KindHandoff = trace.KindHandoff

	KindBravoRecheckFail = trace.KindBravoRecheckFail
	KindBravoRevoke      = trace.KindBravoRevoke

	KindCancel = trace.KindCancel
)

// Phases the algorithm packages open and close.
const (
	PhaseArrive    = trace.PhaseArrive
	PhaseQueueWait = trace.PhaseQueueWait
	PhaseSpinWait  = trace.PhaseSpinWait
	PhaseDrainWait = trace.PhaseDrainWait
	PhaseRevoke    = trace.PhaseRevoke
)

// Routes the algorithm packages report.
const (
	RouteRoot      = trace.RouteRoot
	RouteTree      = trace.RouteTree
	RouteDirect    = trace.RouteDirect
	RouteJoin      = trace.RouteJoin
	RouteBravoFast = trace.RouteBravoFast
)

// PackHandoff packs a hand-off batch size and kind into a KindHandoff
// event's Arg word.
func PackHandoff(count int, writer bool) uint64 { return trace.PackHandoff(count, writer) }

// StateDumper is implemented by locks that can render their live state
// for watchdog post-mortems.
type StateDumper = trace.StateDumper

// TraceLocal is a proc's flight-recorder ring (ProcInstr.TR). The alias
// exists for signatures that thread the ring through helpers.
type TraceLocal = trace.Local

// Policy is a waiting policy (see internal/park); nil means pure
// spinning. Flag is a policy-aware grant flag for queue nodes.
type (
	Policy = park.Policy
	Flag   = park.Flag
)

// WaitCond waits (via the policy's ladder) until cond reports true.
func WaitCond(pol *Policy, id int, tr *TraceLocal, cond func() bool) {
	park.WaitCond(pol, id, tr, cond)
}

// WaitCondUntil is WaitCond with a bound: true once cond holds, false
// if dl expired first.
func WaitCondUntil(pol *Policy, id int, tr *TraceLocal, cond func() bool, dl Deadline) bool {
	return park.WaitCondUntil(pol, id, tr, cond, dl)
}

// Deadline is the bound on one timed acquisition — an absolute expiry
// time, a context, both, or neither. The zero value means "no bound"
// and routes every wait to the untimed code paths, which is how the
// plain RLock/Lock entry points share their slow paths with the timed
// ones at the cost of one branch. See internal/park for the timeout/
// unpark race protocol.
type Deadline = park.Deadline

// After returns a deadline d from now.
func After(d time.Duration) Deadline { return park.DeadlineAfter(d) }

// At returns a deadline at the absolute time t.
func At(t time.Time) Deadline { return park.DeadlineAt(t) }

// FromContext returns a deadline driven by ctx (cancellation and
// ctx's own deadline, if any).
func FromContext(ctx context.Context) Deadline { return park.DeadlineCtx(ctx) }

// CancelArg is the KindCancel trace event's Arg word for dl: 0 for a
// clock expiry, 1 for a context cancellation.
func CancelArg(dl Deadline) uint64 {
	if dl.Canceled() {
		return 1
	}
	return 0
}

// CancelEvent picks the counter for an abandoned acquisition out of
// the kind's (timeout, cancel) pair: context cancellations count as
// cancel, clock expiries as timeout.
func CancelEvent(timeout, cancel Event, dl Deadline) Event {
	if dl.Canceled() {
		return cancel
	}
	return timeout
}
