// Package lockcore is the shared substrate every lock algorithm in this
// module builds on: one instrumentation bundle (Instr) carrying the
// optional stats block, flight-recorder handle, and wait policy that
// used to be threaded through each algorithm package as three parallel
// options, one per-proc view (ProcInstr) whose nil-guarded helpers
// centralize the "is instrumentation on?" fast-path checks, and the
// data-driven kind registry (KindDesc) from which the facade's New
// dispatch, capability errors, stat scopes, the tool layer's kind
// enumeration, and the simulator's lock table all derive.
//
// The package deliberately re-exports (as type aliases and constants)
// the slice of internal/obs, internal/trace, and internal/park that the
// algorithm packages need, so goll, foll, roll, bravo, and central
// reach those layers only through here — a layering rule enforced by a
// test in the module root.
package lockcore

import (
	"time"

	"ollock/internal/chaos"
	"ollock/internal/obs"
	"ollock/internal/park"
	"ollock/internal/prof"
	"ollock/internal/trace"
)

// Instr bundles a lock's optional instrumentation: the striped counter
// block (nil = stats off), the flight-recorder handle (nil = tracing
// off), the wait policy (nil = pure spinning, the paper's behavior),
// the call-site profiler handle (nil = profiling off), and the chaos
// fault injector (nil = no fault injection; torture runs only). The
// zero value is a fully-off bundle; every method is safe on it,
// costing one predictable nil-check branch per call.
type Instr struct {
	Stats *obs.Stats
	Trace *trace.LockTrace
	Wait  *park.Policy
	Prof  *prof.LockProf
	Chaos *chaos.Injector
}

// NewProc mints the per-proc view: a buffered counter handle, a
// per-proc trace ring, a profiler sampling handle, and a chaos fault
// stream, each nil when the corresponding layer is off.
func (in Instr) NewProc(id int) ProcInstr {
	return ProcInstr{LC: in.Stats.NewLocal(id), TR: in.Trace.NewLocal(id), PR: in.Prof.NewLocal(), CH: in.Chaos.NewProc(id)}
}

// Enabled reports whether the stats layer is on.
func (in Instr) Enabled() bool { return in.Stats.Enabled() }

// Inc counts one event against the shared block (no-op when stats are
// off). Hot paths should prefer ProcInstr.Inc, which buffers.
func (in Instr) Inc(e Event, id int) { in.Stats.Inc(e, id) }

// Observe records one histogram sample (no-op when stats are off).
func (in Instr) Observe(h HistID, id int, v int64) { in.Stats.Observe(h, id, v) }

// SpanStart opens an acquire-latency span: it reads the clock only when
// stats are on, so uninstrumented fast paths never pay for time.Now.
// Pair with SpanObserve.
func (in Instr) SpanStart() time.Time {
	if in.Stats.Enabled() {
		return time.Now()
	}
	return time.Time{}
}

// SpanObserve closes a span opened by SpanStart, recording the elapsed
// nanoseconds into h (no-op when stats are off).
func (in Instr) SpanObserve(h HistID, id int, t0 time.Time) {
	if in.Stats.Enabled() {
		in.Stats.Observe(h, id, time.Since(t0).Nanoseconds())
	}
}

// AddDumper registers the lock as a live-state dumper for watchdog
// post-mortems (no-op when tracing is off).
func (in Instr) AddDumper(d StateDumper) { in.Trace.AddDumper(d) }

// ProcInstr is the per-proc slice of an Instr: the buffered counter
// view and the proc's flight-recorder ring. The zero value is fully
// off; every helper below delegates to a nil-receiver-safe method, so
// each event site costs exactly one predictable branch when the
// corresponding layer is off, and the helpers are small enough to
// inline into the lock fast paths.
type ProcInstr struct {
	LC *obs.Local
	TR *trace.Local
	PR *prof.Local
	CH *chaos.Proc
}

// Inc counts one event through the proc's buffer (no-op when stats are
// off); the shared cells are touched once per obs.FlushEvery events.
func (pi ProcInstr) Inc(e Event) { pi.LC.Inc(e) }

// Tracing reports whether this proc's trace ring is live — the guard
// for emissions that need extra work to compute their arguments.
func (pi ProcInstr) Tracing() bool { return pi.TR != nil }

// Now returns the trace clock, or 0 when tracing is off.
func (pi ProcInstr) Now() int64 { return pi.TR.Now() }

// Emit records one trace event (no-op when tracing is off). Under a
// chaos injector it first perturbs the caller: the algorithms emit
// exactly at their protocol steps (enqueue published, indicator
// closed, hand-off decided), so the injection lands on the
// linearization points without any dedicated hooks — and works with
// tracing off, since the perturbation precedes the nil-guarded ring
// write.
func (pi ProcInstr) Emit(k TraceKind, ph Phase, arg uint64) {
	pi.CH.Perturb()
	pi.TR.Emit(k, ph, arg)
}

// Begin opens a wait-phase span (no-op when tracing is off).
func (pi ProcInstr) Begin(ph Phase) { pi.TR.Begin(ph) }

// BeginAt opens a wait-phase span retroactively at ts (no-op when
// tracing is off).
func (pi ProcInstr) BeginAt(ts int64, ph Phase) { pi.TR.BeginAt(ts, ph) }

// End closes a wait-phase span (no-op when tracing is off).
func (pi ProcInstr) End(ph Phase) { pi.TR.End(ph) }

// Acquired emits the acquisition event closing any open wait phase,
// stamping the latency since t0 and the route taken (no-op when tracing
// is off).
func (pi ProcInstr) Acquired(k TraceKind, t0 int64, r Route) { pi.TR.Acquired(k, t0, r) }

// Released emits the release event (no-op when tracing is off).
func (pi ProcInstr) Released(k TraceKind) { pi.TR.Released(k) }

// ProfTick advances the call-site profiler's per-proc sampling pacer
// at the top of an acquisition, returning a nonzero profile-clock
// timestamp when this acquisition is elected for sampling (0 when it
// is not, or when profiling is off — one branch plus one increment).
// Thread the result to ProfAcquired/ProfContended, whose work is
// entirely gated on it.
func (pi ProcInstr) ProfTick() int64 { return pi.PR.Tick() }

// ProfAcquired completes a sampled acquisition: it captures the caller
// stack, charges the blocked time since ts to the call site when
// contended, and arms the hold sample ProfReleased will close. A zero
// ts makes it one predictable branch.
func (pi ProcInstr) ProfAcquired(ts int64, contended bool) { pi.PR.Acquired(ts, contended) }

// ProfContended records a sampled contention event without arming a
// hold sample — the BRAVO wrapper charges revocation cost to writer
// call sites this way while the base lock owns the hold accounting.
func (pi ProcInstr) ProfContended(ts int64) { pi.PR.Contended(ts) }

// ProfReleased closes the pending hold sample, if any (one predictable
// branch when profiling is off or the acquisition was not sampled).
func (pi ProcInstr) ProfReleased() { pi.PR.Released() }
