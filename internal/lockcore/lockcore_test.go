package lockcore

import (
	"testing"

	"ollock/internal/obs"
	"ollock/internal/trace"
)

// The whole point of the Instr/ProcInstr bundle is that the zero value
// is a valid "instrumentation off" configuration: every helper must be
// callable on empty bundles, do nothing, and allocate nothing. These
// tests pin that contract at the source instead of once per algorithm
// package.

func TestZeroInstrIsInert(t *testing.T) {
	var in Instr
	if in.Enabled() {
		t.Error("zero Instr reports Enabled")
	}
	pi := in.NewProc(3)
	if pi.LC != nil || pi.TR != nil {
		t.Errorf("zero Instr.NewProc returned non-nil locals: %+v", pi)
	}
	if pi.Tracing() {
		t.Error("zero ProcInstr reports Tracing")
	}
	// All of these must be safe no-ops.
	in.Inc(GOLLHandoff, 0)
	in.Observe(GOLLWriteWait, 0, 42)
	t0 := in.SpanStart()
	if !t0.IsZero() {
		t.Error("zero Instr.SpanStart read the clock")
	}
	in.SpanObserve(GOLLWriteWait, 0, t0)
	pi.Inc(FOLLReadJoin)
	pi.Emit(KindReadAcquired, PhaseArrive, 7)
	pi.Begin(PhaseQueueWait)
	pi.BeginAt(123, PhaseSpinWait)
	pi.End(PhaseQueueWait)
	pi.Acquired(KindReadAcquired, pi.Now(), RouteTree)
	pi.Released(KindReadReleased)
}

func TestZeroProcInstrZeroAllocs(t *testing.T) {
	var in Instr
	pi := in.NewProc(0)
	if n := testing.AllocsPerRun(200, func() {
		pi.Inc(ROLLReadJoin)
		pi.Begin(PhaseArrive)
		pi.End(PhaseArrive)
		pi.Acquired(KindReadAcquired, pi.Now(), RouteRoot)
		pi.Released(KindReadReleased)
		in.Inc(GOLLHandoff, 0)
		in.SpanObserve(GOLLWriteWait, 0, in.SpanStart())
	}); n != 0 {
		t.Fatalf("uninstrumented helpers allocate %.1f times per round, want 0", n)
	}
}

func TestInstrDelegation(t *testing.T) {
	st := obs.New(obs.WithName("t"), obs.WithScopes("csnzi", "goll"))
	lt := trace.New(64).Register("t")
	in := Instr{Stats: st, Trace: lt}
	if !in.Enabled() {
		t.Error("Instr with a stats block reports disabled")
	}
	pi := in.NewProc(1)
	if pi.LC == nil || pi.TR == nil {
		t.Fatalf("NewProc dropped a view: %+v", pi)
	}
	if !pi.Tracing() {
		t.Error("ProcInstr with a trace view reports not tracing")
	}
	pi.Inc(GOLLHandoff)
	pi.Acquired(KindReadAcquired, pi.Now(), RouteRoot)
	pi.Released(KindReadReleased)
	in.Inc(GOLLUpgradeAttempt, 1)
	t0 := in.SpanStart()
	if t0.IsZero() {
		t.Error("SpanStart with stats on did not read the clock")
	}
	in.SpanObserve(GOLLWriteWait, 1, t0)

	// Per-proc counts buffer in the Local until FlushEvery events; fold
	// them in before snapshotting.
	pi.LC.Flush()
	sn := st.Snapshot()
	if sn.Counters["goll.handoff"] != 1 {
		t.Errorf("goll.handoff = %d, want 1 (per-proc Inc lost)", sn.Counters["goll.handoff"])
	}
	if sn.Counters["goll.upgrade.attempt"] != 1 {
		t.Errorf("goll.upgrade.attempt = %d, want 1 (lock-level Inc lost)", sn.Counters["goll.upgrade.attempt"])
	}
	if h, ok := sn.Hists["goll.write.wait"]; !ok || h.Count != 1 {
		t.Errorf("goll.write.wait hist = %+v ok=%v, want one observation", h, ok)
	}
}

func TestRegistryShape(t *testing.T) {
	descs := Descs()
	if len(descs) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, d := range descs {
		if d.Name == "" {
			t.Fatal("descriptor with empty name")
		}
		if seen[d.Name] {
			t.Fatalf("duplicate kind %q", d.Name)
		}
		seen[d.Name] = true
		if d.Doc == "" {
			t.Errorf("kind %q has no doc line", d.Name)
		}
		if d.ForceBias {
			base, ok := DescOf(d.BiasBase)
			if !ok {
				t.Errorf("kind %q names unknown bias base %q", d.Name, d.BiasBase)
			} else if base.ForceBias {
				t.Errorf("kind %q bias base %q is itself pre-biased", d.Name, d.BiasBase)
			}
		}
		if d.IndicatorMatrix && !d.Caps.Indicator {
			t.Errorf("kind %q is in the indicator matrix but does not take indicators", d.Name)
		}
		if d.Caps.Instrumented != (len(d.Scopes) > 0) {
			t.Errorf("kind %q: Instrumented=%v but scopes=%v", d.Name, d.Caps.Instrumented, d.Scopes)
		}
		got, ok := DescOf(d.Name)
		if !ok || got.Name != d.Name {
			t.Errorf("DescOf(%q) failed round trip", d.Name)
		}
	}
	// Descs must return a defensive copy: mutating the result must not
	// corrupt the registry.
	descs[0].Name = "clobbered"
	if again := Descs(); again[0].Name == "clobbered" {
		t.Error("Descs exposes the registry's backing array")
	}
	if _, ok := DescOf("no-such-kind"); ok {
		t.Error("DescOf reports ok for an unknown kind")
	}
}
