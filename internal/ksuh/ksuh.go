// Package ksuh implements the fair, fast, scalable reader-writer lock of
// Krieger, Stumm, Unrau and Hanna (ICPP '93) — the strongest prior
// MCS-style baseline in the paper's evaluation ("the fastest MCS-style
// reader-writer lock we found", §5.1).
//
// Like the MCS locks, every acquiring thread — reader or writer — swaps
// its own node onto the tail of an implicit wait queue and spins on a
// flag in that node. Unlike the MCS reader-writer lock, there is no
// central reader count or next-writer word: the queue is doubly linked,
// and a reader releasing the lock splices its own node out of the middle
// of the queue, so release traffic stays between neighbours. The head
// run of the queue is the set of active readers (or a single active
// writer); a waiting thread is activated when everything ahead of it has
// been spliced away, or when it joins an active-reader predecessor, or
// through a chain wake-up from an activated reader.
//
// The tail pointer remains a single word updated by every acquisition,
// which is exactly the serialization the paper measures as KSUH's
// scalability ceiling.
//
// # Synchronization protocol
//
// Each node carries a tiny spin mutex. The protocol's lock orderings all
// run left-to-right (toward the head), so no cycles arise:
//
//   - splice (release) locks (pred, self);
//   - an arrival's wait/join decision locks (pred), and on join locks
//     (self) while still holding (pred);
//   - chain activation walks hand-over-hand (cur, next).
//
// A releasing node marks itself leaving under its lock and updates its
// successor's prev pointer before unlocking, so any thread that finds a
// leaving or replaced predecessor revalidates and retries against the
// fresh prev pointer.
package ksuh

import (
	"runtime"

	"ollock/internal/atomicx"
	"ollock/internal/spin"
)

// Node kinds.
const (
	kindReader uint32 = iota
	kindWriter
)

// Node is the per-thread queue node. Each participating goroutine owns
// one Node per lock (reused across acquisitions; safe to reuse as soon
// as the matching unlock returns).
type Node struct {
	kind    uint32 // written by owner before publishing
	prev    atomicx.PaddedPointer[Node]
	next    atomicx.PaddedPointer[Node]
	waiting atomicx.PaddedBool // the flag the owner spins on
	leaving atomicx.PaddedBool // set (under lk) when being spliced out
	lk      spin.Mutex
}

func (n *Node) reset(kind uint32) {
	n.kind = kind
	n.prev.Store(nil)
	n.next.Store(nil)
	n.waiting.Store(true)
	n.leaving.Store(false)
}

// RWLock is the KSUH reader-writer lock. Use New.
type RWLock struct {
	tail atomicx.PaddedPointer[Node]
}

// New returns an unlocked KSUH lock.
func New() *RWLock { return &RWLock{} }

// RLock acquires the lock for reading using n as the thread's node.
func (l *RWLock) RLock(n *Node) {
	n.reset(kindReader)
	pred := l.tail.Swap(n)
	if pred == nil {
		// Queue was empty: we are the head, hence active. Run the full
		// activation (under our node lock) so a successor that queued
		// behind us in the meantime is chain-woken.
		l.activate(n)
		return
	}
	n.prev.Store(pred)
	pred.next.Store(n)
	l.decide(n)
	atomicx.SpinUntil(func() bool { return !n.waiting.Load() })
}

// decide determines, under the predecessor's lock, whether an arriving
// reader may join the active group immediately (predecessor is an
// active, non-leaving reader) or must wait. Leaving/replaced
// predecessors are retried against the updated prev pointer.
func (l *RWLock) decide(n *Node) {
	for {
		p := n.prev.Load()
		if p == nil {
			// Everything ahead spliced away: we are the head.
			l.activate(n)
			return
		}
		p.lk.Lock()
		if n.prev.Load() != p || p.leaving.Load() {
			p.lk.Unlock()
			runtime.Gosched()
			continue
		}
		if p.kind == kindReader && !p.waiting.Load() {
			// Active reader predecessor: join the group. Activation
			// (which needs our lock, taken while still holding p's —
			// left-to-right order) also chain-wakes readers behind us.
			l.activate(n)
			p.lk.Unlock()
			return
		}
		// Predecessor is a writer or a waiting reader: wait. Its
		// activation or splice will reach us.
		p.lk.Unlock()
		return
	}
}

// activate marks n active and, if n is a reader, chain-wakes the run of
// waiting readers immediately behind it, walking hand-over-hand so no
// node in the walk can be spliced out or reused underfoot.
func (l *RWLock) activate(n *Node) {
	n.lk.Lock()
	l.activateLocked(n)
}

// activateLocked is activate with n's lock already held by the caller.
func (l *RWLock) activateLocked(n *Node) {
	cur := n
	for {
		cur.waiting.Store(false)
		if cur.kind == kindWriter {
			cur.lk.Unlock()
			return
		}
		succ := cur.next.Load()
		if succ == nil || succ.kind == kindWriter || !succ.waiting.Load() {
			cur.lk.Unlock()
			return
		}
		succ.lk.Lock()
		cur.lk.Unlock()
		cur = succ
	}
}

// RUnlock releases a read acquisition: the node splices itself out of
// the doubly linked queue, touching only its neighbours.
func (l *RWLock) RUnlock(n *Node) {
	l.splice(n)
}

// Lock acquires the lock for writing using n as the thread's node.
// Writers always wait for everything ahead of them (FIFO fairness).
func (l *RWLock) Lock(n *Node) {
	n.reset(kindWriter)
	pred := l.tail.Swap(n)
	if pred == nil {
		n.waiting.Store(false)
		return
	}
	n.prev.Store(pred)
	pred.next.Store(n)
	atomicx.SpinUntil(func() bool { return !n.waiting.Load() })
}

// Unlock releases a write acquisition. The writer is the head, so the
// splice also activates the new head.
func (l *RWLock) Unlock(n *Node) {
	l.splice(n)
}

// TryRLock acquires for reading without waiting, using n as the
// thread's node; it reports success. Conservative: it succeeds only
// when the queue is empty (every holder — reader or writer — keeps its
// node queued until release, so an empty tail means the lock is free).
func (l *RWLock) TryRLock(n *Node) bool {
	if l.tail.Load() != nil {
		return false
	}
	n.reset(kindReader)
	if !l.tail.CompareAndSwap(nil, n) {
		return false
	}
	l.activate(n)
	return true
}

// TryLock acquires for writing without waiting, using n as the thread's
// node; it reports success. Conservative, like TryRLock.
func (l *RWLock) TryLock(n *Node) bool {
	if l.tail.Load() != nil {
		return false
	}
	n.reset(kindWriter)
	if !l.tail.CompareAndSwap(nil, n) {
		return false
	}
	n.waiting.Store(false)
	return true
}

// splice removes n from the queue. If n was the head, the successor
// becomes head and is activated.
func (l *RWLock) splice(n *Node) {
	var p *Node
	for {
		p = n.prev.Load()
		if p == nil {
			break
		}
		p.lk.Lock()
		if n.prev.Load() == p && !p.leaving.Load() {
			break
		}
		p.lk.Unlock()
		runtime.Gosched()
	}
	// Here: p == n.prev, p locked (or p == nil and n is the head).
	n.lk.Lock()
	n.leaving.Store(true)
	succ := n.next.Load()
	if succ == nil {
		// Clear p.next BEFORE restoring the tail: p.next is invisible to
		// others while we hold p.lk, but the instant the CAS lands a new
		// enqueuer may swap the tail and write p.next — clearing it
		// afterwards would clobber that link (lost successor).
		if p != nil {
			p.next.Store(nil)
		}
		if l.tail.CompareAndSwap(n, p) {
			n.lk.Unlock()
			if p != nil {
				p.lk.Unlock()
			}
			return
		}
		// A successor swapped the tail; wait for its links.
		atomicx.SpinUntil(func() bool { return n.next.Load() != nil })
		succ = n.next.Load()
	}
	if p != nil {
		succ.prev.Store(p)
		p.next.Store(succ)
		n.lk.Unlock()
		p.lk.Unlock()
		return
	}
	// n was the head: the successor becomes the new head and must be
	// activated (it is a writer gaining the lock, or the first of a
	// reader run). Lock succ BEFORE publishing succ.prev = nil: the
	// moment prev is nil, succ's owner can head-splice it out and reuse
	// the node, and a stale activation of the reused node would wake its
	// new owner prematurely. Holding succ's lock (succ's splice needs
	// it) pins the node until the activation has run. Lock order is
	// left-to-right (n before succ), consistent with every other path.
	succ.lk.Lock()
	succ.prev.Store(nil)
	n.lk.Unlock()
	l.activateLocked(succ)
}
