package ksuh

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReaderJoinsActiveReader(t *testing.T) {
	l := New()
	var n1, n2 Node
	l.RLock(&n1)
	done := make(chan struct{})
	go func() {
		l.RLock(&n2)
		close(done)
		l.RUnlock(&n2)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("reader did not join active reader group")
	}
	l.RUnlock(&n1)
}

func TestWriterFIFO(t *testing.T) {
	l := New()
	var holder Node
	l.Lock(&holder)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var n Node
			l.Lock(&n)
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			l.Unlock(&n)
		}(i)
		time.Sleep(10 * time.Millisecond)
	}
	l.Unlock(&holder)
	wg.Wait()
	for i, id := range order {
		if id != i {
			t.Fatalf("order %v, want FIFO", order)
		}
	}
}

// TestMiddleReaderSplice: three readers acquire; the middle one releases
// first; a writer queued behind them must be admitted only after the
// remaining two release.
func TestMiddleReaderSplice(t *testing.T) {
	l := New()
	var r1, r2, r3 Node
	l.RLock(&r1)
	l.RLock(&r2)
	l.RLock(&r3)

	writerIn := make(chan struct{})
	go func() {
		var w Node
		l.Lock(&w)
		close(writerIn)
		l.Unlock(&w)
	}()
	time.Sleep(30 * time.Millisecond)

	l.RUnlock(&r2) // middle splice
	select {
	case <-writerIn:
		t.Fatal("writer admitted while two readers still hold the lock")
	case <-time.After(30 * time.Millisecond):
	}
	l.RUnlock(&r1) // head splice; r3 remains
	select {
	case <-writerIn:
		t.Fatal("writer admitted while one reader still holds the lock")
	case <-time.After(30 * time.Millisecond):
	}
	l.RUnlock(&r3)
	select {
	case <-writerIn:
	case <-time.After(20 * time.Second):
		t.Fatal("writer never admitted after last reader left")
	}
}

// TestReaderFIFOBehindWriter: readers queued behind a waiting writer do
// not overtake it (KSUH is fair).
func TestReaderFIFOBehindWriter(t *testing.T) {
	l := New()
	var r1 Node
	l.RLock(&r1)
	writerIn := make(chan struct{})
	go func() {
		var w Node
		l.Lock(&w)
		close(writerIn)
		time.Sleep(10 * time.Millisecond)
		l.Unlock(&w)
	}()
	time.Sleep(30 * time.Millisecond)
	readerIn := make(chan struct{})
	go func() {
		var r2 Node
		l.RLock(&r2)
		close(readerIn)
		l.RUnlock(&r2)
	}()
	select {
	case <-readerIn:
		t.Fatal("reader overtook waiting writer")
	case <-time.After(30 * time.Millisecond):
	}
	l.RUnlock(&r1)
	<-writerIn
	select {
	case <-readerIn:
	case <-time.After(20 * time.Second):
		t.Fatal("queued reader never admitted")
	}
}

// TestOutOfOrderReleaseStress: readers release in random order relative
// to acquisition, exercising middle/tail/head splices heavily.
func TestOutOfOrderReleaseStress(t *testing.T) {
	l := New()
	const goroutines, iters = 8, 1000
	var wg sync.WaitGroup
	var a, b int64
	var bad atomic.Int32
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var n Node
			for i := 0; i < iters; i++ {
				if (i*7+id)%5 != 0 {
					l.RLock(&n)
					if a != b {
						bad.Add(1)
					}
					l.RUnlock(&n)
				} else {
					l.Lock(&n)
					a++
					b++
					l.Unlock(&n)
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d violations", bad.Load())
	}
}

func TestSequentialMixedReuse(t *testing.T) {
	l := New()
	var n Node
	for i := 0; i < 2000; i++ {
		l.RLock(&n)
		l.RUnlock(&n)
		l.Lock(&n)
		l.Unlock(&n)
	}
}
