// Package park is the pluggable waiting layer of the lock stack: one
// policy object decides *how* every wait site in the module waits —
// pure spinning (the paper's user-space discipline, §5.1), an adaptive
// spin→yield→park ladder, or TWA-style waiting-array spinning — without
// changing *what* the sites wait for.
//
// The paper's evaluation substitutes spin-based condition variables for
// kernel sleep/wakeup because its thread counts never exceed the
// hardware's (§5.1). That assumption breaks under oversubscription:
// when goroutines vastly outnumber GOMAXPROCS, a spinning waiter burns
// the very CPU the lock holder needs to make progress. This package
// supplies the two standard escapes:
//
//   - Adaptive (Fissile-style composition): a bounded hot spin keeps
//     the short-wait fast path identical to pure spinning, a
//     runtime.Gosched ladder keeps the scheduler moving, and a
//     per-waiter semaphore-style channel parks the goroutine outright
//     when the wait turns long. Releasers consult a wake hint (the
//     waiter's state word / the flag's parked-list head) so they only
//     pay a channel send for waiters that actually parked.
//
//   - Array (TWA, Dice & Kogan 2018): long-term waiters spin on a
//     private padded slot of a fixed hashed array instead of the shared
//     grant word, so a grant invalidates one waiter's line instead of
//     broadcasting to every spinner. Waiters re-probe the real flag
//     (promotion to direct spinning) whenever their slot changes.
//
// The discipline mirrors internal/obs and internal/trace: a nil
// *Policy means "spin", every method nil-checks its receiver, and the
// spin path of every primitive is byte-for-byte the pre-park behavior,
// so locks built without WithWait pay one predictable branch and zero
// allocations.
package park

import (
	"runtime"
	"sync/atomic"
	"time"

	"ollock/internal/atomicx"
	"ollock/internal/obs"
	"ollock/internal/trace"
)

// Mode selects a waiting strategy.
type Mode uint8

const (
	// ModeSpin is the paper's behavior: burn CPU until granted. The
	// zero value and the nil *Policy both select it.
	ModeSpin Mode = iota
	// ModeAdaptive escalates spin → yield → park on a per-waiter
	// channel, with wake-hint tracking on the releaser side.
	ModeAdaptive
	// ModeArray moves long-term waiting onto a private slot of a fixed
	// hashed waiting array (TWA); condition waits without a cooperating
	// signaler degrade to the adaptive ladder.
	ModeArray

	numModes
)

var modeNames = [numModes]string{"spin", "adaptive", "array"}

// String returns the mode's stable name ("spin", "adaptive", "array"),
// used by the facade, benchmarks, and BENCH_bravo.json.
func (m Mode) String() string {
	if m < numModes {
		return modeNames[m]
	}
	return "mode?"
}

// Ladder tuning. The hot-spin budget matches atomicx.SpinUntil's phase
// 1, so a short wait costs the same under every mode; the yield budget
// bounds how long an adaptive waiter politely polls before parking; the
// sleep bounds cap the condition-wait ladder where no signaler exists.
//
// The yield budget is the oversubscription knob. When goroutines are
// scarce, yielding is nearly free and parking costs a wake, so the
// waiter polls patiently. When runnable goroutines outnumber
// processors, every yield re-enters a runqueue full of other pollers
// — each handoff then pays O(waiters) futile wake-probe-yield passes —
// so the waiter parks almost immediately and leaves the runqueue to
// the goroutines that can make progress.
const (
	hotSpinBudget      = 64
	yieldBudget        = 32
	yieldBudgetOversub = 0
	sleepMin           = time.Microsecond
	sleepMax           = 100 * time.Microsecond
)

// hotSpin runs the bounded hot-probe phase of a wait ladder, returning
// true if probe succeeded. On a single processor the phase is skipped
// outright: no other thread runs — and so none can signal — while this
// one burns the only P, so the caller's entry probe already saw the
// freshest state and the wait should go straight to the scheduler.
func hotSpin(probe func() bool) bool {
	if runtime.GOMAXPROCS(0) == 1 {
		return false
	}
	for i := 0; i < hotSpinBudget; i++ {
		if probe() {
			return true
		}
		atomicx.ProcYield()
	}
	return false
}

// yieldsFor picks the ladder's yield budget. NumGoroutine counts
// blocked goroutines too, so the 2x margin keeps programs with a
// normal complement of idle background goroutines on the patient
// budget; the call is two runtime reads and happens once per wait that
// has already outlived the hot spin, never on the grant fast path.
func yieldsFor() int {
	if runtime.NumGoroutine() > 2*runtime.GOMAXPROCS(0) {
		return yieldBudgetOversub
	}
	return yieldBudget
}

// Policy is one lock's waiting strategy plus its instrumentation. A nil
// *Policy is valid and means ModeSpin with no counters — the exact
// pre-park behavior of every wait site. Create with New.
type Policy struct {
	mode Mode
	st   *obs.Stats
	arr  *WaitingArray
}

// Option configures New.
type Option func(*Policy)

// WithStats attaches an obs block; the park.* counters land there.
func WithStats(st *obs.Stats) Option { return func(p *Policy) { p.st = st } }

// WithArraySize sets the waiting array's slot count (rounded up to a
// power of two; only meaningful for ModeArray). Default 128.
func WithArraySize(n int) Option { return func(p *Policy) { p.arr = NewWaitingArray(n) } }

// New returns a policy for the given mode. ModeArray allocates the
// waiting array up front so the wait path never does.
func New(m Mode, opts ...Option) *Policy {
	p := &Policy{mode: m}
	for _, o := range opts {
		o(p)
	}
	if p.mode == ModeArray && p.arr == nil {
		p.arr = NewWaitingArray(0)
	}
	return p
}

// Mode returns the policy's strategy; a nil policy reads as ModeSpin.
func (p *Policy) Mode() Mode {
	if p == nil {
		return ModeSpin
	}
	return p.mode
}

// Array returns the policy's waiting array (nil unless ModeArray).
func (p *Policy) Array() *WaitingArray {
	if p == nil {
		return nil
	}
	return p.arr
}

// stats returns the policy's obs block, nil-safe.
func (p *Policy) stats() *obs.Stats {
	if p == nil {
		return nil
	}
	return p.st
}

// Waiter state machine. idle -> signaled (fast grant) or
// idle -> parked -> signaled (the releaser saw the park and owes a
// channel send).
const (
	wIdle uint32 = iota
	wSignaled
	wParked
)

// Waiter is a one-shot wait/signal cell, the policy-aware replacement
// for the bare spin flag: exactly one goroutine Waits, exactly one
// Signals, and Reset re-arms it for reuse. The state word lives alone
// on its cache line (the MCS property: each waiter spins locally).
type Waiter struct {
	_     atomicx.Pad
	state atomic.Uint32
	key   atomic.Uint32 // waiting-array slot key; 0 = unassigned
	sem   chan struct{} // allocated at first park only
	_     [atomicx.CacheLineSize - 16]byte
}

// Wait blocks until Signal, waiting per pol. id is the caller's proc id
// (counter striping); tr receives park/unpark events and may be nil.
func (w *Waiter) Wait(pol *Policy, id int, tr *trace.Local) {
	if w.state.Load() == wSignaled {
		return
	}
	switch pol.Mode() {
	case ModeAdaptive:
		w.waitAdaptive(pol, id, tr)
	case ModeArray:
		w.waitArray(pol, id, tr)
	default:
		atomicx.SpinUntil(func() bool { return w.state.Load() == wSignaled })
	}
}

func (w *Waiter) waitAdaptive(pol *Policy, id int, tr *trace.Local) {
	if hotSpin(func() bool { return w.state.Load() == wSignaled }) {
		return
	}
	pol.stats().Inc(obs.ParkYield, id)
	for i, n := 0, yieldsFor(); i < n; i++ {
		if w.state.Load() == wSignaled {
			return
		}
		runtime.Gosched()
	}
	if w.sem == nil {
		// Publication to the signaler rides the state CAS below: Signal
		// reads sem only after its Swap observes wParked.
		w.sem = make(chan struct{}, 1)
	}
	if !w.state.CompareAndSwap(wIdle, wParked) {
		return // lost to Signal: already wSignaled
	}
	pol.stats().Inc(obs.ParkPark, id)
	tr.Emit(trace.KindPark, trace.PhaseNone, parkArgChan)
	var t0 time.Time
	if st := pol.stats(); st.Enabled() {
		t0 = time.Now()
	}
	<-w.sem
	if st := pol.stats(); st.Enabled() {
		st.Observe(obs.ParkWait, id, time.Since(t0).Nanoseconds())
	}
	pol.stats().Inc(obs.ParkUnpark, id)
	tr.Emit(trace.KindUnpark, trace.PhaseNone, parkArgChan)
}

func (w *Waiter) waitArray(pol *Policy, id int, tr *trace.Local) {
	if hotSpin(func() bool { return w.state.Load() == wSignaled }) {
		return
	}
	// Assign the slot key before the next state probe: the seq-cst
	// Dekker pair with Signal (which swaps state, then reads the key)
	// guarantees the signaler either sees the key and bumps the slot,
	// or we see wSignaled on the probe below.
	k := w.key.Load()
	if k == 0 {
		k = newKey()
		w.key.Store(k)
	}
	arr := pol.Array()
	pol.stats().Inc(obs.ParkArrayWait, id)
	tr.Emit(trace.KindPark, trace.PhaseNone, parkArgArray)
	for {
		s0 := arr.load(k)
		if w.state.Load() == wSignaled {
			break
		}
		arr.waitChange(k, s0, func() bool { return w.state.Load() == wSignaled })
	}
	tr.Emit(trace.KindUnpark, trace.PhaseNone, parkArgArray)
}

// Signal grants the waiter. The wake hint is the state word itself:
// only a waiter observed in the parked state costs a channel send, and
// only an assigned slot key costs an array bump — a spinning waiter's
// grant is one store, exactly as before.
func (w *Waiter) Signal(pol *Policy) {
	if w.state.Swap(wSignaled) == wParked {
		w.sem <- struct{}{}
		return
	}
	if arr := pol.Array(); arr != nil {
		if k := w.key.Load(); k != 0 {
			arr.bump(k)
		}
	}
}

// Signaled reports whether Signal has run since the last Reset.
func (w *Waiter) Signaled() bool { return w.state.Load() == wSignaled }

// Reset re-arms the waiter for another Wait/Signal round. Only the
// owning goroutine may call it, and only while no Wait is in flight.
func (w *Waiter) Reset() { w.state.Store(wIdle) }

// Park event args: which waiting mechanism the park/unpark pair used.
const (
	parkArgChan  = 0 // channel park (true deschedule)
	parkArgArray = 1 // waiting-array slot spin
	parkArgSleep = 2 // timed-sleep ladder (condition wait)
)

// WaitCond waits for cond to become true at a site with no cooperating
// signaler to bump a slot or send on a channel (lockword CAS loops,
// BRAVO revocation drains). Spin mode is exactly atomicx.SpinUntil;
// adaptive and array modes escalate spin → yield → bounded timed sleep
// (array has no signaler here either, so it shares the ladder).
func WaitCond(pol *Policy, id int, tr *trace.Local, cond func() bool) {
	if pol.Mode() == ModeSpin {
		atomicx.SpinUntil(cond)
		return
	}
	if hotSpin(cond) {
		return
	}
	pol.stats().Inc(obs.ParkYield, id)
	for i, n := 0, yieldsFor(); i < n; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	pol.stats().Inc(obs.ParkPark, id)
	tr.Emit(trace.KindPark, trace.PhaseNone, parkArgSleep)
	var t0 time.Time
	if st := pol.stats(); st.Enabled() {
		t0 = time.Now()
	}
	d := sleepMin
	for !cond() {
		time.Sleep(d)
		if d < sleepMax {
			d *= 2
		}
	}
	if st := pol.stats(); st.Enabled() {
		st.Observe(obs.ParkWait, id, time.Since(t0).Nanoseconds())
	}
	pol.stats().Inc(obs.ParkUnpark, id)
	tr.Emit(trace.KindUnpark, trace.PhaseNone, parkArgSleep)
}

// Ladder is the policy-aware replacement for a stack-local
// atomicx.Backoff in CAS retry loops: under a nil or spin policy Pause
// is exactly Backoff.Pause; under adaptive/array it escalates to
// yields and then bounded sleeps so retry storms cannot starve the
// oversubscribed scheduler. A Ladder is a value, lives on the caller's
// stack, and allocates nothing.
type Ladder struct {
	pol    *Policy
	b      atomicx.Backoff
	yields int
	budget int // picked by yieldsFor at the first non-spin Pause
	sleep  time.Duration
}

// Ladder returns a fresh ladder for one acquisition attempt.
func (p *Policy) Ladder() Ladder { return Ladder{pol: p} }

// Pause waits one escalating step.
func (l *Ladder) Pause() {
	if l.pol.Mode() == ModeSpin {
		l.b.Pause()
		return
	}
	if l.budget == 0 {
		// CAS retry loops keep at least one backoff pause before the
		// sleep phase: a retry is not a queue wait, and the next attempt
		// usually succeeds within a pause.
		l.budget = max(1, yieldsFor())
	}
	if l.yields < l.budget {
		l.yields++
		l.b.Pause() // bounded spin; saturation already yields
		return
	}
	if l.sleep == 0 {
		l.sleep = sleepMin
	}
	time.Sleep(l.sleep)
	if l.sleep < sleepMax {
		l.sleep *= 2
	}
}

// Reset restores the ladder to its hot phase. Call after a successful
// CAS when the same ladder value is reused.
func (l *Ladder) Reset() {
	l.b.Reset()
	l.yields = 0
	l.budget = 0
	l.sleep = 0
}

// keyCounter mints waiting-array slot keys. Keys only need to be
// nonzero and well-distributed after hashing; 31 bits of a global
// counter is plenty (collisions are correctness-neutral: a shared slot
// just wakes both waiters, who re-probe their own flags).
var keyCounter atomic.Uint32

func newKey() uint32 {
	for {
		if k := keyCounter.Add(1) & 0x7fffffff; k != 0 {
			return k
		}
	}
}
