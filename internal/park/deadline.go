// Deadline-aware waiting: the timed counterparts of Wait, Flag.Wait
// and WaitCond. A Deadline bundles an absolute expiry time and/or a
// context, and every timed primitive returns true for "granted" and
// false for "expired" — never both, never neither.
//
// The hard part is the park path: a waiter that times out while a
// grant's channel send is in flight must not strand the token (the
// next waiter on the same cell would consume a stale grant) and must
// not miss the grant (the classic lost wakeup). Both primitives
// resolve the race with the same token-validation shape the untimed
// protocol already uses:
//
//   - Waiter: the timed-out waiter CASes its state wParked→wIdle.
//     Signal swaps the state first and only sends when it observed
//     wParked, so exactly one side wins the word: either the CAS
//     succeeds (Signal will see wIdle and not send — clean timeout) or
//     it fails (a send is committed — the waiter consumes it and
//     reports granted).
//
//   - Flag: the timed-out waiter CASes its parked record
//     recWaiting→recCanceled, the same claim/cancel race the
//     push-then-recheck path runs. The granter's sweep only sends on
//     records it claimed, so again exactly one side owns the record.
//
// A timeout therefore leaves the cell re-armed (state wIdle, record
// canceled): the caller can Wait again on the same cell, which the
// lock-layer cancellation protocols rely on when they lose the
// abandonment race and must wait out the in-flight grant.
//
// Deadline checks on the spin/yield phases run every few probes — a
// deadline is a bound, not a real-time guarantee, and keeping
// time.Now off the per-probe path keeps timed spinning at untimed
// speed. The timer allocation happens only on the park path, where the
// goroutine is about to deschedule anyway.
package park

import (
	"context"
	"runtime"
	"time"

	"ollock/internal/atomicx"
	"ollock/internal/obs"
	"ollock/internal/trace"
)

// Deadline bounds one wait: an absolute expiry time, a context, both,
// or neither. The zero value means "no bound" and selects the untimed
// code paths — passing it costs one branch. Deadlines are values;
// construct with DeadlineAfter / DeadlineAt / DeadlineCtx.
type Deadline struct {
	t   time.Time
	ctx context.Context
}

// DeadlineAfter returns a deadline d from now.
func DeadlineAfter(d time.Duration) Deadline { return Deadline{t: time.Now().Add(d)} }

// DeadlineAt returns a deadline at the absolute time t.
func DeadlineAt(t time.Time) Deadline { return Deadline{t: t} }

// DeadlineCtx returns a deadline driven by ctx: cancellation expires
// it immediately, and ctx's own deadline (if any) is captured so the
// spin phases can poll it without calling ctx.Err.
func DeadlineCtx(ctx context.Context) Deadline {
	dl := Deadline{ctx: ctx}
	if t, ok := ctx.Deadline(); ok {
		dl.t = t
	}
	return dl
}

// None reports whether the deadline is the zero value (no bound).
func (d Deadline) None() bool { return d.ctx == nil && d.t.IsZero() }

// Expired reports whether the wait must be abandoned: the context is
// done or the expiry time has passed.
func (d Deadline) Expired() bool {
	if d.ctx != nil && d.ctx.Err() != nil {
		return true
	}
	return !d.t.IsZero() && !time.Now().Before(d.t)
}

// Canceled reports whether the deadline expired by context
// cancellation rather than clock expiry — the *.cancel vs *.timeout
// counter split.
func (d Deadline) Canceled() bool { return d.ctx != nil && d.ctx.Err() != nil }

// Err returns the context's error if the deadline carries a canceled
// context, and context.DeadlineExceeded otherwise — the error the
// facade's Ctx variants report on failure.
func (d Deadline) Err() error {
	if d.ctx != nil {
		if err := d.ctx.Err(); err != nil {
			return err
		}
	}
	return context.DeadlineExceeded
}

// ParkTimeout parks on sem until a token arrives, the deadline
// expires, or the context is done. It returns true iff a token was
// consumed. The caller owns the race resolution: a false return only
// means no token had arrived *yet* — the caller must still win its
// claim/cancel CAS before treating the wait as abandoned.
func (d Deadline) ParkTimeout(sem <-chan struct{}) bool {
	var timerC <-chan time.Time
	if !d.t.IsZero() {
		tm := time.NewTimer(time.Until(d.t))
		defer tm.Stop()
		timerC = tm.C
	}
	var done <-chan struct{}
	if d.ctx != nil {
		done = d.ctx.Done()
	}
	select {
	case <-sem:
		return true
	case <-timerC:
		return false
	case <-done:
		return false
	}
}

// expiryStride: the spin phases check the clock every this many
// probes. A probe is a handful of nanoseconds and time.Now tens, so
// the stride keeps timed spinning within noise of untimed.
const expiryStride = 16

// spinUntil spins on cond with backoff until it holds or the deadline
// expires, checking expiry every expiryStride probes.
func spinUntil(cond func() bool, dl Deadline) bool {
	var b atomicx.Backoff
	for i := 1; ; i++ {
		if cond() {
			return true
		}
		if i%expiryStride == 0 && dl.Expired() {
			return false
		}
		b.Pause()
	}
}

// WaitUntil is Wait with a bound: it returns true once Signal has run
// and false if dl expired first. A timed-out waiter is left re-armed
// (state idle): a Signal racing the timeout either loses the state
// word — and then never sends — or wins it, in which case WaitUntil
// consumes the send and reports granted. After a false return the
// owner may Wait (or WaitUntil) again on the same cell to claim a
// grant that is still on its way.
func (w *Waiter) WaitUntil(pol *Policy, id int, tr *trace.Local, dl Deadline) bool {
	if dl.None() {
		w.Wait(pol, id, tr)
		return true
	}
	if w.state.Load() == wSignaled {
		return true
	}
	var ok bool
	switch pol.Mode() {
	case ModeAdaptive:
		ok = w.waitAdaptiveUntil(pol, id, tr, dl)
	case ModeArray:
		ok = w.waitArrayUntil(pol, id, tr, dl)
	default:
		ok = spinUntil(func() bool { return w.state.Load() == wSignaled }, dl)
	}
	if !ok {
		pol.stats().Inc(obs.ParkTimeout, id)
	}
	return ok
}

func (w *Waiter) waitAdaptiveUntil(pol *Policy, id int, tr *trace.Local, dl Deadline) bool {
	if hotSpin(func() bool { return w.state.Load() == wSignaled }) {
		return true
	}
	pol.stats().Inc(obs.ParkYield, id)
	for i, n := 0, yieldsFor(); i < n; i++ {
		if w.state.Load() == wSignaled {
			return true
		}
		if dl.Expired() {
			return false
		}
		runtime.Gosched()
	}
	if dl.Expired() {
		return w.state.Load() == wSignaled
	}
	if w.sem == nil {
		// Publication to the signaler rides the state CAS below, exactly
		// as in the untimed path.
		w.sem = make(chan struct{}, 1)
	}
	if !w.state.CompareAndSwap(wIdle, wParked) {
		return true // lost to Signal: already wSignaled
	}
	pol.stats().Inc(obs.ParkPark, id)
	tr.Emit(trace.KindPark, trace.PhaseNone, parkArgChan)
	var t0 time.Time
	if st := pol.stats(); st.Enabled() {
		t0 = time.Now()
	}
	if dl.ParkTimeout(w.sem) {
		if st := pol.stats(); st.Enabled() {
			st.Observe(obs.ParkWait, id, time.Since(t0).Nanoseconds())
		}
		pol.stats().Inc(obs.ParkUnpark, id)
		tr.Emit(trace.KindUnpark, trace.PhaseNone, parkArgChan)
		return true
	}
	// Expired while parked. The state CAS is the token validation:
	// winning it (wParked→wIdle) forbids Signal from ever sending for
	// this round; losing it means Signal committed to a send — consume
	// the token so the next round starts clean, and report granted.
	if w.state.CompareAndSwap(wParked, wIdle) {
		return false
	}
	<-w.sem
	pol.stats().Inc(obs.ParkUnpark, id)
	tr.Emit(trace.KindUnpark, trace.PhaseNone, parkArgChan)
	return true
}

func (w *Waiter) waitArrayUntil(pol *Policy, id int, tr *trace.Local, dl Deadline) bool {
	if hotSpin(func() bool { return w.state.Load() == wSignaled }) {
		return true
	}
	k := w.key.Load()
	if k == 0 {
		k = newKey()
		w.key.Store(k)
	}
	arr := pol.Array()
	pol.stats().Inc(obs.ParkArrayWait, id)
	tr.Emit(trace.KindPark, trace.PhaseNone, parkArgArray)
	for {
		s0 := arr.load(k)
		if w.state.Load() == wSignaled {
			tr.Emit(trace.KindUnpark, trace.PhaseNone, parkArgArray)
			return true
		}
		if dl.Expired() {
			// Timed-out array waiters need no token dance: a late Signal
			// still swaps the state word and at worst bumps a slot nobody
			// watches.
			return false
		}
		arr.waitChange(k, s0, func() bool {
			return w.state.Load() == wSignaled || dl.Expired()
		})
	}
}

// WaitUntil is Flag.Wait with a bound: true once the flag is cleared,
// false if dl expired first. A false return leaves any parked record
// canceled (the granter's sweep skips it), so a subsequent Wait on the
// same flag starts a fresh round.
func (f *Flag) WaitUntil(pol *Policy, id int, tr *trace.Local, dl Deadline) bool {
	if dl.None() {
		f.Wait(pol, id, tr)
		return true
	}
	if !f.Blocked() {
		return true
	}
	var ok bool
	switch pol.Mode() {
	case ModeAdaptive:
		ok = f.waitAdaptiveUntil(pol, id, tr, dl)
	case ModeArray:
		ok = f.waitArrayUntil(pol, id, tr, dl)
	default:
		ok = spinUntil(func() bool { return !f.Blocked() }, dl)
	}
	if !ok {
		pol.stats().Inc(obs.ParkTimeout, id)
	}
	return ok
}

func (f *Flag) waitAdaptiveUntil(pol *Policy, id int, tr *trace.Local, dl Deadline) bool {
	if hotSpin(func() bool { return !f.Blocked() }) {
		return true
	}
	pol.stats().Inc(obs.ParkYield, id)
	for i, n := 0, yieldsFor(); i < n; i++ {
		if !f.Blocked() {
			return true
		}
		if dl.Expired() {
			return false
		}
		runtime.Gosched()
	}
	for f.Blocked() {
		if dl.Expired() {
			return !f.Blocked()
		}
		r := &parkRec{sem: make(chan struct{}, 1)}
		for {
			old := f.parked.Load()
			r.next = old
			if f.parked.CompareAndSwap(old, r) {
				break
			}
		}
		if !f.Blocked() {
			// Cleared between push and re-check: same claim/cancel race as
			// the untimed path.
			if r.state.CompareAndSwap(recWaiting, recCanceled) {
				return true
			}
			<-r.sem
			return true
		}
		pol.stats().Inc(obs.ParkPark, id)
		tr.Emit(trace.KindPark, trace.PhaseNone, parkArgChan)
		if dl.ParkTimeout(r.sem) {
			pol.stats().Inc(obs.ParkUnpark, id)
			tr.Emit(trace.KindUnpark, trace.PhaseNone, parkArgChan)
			continue
		}
		// Expired while parked: cancel the record so the sweep skips it.
		// Losing the CAS means the granter claimed it and a send is in
		// flight — consume it and report the grant.
		if r.state.CompareAndSwap(recWaiting, recCanceled) {
			return !f.Blocked()
		}
		<-r.sem
		pol.stats().Inc(obs.ParkUnpark, id)
		tr.Emit(trace.KindUnpark, trace.PhaseNone, parkArgChan)
		return true
	}
	return true
}

func (f *Flag) waitArrayUntil(pol *Policy, id int, tr *trace.Local, dl Deadline) bool {
	if hotSpin(func() bool { return !f.Blocked() }) {
		return true
	}
	k := f.word.Load() >> 1
	arr := pol.Array()
	if k == 0 || arr == nil {
		return spinUntil(func() bool { return !f.Blocked() }, dl)
	}
	pol.stats().Inc(obs.ParkArrayWait, id)
	tr.Emit(trace.KindPark, trace.PhaseNone, parkArgArray)
	for {
		s0 := arr.load(k)
		if !f.Blocked() {
			tr.Emit(trace.KindUnpark, trace.PhaseNone, parkArgArray)
			return true
		}
		if dl.Expired() {
			return false
		}
		arr.waitChange(k, s0, func() bool {
			return !f.Blocked() || dl.Expired()
		})
	}
}

// WaitCondUntil is WaitCond with a bound: true once cond holds, false
// if dl expired first. Condition sites have no signaler, so there is
// no token to validate — expiry checks simply join the ladder.
func WaitCondUntil(pol *Policy, id int, tr *trace.Local, cond func() bool, dl Deadline) bool {
	if dl.None() {
		WaitCond(pol, id, tr, cond)
		return true
	}
	if pol.Mode() == ModeSpin {
		if !spinUntil(cond, dl) {
			pol.stats().Inc(obs.ParkTimeout, id)
			return false
		}
		return true
	}
	if hotSpin(cond) {
		return true
	}
	pol.stats().Inc(obs.ParkYield, id)
	for i, n := 0, yieldsFor(); i < n; i++ {
		if cond() {
			return true
		}
		if dl.Expired() {
			pol.stats().Inc(obs.ParkTimeout, id)
			return false
		}
		runtime.Gosched()
	}
	pol.stats().Inc(obs.ParkPark, id)
	tr.Emit(trace.KindPark, trace.PhaseNone, parkArgSleep)
	var t0 time.Time
	if st := pol.stats(); st.Enabled() {
		t0 = time.Now()
	}
	d := sleepMin
	for !cond() {
		if dl.Expired() {
			pol.stats().Inc(obs.ParkTimeout, id)
			return false
		}
		time.Sleep(d)
		if d < sleepMax {
			d *= 2
		}
	}
	if st := pol.stats(); st.Enabled() {
		st.Observe(obs.ParkWait, id, time.Since(t0).Nanoseconds())
	}
	pol.stats().Inc(obs.ParkUnpark, id)
	tr.Emit(trace.KindUnpark, trace.PhaseNone, parkArgSleep)
	return true
}
