// Flag is the policy-aware grant flag of the queue locks: the
// MCS-style "spin" boolean a FOLL/ROLL node owner raises at enqueue and
// the predecessor clears at grant time, extended so waiters can park.
//
// The parking protocol is the classic push-then-recheck Dekker shape,
// relying on Go atomics being sequentially consistent:
//
//	waiter:  push record; re-read flag        granter: clear flag; swap list
//
// If the waiter's re-read still sees the flag raised, the granter's
// clear — and therefore its list swap — comes later in the total order,
// so the swap captures the record and the granter owes it a send. If
// the re-read sees the flag cleared, the waiter races the granter for
// the record with a claim/cancel CAS: exactly one side wins, so the
// waiter either returns immediately (cancel won) or consumes the send
// the granter's claim guarantees. Either way no wake is ever missed.
//
// Records the waiter canceled can linger on the list into the node's
// next lifetime; the sweep skips them (their claim CAS fails) and the
// GC reclaims them. Allocation happens only on the park path — raising,
// clearing, and spinning on a Flag allocate nothing.
package park

import (
	"runtime"
	"sync/atomic"

	"ollock/internal/atomicx"
	"ollock/internal/obs"
	"ollock/internal/trace"
)

// parkRec states: the claim/cancel race between granter and waiter.
const (
	recWaiting  uint32 = iota
	recClaimed         // granter won: a send on sem is in flight
	recCanceled        // waiter won: granter must skip this record
)

// parkRec is one parked waiter on a Flag's Treiber list. Heap-allocated
// per park; parking is the long-wait slow path, so the allocation is
// paid exactly when a goroutine is about to deschedule anyway.
type parkRec struct {
	next  *parkRec
	state atomic.Uint32
	sem   chan struct{}
}

// Flag packs the blocked bit (bit 0) and the node's waiting-array slot
// key (bits 1..31) into one word, with the parked-waiter list alongside
// on the same private cache line — the line is private to this node's
// waiters by construction, which is the MCS property the queue locks
// depend on.
type Flag struct {
	_      atomicx.Pad
	word   atomic.Uint32
	_      [4]byte
	parked atomic.Pointer[parkRec]
	_      [atomicx.CacheLineSize - 16]byte
}

// Set raises or lowers the flag. Only the node's owner calls it, while
// the node is private (before publication or after reclaim), exactly
// like the PaddedBool store it replaces. The slot key is minted on
// first use and survives re-Sets, so a recycled node keeps its array
// slot.
func (f *Flag) Set(blocked bool) {
	w := f.word.Load()
	if w>>1 == 0 {
		w = newKey() << 1
	}
	if blocked {
		w |= 1
	} else {
		w &^= 1
	}
	f.word.Store(w)
}

// Blocked reports whether the flag is raised (the waiter must keep
// waiting). This is the grant word the spin policy spins on.
func (f *Flag) Blocked() bool { return f.word.Load()&1 != 0 }

// Wait blocks until the flag is cleared, waiting per pol.
func (f *Flag) Wait(pol *Policy, id int, tr *trace.Local) {
	if !f.Blocked() {
		return
	}
	switch pol.Mode() {
	case ModeAdaptive:
		f.waitAdaptive(pol, id, tr)
	case ModeArray:
		f.waitArray(pol, id, tr)
	default:
		atomicx.SpinUntil(func() bool { return !f.Blocked() })
	}
}

func (f *Flag) waitAdaptive(pol *Policy, id int, tr *trace.Local) {
	if hotSpin(func() bool { return !f.Blocked() }) {
		return
	}
	pol.stats().Inc(obs.ParkYield, id)
	for i, n := 0, yieldsFor(); i < n; i++ {
		if !f.Blocked() {
			return
		}
		runtime.Gosched()
	}
	for f.Blocked() {
		r := &parkRec{sem: make(chan struct{}, 1)}
		for {
			old := f.parked.Load()
			r.next = old
			if f.parked.CompareAndSwap(old, r) {
				break
			}
		}
		if !f.Blocked() {
			// Cleared between push and re-check: the granter's sweep may
			// or may not have caught our record. The claim/cancel CAS
			// decides — if the granter claimed first, consume its send.
			if r.state.CompareAndSwap(recWaiting, recCanceled) {
				return
			}
			<-r.sem
			return
		}
		pol.stats().Inc(obs.ParkPark, id)
		tr.Emit(trace.KindPark, trace.PhaseNone, parkArgChan)
		<-r.sem
		pol.stats().Inc(obs.ParkUnpark, id)
		tr.Emit(trace.KindUnpark, trace.PhaseNone, parkArgChan)
	}
}

func (f *Flag) waitArray(pol *Policy, id int, tr *trace.Local) {
	if hotSpin(func() bool { return !f.Blocked() }) {
		return
	}
	k := f.word.Load() >> 1
	arr := pol.Array()
	if k == 0 || arr == nil {
		atomicx.SpinUntil(func() bool { return !f.Blocked() })
		return
	}
	pol.stats().Inc(obs.ParkArrayWait, id)
	tr.Emit(trace.KindPark, trace.PhaseNone, parkArgArray)
	for {
		s0 := arr.load(k)
		// Probe the real flag after reading the slot (promotion to
		// direct spinning): if the grant already landed we exit without
		// touching the array again; otherwise the granter's bump is
		// still ahead of us and will change the slot.
		if !f.Blocked() {
			break
		}
		arr.waitChange(k, s0, func() bool { return !f.Blocked() })
	}
	tr.Emit(trace.KindUnpark, trace.PhaseNone, parkArgArray)
}

// Clear grants the waiters: lowers the flag, then wakes per pol —
// sweep and signal the parked list (adaptive) or bump the node's array
// slot (array). Exactly one goroutine clears a raised flag (the
// predecessor handing over), which is what makes the plain
// load-modify-store of the word safe, as it was for the PaddedBool.
func (f *Flag) Clear(pol *Policy) {
	w := f.word.Load()
	f.word.Store(w &^ 1)
	switch pol.Mode() {
	case ModeAdaptive:
		if f.parked.Load() == nil {
			return // wake hint: nobody parked, grant stays one store
		}
		for r := f.parked.Swap(nil); r != nil; r = r.next {
			if r.state.CompareAndSwap(recWaiting, recClaimed) {
				r.sem <- struct{}{}
			}
		}
	case ModeArray:
		if arr := pol.Array(); arr != nil {
			arr.bump(w >> 1)
		}
	}
}
