package park

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Race hammers for the parking protocol. Run with -race; the scenarios
// aim the granter's clear-then-sweep directly at the waiter's
// push-then-recheck so the claim/cancel CAS race actually fires.

func hammerRounds(t *testing.T) int {
	if testing.Short() {
		return 300
	}
	return 3000
}

// TestWaiterHammer drives concurrent Wait/Signal rounds per policy,
// with the signaler racing the waiter's descent down the ladder.
func TestWaiterHammer(t *testing.T) {
	for _, pol := range []*Policy{New(ModeAdaptive), New(ModeArray, WithArraySize(4))} {
		pol := pol
		t.Run(pol.Mode().String(), func(t *testing.T) {
			t.Parallel()
			const waiters = 8
			rounds := hammerRounds(t)
			var wg sync.WaitGroup
			for g := 0; g < waiters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					var w Waiter
					for i := 0; i < rounds; i++ {
						done := make(chan struct{})
						go func() {
							// Jitter so signals land in every ladder
							// phase: immediate, mid-spin, mid-yield,
							// and (occasionally) after the park.
							switch rng.Intn(3) {
							case 0:
							case 1:
								runtime.Gosched()
							case 2:
								time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
							}
							w.Signal(pol)
							close(done)
						}()
						w.Wait(pol, g, nil)
						<-done
						w.Reset()
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestFlagHammer is the queue-node shape: each round raises one flag,
// a gang of waiters descends on it, and a single granter clears it at
// a random point in their descent. Every waiter must wake every round
// (a single missed wake hangs the test).
func TestFlagHammer(t *testing.T) {
	for _, pol := range []*Policy{New(ModeAdaptive), New(ModeArray, WithArraySize(4))} {
		pol := pol
		t.Run(pol.Mode().String(), func(t *testing.T) {
			t.Parallel()
			const waiters = 6
			rounds := hammerRounds(t)
			var f Flag
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < rounds; i++ {
				f.Set(true)
				var wg sync.WaitGroup
				for g := 0; g < waiters; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						f.Wait(pol, g, nil)
					}(g)
				}
				switch rng.Intn(3) {
				case 0:
				case 1:
					runtime.Gosched()
				case 2:
					time.Sleep(time.Duration(rng.Intn(30)) * time.Microsecond)
				}
				f.Clear(pol)
				waitDone(t, &wg, "hammer flag waiters")
			}
		})
	}
}

// TestWaitCondHammer races condition flips against the ladder's sleep
// tail under oversubscription (more goroutines than procs).
func TestWaitCondHammer(t *testing.T) {
	pol := New(ModeAdaptive)
	goroutines := 4 * runtime.GOMAXPROCS(0)
	rounds := hammerRounds(t) / 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var word sync.Map
			for i := 0; i < rounds; i++ {
				key := i
				go func() {
					runtime.Gosched()
					word.Store(key, true)
				}()
				WaitCond(pol, g, nil, func() bool {
					_, ok := word.Load(key)
					return ok
				})
			}
		}(g)
	}
	wg.Wait()
}
