package park

import (
	"testing"
	"time"

	"ollock/internal/obs"
)

// TestParkWaitHistogramRecorded checks both descheduling paths sample
// the park.wait histogram exactly once per park: the channel park in
// waitAdaptive and the timed-sleep ladder in WaitCond.
func TestParkWaitHistogramRecorded(t *testing.T) {
	st := obs.New(obs.WithScopes("park"))
	pol := New(ModeAdaptive, WithStats(st))

	var w Waiter
	done := make(chan struct{})
	go func() {
		w.Wait(pol, 0, nil)
		close(done)
	}()
	for w.state.Load() != wParked {
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(time.Millisecond) // measurable parked dwell
	w.Signal(pol)
	<-done
	h := st.Hist(obs.ParkWait)
	if h.Count() != 1 {
		t.Fatalf("park.wait count after channel park = %d, want 1", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("park.wait sum after 1ms parked dwell = %d, want > 0", h.Sum())
	}

	// Sleep-ladder path: cond stays false long enough to exhaust the
	// hot spin and yield budgets.
	calls := 0
	WaitCond(pol, 0, nil, func() bool {
		calls++
		return calls > hotSpinBudget+yieldBudget+8
	})
	h = st.Hist(obs.ParkWait)
	if h.Count() != 2 {
		t.Fatalf("park.wait count after sleep ladder = %d, want 2", h.Count())
	}
	if got, want := st.Count(obs.ParkPark), st.Count(obs.ParkUnpark); got != want {
		t.Fatalf("park/unpark unbalanced: %d/%d", got, want)
	}
}

// TestParkDurationZeroAllocStatsOff is the statsguard for the duration
// sampling: with no stats block attached, a WaitCond that walks the
// full spin → yield → sleep ladder (park.wait's recording site) must
// not allocate — the timing reads are gated behind Enabled, so the
// stats-off path stays branch-only.
func TestParkDurationZeroAllocStatsOff(t *testing.T) {
	pol := New(ModeAdaptive)
	if n := testing.AllocsPerRun(10, func() {
		calls := 0
		WaitCond(pol, 0, nil, func() bool {
			calls++
			return calls > hotSpinBudget+yieldBudget+8
		})
	}); n != 0 {
		t.Fatalf("stats-off WaitCond sleep path allocates %.1f/op, want 0", n)
	}
}
