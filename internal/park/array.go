// The TWA waiting array (Dice & Kogan, "Transparent Wait Array",
// 2018): a fixed array of cache-line-padded generation counters that
// long-term waiters spin on instead of the shared grant word. Each
// waiter hashes its key to one slot; a releaser bumps exactly that
// slot, so the grant's coherence traffic touches one private line
// instead of invalidating every spinner's copy of the lock word.
//
// Collisions are correctness-neutral by design: two waiters sharing a
// slot both wake on either's grant, re-probe their *own* flags, and the
// one whose grant hasn't landed goes back to the slot. The array can
// therefore be small and fixed — no registration, no reclamation.
package park

import (
	"runtime"

	"ollock/internal/atomicx"
)

// defaultArraySize is the default slot count. TWA uses a few dozen to
// a few hundred slots; 128 padded uint32s is 8 KiB and keeps the
// collision rate negligible below a few hundred concurrent long-term
// waiters.
const defaultArraySize = 128

// WaitingArray is the fixed hashed slot table. Create with
// NewWaitingArray (or implicitly via park.New(ModeArray)).
type WaitingArray struct {
	slots []atomicx.PaddedUint32
	mask  uint32
}

// NewWaitingArray returns an array of n slots, rounded up to a power of
// two; n <= 0 selects the default.
func NewWaitingArray(n int) *WaitingArray {
	if n <= 0 {
		n = defaultArraySize
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &WaitingArray{slots: make([]atomicx.PaddedUint32, size), mask: uint32(size - 1)}
}

// Len returns the slot count.
func (a *WaitingArray) Len() int { return len(a.slots) }

// slot maps a key to its slot index. Keys are sequential counter
// values, so a Fibonacci multiply spreads neighbours across the table.
func (a *WaitingArray) slot(key uint32) uint32 {
	return (key * 2654435761) & a.mask
}

// load reads the key's slot generation.
func (a *WaitingArray) load(key uint32) uint32 {
	return a.slots[a.slot(key)].Load()
}

// bump advances the key's slot generation, waking every waiter spinning
// on that slot.
func (a *WaitingArray) bump(key uint32) {
	a.slots[a.slot(key)].Add(1)
}

// waitChange spins until the key's slot moves past old or done reports
// true. The hot phase matches the direct-spin budget; after it the
// waiter yields between probes, and every yieldBudget yields it
// re-checks done directly — a safety net that bounds the cost of a
// missed bump (impossible under the Dekker protocol, but cheap to
// guard) to a bounded stretch of polite polling.
func (a *WaitingArray) waitChange(key, old uint32, done func() bool) {
	s := &a.slots[a.slot(key)]
	if hotSpin(func() bool { return s.Load() != old }) {
		return
	}
	for i := 0; ; i++ {
		if s.Load() != old {
			return
		}
		if i%yieldBudget == yieldBudget-1 && done() {
			return
		}
		runtime.Gosched()
	}
}
