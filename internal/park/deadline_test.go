package park

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"ollock/internal/obs"
)

func TestDeadlineBasics(t *testing.T) {
	var zero Deadline
	if !zero.None() || zero.Expired() || zero.Canceled() {
		t.Fatal("zero deadline is not the no-bound value")
	}
	past := DeadlineAfter(-time.Second)
	if past.None() || !past.Expired() || past.Canceled() {
		t.Fatal("past deadline did not expire")
	}
	if past.Err() != context.DeadlineExceeded {
		t.Fatalf("expired-by-clock Err = %v", past.Err())
	}
	future := DeadlineAt(time.Now().Add(time.Hour))
	if future.None() || future.Expired() {
		t.Fatal("future deadline expired early")
	}
	ctx, cancel := context.WithCancel(context.Background())
	dl := DeadlineCtx(ctx)
	if dl.None() || dl.Expired() {
		t.Fatal("live context deadline misbehaved")
	}
	cancel()
	if !dl.Expired() || !dl.Canceled() || dl.Err() != context.Canceled {
		t.Fatal("canceled context did not expire the deadline as a cancel")
	}
	// A context with its own deadline is captured so the spin phases can
	// poll the clock instead of calling ctx.Err.
	ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel2()
	if dl2 := DeadlineCtx(ctx2); dl2.t.IsZero() {
		t.Fatal("DeadlineCtx dropped the context's own deadline")
	}
}

func TestParkTimeout(t *testing.T) {
	sem := make(chan struct{}, 1)
	sem <- struct{}{}
	if !DeadlineAfter(time.Hour).ParkTimeout(sem) {
		t.Fatal("available token not consumed")
	}
	if DeadlineAfter(time.Millisecond).ParkTimeout(sem) {
		t.Fatal("empty channel reported a token")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if DeadlineCtx(ctx).ParkTimeout(sem) {
		t.Fatal("canceled context reported a token")
	}
}

// TestWaiterWaitUntil drives the timed waiter through timeout and grant
// under every mode, and pins the re-arm invariant: after a false return
// the same cell must complete a normal Wait/Signal round.
func TestWaiterWaitUntil(t *testing.T) {
	for name, pol := range policies(t) {
		t.Run(name, func(t *testing.T) {
			var w Waiter
			if w.WaitUntil(pol, 0, nil, DeadlineAfter(2*time.Millisecond)) {
				t.Fatal("unsignaled waiter reported granted")
			}
			// Re-armed: a fresh Signal/Wait round on the same cell works.
			done := make(chan struct{})
			go func() {
				w.Wait(pol, 0, nil)
				close(done)
			}()
			time.Sleep(time.Millisecond)
			w.Signal(pol)
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("cell not re-armed after timeout: Wait hung")
			}
			w.Reset()

			// Pre-signaled: granted immediately even with an expired bound.
			w.Signal(pol)
			if !w.WaitUntil(pol, 0, nil, DeadlineAfter(-time.Second)) {
				t.Fatal("pre-signaled waiter reported timeout")
			}
			w.Reset()

			// Zero deadline selects the untimed path and always grants.
			w.Signal(pol)
			if !w.WaitUntil(pol, 0, nil, Deadline{}) {
				t.Fatal("no-bound WaitUntil reported timeout")
			}
		})
	}
}

// TestWaiterWaitUntilCtxCancel pins the context leg: cancellation during
// the park wakes the waiter with a timeout, not a hang.
func TestWaiterWaitUntilCtxCancel(t *testing.T) {
	pol := New(ModeAdaptive)
	var w Waiter
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan bool, 1)
	go func() {
		res <- w.WaitUntil(pol, 0, nil, DeadlineCtx(ctx))
	}()
	time.Sleep(2 * time.Millisecond) // let it reach the park
	cancel()
	select {
	case granted := <-res:
		if granted {
			t.Fatal("canceled wait reported granted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not wake the parked waiter")
	}
}

// TestWaiterTimeoutCounts checks a timed-out wait increments
// park.timeout and a granted one does not.
func TestWaiterTimeoutCounts(t *testing.T) {
	st := obs.New(obs.WithScopes("park"))
	pol := New(ModeAdaptive, WithStats(st))
	var w Waiter
	w.WaitUntil(pol, 0, nil, DeadlineAfter(time.Millisecond))
	if st.Count(obs.ParkTimeout) != 1 {
		t.Fatalf("park.timeout = %d after timeout, want 1", st.Count(obs.ParkTimeout))
	}
	w.Signal(pol)
	w.WaitUntil(pol, 0, nil, DeadlineAfter(time.Hour))
	if st.Count(obs.ParkTimeout) != 1 {
		t.Fatalf("park.timeout = %d after grant, want 1", st.Count(obs.ParkTimeout))
	}
}

// TestWaiterTimeoutSignalRaceHandStepped hand-steps both outcomes of the
// token-validation race the deadline doc describes: the timed-out waiter
// CASes wParked→wIdle while Signal swaps the word and sends only if it
// observed wParked. Exactly one side may own the round.
func TestWaiterTimeoutSignalRaceHandStepped(t *testing.T) {
	pol := New(ModeAdaptive)

	// Step A — timeout wins the word: the CAS lands before Signal's
	// swap, so Signal must see wIdle and send nothing (a send here would
	// strand a token for the cell's next round).
	var w Waiter
	w.sem = make(chan struct{}, 1)
	w.state.Store(wParked)
	if !w.state.CompareAndSwap(wParked, wIdle) {
		t.Fatal("timeout CAS failed with no signaler")
	}
	w.Signal(pol)
	select {
	case <-w.sem:
		t.Fatal("Signal sent a token after losing the state word: stale token")
	default:
	}
	if w.state.Load() != wSignaled {
		t.Fatal("late Signal did not leave the cell signaled")
	}

	// Step B — Signal wins the word: the swap observed wParked, so a
	// send is committed; the waiter's CAS must fail and the token must
	// be there to consume (dropping it is the lost-wakeup bug).
	var w2 Waiter
	w2.sem = make(chan struct{}, 1)
	w2.state.Store(wParked)
	w2.Signal(pol)
	if w2.state.CompareAndSwap(wParked, wIdle) {
		t.Fatal("timeout CAS won after Signal committed")
	}
	select {
	case <-w2.sem:
	default:
		t.Fatal("committed Signal left no token: this is the lost wakeup")
	}
}

// TestFlagTimeoutRaceHandStepped hand-steps the Flag analogue: the
// timed-out waiter cancels its parked record; the granter's sweep only
// sends on records it claimed.
func TestFlagTimeoutRaceHandStepped(t *testing.T) {
	pol := New(ModeAdaptive)

	// Timeout wins: record canceled before the sweep. Clear must skip it.
	var f Flag
	f.Set(true)
	r := &parkRec{sem: make(chan struct{}, 1)}
	f.parked.Store(r)
	if !r.state.CompareAndSwap(recWaiting, recCanceled) {
		t.Fatal("cancel CAS failed with no granter")
	}
	f.Clear(pol)
	select {
	case <-r.sem:
		t.Fatal("sweep sent a wake to a timed-out record")
	default:
	}

	// Granter wins: the sweep claims the record first, so the waiter's
	// cancel CAS fails and the send is there to consume.
	f.Set(true)
	r2 := &parkRec{sem: make(chan struct{}, 1)}
	f.parked.Store(r2)
	f.Clear(pol)
	if r2.state.CompareAndSwap(recWaiting, recCanceled) {
		t.Fatal("cancel CAS won after the sweep claimed the record")
	}
	select {
	case <-r2.sem:
	default:
		t.Fatal("claimed record has no token: lost wakeup")
	}
}

// TestFlagWaitUntil drives the timed flag wait per mode: timeout on a
// raised flag, then a normal Clear round on the same flag (the canceled
// record must not wedge later generations).
func TestFlagWaitUntil(t *testing.T) {
	for name, pol := range policies(t) {
		t.Run(name, func(t *testing.T) {
			var f Flag
			f.Set(true)
			if f.WaitUntil(pol, 0, nil, DeadlineAfter(2*time.Millisecond)) {
				t.Fatal("raised flag reported granted")
			}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				f.Wait(pol, 0, nil)
			}()
			time.Sleep(time.Millisecond)
			f.Clear(pol)
			waitDone(t, &wg, "post-timeout flag waiter")

			// A cleared flag grants instantly even with an expired bound.
			if !f.WaitUntil(pol, 0, nil, DeadlineAfter(-time.Second)) {
				t.Fatal("cleared flag reported timeout")
			}
		})
	}
}

// TestWaitCondUntil covers the condition ladder's timed variant: expiry
// with the condition false, success with it flipping mid-wait.
func TestWaitCondUntil(t *testing.T) {
	for name, pol := range policies(t) {
		t.Run(name, func(t *testing.T) {
			if WaitCondUntil(pol, 0, nil, func() bool { return false }, DeadlineAfter(2*time.Millisecond)) {
				t.Fatal("false condition reported granted")
			}
			var mu sync.Mutex
			flipped := false
			go func() {
				time.Sleep(2 * time.Millisecond)
				mu.Lock()
				flipped = true
				mu.Unlock()
			}()
			if !WaitCondUntil(pol, 0, nil, func() bool {
				mu.Lock()
				defer mu.Unlock()
				return flipped
			}, DeadlineAfter(time.Hour)) {
				t.Fatal("flipping condition reported timeout")
			}
		})
	}
}

// TestWaiterTimeoutHammer races tight deadlines against concurrent
// Signals, per policy, under -race. Every round ends with the signal
// delivered: a waiter that timed out must still be able to Wait out the
// in-flight grant on the re-armed cell, and a stranded or stale token
// would surface as a hang or a spurious early grant in a later round.
func TestWaiterTimeoutHammer(t *testing.T) {
	for _, pol := range []*Policy{New(ModeSpin), New(ModeAdaptive), New(ModeArray, WithArraySize(4))} {
		pol := pol
		t.Run(pol.Mode().String(), func(t *testing.T) {
			t.Parallel()
			const waiters = 8
			rounds := hammerRounds(t)
			var wg sync.WaitGroup
			for g := 0; g < waiters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g) + 100))
					var w Waiter
					for i := 0; i < rounds; i++ {
						// Draw all randomness before spawning: the rng is
						// not safe to share with the signaler goroutine.
						jitter := rng.Intn(3)
						sleep := time.Duration(rng.Intn(50)) * time.Microsecond
						// Deadlines from "already expired" to "past the
						// signal jitter" so timeouts land in every ladder
						// phase, including mid-park.
						d := time.Duration(rng.Intn(60)-10) * time.Microsecond
						done := make(chan struct{})
						go func() {
							switch jitter {
							case 0:
							case 1:
								runtime.Gosched()
							case 2:
								time.Sleep(sleep)
							}
							w.Signal(pol)
							close(done)
						}()
						if !w.WaitUntil(pol, g, nil, DeadlineAfter(d)) {
							w.Wait(pol, g, nil) // grant still in flight; must arrive
						}
						<-done
						w.Reset()
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestFlagTimeoutHammer is the queue-node shape under deadlines: a gang
// descends on one flag with tight expiries, the granter clears at a
// random point, and every waiter must retry its way to a grant each
// round — canceled records accumulating on the list must never cost a
// wake.
func TestFlagTimeoutHammer(t *testing.T) {
	for _, pol := range []*Policy{New(ModeAdaptive), New(ModeArray, WithArraySize(4))} {
		pol := pol
		t.Run(pol.Mode().String(), func(t *testing.T) {
			t.Parallel()
			const waiters = 6
			rounds := hammerRounds(t) / 3
			var f Flag
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < rounds; i++ {
				f.Set(true)
				var wg sync.WaitGroup
				for g := 0; g < waiters; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						grng := rand.New(rand.NewSource(int64(i*waiters + g)))
						for {
							d := time.Duration(grng.Intn(40)-5) * time.Microsecond
							if f.WaitUntil(pol, g, nil, DeadlineAfter(d)) {
								return
							}
						}
					}(g)
				}
				switch rng.Intn(3) {
				case 0:
				case 1:
					runtime.Gosched()
				case 2:
					time.Sleep(time.Duration(rng.Intn(30)) * time.Microsecond)
				}
				f.Clear(pol)
				waitDone(t, &wg, "timed flag waiters")
			}
		})
	}
}
