package park

import (
	"sync"
	"testing"
	"time"

	"ollock/internal/obs"
)

func policies(t *testing.T) map[string]*Policy {
	t.Helper()
	return map[string]*Policy{
		"nil":      nil,
		"spin":     New(ModeSpin),
		"adaptive": New(ModeAdaptive),
		"array":    New(ModeArray),
	}
}

// TestWaiterRoundTrip drives one Wait/Signal/Reset cycle per mode,
// twice, to cover both the fresh and the re-armed waiter.
func TestWaiterRoundTrip(t *testing.T) {
	for name, pol := range policies(t) {
		t.Run(name, func(t *testing.T) {
			var w Waiter
			for round := 0; round < 2; round++ {
				done := make(chan struct{})
				go func() {
					w.Wait(pol, 0, nil)
					close(done)
				}()
				time.Sleep(time.Millisecond)
				w.Signal(pol)
				select {
				case <-done:
				case <-time.After(5 * time.Second):
					t.Fatalf("round %d: waiter never woke", round)
				}
				if !w.Signaled() {
					t.Fatal("Signaled() false after Signal")
				}
				w.Reset()
			}
		})
	}
}

// TestWaiterSignalBeforeWait pins the fast path: a pre-signaled waiter
// returns immediately under every mode.
func TestWaiterSignalBeforeWait(t *testing.T) {
	for name, pol := range policies(t) {
		t.Run(name, func(t *testing.T) {
			var w Waiter
			w.Signal(pol)
			w.Wait(pol, 0, nil) // must not block
		})
	}
}

// TestWaiterAdaptiveParksAndCounts forces a long wait so the adaptive
// waiter walks the full spin → yield → park ladder, and checks the
// park.* counters witnessed it.
func TestWaiterAdaptiveParksAndCounts(t *testing.T) {
	st := obs.New(obs.WithScopes("park"))
	pol := New(ModeAdaptive, WithStats(st))
	var w Waiter
	done := make(chan struct{})
	go func() {
		w.Wait(pol, 0, nil)
		close(done)
	}()
	// Wait until the waiter has actually parked (state wParked), then
	// signal: this exercises the channel hand-off, not the spin phase.
	for w.state.Load() != wParked {
		time.Sleep(100 * time.Microsecond)
	}
	w.Signal(pol)
	<-done
	if st.Count(obs.ParkPark) != 1 || st.Count(obs.ParkUnpark) != 1 {
		t.Fatalf("park/unpark = %d/%d, want 1/1",
			st.Count(obs.ParkPark), st.Count(obs.ParkUnpark))
	}
	if st.Count(obs.ParkYield) != 1 {
		t.Fatalf("park.yield = %d, want 1", st.Count(obs.ParkYield))
	}
}

// TestFlagRoundTrip drives Set/Wait/Clear per mode with several
// concurrent waiters on one flag (the FOLL reader-group shape: every
// group member waits on the same node's flag).
func TestFlagRoundTrip(t *testing.T) {
	for name, pol := range policies(t) {
		t.Run(name, func(t *testing.T) {
			var f Flag
			for round := 0; round < 3; round++ {
				f.Set(true)
				var wg sync.WaitGroup
				for i := 0; i < 4; i++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						f.Wait(pol, id, nil)
					}(i)
				}
				time.Sleep(time.Millisecond)
				f.Clear(pol)
				waitDone(t, &wg, "flag waiters")
				if f.Blocked() {
					t.Fatal("flag still blocked after Clear")
				}
			}
		})
	}
}

func waitDone(t *testing.T, wg *sync.WaitGroup, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s never woke", what)
	}
}

// TestFlagMissedWakeHandStepped is the deterministic regression test
// for the push-then-recheck protocol, hand-stepping both sides of the
// claim/cancel race instead of hoping a hammer hits it.
func TestFlagMissedWakeHandStepped(t *testing.T) {
	pol := New(ModeAdaptive)

	// Step A — granter claims: a record is on the list when Clear runs.
	// Clear must claim it and leave exactly one token in its channel
	// (the waiter, about to block, consumes it without deadlock).
	var f Flag
	f.Set(true)
	r := &parkRec{sem: make(chan struct{}, 1)}
	f.parked.Store(r)
	f.Clear(pol)
	if got := r.state.Load(); got != recClaimed {
		t.Fatalf("record state = %d after Clear, want claimed(%d)", got, recClaimed)
	}
	select {
	case <-r.sem:
	default:
		t.Fatal("claimed record has no wake token: this is the missed-wake bug")
	}

	// Step B — waiter cancels: the record is pushed after Clear's sweep
	// (the waiter's re-check sees the flag cleared and cancels). A later
	// generation's Clear must skip the canceled record and must not
	// send on its channel.
	f.Set(true)
	f.Clear(pol) // generation ends with an empty list
	stale := &parkRec{sem: make(chan struct{}, 1)}
	if !stale.state.CompareAndSwap(recWaiting, recCanceled) {
		t.Fatal("cancel CAS failed on fresh record")
	}
	f.parked.Store(stale)
	f.Set(true)
	f.Clear(pol)
	select {
	case <-stale.sem:
		t.Fatal("Clear sent a wake to a canceled record")
	default:
	}
	if f.parked.Load() != nil {
		t.Fatal("Clear left records on the parked list")
	}
}

// TestWaitCond exercises the condition-wait ladder per mode, including
// the timed-sleep tail (the condition flips only after the yield
// budget is exhausted).
func TestWaitCond(t *testing.T) {
	for name, pol := range policies(t) {
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			flipped := false
			go func() {
				time.Sleep(2 * time.Millisecond)
				mu.Lock()
				flipped = true
				mu.Unlock()
			}()
			WaitCond(pol, 0, nil, func() bool {
				mu.Lock()
				defer mu.Unlock()
				return flipped
			})
		})
	}
}

// TestLadderSpinMatchesBackoff pins the nil-policy Ladder to the legacy
// Backoff behavior (the spin path must stay byte-identical), and checks
// the adaptive ladder escalates without hanging.
func TestLadderSpinMatchesBackoff(t *testing.T) {
	var ld Ladder // nil policy = spin
	for i := 0; i < 20; i++ {
		ld.Pause()
	}
	adaptive := New(ModeAdaptive).Ladder()
	for i := 0; i < yieldBudget+4; i++ {
		adaptive.Pause() // must reach the sleep tail without panicking
	}
	if adaptive.sleep == 0 {
		t.Fatal("adaptive ladder never escalated to the sleep tail")
	}
	adaptive.Reset()
	if adaptive.sleep != 0 || adaptive.yields != 0 {
		t.Fatal("Reset did not restore the ladder's hot phase")
	}
}

// TestWaitingArrayCollision pins collision behavior with a 1-slot
// array: two waiters share the slot, so either's grant wakes both, but
// only the granted one may return — the other must re-probe and keep
// waiting.
func TestWaitingArrayCollision(t *testing.T) {
	pol := New(ModeArray, WithArraySize(1))
	if pol.Array().Len() != 1 {
		t.Fatalf("array len = %d, want 1", pol.Array().Len())
	}
	var w1, w2 Waiter
	done1, done2 := make(chan struct{}), make(chan struct{})
	go func() { w1.Wait(pol, 0, nil); close(done1) }()
	go func() { w2.Wait(pol, 1, nil); close(done2) }()
	time.Sleep(2 * time.Millisecond) // let both reach the array
	w1.Signal(pol)
	select {
	case <-done1:
	case <-time.After(10 * time.Second):
		t.Fatal("granted waiter did not wake on slot bump")
	}
	select {
	case <-done2:
		t.Fatal("ungranted waiter returned on a colliding bump")
	case <-time.After(5 * time.Millisecond):
	}
	w2.Signal(pol)
	select {
	case <-done2:
	case <-time.After(10 * time.Second):
		t.Fatal("second waiter did not wake")
	}
}

// TestFlagKeyStableAcrossRecycle pins that a flag keeps its array slot
// key across Set cycles (recycled FOLL/ROLL nodes must not churn
// through the key space).
func TestFlagKeyStableAcrossRecycle(t *testing.T) {
	var f Flag
	f.Set(true)
	k1 := f.word.Load() >> 1
	f.Clear(nil)
	f.Set(true)
	if k2 := f.word.Load() >> 1; k2 != k1 {
		t.Fatalf("flag key changed across recycle: %d -> %d", k1, k2)
	}
	if k1 == 0 {
		t.Fatal("Set did not assign a slot key")
	}
}
