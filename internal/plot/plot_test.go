package plot

import (
	"strings"
	"testing"
)

func twoSeries() []Series {
	return []Series{
		{Name: "goll", X: []float64{1, 64, 256}, Y: []float64{5e7, 4e8, 1.3e9}},
		{Name: "solaris", X: []float64{1, 64, 256}, Y: []float64{5e7, 1.3e7, 5.6e6}},
	}
}

func TestRenderBasics(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, "Figure 5(a)", twoSeries(), 60, 12); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 5(a)", "G=goll", "S=solaris", "log scale"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 12 grid rows + ticks + legend
	if len(lines) != 1+12+2 {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), 15, out)
	}
	if !strings.Contains(out, "G") || !strings.Contains(out, "S") {
		t.Fatal("markers not drawn")
	}
}

func TestRenderShapeOrientation(t *testing.T) {
	// The rising series' last point must be on a higher row (earlier
	// line) than the falling series' last point.
	var sb strings.Builder
	if err := Render(&sb, "t", twoSeries(), 60, 12); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")[1:13]
	rowOf := func(marker byte) int {
		for i, line := range lines {
			if strings.IndexByte(line[len(line)-10:], marker) >= 0 {
				return i
			}
		}
		return -1
	}
	g, s := rowOf('G'), rowOf('S')
	if g < 0 || s < 0 {
		t.Fatalf("markers not found near the right edge:\n%s", sb.String())
	}
	if g >= s {
		t.Fatalf("rising series (row %d) not above falling series (row %d)", g, s)
	}
}

func TestRenderErrors(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, "t", nil, 60, 12); err == nil {
		t.Fatal("no error for empty input")
	}
	if err := Render(&sb, "t", twoSeries(), 5, 5); err == nil {
		t.Fatal("no error for tiny grid")
	}
	bad := []Series{{Name: "x", X: []float64{1}, Y: []float64{0}}}
	if err := Render(&sb, "t", bad, 60, 12); err == nil {
		t.Fatal("no error for zero y on log scale")
	}
	mismatch := []Series{{Name: "x", X: []float64{1, 2}, Y: []float64{1}}}
	if err := Render(&sb, "t", mismatch, 60, 12); err == nil {
		t.Fatal("no error for length mismatch")
	}
}

func TestRenderSinglePoint(t *testing.T) {
	var sb strings.Builder
	one := []Series{{Name: "x", X: []float64{8}, Y: []float64{1e6}}}
	if err := Render(&sb, "t", one, 40, 8); err != nil {
		t.Fatal(err)
	}
}

func TestMarkersNameBased(t *testing.T) {
	series := []Series{
		{Name: "goll"}, {Name: "foll"}, {Name: "roll"}, {Name: "ksuh"}, {Name: "solaris"},
	}
	got := markers(series)
	want := []byte{'G', 'F', 'R', 'K', 'S'}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("marker[%d] = %c, want %c", i, got[i], want[i])
		}
	}
}

func TestMarkersCollisionFallback(t *testing.T) {
	series := []Series{{Name: "roll"}, {Name: "rwlock"}, {Name: "rr"}}
	got := markers(series)
	seen := map[byte]bool{}
	for _, m := range got {
		if seen[m] {
			t.Fatalf("duplicate marker %c in %v", m, got)
		}
		seen[m] = true
	}
}
