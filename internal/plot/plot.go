// Package plot renders multi-series ASCII charts, used by the
// evaluation commands to show the shape of a Figure 5 panel directly in
// the terminal — the reproduction target is the curves' shape, so being
// able to see it matters more than exact values.
//
// The y axis is logarithmic (the data spans decades), the x axis
// linear, matching how the paper's plots are read.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named curve. X and Y must have equal lengths; Y values
// must be positive (log scale).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers assigns each series a drawing character: the first letter of
// its name uppercased, falling back through the name and then a pool of
// digits on collision.
func markers(series []Series) []byte {
	used := map[byte]bool{}
	out := make([]byte, len(series))
	for i, s := range series {
		assigned := false
		for j := 0; j < len(s.Name) && !assigned; j++ {
			c := upper(s.Name[j])
			if c != ' ' && !used[c] {
				out[i], used[c], assigned = c, true, true
			}
		}
		for c := byte('0'); c <= '9' && !assigned; c++ {
			if !used[c] {
				out[i], used[c], assigned = c, true, true
			}
		}
		if !assigned {
			out[i] = '?'
		}
	}
	return out
}

func upper(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - 'a' + 'A'
	}
	if c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
		return c
	}
	return ' '
}

// Render draws the series into w as a width×height character grid with
// a log-scale y axis and a legend. It returns an error for unusable
// input (no points, nonpositive y, mismatched lengths).
func Render(w io.Writer, title string, series []Series, width, height int) error {
	if width < 20 || height < 5 {
		return fmt.Errorf("plot: grid %dx%d too small", width, height)
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if s.Y[i] <= 0 {
				return fmt.Errorf("plot: series %q has non-positive y %v", s.Name, s.Y[i])
			}
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if first {
		return fmt.Errorf("plot: no points")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	lmin, lmax := math.Log10(ymin), math.Log10(ymax)
	if lmax == lmin {
		lmax = lmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := markers(series)
	for si, s := range series {
		m := marks[si]
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((math.Log10(s.Y[i]) - lmin) / (lmax - lmin) * float64(height-1)))
			r := height - 1 - row
			if grid[r][col] == ' ' || grid[r][col] == m {
				grid[r][col] = m
			} else {
				grid[r][col] = '*' // collision
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s  (y: log scale %.2e..%.2e, x: %g..%g)\n", title, ymin, ymax, xmin, xmax); err != nil {
		return err
	}
	for r := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.0e ", ymax)
		case height - 1:
			label = fmt.Sprintf("%7.0e ", ymin)
		case (height - 1) / 2:
			label = fmt.Sprintf("%7.0e ", math.Pow(10, (lmin+lmax)/2))
		}
		if _, err := fmt.Fprintf(w, "%s|%s|\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	// X tick line: min, mid, max.
	ticks := fmt.Sprintf("%-*s%s", width/2, fmt.Sprintf("%g", xmin), fmt.Sprintf("%g", xmax))
	if _, err := fmt.Fprintf(w, "%9s%s\n", "", ticks); err != nil {
		return err
	}
	// Legend.
	names := make([]string, 0, len(series))
	for si, s := range series {
		names = append(names, fmt.Sprintf("%c=%s", marks[si], s.Name))
	}
	sort.Strings(names)
	_, err := fmt.Fprintf(w, "%9s%s\n", "", strings.Join(names, "  "))
	return err
}
