// Package atomicx provides the low-level shared-memory substrate used by
// the lock implementations in this module: cache-line padded atomic
// words, tunable exponential backoff, and helpers for packing multiple
// logical fields into a single CAS-able 64-bit word.
//
// Every lock in this repository is built from these pieces so that the
// memory layout decisions the paper depends on (one contended word per
// cache line, single-word CAS on composite state) are made in exactly one
// place.
package atomicx

import (
	"runtime"
	"sync/atomic"
)

// CacheLineSize is the assumed size, in bytes, of one cache line. 64 is
// correct for essentially every amd64 and arm64 part; the UltraSPARC T2+
// the paper measured also uses 64-byte L2 lines.
const CacheLineSize = 64

// Pad is inserted between fields that must not share a cache line.
// Embedding struct fields of this type keeps hot words from false
// sharing.
type Pad [CacheLineSize]byte

// PaddedUint64 is an atomic uint64 alone on its cache line. The word is
// both preceded and followed by padding so neighbouring PaddedUint64s in
// a slice never share a line.
type PaddedUint64 struct {
	_ Pad
	v atomic.Uint64
	_ [CacheLineSize - 8]byte
}

// Load atomically loads the value.
func (p *PaddedUint64) Load() uint64 { return p.v.Load() }

// Store atomically stores val.
func (p *PaddedUint64) Store(val uint64) { p.v.Store(val) }

// CompareAndSwap executes the CAS (old -> new), reporting success.
func (p *PaddedUint64) CompareAndSwap(old, new uint64) bool {
	return p.v.CompareAndSwap(old, new)
}

// Add atomically adds delta and returns the new value.
func (p *PaddedUint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// PaddedUint32 is an atomic uint32 alone on its cache line.
type PaddedUint32 struct {
	_ Pad
	v atomic.Uint32
	_ [CacheLineSize - 4]byte
}

// Load atomically loads the value.
func (p *PaddedUint32) Load() uint32 { return p.v.Load() }

// Store atomically stores val.
func (p *PaddedUint32) Store(val uint32) { p.v.Store(val) }

// CompareAndSwap executes the CAS (old -> new), reporting success.
func (p *PaddedUint32) CompareAndSwap(old, new uint32) bool {
	return p.v.CompareAndSwap(old, new)
}

// Add atomically adds delta and returns the new value.
func (p *PaddedUint32) Add(delta uint32) uint32 { return p.v.Add(delta) }

// PaddedBool is an atomic boolean flag alone on its cache line. It backs
// the per-thread "spin" flags of the queue locks: each waiter spins on a
// line nobody else spins on, which is the entire point of MCS-style
// locks.
type PaddedBool struct {
	_ Pad
	v atomic.Uint32
	_ [CacheLineSize - 4]byte
}

// Load atomically loads the flag.
func (p *PaddedBool) Load() bool { return p.v.Load() != 0 }

// Store atomically stores val.
func (p *PaddedBool) Store(val bool) {
	if val {
		p.v.Store(1)
	} else {
		p.v.Store(0)
	}
}

// PaddedPointer is an atomic pointer alone on its cache line.
type PaddedPointer[T any] struct {
	_ Pad
	v atomic.Pointer[T]
	_ [CacheLineSize - 8]byte
}

// Load atomically loads the pointer.
func (p *PaddedPointer[T]) Load() *T { return p.v.Load() }

// Store atomically stores ptr.
func (p *PaddedPointer[T]) Store(ptr *T) { p.v.Store(ptr) }

// CompareAndSwap executes the CAS (old -> new), reporting success.
func (p *PaddedPointer[T]) CompareAndSwap(old, new *T) bool {
	return p.v.CompareAndSwap(old, new)
}

// Swap atomically stores ptr and returns the previous value. This is the
// FetchAndStore primitive of the MCS lock.
func (p *PaddedPointer[T]) Swap(ptr *T) *T { return p.v.Swap(ptr) }

// Backoff implements bounded exponential backoff for CAS retry loops.
//
// The paper tunes backoff independently per lock (§5.1); the Min/Max
// knobs here are those tuning points. A Backoff value is cheap and is
// meant to live on the stack of one acquisition attempt.
//
// The zero value is ready to use with library defaults.
type Backoff struct {
	// Min is the initial number of spin iterations (default 4).
	Min int
	// Max caps the spin iterations per pause (default 1024).
	Max int

	cur int
}

// defaultBackoff{Min,Max} are the library defaults, chosen so that the
// uncontended path pays nothing and heavy contention quickly reaches the
// yield point.
const (
	defaultBackoffMin = 4
	defaultBackoffMax = 1024
)

// MaxBackoffSpins is the hard ceiling on spin iterations per Pause,
// regardless of how large a Max the caller configures: 2^16 spin-hint
// iterations is tens of microseconds on any current part, past which
// more spinning only delays the yield that actually makes progress.
// The cap bounds the pause exponent to MaxBackoffExponent doublings
// from a Min of 1.
const MaxBackoffSpins = 1 << MaxBackoffExponent

// MaxBackoffExponent is log2(MaxBackoffSpins), the pinned maximum
// number of doublings a Backoff can perform.
const MaxBackoffExponent = 16

// Pause spins for the current backoff duration and doubles it, up to Max.
// Once the duration saturates, Pause also yields the processor so that
// oversubscribed goroutines cannot livelock each other.
func (b *Backoff) Pause() {
	if b.cur == 0 {
		b.cur = b.Min
		if b.cur <= 0 {
			b.cur = defaultBackoffMin
		}
	}
	limit := b.Max
	if limit <= 0 {
		limit = defaultBackoffMax
	}
	if limit > MaxBackoffSpins {
		limit = MaxBackoffSpins
	}
	for i := 0; i < b.cur; i++ {
		procYieldHint()
	}
	if b.cur < limit {
		b.cur *= 2
		if b.cur > limit {
			b.cur = limit
		}
	} else {
		// Saturated: let someone else run. Required for progress when
		// goroutines outnumber GOMAXPROCS.
		runtime.Gosched()
	}
}

// Reset restores the backoff to its initial duration. Call it after a
// successful CAS if the same Backoff value will be reused.
func (b *Backoff) Reset() { b.cur = 0 }

// Spins returns the spin count the next Pause will use (0 before the
// first Pause). Exposed so tests can pin the growth cap.
func (b *Backoff) Spins() int { return b.cur }

// procYieldHint is a CPU-friendly busy-wait body. Without access to the
// PAUSE instruction from pure Go we use a small guaranteed-not-optimized
// atomic operation on a private word; its latency is a few cycles, which
// is what we want from a spin body.
func procYieldHint() {
	spinSink.Add(0)
}

// ProcYield is the exported spin-loop body for busy-wait loops built
// outside this package (internal/park's wait ladders): one cheap,
// guaranteed-not-optimized step of a polite hot spin.
func ProcYield() { procYieldHint() }

var spinSink atomic.Uint64

// SpinUntil spins until cond() reports true, with escalating politeness:
// a short hot spin, then spin-with-yield. It is the shared busy-wait used
// by every "repeat until flag" loop in the lock pseudocode. The caller's
// condition must eventually be made true by another goroutine.
func SpinUntil(cond func() bool) {
	// Phase 1: hot spin. Cheap when the wait is short (handoff already in
	// progress).
	for i := 0; i < 64; i++ {
		if cond() {
			return
		}
		procYieldHint()
	}
	// Phase 2: yield between probes. Keeps the scheduler moving when the
	// flag owner is descheduled (or when GOMAXPROCS=1).
	for !cond() {
		runtime.Gosched()
	}
}
