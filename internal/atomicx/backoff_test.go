package atomicx

import "testing"

// TestBackoffGrowthCapped pins the explicit growth ceiling: no matter
// how large a Max the caller configures, the per-Pause spin count never
// exceeds MaxBackoffSpins = 2^MaxBackoffExponent.
func TestBackoffGrowthCapped(t *testing.T) {
	b := Backoff{Min: 1, Max: 1 << 30}
	for i := 0; i < MaxBackoffExponent+8; i++ {
		b.Pause()
		if b.Spins() > MaxBackoffSpins {
			t.Fatalf("pause %d: spin count %d exceeds cap %d", i, b.Spins(), MaxBackoffSpins)
		}
	}
	if b.Spins() != MaxBackoffSpins {
		t.Fatalf("saturated spin count = %d, want the cap %d", b.Spins(), MaxBackoffSpins)
	}
}

// TestBackoffMaxExponent pins the exponent itself: from Min=1 the
// backoff performs exactly MaxBackoffExponent doublings before
// saturating, i.e. the pause sequence is 1, 2, 4, ..., 2^16.
func TestBackoffMaxExponent(t *testing.T) {
	b := Backoff{Min: 1, Max: MaxBackoffSpins}
	doublings := 0
	prev := 1 // the first Pause spins Min=1 times, then doubles
	for i := 0; i < MaxBackoffExponent+8; i++ {
		b.Pause()
		if cur := b.Spins(); cur > prev {
			if cur != 2*prev {
				t.Fatalf("growth step %d -> %d is not a doubling", prev, cur)
			}
			doublings++
			prev = cur
		}
	}
	if doublings != MaxBackoffExponent {
		t.Fatalf("backoff performed %d doublings, want exactly %d", doublings, MaxBackoffExponent)
	}
}

// TestBackoffDefaultsUnchanged pins the library defaults (Min 4, Max
// 1024): the tuning the existing locks were measured with must not
// drift when the cap machinery changes.
func TestBackoffDefaultsUnchanged(t *testing.T) {
	var b Backoff
	b.Pause()
	if b.Spins() != 2*defaultBackoffMin {
		t.Fatalf("first default pause left spin count %d, want %d", b.Spins(), 2*defaultBackoffMin)
	}
	for i := 0; i < 20; i++ {
		b.Pause()
	}
	if b.Spins() != defaultBackoffMax {
		t.Fatalf("saturated default spin count = %d, want %d", b.Spins(), defaultBackoffMax)
	}
	b.Reset()
	if b.Spins() != 0 {
		t.Fatal("Reset did not clear the spin count")
	}
}
