package atomicx

import (
	"sync"
	"testing"
	"unsafe"
)

func TestPaddedUint64Size(t *testing.T) {
	var p PaddedUint64
	if got := unsafe.Sizeof(p); got < 2*CacheLineSize {
		t.Errorf("PaddedUint64 size = %d, want >= %d (word must not share a line with neighbours)", got, 2*CacheLineSize)
	}
}

func TestPaddedUint64SliceNoSharing(t *testing.T) {
	s := make([]PaddedUint64, 4)
	for i := 0; i < len(s)-1; i++ {
		a := uintptr(unsafe.Pointer(&s[i].v))
		b := uintptr(unsafe.Pointer(&s[i+1].v))
		if b-a < CacheLineSize {
			t.Errorf("words %d and %d are %d bytes apart, want >= %d", i, i+1, b-a, CacheLineSize)
		}
	}
}

func TestPaddedUint64Ops(t *testing.T) {
	var p PaddedUint64
	if p.Load() != 0 {
		t.Fatal("zero value must load 0")
	}
	p.Store(42)
	if p.Load() != 42 {
		t.Fatalf("Load = %d, want 42", p.Load())
	}
	if !p.CompareAndSwap(42, 43) {
		t.Fatal("CAS(42,43) should succeed")
	}
	if p.CompareAndSwap(42, 44) {
		t.Fatal("CAS(42,44) should fail: value is 43")
	}
	if got := p.Add(7); got != 50 {
		t.Fatalf("Add returned %d, want 50", got)
	}
}

func TestPaddedUint32Ops(t *testing.T) {
	var p PaddedUint32
	p.Store(5)
	if !p.CompareAndSwap(5, 6) || p.Load() != 6 {
		t.Fatal("CAS/Load mismatch")
	}
	if got := p.Add(4); got != 10 {
		t.Fatalf("Add returned %d, want 10", got)
	}
}

func TestPaddedBool(t *testing.T) {
	var b PaddedBool
	if b.Load() {
		t.Fatal("zero value must be false")
	}
	b.Store(true)
	if !b.Load() {
		t.Fatal("Store(true) not visible")
	}
	b.Store(false)
	if b.Load() {
		t.Fatal("Store(false) not visible")
	}
}

func TestPaddedPointer(t *testing.T) {
	var p PaddedPointer[int]
	x, y := new(int), new(int)
	if p.Load() != nil {
		t.Fatal("zero value must be nil")
	}
	p.Store(x)
	if p.Load() != x {
		t.Fatal("Store/Load mismatch")
	}
	if !p.CompareAndSwap(x, y) || p.Load() != y {
		t.Fatal("CAS failed")
	}
	if got := p.Swap(x); got != y {
		t.Fatalf("Swap returned %p, want %p", got, y)
	}
	if p.Load() != x {
		t.Fatal("Swap did not store")
	}
}

func TestPaddedPointerConcurrentSwap(t *testing.T) {
	// Every stored pointer must be returned by exactly one Swap (chain
	// property of FetchAndStore: the returned values plus the final value
	// form a permutation of all stored values plus the initial nil).
	const n = 64
	var p PaddedPointer[int]
	vals := make([]*int, n)
	for i := range vals {
		vals[i] = new(int)
	}
	got := make([]*int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = p.Swap(vals[i])
		}(i)
	}
	wg.Wait()
	seen := map[*int]int{}
	for _, g := range got {
		seen[g]++
	}
	seen[p.Load()]++
	if seen[nil] != 1 {
		t.Fatalf("initial nil seen %d times, want 1", seen[nil])
	}
	for i, v := range vals {
		if seen[v] != 1 {
			t.Fatalf("value %d seen %d times, want exactly 1", i, seen[v])
		}
	}
}

func TestBackoffGrowsAndSaturates(t *testing.T) {
	b := Backoff{Min: 2, Max: 8}
	b.Pause()
	if b.cur != 4 {
		t.Fatalf("after first pause cur = %d, want 4", b.cur)
	}
	b.Pause()
	if b.cur != 8 {
		t.Fatalf("after second pause cur = %d, want 8", b.cur)
	}
	b.Pause() // saturated; must not exceed Max
	if b.cur != 8 {
		t.Fatalf("after saturation cur = %d, want 8", b.cur)
	}
	b.Reset()
	if b.cur != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	b.Pause() // must not panic or spin forever
	if b.cur != 2*defaultBackoffMin {
		t.Fatalf("cur = %d, want %d", b.cur, 2*defaultBackoffMin)
	}
}

func TestBackoffClampsNonPositiveBounds(t *testing.T) {
	// Min <= 0 falls back to defaultBackoffMin, Max <= 0 to
	// defaultBackoffMax; negative values must behave like the zero value,
	// not spin backwards or cap growth at nothing.
	b := Backoff{Min: -5, Max: -5}
	b.Pause()
	if b.cur != 2*defaultBackoffMin {
		t.Fatalf("after first pause cur = %d, want %d", b.cur, 2*defaultBackoffMin)
	}
	for i := 0; i < 20; i++ {
		b.Pause()
	}
	if b.cur != defaultBackoffMax {
		t.Fatalf("saturated cur = %d, want default max %d", b.cur, defaultBackoffMax)
	}
}

func TestSpinUntilImmediate(t *testing.T) {
	calls := 0
	SpinUntil(func() bool { calls++; return true })
	if calls != 1 {
		t.Fatalf("cond called %d times, want 1", calls)
	}
}

func TestSpinUntilCrossGoroutine(t *testing.T) {
	var flag PaddedBool
	done := make(chan struct{})
	go func() {
		SpinUntil(flag.Load)
		close(done)
	}()
	flag.Store(true)
	<-done
}
