// Package mcs implements the Mellor-Crummey & Scott queue locks: the
// classic MCS mutex (ASPLOS/TOCS '91) that the paper's distributed-queue
// locks extend, and the MCS fair reader-writer lock (PPoPP '91) that is
// the direct ancestor of the FOLL lock.
//
// In both, waiting threads form an implicit queue of per-thread nodes
// and each thread busy-waits on a flag in its own node, so waiting
// causes no cache-coherence traffic; the single globally contended word
// is the queue's tail pointer.
package mcs

import (
	"ollock/internal/atomicx"
)

// MutexNode is a queue node for Mutex. Each goroutine owns one node per
// lock it waits on; a node is reusable after Unlock returns.
type MutexNode struct {
	next   atomicx.PaddedPointer[MutexNode]
	locked atomicx.PaddedBool
}

// Mutex is an MCS queue mutex. The zero value is unlocked.
type Mutex struct {
	tail atomicx.PaddedPointer[MutexNode]
}

// NewMutex returns an unlocked MCS mutex.
func NewMutex() *Mutex { return &Mutex{} }

// Lock acquires the mutex using n as this thread's queue node. The same
// node must be passed to Unlock.
func (m *Mutex) Lock(n *MutexNode) {
	n.next.Store(nil)
	n.locked.Store(true)
	pred := m.tail.Swap(n)
	if pred == nil {
		return // lock was free
	}
	pred.next.Store(n)
	atomicx.SpinUntil(func() bool { return !n.locked.Load() })
}

// Unlock releases the mutex. n must be the node passed to Lock.
func (m *Mutex) Unlock(n *MutexNode) {
	if n.next.Load() == nil {
		if m.tail.CompareAndSwap(n, nil) {
			return // no successor
		}
		// A successor is in the middle of enqueuing; wait for its link.
		atomicx.SpinUntil(func() bool { return n.next.Load() != nil })
	}
	n.next.Load().locked.Store(false)
}
