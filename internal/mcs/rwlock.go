package mcs

import (
	"ollock/internal/atomicx"
)

// This file implements the Mellor-Crummey & Scott fair (FIFO)
// reader-writer lock from "Scalable reader-writer synchronization for
// shared-memory multiprocessors" (PPoPP '91) — the prior-work extension
// of the MCS mutex discussed in the paper's introduction. Readers and
// writers enqueue per-thread nodes; a reader may proceed alongside an
// active reader predecessor; the lock keeps a central count of active
// readers and a pointer to the next writer, which is exactly the
// serialization on reads the OLL locks eliminate.

// Node classes.
const (
	classReader uint32 = iota
	classWriter
)

// Per-node state word: bit 0 = blocked, bits 1-2 = successor class.
const (
	stBlocked     = uint32(1)
	succNone      = uint32(0) << 1
	succReader    = uint32(1) << 1
	succWriter    = uint32(2) << 1
	succClassMask = uint32(3) << 1
)

// RWNode is the per-thread queue node for RWLock. A goroutine needs one
// node per lock; it is reusable as soon as the matching unlock returns.
type RWNode struct {
	class uint32 // written by the owner before publishing the node
	next  atomicx.PaddedPointer[RWNode]
	state atomicx.PaddedUint32
}

func (n *RWNode) blocked() bool { return n.state.Load()&stBlocked != 0 }

// clearBlocked clears the blocked bit, preserving the successor class.
func (n *RWNode) clearBlocked() {
	for {
		old := n.state.Load()
		if n.state.CompareAndSwap(old, old&^stBlocked) {
			return
		}
	}
}

// setSuccWriter records that the (unique) successor is a writer,
// preserving the blocked bit.
func (n *RWNode) setSuccWriter() {
	for {
		old := n.state.Load()
		if n.state.CompareAndSwap(old, (old&^succClassMask)|succWriter) {
			return
		}
	}
}

// RWLock is the MCS fair reader-writer lock. Use NewRWLock.
type RWLock struct {
	tail        atomicx.PaddedPointer[RWNode]
	readerCount atomicx.PaddedUint32
	nextWriter  atomicx.PaddedPointer[RWNode]
}

// NewRWLock returns an unlocked MCS reader-writer lock.
func NewRWLock() *RWLock { return &RWLock{} }

// RLock acquires the lock for reading using n as the thread's queue
// node.
func (l *RWLock) RLock(n *RWNode) {
	n.class = classReader
	n.next.Store(nil)
	n.state.Store(stBlocked | succNone)
	pred := l.tail.Swap(n)
	if pred == nil {
		l.readerCount.Add(1)
		n.clearBlocked()
	} else if pred.class == classWriter ||
		pred.state.CompareAndSwap(stBlocked|succNone, stBlocked|succReader) {
		// pred is a writer, or a still-blocked reader: it will wake us
		// (and count us) when it acquires/releases.
		pred.next.Store(n)
		atomicx.SpinUntil(func() bool { return !n.blocked() })
	} else {
		// pred is an active reader: count ourselves in and go.
		l.readerCount.Add(1)
		pred.next.Store(n)
		n.clearBlocked()
	}
	// Chain wake: if a reader queued behind us while we were blocked, it
	// registered as succReader; admit it now.
	if n.state.Load()&succClassMask == succReader {
		atomicx.SpinUntil(func() bool { return n.next.Load() != nil })
		l.readerCount.Add(1)
		n.next.Load().clearBlocked()
	}
}

// RUnlock releases a read acquisition.
func (l *RWLock) RUnlock(n *RWNode) {
	if n.next.Load() != nil || !l.tail.CompareAndSwap(n, nil) {
		// Wait until the successor's link is visible.
		atomicx.SpinUntil(func() bool { return n.next.Load() != nil })
		if n.state.Load()&succClassMask == succWriter {
			l.nextWriter.Store(n.next.Load())
		}
	}
	if l.readerCount.Add(^uint32(0)) == 0 {
		// Last active reader: wake the next writer, if registered.
		if w := l.nextWriter.Swap(nil); w != nil {
			w.clearBlocked()
		}
	}
}

// Lock acquires the lock for writing using n as the thread's queue node.
func (l *RWLock) Lock(n *RWNode) {
	n.class = classWriter
	n.next.Store(nil)
	n.state.Store(stBlocked | succNone)
	pred := l.tail.Swap(n)
	if pred == nil {
		l.nextWriter.Store(n)
		if l.readerCount.Load() == 0 && l.nextWriter.Swap(nil) == n {
			// No active readers and nobody raced to wake us: go.
			n.clearBlocked()
		}
	} else {
		// Successor class must be visible before the link (the
		// predecessor inspects it as soon as it sees next != nil).
		pred.setSuccWriter()
		pred.next.Store(n)
	}
	atomicx.SpinUntil(func() bool { return !n.blocked() })
}

// Unlock releases a write acquisition.
func (l *RWLock) Unlock(n *RWNode) {
	if n.next.Load() != nil || !l.tail.CompareAndSwap(n, nil) {
		atomicx.SpinUntil(func() bool { return n.next.Load() != nil })
		succ := n.next.Load()
		if succ.class == classReader {
			l.readerCount.Add(1)
		}
		succ.clearBlocked()
	}
}

// TryRLock acquires for reading without waiting, using n as the
// thread's queue node; it reports success. Conservative: it succeeds
// only when the queue is empty (an active writer or any waiter keeps
// its node queued, so an empty tail means readers-only or free).
func (l *RWLock) TryRLock(n *RWNode) bool {
	if l.tail.Load() != nil {
		return false
	}
	n.class = classReader
	n.next.Store(nil)
	n.state.Store(stBlocked | succNone)
	if !l.tail.CompareAndSwap(nil, n) {
		return false
	}
	l.readerCount.Add(1)
	n.clearBlocked()
	// Chain wake, as in RLock: admit a reader that queued behind us
	// while we were publishing.
	if n.state.Load()&succClassMask == succReader {
		atomicx.SpinUntil(func() bool { return n.next.Load() != nil })
		l.readerCount.Add(1)
		n.next.Load().clearBlocked()
	}
	return true
}

// TryLock acquires for writing without waiting, using n as the thread's
// queue node; it reports success. Conservative: it succeeds only when
// the queue is empty and no reader is active. A reader in the middle of
// its release (queue node gone, count not yet decremented) can make the
// enqueue land before the count reaches zero; the residual wait is
// bounded by that release, which then hands the lock to us.
func (l *RWLock) TryLock(n *RWNode) bool {
	if l.readerCount.Load() != 0 || l.tail.Load() != nil {
		return false
	}
	n.class = classWriter
	n.next.Store(nil)
	n.state.Store(stBlocked | succNone)
	if !l.tail.CompareAndSwap(nil, n) {
		return false
	}
	l.nextWriter.Store(n)
	if l.readerCount.Load() == 0 && l.nextWriter.Swap(nil) == n {
		n.clearBlocked()
	}
	atomicx.SpinUntil(func() bool { return !n.blocked() })
	return true
}

// Readers returns the active reader count (diagnostic).
func (l *RWLock) Readers() int { return int(int32(l.readerCount.Load())) }
