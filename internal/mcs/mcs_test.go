package mcs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMutexExclusion(t *testing.T) {
	m := NewMutex()
	counter := 0
	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n MutexNode
			for i := 0; i < iters; i++ {
				m.Lock(&n)
				counter++
				m.Unlock(&n)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

func TestMutexUncontendedReuse(t *testing.T) {
	m := NewMutex()
	var n MutexNode
	for i := 0; i < 1000; i++ {
		m.Lock(&n)
		m.Unlock(&n)
	}
}

// TestMutexFIFO verifies queue order: threads that enqueue in a known
// order acquire in that order.
func TestMutexFIFO(t *testing.T) {
	m := NewMutex()
	var holder MutexNode
	m.Lock(&holder)

	const waiters = 4
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var n MutexNode
			m.Lock(&n)
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			m.Unlock(&n)
		}(i)
		time.Sleep(10 * time.Millisecond) // serialize enqueue order
	}
	m.Unlock(&holder)
	wg.Wait()
	for i, id := range order {
		if id != i {
			t.Fatalf("acquisition order %v, want FIFO", order)
		}
	}
}

func TestRWReadersShare(t *testing.T) {
	l := NewRWLock()
	var n1, n2 RWNode
	l.RLock(&n1)
	done := make(chan struct{})
	go func() {
		l.RLock(&n2)
		close(done)
		l.RUnlock(&n2)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("second reader blocked behind first")
	}
	l.RUnlock(&n1)
	if l.Readers() != 0 {
		t.Fatalf("Readers = %d after all released", l.Readers())
	}
}

func TestRWWriterExcludesReader(t *testing.T) {
	l := NewRWLock()
	var w RWNode
	l.Lock(&w)
	acquired := make(chan struct{})
	go func() {
		var r RWNode
		l.RLock(&r)
		close(acquired)
		l.RUnlock(&r)
	}()
	select {
	case <-acquired:
		t.Fatal("reader acquired during write hold")
	case <-time.After(50 * time.Millisecond):
	}
	l.Unlock(&w)
	<-acquired
}

// TestRWFIFOFairness: a reader arriving after a queued writer waits for
// that writer (no reader barging), per the MCS fair variant.
func TestRWFIFOFairness(t *testing.T) {
	l := NewRWLock()
	var r1 RWNode
	l.RLock(&r1)

	writerIn := make(chan struct{})
	writerOut := make(chan struct{})
	go func() {
		var w RWNode
		l.Lock(&w)
		close(writerIn)
		time.Sleep(10 * time.Millisecond)
		l.Unlock(&w)
		close(writerOut)
	}()
	time.Sleep(30 * time.Millisecond) // writer is queued behind r1

	readerIn := make(chan struct{})
	go func() {
		var r2 RWNode
		l.RLock(&r2)
		close(readerIn)
		l.RUnlock(&r2)
	}()
	select {
	case <-readerIn:
		t.Fatal("late reader overtook queued writer (FIFO violated)")
	case <-time.After(30 * time.Millisecond):
	}

	l.RUnlock(&r1) // writer proceeds, then the late reader
	<-writerIn
	<-writerOut
	select {
	case <-readerIn:
	case <-time.After(20 * time.Second):
		t.Fatal("late reader never granted")
	}
}

// TestRWChainAdmission: a run of readers queued behind a writer is
// admitted together when the writer releases (successor chain wake).
func TestRWChainAdmission(t *testing.T) {
	l := NewRWLock()
	var w RWNode
	l.Lock(&w)
	const readers = 4
	var active atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n RWNode
			l.RLock(&n)
			active.Add(1)
			for active.Load() < readers {
				time.Sleep(time.Millisecond)
			}
			l.RUnlock(&n)
		}()
	}
	time.Sleep(30 * time.Millisecond)
	l.Unlock(&w)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatalf("reader chain stalled: %d admitted", active.Load())
	}
}

func TestRWMixedStress(t *testing.T) {
	l := NewRWLock()
	var a, b int64
	const goroutines, iters = 8, 1500
	var wg sync.WaitGroup
	var bad atomic.Int32
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var n RWNode
			for i := 0; i < iters; i++ {
				if (i+id)%4 != 0 {
					l.RLock(&n)
					if a != b {
						bad.Add(1)
					}
					l.RUnlock(&n)
				} else {
					l.Lock(&n)
					a++
					b++
					l.Unlock(&n)
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d exclusion violations", bad.Load())
	}
}
