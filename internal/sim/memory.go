package sim

import "math/bits"

// Word is one simulated shared-memory word, assumed to occupy its own
// cache line (the real lock implementations pad their hot words the same
// way). Its coherence metadata tracks which threads hold valid copies so
// each access can be charged the right latency.
//
// Words must be created by Machine.NewWord and accessed only through Ctx
// primitives during Run.
type Word struct {
	id  int
	val uint64
	// Coherence is tracked at core granularity: the hardware threads of
	// one core share a cache (the T2+ L1), so a line resident in a core
	// is a hit for every thread of that core.
	//
	// ownerCore is the core holding the line exclusively (-1 none).
	ownerCore int32
	// lastWriterCore is the core of the last writer (-1 = only memory
	// has it); a missing copy is sourced from there.
	lastWriterCore int32
	// lastToucher is the thread that last accessed the line; a repeat
	// access by the same thread is a private hit (CostLocal), while a
	// same-core hit by a different thread costs CostCore.
	lastToucher int32
	// sharers is a bitset over core ids holding a valid shared copy.
	sharers []uint64
	// watchers are threads parked in SpinUntil on this word.
	watchers []*thread
	// lineFreeAt is the virtual time at which the line finishes its
	// current transfer: ownership transfers and writes of one line
	// serialize (a line has one owner at a time), which is the physical
	// mechanism behind "serializing updates to central data structures".
	lineFreeAt int64
}

// NewWord allocates a word initialized to val, resident only in memory.
func (m *Machine) NewWord(val uint64) *Word {
	m.words++
	cores := m.cfg.Chips * m.cfg.ThreadsPerChip / m.cfg.ThreadsPerCore
	return &Word{
		id:             m.words - 1,
		val:            val,
		ownerCore:      -1,
		lastWriterCore: -1,
		lastToucher:    -1,
		sharers:        make([]uint64, (cores+63)/64),
	}
}

// Words returns how many words have been allocated (diagnostic).
func (m *Machine) Words() int { return m.words }

// ID returns the word's allocation index, the identifier used in traced
// events.
func (w *Word) ID() int { return w.id }

// Init sets a word's value during setup, before Machine.Run, at no
// simulated cost. It must not be called once the simulation is running.
func (w *Word) Init(v uint64) { w.val = v }

// Value returns the word's current value without simulation accounting;
// for assertions in tests and post-run inspection.
func (w *Word) Value() uint64 { return w.val }

func (w *Word) sharerHas(id int) bool {
	return w.sharers[id/64]&(1<<(id%64)) != 0
}

func (w *Word) sharerAdd(id int) {
	w.sharers[id/64] |= 1 << (id % 64)
}

func (w *Word) sharersClear() {
	for i := range w.sharers {
		w.sharers[i] = 0
	}
}

func (w *Word) sharersEmptyExcept(id int) bool {
	for i, bits := range w.sharers {
		if i == id/64 {
			bits &^= 1 << (id % 64)
		}
		if bits != 0 {
			return false
		}
	}
	return true
}

// Transfer distance classes (between cores).
const (
	distNone   = 0 // no cached copy involved
	distChip   = 1 // between cores of one chip (L2)
	distRemote = 2 // across chips (coherency hubs) or memory
)

// coreDistance classifies a transfer from core `from` to thread `to`;
// from < 0 means the data comes from memory.
func (m *Machine) coreDistance(from int, to *thread) int {
	if from < 0 {
		return distRemote
	}
	coresPerChip := m.cfg.ThreadsPerChip / m.cfg.ThreadsPerCore
	if from/coresPerChip == to.chip {
		return distChip
	}
	return distRemote
}

// distCost maps a distance class to its latency.
func (m *Machine) distCost(d int) int64 {
	if d == distChip {
		return m.cfg.CostShared
	}
	return m.cfg.CostRemote
}

// hitCost is the latency of an access served by the caller's own core:
// a private hit if this thread touched the line last, otherwise an
// intra-core (shared L1) hit.
func (m *Machine) hitCost(w *Word, t *thread) int64 {
	if int(w.lastToucher) == t.id {
		return m.cfg.CostLocal
	}
	return m.cfg.CostCore
}

// maxSharerDistance returns the worst transfer class needed to
// invalidate every cached copy outside the writer's core.
func (w *Word) maxSharerDistance(m *Machine, writer *thread) int {
	worst := distNone
	if w.ownerCore >= 0 && int(w.ownerCore) != writer.core {
		worst = m.coreDistance(int(w.ownerCore), writer)
	}
	for i, word := range w.sharers {
		for word != 0 {
			idx := i*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if idx == writer.core {
				continue
			}
			d := m.coreDistance(idx, writer)
			if d > worst {
				worst = d
				if worst == distRemote {
					return worst
				}
			}
		}
	}
	return worst
}

// Ctx is a simulated thread's handle for shared-memory access. One Ctx
// is passed to each spawned body; it must not be used from any other
// goroutine.
type Ctx struct {
	m *Machine
	t *thread
}

// ID returns the simulated thread's id (0-based, packed onto chips in
// order).
func (c *Ctx) ID() int { return c.t.id }

// Chip returns the chip this thread runs on.
func (c *Ctx) Chip() int { return c.t.chip }

// Now returns the thread's current virtual clock (cycles).
func (c *Ctx) Now() int64 { return c.t.clock }

// sync hands the baton to the scheduler and waits for this thread's next
// turn, charging the per-primitive instruction cost plus jitter.
func (c *Ctx) sync() {
	c.t.clock += c.m.cfg.CostOp + c.jitter()
	c.t.state = stateReady
	c.m.stepDone <- c.t
	<-c.t.grant
}

// jitter returns this primitive's deterministic pseudo-random extra
// cycles (0..Config.Jitter), from a per-thread splitmix64 stream.
func (c *Ctx) jitter() int64 {
	j := c.m.cfg.Jitter
	if j <= 0 {
		return 0
	}
	z := c.t.rng + 0x9E3779B97F4A7C15
	c.t.rng = z
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z % uint64(j+1))
}

// charge advances the thread's clock by cost; accesses that move or
// mutate the line (occupy=true) additionally serialize through the
// line's transfer queue.
func (c *Ctx) charge(w *Word, cost int64, occupy bool) {
	t := c.t
	if occupy {
		start := t.clock
		if w.lineFreeAt > start {
			start = w.lineFreeAt
		}
		t.clock = start + cost
		w.lineFreeAt = t.clock
	} else {
		t.clock += cost
	}
}

// readCost charges the latency of reading w and updates its coherence
// metadata. Reads never occupy the line: once a written line is
// re-shared, refills are served in parallel (banked L2s, cache-to-cache
// forwarding); only ownership transfers serialize.
func (c *Ctx) readCost(w *Word) {
	t := c.t
	t.accesses++
	if int(w.ownerCore) == t.core || w.sharerHas(t.core) {
		c.charge(w, c.m.hitCost(w, t), false)
	} else {
		d := c.m.coreDistance(int(w.lastWriterCore), t)
		c.charge(w, c.m.distCost(d), false)
		if d == distRemote {
			t.remote++
		}
	}
	// The line becomes shared; a previous exclusive owner core is
	// downgraded.
	if w.ownerCore >= 0 && int(w.ownerCore) != t.core {
		w.sharerAdd(int(w.ownerCore))
		w.ownerCore = -1
	}
	w.sharerAdd(t.core)
	w.lastToucher = int32(t.id)
}

// writeCost charges the latency of gaining exclusive ownership of w for
// the caller's core (read-for-ownership + invalidations) and updates its
// metadata.
func (c *Ctx) writeCost(w *Word) {
	t := c.t
	t.accesses++
	switch {
	case int(w.ownerCore) == t.core:
		c.charge(w, c.m.hitCost(w, t), true)
	case w.sharerHas(t.core) && w.sharersEmptyExcept(t.core) && w.ownerCore < 0:
		// Sole sharing core upgrading to exclusive: no transfer needed.
		c.charge(w, c.m.hitCost(w, t), true)
	default:
		// Fetch the line from its last writer core (or memory) and
		// invalidate every other copy; charge the worst transfer.
		d := c.m.coreDistance(int(w.lastWriterCore), t)
		if inv := w.maxSharerDistance(c.m, t); inv > d {
			d = inv
		}
		c.charge(w, c.m.distCost(d), true)
		if d == distRemote {
			t.remote++
		}
	}
	w.ownerCore = int32(t.core)
	w.lastWriterCore = int32(t.core)
	w.lastToucher = int32(t.id)
	w.sharersClear()
	w.sharerAdd(t.core)
}

// wake unparks every watcher of w at the writer's current time.
func (c *Ctx) wake(w *Word) {
	if len(w.watchers) == 0 {
		return
	}
	for _, watcher := range w.watchers {
		if watcher.clock < c.t.clock {
			watcher.clock = c.t.clock
		}
		watcher.state = stateReady
		c.m.emitWake(watcher, w, c.t)
		c.m.push(watcher)
	}
	w.watchers = w.watchers[:0]
}

// Load returns the word's value.
func (c *Ctx) Load(w *Word) uint64 {
	c.sync()
	c.readCost(w)
	c.emit(EvLoad, w, w.val)
	return w.val
}

// Store sets the word's value.
func (c *Ctx) Store(w *Word, v uint64) {
	c.sync()
	c.writeCost(w)
	changed := w.val != v
	w.val = v
	c.emit(EvStore, w, v)
	if changed {
		c.wake(w)
	}
}

// CAS atomically compares-and-swaps the word, reporting success. Failed
// CAS still acquires the line exclusively (read-for-ownership), exactly
// the traffic pattern that makes contended CAS loops expensive on real
// hardware.
func (c *Ctx) CAS(w *Word, old, new uint64) bool {
	c.sync()
	c.writeCost(w)
	if w.val != old {
		c.emit(EvCASFail, w, w.val)
		return false
	}
	changed := w.val != new
	w.val = new
	c.emit(EvCASSuccess, w, new)
	if changed {
		c.wake(w)
	}
	return true
}

// Swap atomically stores v and returns the previous value (the MCS
// FetchAndStore).
func (c *Ctx) Swap(w *Word, v uint64) uint64 {
	c.sync()
	c.writeCost(w)
	prev := w.val
	changed := prev != v
	w.val = v
	c.emit(EvSwap, w, v)
	if changed {
		c.wake(w)
	}
	return prev
}

// Add atomically adds delta (two's complement for subtraction) and
// returns the new value.
func (c *Ctx) Add(w *Word, delta uint64) uint64 {
	c.sync()
	c.writeCost(w)
	w.val += delta
	c.emit(EvAdd, w, w.val)
	c.wake(w)
	return w.val
}

// SpinUntil blocks (parking the thread, costing no simulation work)
// until pred holds for the word's value, and returns that value. Each
// evaluation charges a read; the thread is woken at the virtual time of
// any write that changes the value.
func (c *Ctx) SpinUntil(w *Word, pred func(uint64) bool) uint64 {
	c.sync()
	for {
		c.readCost(w)
		if pred(w.val) {
			return w.val
		}
		c.emit(EvSpinBlock, w, w.val)
		c.t.state = stateBlocked
		w.watchers = append(w.watchers, c.t)
		c.m.stepDone <- c.t
		<-c.t.grant
		c.t.clock += c.m.cfg.CostOp
	}
}

// LoadStream reads a batch of independent words as one streaming scan
// and returns their values. Unlike a sequence of Load calls — which
// charges each word a full dependent-load latency plus per-primitive
// instruction cost, the right model for pointer-chasing — LoadStream
// models the memory-level parallelism of scanning a contiguous array:
// the individual misses overlap, so the scan is charged the single
// worst transfer latency plus one issue cycle per word. Coherence
// metadata is updated per word exactly as for Load.
//
// It exists for bulk scans over arrays of hot words (e.g. the BRAVO
// revocation scan over the visible-readers table); algorithms must not
// use it for loads whose addresses depend on prior results.
func (c *Ctx) LoadStream(ws []*Word) []uint64 {
	c.sync()
	t := c.t
	var worst int64
	out := make([]uint64, len(ws))
	for i, w := range ws {
		t.accesses++
		var cost int64
		if int(w.ownerCore) == t.core || w.sharerHas(t.core) {
			cost = c.m.hitCost(w, t)
		} else {
			d := c.m.coreDistance(int(w.lastWriterCore), t)
			cost = c.m.distCost(d)
			if d == distRemote {
				t.remote++
			}
		}
		if cost > worst {
			worst = cost
		}
		if w.ownerCore >= 0 && int(w.ownerCore) != t.core {
			w.sharerAdd(int(w.ownerCore))
			w.ownerCore = -1
		}
		w.sharerAdd(t.core)
		w.lastToucher = int32(t.id)
		out[i] = w.val
		c.emit(EvLoad, w, w.val)
	}
	t.clock += worst + int64(len(ws))
	return out
}

// Work advances the thread's clock by the given number of cycles of
// purely local computation.
func (c *Ctx) Work(cycles int64) {
	c.sync()
	c.t.clock += cycles
	c.emit(EvWork, nil, uint64(cycles))
}
