package sim

// Tracing: an optional per-event callback for debugging simulated
// algorithms. It exposes exactly the information that made the lock
// races in this repository findable — which thread touched which word,
// when, and with what outcome — as a stable API instead of ad-hoc
// prints.
//
// Tracing runs inline on the simulation's single executing thread, so
// the callback needs no synchronization; it must not call back into the
// machine.

// EventKind classifies a traced event.
type EventKind int

// Traced event kinds.
const (
	EvLoad EventKind = iota
	EvStore
	EvCASSuccess
	EvCASFail
	EvSwap
	EvAdd
	EvSpinBlock // thread parked on a word
	EvSpinWake  // thread woken by a write
	EvWork
)

func (k EventKind) String() string {
	switch k {
	case EvLoad:
		return "load"
	case EvStore:
		return "store"
	case EvCASSuccess:
		return "cas+"
	case EvCASFail:
		return "cas-"
	case EvSwap:
		return "swap"
	case EvAdd:
		return "add"
	case EvSpinBlock:
		return "block"
	case EvSpinWake:
		return "wake"
	case EvWork:
		return "work"
	default:
		return "?"
	}
}

// Event is one traced simulation step.
type Event struct {
	// Time is the acting thread's clock after the event's cost.
	Time int64
	// Thread is the acting thread id (for EvSpinWake, the woken thread;
	// Waker carries the writer).
	Thread int
	// Kind classifies the event.
	Kind EventKind
	// Word identifies the accessed word (Word.ID), -1 for EvWork.
	Word int
	// Value is the word's value after the event (the written value for
	// stores, the loaded value for loads; for EvWork the cycle count).
	Value uint64
	// Waker is the writing thread for EvSpinWake events, else -1.
	Waker int
}

// SetTrace installs (or, with nil, removes) the event callback. Call
// before Run.
func (m *Machine) SetTrace(fn func(Event)) { m.trace = fn }

func (c *Ctx) emit(kind EventKind, w *Word, value uint64) {
	if c.m.trace == nil {
		return
	}
	id := -1
	if w != nil {
		id = w.id
	}
	c.m.trace(Event{Time: c.t.clock, Thread: c.t.id, Kind: kind, Word: id, Value: value, Waker: -1})
}

func (m *Machine) emitWake(woken *thread, w *Word, waker *thread) {
	if m.trace == nil {
		return
	}
	m.trace(Event{Time: woken.clock, Thread: woken.id, Kind: EvSpinWake, Word: w.id, Value: w.val, Waker: waker.id})
}
