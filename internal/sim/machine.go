// Package sim is a deterministic discrete-event simulator of a
// multi-chip shared-memory machine, built to reproduce the paper's
// evaluation platform — a Sun SPARC Enterprise T5440 with 4 chips × 64
// hardware threads — on hosts that cannot exhibit its behaviour (see
// DESIGN.md §4).
//
// Simulated threads are ordinary Go functions that perform their shared
// memory accesses through a Ctx (Load, Store, CAS, Swap, SpinUntil,
// Work). The simulator runs threads one at a time in virtual-time order:
// each primitive charges the calling thread a latency from a cache
// coherence cost model (hit in own cache, transfer from a same-chip
// cache, transfer across chips), so contention manifests exactly as it
// does on hardware — as serialized ownership transfers of hot cache
// lines whose cost jumps when the communicating threads sit on different
// chips.
//
// Busy-wait loops use SpinUntil, which parks the thread as a watcher on
// the word and wakes it at the writer's virtual time, so waiting costs
// no simulation work. Runs are fully deterministic: same program + same
// seeds => identical final clocks, access counts, and results.
package sim

import (
	"fmt"
	"sort"
)

// Config describes the simulated machine.
type Config struct {
	// Chips is the number of processor chips.
	Chips int
	// ThreadsPerChip is the number of hardware thread slots per chip.
	// Simulated threads are packed onto chips in id order, so thread
	// counts <= ThreadsPerChip stay on one chip (the paper's on-chip
	// regime).
	ThreadsPerChip int
	// ThreadsPerCore is the number of hardware threads sharing one core
	// (and hence its L1 cache); 8 on the UltraSPARC T2+. It must divide
	// ThreadsPerChip.
	ThreadsPerCore int
	// CostLocal is the latency (cycles) of an access that hits the
	// thread's own cached copy.
	CostLocal int64
	// CostCore is the latency of a transfer between hardware threads of
	// the same core (effectively an L1 hit on a CMT core).
	CostCore int64
	// CostShared is the latency of a transfer between cores on the same
	// chip (the shared L2 of the T2+).
	CostShared int64
	// CostRemote is the latency of a transfer across chips (through the
	// coherence hubs) or from memory.
	CostRemote int64
	// CostOp is the instruction-stream cost charged per primitive,
	// modeling the non-memory work between shared accesses.
	CostOp int64
	// Jitter adds a deterministic pseudo-random 0..Jitter extra cycles
	// to each primitive, modeling the issue-slot noise of multithreaded
	// cores. Without it, perfectly symmetric costs phase-lock simulated
	// threads into patterns (e.g. a reader group draining in lockstep)
	// that hardware noise breaks up.
	Jitter int64
	// MaxSteps aborts the run (panic) after this many scheduler steps;
	// 0 means no limit. A safety net for accidental livelock in
	// simulated algorithms.
	MaxSteps int64
}

// T5440 returns the configuration modeling the paper's evaluation
// machine: 4 chips × 8 cores × 8 hardware threads at 1.4 GHz, with
// same-core communication through the core's L1, on-chip communication
// through the shared L2, and off-chip through coherency hubs. The
// latency ratios (1 : 3 : 30 : 120) follow the usual L1-hit :
// same-core : L2-transfer : cross-chip-hub ordering for that system
// class; the paper's curves depend on the ratios, not the absolute
// values.
func T5440() Config {
	return Config{
		Chips:          4,
		ThreadsPerChip: 64,
		ThreadsPerCore: 8,
		CostLocal:      1,
		CostCore:       3,
		CostShared:     30,
		CostRemote:     120,
		CostOp:         3,
		Jitter:         4,
	}
}

// ClockHz is the modeled clock rate used to convert virtual cycles to
// seconds (the T5440 runs at 1.4 GHz).
const ClockHz = 1.4e9

// Thread states.
const (
	stateReady = iota
	stateBlocked
	stateFinished
)

type thread struct {
	id, core, chip int
	clock          int64
	state          int
	grant          chan struct{}
	heapIdx        int
	rng            uint64 // per-thread jitter state
	// accounting
	accesses int64
	remote   int64
}

// Machine is one simulation instance. Create with New, add programs with
// Spawn, then call Run exactly once.
type Machine struct {
	cfg      Config
	threads  []*thread
	bodies   []func(*Ctx)
	stepDone chan *thread
	heap     []*thread
	words    int
	trace    func(Event)
	// Accounting available after Run.
	steps int64
}

// New returns a machine with the given configuration. A zero
// ThreadsPerCore defaults to ThreadsPerChip (one core per chip); a zero
// CostCore defaults to CostShared.
func New(cfg Config) *Machine {
	if cfg.Chips <= 0 || cfg.ThreadsPerChip <= 0 {
		panic("sim: Chips and ThreadsPerChip must be positive")
	}
	if cfg.ThreadsPerCore == 0 {
		cfg.ThreadsPerCore = cfg.ThreadsPerChip
	}
	if cfg.CostCore == 0 {
		cfg.CostCore = cfg.CostShared
	}
	if cfg.ThreadsPerCore <= 0 || cfg.ThreadsPerChip%cfg.ThreadsPerCore != 0 {
		panic("sim: ThreadsPerCore must be positive and divide ThreadsPerChip")
	}
	if cfg.CostLocal <= 0 || cfg.CostCore <= 0 || cfg.CostShared <= 0 || cfg.CostRemote <= 0 {
		panic("sim: costs must be positive")
	}
	return &Machine{cfg: cfg, stepDone: make(chan *thread)}
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Spawn registers a simulated thread running body. Threads are packed
// onto chips in spawn order (64 per chip for the T5440 config). Spawn
// panics if the machine is full or already running.
func (m *Machine) Spawn(body func(*Ctx)) int {
	id := len(m.threads)
	if id >= m.cfg.Chips*m.cfg.ThreadsPerChip {
		panic("sim: machine full")
	}
	t := &thread{
		id:    id,
		core:  id / m.cfg.ThreadsPerCore,
		chip:  id / m.cfg.ThreadsPerChip,
		grant: make(chan struct{}),
		rng:   uint64(id)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03,
	}
	m.threads = append(m.threads, t)
	m.bodies = append(m.bodies, body)
	return id
}

// Threads returns the number of spawned threads.
func (m *Machine) Threads() int { return len(m.threads) }

// Run executes all spawned threads to completion and returns the final
// virtual time (the maximum thread clock, in cycles). It panics on
// deadlock (all unfinished threads blocked) or when MaxSteps is
// exceeded.
func (m *Machine) Run() int64 {
	n := len(m.threads)
	if n == 0 {
		return 0
	}
	for i := range m.threads {
		t := m.threads[i]
		body := m.bodies[i]
		go func() {
			ctx := &Ctx{m: m, t: t}
			ctx.sync() // announce; parked until first grant
			body(ctx)
			t.state = stateFinished
			m.stepDone <- t
		}()
	}
	// Collect the initial announcements; every thread parks at its first
	// grant (or finishes immediately if its body is empty — impossible
	// here since sync precedes the body, but handled for safety).
	finished := 0
	for i := 0; i < n; i++ {
		t := <-m.stepDone
		switch t.state {
		case stateReady:
			m.push(t)
		case stateFinished:
			finished++
		}
	}
	for finished < n {
		t := m.pop()
		if t == nil {
			panic(fmt.Sprintf("sim: deadlock — %d of %d threads blocked forever", n-finished, n))
		}
		m.steps++
		if m.cfg.MaxSteps > 0 && m.steps > m.cfg.MaxSteps {
			panic(fmt.Sprintf("sim: exceeded MaxSteps=%d (livelock?)", m.cfg.MaxSteps))
		}
		t.grant <- struct{}{}
		t = <-m.stepDone
		switch t.state {
		case stateReady:
			m.push(t)
		case stateFinished:
			finished++
		case stateBlocked:
			// parked as a watcher; re-pushed when woken
		}
	}
	var max int64
	for _, t := range m.threads {
		if t.clock > max {
			max = t.clock
		}
	}
	return max
}

// Steps returns the number of scheduler steps executed (diagnostic).
func (m *Machine) Steps() int64 { return m.steps }

// Stats summarizes one thread's memory behaviour after Run.
type Stats struct {
	Thread   int
	Chip     int
	Clock    int64
	Accesses int64
	Remote   int64 // accesses that crossed chips
}

// ThreadStats returns per-thread statistics, sorted by thread id.
func (m *Machine) ThreadStats() []Stats {
	out := make([]Stats, len(m.threads))
	for i, t := range m.threads {
		out[i] = Stats{Thread: t.id, Chip: t.chip, Clock: t.clock, Accesses: t.accesses, Remote: t.remote}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Thread < out[j].Thread })
	return out
}

// --- min-heap on (clock, id) ---

func (m *Machine) push(t *thread) {
	t.heapIdx = len(m.heap)
	m.heap = append(m.heap, t)
	m.up(t.heapIdx)
}

func (m *Machine) pop() *thread {
	if len(m.heap) == 0 {
		return nil
	}
	t := m.heap[0]
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	m.heap[0].heapIdx = 0
	m.heap = m.heap[:last]
	if last > 0 {
		m.down(0)
	}
	return t
}

func (m *Machine) less(i, j int) bool {
	a, b := m.heap[i], m.heap[j]
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.id < b.id
}

func (m *Machine) swap(i, j int) {
	m.heap[i], m.heap[j] = m.heap[j], m.heap[i]
	m.heap[i].heapIdx = i
	m.heap[j].heapIdx = j
}

func (m *Machine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !m.less(i, parent) {
			break
		}
		m.swap(i, parent)
		i = parent
	}
}

func (m *Machine) down(i int) {
	n := len(m.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && m.less(l, small) {
			small = l
		}
		if r < n && m.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		m.swap(i, small)
		i = small
	}
}
