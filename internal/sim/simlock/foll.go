package simlock

import (
	"ollock/internal/obs"
	"ollock/internal/sim"
)

// Queue node references are uint64 handles into a lock's node table:
// 0 is nil, i+1 refers to table entry i.
func ref(i int) uint64    { return uint64(i + 1) }
func deref(r uint64) int  { return int(r - 1) }
func isNil(r uint64) bool { return r == 0 }

// qNode is a simulated FOLL/ROLL queue node.
type qNode struct {
	isWriter bool
	qNext    *sim.Word // node ref
	spin     *sim.Word // 1 = waiting
	slot     *sim.Word // waiting-array slot (array wait policy only)
	// Reader-node fields.
	cs         Indicator
	allocState *sim.Word // 0 free, 1 in use
	ringNext   int
	// ROLL only.
	qPrev *sim.Word // node ref
}

// FOLL is the simulated FOLL lock (mirrors internal/foll).
type FOLL struct {
	m        *sim.Machine
	tail     *sim.Word // node ref
	nodes    []*qNode  // ring reader nodes [0,maxProcs), then writer nodes
	maxProcs int
	procs    int
	// withPrev makes nodes doubly linked (used by the ROLL embedding).
	withPrev bool

	// Diagnostics (safe as plain ints: one simulated thread runs at a
	// time). StatGroups counts reader nodes enqueued (each is one reader
	// group); StatJoins counts readers who joined an existing node.
	StatGroups, StatJoins int64

	// stats mirrors the real lock's obs counters. The event triple is
	// chosen by withPrev, so the ROLL embedding emits roll.* names and
	// a plain FOLL emits foll.* — same contract as the real locks.
	stats                        *obs.Stats
	evJoin, evEnqueue, evRecycle obs.Event
	histWrite                    obs.HistID
	pol                          *WaitPolicy
}

// Stats returns the lock's obs counter block.
func (l *FOLL) Stats() *obs.Stats { return l.stats }

// SetWaitPolicy attaches a wait policy mirroring ollock.WithWait:
// queue-node waiters descend the policy's ladder (or poll
// waiting-array slots keyed by node index) instead of spinning on the
// node's flag word. Host-side setup; call before NewProc.
func (l *FOLL) SetWaitPolicy(p *WaitPolicy) {
	l.pol = p
	p.attach(l.stats)
	for i, n := range l.nodes {
		n.slot = p.slotFor(uint32(i) + 1)
	}
}

// NewFOLL allocates a FOLL lock on m with a ring of maxProcs reader
// nodes over the default C-SNZI indicators.
func NewFOLL(m *sim.Machine, maxProcs int) *FOLL {
	return newFOLL(m, maxProcs, false, "foll", CSNZIIndicator)
}

// NewFOLLInd is NewFOLL with an explicit read-indicator choice
// (mirrors ollock.WithIndicator); name labels the stats block.
func NewFOLLInd(m *sim.Machine, maxProcs int, name string, f IndicatorFactory) *FOLL {
	return newFOLL(m, maxProcs, false, name, f)
}

func newFOLL(m *sim.Machine, maxProcs int, withPrev bool, name string, f IndicatorFactory) *FOLL {
	l := &FOLL{m: m, tail: m.NewWord(0), maxProcs: maxProcs, withPrev: withPrev}
	if withPrev {
		l.stats = obs.New(obs.WithName(name), obs.WithStripes(1), obs.WithScopes("csnzi", "roll"))
		l.evJoin, l.evEnqueue, l.evRecycle = obs.ROLLReadJoin, obs.ROLLReadEnqueue, obs.ROLLNodeRecycle
		l.histWrite = obs.ROLLWriteWait
	} else {
		l.stats = obs.New(obs.WithName(name), obs.WithStripes(1), obs.WithScopes("csnzi", "foll"))
		l.evJoin, l.evEnqueue, l.evRecycle = obs.FOLLReadJoin, obs.FOLLReadEnqueue, obs.FOLLNodeRecycle
		l.histWrite = obs.FOLLWriteWait
	}
	for i := 0; i < maxProcs; i++ {
		n := &qNode{
			qNext:      m.NewWord(0),
			spin:       m.NewWord(0),
			cs:         f(m, maxProcs),
			allocState: m.NewWord(0),
			ringNext:   (i + 1) % maxProcs,
		}
		// Not enqueued => closed (ring nodes start closed with zero
		// surplus).
		n.cs.InitClosed()
		n.cs.SetStats(l.stats)
		if withPrev {
			n.qPrev = m.NewWord(0)
		}
		l.nodes = append(l.nodes, n)
	}
	return l
}

type follProc struct {
	l           *FOLL
	id          int
	defaultRing int
	wNodeIdx    int
	departFrom  int
	ticket      Ticket
}

// NewProc returns the per-thread handle. Call during setup.
func (l *FOLL) NewProc(id int) Proc {
	if l.procs >= l.maxProcs {
		panic("simlock: more procs than maxProcs")
	}
	w := &qNode{
		isWriter: true,
		qNext:    l.m.NewWord(0),
		spin:     l.m.NewWord(0),
	}
	if l.withPrev {
		w.qPrev = l.m.NewWord(0)
	}
	w.slot = l.pol.slotFor(uint32(len(l.nodes)) + 1)
	l.nodes = append(l.nodes, w)
	p := &follProc{
		l:           l,
		id:          id,
		defaultRing: l.procs,
		wNodeIdx:    len(l.nodes) - 1,
	}
	l.procs++
	return p
}

// allocReaderNode walks the ring from the proc's default node.
func (p *follProc) allocReaderNode(c *sim.Ctx) int {
	cur := p.defaultRing
	for {
		n := p.l.nodes[cur]
		if c.Load(n.allocState) == 0 && c.CAS(n.allocState, 0, 1) {
			return cur
		}
		cur = n.ringNext
		if cur == p.defaultRing {
			c.Work(10)
		}
	}
}

func freeNode(c *sim.Ctx, n *qNode) {
	c.Store(n.allocState, 0)
}

func (p *follProc) RLock(c *sim.Ctx) {
	l := p.l
	rNode := -1
	for {
		tailRef := c.Load(l.tail)
		switch {
		case isNil(tailRef):
			if rNode < 0 {
				rNode = p.allocReaderNode(c)
			}
			n := l.nodes[rNode]
			c.Store(n.spin, 0)
			c.Store(n.qNext, 0)
			if l.withPrev {
				c.Store(n.qPrev, 0)
			}
			if !c.CAS(l.tail, 0, ref(rNode)) {
				continue
			}
			l.StatGroups++
			l.stats.Inc(l.evEnqueue, p.id)
			n.cs.Open(c)
			t := n.cs.Arrive(c, p.id)
			if t.Arrived() {
				p.departFrom = rNode
				p.ticket = t
				return
			}
			rNode = -1

		case l.nodes[deref(tailRef)].isWriter:
			if rNode < 0 {
				rNode = p.allocReaderNode(c)
			}
			n := l.nodes[rNode]
			pred := l.nodes[deref(tailRef)]
			c.Store(n.spin, 1)
			c.Store(n.qNext, 0)
			if l.withPrev {
				c.Store(n.qPrev, tailRef)
			}
			if !c.CAS(l.tail, tailRef, ref(rNode)) {
				continue
			}
			l.StatGroups++
			l.stats.Inc(l.evEnqueue, p.id)
			c.Store(pred.qNext, ref(rNode))
			n.cs.Open(c)
			t := n.cs.Arrive(c, p.id)
			if t.Arrived() {
				p.departFrom = rNode
				p.ticket = t
				l.pol.waitUntil(c, l.stats, p.id, n.slot, n.spin, func(v uint64) bool { return v == 0 })
				return
			}
			rNode = -1

		default: // tail is a reader node: join it
			tn := l.nodes[deref(tailRef)]
			t := tn.cs.Arrive(c, p.id)
			if t.Arrived() {
				l.StatJoins++
				l.stats.Inc(l.evJoin, p.id)
				if rNode >= 0 {
					freeNode(c, l.nodes[rNode])
				}
				p.departFrom = deref(tailRef)
				p.ticket = t
				l.pol.waitUntil(c, l.stats, p.id, tn.slot, tn.spin, func(v uint64) bool { return v == 0 })
				return
			}
		}
	}
}

func (p *follProc) RUnlock(c *sim.Ctx) {
	l := p.l
	n := l.nodes[p.departFrom]
	if n.cs.Depart(c, p.ticket) {
		return
	}
	succRef := c.Load(n.qNext)
	succ := l.nodes[deref(succRef)]
	if l.withPrev {
		c.Store(succ.qPrev, 0)
	}
	c.Store(succ.spin, 0)
	signalSlot(c, succ.slot)
	c.Store(n.qNext, 0)
	freeNode(c, n)
	l.stats.Inc(l.evRecycle, p.id)
}

func (p *follProc) Lock(c *sim.Ctx) {
	l := p.l
	w0 := c.Now()
	w := l.nodes[p.wNodeIdx]
	c.Store(w.qNext, 0)
	oldTail := c.Swap(l.tail, ref(p.wNodeIdx))
	if l.withPrev {
		c.Store(w.qPrev, oldTail)
	}
	if isNil(oldTail) {
		l.stats.Observe(l.histWrite, p.id, c.Now()-w0)
		return
	}
	pred := l.nodes[deref(oldTail)]
	c.Store(w.spin, 1)
	c.Store(pred.qNext, ref(p.wNodeIdx))
	if pred.isWriter {
		l.pol.waitUntil(c, l.stats, p.id, w.slot, w.spin, func(v uint64) bool { return v == 0 })
		l.stats.Observe(l.histWrite, p.id, c.Now()-w0)
		return
	}
	pred.cs.QueryOpenSpin(c)
	if l.withPrev {
		// ROLL: defer closing until the group is activated, so arriving
		// readers can keep joining it (reader preference).
		l.pol.waitUntil(c, l.stats, p.id, pred.slot, pred.spin, func(v uint64) bool { return v == 0 })
		if pred.cs.Close(c) {
			c.Store(w.qPrev, 0)
			c.Store(pred.qNext, 0)
			freeNode(c, pred)
			l.stats.Inc(l.evRecycle, p.id)
			l.stats.Observe(l.histWrite, p.id, c.Now()-w0)
			return
		}
		l.pol.waitUntil(c, l.stats, p.id, w.slot, w.spin, func(v uint64) bool { return v == 0 })
		l.stats.Observe(l.histWrite, p.id, c.Now()-w0)
		return
	}
	// FOLL: close immediately to stop further readers joining.
	if pred.cs.Close(c) {
		l.pol.waitUntil(c, l.stats, p.id, pred.slot, pred.spin, func(v uint64) bool { return v == 0 })
		c.Store(pred.qNext, 0)
		freeNode(c, pred)
		l.stats.Inc(l.evRecycle, p.id)
		l.stats.Observe(l.histWrite, p.id, c.Now()-w0)
		return
	}
	l.pol.waitUntil(c, l.stats, p.id, w.slot, w.spin, func(v uint64) bool { return v == 0 })
	l.stats.Observe(l.histWrite, p.id, c.Now()-w0)
}

func (p *follProc) Unlock(c *sim.Ctx) {
	l := p.l
	w := l.nodes[p.wNodeIdx]
	succRef := c.Load(w.qNext)
	if isNil(succRef) {
		if c.CAS(l.tail, ref(p.wNodeIdx), 0) {
			return
		}
		succRef = l.pol.waitCond(c, l.stats, p.id, w.qNext, func(v uint64) bool { return v != 0 })
	}
	succ := l.nodes[deref(succRef)]
	if l.withPrev {
		c.Store(succ.qPrev, 0)
	}
	c.Store(succ.spin, 0)
	signalSlot(c, succ.slot)
	c.Store(w.qNext, 0)
}
