package simlock

import (
	"ollock/internal/obs"
	"ollock/internal/park"
	"ollock/internal/sim"
)

// This file mirrors internal/park on the simulated machine. The
// simulator's SpinUntil already models a waiting thread as blocked (it
// charges a read per wake, not per probe), so the policies here do not
// change who waits for what — they reproduce the *observable* behavior
// of the real ladder: the park.* counters a real lock emits under a
// non-spin policy, the scheduler cost a park/unpark round-trip pays,
// and, in array mode, the private waiting-array slot words that take
// coherence traffic off the shared grant word.

// Scheduler cost model (cycles). A yield is a scheduler pass without a
// context switch; park and unpark each pay a full switch, a few times
// the cost of a cross-chip transfer (CostRemote defaults to 120).
const (
	simYieldCost  = 60
	simParkCost   = 800
	simUnparkCost = 800
)

// simArraySlots is the simulated waiting-array size (the real default
// is 128; the simulator rarely runs more than a few dozen threads).
const simArraySlots = 64

// WaitPolicy is the simulated wait policy, shared by every wait site of
// one lock (mirrors the facade threading one *park.Policy through the
// stack). A nil *WaitPolicy means pure spinning — the default, and
// bit-identical to the pre-policy code.
type WaitPolicy struct {
	mode  park.Mode
	slots []*sim.Word
	mask  uint32
}

// NewWaitPolicy allocates a wait policy on m. Array mode allocates the
// waiting-array slot words; the other modes need no simulated memory.
func NewWaitPolicy(m *sim.Machine, mode park.Mode) *WaitPolicy {
	p := &WaitPolicy{mode: mode}
	if mode == park.ModeArray {
		p.slots = make([]*sim.Word, simArraySlots)
		for i := range p.slots {
			p.slots[i] = m.NewWord(0)
		}
		p.mask = simArraySlots - 1
	}
	return p
}

// Mode returns the policy's mode; nil means park.ModeSpin.
func (p *WaitPolicy) Mode() park.Mode {
	if p == nil {
		return park.ModeSpin
	}
	return p.mode
}

// attach registers the park counter scope on a lock's stats block,
// mirroring the facade adding "park" to the scope set only when a
// non-spin policy is selected (a spin policy emits no park events, so
// the historical counter name set is preserved exactly).
func (p *WaitPolicy) attach(st *obs.Stats) {
	if p != nil && p.mode != park.ModeSpin {
		st.AddScope("park")
	}
}

// slotFor maps a waiter key to its waiting-array slot word (nil unless
// array mode), with the same Fibonacci hash as the real array.
func (p *WaitPolicy) slotFor(key uint32) *sim.Word {
	if p == nil || p.mode != park.ModeArray {
		return nil
	}
	return p.slots[(key*2654435761)&p.mask]
}

// waitUntil blocks until pred holds for w's value, waiting per the
// policy, and returns the satisfying value. slot is the waiter's
// waiting-array slot (nil outside array mode); a cooperating granter
// must signalSlot it after its grant store.
func (p *WaitPolicy) waitUntil(c *sim.Ctx, st *obs.Stats, id int, slot, w *sim.Word, pred func(uint64) bool) uint64 {
	if p == nil || p.mode == park.ModeSpin {
		return c.SpinUntil(w, pred)
	}
	// The bounded hot spin: in the discrete model repeated fruitless
	// probes of an unchanged word coalesce into one read.
	if v := c.Load(w); pred(v) {
		return v
	}
	if p.mode == park.ModeAdaptive {
		st.Inc(obs.ParkYield, id)
		c.Work(simYieldCost)
		if v := c.Load(w); pred(v) {
			return v
		}
		st.Inc(obs.ParkPark, id)
		c.Work(simParkCost)
		t0 := c.Now()
		v := c.SpinUntil(w, pred)
		st.Observe(obs.ParkWait, id, c.Now()-t0)
		st.Inc(obs.ParkUnpark, id)
		c.Work(simUnparkCost)
		return v
	}
	// Array mode: poll the private slot, re-probing the grant word only
	// when the slot is bumped. The slot must be read before the grant
	// word (same ordering as the real waiter: a grant between the two
	// reads is caught by the probe, a grant after it bumps the slot).
	st.Inc(obs.ParkArrayWait, id)
	for {
		s0 := c.Load(slot)
		if v := c.Load(w); pred(v) {
			return v
		}
		c.SpinUntil(slot, func(v uint64) bool { return v != s0 })
	}
}

// waitCond blocks until pred holds for w's value with no cooperating
// signaler (mirrors park.WaitCond): array mode degrades to the
// adaptive ladder, whose park step models the ladder's bounded sleeps.
func (p *WaitPolicy) waitCond(c *sim.Ctx, st *obs.Stats, id int, w *sim.Word, pred func(uint64) bool) uint64 {
	if p == nil || p.mode == park.ModeSpin {
		return c.SpinUntil(w, pred)
	}
	if v := c.Load(w); pred(v) {
		return v
	}
	st.Inc(obs.ParkYield, id)
	c.Work(simYieldCost)
	if v := c.Load(w); pred(v) {
		return v
	}
	st.Inc(obs.ParkPark, id)
	c.Work(simParkCost)
	t0 := c.Now()
	v := c.SpinUntil(w, pred)
	st.Observe(obs.ParkWait, id, c.Now()-t0)
	st.Inc(obs.ParkUnpark, id)
	c.Work(simUnparkCost)
	return v
}

// signalSlot is the granter's array-mode wake: bump the waiter's slot
// so its private poll re-probes the grant word. A nil slot (non-array
// policy, or a waiter that never registered) costs nothing.
func signalSlot(c *sim.Ctx, slot *sim.Word) {
	if slot != nil {
		c.Add(slot, 1)
	}
}
