package simlock

import (
	"ollock/internal/obs"
	"ollock/internal/sim"
)

// ROLL is the simulated ROLL lock (mirrors internal/roll): FOLL with a
// doubly linked queue, a backward search that lets readers overtake
// queued writers to join the waiting reader group, a lastReader hint,
// and the deferred group close in the writer path (handled inside the
// embedded FOLL via withPrev).
type ROLL struct {
	f          *FOLL
	lastReader *sim.Word // node ref of the last known waiting group
	useHint    bool
}

// rollSearchLimit bounds the backward walk (mirrors internal/roll).
const rollSearchLimit = 256

// NewROLL allocates a ROLL lock on m with a ring of maxProcs reader
// nodes over the default C-SNZI indicators.
func NewROLL(m *sim.Machine, maxProcs int) *ROLL {
	return NewROLLInd(m, maxProcs, "roll", CSNZIIndicator)
}

// NewROLLInd is NewROLL with an explicit read-indicator choice
// (mirrors ollock.WithIndicator); name labels the stats block.
func NewROLLInd(m *sim.Machine, maxProcs int, name string, f IndicatorFactory) *ROLL {
	return &ROLL{
		f:          newFOLL(m, maxProcs, true, name, f),
		lastReader: m.NewWord(0),
		useHint:    true,
	}
}

// Stats returns the lock's obs counter block (shared with the
// embedded FOLL machinery, which emits roll.* names under withPrev).
func (l *ROLL) Stats() *obs.Stats { return l.f.stats }

// SetWaitPolicy attaches a wait policy mirroring ollock.WithWait
// (delegates to the embedded FOLL machinery). Host-side setup; call
// before NewProc.
func (l *ROLL) SetWaitPolicy(p *WaitPolicy) { l.f.SetWaitPolicy(p) }

// NewROLLNoHint allocates a ROLL lock with the lastReader hint disabled
// — the ablation of §4.3's optimization ("reduces the number of
// searches"): every overtaking reader must walk the queue backward.
func NewROLLNoHint(m *sim.Machine, maxProcs int) *ROLL {
	l := NewROLL(m, maxProcs)
	l.useHint = false
	return l
}

type rollProc struct {
	fp *follProc
	l  *ROLL
}

// NewProc returns the per-thread handle. Call during setup.
func (l *ROLL) NewProc(id int) Proc {
	return &rollProc{fp: l.f.NewProc(id).(*follProc), l: l}
}

// tryJoinWaiting attempts to join the waiting reader group at node idx.
func (p *rollProc) tryJoinWaiting(c *sim.Ctx, idx int) bool {
	n := p.l.f.nodes[idx]
	if n.isWriter || c.Load(n.spin) != 1 {
		return false
	}
	t := n.cs.Arrive(c, p.fp.id)
	if !t.Arrived() {
		return false
	}
	p.l.f.StatJoins++
	p.l.f.stats.Inc(obs.ROLLOvertake, p.fp.id)
	// Refresh the hint only when it changes; an unconditional store
	// would serialize every joining reader on the hint line.
	if p.l.useHint && c.Load(p.l.lastReader) != ref(idx) {
		c.Store(p.l.lastReader, ref(idx))
	}
	p.fp.departFrom = idx
	p.fp.ticket = t
	p.l.f.pol.waitUntil(c, p.l.f.stats, p.fp.id, n.slot, n.spin, func(v uint64) bool { return v == 0 })
	return true
}

func (p *rollProc) RLock(c *sim.Ctx) {
	f := p.l.f
	rNode := -1
	freeSpare := func() {
		if rNode >= 0 {
			freeNode(c, f.nodes[rNode])
			rNode = -1
		}
	}
	for {
		// Hint fast path.
		if p.l.useHint {
			if hRef := c.Load(p.l.lastReader); !isNil(hRef) {
				if p.tryJoinWaiting(c, deref(hRef)) {
					f.stats.Inc(obs.ROLLHintHit, p.fp.id)
					freeSpare()
					return
				}
				f.stats.Inc(obs.ROLLHintMiss, p.fp.id)
				c.CAS(p.l.lastReader, hRef, 0)
			}
		}
		tailRef := c.Load(f.tail)
		switch {
		case isNil(tailRef):
			if rNode < 0 {
				rNode = p.fp.allocReaderNode(c)
			}
			n := f.nodes[rNode]
			c.Store(n.spin, 0)
			c.Store(n.qNext, 0)
			c.Store(n.qPrev, 0)
			if !c.CAS(f.tail, 0, ref(rNode)) {
				continue
			}
			f.StatGroups++
			f.stats.Inc(f.evEnqueue, p.fp.id)
			n.cs.Open(c)
			t := n.cs.Arrive(c, p.fp.id)
			if t.Arrived() {
				p.fp.departFrom = rNode
				p.fp.ticket = t
				return
			}
			rNode = -1 // node in queue; the closing writer recycles it

		case !f.nodes[deref(tailRef)].isWriter:
			// Tail is a reader node: join directly.
			tn := f.nodes[deref(tailRef)]
			t := tn.cs.Arrive(c, p.fp.id)
			if t.Arrived() {
				f.StatJoins++
				f.stats.Inc(f.evJoin, p.fp.id)
				freeSpare()
				p.fp.departFrom = deref(tailRef)
				p.fp.ticket = t
				if p.l.useHint && c.Load(tn.spin) == 1 && c.Load(p.l.lastReader) != tailRef {
					c.Store(p.l.lastReader, tailRef)
				}
				f.pol.waitUntil(c, f.stats, p.fp.id, tn.slot, tn.spin, func(v uint64) bool { return v == 0 })
				return
			}

		default:
			// Tail is a writer: search backward for a waiting group.
			cur := c.Load(f.nodes[deref(tailRef)].qPrev)
			joined := false
			for steps := 0; !isNil(cur) && steps < rollSearchLimit; steps++ {
				n := f.nodes[deref(cur)]
				if !n.isWriter {
					if c.Load(n.spin) == 1 && p.tryJoinWaiting(c, deref(cur)) {
						joined = true
					}
					break
				}
				cur = c.Load(n.qPrev)
			}
			if joined {
				freeSpare()
				return
			}
			// No joinable group: enqueue a fresh waiting node at the
			// tail.
			if rNode < 0 {
				rNode = p.fp.allocReaderNode(c)
			}
			n := f.nodes[rNode]
			pred := f.nodes[deref(tailRef)]
			c.Store(n.spin, 1)
			c.Store(n.qNext, 0)
			c.Store(n.qPrev, tailRef)
			if !c.CAS(f.tail, tailRef, ref(rNode)) {
				continue
			}
			f.StatGroups++
			f.stats.Inc(f.evEnqueue, p.fp.id)
			c.Store(pred.qNext, ref(rNode))
			n.cs.Open(c)
			t := n.cs.Arrive(c, p.fp.id)
			if t.Arrived() {
				p.fp.departFrom = rNode
				p.fp.ticket = t
				if p.l.useHint {
					c.Store(p.l.lastReader, ref(rNode))
				}
				f.pol.waitUntil(c, f.stats, p.fp.id, n.slot, n.spin, func(v uint64) bool { return v == 0 })
				return
			}
			rNode = -1
		}
	}
}

func (p *rollProc) RUnlock(c *sim.Ctx) { p.fp.RUnlock(c) }
func (p *rollProc) Lock(c *sim.Ctx)    { p.fp.Lock(c) }
func (p *rollProc) Unlock(c *sim.Ctx)  { p.fp.Unlock(c) }
