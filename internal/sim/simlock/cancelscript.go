package simlock

import (
	"fmt"
	"strings"

	"ollock/internal/sim"
)

// Deterministic cancellation scripts: small fixed casts of simulated
// threads exercising the timed-acquisition paths at hand-placed
// deadlines, each producing a cycle-stamped text log. The simulator is
// a pure function of its inputs, so a script's log is byte-identical
// across runs and Go versions — the replay property the cancellation
// tests pin (the host chaos torture proves the protocols under real
// preemption; the scripts prove the exact interleavings stay exact).

// scriptLog accumulates one script's cycle-stamped lines. Host memory
// is safe here: simulated threads execute one at a time.
type scriptLog struct{ b strings.Builder }

func (s *scriptLog) logf(c *sim.Ctx, id int, format string, args ...any) {
	fmt.Fprintf(&s.b, "%8d p%d %s\n", c.Now(), id, fmt.Sprintf(format, args...))
}

// hostf records a host-side line (machine teardown, final counters)
// outside any simulated thread's clock.
func (s *scriptLog) hostf(format string, args ...any) {
	fmt.Fprintf(&s.b, "%8s -- %s\n", "", fmt.Sprintf(format, args...))
}

// scriptConfig is the fixed machine every script runs on: one chip,
// two cores, no jitter (jitter is deterministic too, but zero keeps the
// logs legible when costs are retuned).
func scriptConfig() sim.Config {
	return sim.Config{
		Chips:          1,
		ThreadsPerChip: 8,
		ThreadsPerCore: 4,
		CostLocal:      1,
		CostCore:       3,
		CostShared:     30,
		CostRemote:     120,
		CostOp:         3,
		MaxSteps:       1 << 22,
	}
}

// okName renders an acquisition outcome.
func okName(ok bool) string {
	if ok {
		return "acquired"
	}
	return "timeout"
}

var cancelScripts = []struct {
	name string
	run  func(log *scriptLog)
}{
	{name: "goll-read-timeout", run: scriptGOLLReadTimeout},
	{name: "goll-write-timeout-reopen", run: scriptGOLLWriteTimeoutReopen},
	{name: "goll-queue-cancel-multi", run: scriptGOLLQueueCancelMulti},
	{name: "central-timeout", run: scriptCentralTimeout},
}

// CancelScripts returns the scripted cancellation scenario names, in
// run order.
func CancelScripts() []string {
	out := make([]string, len(cancelScripts))
	for i, s := range cancelScripts {
		out[i] = s.name
	}
	return out
}

// RunCancelScript executes the named scripted scenario and returns its
// cycle-stamped log. It panics on unknown names (script names are
// compile-time constants of the test suite).
func RunCancelScript(name string) string {
	for _, s := range cancelScripts {
		if s.name == name {
			var log scriptLog
			s.run(&log)
			return log.b.String()
		}
	}
	panic("simlock: unknown cancellation script " + name)
}

// scriptGOLLReadTimeout: a writer holds the lock across a reader's
// deadline; the reader's timed acquisition enqueues, expires, unlinks
// from the wait queue, then a blocking retry succeeds via the writer's
// release hand-off.
func scriptGOLLReadTimeout(log *scriptLog) {
	m := sim.New(scriptConfig())
	l := NewGOLL(m, 2)
	w, r := l.NewProc(0), l.NewProc(1)
	m.Spawn(func(c *sim.Ctx) {
		w.Lock(c)
		log.logf(c, 0, "write lock held")
		c.Work(5000)
		w.Unlock(c)
		log.logf(c, 0, "write lock released")
	})
	m.Spawn(func(c *sim.Ctx) {
		c.Work(200) // let the writer take the lock first
		rp := r.(CancelProc)
		dl := c.Now() + 1000
		ok := rp.RLockUntil(c, dl)
		log.logf(c, 1, "rlock-until +1000 -> %s", okName(ok))
		if ok {
			r.RUnlock(c)
		}
		r.RLock(c)
		log.logf(c, 1, "blocking rlock -> acquired")
		r.RUnlock(c)
		log.logf(c, 1, "released")
	})
	cycles := m.Run()
	log.hostf("run complete at %d cycles", cycles)
	sn := l.Stats().Snapshot()
	log.hostf("goll.timeout=%d goll.handoff=%d", sn.Counter("goll.timeout"), sn.Counter("goll.handoff"))
}

// scriptGOLLWriteTimeoutReopen: a writer times out of the wait queue
// while a reader holds the lock, leaving the indicator it closed with
// an empty queue — the reader's release must reopen it through the
// drain's nil-batch hand-off, proven by the writer's later blocking
// acquisition succeeding on the root fast path.
func scriptGOLLWriteTimeoutReopen(log *scriptLog) {
	m := sim.New(scriptConfig())
	l := NewGOLL(m, 2)
	r, w := l.NewProc(0), l.NewProc(1)
	m.Spawn(func(c *sim.Ctx) {
		r.RLock(c)
		log.logf(c, 0, "read lock held")
		c.Work(6000)
		r.RUnlock(c)
		log.logf(c, 0, "read lock released (drain reopens closed indicator)")
	})
	m.Spawn(func(c *sim.Ctx) {
		c.Work(200) // let the reader arrive first
		wp := w.(CancelProc)
		ok := wp.LockUntil(c, c.Now()+1000)
		log.logf(c, 1, "lock-until +1000 -> %s", okName(ok))
		if ok {
			w.Unlock(c)
		}
		c.Work(10000) // stay away until the reader's release has drained
		w.Lock(c)
		log.logf(c, 1, "blocking lock -> acquired (indicator was reopened)")
		w.Unlock(c)
		log.logf(c, 1, "released")
	})
	cycles := m.Run()
	log.hostf("run complete at %d cycles", cycles)
	sn := l.Stats().Snapshot()
	log.hostf("goll.timeout=%d csnzi.open=%d", sn.Counter("goll.timeout"), sn.Counter("csnzi.open"))
}

// scriptGOLLQueueCancelMulti: three readers queue behind a long writer
// hold with staggered deadlines; the short two unlink mid-queue (the
// removal must not disturb the surviving entry), the long one collects
// the release hand-off.
func scriptGOLLQueueCancelMulti(log *scriptLog) {
	m := sim.New(scriptConfig())
	l := NewGOLL(m, 4)
	w := l.NewProc(0)
	rs := []Proc{l.NewProc(1), l.NewProc(2), l.NewProc(3)}
	m.Spawn(func(c *sim.Ctx) {
		w.Lock(c)
		log.logf(c, 0, "write lock held")
		c.Work(8000)
		w.Unlock(c)
		log.logf(c, 0, "write lock released")
	})
	deadlines := []int64{1000, 2000, 30000}
	for i, r := range rs {
		id, r, dl := i+1, r, deadlines[i]
		m.Spawn(func(c *sim.Ctx) {
			c.Work(int64(200 + 100*id)) // staggered arrivals behind the writer
			ok := r.(CancelProc).RLockUntil(c, c.Now()+dl)
			log.logf(c, id, "rlock-until +%d -> %s", dl, okName(ok))
			if ok {
				r.RUnlock(c)
				log.logf(c, id, "released")
			}
		})
	}
	cycles := m.Run()
	log.hostf("run complete at %d cycles", cycles)
	sn := l.Stats().Snapshot()
	log.hostf("goll.timeout=%d goll.handoff=%d", sn.Counter("goll.timeout"), sn.Counter("goll.handoff"))
}

// scriptCentralTimeout: the retry-loop backout shape on the naive
// centralized lock — timed read and write attempts under a long write
// hold expire, then a generous deadline succeeds after the release.
func scriptCentralTimeout(log *scriptLog) {
	m := sim.New(scriptConfig())
	l := NewCentral(m, 2)
	w, r := l.NewProc(0), l.NewProc(1)
	m.Spawn(func(c *sim.Ctx) {
		w.Lock(c)
		log.logf(c, 0, "write lock held")
		c.Work(5000)
		w.Unlock(c)
		log.logf(c, 0, "write lock released")
	})
	m.Spawn(func(c *sim.Ctx) {
		c.Work(200)
		rp := r.(CancelProc)
		ok := rp.RLockUntil(c, c.Now()+500)
		log.logf(c, 1, "rlock-until +500 -> %s", okName(ok))
		ok = rp.LockUntil(c, c.Now()+500)
		log.logf(c, 1, "lock-until +500 -> %s", okName(ok))
		ok = rp.RLockUntil(c, c.Now()+50000)
		log.logf(c, 1, "rlock-until +50000 -> %s", okName(ok))
		if ok {
			r.RUnlock(c)
			log.logf(c, 1, "released")
		}
	})
	cycles := m.Run()
	log.hostf("run complete at %d cycles", cycles)
}
