package simlock

import (
	"fmt"

	"ollock/internal/obs"
	"ollock/internal/sim"
	"ollock/internal/xrand"
)

// Result is the outcome of one simulated throughput experiment (one
// point of a Figure 5 curve).
type Result struct {
	Lock         string
	Threads      int
	ReadFraction float64
	OpsPerThread int
	TotalOps     int64
	Cycles       int64
	// Throughput is acquisitions per second at the modeled clock rate.
	Throughput float64
	// RemoteFraction is the fraction of memory accesses that crossed
	// chips (diagnostic for the 64-thread cliff).
	RemoteFraction float64
}

// Experiment fully describes one simulated throughput measurement.
type Experiment struct {
	Factory      Factory
	Machine      sim.Config
	Threads      int
	ReadFraction float64
	OpsPerThread int
	Seed         uint64
	// CriticalWork is the cycles of local computation performed inside
	// each critical section. The paper uses 0 (empty sections); sweeping
	// it shows where the lock stops being the bottleneck.
	CriticalWork int64
	// WriteBurstiness makes write acquisitions clump in time: after a
	// write, the next acquisition is another write with this
	// probability (0 = the paper's i.i.d. mix). The long-run write
	// fraction is held at 1-ReadFraction by lowering the read->write
	// switch rate accordingly. Bursty writers are the regime where
	// ROLL's group coalescing should pay most.
	WriteBurstiness float64
}

// RunExperiment executes the paper's §5.1 workload on the simulator:
// threads simulated threads repeatedly acquire and release one lock with
// an empty critical section, choosing read vs. write from a private PRNG
// with the given read fraction.
func RunExperiment(f Factory, mcfg sim.Config, threads int, readFraction float64, opsPerThread int, seed uint64) Result {
	return RunConfigured(Experiment{
		Factory:      f,
		Machine:      mcfg,
		Threads:      threads,
		ReadFraction: readFraction,
		OpsPerThread: opsPerThread,
		Seed:         seed,
	})
}

// RunConfigured executes a fully-specified experiment.
func RunConfigured(e Experiment) Result {
	res, _ := runConfiguredOn(e)
	return res
}

// InstrumentedResult extends Result with the BRAVO wrapper's fast-path
// accounting (zero for unwrapped locks) and the lock's full obs
// counter Snapshot (empty for uninstrumented baseline kinds).
type InstrumentedResult struct {
	Result
	// FastReads / SlowReads split read acquisitions by path taken.
	FastReads, SlowReads int64
	// Revocations counts writer-side bias revocations.
	Revocations int64
	// Snapshot carries the lock's internal counters (csnzi.*, goll.*,
	// foll.*, roll.*, bravo.*), deterministic for a fixed seed.
	Snapshot obs.Snapshot
}

// RunInstrumented is RunExperiment plus the wrapper counters, for
// quantifying how often the biased fast path actually hit.
func RunInstrumented(f Factory, mcfg sim.Config, threads int, readFraction float64, opsPerThread int, seed uint64) InstrumentedResult {
	res, l := runConfiguredOn(Experiment{
		Factory:      f,
		Machine:      mcfg,
		Threads:      threads,
		ReadFraction: readFraction,
		OpsPerThread: opsPerThread,
		Seed:         seed,
	})
	out := InstrumentedResult{Result: res}
	if b, ok := l.(*Bravo); ok {
		out.FastReads, out.SlowReads, out.Revocations = b.FastReads, b.SlowReads, b.Revocations
	}
	out.Snapshot = StatsOf(l).Snapshot()
	return out
}

// runConfiguredOn executes the experiment and additionally returns the
// lock instance, so instrumented callers can read its counters.
func runConfiguredOn(e Experiment) (Result, Lock) {
	f, mcfg, threads := e.Factory, e.Machine, e.Threads
	readFraction, opsPerThread, seed := e.ReadFraction, e.OpsPerThread, e.Seed
	if threads <= 0 || opsPerThread <= 0 {
		panic("simlock: threads and opsPerThread must be positive")
	}
	m := sim.New(mcfg)
	l := f.New(m, threads)
	// With burstiness b and target write fraction w, the two-state
	// Markov chain's write->write probability is b and its read->write
	// probability solves the stationary equation w = pRW/(pRW+1-b).
	// With burstiness 0 the mix is i.i.d.: both transition probabilities
	// equal the write fraction (pWW=0 would instead force a read after
	// every write — an anti-bursty chain that skews the realized mix).
	writeFrac := 1 - readFraction
	pWW := writeFrac
	pRW := writeFrac
	if b := e.WriteBurstiness; b > 0 && writeFrac < 1 && writeFrac > 0 {
		pWW = b
		pRW = writeFrac * (1 - b) / (1 - writeFrac)
		if pRW > 1 {
			pRW = 1
		}
	}
	for i := 0; i < threads; i++ {
		p := l.NewProc(i)
		rng := xrand.New(seed + uint64(i)*0x9E3779B9 + 1)
		m.Spawn(func(c *sim.Ctx) {
			lastWrite := false
			for j := 0; j < opsPerThread; j++ {
				var write bool
				if lastWrite {
					write = rng.Bool(pWW)
				} else {
					write = rng.Bool(pRW)
				}
				lastWrite = write
				if !write {
					p.RLock(c)
					if e.CriticalWork > 0 {
						c.Work(e.CriticalWork)
					}
					p.RUnlock(c)
				} else {
					p.Lock(c)
					if e.CriticalWork > 0 {
						c.Work(e.CriticalWork)
					}
					p.Unlock(c)
				}
			}
		})
	}
	cycles := m.Run()
	total := int64(threads) * int64(opsPerThread)
	var accesses, remote int64
	for _, st := range m.ThreadStats() {
		accesses += st.Accesses
		remote += st.Remote
	}
	res := Result{
		Lock:         f.Name,
		Threads:      threads,
		ReadFraction: readFraction,
		OpsPerThread: opsPerThread,
		TotalOps:     total,
		Cycles:       cycles,
	}
	if cycles > 0 {
		res.Throughput = float64(total) / (float64(cycles) / sim.ClockHz)
	}
	if accesses > 0 {
		res.RemoteFraction = float64(remote) / float64(accesses)
	}
	return res, l
}

// CheckResult reports the invariant check of VerifyExclusion.
type CheckResult struct {
	Violations int
	TotalOps   int64
}

// VerifyExclusion runs the workload with a critical section that checks
// the reader-writer exclusion invariant. Host-memory counters are safe
// here because simulated threads execute one at a time; a Work call
// inside the critical section opens an interleaving window so that a
// broken lock would be caught.
func VerifyExclusion(f Factory, mcfg sim.Config, threads int, readFraction float64, opsPerThread int, seed uint64) CheckResult {
	m := sim.New(mcfg)
	l := f.New(m, threads)
	var readers, writers, violations int
	for i := 0; i < threads; i++ {
		p := l.NewProc(i)
		rng := xrand.New(seed + uint64(i)*0x51AF9E3 + 7)
		m.Spawn(func(c *sim.Ctx) {
			for j := 0; j < opsPerThread; j++ {
				if rng.Bool(readFraction) {
					p.RLock(c)
					readers++
					if writers != 0 {
						violations++
					}
					c.Work(20) // interleaving window
					if writers != 0 {
						violations++
					}
					readers--
					p.RUnlock(c)
				} else {
					p.Lock(c)
					writers++
					if writers != 1 || readers != 0 {
						violations++
					}
					c.Work(20)
					if writers != 1 || readers != 0 {
						violations++
					}
					writers--
					p.Unlock(c)
				}
			}
		})
	}
	m.Run()
	return CheckResult{
		Violations: violations,
		TotalOps:   int64(threads) * int64(opsPerThread),
	}
}

// LatencyStats summarizes acquisition latency for one kind of
// acquisition (virtual cycles from the start of the acquire call to
// lock ownership). P50 and P99 are log-bucket midpoint estimates from
// the obs histogram (the module's one histogram implementation); Max
// is exact.
type LatencyStats struct {
	Count    int64
	Mean     float64
	P50, P99 int64
	Max      int64
}

// latencyStatsOf summarizes one merged histogram.
func latencyStatsOf(h *obs.Histogram) LatencyStats {
	if h.Count() == 0 {
		return LatencyStats{}
	}
	return LatencyStats{
		Count: int64(h.Count()),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// LatencyResult extends Result with per-kind acquisition latency — the
// fairness side of the throughput coin: reader preference (ROLL) buys
// read throughput at the price of writer waiting time, FIFO (FOLL)
// bounds writer latency. The paper reports only throughput; this is the
// complementary measurement.
type LatencyResult struct {
	Result
	Read, Write LatencyStats
}

// RunLatencyExperiment is RunExperiment plus per-kind acquisition
// latency accounting.
func RunLatencyExperiment(f Factory, mcfg sim.Config, threads int, readFraction float64, opsPerThread int, seed uint64) LatencyResult {
	if threads <= 0 || opsPerThread <= 0 {
		panic("simlock: threads and opsPerThread must be positive")
	}
	m := sim.New(mcfg)
	l := f.New(m, threads)
	// Host-side histograms are safe: simulated threads execute one at a
	// time, so each histogram has a single writer at any instant.
	var readHist, writeHist obs.Histogram
	for i := 0; i < threads; i++ {
		p := l.NewProc(i)
		rng := xrand.New(seed + uint64(i)*0x9E3779B9 + 1)
		m.Spawn(func(c *sim.Ctx) {
			for j := 0; j < opsPerThread; j++ {
				t0 := c.Now()
				if rng.Bool(readFraction) {
					p.RLock(c)
					readHist.Record(c.Now() - t0)
					p.RUnlock(c)
				} else {
					p.Lock(c)
					writeHist.Record(c.Now() - t0)
					p.Unlock(c)
				}
			}
		})
	}
	cycles := m.Run()
	out := LatencyResult{
		Result: Result{
			Lock:         f.Name,
			Threads:      threads,
			ReadFraction: readFraction,
			OpsPerThread: opsPerThread,
			TotalOps:     int64(threads) * int64(opsPerThread),
			Cycles:       cycles,
		},
	}
	if cycles > 0 {
		out.Throughput = float64(out.TotalOps) / (float64(cycles) / sim.ClockHz)
	}
	out.Read = latencyStatsOf(&readHist)
	out.Write = latencyStatsOf(&writeHist)
	return out
}

// SweepResult is a lock's curve over thread counts at one read fraction.
type SweepResult struct {
	Lock         string
	ReadFraction float64
	Points       []Result
}

// Sweep runs RunExperiment for every thread count.
func Sweep(f Factory, mcfg sim.Config, threadCounts []int, readFraction float64, opsPerThread int, seed uint64) SweepResult {
	out := SweepResult{Lock: f.Name, ReadFraction: readFraction}
	for _, n := range threadCounts {
		out.Points = append(out.Points, RunExperiment(f, mcfg, n, readFraction, opsPerThread, seed))
	}
	return out
}

// String renders one result row.
func (r Result) String() string {
	return fmt.Sprintf("%-8s threads=%-4d read%%=%-5.1f throughput=%.3e acq/s remote=%.1f%%",
		r.Lock, r.Threads, r.ReadFraction*100, r.Throughput, r.RemoteFraction*100)
}
