package simlock

import (
	"ollock/internal/sim"
)

// MCSRW is the simulated Mellor-Crummey & Scott fair reader-writer lock
// (mirrors internal/mcs): per-thread queue nodes, a central
// reader_count, and a next_writer word — the prior-work design whose
// central counter updates on every read acquisition are exactly what
// the OLL locks eliminate.
type MCSRW struct {
	m           *sim.Machine
	tail        *sim.Word // node ref
	readerCount *sim.Word
	nextWriter  *sim.Word // node ref
	nodes       []*mcsNode
}

type mcsNode struct {
	class uint64 // 0 reader, 1 writer (stored in the state word's bit 3)
	next  *sim.Word
	state *sim.Word // bit 0 blocked, bits 1-2 successor class, bit 3 class
}

// State word bits (mirrors internal/mcs's packed state).
const (
	mBlocked    = uint64(1)
	mSuccNone   = uint64(0) << 1
	mSuccReader = uint64(1) << 1
	mSuccWriter = uint64(2) << 1
	mSuccMask   = uint64(3) << 1
	mClassWrite = uint64(1) << 3
)

// NewMCSRW allocates an MCS fair reader-writer lock on m.
func NewMCSRW(m *sim.Machine, maxProcs int) *MCSRW {
	return &MCSRW{
		m:           m,
		tail:        m.NewWord(0),
		readerCount: m.NewWord(0),
		nextWriter:  m.NewWord(0),
	}
}

type mcsrwProc struct {
	l   *MCSRW
	idx int
}

// NewProc returns the per-thread handle owning one queue node. Call
// during setup.
func (l *MCSRW) NewProc(id int) Proc {
	n := &mcsNode{
		next:  l.m.NewWord(0),
		state: l.m.NewWord(0),
	}
	l.nodes = append(l.nodes, n)
	return &mcsrwProc{l: l, idx: len(l.nodes) - 1}
}

func (n *mcsNode) clearBlocked(c *sim.Ctx) {
	for {
		old := c.Load(n.state)
		if c.CAS(n.state, old, old&^mBlocked) {
			return
		}
	}
}

func (n *mcsNode) setSuccWriter(c *sim.Ctx) {
	for {
		old := c.Load(n.state)
		if c.CAS(n.state, old, (old&^mSuccMask)|mSuccWriter) {
			return
		}
	}
}

func (p *mcsrwProc) RLock(c *sim.Ctx) {
	l := p.l
	me := l.nodes[p.idx]
	c.Store(me.next, 0)
	c.Store(me.state, mBlocked|mSuccNone) // class bit 0 = reader
	predRef := c.Swap(l.tail, ref(p.idx))
	if isNil(predRef) {
		c.Add(l.readerCount, 1)
		me.clearBlocked(c)
	} else {
		pred := l.nodes[deref(predRef)]
		// Exactly the published decision: a writer predecessor, or a
		// still-blocked reader predecessor (single-shot CAS registering
		// us as its reading successor), will wake us; any other reader
		// predecessor is active, so we count ourselves in and go. A
		// blocked reader's state is exactly mBlocked|mSuccNone (only its
		// unique successor — us — ever sets the successor class).
		if c.Load(pred.state)&mClassWrite != 0 ||
			c.CAS(pred.state, mBlocked|mSuccNone, mBlocked|mSuccReader) {
			c.Store(pred.next, ref(p.idx))
			c.SpinUntil(me.state, func(v uint64) bool { return v&mBlocked == 0 })
		} else {
			c.Add(l.readerCount, 1)
			c.Store(pred.next, ref(p.idx))
			me.clearBlocked(c)
		}
	}
	// Chain admission of a reading successor.
	if c.Load(me.state)&mSuccMask == mSuccReader {
		succRef := c.SpinUntil(me.next, func(v uint64) bool { return v != 0 })
		c.Add(l.readerCount, 1)
		l.nodes[deref(succRef)].clearBlocked(c)
	}
}

func (p *mcsrwProc) RUnlock(c *sim.Ctx) {
	l := p.l
	me := l.nodes[p.idx]
	if c.Load(me.next) != 0 || !c.CAS(l.tail, ref(p.idx), 0) {
		succRef := c.SpinUntil(me.next, func(v uint64) bool { return v != 0 })
		if c.Load(me.state)&mSuccMask == mSuccWriter {
			c.Store(l.nextWriter, succRef)
		}
	}
	if c.Add(l.readerCount, ^uint64(0)) == 0 {
		if w := c.Swap(l.nextWriter, 0); !isNil(w) {
			l.nodes[deref(w)].clearBlocked(c)
		}
	}
}

func (p *mcsrwProc) Lock(c *sim.Ctx) {
	l := p.l
	me := l.nodes[p.idx]
	c.Store(me.next, 0)
	c.Store(me.state, mBlocked|mSuccNone|mClassWrite)
	predRef := c.Swap(l.tail, ref(p.idx))
	if isNil(predRef) {
		c.Store(l.nextWriter, ref(p.idx))
		if c.Load(l.readerCount) == 0 && c.Swap(l.nextWriter, 0) == ref(p.idx) {
			me.clearBlocked(c)
		}
	} else {
		pred := l.nodes[deref(predRef)]
		pred.setSuccWriter(c)
		c.Store(pred.next, ref(p.idx))
	}
	c.SpinUntil(me.state, func(v uint64) bool { return v&mBlocked == 0 })
}

func (p *mcsrwProc) Unlock(c *sim.Ctx) {
	l := p.l
	me := l.nodes[p.idx]
	if c.Load(me.next) != 0 || !c.CAS(l.tail, ref(p.idx), 0) {
		succRef := c.SpinUntil(me.next, func(v uint64) bool { return v != 0 })
		succ := l.nodes[deref(succRef)]
		if c.Load(succ.state)&mClassWrite == 0 {
			c.Add(l.readerCount, 1)
		}
		succ.clearBlocked(c)
	}
}
