package simlock

import (
	"ollock/internal/sim"
)

// Hsieh is the simulated Hsieh–Weihl lock (mirrors internal/hsieh): one
// private mutex per thread; readers lock their own, writers lock all of
// them in order. Reads scale perfectly — each reader touches only its
// own line — but writer cost grows linearly with the thread count,
// quantifying the paper's §1 judgment that the approach "is feasible
// only for low numbers of threads".
type Hsieh struct {
	slots []*sim.Word
}

// NewHsieh allocates a Hsieh–Weihl lock with maxProcs private mutexes.
func NewHsieh(m *sim.Machine, maxProcs int) *Hsieh {
	l := &Hsieh{}
	for i := 0; i < maxProcs; i++ {
		l.slots = append(l.slots, m.NewWord(0))
	}
	return l
}

type hsiehProc struct {
	l  *Hsieh
	id int
}

// NewProc returns the per-thread handle (owning private mutex id).
func (l *Hsieh) NewProc(id int) Proc {
	if id < 0 || id >= len(l.slots) {
		panic("simlock: hsieh proc id out of range")
	}
	return &hsiehProc{l: l, id: id}
}

func (p *hsiehProc) RLock(c *sim.Ctx)   { lockWord(c, p.l.slots[p.id]) }
func (p *hsiehProc) RUnlock(c *sim.Ctx) { unlockWord(c, p.l.slots[p.id]) }

func (p *hsiehProc) Lock(c *sim.Ctx) {
	for _, s := range p.l.slots {
		lockWord(c, s)
	}
}

func (p *hsiehProc) Unlock(c *sim.Ctx) {
	for _, s := range p.l.slots {
		unlockWord(c, s)
	}
}
