package simlock

import (
	"strings"
	"testing"

	"ollock/internal/sim"
	"ollock/internal/xrand"
)

// The acceptance property of the scripted scenarios: replaying a
// script yields byte-identical logs (the simulator is a pure function
// of its inputs, and the cancellation paths must not break that — a
// host-time leak or map-order dependency would show up here).
func TestCancelScriptsReplayByteIdentical(t *testing.T) {
	for _, name := range CancelScripts() {
		name := name
		t.Run(name, func(t *testing.T) {
			first := RunCancelScript(name)
			if first == "" {
				t.Fatal("empty script log")
			}
			second := RunCancelScript(name)
			if first != second {
				t.Errorf("replay diverged:\n--- first ---\n%s--- second ---\n%s", first, second)
			}
		})
	}
}

// Each script's log must show the outcome it was built to stage.
func TestCancelScriptOutcomes(t *testing.T) {
	cases := []struct {
		script string
		want   []string
	}{
		{"goll-read-timeout", []string{
			"rlock-until +1000 -> timeout",
			"blocking rlock -> acquired",
			"goll.timeout=1",
		}},
		{"goll-write-timeout-reopen", []string{
			"lock-until +1000 -> timeout",
			"blocking lock -> acquired (indicator was reopened)",
			"goll.timeout=1",
		}},
		{"goll-queue-cancel-multi", []string{
			"rlock-until +1000 -> timeout",
			"rlock-until +2000 -> timeout",
			"rlock-until +30000 -> acquired",
			"goll.timeout=2",
		}},
		{"central-timeout", []string{
			"rlock-until +500 -> timeout",
			"lock-until +500 -> timeout",
			"rlock-until +50000 -> acquired",
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.script, func(t *testing.T) {
			log := RunCancelScript(tc.script)
			for _, want := range tc.want {
				if !strings.Contains(log, want) {
					t.Errorf("log missing %q:\n%s", want, log)
				}
			}
		})
	}
}

func TestRunCancelScriptUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown script name")
		}
	}()
	RunCancelScript("no-such-script")
}

// verifyCancelExclusion runs a randomized mix of blocking and timed
// acquisitions against one simulated lock with the exclusion invariant
// checked inside every critical section — the sim counterpart of the
// host chaos torture's invariant checks, minus real preemption.
func verifyCancelExclusion(t *testing.T, name string, mk func(m *sim.Machine, n int) Lock) {
	t.Helper()
	const threads, ops = 8, 120
	m := sim.New(scriptConfig())
	l := mk(m, threads)
	var readers, writers, violations, timeouts int
	for i := 0; i < threads; i++ {
		p := l.NewProc(i).(CancelProc)
		rng := xrand.New(uint64(i)*0x9E3779B9 + 12345)
		m.Spawn(func(c *sim.Ctx) {
			for j := 0; j < ops; j++ {
				readBody := func() {
					readers++
					if writers != 0 {
						violations++
					}
					c.Work(20)
					readers--
				}
				writeBody := func() {
					writers++
					if writers != 1 || readers != 0 {
						violations++
					}
					c.Work(20)
					writers--
				}
				d := int64(50 + rng.Intn(800))
				switch draw := rng.Intn(100); {
				case draw < 30:
					p.RLock(c)
					readBody()
					p.RUnlock(c)
				case draw < 50:
					p.Lock(c)
					writeBody()
					p.Unlock(c)
				case draw < 80:
					if p.RLockUntil(c, c.Now()+d) {
						readBody()
						p.RUnlock(c)
					} else {
						timeouts++
					}
				default:
					if p.LockUntil(c, c.Now()+d) {
						writeBody()
						p.Unlock(c)
					} else {
						timeouts++
					}
				}
			}
		})
	}
	m.Run()
	if violations != 0 {
		t.Errorf("%s: %d exclusion violations", name, violations)
	}
	if timeouts == 0 {
		t.Errorf("%s: no acquisition ever timed out — deadlines too generous to exercise the cancel paths", name)
	}
}

// TestCancelExclusion covers the two sim kinds with timed acquisition,
// the GOLL over each read-indicator variant (the cancel path touches
// the indicator only through the Indicator interface, but the nil-batch
// reopen must hold for every implementation).
func TestCancelExclusion(t *testing.T) {
	cases := []struct {
		name string
		mk   func(m *sim.Machine, n int) Lock
	}{
		{"central", func(m *sim.Machine, n int) Lock { return NewCentral(m, n) }},
		{"goll", func(m *sim.Machine, n int) Lock { return NewGOLL(m, n) }},
		{"goll-central", func(m *sim.Machine, n int) Lock { return NewGOLLInd(m, n, "goll-central", CentralIndicator) }},
		{"goll-sharded", func(m *sim.Machine, n int) Lock { return NewGOLLInd(m, n, "goll-sharded", ShardedIndicator) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			verifyCancelExclusion(t, tc.name, tc.mk)
		})
	}
}
