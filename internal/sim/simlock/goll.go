package simlock

import (
	"ollock/internal/obs"
	"ollock/internal/sim"
	"ollock/internal/trace"
)

// GOLL is the simulated GOLL lock (mirrors internal/goll): a closable
// read indicator holding the lock state plus a mutex-protected wait
// queue with Solaris-policy hand-off.
type GOLL struct {
	m     *sim.Machine
	cs    Indicator
	meta  simMutex
	q     simWaitQueue
	stats *obs.Stats
	tr    *SimTracer
	pol   *WaitPolicy
}

// NewGOLL allocates a GOLL lock on m over the default C-SNZI indicator
// sized for maxProcs threads.
func NewGOLL(m *sim.Machine, maxProcs int) *GOLL {
	return NewGOLLInd(m, maxProcs, "goll", CSNZIIndicator)
}

// NewGOLLInd is NewGOLL with an explicit read-indicator choice
// (mirrors ollock.WithIndicator); name labels the stats block.
func NewGOLLInd(m *sim.Machine, maxProcs int, name string, f IndicatorFactory) *GOLL {
	l := &GOLL{
		m:     m,
		cs:    f(m, maxProcs),
		meta:  newSimMutex(m),
		stats: obs.New(obs.WithName(name), obs.WithStripes(1), obs.WithScopes("csnzi", "goll")),
	}
	l.cs.SetStats(l.stats)
	return l
}

// Stats returns the lock's obs counter block, which mirrors the
// counter names of the real internal/goll lock under WithStats.
func (l *GOLL) Stats() *obs.Stats { return l.stats }

// SetTracer attaches a trace-event collector mirroring the emission
// points of the real lock under ollock.WithTrace. Host-side setup;
// call before Machine.Run.
func (l *GOLL) SetTracer(tr *SimTracer) { l.tr = tr }

// SetWaitPolicy attaches a wait policy mirroring ollock.WithWait: queue
// waiters descend the policy's ladder (or poll waiting-array slots)
// instead of spinning on their flag word, and the park counter scope is
// added to the stats block. Host-side setup; call before NewProc.
func (l *GOLL) SetWaitPolicy(p *WaitPolicy) {
	l.pol = p
	p.attach(l.stats)
}

type gollProc struct {
	l      *GOLL
	id     int
	flag   *sim.Word
	slot   *sim.Word
	ticket Ticket
}

// NewProc returns the per-thread handle. Call during setup.
func (l *GOLL) NewProc(id int) Proc {
	return &gollProc{l: l, id: id, flag: l.m.NewWord(0), slot: l.pol.slotFor(uint32(id) + 1)}
}

func (p *gollProc) RLock(c *sim.Ctx) {
	l := p.l
	for {
		p.ticket = l.cs.Arrive(c, p.id)
		if p.ticket.Arrived() {
			l.tr.emit(c, p.id, trace.KindReadAcquired, trace.PhaseNone, routeOf(p.ticket))
			return
		}
		l.tr.emit(c, p.id, trace.KindArriveFail, trace.PhaseNone, trace.RouteNone)
		l.meta.lock(c)
		if _, open := l.cs.Query(c); open {
			l.meta.unlock(c)
			continue
		}
		c.Store(p.flag, 0)
		l.q.enqueue(c, false, p.flag, p.slot)
		l.meta.unlock(c)
		l.tr.emit(c, p.id, trace.KindQueueEnqueue, trace.PhaseNone, trace.RouteNone)
		l.tr.emit(c, p.id, trace.KindPhaseBegin, trace.PhaseQueueWait, trace.RouteNone)
		p.ticket = TicketDirect // releaser pre-arrives at the root for us
		l.pol.waitUntil(c, l.stats, p.id, p.slot, p.flag, func(v uint64) bool { return v == 1 })
		l.tr.emit(c, p.id, trace.KindReadAcquired, trace.PhaseNone, trace.RouteDirect)
		return
	}
}

func (p *gollProc) RUnlock(c *sim.Ctx) {
	l := p.l
	if l.cs.Depart(c, p.ticket) {
		l.tr.emit(c, p.id, trace.KindReadReleased, trace.PhaseNone, trace.RouteNone)
		return
	}
	l.tr.emit(c, p.id, trace.KindIndDrain, trace.PhaseNone, trace.RouteNone)
	l.meta.lock(c)
	batch, writerBatch := l.q.dequeueHandoff(c, false)
	if !writerBatch {
		l.cs.OpenWithArrivals(c, len(batch), l.q.numWriters > 0)
		l.tr.emit(c, p.id, trace.KindIndOpen, trace.PhaseNone, trace.RouteNone)
	}
	l.meta.unlock(c)
	l.stats.Inc(obs.GOLLHandoff, p.id)
	l.tr.emit(c, p.id, trace.KindHandoff, trace.PhaseNone, trace.RouteNone)
	signalBatch(c, batch)
	l.tr.emit(c, p.id, trace.KindReadReleased, trace.PhaseNone, trace.RouteNone)
}

func (p *gollProc) Lock(c *sim.Ctx) {
	l := p.l
	w0 := c.Now()
	if l.cs.CloseIfEmpty(c) {
		l.tr.emit(c, p.id, trace.KindWriteAcquired, trace.PhaseNone, trace.RouteRoot)
		l.stats.Observe(obs.GOLLWriteWait, p.id, c.Now()-w0)
		return
	}
	l.meta.lock(c)
	if l.cs.Close(c) {
		l.meta.unlock(c)
		l.tr.emit(c, p.id, trace.KindWriteAcquired, trace.PhaseNone, trace.RouteRoot)
		l.stats.Observe(obs.GOLLWriteWait, p.id, c.Now()-w0)
		return
	}
	l.tr.emit(c, p.id, trace.KindIndClose, trace.PhaseNone, trace.RouteNone)
	c.Store(p.flag, 0)
	l.q.enqueue(c, true, p.flag, p.slot)
	l.meta.unlock(c)
	l.tr.emit(c, p.id, trace.KindQueueEnqueue, trace.PhaseNone, trace.RouteNone)
	l.tr.emit(c, p.id, trace.KindPhaseBegin, trace.PhaseQueueWait, trace.RouteNone)
	l.pol.waitUntil(c, l.stats, p.id, p.slot, p.flag, func(v uint64) bool { return v == 1 })
	l.tr.emit(c, p.id, trace.KindWriteAcquired, trace.PhaseNone, trace.RouteDirect)
	l.stats.Observe(obs.GOLLWriteWait, p.id, c.Now()-w0)
}

func (p *gollProc) Unlock(c *sim.Ctx) {
	l := p.l
	l.meta.lock(c)
	batch, writerBatch := l.q.dequeueHandoff(c, true)
	if batch == nil {
		l.cs.Open(c)
		l.meta.unlock(c)
		l.tr.emit(c, p.id, trace.KindIndOpen, trace.PhaseNone, trace.RouteNone)
		l.tr.emit(c, p.id, trace.KindWriteReleased, trace.PhaseNone, trace.RouteNone)
		return
	}
	if !writerBatch {
		l.cs.OpenWithArrivals(c, len(batch), l.q.numWriters > 0)
		l.tr.emit(c, p.id, trace.KindIndOpen, trace.PhaseNone, trace.RouteNone)
	}
	l.meta.unlock(c)
	l.stats.Inc(obs.GOLLHandoff, p.id)
	l.tr.emit(c, p.id, trace.KindHandoff, trace.PhaseNone, trace.RouteNone)
	signalBatch(c, batch)
	l.tr.emit(c, p.id, trace.KindWriteReleased, trace.PhaseNone, trace.RouteNone)
}
