// Package simlock ports every reader-writer lock in this module onto the
// discrete-event simulator (package sim), so the paper's Figure 5 — five
// locks, 1 to 256 hardware threads on a 4-chip machine — can be
// regenerated on any host. Each port issues the same pattern of shared
// memory accesses as its real counterpart; the simulator charges each
// access its coherence cost, which is where all of Figure 5's phenomena
// come from.
package simlock

import (
	"fmt"

	"ollock/internal/obs"
	"ollock/internal/sim"
)

// C-SNZI root word layout: identical to the real implementation
// (internal/csnzi): bit 63 closed, bits 31..61 tree count, bits 0..30
// direct count.
const (
	closedBit = uint64(1) << 63
	treeOne   = uint64(1) << 31
	count31   = (uint64(1) << 31) - 1
)

func csDirect(w uint64) uint64 { return w & count31 }
func csTree(w uint64) uint64   { return (w >> 31) & count31 }
func csClosed(w uint64) bool   { return w&closedBit != 0 }
func csSurplus(w uint64) uint64 {
	return csDirect(w) + csTree(w)
}

// Tree-node word layout: low bits count, plus two transient flags
// implementing the intermediate-state optimization the paper's
// implementation uses (§2.2, "required to reduce the contention on the
// root node ... does not add any additional CompareAndSwap operations"):
//
//   - halfBit: a zero-crossing arrival is in flight. The thread that
//     CASes 0 -> halfBit|1 (the claimer) performs the single parent
//     arrival. Concurrent arrivers do NOT race to the parent and do NOT
//     park either — they count themselves provisionally (CAS +1 under
//     halfBit) and wait for the resolution. Provisional counting is what
//     keeps the node's surplus accumulating during the (long) parent
//     arrival; parking instead would drain the group and re-trigger a
//     propagation on every acquire/release cycle.
//   - failBit: the parent arrival failed (C-SNZI closed with no
//     surplus). Provisional arrivers un-count themselves and fail; the
//     last one returns the node to zero.
const (
	halfBit       = uint64(1) << 62
	failBit       = uint64(1) << 63
	nodeCountMask = halfBit - 1
)

// Ticket identifies where a simulated arrival landed.
type Ticket int

// Ticket values: failed, direct (root), or a leaf index.
const (
	TicketFailed Ticket = -2
	TicketDirect Ticket = -1
)

// Arrived reports whether the arrival succeeded.
func (t Ticket) Arrived() bool { return t != TicketFailed }

// csNode is one tree node; parent < 0 means its parent is the root
// word.
type csNode struct {
	w      *sim.Word
	parent int
}

// CSNZI is the simulated closable scalable nonzero indicator, shaped by
// the machine topology the way a tuned implementation on the T5440
// would be: one leaf per core (its threads share the leaf through the
// core's L1, keeping the surplus mostly nonzero), one intermediate node
// per chip (leaf zero-crossings propagate only on-chip), and the root
// above the chips (written only when an entire chip's surplus drains —
// rare, so root reads stay cached and readers scale).
type CSNZI struct {
	root   *sim.Word
	nodes  []csNode // leaves first, then chip nodes
	leafOf []int    // thread id -> leaf node index (-1 = use root)

	// Diagnostic counters (safe as plain ints: the simulation executes
	// one thread at a time).
	StatRootCAS, StatNodeCAS, StatPropagate int64

	// stats mirrors the real implementation's csnzi.* counters (see
	// internal/obs). Host-side, so free in virtual time; single-striped
	// because the simulation is single-threaded.
	stats *obs.Stats
}

// SetStats attaches the obs counter block a containing lock shares
// with its C-SNZIs, mirroring csnzi.CSNZI.SetStats.
func (s *CSNZI) SetStats(st *obs.Stats) { s.stats = st }

// InitClosed sets the root to closed with zero surplus before the
// simulation starts (host-side; ring-pool nodes start closed).
func (s *CSNZI) InitClosed() { s.root.Init(closedBit) }

// CSNZIConfig sizes a simulated C-SNZI.
type CSNZIConfig struct {
	// Direct disables the tree entirely: all arrivals go to the root
	// word (the right choice when all participants share one core).
	Direct bool
	// Threads is the number of participating thread ids (0..Threads-1).
	Threads int
}

// DefaultCSNZIConfig picks the §5.1-style tuning for the topology: the
// tree is disabled while every participant fits in one core, and
// otherwise shaped core-leaves/chip-nodes/root as described on CSNZI.
func DefaultCSNZIConfig(m *sim.Machine, threads int) CSNZIConfig {
	return CSNZIConfig{
		Direct:  threads <= m.Config().ThreadsPerCore,
		Threads: threads,
	}
}

// NewCSNZI allocates an open simulated C-SNZI on machine m.
func NewCSNZI(m *sim.Machine, cfg CSNZIConfig) *CSNZI {
	s := &CSNZI{root: m.NewWord(0)}
	if cfg.Direct || cfg.Threads <= 0 {
		return s
	}
	mc := m.Config()
	coresPerChip := mc.ThreadsPerChip / mc.ThreadsPerCore
	nCores := (cfg.Threads + mc.ThreadsPerCore - 1) / mc.ThreadsPerCore
	nChips := (nCores + coresPerChip - 1) / coresPerChip

	// Chip nodes (parents of leaves) come after the leaves in s.nodes.
	for core := 0; core < nCores; core++ {
		s.nodes = append(s.nodes, csNode{w: m.NewWord(0), parent: nCores + core/coresPerChip})
	}
	for chip := 0; chip < nChips; chip++ {
		parent := -1 // root
		s.nodes = append(s.nodes, csNode{w: m.NewWord(0), parent: parent})
	}
	if nChips == 1 {
		// Single chip: skip the intermediate layer, leaves hang off the
		// root directly (no benefit from an extra hop).
		s.nodes = s.nodes[:nCores]
		for i := range s.nodes {
			s.nodes[i].parent = -1
		}
	}
	s.leafOf = make([]int, cfg.Threads)
	for id := range s.leafOf {
		s.leafOf[id] = id / mc.ThreadsPerCore
	}
	return s
}

// Arrive mirrors csnzi.CSNZI.Arrive with the tuned policy: direct root
// arrival when the tree is disabled, leaf arrival otherwise.
func (s *CSNZI) Arrive(c *sim.Ctx, id int) Ticket {
	if len(s.nodes) == 0 {
		for {
			old := c.Load(s.root)
			if csClosed(old) {
				s.stats.Inc(obs.CSNZIArriveFail, id)
				return TicketFailed
			}
			s.StatRootCAS++
			if c.CAS(s.root, old, old+1) {
				s.stats.Inc(obs.CSNZIArriveRoot, id)
				return TicketDirect
			}
			s.stats.Inc(obs.CSNZICASRetry, id)
		}
	}
	if csClosed(c.Load(s.root)) {
		s.stats.Inc(obs.CSNZIArriveFail, id)
		return TicketFailed
	}
	leaf := s.leafOf[id%len(s.leafOf)]
	if s.treeArrive(c, leaf) {
		s.stats.Inc(obs.CSNZIArriveTree, id)
		return Ticket(leaf)
	}
	s.stats.Inc(obs.CSNZIArriveFail, id)
	return TicketFailed
}

// treeArrive increments node idx. A zero-crossing is claimed with the
// intermediate state so exactly one thread performs the parent arrival;
// concurrent arrivers count themselves provisionally and await the
// resolution.
func (s *CSNZI) treeArrive(c *sim.Ctx, idx int) bool {
	n := s.nodes[idx]
	for {
		x := c.Load(n.w)
		switch {
		case x&failBit != 0:
			// A failed zero-crossing is unwinding; wait it out.
			c.SpinUntil(n.w, func(v uint64) bool { return v&failBit == 0 })
			continue

		case x&halfBit != 0:
			// Zero-crossing in flight: join provisionally.
			s.StatNodeCAS++
			if !c.CAS(n.w, x, x+1) {
				continue
			}
			// Wait for the claimer's resolution.
			v := c.SpinUntil(n.w, func(v uint64) bool { return v&halfBit == 0 })
			if v&failBit == 0 {
				return true // parent arrival succeeded; we are counted
			}
			// Failed: un-count ourselves; the last leaver zeroes the node.
			for {
				x := c.Load(n.w)
				cnt := x & nodeCountMask
				var next uint64
				if cnt == 1 {
					next = 0
				} else {
					next = failBit | (cnt - 1)
				}
				s.StatNodeCAS++
				if c.CAS(n.w, x, next) {
					return false
				}
			}

		case x > 0:
			s.StatNodeCAS++
			if c.CAS(n.w, x, x+1) {
				return true
			}

		default: // x == 0: claim the zero-crossing
			s.StatNodeCAS++
			if !c.CAS(n.w, 0, halfBit|1) {
				continue
			}
			s.StatPropagate++
			var ok bool
			if n.parent < 0 {
				ok = s.rootTreeArrive(c)
			} else {
				ok = s.treeArrive(c, n.parent)
			}
			// Resolve: clear halfBit on success; on failure un-count
			// ourselves and hand the unwind to any provisionals.
			for {
				x := c.Load(n.w)
				cnt := x & nodeCountMask
				var next uint64
				if ok {
					next = cnt
				} else if cnt == 1 {
					next = 0
				} else {
					next = failBit | (cnt - 1)
				}
				s.StatNodeCAS++
				if c.CAS(n.w, x, next) {
					return ok
				}
			}
		}
	}
}

// treeDepart decrements node idx, propagating the zero-crossing to the
// parent. A departer can never observe the intermediate state: its own
// outstanding arrival keeps the count >= 1.
func (s *CSNZI) treeDepart(c *sim.Ctx, idx int) bool {
	n := s.nodes[idx]
	for {
		x := c.Load(n.w)
		s.StatNodeCAS++
		if c.CAS(n.w, x, x-1) {
			if x == 1 {
				if n.parent < 0 {
					return s.rootTreeDepart(c)
				}
				return s.treeDepart(c, n.parent)
			}
			return true
		}
	}
}

func (s *CSNZI) rootTreeArrive(c *sim.Ctx) bool {
	for {
		old := c.Load(s.root)
		if old == closedBit {
			return false
		}
		s.StatRootCAS++
		if c.CAS(s.root, old, old+treeOne) {
			return true
		}
	}
}

func (s *CSNZI) rootTreeDepart(c *sim.Ctx) bool {
	for {
		old := c.Load(s.root)
		s.StatRootCAS++
		if c.CAS(s.root, old, old-treeOne) {
			return old-treeOne != closedBit
		}
	}
}

// Depart mirrors csnzi.CSNZI.Depart: returns false iff the C-SNZI ends
// closed with zero surplus.
func (s *CSNZI) Depart(c *sim.Ctx, t Ticket) bool {
	switch {
	case t == TicketDirect:
		for {
			old := c.Load(s.root)
			s.StatRootCAS++
			if c.CAS(s.root, old, old-1) {
				return old-1 != closedBit
			}
		}
	case t >= 0:
		return s.treeDepart(c, int(t))
	default:
		panic("simlock: Depart with failed ticket")
	}
}

// Close mirrors csnzi.CSNZI.Close.
func (s *CSNZI) Close(c *sim.Ctx) bool {
	for {
		old := c.Load(s.root)
		if csClosed(old) {
			return false
		}
		new := old | closedBit
		if c.CAS(s.root, old, new) {
			s.stats.Inc(obs.CSNZIClose, 0)
			return new == closedBit
		}
	}
}

// CloseIfEmpty mirrors csnzi.CSNZI.CloseIfEmpty.
func (s *CSNZI) CloseIfEmpty(c *sim.Ctx) bool {
	for {
		old := c.Load(s.root)
		if old != 0 {
			return false
		}
		if c.CAS(s.root, 0, closedBit) {
			s.stats.Inc(obs.CSNZIClose, 0)
			return true
		}
	}
}

// Open mirrors csnzi.CSNZI.Open.
func (s *CSNZI) Open(c *sim.Ctx) {
	if old := c.Load(s.root); old != closedBit {
		panic(fmt.Sprintf("simlock: Open on root=%#x", old))
	}
	s.stats.Inc(obs.CSNZIOpen, 0)
	c.Store(s.root, 0)
}

// OpenWithArrivals mirrors csnzi.CSNZI.OpenWithArrivals; the arrivals
// are direct.
func (s *CSNZI) OpenWithArrivals(c *sim.Ctx, cnt int, close bool) {
	s.stats.Inc(obs.CSNZIOpen, 0)
	w := uint64(cnt)
	if close {
		w |= closedBit
	}
	c.Store(s.root, w)
}

// Query returns (surplus nonzero, open). Surplus is read from the root,
// which is nonzero iff any node is (the SNZI tree invariant).
func (s *CSNZI) Query(c *sim.Ctx) (bool, bool) {
	w := c.Load(s.root)
	return csSurplus(w) > 0, !csClosed(w)
}

// QueryOpenSpin parks until the C-SNZI is open (used by the FOLL/ROLL
// writer waiting out the enqueue/Open recycling window).
func (s *CSNZI) QueryOpenSpin(c *sim.Ctx) {
	c.SpinUntil(s.root, func(v uint64) bool { return !csClosed(v) })
}
