package simlock

import (
	"ollock/internal/obs"
	"ollock/internal/sim"
)

// Bravo is the simulated BRAVO biased wrapper (mirrors internal/bravo):
// a per-wrapper visible-readers table of simulated words (each Word is
// its own cache line, matching the padded slots of the real table), a
// read-bias flag readers publish-then-re-check against, writer-side
// revocation that scans and drains the table before trusting the
// underlying lock, and the same operation-counted adaptive inhibition
// policy — so runs stay deterministic.
//
// The simulator port uses a per-wrapper table (slot value 1 = a
// fast-path reader of this lock is inside) rather than the real
// implementation's process-global one; the coherence behaviour under
// study is identical, since slots of distinct locks never share a cache
// line in either layout.
type Bravo struct {
	m       *sim.Machine
	base    Lock
	bias    *sim.Word
	inhibit *sim.Word
	table   []*sim.Word
	mask    uint64
	salt    uint64
	mult    uint64

	// Host-side accounting (free in virtual time, deterministic):
	// fast/slow read acquisitions and bias revocations.
	FastReads   int64
	SlowReads   int64
	Revocations int64

	// stats mirrors the real wrapper's bravo.* counters. When the
	// wrapped lock carries its own obs block the wrapper adopts it (one
	// Snapshot covers the whole stack, as in the real facade).
	stats *obs.Stats
}

// Stats returns the wrapper's obs counter block.
func (l *Bravo) Stats() *obs.Stats { return l.stats }

// Simulated policy constants; these mirror internal/bravo.
const (
	bravoMaxProbes    = 4
	bravoDrainWeight  = 16
	bravoInhibitBatch = 8
)

// NewBravo wraps base with the biased reader fast path. The table holds
// the next power of two above 2*maxProcs slots (at least 64), so slot
// assignment is collision-free for practical thread counts while the
// revocation scan cost stays proportional to the machine size.
func NewBravo(m *sim.Machine, maxProcs int, base Lock) *Bravo {
	size := 64
	for size < 2*maxProcs {
		size *= 2
	}
	l := &Bravo{
		m:       m,
		base:    base,
		bias:    m.NewWord(1),
		inhibit: m.NewWord(0),
		table:   make([]*sim.Word, size),
		mask:    uint64(size - 1),
		salt:    uint64(m.Words()),
		mult:    1,
	}
	for i := range l.table {
		l.table[i] = m.NewWord(0)
	}
	if b, ok := base.(interface{ Stats() *obs.Stats }); ok && b.Stats() != nil {
		l.stats = b.Stats()
		l.stats.AddScope("bravo")
	} else {
		l.stats = obs.New(obs.WithName("bravo"), obs.WithStripes(1), obs.WithScopes("bravo"))
	}
	return l
}

// WithMultiplier sets the inhibition multiplier (the paper's N) and
// returns the lock, for sweep configuration.
func (l *Bravo) WithMultiplier(n int) *Bravo {
	if n > 0 {
		l.mult = uint64(n)
	}
	return l
}

type bravoProc struct {
	l    *Bravo
	base Proc
	id   int
	home uint64
	// cur is the slot this proc last published successfully; trying it
	// first lets procs whose home slots collide settle into disjoint
	// slots instead of ping-ponging one line forever.
	cur  *sim.Word
	slot *sim.Word
	pend uint64
}

// NewProc returns the per-thread handle; the home slot is fixed here so
// the fast path does no hashing.
func (l *Bravo) NewProc(id int) Proc {
	home := bravoMix(l.salt^bravoMix(uint64(id)+1)) & l.mask
	return &bravoProc{
		l:    l,
		base: l.base.NewProc(id),
		id:   id,
		home: home,
		cur:  l.table[home],
	}
}

func (p *bravoProc) RLock(c *sim.Ctx) {
	l := p.l
	if c.Load(l.bias) == 1 {
		// Memoized slot first: after settling this CAS is on a line
		// nobody else writes, so the fast path is three primitives.
		s := p.cur
		if !c.CAS(s, 0, 1) {
			l.stats.Inc(obs.BravoSlotCollision, p.id)
			s = nil
			for i := uint64(0); i < bravoMaxProbes; i++ {
				cand := l.table[(p.home+i)&l.mask]
				if cand != p.cur && c.Load(cand) == 0 && c.CAS(cand, 0, 1) {
					s = cand
					p.cur = cand
					break
				}
			}
		}
		if s != nil {
			if c.Load(l.bias) == 1 {
				p.slot = s
				l.FastReads++
				l.stats.Inc(obs.BravoFastRead, p.id)
				return
			}
			// Revocation raced with our publish: back out.
			c.Store(s, 0)
		}
	}
	p.base.RLock(c)
	l.SlowReads++
	l.stats.Inc(obs.BravoSlowRead, p.id)
	if c.Load(l.bias) == 0 {
		p.slowReadArm(c)
	}
}

// slowReadArm is the adaptive re-arm policy, identical to the real
// implementation: batch slow reads locally, pay down the inhibition
// window with one lossy CAS per batch, re-arm once it reaches zero. The
// caller holds the underlying read lock, so no writer can revoke
// concurrently.
func (p *bravoProc) slowReadArm(c *sim.Ctx) {
	l := p.l
	p.pend++
	if p.pend < bravoInhibitBatch {
		return
	}
	v := c.Load(l.inhibit)
	switch {
	case v == 0:
		c.Store(l.bias, 1)
		l.stats.Inc(obs.BravoBiasArm, p.id)
	case v <= p.pend:
		c.CAS(l.inhibit, v, 0)
	default:
		c.CAS(l.inhibit, v, v-p.pend)
	}
	p.pend = 0
}

func (p *bravoProc) RUnlock(c *sim.Ctx) {
	if s := p.slot; s != nil {
		p.slot = nil
		c.Store(s, 0)
		return
	}
	p.base.RUnlock(c)
}

func (p *bravoProc) Lock(c *sim.Ctx) {
	p.base.Lock(c)
	if c.Load(p.l.bias) == 1 {
		p.l.revoke(c, p.id)
	}
}

func (p *bravoProc) Unlock(c *sim.Ctx) {
	p.base.Unlock(c)
}

// revoke clears the bias and drains every published fast-path reader.
// Caller holds the underlying write lock. The table is swept with a
// streaming scan (LoadStream models the memory-level parallelism of a
// contiguous array sweep); any reader that publishes after the bias
// store backs out on its re-check, so slots found empty in the snapshot
// stay irrelevant and only the occupied ones need a drain wait.
func (l *Bravo) revoke(c *sim.Ctx, id int) {
	start := c.Now()
	c.Store(l.bias, 0)
	drained := 0
	for i, v := range c.LoadStream(l.table) {
		if v != 0 {
			drained++
			c.SpinUntil(l.table[i], func(v uint64) bool { return v == 0 })
		}
	}
	l.Revocations++
	l.stats.Inc(obs.BravoRevoke, id)
	// Virtual cycles, where the real wrapper records nanoseconds: the
	// histogram carries only the shape.
	l.stats.Observe(obs.BravoDrainWait, id, c.Now()-start)
	c.Store(l.inhibit, uint64(len(l.table)+bravoDrainWeight*drained)*l.mult)
}

// bravoMix is the splitmix64 finalizer (as in internal/bravo).
func bravoMix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
