package simlock

import (
	"ollock/internal/sim"
)

// simMutex is a test-and-test-and-set spin mutex on one simulated word
// (the queue "metalock" of the GOLL and Solaris locks).
type simMutex struct {
	w *sim.Word
}

func newSimMutex(m *sim.Machine) simMutex { return simMutex{w: m.NewWord(0)} }

func (mx simMutex) lock(c *sim.Ctx) {
	for {
		if c.CAS(mx.w, 0, 1) {
			return
		}
		c.SpinUntil(mx.w, func(v uint64) bool { return v == 0 })
	}
}

func (mx simMutex) unlock(c *sim.Ctx) {
	c.Store(mx.w, 0)
}

// waitEntry is one queued thread: its intention, the flag word it
// parks on, and (array wait policy only) the waiting-array slot the
// granter bumps alongside the flag store.
type waitEntry struct {
	writer bool
	flag   *sim.Word
	slot   *sim.Word
}

// simWaitQueue is the mutex-protected wait queue. The queue's link
// structure itself is modeled as plain host memory plus a fixed Work
// charge per operation (the metalock and flag words dominate its real
// cost); see DESIGN.md §4.
type simWaitQueue struct {
	entries    []waitEntry
	numWriters int
}

// queueOpCost approximates touching the queue's list structure.
const queueOpCost = 5

func (q *simWaitQueue) enqueue(c *sim.Ctx, writer bool, flag, slot *sim.Word) {
	c.Work(queueOpCost)
	q.entries = append(q.entries, waitEntry{writer: writer, flag: flag, slot: slot})
	if writer {
		q.numWriters++
	}
}

func (q *simWaitQueue) empty() bool { return len(q.entries) == 0 }

// dequeueHandoff implements the Solaris policy used by both GOLL and the
// Solaris-like lock: a releasing reader hands to the first waiting
// writer (or all readers if none); a releasing writer hands to all
// waiting readers (or the first writer if none). Returned batch is nil
// when the queue is empty; writerBatch reports the batch kind.
func (q *simWaitQueue) dequeueHandoff(c *sim.Ctx, releaserWriter bool) (batch []waitEntry, writerBatch bool) {
	c.Work(queueOpCost)
	if len(q.entries) == 0 {
		return nil, false
	}
	takeWriter := func() []waitEntry {
		for i, e := range q.entries {
			if e.writer {
				q.entries = append(q.entries[:i:i], q.entries[i+1:]...)
				q.numWriters--
				return []waitEntry{e}
			}
		}
		return nil
	}
	takeReaders := func() []waitEntry {
		var readers, rest []waitEntry
		for _, e := range q.entries {
			if e.writer {
				rest = append(rest, e)
			} else {
				readers = append(readers, e)
			}
		}
		q.entries = rest
		return readers
	}
	if releaserWriter {
		if readers := takeReaders(); len(readers) > 0 {
			return readers, false
		}
		return takeWriter(), true
	}
	if w := takeWriter(); w != nil {
		return w, true
	}
	return takeReaders(), false
}

// signal wakes every entry in the batch (one flag-word store each,
// plus a slot bump for array-policy waiters).
func signalBatch(c *sim.Ctx, batch []waitEntry) {
	for _, e := range batch {
		c.Store(e.flag, 1)
		signalSlot(c, e.slot)
	}
}
