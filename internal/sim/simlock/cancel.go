package simlock

import (
	"ollock/internal/obs"
	"ollock/internal/sim"
	"ollock/internal/trace"
)

// This file mirrors the host stack's timed/cancellable acquisition on
// the simulated machine. Deadlines are absolute virtual cycle counts
// (the sim's analogue of lockcore.Deadline): an acquisition abandons
// once c.Now() passes the deadline, with the same accounting as the
// real locks (the kind's timeout counter, one KindCancel trace event).
// Only the central and GOLL locks get sim cancellation — they cover the
// two abandonment shapes the simulator can model faithfully (retry-loop
// backout and queue unlink under the metalock); the ring-pool locks'
// gstate protocol depends on host-memory reaper goroutines the
// discrete model has no counterpart for, and is proven by the host
// chaos torture instead.

// CancelProc is the simulated counterpart of ollock.DeadlineProc: a
// Proc whose acquisitions can give up at an absolute virtual deadline.
// Methods report whether the lock was acquired; a deadline already in
// the past still makes one immediate attempt (matching the host
// semantics, where Try-shaped uses pass an expired deadline).
type CancelProc interface {
	Proc
	RLockUntil(c *sim.Ctx, deadline int64) bool
	LockUntil(c *sim.Ctx, deadline int64) bool
}

// cancelProbeGap is the virtual-cycle pause between deadline probes of
// a timed wait, modeling the real waiter's bounded spin-check stride
// (park.ParkTimeout re-arms between expiry checks rather than watching
// the word indefinitely).
const cancelProbeGap = 40

// spinUntilBy polls w until pred holds or the deadline passes; it
// returns the last value read and whether pred was satisfied. Unlike
// SpinUntil this charges each probe — a timed waiter keeps waking to
// check the clock, so its fruitless probes cannot coalesce.
func spinUntilBy(c *sim.Ctx, w *sim.Word, pred func(uint64) bool, deadline int64) (uint64, bool) {
	for {
		v := c.Load(w)
		if pred(v) {
			return v, true
		}
		if c.Now() >= deadline {
			return v, false
		}
		c.Work(cancelProbeGap)
	}
}

// remove unlinks the entry waiting on flag; it reports whether the
// entry was still queued (false means a hand-off already dequeued it,
// so a grant is in flight and the caller must accept it).
func (q *simWaitQueue) remove(c *sim.Ctx, flag *sim.Word) bool {
	c.Work(queueOpCost)
	for i, e := range q.entries {
		if e.flag == flag {
			q.entries = append(q.entries[:i:i], q.entries[i+1:]...)
			if e.writer {
				q.numWriters--
			}
			return true
		}
	}
	return false
}

// --- central ---

// RLockUntil implements CancelProc: the retry-loop backout shape — no
// queue state to unwind, the reader simply stops retrying.
func (p centralProc) RLockUntil(c *sim.Ctx, deadline int64) bool {
	for {
		w := c.Load(p.l.word)
		if w&centralWriterBit == 0 {
			if c.CAS(p.l.word, w, w+1) {
				return true
			}
			continue
		}
		if c.Now() >= deadline {
			return false
		}
		if _, ok := spinUntilBy(c, p.l.word, func(v uint64) bool { return v&centralWriterBit == 0 }, deadline); !ok {
			return false
		}
	}
}

// LockUntil implements CancelProc.
func (p centralProc) LockUntil(c *sim.Ctx, deadline int64) bool {
	for {
		if c.CAS(p.l.word, 0, centralWriterBit) {
			return true
		}
		if c.Now() >= deadline {
			return false
		}
		if _, ok := spinUntilBy(c, p.l.word, func(v uint64) bool { return v == 0 }, deadline); !ok {
			return false
		}
	}
}

// --- GOLL ---

// cancelQueued finalizes an expired queue wait: under the metalock the
// canceler races the hand-off exactly as the host GOLL does. Three
// outcomes: the flag is already set (the grant won — the acquisition
// stands), the entry is still queued (unlink it; the cancel stands), or
// the entry was dequeued but not yet signaled (a grant is in flight —
// wait it out and accept it). Returns whether the lock was acquired.
func (p *gollProc) cancelQueued(c *sim.Ctx) bool {
	l := p.l
	l.meta.lock(c)
	if c.Load(p.flag) == 1 {
		l.meta.unlock(c)
		return true
	}
	if !l.q.remove(c, p.flag) {
		l.meta.unlock(c)
		c.SpinUntil(p.flag, func(v uint64) bool { return v == 1 })
		return true
	}
	l.meta.unlock(c)
	l.stats.Inc(obs.GOLLTimeout, p.id)
	l.tr.emit(c, p.id, trace.KindCancel, trace.PhaseNone, trace.RouteNone)
	return false
}

// RLockUntil implements CancelProc. The cancel point is the queue wait;
// a removed reader has nothing else to unwind because the releaser
// pre-arrives at the root only for the entries it dequeues, and if the
// queue empties the drain's nil-batch hand-off reopens the indicator.
func (p *gollProc) RLockUntil(c *sim.Ctx, deadline int64) bool {
	l := p.l
	for {
		p.ticket = l.cs.Arrive(c, p.id)
		if p.ticket.Arrived() {
			l.tr.emit(c, p.id, trace.KindReadAcquired, trace.PhaseNone, routeOf(p.ticket))
			return true
		}
		l.tr.emit(c, p.id, trace.KindArriveFail, trace.PhaseNone, trace.RouteNone)
		if c.Now() >= deadline {
			l.stats.Inc(obs.GOLLTimeout, p.id)
			l.tr.emit(c, p.id, trace.KindCancel, trace.PhaseNone, trace.RouteNone)
			return false
		}
		l.meta.lock(c)
		if _, open := l.cs.Query(c); open {
			l.meta.unlock(c)
			continue
		}
		c.Store(p.flag, 0)
		l.q.enqueue(c, false, p.flag, p.slot)
		l.meta.unlock(c)
		l.tr.emit(c, p.id, trace.KindQueueEnqueue, trace.PhaseNone, trace.RouteNone)
		l.tr.emit(c, p.id, trace.KindPhaseBegin, trace.PhaseQueueWait, trace.RouteNone)
		p.ticket = TicketDirect // releaser pre-arrives at the root for us
		if _, ok := spinUntilBy(c, p.flag, func(v uint64) bool { return v == 1 }, deadline); !ok {
			if !p.cancelQueued(c) {
				return false
			}
		}
		l.tr.emit(c, p.id, trace.KindReadAcquired, trace.PhaseNone, trace.RouteDirect)
		return true
	}
}

// LockUntil implements CancelProc. A canceled writer may leave the
// indicator it closed behind with no writer queued; the next drain's
// nil-batch hand-off (RUnlock) reopens it, which is safe because a
// false Close with a transition implies surplus > 0 — some reader still
// holds the drain duty.
func (p *gollProc) LockUntil(c *sim.Ctx, deadline int64) bool {
	l := p.l
	w0 := c.Now()
	if l.cs.CloseIfEmpty(c) {
		l.tr.emit(c, p.id, trace.KindWriteAcquired, trace.PhaseNone, trace.RouteRoot)
		l.stats.Observe(obs.GOLLWriteWait, p.id, c.Now()-w0)
		return true
	}
	if c.Now() >= deadline {
		l.stats.Inc(obs.GOLLTimeout, p.id)
		l.tr.emit(c, p.id, trace.KindCancel, trace.PhaseNone, trace.RouteNone)
		return false
	}
	l.meta.lock(c)
	if l.cs.Close(c) {
		l.meta.unlock(c)
		l.tr.emit(c, p.id, trace.KindWriteAcquired, trace.PhaseNone, trace.RouteRoot)
		l.stats.Observe(obs.GOLLWriteWait, p.id, c.Now()-w0)
		return true
	}
	l.tr.emit(c, p.id, trace.KindIndClose, trace.PhaseNone, trace.RouteNone)
	c.Store(p.flag, 0)
	l.q.enqueue(c, true, p.flag, p.slot)
	l.meta.unlock(c)
	l.tr.emit(c, p.id, trace.KindQueueEnqueue, trace.PhaseNone, trace.RouteNone)
	l.tr.emit(c, p.id, trace.KindPhaseBegin, trace.PhaseQueueWait, trace.RouteNone)
	if _, ok := spinUntilBy(c, p.flag, func(v uint64) bool { return v == 1 }, deadline); !ok {
		if !p.cancelQueued(c) {
			return false
		}
	}
	l.tr.emit(c, p.id, trace.KindWriteAcquired, trace.PhaseNone, trace.RouteDirect)
	l.stats.Observe(obs.GOLLWriteWait, p.id, c.Now()-w0)
	return true
}
