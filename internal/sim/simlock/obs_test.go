package simlock_test

import (
	"reflect"
	"sort"
	"testing"

	"ollock"
	"ollock/internal/sim"
	"ollock/internal/sim/simlock"
)

// instrumentedKinds lists the lock kinds that exist both as real locks
// (ollock.New) and simulator ports (simlock.ByName) with obs
// instrumentation attached.
var instrumentedKinds = []string{"goll", "foll", "roll", "bravo-goll", "bravo-roll"}

// TestCounterNamesMatchRealLocks pins the obs contract that makes real
// and simulated runs comparable: for every instrumented kind, the
// counter (and histogram) name sets of the simulator port's Snapshot
// and the real lock's WithStats Snapshot are identical.
func TestCounterNamesMatchRealLocks(t *testing.T) {
	for _, kind := range instrumentedKinds {
		t.Run(kind, func(t *testing.T) {
			real, err := ollock.New(ollock.Kind(kind), 4, ollock.WithStats(""))
			if err != nil {
				t.Fatal(err)
			}
			realSnap, ok := ollock.SnapshotOf(real)
			if !ok {
				t.Fatalf("real %s lock has no stats", kind)
			}

			f := simlock.ByName(kind)
			if f == nil {
				t.Fatalf("no simulated factory %q", kind)
			}
			m := sim.New(sim.T5440())
			st := simlock.StatsOf(f.New(m, 4))
			if st == nil {
				t.Fatalf("simulated %s lock has no stats", kind)
			}
			simSnap := st.Snapshot()

			if got, want := simSnap.Names(), realSnap.Names(); !reflect.DeepEqual(got, want) {
				t.Errorf("counter name sets differ:\n  sim:  %v\n  real: %v", got, want)
			}
			simHists := histNames(simSnap)
			realHists := histNames(realSnap)
			if !reflect.DeepEqual(simHists, realHists) {
				t.Errorf("histogram name sets differ:\n  sim:  %v\n  real: %v", simHists, realHists)
			}
		})
	}
}

// TestCounterNamesMatchIndicatorMatrix extends the name-set contract to
// the lock × read-indicator matrix: for every non-default pairing, the
// simulator port's counter names match the real lock built with
// ollock.WithIndicator (all indicators report through the same csnzi.*
// names; see rind.Instrument).
func TestCounterNamesMatchIndicatorMatrix(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind ollock.Kind
		ind  ollock.IndicatorKind
	}{
		{"goll-central", ollock.GOLL, ollock.IndicatorCentral},
		{"goll-sharded", ollock.GOLL, ollock.IndicatorSharded},
		{"foll-central", ollock.FOLL, ollock.IndicatorCentral},
		{"foll-sharded", ollock.FOLL, ollock.IndicatorSharded},
		{"roll-central", ollock.ROLL, ollock.IndicatorCentral},
		{"roll-sharded", ollock.ROLL, ollock.IndicatorSharded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			real, err := ollock.New(tc.kind, 4, ollock.WithStats(""), ollock.WithIndicator(tc.ind))
			if err != nil {
				t.Fatal(err)
			}
			realSnap, ok := ollock.SnapshotOf(real)
			if !ok {
				t.Fatalf("real %s lock has no stats", tc.name)
			}
			f := simlock.ByName(tc.name)
			if f == nil {
				t.Fatalf("no simulated factory %q", tc.name)
			}
			m := sim.New(sim.T5440())
			st := simlock.StatsOf(f.New(m, 4))
			if st == nil {
				t.Fatalf("simulated %s lock has no stats", tc.name)
			}
			if got, want := st.Snapshot().Names(), realSnap.Names(); !reflect.DeepEqual(got, want) {
				t.Errorf("counter name sets differ:\n  sim:  %v\n  real: %v", got, want)
			}
		})
	}
}

func histNames(sn ollock.Snapshot) []string {
	out := []string{}
	for name := range sn.Hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// scriptedCounters runs the scripted 3-readers + 1-writer scenario on
// kind and returns the resulting counter snapshot: threads 0..2 each
// perform one read acquisition around a 20-cycle critical section,
// thread 3 one write acquisition. The simulator is deterministic, so
// the counters are exact, not statistical.
func scriptedCounters(t *testing.T, kind string) ollock.Snapshot {
	t.Helper()
	f := simlock.ByName(kind)
	if f == nil {
		t.Fatalf("no simulated factory %q", kind)
	}
	m := sim.New(sim.T5440())
	l := f.New(m, 4)
	for i := 0; i < 4; i++ {
		p := l.NewProc(i)
		write := i == 3
		m.Spawn(func(c *sim.Ctx) {
			if write {
				p.Lock(c)
				c.Work(20)
				p.Unlock(c)
			} else {
				p.RLock(c)
				c.Work(20)
				p.RUnlock(c)
			}
		})
	}
	m.Run()
	return simlock.StatsOf(l).Snapshot()
}

// TestScriptedCountersExact asserts the exact counter values of the
// scripted scenario for each OLL kind. The values are reproducible
// because the simulator's scheduling is a pure function of its inputs;
// a change here means the algorithm's internal behaviour changed (or
// an instrumentation site moved) and must be understood, not papered
// over.
func TestScriptedCountersExact(t *testing.T) {
	for _, tc := range []struct {
		kind string
		want map[string]uint64
	}{
		// GOLL: the three readers all arrive at the root (one losing a
		// CAS race first); the writer closes the C-SNZI, reopens it on
		// release and hands off directly.
		{kind: "goll", want: map[string]uint64{
			"csnzi.arrive.root":    3,
			"csnzi.arrive.tree":    0,
			"csnzi.arrive.fail":    0,
			"csnzi.cas.retry":      1,
			"csnzi.close":          1,
			"csnzi.open":           1,
			"goll.handoff":         1,
			"goll.upgrade.attempt": 0,
			"goll.upgrade.fail":    0,
			"goll.downgrade":       0,
			"goll.timeout":         0,
			"goll.cancel":          0,
		}},
		// FOLL: one reader enqueues the group node, two join it; the
		// failed arrivals are probes against ring nodes that start
		// closed. In this interleaving the writer wins the tail first,
		// so no group close fires and the node is not recycled.
		{kind: "foll", want: map[string]uint64{
			"csnzi.arrive.root": 3,
			"csnzi.arrive.tree": 0,
			"csnzi.arrive.fail": 10,
			"csnzi.cas.retry":   1,
			"csnzi.close":       0,
			"csnzi.open":        1,
			"foll.read.enqueue": 1,
			"foll.read.join":    2,
			"foll.node.recycle": 0,
			"foll.timeout":      0,
			"foll.cancel":       0,
		}},
		// ROLL: same group shape as FOLL; the deferred close means the
		// group stays open (close=0), and with the writer behind the
		// readers nothing overtakes and the hint is never consulted.
		{kind: "roll", want: map[string]uint64{
			"csnzi.arrive.root": 3,
			"csnzi.arrive.tree": 0,
			"csnzi.arrive.fail": 0,
			"csnzi.cas.retry":   3,
			"csnzi.close":       0,
			"csnzi.open":        1,
			"roll.read.enqueue": 1,
			"roll.read.join":    2,
			"roll.node.recycle": 0,
			"roll.overtake":     0,
			"roll.hint.hit":     0,
			"roll.hint.miss":    0,
			"roll.timeout":      0,
			"roll.cancel":       0,
		}},
	} {
		t.Run(tc.kind, func(t *testing.T) {
			got := scriptedCounters(t, tc.kind).Counters
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("counters = %#v, want %#v", got, tc.want)
			}
		})
	}
}
