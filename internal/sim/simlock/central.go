package simlock

import (
	"ollock/internal/sim"
)

// Central is the simulated naive centralized reader-writer lock: one
// word, bit 63 = write-locked, rest = reader count (mirrors
// internal/central).
type Central struct {
	word *sim.Word
}

const centralWriterBit = uint64(1) << 63

// NewCentral allocates a centralized lock on m.
func NewCentral(m *sim.Machine, maxProcs int) *Central {
	return &Central{word: m.NewWord(0)}
}

// NewProc returns the per-thread handle (stateless for this lock).
func (l *Central) NewProc(id int) Proc { return centralProc{l} }

type centralProc struct{ l *Central }

func (p centralProc) RLock(c *sim.Ctx) {
	for {
		w := c.Load(p.l.word)
		if w&centralWriterBit == 0 {
			if c.CAS(p.l.word, w, w+1) {
				return
			}
			continue
		}
		c.SpinUntil(p.l.word, func(v uint64) bool { return v&centralWriterBit == 0 })
	}
}

func (p centralProc) RUnlock(c *sim.Ctx) {
	for {
		w := c.Load(p.l.word)
		if c.CAS(p.l.word, w, w-1) {
			return
		}
	}
}

func (p centralProc) Lock(c *sim.Ctx) {
	for {
		if c.CAS(p.l.word, 0, centralWriterBit) {
			return
		}
		c.SpinUntil(p.l.word, func(v uint64) bool { return v == 0 })
	}
}

func (p centralProc) Unlock(c *sim.Ctx) {
	c.Store(p.l.word, 0)
}
