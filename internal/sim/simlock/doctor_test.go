package simlock_test

import (
	"strings"
	"testing"

	"ollock"
	"ollock/internal/doctor"
	"ollock/internal/obs"
	"ollock/internal/park"
	"ollock/internal/sim"
	"ollock/internal/sim/simlock"
)

// These tests close the loop the ISSUE asks for: the doctor's rules
// evaluated against EXACT counter streams from the deterministic
// simulator, not statistical runs on the host. Each scenario is a
// scripted workload whose obs snapshot is a pure function of its
// inputs; the snapshot becomes one doctor window (in cycle units —
// the sim clock counts cycles, so latency thresholds are cycles
// here, nanoseconds on a real machine) and the diagnosis must come
// out identical on every run, on every host.

// windowOf reduces a simulated lock's snapshot to one doctor window
// covering the whole run. totalCycles scales the rates; the deltas
// are the exact totals (the stream starts from zero).
func windowOf(name string, sn ollock.Snapshot, totalCycles int64) doctor.Window {
	w := doctor.Window{
		Lock:    name,
		Seconds: float64(totalCycles),
		Deltas:  sn.Counters,
		Hists:   map[string]doctor.HistWindow{},
	}
	for hname, h := range sn.Hists {
		w.Hists[hname] = doctor.HistWindow{
			Count: h.Count, Sum: h.Sum, P50: h.P50, P99: h.P99, Max: h.Max,
		}
	}
	return w
}

// simConfig holds the doctor thresholds re-based to cycle units and
// simulator scale: latency thresholds become cycle counts, and the
// absolute floors drop to match workloads of tens (not millions) of
// operations.
func simConfig() doctor.Config {
	return doctor.Config{
		WriteP99StarvationNs: 20_000, // cycles
		StarvationMinWrites:  1,
		// The sim table is 64 slots and slow readers pay the inhibit
		// window down in batches of 8, so a revoke cycle costs ~72+ slow
		// reads plus the fast reads of the armed interval: the highest
		// steady-state revokes/reads ratio the model can produce is a
		// few per thousand. Rebase the thrash ratio accordingly.
		RevokesPerReadThrash: 0.004,
		ThrashMinRevokes:     3,
		ParksPerAcquireStorm: 0.5,
		StormMinParks:        8,

		TimeoutsPerAttemptStorm: 0.25,
		StormMinTimeouts:        8,
	}
}

// runSim executes fn-built workloads and returns the snapshot and
// total virtual cycles.
func runSim(l simlock.Lock, m *sim.Machine) (ollock.Snapshot, int64) {
	cycles := m.Run()
	return simlock.StatsOf(l).Snapshot(), cycles
}

// TestSimDoctorHealthy: a light mixed workload on GOLL produces no
// findings.
func TestSimDoctorHealthy(t *testing.T) {
	m := sim.New(sim.T5440())
	l := simlock.NewGOLL(m, 4)
	for i := 0; i < 4; i++ {
		p := l.NewProc(i)
		write := i == 3
		m.Spawn(func(c *sim.Ctx) {
			for r := 0; r < 5; r++ {
				if write {
					p.Lock(c)
					c.Work(20)
					p.Unlock(c)
				} else {
					p.RLock(c)
					c.Work(20)
					p.RUnlock(c)
				}
				c.Work(200)
			}
		})
	}
	sn, cycles := runSim(l, m)
	findings := doctor.Diagnose(simConfig(), []doctor.Window{windowOf("goll", sn, cycles)})
	if len(findings) != 0 {
		t.Fatalf("healthy sim run produced findings: %s", doctor.Report(findings))
	}
	// The write count contract behind the starvation rule: the hist
	// count equals the exact number of write acquisitions.
	if got := sn.Hists["goll.write.wait"].Count; got != 5 {
		t.Fatalf("goll.write.wait count = %d, want 5", got)
	}
}

// starvationRun is the scripted ROLL overtaking scenario: writer A
// takes the lock and holds it for 30k cycles; a reader group queues
// behind A; writer B queues behind the group; every later reader
// joins the waiting group past B (the §4.3 overtake). B's write-wait
// is then bounded below by A's entire hold.
func starvationRun() (ollock.Snapshot, int64) {
	m := sim.New(sim.T5440())
	l := simlock.NewROLL(m, 8)
	pa := l.NewProc(6)
	m.Spawn(func(c *sim.Ctx) {
		pa.Lock(c)
		c.Work(30_000)
		pa.Unlock(c)
	})
	pb := l.NewProc(7)
	m.Spawn(func(c *sim.Ctx) {
		c.Work(600) // after the first reader group forms behind A
		pb.Lock(c)
		c.Work(20)
		pb.Unlock(c)
	})
	for i := 0; i < 6; i++ {
		p := l.NewProc(i)
		off := int64(100 + 400*i)
		m.Spawn(func(c *sim.Ctx) {
			c.Work(off)
			for r := 0; r < 20; r++ {
				p.RLock(c)
				c.Work(100)
				p.RUnlock(c)
			}
		})
	}
	return runSim(l, m)
}

// TestSimDoctorWriterStarvation: a ROLL writer behind an overtaking
// reader group waits tens of thousands of cycles; the rule must flag
// it and name the overtaking in its advice.
func TestSimDoctorWriterStarvation(t *testing.T) {
	sn, cycles := starvationRun()
	w := windowOf("roll", sn, cycles)
	findings := doctor.Diagnose(simConfig(), []doctor.Window{w})
	if len(findings) != 1 || findings[0].Rule != "writer-starvation" {
		t.Fatalf("expected exactly writer-starvation, got: %s\nwindow: %+v", doctor.Report(findings), w)
	}
	if findings[0].Severity != doctor.Critical {
		t.Fatalf("starvation severity = %v", findings[0].Severity)
	}
	if sn.Counters["roll.overtake"] == 0 {
		t.Fatal("scenario recorded no overtakes — not the pathology it scripts")
	}
	if got := findings[0].Advice; !strings.Contains(got, "FOLL") {
		t.Fatalf("overtake evidence did not steer the advice: %q", got)
	}
	// Determinism: the same script yields byte-identical evidence.
	sn2, cycles2 := starvationRun()
	f2 := doctor.Diagnose(simConfig(), []doctor.Window{windowOf("roll", sn2, cycles2)})
	if cycles2 != cycles || len(f2) != 1 || f2[0].Summary != findings[0].Summary {
		t.Fatalf("sim doctor run not deterministic:\n%v\nvs\n%v", findings, f2)
	}
}

// TestSimDoctorBiasThrash: BRAVO with writers interleaved through the
// read stream keeps revoking the freshly re-armed bias.
func TestSimDoctorBiasThrash(t *testing.T) {
	m := sim.New(sim.T5440())
	f := simlock.ByName("bravo-goll")
	if f == nil {
		t.Fatal("no bravo-goll sim factory")
	}
	l := f.New(m, 4)
	for i := 0; i < 3; i++ {
		p := l.NewProc(i)
		m.Spawn(func(c *sim.Ctx) {
			for r := 0; r < 400; r++ {
				p.RLock(c)
				c.Work(30)
				p.RUnlock(c)
			}
		})
	}
	pw := l.NewProc(3)
	m.Spawn(func(c *sim.Ctx) {
		for r := 0; r < 10; r++ {
			// Long gaps so the slow-read stream pays the inhibition
			// window down and re-arms the bias before the next write.
			c.Work(3000)
			pw.Lock(c)
			c.Work(20)
			pw.Unlock(c)
		}
	})
	sn, cycles := runSim(l, m)
	w := windowOf("bravo-goll", sn, cycles)
	findings := doctor.Diagnose(simConfig(), []doctor.Window{w})
	rules := map[string]bool{}
	for _, fd := range findings {
		rules[fd.Rule] = true
	}
	if !rules["bias-thrash"] {
		t.Fatalf("bias-thrash did not fire; revokes=%d reads(fast)=%d arrivals=%d\n%s",
			sn.Counters["bravo.revoke"], sn.Counters["bravo.read.fast"],
			sn.Counters["csnzi.arrive.root"]+sn.Counters["csnzi.arrive.tree"],
			doctor.Report(findings))
	}
}

// TestSimDoctorParkStorm: GOLL under an adaptive wait policy with
// every proc writing — each acquisition costs its waiters a park.
func TestSimDoctorParkStorm(t *testing.T) {
	m := sim.New(sim.T5440())
	l := simlock.NewGOLL(m, 8)
	l.SetWaitPolicy(simlock.NewWaitPolicy(m, park.ModeAdaptive))
	for i := 0; i < 8; i++ {
		p := l.NewProc(i)
		m.Spawn(func(c *sim.Ctx) {
			for r := 0; r < 10; r++ {
				p.Lock(c)
				c.Work(400)
				p.Unlock(c)
			}
		})
	}
	sn, cycles := runSim(l, m)
	w := windowOf("goll", sn, cycles)
	findings := doctor.Diagnose(simConfig(), []doctor.Window{w})
	rules := map[string]bool{}
	for _, fd := range findings {
		rules[fd.Rule] = true
	}
	if !rules["park-storm"] {
		t.Fatalf("park-storm did not fire; parks=%d writes=%d\n%s",
			sn.Counters["park.park"], sn.Hists["goll.write.wait"].Count,
			doctor.Report(findings))
	}
	// The park.wait histogram mirrored into the simulator must have
	// recorded every park (count == park.park) in cycle units.
	if got, want := sn.Hists["park.wait"].Count, sn.Counters["park.park"]; got != want {
		t.Fatalf("park.wait hist count %d != park.park %d", got, want)
	}
}

// TestSimWriteWaitHistMirrorsReal pins the name/semantics contract:
// the sim ports record the same write-wait histograms the real locks
// do, with count == exact write acquisitions, for every OLL kind.
func TestSimWriteWaitHistMirrorsReal(t *testing.T) {
	for _, tc := range []struct {
		kind string
		hist string
	}{
		{"goll", "goll.write.wait"},
		{"foll", "foll.write.wait"},
		{"roll", "roll.write.wait"},
	} {
		t.Run(tc.kind, func(t *testing.T) {
			f := simlock.ByName(tc.kind)
			m := sim.New(sim.T5440())
			l := f.New(m, 4)
			for i := 0; i < 4; i++ {
				p := l.NewProc(i)
				m.Spawn(func(c *sim.Ctx) {
					for r := 0; r < 3; r++ {
						p.Lock(c)
						c.Work(10)
						p.Unlock(c)
					}
				})
			}
			m.Run()
			sn := simlock.StatsOf(l).Snapshot()
			h, ok := sn.Hists[tc.hist]
			if !ok {
				t.Fatalf("%s missing from sim snapshot", tc.hist)
			}
			if h.Count != 12 {
				t.Fatalf("%s count = %d, want 12 (4 procs x 3 writes)", tc.hist, h.Count)
			}
			if h.Max <= 0 {
				t.Fatalf("%s max = %d, want > 0 under contention", tc.hist, h.Max)
			}
		})
	}
}

var _ = obs.NumEvents // keep the obs import if assertions above change
