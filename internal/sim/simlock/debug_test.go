package simlock

import (
	"fmt"
	"testing"

	"ollock/internal/sim"
	"ollock/internal/xrand"
)

// TestDebugGOLLReadOnly prints per-op cost decomposition for the GOLL
// read-only workload at 1 and 16 threads. Run with -v.
func TestDebugGOLLReadOnly(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	for _, threads := range []int{1, 4, 16} {
		m := sim.New(testCfg())
		l := NewGOLL(m, threads)
		for i := 0; i < threads; i++ {
			p := l.NewProc(i)
			m.Spawn(func(c *sim.Ctx) {
				for j := 0; j < 150; j++ {
					p.RLock(c)
					p.RUnlock(c)
				}
			})
		}
		cycles := m.Run()
		var acc, rem int64
		for _, st := range m.ThreadStats() {
			acc += st.Accesses
			rem += st.Remote
		}
		ops := int64(threads) * 150
		fmt.Printf("goll threads=%-3d cycles=%-10d cyc/op=%-8.1f accesses/op=%-6.2f remote/op=%-6.3f root=%#x\n",
			threads, cycles, float64(cycles)/float64(ops), float64(acc)/float64(ops), float64(rem)/float64(ops), l.cs.(*CSNZI).root.Value())
	}
}

// TestDebugKSUHMinimal searches for a small failing KSUH configuration.
func TestDebugKSUHMinimal(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	f := *ByName("ksuh")
	for threads := 2; threads <= 16; threads++ {
		for ops := 2; ops <= 20; ops += 2 {
			for seed := uint64(0); seed < 30; seed++ {
				res := VerifyExclusion(f, testCfg(), threads, 0.5, ops, seed)
				if res.Violations > 0 {
					fmt.Printf("FAIL threads=%d ops=%d seed=%d violations=%d\n", threads, ops, seed, res.Violations)
					return
				}
			}
		}
	}
	fmt.Println("no small failure found")
}

// TestDebugKSUHTrace replays a failing case with an operation trace.
func TestDebugKSUHTrace(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	threads, ops, seed := 16, 60, uint64(12345)
	mcfg := testCfg()
	m := sim.New(mcfg)
	l := NewKSUH(m, threads)
	var readers, writers int
	var log []string
	for i := 0; i < threads; i++ {
		i := i
		p := l.NewProc(i)
		rng := xrand.New(seed + uint64(i)*0x51AF9E3 + 7)
		m.Spawn(func(c *sim.Ctx) {
			for j := 0; j < ops; j++ {
				if rng.Bool(0.5) {
					p.RLock(c)
					readers++
					if writers != 0 {
						log = append(log, fmt.Sprintf("VIOLATION t=%d clk=%d R in with %d writers", i, c.Now(), writers))
					}
					c.Work(20)
					readers--
					p.RUnlock(c)
				} else {
					p.Lock(c)
					writers++
					if writers != 1 || readers != 0 {
						log = append(log, fmt.Sprintf("VIOLATION t=%d clk=%d W in with w=%d r=%d", i, c.Now(), writers, readers))
					}
					c.Work(20)
					writers--
					p.Unlock(c)
				}
			}
		})
	}
	m.Run()
	for _, line := range log {
		fmt.Println(line)
	}
	fmt.Printf("%d violations\n", len(log))
}

// TestDebugGOLLCounters decomposes C-SNZI access traffic.
func TestDebugGOLLCounters(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	for _, threads := range []int{16} {
		m := sim.New(testCfg())
		l := NewGOLL(m, threads)
		for i := 0; i < threads; i++ {
			p := l.NewProc(i)
			m.Spawn(func(c *sim.Ctx) {
				for j := 0; j < 150; j++ {
					p.RLock(c)
					p.RUnlock(c)
				}
			})
		}
		cycles := m.Run()
		ops := float64(threads) * 150
		cs := l.cs.(*CSNZI)
		fmt.Printf("threads=%d cycles=%d ops=%v\n  rootCAS/op=%.3f nodeCAS/op=%.2f propagate/op=%.3f\n",
			threads, cycles, ops,
			float64(cs.StatRootCAS)/ops, float64(cs.StatNodeCAS)/ops, float64(cs.StatPropagate)/ops)
	}
}

// TestDebugGOLLT5440 measures read-only scaling at the real topology.
func TestDebugGOLLT5440(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	for _, threads := range []int{1, 8, 64, 128} {
		m := sim.New(sim.T5440())
		l := NewGOLL(m, threads)
		for i := 0; i < threads; i++ {
			p := l.NewProc(i)
			m.Spawn(func(c *sim.Ctx) {
				for j := 0; j < 150; j++ {
					p.RLock(c)
					p.RUnlock(c)
				}
			})
		}
		cycles := m.Run()
		ops := float64(threads) * 150
		cs := l.cs.(*CSNZI)
		fmt.Printf("T5440 goll threads=%-4d cyc/op=%-8.1f thr=%.3e rootCAS/op=%.4f nodeCAS/op=%.2f propagate/op=%.4f\n",
			threads, float64(cycles)/ops, ops/(float64(cycles)/sim.ClockHz),
			float64(cs.StatRootCAS)/ops, float64(cs.StatNodeCAS)/ops, float64(cs.StatPropagate)/ops)
	}
}

// TestDebugPanels prints miniature Figure 5 panels on the T5440 config.
func TestDebugPanels(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	threads := []int{1, 8, 32, 64, 128, 192, 256}
	for _, frac := range []float64{1.0, 0.99, 0.95, 0.5} {
		fmt.Printf("== read%% %.0f ==\n%-9s", frac*100, "threads")
		for _, f := range Figure5Locks() {
			fmt.Printf(" %10s", f.Name)
		}
		fmt.Println()
		for _, n := range threads {
			fmt.Printf("%-9d", n)
			for _, f := range Figure5Locks() {
				ops := 120
				r := RunExperiment(f, sim.T5440(), n, frac, ops, 42)
				fmt.Printf(" %10.2e", r.Throughput)
			}
			fmt.Println()
		}
	}
}

// TestDebugKSUHFullTrace replays the minimal failing case logging every
// lock-level event with virtual timestamps.
func TestDebugKSUHFullTrace(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	threads, ops, seed := 3, 10, uint64(28)
	mcfg := testCfg()
	m := sim.New(mcfg)
	l := NewKSUH(m, threads)
	var readers, writers int
	var log []string
	ev := func(c *sim.Ctx, id int, what string) {
		log = append(log, fmt.Sprintf("clk=%-8d t%d %s (r=%d w=%d)", c.Now(), id, what, readers, writers))
	}
	for i := 0; i < threads; i++ {
		i := i
		p := l.NewProc(i)
		rng := xrand.New(seed + uint64(i)*0x51AF9E3 + 7)
		m.Spawn(func(c *sim.Ctx) {
			for j := 0; j < ops; j++ {
				if rng.Bool(0.5) {
					ev(c, i, "RLock...")
					p.RLock(c)
					readers++
					ev(c, i, "RLocked")
					if writers != 0 {
						ev(c, i, "*** VIOLATION reader with writer ***")
					}
					c.Work(20)
					readers--
					ev(c, i, "RUnlock...")
					p.RUnlock(c)
					ev(c, i, "RUnlocked")
				} else {
					ev(c, i, "Lock...")
					p.Lock(c)
					writers++
					ev(c, i, "Locked")
					if writers != 1 || readers != 0 {
						ev(c, i, "*** VIOLATION writer overlap ***")
					}
					c.Work(20)
					writers--
					ev(c, i, "Unlock...")
					p.Unlock(c)
					ev(c, i, "Unlocked")
				}
			}
		})
	}
	m.Run()
	for _, line := range log {
		fmt.Println(line)
	}
}
