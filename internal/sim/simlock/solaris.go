package simlock

import (
	"ollock/internal/sim"
)

// Solaris is the simulated Solaris-like kernel lock (mirrors
// internal/solaris): central lockword + mutex-protected wait queue with
// direct ownership hand-off.
type Solaris struct {
	m    *sim.Machine
	word *sim.Word
	meta simMutex
	q    simWaitQueue
}

// Lockword layout (as in internal/solaris).
const (
	solWriteLocked = uint64(1) << 0
	solWriteWanted = uint64(1) << 1
	solHasWaiters  = uint64(1) << 2
	solReaderOne   = uint64(1) << 3
	solReaderMask  = ^uint64(7)
)

// NewSolaris allocates a Solaris-like lock on m.
func NewSolaris(m *sim.Machine, maxProcs int) *Solaris {
	return &Solaris{m: m, word: m.NewWord(0), meta: newSimMutex(m)}
}

type solarisProc struct {
	l    *Solaris
	flag *sim.Word
}

// NewProc returns the per-thread handle (owning the park flag word).
// Call during setup, before Machine.Run.
func (l *Solaris) NewProc(id int) Proc {
	return &solarisProc{l: l, flag: l.m.NewWord(0)}
}

func (p *solarisProc) RLock(c *sim.Ctx) {
	l := p.l
	for {
		w := c.Load(l.word)
		if w&(solWriteLocked|solWriteWanted) == 0 {
			if c.CAS(l.word, w, w+solReaderOne) {
				return
			}
			continue
		}
		l.meta.lock(c)
		w = c.Load(l.word)
		if w&(solWriteLocked|solWriteWanted) == 0 {
			l.meta.unlock(c)
			continue
		}
		if !c.CAS(l.word, w, w|solHasWaiters) {
			l.meta.unlock(c)
			continue
		}
		c.Store(p.flag, 0)
		l.q.enqueue(c, false, p.flag, nil)
		l.meta.unlock(c)
		c.SpinUntil(p.flag, func(v uint64) bool { return v == 1 })
		return
	}
}

func (p *solarisProc) Lock(c *sim.Ctx) {
	l := p.l
	for {
		w := c.Load(l.word)
		if w&(solWriteLocked|solReaderMask|solHasWaiters) == 0 {
			if c.CAS(l.word, w, w|solWriteLocked) {
				return
			}
			continue
		}
		l.meta.lock(c)
		w = c.Load(l.word)
		if w&(solWriteLocked|solReaderMask|solHasWaiters) == 0 {
			l.meta.unlock(c)
			continue
		}
		if !c.CAS(l.word, w, w|solHasWaiters|solWriteWanted) {
			l.meta.unlock(c)
			continue
		}
		c.Store(p.flag, 0)
		l.q.enqueue(c, true, p.flag, nil)
		l.meta.unlock(c)
		c.SpinUntil(p.flag, func(v uint64) bool { return v == 1 })
		return
	}
}

func (p *solarisProc) RUnlock(c *sim.Ctx) {
	l := p.l
	for {
		w := c.Load(l.word)
		if (w&solReaderMask)>>3 == 1 && w&solHasWaiters != 0 {
			p.handoff(c, false)
			return
		}
		if c.CAS(l.word, w, w-solReaderOne) {
			return
		}
	}
}

func (p *solarisProc) Unlock(c *sim.Ctx) {
	l := p.l
	for {
		w := c.Load(l.word)
		if w&solHasWaiters != 0 {
			p.handoff(c, true)
			return
		}
		if c.CAS(l.word, w, w&^solWriteLocked) {
			return
		}
	}
}

func (p *solarisProc) handoff(c *sim.Ctx, releaserWriter bool) {
	l := p.l
	l.meta.lock(c)
	batch, writerBatch := l.q.dequeueHandoff(c, releaserWriter)
	var w uint64
	if writerBatch {
		w = solWriteLocked
	} else {
		w = uint64(len(batch)) * solReaderOne
	}
	if l.q.numWriters > 0 {
		w |= solWriteWanted
	}
	if !l.q.empty() {
		w |= solHasWaiters
	}
	c.Store(l.word, w)
	l.meta.unlock(c)
	signalBatch(c, batch)
}
