package simlock

import (
	"fmt"
	"testing"

	"ollock/internal/sim"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// reports the simulated throughput (the paper's metric) alongside the
// host time the simulation took.

// BenchmarkROLLHintAblation: §4.3's lastReader hint on vs. off at the
// reader-preference lock's home workload (99% reads, cross-chip).
func BenchmarkROLLHintAblation(b *testing.B) {
	variants := []struct {
		name string
		mk   func(m *sim.Machine, n int) Lock
	}{
		{"hint=on", func(m *sim.Machine, n int) Lock { return NewROLL(m, n) }},
		{"hint=off", func(m *sim.Machine, n int) Lock { return NewROLLNoHint(m, n) }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			f := Factory{Name: "roll-" + v.name, New: v.mk}
			var last Result
			for i := 0; i < b.N; i++ {
				last = RunExperiment(f, sim.T5440(), 192, 0.99, 80, uint64(31+i))
			}
			b.ReportMetric(last.Throughput, "sim-acq/s")
		})
	}
}

// BenchmarkCSNZITopologyAblation: the C-SNZI tree (per-core leaves,
// per-chip interior nodes) versus the centralized degenerate case, under
// GOLL's read-only workload — the heart of the paper's scalability
// claim.
func BenchmarkCSNZITopologyAblation(b *testing.B) {
	variants := []struct {
		name   string
		direct bool
	}{
		{"tree", false},
		{"central", true},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			f := Factory{Name: "goll-" + v.name, New: func(m *sim.Machine, n int) Lock {
				l := &GOLL{m: m, cs: NewCSNZI(m, CSNZIConfig{Direct: v.direct, Threads: n}), meta: newSimMutex(m)}
				return l
			}}
			var last Result
			for i := 0; i < b.N; i++ {
				last = RunExperiment(f, sim.T5440(), 128, 1.0, 80, uint64(7+i))
			}
			b.ReportMetric(last.Throughput, "sim-acq/s")
		})
	}
}

// BenchmarkMachineInterconnectAblation: GOLL at 95% reads on the real
// T5440 versus a hypothetical machine with free cross-chip links,
// quantifying how much of the lock's cost is interconnect.
func BenchmarkMachineInterconnectAblation(b *testing.B) {
	configs := []struct {
		name string
		cfg  sim.Config
	}{
		{"t5440", sim.T5440()},
		{"flat-interconnect", func() sim.Config {
			c := sim.T5440()
			c.CostRemote = c.CostShared
			return c
		}()},
	}
	f := *ByName("foll")
	for _, m := range configs {
		m := m
		b.Run(m.name, func(b *testing.B) {
			var last Result
			for i := 0; i < b.N; i++ {
				last = RunExperiment(f, m.cfg, 192, 0.95, 80, uint64(3+i))
			}
			b.ReportMetric(last.Throughput, "sim-acq/s")
		})
	}
}

func TestROLLNoHintCorrect(t *testing.T) {
	f := Factory{Name: "roll-nohint", New: func(m *sim.Machine, n int) Lock { return NewROLLNoHint(m, n) }}
	res := VerifyExclusion(f, testCfg(), 16, 0.8, 80, 5)
	if res.Violations != 0 {
		t.Fatalf("%d violations with hint disabled", res.Violations)
	}
}

// BenchmarkCriticalSectionSweep: how long must the critical section be
// before the lock choice stops mattering? Sweeps CS length at 95% reads
// / 64 threads for FOLL vs. the Solaris-like lock.
func BenchmarkCriticalSectionSweep(b *testing.B) {
	for _, cs := range []int64{0, 100, 1000, 10000} {
		for _, name := range []string{"foll", "solaris"} {
			name := name
			cs := cs
			b.Run(fmt.Sprintf("cs=%d/%s", cs, name), func(b *testing.B) {
				var last Result
				for i := 0; i < b.N; i++ {
					last = RunConfigured(Experiment{
						Factory:      *ByName(name),
						Machine:      sim.T5440(),
						Threads:      64,
						ReadFraction: 0.95,
						OpsPerThread: 60,
						Seed:         uint64(17 + i),
						CriticalWork: cs,
					})
				}
				b.ReportMetric(last.Throughput, "sim-acq/s")
			})
		}
	}
}

// BenchmarkWriterBurstiness: ROLL vs FOLL as writers go from i.i.d. to
// strongly bursty at 99% reads / 192 threads — the regime where ROLL's
// waiting-group coalescing pays.
func BenchmarkWriterBurstiness(b *testing.B) {
	for _, burst := range []float64{0, 0.5, 0.9} {
		for _, name := range []string{"foll", "roll"} {
			burst, name := burst, name
			b.Run(fmt.Sprintf("burst=%.1f/%s", burst, name), func(b *testing.B) {
				var last Result
				for i := 0; i < b.N; i++ {
					last = RunConfigured(Experiment{
						Factory:         *ByName(name),
						Machine:         sim.T5440(),
						Threads:         192,
						ReadFraction:    0.99,
						OpsPerThread:    100,
						Seed:            uint64(21 + i),
						WriteBurstiness: burst,
					})
				}
				b.ReportMetric(last.Throughput, "sim-acq/s")
			})
		}
	}
}
