package simlock

import (
	"ollock/internal/obs"
	"ollock/internal/sim"
)

// Proc is the per-simulated-thread handle of a simulated lock. The Ctx
// passed to each method must be the one of the thread the Proc was
// created for.
type Proc interface {
	RLock(c *sim.Ctx)
	RUnlock(c *sim.Ctx)
	Lock(c *sim.Ctx)
	Unlock(c *sim.Ctx)
}

// Lock is a simulated lock instance; NewProc must be called during
// setup (before Machine.Run), once per simulated thread, with that
// thread's id.
type Lock interface {
	NewProc(id int) Proc
}

// Factory names and constructs one simulated lock implementation.
type Factory struct {
	Name string
	New  func(m *sim.Machine, maxProcs int) Lock
}

// Locks enumerates the simulated implementations: the five locks of the
// paper's Figure 5, plus the MCS fair reader-writer lock, the
// Hsieh–Weihl lock, the naive centralized lock as additional reference
// points, and the BRAVO-biased wrappers over the GOLL and ROLL locks.
var Locks = []Factory{
	{Name: "goll", New: func(m *sim.Machine, n int) Lock { return NewGOLL(m, n) }},
	{Name: "foll", New: func(m *sim.Machine, n int) Lock { return NewFOLL(m, n) }},
	{Name: "roll", New: func(m *sim.Machine, n int) Lock { return NewROLL(m, n) }},
	{Name: "ksuh", New: func(m *sim.Machine, n int) Lock { return NewKSUH(m, n) }},
	{Name: "solaris", New: func(m *sim.Machine, n int) Lock { return NewSolaris(m, n) }},
	{Name: "mcs-rw", New: func(m *sim.Machine, n int) Lock { return NewMCSRW(m, n) }},
	{Name: "hsieh", New: func(m *sim.Machine, n int) Lock { return NewHsieh(m, n) }},
	{Name: "central", New: func(m *sim.Machine, n int) Lock { return NewCentral(m, n) }},
	{Name: "bravo-goll", New: func(m *sim.Machine, n int) Lock { return NewBravo(m, n, NewGOLL(m, n)) }},
	{Name: "bravo-roll", New: func(m *sim.Machine, n int) Lock { return NewBravo(m, n, NewROLL(m, n)) }},
	// The lock × read-indicator matrix (mirrors the real locksuite
	// entries): each OLL lock over the two non-default indicators. The
	// plain goll/foll/roll entries cover the default C-SNZI.
	{Name: "goll-central", New: func(m *sim.Machine, n int) Lock { return NewGOLLInd(m, n, "goll-central", CentralIndicator) }},
	{Name: "goll-sharded", New: func(m *sim.Machine, n int) Lock { return NewGOLLInd(m, n, "goll-sharded", ShardedIndicator) }},
	{Name: "foll-central", New: func(m *sim.Machine, n int) Lock { return NewFOLLInd(m, n, "foll-central", CentralIndicator) }},
	{Name: "foll-sharded", New: func(m *sim.Machine, n int) Lock { return NewFOLLInd(m, n, "foll-sharded", ShardedIndicator) }},
	{Name: "roll-central", New: func(m *sim.Machine, n int) Lock { return NewROLLInd(m, n, "roll-central", CentralIndicator) }},
	{Name: "roll-sharded", New: func(m *sim.Machine, n int) Lock { return NewROLLInd(m, n, "roll-sharded", ShardedIndicator) }},
}

// StatsOf returns a simulated lock's obs counter block, or nil for
// kinds without instrumentation (the baseline locks). Instrumented
// kinds mirror the counter names of their real counterparts under
// ollock.WithStats — a simlock test asserts the name sets match.
func StatsOf(l Lock) *obs.Stats {
	if c, ok := l.(interface{ Stats() *obs.Stats }); ok {
		return c.Stats()
	}
	return nil
}

// ByName returns the factory with the given name, or nil.
func ByName(name string) *Factory {
	for i := range Locks {
		if Locks[i].Name == name {
			return &Locks[i]
		}
	}
	return nil
}

// Figure5Locks lists the five locks that appear in the paper's Figure 5,
// in its legend order.
func Figure5Locks() []Factory {
	names := []string{"goll", "foll", "roll", "ksuh", "solaris"}
	out := make([]Factory, 0, len(names))
	for _, n := range names {
		out = append(out, *ByName(n))
	}
	return out
}
