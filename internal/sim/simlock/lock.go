package simlock

import (
	"ollock/internal/lockcore"
	"ollock/internal/obs"
	"ollock/internal/sim"
)

// Proc is the per-simulated-thread handle of a simulated lock. The Ctx
// passed to each method must be the one of the thread the Proc was
// created for.
type Proc interface {
	RLock(c *sim.Ctx)
	RUnlock(c *sim.Ctx)
	Lock(c *sim.Ctx)
	Unlock(c *sim.Ctx)
}

// Lock is a simulated lock instance; NewProc must be called during
// setup (before Machine.Run), once per simulated thread, with that
// thread's id.
type Lock interface {
	NewProc(id int) Proc
}

// Factory names and constructs one simulated lock implementation.
type Factory struct {
	Name string
	// Caps carries the host registry's capability descriptor for the
	// kind; matrix variants inherit their base kind's capabilities. The
	// host↔sim sync test asserts these stay equal to lockcore's.
	Caps lockcore.Caps
	New  func(m *sim.Machine, maxProcs int) Lock
}

// ctors maps registry kind names to simulated constructors; matrixCtors
// to the indicator-matrix variants for the kinds the registry marks
// IndicatorMatrix. Only the constructors live here — the Locks table
// itself is generated from lockcore.Descs() so the sim enumerates
// exactly the host's kinds, in the host's order.
var ctors = map[string]func(m *sim.Machine, n int) Lock{
	"goll":       func(m *sim.Machine, n int) Lock { return NewGOLL(m, n) },
	"foll":       func(m *sim.Machine, n int) Lock { return NewFOLL(m, n) },
	"roll":       func(m *sim.Machine, n int) Lock { return NewROLL(m, n) },
	"ksuh":       func(m *sim.Machine, n int) Lock { return NewKSUH(m, n) },
	"mcs-rw":     func(m *sim.Machine, n int) Lock { return NewMCSRW(m, n) },
	"solaris":    func(m *sim.Machine, n int) Lock { return NewSolaris(m, n) },
	"hsieh":      func(m *sim.Machine, n int) Lock { return NewHsieh(m, n) },
	"central":    func(m *sim.Machine, n int) Lock { return NewCentral(m, n) },
	"bravo-goll": func(m *sim.Machine, n int) Lock { return NewBravo(m, n, NewGOLL(m, n)) },
	"bravo-roll": func(m *sim.Machine, n int) Lock { return NewBravo(m, n, NewROLL(m, n)) },
}

var matrixCtors = map[string]func(m *sim.Machine, n int, name, ind string) Lock{
	"goll": func(m *sim.Machine, n int, name, ind string) Lock { return NewGOLLInd(m, n, name, matrixKind(ind)) },
	"foll": func(m *sim.Machine, n int, name, ind string) Lock { return NewFOLLInd(m, n, name, matrixKind(ind)) },
	"roll": func(m *sim.Machine, n int, name, ind string) Lock { return NewROLLInd(m, n, name, matrixKind(ind)) },
}

// matrixKind maps a lockcore.MatrixIndicators name to the simulated
// indicator factory.
func matrixKind(name string) IndicatorFactory {
	switch name {
	case "central":
		return CentralIndicator
	case "sharded":
		return ShardedIndicator
	default:
		panic("simlock: unknown matrix indicator " + name)
	}
}

// Locks enumerates the simulated implementations, generated from the
// host kind registry (internal/lockcore): one entry per registered
// kind in registry order, then the lock × read-indicator matrix
// (mirroring the real locksuite entries — each OLL lock over the two
// non-default indicators; the plain goll/foll/roll entries cover the
// default C-SNZI).
var Locks = buildLocks()

func buildLocks() []Factory {
	descs := lockcore.Descs()
	out := make([]Factory, 0, len(descs)+3*len(lockcore.MatrixIndicators()))
	for _, d := range descs {
		ctor, ok := ctors[d.Name]
		if !ok {
			panic("simlock: no simulated constructor for registered kind " + d.Name)
		}
		out = append(out, Factory{Name: d.Name, Caps: d.Caps, New: ctor})
	}
	for _, d := range descs {
		if !d.IndicatorMatrix {
			continue
		}
		build := matrixCtors[d.Name]
		for _, ind := range lockcore.MatrixIndicators() {
			name := d.Name + "-" + ind
			indName := ind
			out = append(out, Factory{
				Name: name,
				Caps: d.Caps,
				New: func(m *sim.Machine, n int) Lock {
					return build(m, n, name, indName)
				},
			})
		}
	}
	return out
}

// StatsOf returns a simulated lock's obs counter block, or nil for
// kinds without instrumentation (the baseline locks). Instrumented
// kinds mirror the counter names of their real counterparts under
// ollock.WithStats — a simlock test asserts the name sets match.
func StatsOf(l Lock) *obs.Stats {
	if c, ok := l.(interface{ Stats() *obs.Stats }); ok {
		return c.Stats()
	}
	return nil
}

// ByName returns the factory with the given name, or nil.
func ByName(name string) *Factory {
	for i := range Locks {
		if Locks[i].Name == name {
			return &Locks[i]
		}
	}
	return nil
}

// Figure5Locks lists the locks that appear in the paper's Figure 5, in
// its legend order, derived from the registry's Figure5 marker.
func Figure5Locks() []Factory {
	var out []Factory
	for _, d := range lockcore.Descs() {
		if d.Figure5 {
			out = append(out, *ByName(d.Name))
		}
	}
	return out
}
