package simlock_test

import (
	"reflect"
	"testing"

	"ollock"
	"ollock/internal/park"
	"ollock/internal/sim"
	"ollock/internal/sim/simlock"
)

// polLock is the setup shared by the wait-policy tests: a simulated
// lock with a wait policy attached.
func polLock(m *sim.Machine, kind string, mode park.Mode) simlock.Lock {
	pol := simlock.NewWaitPolicy(m, mode)
	switch kind {
	case "goll":
		l := simlock.NewGOLL(m, 8)
		l.SetWaitPolicy(pol)
		return l
	case "foll":
		l := simlock.NewFOLL(m, 8)
		l.SetWaitPolicy(pol)
		return l
	case "roll":
		l := simlock.NewROLL(m, 8)
		l.SetWaitPolicy(pol)
		return l
	}
	panic("unknown kind " + kind)
}

// runContended drives 8 threads (2 writers) through enough acquisitions
// that queue waits are certain, and returns the counter snapshot.
func runContended(t *testing.T, kind string, mode park.Mode) ollock.Snapshot {
	t.Helper()
	m := sim.New(sim.T5440())
	l := polLock(m, kind, mode)
	for i := 0; i < 8; i++ {
		p := l.NewProc(i)
		write := i%4 == 3
		m.Spawn(func(c *sim.Ctx) {
			for r := 0; r < 20; r++ {
				if write {
					p.Lock(c)
					c.Work(50)
					p.Unlock(c)
				} else {
					p.RLock(c)
					c.Work(20)
					p.RUnlock(c)
				}
			}
		})
	}
	m.Run()
	return simlock.StatsOf(l).Snapshot()
}

// TestParkCounterNamesMatchRealLocks extends the sim/real obs contract
// to the wait-policy dimension: a simulated lock with a non-spin
// policy must expose exactly the counter names of the real lock built
// with ollock.WithWait of the same mode.
func TestParkCounterNamesMatchRealLocks(t *testing.T) {
	for _, kind := range []string{"goll", "foll", "roll"} {
		for _, mode := range []struct {
			real ollock.WaitMode
			sim  park.Mode
		}{
			{ollock.WaitAdaptive, park.ModeAdaptive},
			{ollock.WaitArray, park.ModeArray},
		} {
			t.Run(kind+"/"+string(mode.real), func(t *testing.T) {
				real, err := ollock.New(ollock.Kind(kind), 4,
					ollock.WithStats(""), ollock.WithWait(mode.real))
				if err != nil {
					t.Fatal(err)
				}
				realSnap, ok := ollock.SnapshotOf(real)
				if !ok {
					t.Fatalf("real %s lock has no stats", kind)
				}
				m := sim.New(sim.T5440())
				st := simlock.StatsOf(polLock(m, kind, mode.sim))
				if got, want := st.Snapshot().Names(), realSnap.Names(); !reflect.DeepEqual(got, want) {
					t.Errorf("counter name sets differ:\n  sim:  %v\n  real: %v", got, want)
				}
			})
		}
	}
}

// TestParkPolicyCounters checks the policies' observable behavior under
// contention: the adaptive mode must park (and unpark exactly as often
// as it parks), the array mode must register slot waits, and neither
// may change what the lock computes (the spin-mode counter set for the
// lock's own events stays identical — waiting is not part of the
// algorithm).
func TestParkPolicyCounters(t *testing.T) {
	for _, kind := range []string{"goll", "foll", "roll"} {
		t.Run(kind, func(t *testing.T) {
			adaptive := runContended(t, kind, park.ModeAdaptive)
			if adaptive.Counters["park.park"] == 0 {
				t.Errorf("adaptive run parked 0 times; contended queue waits must escalate")
			}
			if p, u := adaptive.Counters["park.park"], adaptive.Counters["park.unpark"]; p != u {
				t.Errorf("park.park=%d park.unpark=%d; every park must unpark", p, u)
			}
			if y, p := adaptive.Counters["park.yield"], adaptive.Counters["park.park"]; y < p {
				t.Errorf("park.yield=%d < park.park=%d; the ladder yields before parking", y, p)
			}
			array := runContended(t, kind, park.ModeArray)
			if array.Counters["park.array.wait"] == 0 {
				t.Errorf("array run registered 0 slot waits")
			}
			if array.Counters["park.park"] != 0 && kind != "foll" {
				// Only FOLL has a no-signaler condition wait (the
				// tail-CAS/qNext race), which legitimately degrades to the
				// parking ladder under array mode.
				t.Errorf("array run parked %d times; grant waits must use slots", array.Counters["park.park"])
			}
		})
	}
}

// TestParkSpinPolicyIsDefault pins the scope contract on the sim side:
// a spin-mode policy is indistinguishable from no policy — same
// counter name set (no park.* names), mirroring the facade adding the
// park scope only for non-spin modes. The policies DO change timing
// (that is their point), so lock-event counter values under contention
// are not expected to match across modes; only the name sets and the
// algorithm's correctness are invariant.
func TestParkSpinPolicyIsDefault(t *testing.T) {
	for _, kind := range []string{"goll", "foll", "roll"} {
		t.Run(kind, func(t *testing.T) {
			spin := runContended(t, kind, park.ModeSpin)
			for name := range spin.Counters {
				if len(name) >= 5 && name[:5] == "park." {
					t.Errorf("spin-mode policy exposes %s; park scope must be non-spin only", name)
				}
			}
			m := sim.New(sim.T5440())
			bare := simlock.StatsOf(simlock.ByName(kind).New(m, 8)).Snapshot()
			if got, want := spin.Names(), bare.Names(); !reflect.DeepEqual(got, want) {
				t.Errorf("spin-policy name set differs from no-policy:\n  policy: %v\n  bare:   %v", got, want)
			}
		})
	}
}
