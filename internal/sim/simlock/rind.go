package simlock

import (
	"fmt"

	"ollock/internal/obs"
	"ollock/internal/sim"
)

// Indicator is the simulated counterpart of rind.Indicator: the
// closable read indicator the simulated OLL locks are built over. The
// method set is the subset the lock ports use (the simulator has no
// upgrade path), with every operation taking the calling thread's Ctx
// so its memory accesses are charged. SetStats and InitClosed are
// host-side setup calls, free in virtual time.
type Indicator interface {
	// SetStats attaches the obs counter block the containing lock
	// shares with its indicators (csnzi.* counter names).
	SetStats(st *obs.Stats)
	// InitClosed sets the indicator to closed with zero surplus before
	// the simulation starts (ring-pool nodes start closed).
	InitClosed()
	// Arrive attempts an arrival; it fails iff the indicator is closed.
	Arrive(c *sim.Ctx, id int) Ticket
	// Depart returns false iff the indicator ends closed with zero
	// surplus (the caller must hand the lock over).
	Depart(c *sim.Ctx, t Ticket) bool
	// Query returns (surplus nonzero, open).
	Query(c *sim.Ctx) (nonzero, open bool)
	// QueryOpenSpin parks until the indicator is open.
	QueryOpenSpin(c *sim.Ctx)
	// Close transitions open -> closed; true iff the closer acquired
	// the indicator outright (surplus was zero).
	Close(c *sim.Ctx) bool
	// CloseIfEmpty closes only an open, zero-surplus indicator.
	CloseIfEmpty(c *sim.Ctx) bool
	// Open reopens a closed, zero-surplus indicator.
	Open(c *sim.Ctx)
	// OpenWithArrivals opens, performs cnt direct arrivals, and
	// optionally closes again, atomically.
	OpenWithArrivals(c *sim.Ctx, cnt int, close bool)
}

// IndicatorFactory constructs one simulated read indicator on machine m
// sized for maxProcs threads. The simulated locks take factories the
// same way the real FOLL/ROLL do (one indicator per ring node).
type IndicatorFactory func(m *sim.Machine, maxProcs int) Indicator

// CSNZIIndicator is the default factory: the paper's C-SNZI tree with
// the topology-tuned §5.1 shape.
func CSNZIIndicator(m *sim.Machine, maxProcs int) Indicator {
	return NewCSNZI(m, DefaultCSNZIConfig(m, maxProcs))
}

// CentralIndicator builds the degenerate centralized indicator: one
// CAS-able counter word (mirrors rind.Central / central.Lockword).
func CentralIndicator(m *sim.Machine, maxProcs int) Indicator {
	return NewCentralInd(m)
}

// ShardedIndicator builds the sharded ingress/egress indicator with one
// slot per core (mirrors rind.Sharded).
func ShardedIndicator(m *sim.Machine, maxProcs int) Indicator {
	return NewShardedInd(m, maxProcs)
}

// --- centralized indicator ---

// CentralInd is the simulated centralized read indicator: a single
// word, bit 63 closed, low bits the surplus count (the layout of
// central.Lockword). Every reader CASes the one word, so it embodies
// the coherence bottleneck the paper's introduction criticizes.
type CentralInd struct {
	w     *sim.Word
	stats *obs.Stats
}

// NewCentralInd allocates an open centralized indicator on m.
func NewCentralInd(m *sim.Machine) *CentralInd {
	return &CentralInd{w: m.NewWord(0)}
}

// SetStats implements Indicator.
func (s *CentralInd) SetStats(st *obs.Stats) { s.stats = st }

// InitClosed implements Indicator.
func (s *CentralInd) InitClosed() { s.w.Init(closedBit) }

// Arrive implements Indicator. Successful arrivals count as root
// arrivals (the word is the root); like the real rind.Central, the
// csnzi.cas.retry counter is not emitted.
func (s *CentralInd) Arrive(c *sim.Ctx, id int) Ticket {
	for {
		old := c.Load(s.w)
		if old&closedBit != 0 {
			s.stats.Inc(obs.CSNZIArriveFail, id)
			return TicketFailed
		}
		if c.CAS(s.w, old, old+1) {
			s.stats.Inc(obs.CSNZIArriveRoot, id)
			return TicketDirect
		}
	}
}

// Depart implements Indicator.
func (s *CentralInd) Depart(c *sim.Ctx, t Ticket) bool {
	if t != TicketDirect {
		panic("simlock: central Depart with foreign ticket")
	}
	for {
		old := c.Load(s.w)
		if old&^closedBit == 0 {
			panic("simlock: central Depart without matching Arrive")
		}
		if c.CAS(s.w, old, old-1) {
			return old-1 != closedBit
		}
	}
}

// Query implements Indicator.
func (s *CentralInd) Query(c *sim.Ctx) (bool, bool) {
	old := c.Load(s.w)
	return old&^closedBit != 0, old&closedBit == 0
}

// QueryOpenSpin implements Indicator.
func (s *CentralInd) QueryOpenSpin(c *sim.Ctx) {
	c.SpinUntil(s.w, func(v uint64) bool { return v&closedBit == 0 })
}

// Close implements Indicator.
func (s *CentralInd) Close(c *sim.Ctx) bool {
	for {
		old := c.Load(s.w)
		if old&closedBit != 0 {
			return false
		}
		if c.CAS(s.w, old, old|closedBit) {
			s.stats.Inc(obs.CSNZIClose, 0)
			return old == 0
		}
	}
}

// CloseIfEmpty implements Indicator.
func (s *CentralInd) CloseIfEmpty(c *sim.Ctx) bool {
	for {
		if c.Load(s.w) != 0 {
			return false
		}
		if c.CAS(s.w, 0, closedBit) {
			s.stats.Inc(obs.CSNZIClose, 0)
			return true
		}
	}
}

// Open implements Indicator.
func (s *CentralInd) Open(c *sim.Ctx) {
	if old := c.Load(s.w); old != closedBit {
		panic(fmt.Sprintf("simlock: central Open on word=%#x", old))
	}
	s.stats.Inc(obs.CSNZIOpen, 0)
	c.Store(s.w, 0)
}

// OpenWithArrivals implements Indicator.
func (s *CentralInd) OpenWithArrivals(c *sim.Ctx, cnt int, close bool) {
	s.stats.Inc(obs.CSNZIOpen, 0)
	w := uint64(cnt)
	if close {
		w |= closedBit
	}
	c.Store(s.w, w)
}

// --- sharded ingress/egress indicator ---

// Gate word layout (mirrors rind.Sharded): bit 63 closed, bit 62
// drained, bit 61 pending, bits 31-60 the close-epoch counter (bumped
// on every open transition so a stale drain-claim CAS from a prior
// close epoch can never succeed — see rind.Sharded's layout comment for
// the ABA this prevents), low 31 bits the direct-arrival count. Slot
// ingress words carry bit 63 as the seal flag.
const (
	sgClosed     = uint64(1) << 63
	sgDrained    = uint64(1) << 62
	sgPending    = uint64(1) << 61
	sgEpochShift = 31
	sgEpochMask  = ((uint64(1) << 30) - 1) << sgEpochShift
	sgEpochInc   = uint64(1) << sgEpochShift
	sgDirectMask = (uint64(1) << 31) - 1
	slotSealed   = uint64(1) << 63
)

// ShardedInd is the simulated sharded ingress/egress indicator
// (mirrors rind.Sharded): per-core ingress/egress counter pairs behind
// a closable gate word. Readers stripe across slots and touch only
// their core's pair; closers seal every slot and sum, and the drained
// bit's CAS makes the drain observation exactly-once. See the real
// implementation for the full protocol discussion; this port issues the
// same pattern of shared accesses so the simulator charges the same
// coherence costs.
type ShardedInd struct {
	gate   *sim.Word
	ing    []*sim.Word // per-slot cumulative arrivals + seal bit
	eg     []*sim.Word // per-slot cumulative departures
	slotOf []int       // thread id -> slot
	stats  *obs.Stats
}

// NewShardedInd allocates an open sharded indicator on m with one slot
// per core used by maxProcs threads.
func NewShardedInd(m *sim.Machine, maxProcs int) *ShardedInd {
	if maxProcs < 1 {
		maxProcs = 1
	}
	mc := m.Config()
	n := (maxProcs + mc.ThreadsPerCore - 1) / mc.ThreadsPerCore
	s := &ShardedInd{gate: m.NewWord(0)}
	for i := 0; i < n; i++ {
		s.ing = append(s.ing, m.NewWord(0))
		s.eg = append(s.eg, m.NewWord(0))
	}
	s.slotOf = make([]int, maxProcs)
	for id := range s.slotOf {
		s.slotOf[id] = (id / mc.ThreadsPerCore) % n
	}
	return s
}

// SetStats implements Indicator.
func (s *ShardedInd) SetStats(st *obs.Stats) { s.stats = st }

// InitClosed implements Indicator. The slots start unsealed; the first
// sum under the closed gate seals them (sealing is idempotent help).
func (s *ShardedInd) InitClosed() { s.gate.Init(sgClosed | sgDrained) }

// Arrive implements Indicator. Slot arrivals count as tree arrivals
// (the slot array plays the tree's role); like the real rind.Sharded,
// csnzi.cas.retry is not emitted.
func (s *ShardedInd) Arrive(c *sim.Ctx, id int) Ticket {
	slot := s.slotOf[id%len(s.slotOf)]
	for {
		g := c.Load(s.gate)
		if g&sgClosed != 0 {
			s.stats.Inc(obs.CSNZIArriveFail, id)
			return TicketFailed
		}
		if g&sgPending != 0 {
			// A probe or open-transition is deciding; wait it out.
			c.SpinUntil(s.gate, func(v uint64) bool { return v&sgPending == 0 })
			continue
		}
		for {
			x := c.Load(s.ing[slot])
			if x&slotSealed != 0 {
				break // sealed under us: re-read the gate
			}
			if c.CAS(s.ing[slot], x, x+1) {
				s.stats.Inc(obs.CSNZIArriveTree, id)
				return Ticket(slot)
			}
		}
	}
}

// Depart implements Indicator.
func (s *ShardedInd) Depart(c *sim.Ctx, t Ticket) bool {
	switch {
	case t == TicketDirect:
		return s.departDirect(c)
	case t >= 0:
		c.Add(s.eg[t], 1)
		g := c.Load(s.gate)
		if g&sgClosed == 0 {
			return true
		}
		return !s.tryDrain(c, g)
	default:
		panic("simlock: Depart with failed ticket")
	}
}

func (s *ShardedInd) departDirect(c *sim.Ctx) bool {
	for {
		g := c.Load(s.gate)
		if g&sgDirectMask == 0 {
			panic("simlock: direct Depart without matching arrival")
		}
		ng := g - 1
		if c.CAS(s.gate, g, ng) {
			if ng&sgClosed == 0 || ng&sgDirectMask != 0 {
				return true
			}
			return !s.tryDrain(c, ng)
		}
	}
}

// tryDrain attempts to claim the drained state of a closed gate whose
// word was read as g; true iff this call won the claim. The claim CAS
// carries g's close epoch, so a stale claim can never land on a later
// epoch's gate.
func (s *ShardedInd) tryDrain(c *sim.Ctx, g uint64) bool {
	epoch := g & sgEpochMask
	for {
		if g&sgDrained != 0 || g&sgDirectMask != 0 {
			return false
		}
		if s.sumSealed(c) != 0 {
			return false
		}
		if c.CAS(s.gate, g, g|sgDrained) {
			return true
		}
		g = c.Load(s.gate)
		if g&sgClosed == 0 || g&sgEpochMask != epoch {
			return false
		}
	}
}

// sumSealed seals every slot (idempotent help) and returns the summed
// surplus; per slot the egress is read first so the frozen surplus can
// only be overestimated.
func (s *ShardedInd) sumSealed(c *sim.Ctx) uint64 {
	var total uint64
	for i := range s.ing {
		for {
			x := c.Load(s.ing[i])
			if x&slotSealed != 0 || c.CAS(s.ing[i], x, x|slotSealed) {
				break
			}
		}
		e := c.Load(s.eg[i])
		in := c.Load(s.ing[i]) &^ slotSealed
		total += in - e
	}
	return total
}

func (s *ShardedInd) unsealSlots(c *sim.Ctx) {
	for i := range s.ing {
		for {
			x := c.Load(s.ing[i])
			if x&slotSealed == 0 || c.CAS(s.ing[i], x, x&^slotSealed) {
				break
			}
		}
	}
}

// quickSum is the advisory (unsealed, racy) surplus estimate.
func (s *ShardedInd) quickSum(c *sim.Ctx) uint64 {
	var total uint64
	for i := range s.ing {
		e := c.Load(s.eg[i])
		in := c.Load(s.ing[i]) &^ slotSealed
		total += in - e
	}
	return total
}

// Query implements Indicator. Pending reports open, as in the real
// implementation (a probe in flight has not closed anything yet).
func (s *ShardedInd) Query(c *sim.Ctx) (bool, bool) {
	g := c.Load(s.gate)
	return g&sgDirectMask != 0 || s.quickSum(c) != 0, g&sgClosed == 0
}

// QueryOpenSpin implements Indicator.
func (s *ShardedInd) QueryOpenSpin(c *sim.Ctx) {
	c.SpinUntil(s.gate, func(v uint64) bool { return v&sgClosed == 0 })
}

// Close implements Indicator.
func (s *ShardedInd) Close(c *sim.Ctx) bool {
	for {
		g := c.Load(s.gate)
		if g&sgClosed != 0 {
			return false
		}
		if g&sgPending != 0 {
			c.SpinUntil(s.gate, func(v uint64) bool { return v&sgPending == 0 })
			continue
		}
		if c.CAS(s.gate, g, g|sgClosed) {
			s.stats.Inc(obs.CSNZIClose, 0)
			return s.tryDrain(c, g|sgClosed)
		}
	}
}

// CloseIfEmpty implements Indicator: probe via pending, seal and sum,
// commit or roll back.
func (s *ShardedInd) CloseIfEmpty(c *sim.Ctx) bool {
	g := c.Load(s.gate)
	if g&^sgEpochMask != 0 || s.quickSum(c) != 0 {
		return false
	}
	if !c.CAS(s.gate, g, g|sgPending) {
		return false
	}
	if s.sumSealed(c) == 0 && c.CAS(s.gate, g|sgPending, g|sgClosed|sgDrained) {
		s.stats.Inc(obs.CSNZIClose, 0)
		return true // slots stay sealed while closed
	}
	s.unsealSlots(c)
	s.clearPending(c)
	return false
}

func (s *ShardedInd) clearPending(c *sim.Ctx) {
	for {
		g := c.Load(s.gate)
		if c.CAS(s.gate, g, g&^sgPending) {
			return
		}
	}
}

// Open implements Indicator.
func (s *ShardedInd) Open(c *sim.Ctx) {
	s.stats.Inc(obs.CSNZIOpen, 0)
	s.openWithArrivals(c, 0, false)
}

// OpenWithArrivals implements Indicator.
func (s *ShardedInd) OpenWithArrivals(c *sim.Ctx, cnt int, close bool) {
	s.stats.Inc(obs.CSNZIOpen, 0)
	s.openWithArrivals(c, cnt, close)
}

func (s *ShardedInd) openWithArrivals(c *sim.Ctx, cnt int, close bool) {
	g := c.Load(s.gate)
	if g&^sgEpochMask != sgClosed|sgDrained {
		panic(fmt.Sprintf("simlock: sharded Open on gate=%#x", g))
	}
	epoch := g & sgEpochMask
	w := uint64(cnt)
	if close {
		if w == 0 {
			return // identity: stays write-acquired
		}
		c.Store(s.gate, sgClosed|epoch|w)
		return
	}
	// Open transition: bump the close epoch (retiring stale drain
	// claims) and reset the slot pairs under pending; per slot the
	// egress resets before the ingress (the ingress store also unseals).
	epoch = (epoch + sgEpochInc) & sgEpochMask
	c.Store(s.gate, epoch|sgPending)
	for i := range s.ing {
		c.Store(s.eg[i], 0)
		c.Store(s.ing[i], 0)
	}
	c.Store(s.gate, epoch|w)
}
