package simlock_test

import (
	"reflect"
	"testing"

	"ollock/internal/sim"
	"ollock/internal/sim/simlock"
)

// scriptedTrace runs the scripted 2-readers + 1-writer hand-off on a
// simulated GOLL and returns the collected trace event strings. The
// staggering (writer starts once both readers hold the lock, a third
// of the work apart) forces the interesting path: the writer's close
// fails against the populated indicator, it queues, and the last
// departing reader performs the hand-off.
func scriptedTrace(t *testing.T) []string {
	t.Helper()
	m := sim.New(sim.T5440())
	l := simlock.NewGOLL(m, 3)
	tr := simlock.NewSimTracer()
	l.SetTracer(tr)
	for i := 0; i < 3; i++ {
		p := l.NewProc(i)
		write := i == 2
		m.Spawn(func(c *sim.Ctx) {
			if write {
				c.Work(300)
				p.Lock(c)
				c.Work(20)
				p.Unlock(c)
			} else {
				p.RLock(c)
				c.Work(2000)
				p.RUnlock(c)
			}
		})
	}
	m.Run()
	return tr.Strings()
}

// TestScriptedTraceExact pins the exact trace event sequence of the
// scripted GOLL hand-off, mirroring the emission points of the real
// lock under ollock.WithTrace. The simulator's scheduling is a pure
// function of its inputs, so the sequence is reproducible; a change
// here means an emission site moved or the hand-off protocol changed,
// and must be understood rather than re-goldened blindly.
func TestScriptedTraceExact(t *testing.T) {
	got := scriptedTrace(t)
	want := []string{
		// Both readers arrive at the central (root) word while open.
		"proc=0 read.acquired/root",
		"proc=1 read.acquired/root",
		// The writer's close fails against the populated indicator, so
		// it enqueues and waits.
		"proc=2 ind.close",
		"proc=2 queue.enqueue",
		"proc=2 phase.begin/queue.wait",
		// Reader 0 departs without draining the indicator; reader 1 is
		// the last out, so it performs the hand-off to the writer.
		"proc=0 read.released",
		"proc=1 ind.drain",
		"proc=1 handoff",
		"proc=1 read.released",
		// The writer wakes via direct hand-off, then reopens on release.
		"proc=2 write.acquired/direct",
		"proc=2 ind.open",
		"proc=2 write.released",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("trace = %#v, want %#v", got, want)
	}
}
