package simlock

import (
	"fmt"

	"ollock/internal/sim"
	"ollock/internal/trace"
)

// SimEvent is one trace event emitted by a simulated lock: the same
// kind/phase/route vocabulary as internal/trace, timestamped in
// simulated cycles. Because the simulator's scheduling is a pure
// function of its inputs, a scripted run produces an exact, repeatable
// event sequence — the property the scripted trace tests pin.
type SimEvent struct {
	Time  int64 // emitting thread's clock, in cycles
	Proc  int
	Kind  trace.Kind
	Phase trace.Phase
	Route trace.Route
}

// String renders "proc=P kind[/phase][/route]" (time omitted: exact
// cycle counts shift whenever memory costs are retuned, while the
// sequence is the algorithmic invariant worth pinning).
func (e SimEvent) String() string {
	s := fmt.Sprintf("proc=%d %s", e.Proc, e.Kind)
	if e.Phase != trace.PhaseNone {
		s += "/" + e.Phase.String()
	}
	if e.Route != trace.RouteNone {
		s += "/" + e.Route.String()
	}
	return s
}

// SimTracer collects SimEvents in emission order — the simulator
// counterpart of trace.Tracer. The simulator interleaves thread steps
// on one OS thread, so a plain slice suffices. A nil *SimTracer is a
// valid no-op sink, mirroring the real locks' nil-guarded discipline.
type SimTracer struct {
	events []SimEvent
}

// NewSimTracer returns an empty collector.
func NewSimTracer() *SimTracer { return &SimTracer{} }

// Events returns the collected events in emission order.
func (t *SimTracer) Events() []SimEvent {
	if t == nil {
		return nil
	}
	return t.events
}

// Strings renders every event via SimEvent.String, the form scripted
// tests compare against.
func (t *SimTracer) Strings() []string {
	evs := t.Events()
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.String()
	}
	return out
}

func (t *SimTracer) emit(c *sim.Ctx, proc int, k trace.Kind, ph trace.Phase, r trace.Route) {
	if t == nil {
		return
	}
	t.events = append(t.events, SimEvent{Time: c.Now(), Proc: proc, Kind: k, Phase: ph, Route: r})
}

// routeOf classifies a simulated arrival ticket the way
// rind.Ticket.TraceRoute classifies a real one: a direct ticket arrived
// at the central word, a leaf index at a distributed arrival point.
func routeOf(t Ticket) trace.Route {
	switch {
	case t == TicketDirect:
		return trace.RouteRoot
	case t >= 0:
		return trace.RouteTree
	default:
		return trace.RouteNone
	}
}
