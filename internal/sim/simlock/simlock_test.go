package simlock

import (
	"testing"

	"ollock/internal/sim"
)

func testCfg() sim.Config {
	return sim.Config{
		Chips: 4, ThreadsPerChip: 8, ThreadsPerCore: 4,
		CostLocal: 1, CostCore: 3, CostShared: 30, CostRemote: 120, CostOp: 3, Jitter: 4,
		MaxSteps: 50_000_000,
	}
}

func TestExclusionAllLocks(t *testing.T) {
	fractions := []float64{0.0, 0.5, 0.95, 1.0}
	for _, f := range Locks {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			for _, frac := range fractions {
				for _, threads := range []int{1, 2, 7, 16} {
					res := VerifyExclusion(f, testCfg(), threads, frac, 60, 12345)
					if res.Violations != 0 {
						t.Fatalf("threads=%d frac=%v: %d violations", threads, frac, res.Violations)
					}
				}
			}
		})
	}
}

func TestDeterministicThroughput(t *testing.T) {
	for _, f := range Locks {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			a := RunExperiment(f, testCfg(), 8, 0.95, 80, 99)
			b := RunExperiment(f, testCfg(), 8, 0.95, 80, 99)
			if a.Cycles != b.Cycles || a.Throughput != b.Throughput {
				t.Fatalf("nondeterministic: %d vs %d cycles", a.Cycles, b.Cycles)
			}
			if a.Throughput <= 0 {
				t.Fatal("zero throughput")
			}
		})
	}
}

// TestReadOnlyScalingShape: under 100% reads on the full T5440 topology,
// the OLL locks must scale with thread count while the centralized locks
// must not — the paper's Figure 5(a) ordering.
func TestReadOnlyScalingShape(t *testing.T) {
	speedup := func(name string) float64 {
		f := ByName(name)
		if f == nil {
			t.Fatalf("no factory %q", name)
		}
		one := RunExperiment(*f, sim.T5440(), 1, 1.0, 120, 7)
		many := RunExperiment(*f, sim.T5440(), 128, 1.0, 120, 7)
		return many.Throughput / one.Throughput
	}
	for _, name := range []string{"goll", "foll", "roll"} {
		if s := speedup(name); s < 8 {
			t.Errorf("%s read-only speedup at 128 threads = %.2fx, want >= 8x", name, s)
		}
	}
	for _, name := range []string{"solaris", "central"} {
		if s := speedup(name); s > 2.5 {
			t.Errorf("%s read-only speedup = %.2fx, want <= 2.5x (centralized lock must not scale)", name, s)
		}
	}
}

// TestOLLBeatKSUHReadOnly: at high thread counts and 100% reads the OLL
// locks must outperform KSUH by a wide margin (Figure 5(a): "two orders
// of magnitude better" at 256; we require >= 10x at 128).
func TestOLLBeatKSUHReadOnly(t *testing.T) {
	cfg := sim.T5440()
	ksuh := RunExperiment(*ByName("ksuh"), cfg, 128, 1.0, 120, 3)
	for _, name := range []string{"goll", "foll", "roll"} {
		oll := RunExperiment(*ByName(name), cfg, 128, 1.0, 120, 3)
		if oll.Throughput < 10*ksuh.Throughput {
			t.Errorf("%s throughput %.3e not >= 10x KSUH %.3e at 128 threads read-only",
				name, oll.Throughput, ksuh.Throughput)
		}
	}
}

// TestFOLLOffChipCliff99: FOLL loses a large fraction of its on-chip
// throughput once communication goes off-chip at 99% reads (Figure
// 5(b)'s "dramatic performance drop").
func TestFOLLOffChipCliff99(t *testing.T) {
	cfg := sim.T5440()
	onChip := RunExperiment(*ByName("foll"), cfg, 64, 0.99, 120, 11)
	offChip := RunExperiment(*ByName("foll"), cfg, 256, 0.99, 120, 11)
	if offChip.Throughput > onChip.Throughput/2 {
		t.Errorf("FOLL off-chip %.3e not <= half of on-chip %.3e at 99%% reads",
			offChip.Throughput, onChip.Throughput)
	}
}

// TestGOLLBeatsSolaris99: at 99% reads GOLL must beat the Solaris-like
// lock (Figure 5(b)), even though both eventually serialize on the queue
// mutex.
func TestGOLLBeatsSolaris99(t *testing.T) {
	cfg := sim.T5440()
	goll := RunExperiment(*ByName("goll"), cfg, 32, 0.99, 120, 19)
	sol := RunExperiment(*ByName("solaris"), cfg, 32, 0.99, 120, 19)
	if goll.Throughput <= sol.Throughput {
		t.Errorf("GOLL %.3e not above Solaris-like %.3e at 32 threads / 99%% reads",
			goll.Throughput, sol.Throughput)
	}
}

// TestDistributedBeatKSUH95: at 95% reads the FOLL and ROLL locks beat
// KSUH clearly at full machine scale (Figure 5(c): "over 5x faster ...
// at 256 threads"; we require 3x at 192 to keep the test fast).
func TestDistributedBeatKSUH95(t *testing.T) {
	cfg := sim.T5440()
	ksuh := RunExperiment(*ByName("ksuh"), cfg, 192, 0.95, 120, 23)
	for _, name := range []string{"foll", "roll"} {
		r := RunExperiment(*ByName(name), cfg, 192, 0.95, 120, 23)
		if r.Throughput < 3*ksuh.Throughput {
			t.Errorf("%s %.3e not >= 3x KSUH %.3e at 192 threads / 95%% reads",
				name, r.Throughput, ksuh.Throughput)
		}
	}
}

// TestOffChipRemoteFraction: a centralized lock's accesses become
// predominantly cross-chip once threads span chips.
func TestOffChipRemoteFraction(t *testing.T) {
	cfg := testCfg() // 8 threads per chip
	onChip := RunExperiment(*ByName("solaris"), cfg, 8, 1.0, 100, 5)
	offChip := RunExperiment(*ByName("solaris"), cfg, 32, 1.0, 100, 5)
	if onChip.RemoteFraction > 0.2 {
		t.Errorf("on-chip run has %.0f%% remote accesses, want < 20%%", onChip.RemoteFraction*100)
	}
	if offChip.RemoteFraction < 0.4 {
		t.Errorf("off-chip run has %.0f%% remote accesses, want > 40%%", offChip.RemoteFraction*100)
	}
}

// TestROLLBeatsFOLLOffChip99: the paper's headline ROLL result — at 99%
// reads with threads spanning chips, ROLL sustains higher throughput
// than FOLL because readers coalesce onto one waiting group instead of
// fragmenting behind writers. The gap is widest at full machine scale
// (256 threads) and modest (the paper's is larger — see EXPERIMENTS.md),
// so the ordering is asserted on the mean over several seeds: one seed
// is one interleaving, and at a few percent margin single interleavings
// go either way.
func TestROLLBeatsFOLLOffChip99(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed full-machine comparison is slow under -short")
	}
	cfg := sim.T5440()
	var roll, foll float64
	for seed := uint64(42); seed < 46; seed++ {
		foll += RunExperiment(*ByName("foll"), cfg, 256, 0.99, 120, seed).Throughput
		roll += RunExperiment(*ByName("roll"), cfg, 256, 0.99, 120, seed).Throughput
	}
	if roll <= foll {
		t.Errorf("ROLL %.3e not above FOLL %.3e at 256 threads / 99%% reads (mean of 4 seeds)",
			roll/4, foll/4)
	}
}

// TestWriteOnlyQueueLocksComparable: at 0% reads all queue locks
// serialize writers; none should collapse versus the others by more
// than an order of magnitude (Figure 5(f) shows them clustered).
func TestWriteOnlyQueueLocksComparable(t *testing.T) {
	cfg := testCfg()
	var min, max float64
	for i, name := range []string{"foll", "roll", "ksuh"} {
		r := RunExperiment(*ByName(name), cfg, 16, 0.0, 80, 13)
		if i == 0 || r.Throughput < min {
			min = r.Throughput
		}
		if i == 0 || r.Throughput > max {
			max = r.Throughput
		}
	}
	if max > 10*min {
		t.Errorf("queue locks spread too wide at 0%% reads: min %.3e max %.3e", min, max)
	}
}

func TestSweepShape(t *testing.T) {
	s := Sweep(*ByName("roll"), testCfg(), []int{1, 4, 8}, 0.99, 60, 17)
	if len(s.Points) != 3 || s.Lock != "roll" {
		t.Fatal("sweep shape wrong")
	}
	for _, p := range s.Points {
		if p.Throughput <= 0 {
			t.Fatal("zero throughput in sweep")
		}
	}
}

func TestFigure5LocksList(t *testing.T) {
	fs := Figure5Locks()
	if len(fs) != 5 {
		t.Fatalf("Figure5Locks returned %d locks, want 5", len(fs))
	}
	want := []string{"goll", "foll", "roll", "ksuh", "solaris"}
	for i, f := range fs {
		if f.Name != want[i] {
			t.Fatalf("Figure5Locks[%d] = %q, want %q", i, f.Name, want[i])
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if ByName("nope") != nil {
		t.Fatal("ByName returned a factory for an unknown name")
	}
}

func TestResultString(t *testing.T) {
	r := RunExperiment(*ByName("central"), testCfg(), 2, 0.5, 20, 1)
	if s := r.String(); s == "" {
		t.Fatal("empty String()")
	}
}

// TestLatencyExperimentSanity: latency accounting must be internally
// consistent and reflect the basic physics — waiting for a writer-held
// lock costs more than an uncontended acquire.
func TestLatencyExperimentSanity(t *testing.T) {
	r := RunLatencyExperiment(*ByName("foll"), testCfg(), 8, 0.9, 100, 3)
	if r.Read.Count+r.Write.Count != r.TotalOps {
		t.Fatalf("latency counts %d+%d != total %d", r.Read.Count, r.Write.Count, r.TotalOps)
	}
	if r.Read.Mean <= 0 || r.Write.Mean <= 0 {
		t.Fatal("non-positive mean latency")
	}
	if float64(r.Read.Max) < r.Read.Mean || float64(r.Write.Max) < r.Write.Mean {
		t.Fatal("max latency below mean")
	}
	solo := RunLatencyExperiment(*ByName("foll"), testCfg(), 1, 0.9, 100, 3)
	if r.Read.Mean <= solo.Read.Mean {
		t.Fatalf("contended read latency %.0f not above uncontended %.0f", r.Read.Mean, solo.Read.Mean)
	}
}

// TestReaderPreferenceCostsWriters: the fairness flip side of ROLL's
// throughput win — at a read-heavy mix with many threads, ROLL's writers
// wait at least as long as FOLL's (readers overtake them), while its
// readers do no worse.
func TestReaderPreferenceCostsWriters(t *testing.T) {
	cfg := sim.T5440()
	foll := RunLatencyExperiment(*ByName("foll"), cfg, 192, 0.99, 120, 42)
	roll := RunLatencyExperiment(*ByName("roll"), cfg, 192, 0.99, 120, 42)
	if roll.Write.Mean < foll.Write.Mean*0.9 {
		t.Errorf("ROLL writer latency %.0f unexpectedly below FOLL's %.0f (reader preference should not help writers)",
			roll.Write.Mean, foll.Write.Mean)
	}
	if roll.Read.Mean > foll.Read.Mean*1.5 {
		t.Errorf("ROLL reader latency %.0f far above FOLL's %.0f", roll.Read.Mean, foll.Read.Mean)
	}
}

// TestExclusionSeedSweep is lightweight schedule exploration: the
// simulator's deterministic interleavings vary with the workload seed
// (jitter streams shift every timing decision), so sweeping seeds
// explores many distinct schedules — this is how the two KSUH races
// recorded in DESIGN.md §3a were found. Runs a broad sweep unless
// -short.
func TestExclusionSeedSweep(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 5
	}
	for _, f := range Locks {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < seeds; seed++ {
				res := VerifyExclusion(f, testCfg(), 12, 0.5, 40, uint64(seed))
				if res.Violations != 0 {
					t.Fatalf("seed %d: %d violations", seed, res.Violations)
				}
			}
		})
	}
}

// TestCriticalWorkLowersThroughput: longer critical sections must lower
// throughput, and with very long sections the lock choice stops
// mattering (the paper's empty-section methodology maximizes lock
// sensitivity).
func TestCriticalWorkLowersThroughput(t *testing.T) {
	run := func(name string, cs int64) float64 {
		return RunConfigured(Experiment{
			Factory:      *ByName(name),
			Machine:      testCfg(),
			Threads:      16,
			ReadFraction: 0.95,
			OpsPerThread: 60,
			Seed:         9,
			CriticalWork: cs,
		}).Throughput
	}
	if run("foll", 1000) >= run("foll", 0) {
		t.Error("1000-cycle sections not slower than empty sections")
	}
	// At 50k-cycle sections the section dominates: locks converge.
	foll := run("foll", 50000)
	sol := run("solaris", 50000)
	ratio := foll / sol
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("with 50k-cycle sections foll/solaris = %.2f, want within 2x (section should dominate)", ratio)
	}
}

// TestBurstinessKeepsWriteFraction: the Markov mixing must preserve the
// long-run write fraction (checked by counting ops via a wrapper lock).
func TestBurstinessKeepsWriteFraction(t *testing.T) {
	count := func(burst float64) (reads, writes int64) {
		counter := &opCountingLock{}
		f := Factory{Name: "counted", New: func(m *sim.Machine, n int) Lock {
			counter.inner = NewCentral(m, n)
			return counter
		}}
		RunConfigured(Experiment{
			Factory:         f,
			Machine:         testCfg(),
			Threads:         16,
			ReadFraction:    0.9,
			OpsPerThread:    800,
			Seed:            3,
			WriteBurstiness: burst,
		})
		return counter.reads, counter.writes
	}
	for _, burst := range []float64{0, 0.5, 0.9} {
		r, w := count(burst)
		frac := float64(w) / float64(r+w)
		if frac < 0.07 || frac > 0.13 {
			t.Errorf("burst=%v: write fraction %.3f, want ~0.10", burst, frac)
		}
	}
}

// TestBurstyWritersFavorROLL: with bursty writers at scale, ROLL's group
// coalescing should beat FOLL by more than under i.i.d. writers.
func TestBurstyWritersFavorROLL(t *testing.T) {
	ratio := func(burst float64) float64 {
		run := func(name string) float64 {
			return RunConfigured(Experiment{
				Factory:         *ByName(name),
				Machine:         sim.T5440(),
				Threads:         192,
				ReadFraction:    0.99,
				OpsPerThread:    120,
				Seed:            21,
				WriteBurstiness: burst,
			}).Throughput
		}
		return run("roll") / run("foll")
	}
	iid := ratio(0)
	bursty := ratio(0.9)
	if bursty < iid*0.95 {
		t.Errorf("ROLL/FOLL ratio with bursty writers %.3f below i.i.d. ratio %.3f", bursty, iid)
	}
	if bursty <= 1 {
		t.Errorf("ROLL did not beat FOLL under bursty writers (ratio %.3f)", bursty)
	}
}

// opCountingLock wraps a simulated lock, counting acquisitions by kind.
type opCountingLock struct {
	inner  Lock
	reads  int64
	writes int64
}

func (o *opCountingLock) NewProc(id int) Proc {
	return &opCountingProc{o: o, p: o.inner.NewProc(id)}
}

type opCountingProc struct {
	o *opCountingLock
	p Proc
}

func (cp *opCountingProc) RLock(c *sim.Ctx)   { cp.o.reads++; cp.p.RLock(c) }
func (cp *opCountingProc) RUnlock(c *sim.Ctx) { cp.p.RUnlock(c) }
func (cp *opCountingProc) Lock(c *sim.Ctx)    { cp.o.writes++; cp.p.Lock(c) }
func (cp *opCountingProc) Unlock(c *sim.Ctx)  { cp.p.Unlock(c) }

// TestROLLCoalescesGroups is the direct mechanism check behind ROLL's
// Figure 5(b) advantage: at a read-heavy mix with queued writers, ROLL
// creates fewer reader groups (more joins per enqueued node) than FOLL,
// because overtaking readers pile onto the one waiting group.
func TestROLLCoalescesGroups(t *testing.T) {
	groupsPerOp := func(name string) float64 {
		var f *FOLL
		factory := Factory{Name: name, New: func(m *sim.Machine, n int) Lock {
			switch name {
			case "foll":
				l := NewFOLL(m, n)
				f = l
				return l
			default:
				l := NewROLL(m, n)
				f = l.f
				return l
			}
		}}
		res := RunExperiment(factory, sim.T5440(), 192, 0.99, 120, 42)
		return float64(f.StatGroups) / float64(res.TotalOps)
	}
	foll := groupsPerOp("foll")
	roll := groupsPerOp("roll")
	if roll >= foll {
		t.Errorf("ROLL groups/op %.4f not below FOLL's %.4f (no coalescing)", roll, foll)
	}
}
