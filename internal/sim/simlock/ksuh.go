package simlock

import (
	"ollock/internal/sim"
)

// KSUH is the simulated Krieger–Stumm–Unrau–Hanna lock (mirrors
// internal/ksuh): doubly linked queue entered by a tail swap; readers
// splice themselves out on release; the head run is the active set.
//
// Each node packs its flags (waiting, leaving, kind) into one state
// word — as a compact real node layout would share a cache line — plus
// separate words for the prev/next links and the per-node splice lock.
type KSUH struct {
	m     *sim.Machine
	tail  *sim.Word // node ref
	nodes []*ksuhNode
}

type ksuhNode struct {
	state *sim.Word // bit 0 waiting, bit 1 leaving, bit 2 writer
	prev  *sim.Word // node ref
	next  *sim.Word // node ref
	lk    *sim.Word // splice lock
}

const (
	kWaiting = uint64(1)
	kLeaving = uint64(2)
	kWriter  = uint64(4)
)

// NewKSUH allocates a KSUH lock on m.
func NewKSUH(m *sim.Machine, maxProcs int) *KSUH {
	return &KSUH{m: m, tail: m.NewWord(0)}
}

type ksuhProc struct {
	l   *KSUH
	idx int // this proc's node index
}

// NewProc returns the per-thread handle owning one queue node. Call
// during setup.
func (l *KSUH) NewProc(id int) Proc {
	n := &ksuhNode{
		state: l.m.NewWord(0),
		prev:  l.m.NewWord(0),
		next:  l.m.NewWord(0),
		lk:    l.m.NewWord(0),
	}
	l.nodes = append(l.nodes, n)
	return &ksuhProc{l: l, idx: len(l.nodes) - 1}
}

func lockWord(c *sim.Ctx, w *sim.Word) {
	for {
		if c.CAS(w, 0, 1) {
			return
		}
		c.SpinUntil(w, func(v uint64) bool { return v == 0 })
	}
}

func unlockWord(c *sim.Ctx, w *sim.Word) {
	c.Store(w, 0)
}

func (p *ksuhProc) reset(c *sim.Ctx, writer bool) {
	n := p.l.nodes[p.idx]
	st := kWaiting
	if writer {
		st |= kWriter
	}
	c.Store(n.state, st)
	c.Store(n.prev, 0)
	c.Store(n.next, 0)
}

func (p *ksuhProc) RLock(c *sim.Ctx) {
	l := p.l
	p.reset(c, false)
	me := l.nodes[p.idx]
	predRef := c.Swap(l.tail, ref(p.idx))
	if isNil(predRef) {
		l.activate(c, p.idx)
		return
	}
	c.Store(me.prev, predRef)
	c.Store(l.nodes[deref(predRef)].next, ref(p.idx))
	p.decide(c)
	c.SpinUntil(me.state, func(v uint64) bool { return v&kWaiting == 0 })
}

// decide mirrors ksuh.RWLock.decide: under the predecessor's lock,
// join an active-reader predecessor or wait.
func (p *ksuhProc) decide(c *sim.Ctx) {
	l := p.l
	me := l.nodes[p.idx]
	for {
		pRef := c.Load(me.prev)
		if isNil(pRef) {
			l.activate(c, p.idx)
			return
		}
		pn := l.nodes[deref(pRef)]
		lockWord(c, pn.lk)
		if c.Load(me.prev) != pRef || c.Load(pn.state)&kLeaving != 0 {
			unlockWord(c, pn.lk)
			c.Work(5)
			continue
		}
		st := c.Load(pn.state)
		if st&kWriter == 0 && st&kWaiting == 0 {
			l.activate(c, p.idx)
			unlockWord(c, pn.lk)
			return
		}
		unlockWord(c, pn.lk)
		return
	}
}

// activate mirrors ksuh.RWLock.activate: mark active, chain-wake the
// run of waiting readers behind (hand-over-hand).
func (l *KSUH) activate(c *sim.Ctx, idx int) {
	lockWord(c, l.nodes[idx].lk)
	l.activateLocked(c, idx)
}

// activateLocked is activate with the node's lock already held.
func (l *KSUH) activateLocked(c *sim.Ctx, idx int) {
	cur := idx
	for {
		n := l.nodes[cur]
		st := c.Load(n.state)
		c.Store(n.state, st&^kWaiting)
		if st&kWriter != 0 {
			unlockWord(c, n.lk)
			return
		}
		succRef := c.Load(n.next)
		if isNil(succRef) {
			unlockWord(c, n.lk)
			return
		}
		sn := l.nodes[deref(succRef)]
		sst := c.Load(sn.state)
		if sst&kWriter != 0 || sst&kWaiting == 0 {
			unlockWord(c, n.lk)
			return
		}
		lockWord(c, sn.lk)
		unlockWord(c, n.lk)
		cur = deref(succRef)
	}
}

func (p *ksuhProc) RUnlock(c *sim.Ctx) { p.splice(c) }

func (p *ksuhProc) Lock(c *sim.Ctx) {
	l := p.l
	p.reset(c, true)
	me := l.nodes[p.idx]
	predRef := c.Swap(l.tail, ref(p.idx))
	if isNil(predRef) {
		c.Store(me.state, kWriter) // active immediately
		return
	}
	c.Store(me.prev, predRef)
	c.Store(l.nodes[deref(predRef)].next, ref(p.idx))
	c.SpinUntil(me.state, func(v uint64) bool { return v&kWaiting == 0 })
}

func (p *ksuhProc) Unlock(c *sim.Ctx) { p.splice(c) }

// splice mirrors ksuh.RWLock.splice.
func (p *ksuhProc) splice(c *sim.Ctx) {
	l := p.l
	me := l.nodes[p.idx]
	var pn *ksuhNode
	pIdx := -1
	for {
		pRef := c.Load(me.prev)
		if isNil(pRef) {
			pn, pIdx = nil, -1
			break
		}
		cand := l.nodes[deref(pRef)]
		lockWord(c, cand.lk)
		if c.Load(me.prev) == pRef && c.Load(cand.state)&kLeaving == 0 {
			pn, pIdx = cand, deref(pRef)
			break
		}
		unlockWord(c, cand.lk)
		c.Work(5)
	}
	lockWord(c, me.lk)
	c.Store(me.state, c.Load(me.state)|kLeaving)
	succRef := c.Load(me.next)
	if isNil(succRef) {
		tailTo := uint64(0)
		if pIdx >= 0 {
			tailTo = ref(pIdx)
		}
		// Clear pn.next BEFORE the tail CAS (see internal/ksuh): once the
		// CAS restores the tail to pn, a new enqueuer may write pn.next,
		// and a later clear would clobber its link.
		if pn != nil {
			c.Store(pn.next, 0)
		}
		if c.CAS(l.tail, ref(p.idx), tailTo) {
			unlockWord(c, me.lk)
			if pn != nil {
				unlockWord(c, pn.lk)
			}
			return
		}
		succRef = c.SpinUntil(me.next, func(v uint64) bool { return v != 0 })
	}
	sn := l.nodes[deref(succRef)]
	if pIdx >= 0 {
		c.Store(sn.prev, ref(pIdx))
		c.Store(pn.next, succRef)
		unlockWord(c, me.lk)
		unlockWord(c, pn.lk)
		return
	}
	// Head splice: pin the successor (lock it) BEFORE publishing it as
	// head, so it cannot be spliced out and reused before the activation
	// runs (see internal/ksuh for the race).
	lockWord(c, sn.lk)
	c.Store(sn.prev, 0)
	unlockWord(c, me.lk)
	l.activateLocked(c, deref(succRef))
}
