package sim

import (
	"testing"
)

func small() Config {
	return Config{
		Chips: 2, ThreadsPerChip: 4, ThreadsPerCore: 2,
		CostLocal: 1, CostCore: 5, CostShared: 30, CostRemote: 120, CostOp: 3,
		MaxSteps: 10_000_000,
	}
}

func TestSingleThreadWork(t *testing.T) {
	m := New(small())
	m.Spawn(func(c *Ctx) {
		c.Work(100)
	})
	end := m.Run()
	// sync (announce) + Work's sync charge CostOp each, plus 100 cycles.
	want := int64(2*3 + 100)
	if end != want {
		t.Fatalf("end clock = %d, want %d", end, want)
	}
}

func TestLoadCosts(t *testing.T) {
	m := New(small())
	w := m.NewWord(7)
	var first, second, third uint64
	var c1, c2, c3 int64
	m.Spawn(func(c *Ctx) {
		t0 := c.Now()
		first = c.Load(w) // memory fetch: remote cost
		c1 = c.Now() - t0
		t0 = c.Now()
		second = c.Load(w) // cached: local cost
		c2 = c.Now() - t0
		t0 = c.Now()
		c.Store(w, 9) // sole sharer upgrade: local cost
		third = c.Load(w)
		c3 = c.Now() - t0
	})
	m.Run()
	if first != 7 || second != 7 || third != 9 {
		t.Fatalf("values %d,%d,%d", first, second, third)
	}
	cfg := small()
	if c1 != cfg.CostOp+cfg.CostRemote {
		t.Fatalf("first load cost %d, want %d", c1, cfg.CostOp+cfg.CostRemote)
	}
	if c2 != cfg.CostOp+cfg.CostLocal {
		t.Fatalf("cached load cost %d, want %d", c2, cfg.CostOp+cfg.CostLocal)
	}
	if c3 != 2*(cfg.CostOp+cfg.CostLocal) {
		t.Fatalf("upgrade store + cached load cost %d, want %d", c3, 2*(cfg.CostOp+cfg.CostLocal))
	}
}

func TestTransferCostTiers(t *testing.T) {
	cfg := small() // 2 threads/core, 4 threads/chip: id0 core0, id1 core0, id2 core1/chip0, id4 chip1
	m := New(cfg)
	w := m.NewWord(0)
	var costCore, costChip, costRemote int64
	order := m.NewWord(0)
	m.Spawn(func(c *Ctx) { // id 0: writer, core 0, chip 0
		c.Store(w, 42)
		c.Store(order, 1)
	})
	m.Spawn(func(c *Ctx) { // id 1: same core as writer
		c.SpinUntil(order, func(v uint64) bool { return v == 3 })
		t0 := c.Now()
		c.Load(w)
		costCore = c.Now() - t0
	})
	m.Spawn(func(c *Ctx) { // id 2: same chip, different core
		c.SpinUntil(order, func(v uint64) bool { return v == 2 })
		t0 := c.Now()
		c.Load(w)
		costChip = c.Now() - t0
		c.Store(order, 3)
	})
	m.Spawn(func(c *Ctx) {}) // id 3
	m.Spawn(func(c *Ctx) {   // id 4: different chip
		c.SpinUntil(order, func(v uint64) bool { return v == 1 })
		t0 := c.Now()
		c.Load(w)
		costRemote = c.Now() - t0
		c.Store(order, 2)
	})
	m.Run()
	if costRemote != cfg.CostOp+cfg.CostRemote {
		t.Fatalf("cross-chip read cost %d, want %d", costRemote, cfg.CostOp+cfg.CostRemote)
	}
	if costChip != cfg.CostOp+cfg.CostShared {
		t.Fatalf("same-chip read cost %d, want %d", costChip, cfg.CostOp+cfg.CostShared)
	}
	if costCore != cfg.CostOp+cfg.CostCore {
		t.Fatalf("same-core read cost %d, want %d", costCore, cfg.CostOp+cfg.CostCore)
	}
}

func TestCASSemantics(t *testing.T) {
	m := New(small())
	w := m.NewWord(5)
	var ok1, ok2 bool
	var final uint64
	m.Spawn(func(c *Ctx) {
		ok1 = c.CAS(w, 5, 6)
		ok2 = c.CAS(w, 5, 7)
		final = c.Load(w)
	})
	m.Run()
	if !ok1 || ok2 || final != 6 {
		t.Fatalf("CAS semantics wrong: %v %v %d", ok1, ok2, final)
	}
}

func TestSwapChain(t *testing.T) {
	m := New(small())
	w := m.NewWord(0)
	results := make([]uint64, 4)
	for i := 0; i < 4; i++ {
		i := i
		m.Spawn(func(c *Ctx) {
			results[i] = c.Swap(w, uint64(i+1))
		})
	}
	m.Run()
	// The four swap returns must be distinct and include the initial 0
	// (FetchAndStore chain property).
	seen := map[uint64]bool{}
	for _, v := range results {
		seen[v] = true
	}
	if !seen[0] {
		t.Fatal("initial value 0 never returned by any swap")
	}
	if len(seen) != 4 {
		t.Fatalf("swap returns not distinct: %v", results)
	}
}

func TestAddAtomicity(t *testing.T) {
	m := New(small())
	w := m.NewWord(0)
	for i := 0; i < 8; i++ {
		m.Spawn(func(c *Ctx) {
			for j := 0; j < 100; j++ {
				c.Add(w, 1)
			}
		})
	}
	m.Run()
	if w.val != 800 {
		t.Fatalf("final = %d, want 800", w.val)
	}
}

func TestSpinUntilWakesAtWriterTime(t *testing.T) {
	cfg := small()
	m := New(cfg)
	w := m.NewWord(0)
	var wakeClock, writeClock int64
	m.Spawn(func(c *Ctx) { // waiter
		c.SpinUntil(w, func(v uint64) bool { return v == 1 })
		wakeClock = c.Now()
	})
	m.Spawn(func(c *Ctx) { // writer
		c.Work(1000)
		c.Store(w, 1)
		writeClock = c.Now()
	})
	m.Run()
	if wakeClock < writeClock {
		t.Fatalf("waiter woke at %d before writer finished at %d", wakeClock, writeClock)
	}
	// The waiter's extra cost beyond the writer's finish is one re-check
	// (CostOp + transfer).
	if wakeClock > writeClock+cfg.CostOp+cfg.CostRemote+cfg.CostShared {
		t.Fatalf("wake cost too high: woke %d, write at %d", wakeClock, writeClock)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("deadlock did not panic")
		}
	}()
	m := New(small())
	w := m.NewWord(0)
	m.Spawn(func(c *Ctx) {
		c.SpinUntil(w, func(v uint64) bool { return v == 1 }) // never satisfied
	})
	m.Run()
}

func TestMaxStepsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxSteps did not panic")
		}
	}()
	cfg := small()
	cfg.MaxSteps = 10
	m := New(cfg)
	m.Spawn(func(c *Ctx) {
		for {
			c.Work(1)
		}
	})
	m.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, []Stats) {
		m := New(small())
		w := m.NewWord(0)
		lockWord := m.NewWord(0)
		for i := 0; i < 8; i++ {
			m.Spawn(func(c *Ctx) {
				for j := 0; j < 50; j++ {
					// spin lock: CAS 0->1, increment, release
					for !c.CAS(lockWord, 0, 1) {
						c.SpinUntil(lockWord, func(v uint64) bool { return v == 0 })
					}
					c.Store(w, c.Load(w)+1)
					c.Store(lockWord, 0)
				}
			})
		}
		end := m.Run()
		return end, m.ThreadStats()
	}
	end1, st1 := run()
	end2, st2 := run()
	if end1 != end2 {
		t.Fatalf("end times differ: %d vs %d", end1, end2)
	}
	for i := range st1 {
		if st1[i] != st2[i] {
			t.Fatalf("thread %d stats differ: %+v vs %+v", i, st1[i], st2[i])
		}
	}
}

func TestSpinLockProgramCorrect(t *testing.T) {
	m := New(small())
	counter := m.NewWord(0)
	lockWord := m.NewWord(0)
	const threads, iters = 8, 200
	for i := 0; i < threads; i++ {
		m.Spawn(func(c *Ctx) {
			for j := 0; j < iters; j++ {
				for !c.CAS(lockWord, 0, 1) {
					c.SpinUntil(lockWord, func(v uint64) bool { return v == 0 })
				}
				c.Store(counter, c.Load(counter)+1)
				c.Store(lockWord, 0)
			}
		})
	}
	m.Run()
	if counter.val != threads*iters {
		t.Fatalf("counter = %d, want %d (simulated exclusion broken)", counter.val, threads*iters)
	}
}

func TestThreadPlacement(t *testing.T) {
	m := New(small())
	chips := make([]int, 8)
	for i := 0; i < 8; i++ {
		i := i
		m.Spawn(func(c *Ctx) {
			chips[i] = c.Chip()
			if c.ID() != i {
				t.Errorf("thread %d has ID %d", i, c.ID())
			}
		})
	}
	m.Run()
	for i, chip := range chips {
		if want := i / 4; chip != want {
			t.Fatalf("thread %d on chip %d, want %d", i, chip, want)
		}
	}
}

func TestSpawnBeyondCapacityPanics(t *testing.T) {
	m := New(Config{Chips: 1, ThreadsPerChip: 1, CostLocal: 1, CostShared: 2, CostRemote: 3, CostOp: 1})
	m.Spawn(func(c *Ctx) {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Spawn(func(c *Ctx) {})
}

func TestT5440Shape(t *testing.T) {
	cfg := T5440()
	if cfg.Chips != 4 || cfg.ThreadsPerChip != 64 || cfg.ThreadsPerCore != 8 {
		t.Fatal("T5440 topology wrong")
	}
	if !(cfg.CostLocal < cfg.CostCore && cfg.CostCore < cfg.CostShared && cfg.CostShared < cfg.CostRemote) {
		t.Fatal("cost ordering wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	m := New(Config{Chips: 1, ThreadsPerChip: 4, CostLocal: 1, CostShared: 10, CostRemote: 50, CostOp: 1})
	cfg := m.Config()
	if cfg.ThreadsPerCore != 4 {
		t.Fatalf("ThreadsPerCore default = %d, want ThreadsPerChip", cfg.ThreadsPerCore)
	}
	if cfg.CostCore != 10 {
		t.Fatalf("CostCore default = %d, want CostShared", cfg.CostCore)
	}
}

func TestConfigBadCoreSplit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for ThreadsPerCore not dividing ThreadsPerChip")
		}
	}()
	New(Config{Chips: 1, ThreadsPerChip: 4, ThreadsPerCore: 3, CostLocal: 1, CostCore: 2, CostShared: 10, CostRemote: 50, CostOp: 1})
}

func TestContentionSlowsSharedCounter(t *testing.T) {
	// Sanity for the scaling experiments: per-op cost of a shared
	// atomic counter grows with thread count, while per-op cost of
	// per-thread counters stays flat.
	perOp := func(threads int, shared bool) float64 {
		m := New(small())
		words := make([]*Word, threads)
		sharedWord := m.NewWord(0)
		for i := 0; i < threads; i++ {
			if shared {
				words[i] = sharedWord
			} else {
				words[i] = m.NewWord(0)
			}
		}
		const iters = 200
		for i := 0; i < threads; i++ {
			w := words[i]
			m.Spawn(func(c *Ctx) {
				for j := 0; j < iters; j++ {
					c.Add(w, 1)
				}
			})
		}
		end := m.Run()
		return float64(end) / float64(iters)
	}
	sharedCost := perOp(8, true)
	privateCost := perOp(8, false)
	if sharedCost < 4*privateCost {
		t.Fatalf("shared counter per-op %v not clearly slower than private %v", sharedCost, privateCost)
	}
}
