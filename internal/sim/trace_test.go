package sim

import (
	"testing"
)

func TestTraceRecordsAllKinds(t *testing.T) {
	cfg := small()
	m := New(cfg)
	var events []Event
	m.SetTrace(func(e Event) { events = append(events, e) })
	w := m.NewWord(0)
	m.Spawn(func(c *Ctx) { // waiter
		c.SpinUntil(w, func(v uint64) bool { return v == 3 })
	})
	m.Spawn(func(c *Ctx) { // driver
		c.Work(500)
		c.Load(w)
		c.Store(w, 1)
		c.CAS(w, 1, 2) // success
		c.CAS(w, 9, 9) // fail
		c.Swap(w, 2)   // value unchanged: no wake
		c.Add(w, 1)    // -> 3: wakes the waiter
	})
	m.Run()

	byKind := map[EventKind]int{}
	for _, e := range events {
		byKind[e.Kind]++
	}
	for _, want := range []EventKind{EvLoad, EvStore, EvCASSuccess, EvCASFail, EvSwap, EvAdd, EvSpinBlock, EvSpinWake, EvWork} {
		if byKind[want] == 0 {
			t.Errorf("no %v events traced (have %v)", want, byKind)
		}
	}
	// Every value change wakes the watcher (it re-checks and re-blocks
	// until the predicate holds), so several wakes occur; all must carry
	// the writer's identity, and the last one the satisfying value.
	var lastWake *Event
	for i := range events {
		e := &events[i]
		if e.Kind == EvSpinWake {
			if e.Waker != 1 || e.Thread != 0 {
				t.Fatalf("wake event = %+v, want waker 1, thread 0", e)
			}
			lastWake = e
		}
	}
	if lastWake == nil || lastWake.Value != 3 {
		t.Fatalf("last wake = %+v, want value 3", lastWake)
	}
}

func TestTracePerThreadTimesMonotone(t *testing.T) {
	m := New(small())
	var events []Event
	m.SetTrace(func(e Event) { events = append(events, e) })
	w := m.NewWord(0)
	for i := 0; i < 4; i++ {
		m.Spawn(func(c *Ctx) {
			for j := 0; j < 50; j++ {
				c.Add(w, 1)
			}
		})
	}
	m.Run()
	last := map[int]int64{}
	for _, e := range events {
		if e.Time < last[e.Thread] {
			t.Fatalf("thread %d time went backwards: %d after %d", e.Thread, e.Time, last[e.Thread])
		}
		last[e.Thread] = e.Time
	}
	if len(events) < 4*50 {
		t.Fatalf("only %d events traced", len(events))
	}
}

func TestTraceWordIDs(t *testing.T) {
	m := New(small())
	a, b := m.NewWord(0), m.NewWord(0)
	if a.ID() == b.ID() {
		t.Fatal("word ids not distinct")
	}
	var seen []int
	m.SetTrace(func(e Event) { seen = append(seen, e.Word) })
	m.Spawn(func(c *Ctx) {
		c.Store(a, 1)
		c.Store(b, 2)
		c.Work(1)
	})
	m.Run()
	if len(seen) != 3 || seen[0] != a.ID() || seen[1] != b.ID() || seen[2] != -1 {
		t.Fatalf("traced word ids %v, want [%d %d -1]", seen, a.ID(), b.ID())
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvLoad, EvStore, EvCASSuccess, EvCASFail, EvSwap, EvAdd, EvSpinBlock, EvSpinWake, EvWork, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", int(k))
		}
	}
}
