// Package xrand implements the tiny per-thread pseudo-random number
// generator the evaluation workload uses to decide, independently on
// each thread and without any shared state, whether the next lock
// acquisition is a read or a write (§5.1: "a per-thread private random
// number generator and a target read percentage").
//
// The generator is xorshift64*: 8 bytes of state, no allocation, no
// synchronization, period 2^64-1, more than good enough for workload
// mixing and for randomized tests.
package xrand

// Rand is a xorshift64* generator. It is NOT safe for concurrent use;
// give each goroutine its own.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is remapped to a
// fixed odd constant because the all-zero state is a fixed point of
// xorshift.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state.
func (r *Rand) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 // golden-ratio constant
	}
	r.state = seed
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Split derives an independent generator from r, for seeding per-thread
// generators from one master seed deterministically.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() | 1)
}
