package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedZeroRemapped(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 collisions between distinct seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestBoolEdgeCases(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	// At p=0.99 (the Figure 5(b) read ratio) the observed frequency over
	// 100k trials must be close to 0.99.
	r := New(42)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.99) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.985 || got > 0.995 {
		t.Fatalf("Bool(0.99) frequency = %v, want ~0.99", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		m := int(n % 64)
		p := New(seed).Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	master := New(99)
	a := master.Split()
	b := master.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 collisions between split generators", same)
	}
}

func TestUint32Moves(t *testing.T) {
	r := New(3)
	a, b := r.Uint32(), r.Uint32()
	if a == b {
		// One collision is possible but astronomically unlikely here.
		c := r.Uint32()
		if b == c {
			t.Fatal("Uint32 appears stuck")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkBool(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Bool(0.99)
	}
}
