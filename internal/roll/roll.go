// Package roll implements the ROLL lock — the reader-preference
// distributed-queue OLL reader-writer lock of §4.3 of "Scalable
// Reader-Writer Locks".
//
// ROLL is the FOLL lock with the wait queue converted into a doubly
// linked list: a reader that finds a writer at the tail walks backward
// looking for a reader node whose group is still waiting (spin flag
// true), and joins it — overtaking the intervening writers — instead of
// enqueuing a new node at the tail. Because all readers follow this
// procedure, at most one such waiting reader node exists at a time, so
// under a steady trickle of writers all readers coalesce onto one node
// rather than fragmenting into one group per writer. A lock-level
// lastReader hint caches the most recently joined waiting node to skip
// the backward search (§4.3's optimization).
//
// Joins are validated by the node's C-SNZI, not by queue position: a
// node's C-SNZI is open only while the node is enqueued, so a successful
// Arrive proves membership even if the backward walk raced with node
// recycling; a failed Arrive simply falls back to enqueuing a new node
// (FOLL behaviour).
//
// One consequence the paper leaves implicit: a ROLL writer enqueuing
// behind a reader node must NOT close the node's C-SNZI at enqueue time
// (as a FOLL writer does) — that would make every waiting group
// unjoinable the moment a writer queued behind it, defeating the
// overtaking entirely. Instead the writer defers the close until the
// group is activated (its spin flag clears), the point after which no
// searching reader targets the node anyway.
package roll

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"

	"ollock/internal/atomicx"
	"ollock/internal/lockcore"
	"ollock/internal/rind"
)

// Node kinds.
const (
	kindReader uint32 = iota
	kindWriter
)

// Node allocation states (reader nodes only).
const (
	allocFree uint32 = iota
	allocInUse
)

// searchLimit bounds the backward walk. Stale prev pointers through
// recycled nodes can mislead the walk; bounding it keeps the fallback
// (enqueue a fresh node, i.e. FOLL behaviour) prompt.
const searchLimit = 256

// Node is a queue node with both forward (qNext) and backward (qPrev)
// links.
type Node struct {
	kind  uint32 // immutable
	qNext atomicx.PaddedPointer[Node]
	qPrev atomicx.PaddedPointer[Node]
	// flag is the node's grant flag ("spin" in the paper), policy-aware
	// so blocked threads can yield or park; see internal/park via
	// lockcore. Its Blocked bit doubles as the "group still waiting"
	// join condition.
	flag lockcore.Flag
	// Reader-node-only fields.
	ind        rind.Indicator // closed whenever the node is not enqueued
	allocState atomic.Uint32
	ringNext   *Node
}

// RWLock is a ROLL reader-writer lock for up to a fixed number of
// participating goroutines. Use New, then one Proc per goroutine.
type RWLock struct {
	tail       atomicx.PaddedPointer[Node]
	lastReader atomicx.PaddedPointer[Node] // hint: last known waiting reader node
	ring       []Node
	procs      atomic.Int64
	factory    rind.Factory
	// in is the instrumentation bundle (zero = all off): the stats
	// block is shared with every ring node's indicator, and the wait
	// policy routes every blocking site.
	in lockcore.Instr
}

// Proc is a per-goroutine handle (one outstanding acquisition at a
// time).
type Proc struct {
	l          *RWLock
	id         int
	rNode      *Node
	wNode      *Node
	departFrom *Node
	ticket     rind.Ticket
	// pi is the proc's instrumentation view (buffered counters +
	// flight-recorder ring); one predictable branch per site when off.
	pi lockcore.ProcInstr
}

// Option configures the lock.
type Option func(*RWLock)

// WithIndicator substitutes a read-indicator factory (see
// internal/rind) for the per-node C-SNZIs; every ring-pool node gets
// its own indicator of the chosen kind.
func WithIndicator(f rind.Factory) Option { return func(l *RWLock) { l.factory = f } }

// WithInstr attaches the instrumentation bundle (see internal/lockcore):
// the stats block (roll.* join/overtake/hint counters, shared with
// every ring node's csnzi.* counters), the flight-recorder handle
// (queue/overtake/hint lifecycle events), and the wait policy that
// makes node grant flags parking-capable. The zero bundle (the default)
// spins exactly as the paper does, uninstrumented.
func WithInstr(in lockcore.Instr) Option { return func(l *RWLock) { l.in = in } }

// New returns a ROLL lock sized for maxProcs participating goroutines.
func New(maxProcs int, opts ...Option) *RWLock {
	if maxProcs <= 0 {
		panic("roll: maxProcs must be positive")
	}
	l := &RWLock{ring: make([]Node, maxProcs)}
	for _, o := range opts {
		o(l)
	}
	if l.factory == nil {
		l.factory = rind.CSNZIFactory()
	}
	for i := range l.ring {
		n := &l.ring[i]
		n.kind = kindReader
		n.ringNext = &l.ring[(i+1)%maxProcs]
		n.ind = rind.Instrument(l.factory(), l.in.Stats)
		n.ind.CloseIfEmpty() // not enqueued => closed
	}
	l.in.AddDumper(l)
	return l
}

// NewProc registers a goroutine with the lock; panics beyond maxProcs.
func (l *RWLock) NewProc() *Proc {
	id := int(l.procs.Add(1)) - 1
	if id >= len(l.ring) {
		panic("roll: more procs than maxProcs")
	}
	return &Proc{
		l:     l,
		id:    id,
		rNode: &l.ring[id],
		wNode: &Node{kind: kindWriter},
		pi:    l.in.NewProc(id),
	}
}

func (p *Proc) allocReaderNode() *Node {
	cur := p.rNode
	for {
		if cur.allocState.Load() == allocFree &&
			cur.allocState.CompareAndSwap(allocFree, allocInUse) {
			return cur
		}
		cur = cur.ringNext
		if cur == p.rNode {
			runtime.Gosched()
		}
	}
}

func freeReaderNode(n *Node) {
	n.allocState.Store(allocFree)
}

// tryJoinWaiting attempts to join the waiting reader group at n. It
// succeeds only if n's group is still waiting (spin set) and its C-SNZI
// is open (n is enqueued). On success the caller holds the lock once the
// group's spin flag clears.
func (p *Proc) tryJoinWaiting(n *Node, t0, pt int64) bool {
	if n.kind != kindReader || !n.flag.Blocked() {
		return false
	}
	t := n.ind.ArriveLocal(p.id, p.pi.LC)
	if !t.Arrived() {
		return false
	}
	p.pi.Inc(lockcore.ROLLOvertake)
	p.pi.Emit(lockcore.KindOvertake, 0, 0)
	// Refresh the hint only when it actually changes: with one waiting
	// group at a time, an unconditional store would make the hint word a
	// globally contended line written by every joining reader.
	if p.l.lastReader.Load() != n {
		p.l.lastReader.Store(n)
	}
	p.departFrom = n
	p.ticket = t
	if p.pi.Tracing() && n.flag.Blocked() {
		p.pi.Begin(lockcore.PhaseSpinWait)
	}
	n.flag.Wait(p.l.in.Wait, p.id, p.pi.TR)
	p.pi.Acquired(lockcore.KindReadAcquired, t0, lockcore.RouteJoin)
	p.pi.ProfAcquired(pt, true)
	return true
}

// RLock acquires the lock for reading, preferring to join an existing
// waiting reader group over enqueuing behind writers.
func (p *Proc) RLock() {
	l := p.l
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	slow := false
	var rNode *Node
	defer func() {
		if rNode != nil {
			freeReaderNode(rNode) // allocated but never enqueued
		}
	}()
	for {
		// Fast path: the hint points at the last known waiting group.
		if h := l.lastReader.Load(); h != nil {
			if p.tryJoinWaiting(h, t0, pt) {
				p.pi.Inc(lockcore.ROLLHintHit)
				p.pi.Emit(lockcore.KindHintHit, 0, 0)
				return
			}
			p.pi.Inc(lockcore.ROLLHintMiss)
			p.pi.Emit(lockcore.KindHintMiss, 0, 0)
			l.lastReader.CompareAndSwap(h, nil)
		}
		tail := l.tail.Load()
		switch {
		case tail == nil:
			if rNode == nil {
				rNode = p.allocReaderNode()
			}
			rNode.flag.Set(false)
			rNode.qNext.Store(nil)
			rNode.qPrev.Store(nil)
			if !l.tail.CompareAndSwap(nil, rNode) {
				slow = true
				continue
			}
			p.pi.Inc(lockcore.ROLLReadEnqueue)
			p.pi.Emit(lockcore.KindGroupEnqueue, 0, 0)
			rNode.ind.Open()
			t := rNode.ind.ArriveLocal(p.id, p.pi.LC)
			if t.Arrived() {
				p.departFrom = rNode
				p.ticket = t
				rNode = nil
				p.pi.Acquired(lockcore.KindReadAcquired, t0, t.TraceRoute())
				p.pi.ProfAcquired(pt, slow)
				return
			}
			p.pi.Emit(lockcore.KindArriveFail, 0, 0)
			slow = true
			rNode = nil // in queue; the closing writer recycles it

		case tail.kind == kindReader:
			// Tail is a reader node: join it directly (same as FOLL).
			t := tail.ind.ArriveLocal(p.id, p.pi.LC)
			if t.Arrived() {
				p.pi.Inc(lockcore.ROLLReadJoin)
				p.departFrom = tail
				p.ticket = t
				blocked := tail.flag.Blocked()
				if blocked && l.lastReader.Load() != tail {
					l.lastReader.Store(tail)
				}
				if p.pi.Tracing() && blocked {
					p.pi.Begin(lockcore.PhaseSpinWait)
				}
				tail.flag.Wait(l.in.Wait, p.id, p.pi.TR)
				p.pi.Acquired(lockcore.KindReadAcquired, t0, lockcore.RouteJoin)
				p.pi.ProfAcquired(pt, slow || blocked)
				return
			}
			// Closed: tail changed; retry.
			p.pi.Emit(lockcore.KindArriveFail, 0, 0)
			slow = true

		default:
			// Tail is a writer: search backward for a waiting reader
			// group to overtake into.
			cur := tail.qPrev.Load()
			for steps := 0; cur != nil && steps < searchLimit; steps++ {
				if cur.kind == kindReader {
					if p.tryJoinWaiting(cur, t0, pt) {
						return
					}
					break // reader node found but not joinable
				}
				cur = cur.qPrev.Load()
			}
			// No joinable group: enqueue a fresh waiting reader node at
			// the tail (FOLL behaviour), which becomes the new group.
			if rNode == nil {
				rNode = p.allocReaderNode()
			}
			rNode.flag.Set(true)
			rNode.qNext.Store(nil)
			rNode.qPrev.Store(tail)
			if !l.tail.CompareAndSwap(tail, rNode) {
				slow = true
				continue
			}
			p.pi.Inc(lockcore.ROLLReadEnqueue)
			p.pi.Emit(lockcore.KindGroupEnqueue, 0, 1)
			tail.qNext.Store(rNode)
			rNode.ind.Open()
			t := rNode.ind.ArriveLocal(p.id, p.pi.LC)
			if t.Arrived() {
				p.departFrom = rNode
				p.ticket = t
				l.lastReader.Store(rNode)
				node := rNode
				rNode = nil
				if p.pi.Tracing() && node.flag.Blocked() {
					p.pi.Begin(lockcore.PhaseSpinWait)
				}
				node.flag.Wait(l.in.Wait, p.id, p.pi.TR)
				p.pi.Acquired(lockcore.KindReadAcquired, t0, t.TraceRoute())
				p.pi.ProfAcquired(pt, true)
				return
			}
			p.pi.Emit(lockcore.KindArriveFail, 0, 0)
			slow = true
			rNode = nil
		}
	}
}

// RUnlock releases a read acquisition, signalling the closing writer if
// this thread departed last and recycling the group's node.
func (p *Proc) RUnlock() {
	n := p.departFrom
	if n.ind.Depart(p.ticket) {
		p.pi.Released(lockcore.KindReadReleased)
		p.pi.ProfReleased()
		return
	}
	p.pi.Emit(lockcore.KindIndDrain, 0, 0)
	succ := n.qNext.Load()
	succ.qPrev.Store(nil) // succ becomes head
	succ.flag.Clear(p.l.in.Wait)
	n.qNext.Store(nil)
	freeReaderNode(n)
	p.pi.Inc(lockcore.ROLLNodeRecycle)
	p.pi.Emit(lockcore.KindHandoff, 0, lockcore.PackHandoff(1, succ.kind == kindWriter))
	p.pi.Released(lockcore.KindReadReleased)
	p.pi.ProfReleased()
}

// Lock acquires the lock for writing.
func (p *Proc) Lock() {
	l := p.l
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	w0 := l.in.SpanStart()
	w := p.wNode
	w.qNext.Store(nil)
	oldTail := l.tail.Swap(w)
	w.qPrev.Store(oldTail)
	if oldTail == nil {
		p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteRoot)
		p.pi.ProfAcquired(pt, false)
		l.in.SpanObserve(lockcore.ROLLWriteWait, p.id, w0)
		return
	}
	w.flag.Set(true)
	oldTail.qNext.Store(w)
	p.pi.Emit(lockcore.KindQueueEnqueue, 0, 1)
	if oldTail.kind == kindWriter {
		p.pi.BeginAt(t0, lockcore.PhaseQueueWait)
		w.flag.Wait(l.in.Wait, p.id, p.pi.TR)
		p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteDirect)
		p.pi.ProfAcquired(pt, true)
		l.in.SpanObserve(lockcore.ROLLWriteWait, p.id, w0)
		return
	}
	// Reader-node predecessor. First wait out the enqueue/Open window
	// (node recycling: the C-SNZI is closed until the enqueuer opens it).
	p.pi.BeginAt(t0, lockcore.PhaseDrainWait)
	lockcore.WaitCond(l.in.Wait, p.id, p.pi.TR, func() bool {
		_, open := oldTail.ind.Query()
		return open
	})
	// ROLL's key difference from FOLL: do NOT close the group's C-SNZI
	// yet. While the group is still waiting (spin set), readers arriving
	// later must be able to join it — that is the reader preference. We
	// close only once the group is activated, after which no waiting
	// reader targets it (the backward search joins only spin==true
	// nodes).
	oldTail.flag.Wait(l.in.Wait, p.id, p.pi.TR)
	closedEmpty := oldTail.ind.Close()
	p.pi.Emit(lockcore.KindIndClose, 0, 0)
	if closedEmpty {
		// Group already drained: no reader will signal us; the grant we
		// just observed (spin false) is ours to take over.
		w.qPrev.Store(nil) // we are the head now
		oldTail.qNext.Store(nil)
		freeReaderNode(oldTail)
		l.in.Inc(lockcore.ROLLNodeRecycle, p.id)
		p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteRoot)
		p.pi.ProfAcquired(pt, true)
		l.in.SpanObserve(lockcore.ROLLWriteWait, p.id, w0)
		return
	}
	w.flag.Wait(l.in.Wait, p.id, p.pi.TR)
	p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteDirect)
	p.pi.ProfAcquired(pt, true)
	l.in.SpanObserve(lockcore.ROLLWriteWait, p.id, w0)
}

// Unlock releases a write acquisition.
func (p *Proc) Unlock() {
	l := p.l
	w := p.wNode
	if w.qNext.Load() == nil {
		if l.tail.CompareAndSwap(w, nil) {
			p.pi.Released(lockcore.KindWriteReleased)
			p.pi.ProfReleased()
			return
		}
		lockcore.WaitCond(l.in.Wait, p.id, p.pi.TR, func() bool { return w.qNext.Load() != nil })
	}
	succ := w.qNext.Load()
	succ.qPrev.Store(nil)
	succ.flag.Clear(l.in.Wait)
	w.qNext.Store(nil)
	p.pi.Emit(lockcore.KindHandoff, 0, lockcore.PackHandoff(1, succ.kind == kindWriter))
	p.pi.Released(lockcore.KindWriteReleased)
	p.pi.ProfReleased()
}

// MaxProcs returns the ring size (diagnostic).
func (l *RWLock) MaxProcs() int { return len(l.ring) }

// DumpLockState renders the live queue for the trace watchdog: the
// lastReader hint, then the backward chain from the tail (bounded like
// the overtaking search). All fields read are atomics, so the racy walk
// is safe, merely advisory.
func (l *RWLock) DumpLockState(w io.Writer) {
	if h := l.lastReader.Load(); h != nil {
		fmt.Fprintf(w, "roll: lastReader hint: %s\n", l.describeNode(h))
	} else {
		fmt.Fprintf(w, "roll: lastReader hint: unset\n")
	}
	tail := l.tail.Load()
	if tail == nil {
		fmt.Fprintf(w, "roll: queue empty (lock free)\n")
		return
	}
	cur := tail
	for steps := 0; cur != nil && steps < searchLimit; steps++ {
		pos := "tail"
		if steps > 0 {
			pos = fmt.Sprintf("tail-%d", steps)
		}
		fmt.Fprintf(w, "roll: queue node %s: %s\n", pos, l.describeNode(cur))
		cur = cur.qPrev.Load()
	}
}

func (l *RWLock) describeNode(n *Node) string {
	if n.kind == kindWriter {
		return fmt.Sprintf("writer spin=%v", n.flag.Blocked())
	}
	return fmt.Sprintf("reader spin=%v ind=%s", n.flag.Blocked(), rind.Describe(n.ind))
}

// HintSet reports whether the lastReader hint is populated (diagnostic,
// used by the hint ablation tests).
func (l *RWLock) HintSet() bool { return l.lastReader.Load() != nil }
