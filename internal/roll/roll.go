// Package roll implements the ROLL lock — the reader-preference
// distributed-queue OLL reader-writer lock of §4.3 of "Scalable
// Reader-Writer Locks".
//
// ROLL is the FOLL lock with the wait queue converted into a doubly
// linked list: a reader that finds a writer at the tail walks backward
// looking for a reader node whose group is still waiting (spin flag
// true), and joins it — overtaking the intervening writers — instead of
// enqueuing a new node at the tail. Because all readers follow this
// procedure, at most one such waiting reader node exists at a time, so
// under a steady trickle of writers all readers coalesce onto one node
// rather than fragmenting into one group per writer. A lock-level
// lastReader hint caches the most recently joined waiting node to skip
// the backward search (§4.3's optimization).
//
// Joins are validated by the node's C-SNZI, not by queue position: a
// node's C-SNZI is open only while the node is enqueued, so a successful
// Arrive proves membership even if the backward walk raced with node
// recycling; a failed Arrive simply falls back to enqueuing a new node
// (FOLL behaviour).
//
// One consequence the paper leaves implicit: a ROLL writer enqueuing
// behind a reader node must NOT close the node's C-SNZI at enqueue time
// (as a FOLL writer does) — that would make every waiting group
// unjoinable the moment a writer queued behind it, defeating the
// overtaking entirely. Instead the writer defers the close until the
// group is activated (its spin flag clears), the point after which no
// searching reader targets the node anyway.
package roll

import (
	"runtime"
	"sync/atomic"

	"ollock/internal/atomicx"
	"ollock/internal/obs"
	"ollock/internal/rind"
)

// Node kinds.
const (
	kindReader uint32 = iota
	kindWriter
)

// Node allocation states (reader nodes only).
const (
	allocFree uint32 = iota
	allocInUse
)

// searchLimit bounds the backward walk. Stale prev pointers through
// recycled nodes can mislead the walk; bounding it keeps the fallback
// (enqueue a fresh node, i.e. FOLL behaviour) prompt.
const searchLimit = 256

// Node is a queue node with both forward (qNext) and backward (qPrev)
// links.
type Node struct {
	kind  uint32 // immutable
	qNext atomicx.PaddedPointer[Node]
	qPrev atomicx.PaddedPointer[Node]
	spin  atomicx.PaddedBool
	// Reader-node-only fields.
	ind        rind.Indicator // closed whenever the node is not enqueued
	allocState atomic.Uint32
	ringNext   *Node
}

// RWLock is a ROLL reader-writer lock for up to a fixed number of
// participating goroutines. Use New, then one Proc per goroutine.
type RWLock struct {
	tail       atomicx.PaddedPointer[Node]
	lastReader atomicx.PaddedPointer[Node] // hint: last known waiting reader node
	ring       []Node
	procs      atomic.Int64
	factory    rind.Factory
	// stats is the optional instrumentation block (nil = off), shared
	// with every ring node's indicator.
	stats *obs.Stats
}

// Proc is a per-goroutine handle (one outstanding acquisition at a
// time).
type Proc struct {
	l          *RWLock
	id         int
	rNode      *Node
	wNode      *Node
	departFrom *Node
	ticket     rind.Ticket
	// lc is the proc's buffered counter view (nil when the lock is
	// uninstrumented); the read hot path counts through it so the
	// shared stats cells are touched only once per obs.FlushEvery
	// events.
	lc *obs.Local
}

// Option configures the lock.
type Option func(*RWLock)

// WithStats attaches an instrumentation block (see internal/obs). The
// lock counts group joins, new-node enqueues, overtakes and lastReader
// hint hits/misses under roll.*, and shares the block with every ring
// node's C-SNZI (csnzi.* counters).
func WithStats(s *obs.Stats) Option { return func(l *RWLock) { l.stats = s } }

// WithIndicator substitutes a read-indicator factory (see
// internal/rind) for the per-node C-SNZIs; every ring-pool node gets
// its own indicator of the chosen kind.
func WithIndicator(f rind.Factory) Option { return func(l *RWLock) { l.factory = f } }

// New returns a ROLL lock sized for maxProcs participating goroutines.
func New(maxProcs int, opts ...Option) *RWLock {
	if maxProcs <= 0 {
		panic("roll: maxProcs must be positive")
	}
	l := &RWLock{ring: make([]Node, maxProcs)}
	for _, o := range opts {
		o(l)
	}
	if l.factory == nil {
		l.factory = rind.CSNZIFactory()
	}
	for i := range l.ring {
		n := &l.ring[i]
		n.kind = kindReader
		n.ringNext = &l.ring[(i+1)%maxProcs]
		n.ind = rind.Instrument(l.factory(), l.stats)
		n.ind.CloseIfEmpty() // not enqueued => closed
	}
	return l
}

// NewProc registers a goroutine with the lock; panics beyond maxProcs.
func (l *RWLock) NewProc() *Proc {
	id := int(l.procs.Add(1)) - 1
	if id >= len(l.ring) {
		panic("roll: more procs than maxProcs")
	}
	return &Proc{
		l:     l,
		id:    id,
		rNode: &l.ring[id],
		wNode: &Node{kind: kindWriter},
		lc:    l.stats.NewLocal(id),
	}
}

func (p *Proc) allocReaderNode() *Node {
	cur := p.rNode
	for {
		if cur.allocState.Load() == allocFree &&
			cur.allocState.CompareAndSwap(allocFree, allocInUse) {
			return cur
		}
		cur = cur.ringNext
		if cur == p.rNode {
			runtime.Gosched()
		}
	}
}

func freeReaderNode(n *Node) {
	n.allocState.Store(allocFree)
}

// tryJoinWaiting attempts to join the waiting reader group at n. It
// succeeds only if n's group is still waiting (spin set) and its C-SNZI
// is open (n is enqueued). On success the caller holds the lock once the
// group's spin flag clears.
func (p *Proc) tryJoinWaiting(n *Node) bool {
	if n.kind != kindReader || !n.spin.Load() {
		return false
	}
	t := n.ind.ArriveLocal(p.id, p.lc)
	if !t.Arrived() {
		return false
	}
	p.lc.Inc(obs.ROLLOvertake)
	// Refresh the hint only when it actually changes: with one waiting
	// group at a time, an unconditional store would make the hint word a
	// globally contended line written by every joining reader.
	if p.l.lastReader.Load() != n {
		p.l.lastReader.Store(n)
	}
	p.departFrom = n
	p.ticket = t
	atomicx.SpinUntil(func() bool { return !n.spin.Load() })
	return true
}

// RLock acquires the lock for reading, preferring to join an existing
// waiting reader group over enqueuing behind writers.
func (p *Proc) RLock() {
	l := p.l
	var rNode *Node
	defer func() {
		if rNode != nil {
			freeReaderNode(rNode) // allocated but never enqueued
		}
	}()
	for {
		// Fast path: the hint points at the last known waiting group.
		if h := l.lastReader.Load(); h != nil {
			if p.tryJoinWaiting(h) {
				p.lc.Inc(obs.ROLLHintHit)
				return
			}
			p.lc.Inc(obs.ROLLHintMiss)
			l.lastReader.CompareAndSwap(h, nil)
		}
		tail := l.tail.Load()
		switch {
		case tail == nil:
			if rNode == nil {
				rNode = p.allocReaderNode()
			}
			rNode.spin.Store(false)
			rNode.qNext.Store(nil)
			rNode.qPrev.Store(nil)
			if !l.tail.CompareAndSwap(nil, rNode) {
				continue
			}
			p.lc.Inc(obs.ROLLReadEnqueue)
			rNode.ind.Open()
			t := rNode.ind.ArriveLocal(p.id, p.lc)
			if t.Arrived() {
				p.departFrom = rNode
				p.ticket = t
				rNode = nil
				return
			}
			rNode = nil // in queue; the closing writer recycles it

		case tail.kind == kindReader:
			// Tail is a reader node: join it directly (same as FOLL).
			t := tail.ind.ArriveLocal(p.id, p.lc)
			if t.Arrived() {
				p.lc.Inc(obs.ROLLReadJoin)
				p.departFrom = tail
				p.ticket = t
				if tail.spin.Load() && l.lastReader.Load() != tail {
					l.lastReader.Store(tail)
				}
				atomicx.SpinUntil(func() bool { return !tail.spin.Load() })
				return
			}
			// Closed: tail changed; retry.

		default:
			// Tail is a writer: search backward for a waiting reader
			// group to overtake into.
			cur := tail.qPrev.Load()
			for steps := 0; cur != nil && steps < searchLimit; steps++ {
				if cur.kind == kindReader {
					if p.tryJoinWaiting(cur) {
						return
					}
					break // reader node found but not joinable
				}
				cur = cur.qPrev.Load()
			}
			// No joinable group: enqueue a fresh waiting reader node at
			// the tail (FOLL behaviour), which becomes the new group.
			if rNode == nil {
				rNode = p.allocReaderNode()
			}
			rNode.spin.Store(true)
			rNode.qNext.Store(nil)
			rNode.qPrev.Store(tail)
			if !l.tail.CompareAndSwap(tail, rNode) {
				continue
			}
			p.lc.Inc(obs.ROLLReadEnqueue)
			tail.qNext.Store(rNode)
			rNode.ind.Open()
			t := rNode.ind.ArriveLocal(p.id, p.lc)
			if t.Arrived() {
				p.departFrom = rNode
				p.ticket = t
				l.lastReader.Store(rNode)
				node := rNode
				rNode = nil
				atomicx.SpinUntil(func() bool { return !node.spin.Load() })
				return
			}
			rNode = nil
		}
	}
}

// RUnlock releases a read acquisition, signalling the closing writer if
// this thread departed last and recycling the group's node.
func (p *Proc) RUnlock() {
	n := p.departFrom
	if n.ind.Depart(p.ticket) {
		return
	}
	succ := n.qNext.Load()
	succ.qPrev.Store(nil) // succ becomes head
	succ.spin.Store(false)
	n.qNext.Store(nil)
	freeReaderNode(n)
	p.lc.Inc(obs.ROLLNodeRecycle)
}

// Lock acquires the lock for writing.
func (p *Proc) Lock() {
	l := p.l
	w := p.wNode
	w.qNext.Store(nil)
	oldTail := l.tail.Swap(w)
	w.qPrev.Store(oldTail)
	if oldTail == nil {
		return
	}
	w.spin.Store(true)
	oldTail.qNext.Store(w)
	if oldTail.kind == kindWriter {
		atomicx.SpinUntil(func() bool { return !w.spin.Load() })
		return
	}
	// Reader-node predecessor. First wait out the enqueue/Open window
	// (node recycling: the C-SNZI is closed until the enqueuer opens it).
	atomicx.SpinUntil(func() bool {
		_, open := oldTail.ind.Query()
		return open
	})
	// ROLL's key difference from FOLL: do NOT close the group's C-SNZI
	// yet. While the group is still waiting (spin set), readers arriving
	// later must be able to join it — that is the reader preference. We
	// close only once the group is activated, after which no waiting
	// reader targets it (the backward search joins only spin==true
	// nodes).
	atomicx.SpinUntil(func() bool { return !oldTail.spin.Load() })
	if oldTail.ind.Close() {
		// Group already drained: no reader will signal us; the grant we
		// just observed (spin false) is ours to take over.
		w.qPrev.Store(nil) // we are the head now
		oldTail.qNext.Store(nil)
		freeReaderNode(oldTail)
		l.stats.Inc(obs.ROLLNodeRecycle, p.id)
		return
	}
	atomicx.SpinUntil(func() bool { return !w.spin.Load() })
}

// Unlock releases a write acquisition.
func (p *Proc) Unlock() {
	l := p.l
	w := p.wNode
	if w.qNext.Load() == nil {
		if l.tail.CompareAndSwap(w, nil) {
			return
		}
		atomicx.SpinUntil(func() bool { return w.qNext.Load() != nil })
	}
	succ := w.qNext.Load()
	succ.qPrev.Store(nil)
	succ.spin.Store(false)
	w.qNext.Store(nil)
}

// MaxProcs returns the ring size (diagnostic).
func (l *RWLock) MaxProcs() int { return len(l.ring) }

// HintSet reports whether the lastReader hint is populated (diagnostic,
// used by the hint ablation tests).
func (l *RWLock) HintSet() bool { return l.lastReader.Load() != nil }
