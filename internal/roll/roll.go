// Package roll implements the ROLL lock — the reader-preference
// distributed-queue OLL reader-writer lock of §4.3 of "Scalable
// Reader-Writer Locks".
//
// ROLL is the FOLL lock with the wait queue converted into a doubly
// linked list: a reader that finds a writer at the tail walks backward
// looking for a reader node whose group is still waiting (spin flag
// true), and joins it — overtaking the intervening writers — instead of
// enqueuing a new node at the tail. Because all readers follow this
// procedure, at most one such waiting reader node exists at a time, so
// under a steady trickle of writers all readers coalesce onto one node
// rather than fragmenting into one group per writer. A lock-level
// lastReader hint caches the most recently joined waiting node to skip
// the backward search (§4.3's optimization).
//
// Joins are validated by the node's C-SNZI, not by queue position: a
// node's C-SNZI is open only while the node is enqueued, so a successful
// Arrive proves membership even if the backward walk raced with node
// recycling; a failed Arrive simply falls back to enqueuing a new node
// (FOLL behaviour).
//
// One consequence the paper leaves implicit: a ROLL writer enqueuing
// behind a reader node must NOT close the node's C-SNZI at enqueue time
// (as a FOLL writer does) — that would make every waiting group
// unjoinable the moment a writer queued behind it, defeating the
// overtaking entirely. Instead the writer defers the close until the
// group is activated (its spin flag clears), the point after which no
// searching reader targets the node anyway.
package roll

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"

	"ollock/internal/atomicx"
	"ollock/internal/lockcore"
	"ollock/internal/rind"
)

// Node kinds.
const (
	kindReader uint32 = iota
	kindWriter
)

// Node allocation states (reader nodes only).
const (
	allocFree uint32 = iota
	allocInUse
)

// Node grant states — the one-word hand-off/abandonment race, identical
// to the FOLL protocol: granters CAS gLive→gGranted before clearing the
// flag, canceling writers CAS gLive→gAbandoned and walk away, and the
// loser of the word defers to the winner (see grant). Reader nodes are
// reset to gLive at every enqueue but never abandoned; canceling
// readers leave through Depart accounting.
const (
	gLive uint32 = iota
	gGranted
	gAbandoned
)

// searchLimit bounds the backward walk. Stale prev pointers through
// recycled nodes can mislead the walk; bounding it keeps the fallback
// (enqueue a fresh node, i.e. FOLL behaviour) prompt.
const searchLimit = 256

// Node is a queue node with both forward (qNext) and backward (qPrev)
// links.
type Node struct {
	kind  uint32 // immutable
	qNext atomicx.PaddedPointer[Node]
	qPrev atomicx.PaddedPointer[Node]
	// flag is the node's grant flag ("spin" in the paper), policy-aware
	// so blocked threads can yield or park; see internal/park via
	// lockcore. Its Blocked bit doubles as the "group still waiting"
	// join condition.
	flag lockcore.Flag
	// gstate is the grant/abandon race word (see the g* constants).
	gstate atomic.Uint32
	// Reader-node-only fields.
	ind        rind.Indicator // closed whenever the node is not enqueued
	allocState atomic.Uint32
	ringNext   *Node
}

// RWLock is a ROLL reader-writer lock for up to a fixed number of
// participating goroutines. Use New, then one Proc per goroutine.
type RWLock struct {
	tail       atomicx.PaddedPointer[Node]
	lastReader atomicx.PaddedPointer[Node] // hint: last known waiting reader node
	ring       []Node
	procs      atomic.Int64
	factory    rind.Factory
	// in is the instrumentation bundle (zero = all off): the stats
	// block is shared with every ring node's indicator, and the wait
	// policy routes every blocking site.
	in lockcore.Instr
}

// Proc is a per-goroutine handle (one outstanding acquisition at a
// time).
type Proc struct {
	l          *RWLock
	id         int
	rNode      *Node
	wNode      *Node
	departFrom *Node
	ticket     rind.Ticket
	// pi is the proc's instrumentation view (buffered counters +
	// flight-recorder ring); one predictable branch per site when off.
	pi lockcore.ProcInstr
}

// Option configures the lock.
type Option func(*RWLock)

// WithIndicator substitutes a read-indicator factory (see
// internal/rind) for the per-node C-SNZIs; every ring-pool node gets
// its own indicator of the chosen kind.
func WithIndicator(f rind.Factory) Option { return func(l *RWLock) { l.factory = f } }

// WithInstr attaches the instrumentation bundle (see internal/lockcore):
// the stats block (roll.* join/overtake/hint counters, shared with
// every ring node's csnzi.* counters), the flight-recorder handle
// (queue/overtake/hint lifecycle events), and the wait policy that
// makes node grant flags parking-capable. The zero bundle (the default)
// spins exactly as the paper does, uninstrumented.
func WithInstr(in lockcore.Instr) Option { return func(l *RWLock) { l.in = in } }

// New returns a ROLL lock sized for maxProcs participating goroutines.
func New(maxProcs int, opts ...Option) *RWLock {
	if maxProcs <= 0 {
		panic("roll: maxProcs must be positive")
	}
	l := &RWLock{ring: make([]Node, maxProcs)}
	for _, o := range opts {
		o(l)
	}
	if l.factory == nil {
		l.factory = rind.CSNZIFactory()
	}
	for i := range l.ring {
		n := &l.ring[i]
		n.kind = kindReader
		n.ringNext = &l.ring[(i+1)%maxProcs]
		n.ind = rind.Instrument(l.factory(), l.in.Stats)
		n.ind.CloseIfEmpty() // not enqueued => closed
	}
	l.in.AddDumper(l)
	return l
}

// NewProc registers a goroutine with the lock; panics beyond maxProcs.
func (l *RWLock) NewProc() *Proc {
	id := int(l.procs.Add(1)) - 1
	if id >= len(l.ring) {
		panic("roll: more procs than maxProcs")
	}
	return &Proc{
		l:     l,
		id:    id,
		rNode: &l.ring[id],
		wNode: &Node{kind: kindWriter},
		pi:    l.in.NewProc(id),
	}
}

func (p *Proc) allocReaderNode() *Node {
	cur := p.rNode
	for {
		if cur.allocState.Load() == allocFree &&
			cur.allocState.CompareAndSwap(allocFree, allocInUse) {
			return cur
		}
		cur = cur.ringNext
		if cur == p.rNode {
			runtime.Gosched()
		}
	}
}

func freeReaderNode(n *Node) {
	n.allocState.Store(allocFree)
}

// grant hands the lock to n, skipping nodes whose writers abandoned
// their acquisition (the FOLL grant protocol plus ROLL's backward
// link: the node actually granted becomes the queue head, so its qPrev
// is cleared before its flag). Skipped writer nodes are garbage — their
// procs already replaced them; reader nodes are never abandoned, so
// for them the CAS always succeeds.
func (l *RWLock) grant(n *Node, id int, tr *lockcore.TraceLocal) {
	for {
		if n.gstate.CompareAndSwap(gLive, gGranted) {
			n.qPrev.Store(nil) // n becomes head
			n.flag.Clear(l.in.Wait)
			return
		}
		succ := n.qNext.Load()
		if succ == nil {
			if l.tail.CompareAndSwap(n, nil) {
				return // abandoned tail: the queue is now empty
			}
			lockcore.WaitCond(l.in.Wait, id, tr, func() bool { return n.qNext.Load() != nil })
			succ = n.qNext.Load()
		}
		n.qNext.Store(nil)
		n = succ
	}
}

// Join attempt outcomes (tryJoinWaiting).
const (
	joinNo       = iota // node not joinable; keep looking
	joinAcquired        // joined and acquired
	joinCanceled        // joined, then the deadline expired
)

// tryJoinWaiting attempts to join the waiting reader group at n. It
// joins only if n's group is still waiting (spin set) and its C-SNZI
// is open (n is enqueued); the caller holds the lock once the group's
// spin flag clears, unless the deadline expires first.
func (p *Proc) tryJoinWaiting(n *Node, t0, pt int64, dl lockcore.Deadline) int {
	if n.kind != kindReader || !n.flag.Blocked() {
		return joinNo
	}
	t := n.ind.ArriveLocal(p.id, p.pi.LC)
	if !t.Arrived() {
		return joinNo
	}
	p.pi.Inc(lockcore.ROLLOvertake)
	p.pi.Emit(lockcore.KindOvertake, 0, 0)
	// Refresh the hint only when it actually changes: with one waiting
	// group at a time, an unconditional store would make the hint word a
	// globally contended line written by every joining reader.
	if p.l.lastReader.Load() != n {
		p.l.lastReader.Store(n)
	}
	if p.pi.Tracing() && n.flag.Blocked() {
		p.pi.Begin(lockcore.PhaseSpinWait)
	}
	if !n.flag.WaitUntil(p.l.in.Wait, p.id, p.pi.TR, dl) {
		p.departAbandoned(n, t)
		p.abandon(lockcore.PhaseSpinWait, dl)
		return joinCanceled
	}
	p.departFrom = n
	p.ticket = t
	p.pi.Acquired(lockcore.KindReadAcquired, t0, lockcore.RouteJoin)
	p.pi.ProfAcquired(pt, true)
	return joinAcquired
}

// RLock acquires the lock for reading, preferring to join an existing
// waiting reader group over enqueuing behind writers.
func (p *Proc) RLock() { p.rlock(lockcore.Deadline{}) }

// rlock is the read-acquisition core, shared by RLock (zero deadline,
// which never expires) and the timed variants in deadline.go. It
// reports whether the lock was acquired.
func (p *Proc) rlock(dl lockcore.Deadline) bool {
	l := p.l
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	slow := false
	var rNode *Node
	defer func() {
		if rNode != nil {
			freeReaderNode(rNode) // allocated but never enqueued
		}
	}()
	for {
		if !dl.None() && dl.Expired() {
			// Not enqueued and holding no arrival: just walk away
			// (the defer returns any unenqueued node).
			p.abandon(0, dl)
			return false
		}
		// Fast path: the hint points at the last known waiting group.
		if h := l.lastReader.Load(); h != nil {
			switch p.tryJoinWaiting(h, t0, pt, dl) {
			case joinAcquired:
				p.pi.Inc(lockcore.ROLLHintHit)
				p.pi.Emit(lockcore.KindHintHit, 0, 0)
				return true
			case joinCanceled:
				return false
			}
			p.pi.Inc(lockcore.ROLLHintMiss)
			p.pi.Emit(lockcore.KindHintMiss, 0, 0)
			l.lastReader.CompareAndSwap(h, nil)
		}
		tail := l.tail.Load()
		switch {
		case tail == nil:
			if rNode == nil {
				rNode = p.allocReaderNode()
			}
			rNode.flag.Set(false)
			rNode.gstate.Store(gLive)
			rNode.qNext.Store(nil)
			rNode.qPrev.Store(nil)
			if !l.tail.CompareAndSwap(nil, rNode) {
				slow = true
				continue
			}
			p.pi.Inc(lockcore.ROLLReadEnqueue)
			p.pi.Emit(lockcore.KindGroupEnqueue, 0, 0)
			rNode.ind.Open()
			t := rNode.ind.ArriveLocal(p.id, p.pi.LC)
			if t.Arrived() {
				p.departFrom = rNode
				p.ticket = t
				rNode = nil
				p.pi.Acquired(lockcore.KindReadAcquired, t0, t.TraceRoute())
				p.pi.ProfAcquired(pt, slow)
				return true
			}
			p.pi.Emit(lockcore.KindArriveFail, 0, 0)
			slow = true
			rNode = nil // in queue; the closing writer recycles it

		case tail.kind == kindReader:
			// Tail is a reader node: join it directly (same as FOLL).
			t := tail.ind.ArriveLocal(p.id, p.pi.LC)
			if t.Arrived() {
				p.pi.Inc(lockcore.ROLLReadJoin)
				blocked := tail.flag.Blocked()
				if blocked && l.lastReader.Load() != tail {
					l.lastReader.Store(tail)
				}
				if p.pi.Tracing() && blocked {
					p.pi.Begin(lockcore.PhaseSpinWait)
				}
				if !tail.flag.WaitUntil(l.in.Wait, p.id, p.pi.TR, dl) {
					p.departAbandoned(tail, t)
					p.abandon(lockcore.PhaseSpinWait, dl)
					return false
				}
				p.departFrom = tail
				p.ticket = t
				p.pi.Acquired(lockcore.KindReadAcquired, t0, lockcore.RouteJoin)
				p.pi.ProfAcquired(pt, slow || blocked)
				return true
			}
			// Closed: tail changed; retry.
			p.pi.Emit(lockcore.KindArriveFail, 0, 0)
			slow = true

		default:
			// Tail is a writer: search backward for a waiting reader
			// group to overtake into.
			cur := tail.qPrev.Load()
			for steps := 0; cur != nil && steps < searchLimit; steps++ {
				if cur.kind == kindReader {
					if st := p.tryJoinWaiting(cur, t0, pt, dl); st != joinNo {
						return st == joinAcquired
					}
					break // reader node found but not joinable
				}
				cur = cur.qPrev.Load()
			}
			// No joinable group: enqueue a fresh waiting reader node at
			// the tail (FOLL behaviour), which becomes the new group.
			if rNode == nil {
				rNode = p.allocReaderNode()
			}
			rNode.flag.Set(true)
			rNode.gstate.Store(gLive)
			rNode.qNext.Store(nil)
			rNode.qPrev.Store(tail)
			if !l.tail.CompareAndSwap(tail, rNode) {
				slow = true
				continue
			}
			p.pi.Inc(lockcore.ROLLReadEnqueue)
			p.pi.Emit(lockcore.KindGroupEnqueue, 0, 1)
			tail.qNext.Store(rNode)
			rNode.ind.Open()
			t := rNode.ind.ArriveLocal(p.id, p.pi.LC)
			if t.Arrived() {
				l.lastReader.Store(rNode)
				node := rNode
				rNode = nil
				if p.pi.Tracing() && node.flag.Blocked() {
					p.pi.Begin(lockcore.PhaseSpinWait)
				}
				if !node.flag.WaitUntil(l.in.Wait, p.id, p.pi.TR, dl) {
					p.departAbandoned(node, t)
					p.abandon(lockcore.PhaseSpinWait, dl)
					return false
				}
				p.departFrom = node
				p.ticket = t
				p.pi.Acquired(lockcore.KindReadAcquired, t0, t.TraceRoute())
				p.pi.ProfAcquired(pt, true)
				return true
			}
			p.pi.Emit(lockcore.KindArriveFail, 0, 0)
			slow = true
			rNode = nil
		}
	}
}

// RUnlock releases a read acquisition, signalling the closing writer if
// this thread departed last and recycling the group's node.
func (p *Proc) RUnlock() {
	n := p.departFrom
	if n.ind.Depart(p.ticket) {
		p.pi.Released(lockcore.KindReadReleased)
		p.pi.ProfReleased()
		return
	}
	p.pi.Emit(lockcore.KindIndDrain, 0, 0)
	succ := n.qNext.Load()
	p.l.grant(succ, p.id, p.pi.TR)
	n.qNext.Store(nil)
	freeReaderNode(n)
	p.pi.Inc(lockcore.ROLLNodeRecycle)
	p.pi.Emit(lockcore.KindHandoff, 0, lockcore.PackHandoff(1, succ.kind == kindWriter))
	p.pi.Released(lockcore.KindReadReleased)
	p.pi.ProfReleased()
}

// Lock acquires the lock for writing.
func (p *Proc) Lock() { p.lock(lockcore.Deadline{}) }

// lock is the write-acquisition core, shared by Lock (zero deadline)
// and the timed variants in deadline.go. It reports whether the lock
// was acquired.
func (p *Proc) lock(dl lockcore.Deadline) bool {
	l := p.l
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	w0 := l.in.SpanStart()
	w := p.wNode
	w.qNext.Store(nil)
	w.gstate.Store(gLive)
	oldTail := l.tail.Swap(w)
	w.qPrev.Store(oldTail)
	if oldTail == nil {
		p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteRoot)
		p.pi.ProfAcquired(pt, false)
		l.in.SpanObserve(lockcore.ROLLWriteWait, p.id, w0)
		return true
	}
	w.flag.Set(true)
	oldTail.qNext.Store(w)
	p.pi.Emit(lockcore.KindQueueEnqueue, 0, 1)
	if oldTail.kind == kindWriter {
		p.pi.BeginAt(t0, lockcore.PhaseQueueWait)
		if !w.flag.WaitUntil(l.in.Wait, p.id, p.pi.TR, dl) {
			return p.cancelWriteWait(dl, t0, pt, lockcore.PhaseQueueWait)
		}
		p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteDirect)
		p.pi.ProfAcquired(pt, true)
		l.in.SpanObserve(lockcore.ROLLWriteWait, p.id, w0)
		return true
	}
	// Reader-node predecessor. First wait out the enqueue/Open window
	// (node recycling: the C-SNZI is closed until the enqueuer opens it).
	// Deliberately unbounded even on timed paths — the enqueuer opens
	// the indicator within a few instructions of the enqueue.
	p.pi.BeginAt(t0, lockcore.PhaseDrainWait)
	lockcore.WaitCond(l.in.Wait, p.id, p.pi.TR, func() bool {
		_, open := oldTail.ind.Query()
		return open
	})
	// ROLL's key difference from FOLL: do NOT close the group's C-SNZI
	// yet. While the group is still waiting (spin set), readers arriving
	// later must be able to join it — that is the reader preference. We
	// close only once the group is activated, after which no waiting
	// reader targets it (the backward search joins only spin==true
	// nodes).
	if !oldTail.flag.WaitUntil(l.in.Wait, p.id, p.pi.TR, dl) {
		// Duty-phase abandonment: nobody else will ever close this
		// group's indicator (the deferred close belongs to this queue
		// position), so the duty cannot be dropped — detach it onto a
		// reaper that finishes the protocol verbatim and releases.
		p.wNode = &Node{kind: kindWriter}
		go l.reapWriterDrain(w, oldTail, p.id)
		p.abandon(lockcore.PhaseDrainWait, dl)
		return false
	}
	closedEmpty := oldTail.ind.Close()
	p.pi.Emit(lockcore.KindIndClose, 0, 0)
	if closedEmpty {
		// Group already drained: no reader will signal us; the grant we
		// just observed (spin false) is ours to take over.
		w.qPrev.Store(nil) // we are the head now
		oldTail.qNext.Store(nil)
		freeReaderNode(oldTail)
		l.in.Inc(lockcore.ROLLNodeRecycle, p.id)
		p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteRoot)
		p.pi.ProfAcquired(pt, true)
		l.in.SpanObserve(lockcore.ROLLWriteWait, p.id, w0)
		return true
	}
	if !w.flag.WaitUntil(l.in.Wait, p.id, p.pi.TR, dl) {
		return p.cancelWriteWait(dl, t0, pt, lockcore.PhaseDrainWait)
	}
	p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteDirect)
	p.pi.ProfAcquired(pt, true)
	l.in.SpanObserve(lockcore.ROLLWriteWait, p.id, w0)
	return true
}

// Unlock releases a write acquisition.
func (p *Proc) Unlock() {
	l := p.l
	w := p.wNode
	if w.qNext.Load() == nil {
		if l.tail.CompareAndSwap(w, nil) {
			p.pi.Released(lockcore.KindWriteReleased)
			p.pi.ProfReleased()
			return
		}
		lockcore.WaitCond(l.in.Wait, p.id, p.pi.TR, func() bool { return w.qNext.Load() != nil })
	}
	succ := w.qNext.Load()
	l.grant(succ, p.id, p.pi.TR)
	w.qNext.Store(nil)
	p.pi.Emit(lockcore.KindHandoff, 0, lockcore.PackHandoff(1, succ.kind == kindWriter))
	p.pi.Released(lockcore.KindWriteReleased)
	p.pi.ProfReleased()
}

// unlockNode is the release protocol on an explicit node, for reapers
// releasing an acquisition whose proc already walked away (the proc's
// wNode was replaced, so p.Unlock no longer reaches the queued node).
func (l *RWLock) unlockNode(w *Node, id int, tr *lockcore.TraceLocal) {
	if w.qNext.Load() == nil {
		if l.tail.CompareAndSwap(w, nil) {
			return
		}
		lockcore.WaitCond(l.in.Wait, id, tr, func() bool { return w.qNext.Load() != nil })
	}
	succ := w.qNext.Load()
	l.grant(succ, id, tr)
	w.qNext.Store(nil)
}

// MaxProcs returns the ring size (diagnostic).
func (l *RWLock) MaxProcs() int { return len(l.ring) }

// DumpLockState renders the live queue for the trace watchdog: the
// lastReader hint, then the backward chain from the tail (bounded like
// the overtaking search). All fields read are atomics, so the racy walk
// is safe, merely advisory.
func (l *RWLock) DumpLockState(w io.Writer) {
	if h := l.lastReader.Load(); h != nil {
		fmt.Fprintf(w, "roll: lastReader hint: %s\n", l.describeNode(h))
	} else {
		fmt.Fprintf(w, "roll: lastReader hint: unset\n")
	}
	tail := l.tail.Load()
	if tail == nil {
		fmt.Fprintf(w, "roll: queue empty (lock free)\n")
		return
	}
	cur := tail
	for steps := 0; cur != nil && steps < searchLimit; steps++ {
		pos := "tail"
		if steps > 0 {
			pos = fmt.Sprintf("tail-%d", steps)
		}
		fmt.Fprintf(w, "roll: queue node %s: %s\n", pos, l.describeNode(cur))
		cur = cur.qPrev.Load()
	}
}

func (l *RWLock) describeNode(n *Node) string {
	if n.kind == kindWriter {
		return fmt.Sprintf("writer spin=%v", n.flag.Blocked())
	}
	return fmt.Sprintf("reader spin=%v ind=%s", n.flag.Blocked(), rind.Describe(n.ind))
}

// HintSet reports whether the lastReader hint is populated (diagnostic,
// used by the hint ablation tests).
func (l *RWLock) HintSet() bool { return l.lastReader.Load() != nil }
