package roll

import (
	"context"
	"sync"
	"testing"
	"time"

	"ollock/internal/lockcore"
	"ollock/internal/obs"
)

func holdWrite(l *RWLock) func() {
	p := l.NewProc()
	p.Lock()
	return p.Unlock
}

func TestWriteTimeoutBehindWriter(t *testing.T) {
	st := obs.New()
	l := New(4, WithInstr(lockcore.Instr{Stats: st}))
	release := holdWrite(l)
	p := l.NewProc()
	if p.LockFor(20 * time.Millisecond) {
		t.Fatal("LockFor succeeded while lock held")
	}
	if got := st.Count(obs.ROLLTimeout); got != 1 {
		t.Fatalf("roll.timeout = %d, want 1", got)
	}
	release()
	// The abandoned node must be skipped: the lock must still work.
	if !p.LockFor(time.Second) {
		t.Fatal("LockFor failed on free lock")
	}
	p.Unlock()
	if !l.Idle() {
		t.Fatal("queue not empty at quiescence")
	}
}

func TestReadCtxCancelBehindWriter(t *testing.T) {
	st := obs.New()
	l := New(4, WithInstr(lockcore.Instr{Stats: st}))
	release := holdWrite(l)
	p := l.NewProc()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.RLockCtx(ctx); err != context.DeadlineExceeded {
		t.Fatalf("RLockCtx = %v, want context.DeadlineExceeded", err)
	}
	if got := st.Count(obs.ROLLCancel); got != 1 {
		t.Fatalf("roll.cancel = %d, want 1", got)
	}
	release()
	if !p.RLockFor(time.Second) {
		t.Fatal("RLockFor failed on free lock")
	}
	p.RUnlock()
}

// TestWriterDrainTimeoutReaper drives the reapWriterDrain path: a
// writer times out while waiting for its waiting reader predecessor
// group to activate (the pre-close reader-preference wait). The
// detached reaper must still perform the deferred close and pass the
// lock on, and the pool must drain to zero.
func TestWriterDrainTimeoutReaper(t *testing.T) {
	l := New(8)
	release := holdWrite(l)

	// A waiting reader group forms behind the held lock... via a writer
	// predecessor so its spin flag is set: enqueue writer W1 (blocks),
	// then a reader group behind W1.
	w1 := l.NewProc()
	w1done := make(chan struct{})
	go func() {
		w1.Lock()
		w1.Unlock()
		close(w1done)
	}()
	time.Sleep(10 * time.Millisecond)

	var rg sync.WaitGroup
	rAcquired := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			p := l.NewProc()
			p.RLock()
			rAcquired <- struct{}{}
			time.Sleep(30 * time.Millisecond)
			p.RUnlock()
		}()
	}
	time.Sleep(10 * time.Millisecond) // group is waiting behind W1

	// W2 enqueues behind the waiting reader group and times out before
	// the group activates (W1 still blocked behind the held lock).
	w2 := l.NewProc()
	if w2.LockFor(20 * time.Millisecond) {
		t.Fatal("W2 LockFor succeeded while queue blocked")
	}

	release() // W1 runs, then the reader group, then W2's reaper
	<-w1done
	rg.Wait()

	// Everything must drain: the reaper closes the group's indicator,
	// recycles the node, and releases W2's forced acquisition.
	deadline := time.Now().Add(2 * time.Second)
	for l.NodesInUse() != 0 || !l.Idle() {
		if time.Now().After(deadline) {
			t.Fatalf("at quiescence: NodesInUse=%d Idle=%v", l.NodesInUse(), l.Idle())
		}
		time.Sleep(time.Millisecond)
	}
	// And the lock must still work.
	if !w2.LockFor(time.Second) {
		t.Fatal("LockFor failed after reaper drain")
	}
	w2.Unlock()
}

func TestTrySemantics(t *testing.T) {
	l := New(4)
	p1 := l.NewProc()
	p2 := l.NewProc()
	if !p1.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	if p2.TryLock() || p2.TryRLock() {
		t.Fatal("Try succeeded while write-held")
	}
	p1.Unlock()
	if !p1.TryRLock() {
		t.Fatal("TryRLock failed on free lock")
	}
	if !p2.TryRLock() {
		t.Fatal("TryRLock (join) failed on read-held lock")
	}
	if p2.TryLock() {
		t.Fatal("TryLock succeeded while read-held")
	}
	p1.RUnlock()
	p2.RUnlock()
}
