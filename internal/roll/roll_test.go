package roll

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ollock/internal/xrand"
)

func TestProcLimit(t *testing.T) {
	l := New(1)
	l.NewProc()
	defer func() {
		if recover() == nil {
			t.Fatal("exceeding maxProcs did not panic")
		}
	}()
	l.NewProc()
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// TestReaderOvertakesWaitingWriter is THE defining ROLL behaviour: with
// the lock write-held, a reader group waiting, and a second writer
// queued behind the group, a newly arriving reader must join the waiting
// group (overtaking the second writer) and be admitted with the group —
// before the second writer runs.
func TestReaderOvertakesWaitingWriter(t *testing.T) {
	l := New(8)
	holder := l.NewProc()
	holder.Lock() // write-hold the lock

	// First reader queues: creates the waiting group node.
	r1 := l.NewProc()
	r1In := make(chan struct{})
	go func() {
		r1.RLock()
		close(r1In)
		time.Sleep(20 * time.Millisecond) // hold so the late joiner overlaps
		r1.RUnlock()
	}()
	time.Sleep(30 * time.Millisecond)

	// Second writer queues behind the reader group.
	w2 := l.NewProc()
	w2In := make(chan struct{})
	go func() {
		w2.Lock()
		close(w2In)
		w2.Unlock()
	}()
	time.Sleep(30 * time.Millisecond)

	// Late reader: must overtake w2 and join r1's waiting group.
	r2 := l.NewProc()
	r2In := make(chan struct{})
	go func() {
		r2.RLock()
		close(r2In)
		r2.RUnlock()
	}()
	time.Sleep(30 * time.Millisecond)

	select {
	case <-r1In:
		t.Fatal("reader admitted while writer held the lock")
	case <-r2In:
		t.Fatal("late reader admitted while writer held the lock")
	case <-w2In:
		t.Fatal("second writer admitted while first held the lock")
	default:
	}

	holder.Unlock()
	// The reader group (r1 AND r2) must be admitted before w2.
	select {
	case <-r2In:
	case <-time.After(20 * time.Second):
		t.Fatal("late reader was not admitted with the group (no overtake)")
	}
	select {
	case <-w2In:
	case <-time.After(20 * time.Second):
		t.Fatal("second writer never admitted")
	}
}

// TestHintPopulatedOnJoin: joining a waiting group populates the
// lastReader hint; a failed hint join clears it.
func TestHintPopulatedOnJoin(t *testing.T) {
	l := New(8)
	holder := l.NewProc()
	holder.Lock()

	r1 := l.NewProc()
	go func() {
		r1.RLock()
		r1.RUnlock()
	}()
	time.Sleep(30 * time.Millisecond)
	if !l.HintSet() {
		t.Fatal("hint not set after a reader created a waiting group")
	}
	holder.Unlock()
	time.Sleep(30 * time.Millisecond)
}

func TestReadersShareUncontended(t *testing.T) {
	l := New(2)
	p1, p2 := l.NewProc(), l.NewProc()
	p1.RLock()
	done := make(chan struct{})
	go func() {
		p2.RLock()
		close(done)
		p2.RUnlock()
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("readers failed to share")
	}
	p1.RUnlock()
}

// TestWriterReclaimsDrainedGroup: the group drains entirely before the
// writer behind it closes; the writer must reclaim the node and proceed
// on its own.
func TestWriterReclaimsDrainedGroup(t *testing.T) {
	l := New(4)
	rp := l.NewProc()
	wp := l.NewProc()
	rp.RLock()
	rp.RUnlock() // node enqueued, open, surplus 0
	done := make(chan struct{})
	go func() {
		wp.Lock()
		wp.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("writer stuck behind drained reader node")
	}
}

func TestNodePoolQuiescence(t *testing.T) {
	const procs = 4
	l := New(procs)
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := l.NewProc()
			r := xrand.New(uint64(id+1) * 7561)
			for i := 0; i < 3000; i++ {
				if r.Bool(0.7) {
					p.RLock()
					p.RUnlock()
				} else {
					p.Lock()
					p.Unlock()
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stalled (pool exhaustion or lost signal)")
	}
	// At most one node may remain in use: the drained reader node left
	// enqueued at the head (recycled only when a later writer closes it).
	inUse := 0
	for i := range l.ring {
		if l.ring[i].allocState.Load() != allocFree {
			inUse++
			if tail := l.tail.Load(); tail != &l.ring[i] {
				t.Fatalf("in-use ring node %d is not the enqueued tail", i)
			}
		}
	}
	if inUse > 1 {
		t.Fatalf("%d ring nodes in use after quiescence, want <= 1", inUse)
	}
}

func TestMixedInvariantStress(t *testing.T) {
	const procs = 8
	l := New(procs)
	var readers, writers atomic.Int32
	var bad atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := l.NewProc()
			r := xrand.New(uint64(id+1) * 65537)
			for i := 0; i < 2000; i++ {
				if r.Bool(0.85) {
					p.RLock()
					readers.Add(1)
					if writers.Load() != 0 {
						bad.Add(1)
					}
					readers.Add(-1)
					p.RUnlock()
				} else {
					p.Lock()
					if writers.Add(1) != 1 || readers.Load() != 0 {
						bad.Add(1)
					}
					writers.Add(-1)
					p.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d exclusion violations", bad.Load())
	}
}

func TestSequentialKindSwitching(t *testing.T) {
	l := New(1)
	p := l.NewProc()
	for i := 0; i < 2000; i++ {
		p.RLock()
		p.RUnlock()
		p.Lock()
		p.Unlock()
	}
}
