package hsieh

import (
	"sync"
	"testing"
	"time"
)

func TestReadersIndependent(t *testing.T) {
	l := New(4)
	p1, p2 := l.NewProc(), l.NewProc()
	p1.RLock()
	done := make(chan struct{})
	go func() {
		p2.RLock()
		close(done)
		p2.RUnlock()
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("readers on distinct slots interfered")
	}
	p1.RUnlock()
}

func TestWriterTakesAllSlots(t *testing.T) {
	l := New(3)
	w := l.NewProc()
	r := l.NewProc()
	w.Lock()
	acquired := make(chan struct{})
	go func() {
		r.RLock()
		close(acquired)
		r.RUnlock()
	}()
	select {
	case <-acquired:
		t.Fatal("reader acquired during write hold")
	case <-time.After(50 * time.Millisecond):
	}
	w.Unlock()
	<-acquired
}

func TestWriterWaitsForEveryReader(t *testing.T) {
	l := New(3)
	r1, r2 := l.NewProc(), l.NewProc()
	w := l.NewProc()
	r1.RLock()
	r2.RLock()
	acquired := make(chan struct{})
	go func() {
		w.Lock()
		close(acquired)
		w.Unlock()
	}()
	time.Sleep(30 * time.Millisecond)
	r1.RUnlock()
	select {
	case <-acquired:
		t.Fatal("writer acquired with a reader still holding")
	case <-time.After(30 * time.Millisecond):
	}
	r2.RUnlock()
	select {
	case <-acquired:
	case <-time.After(20 * time.Second):
		t.Fatal("writer never acquired")
	}
}

func TestProcLimitPanics(t *testing.T) {
	l := New(1)
	l.NewProc()
	defer func() {
		if recover() == nil {
			t.Fatal("exceeding maxProcs did not panic")
		}
	}()
	l.NewProc()
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestMaxProcs(t *testing.T) {
	if New(7).MaxProcs() != 7 {
		t.Fatal("MaxProcs mismatch")
	}
}

func TestWriterWriterExclusion(t *testing.T) {
	l := New(4)
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := l.NewProc()
			for i := 0; i < 500; i++ {
				p.Lock()
				counter++
				p.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 2000 {
		t.Fatalf("counter = %d, want 2000", counter)
	}
}
