// Package hsieh implements the Hsieh–Weihl scalable reader-writer lock
// (IPPS '92), cited by the paper (§1) as the "trade writer throughput
// for reader throughput" design: every thread owns a private mutex; a
// reader acquires only its own mutex, while a writer must acquire all of
// them.
//
// Read-only workloads scale perfectly (readers touch only their own
// cache line), but writer cost grows linearly with the thread count,
// which is why the paper judges the approach "feasible only for low
// numbers of threads". It is included as the prior-work point of
// comparison for the OLL locks' claim to scale reads without penalizing
// writes.
package hsieh

import (
	"sync/atomic"

	"ollock/internal/spin"
)

// RWLock is a Hsieh–Weihl static reader-writer lock for up to a fixed
// number of participating goroutines. Use New.
type RWLock struct {
	slots []paddedMutex
	procs atomic.Int64
}

type paddedMutex struct {
	m spin.Mutex
	_ [64]byte
}

// New returns a lock sized for maxProcs participating goroutines.
func New(maxProcs int) *RWLock {
	if maxProcs <= 0 {
		panic("hsieh: maxProcs must be positive")
	}
	return &RWLock{slots: make([]paddedMutex, maxProcs)}
}

// Proc is a per-goroutine handle; create one per participating goroutine
// with NewProc.
type Proc struct {
	l  *RWLock
	id int
}

// NewProc registers a goroutine with the lock. It panics when more than
// maxProcs handles are created (the algorithm's writer loop is bounded
// by the slot count fixed at construction).
func (l *RWLock) NewProc() *Proc {
	id := int(l.procs.Add(1)) - 1
	if id >= len(l.slots) {
		panic("hsieh: more procs than maxProcs")
	}
	return &Proc{l: l, id: id}
}

// RLock acquires the lock for reading: one private mutex acquisition.
func (p *Proc) RLock() { p.l.slots[p.id].m.Lock() }

// RUnlock releases a read acquisition.
func (p *Proc) RUnlock() { p.l.slots[p.id].m.Unlock() }

// Lock acquires the lock for writing by taking every private mutex in
// ascending order (the total order prevents writer/writer deadlock).
func (p *Proc) Lock() {
	for i := range p.l.slots {
		p.l.slots[i].m.Lock()
	}
}

// Unlock releases a write acquisition.
func (p *Proc) Unlock() {
	for i := range p.l.slots {
		p.l.slots[i].m.Unlock()
	}
}

// TryRLock acquires for reading without waiting: one try at the private
// mutex.
func (p *Proc) TryRLock() bool { return p.l.slots[p.id].m.TryLock() }

// TryLock acquires for writing without waiting: try every private mutex
// in ascending order, rolling back on the first failure.
func (p *Proc) TryLock() bool {
	for i := range p.l.slots {
		if !p.l.slots[i].m.TryLock() {
			for j := i - 1; j >= 0; j-- {
				p.l.slots[j].m.Unlock()
			}
			return false
		}
	}
	return true
}

// MaxProcs returns the number of slots (diagnostic).
func (l *RWLock) MaxProcs() int { return len(l.slots) }
