package spin

import (
	"sync"
	"testing"
	"time"

	"ollock/internal/park"
)

func TestMutexExclusion(t *testing.T) {
	var m Mutex
	counter := 0
	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost updates => exclusion violated)", counter, goroutines*iters)
	}
}

func TestMutexTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex must succeed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex must fail")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock must succeed")
	}
	m.Unlock()
}

// TestMutexLockWith drives the policy-aware slow path under each wait
// mode: exclusion must hold whether contenders pause by spinning,
// yielding, or sleeping.
func TestMutexLockWith(t *testing.T) {
	for _, pol := range []*park.Policy{nil, park.New(park.ModeAdaptive), park.New(park.ModeArray)} {
		pol := pol
		t.Run(pol.Mode().String(), func(t *testing.T) {
			var m Mutex
			counter := 0
			const goroutines, iters = 8, 1000
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						m.LockWith(pol)
						counter++
						m.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != goroutines*iters {
				t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
			}
		})
	}
}

func TestWaiterSignalBeforeWait(t *testing.T) {
	var w Waiter
	w.Signal()
	w.Wait() // must return immediately
}

func TestWaiterSignalAfterWait(t *testing.T) {
	var w Waiter
	done := make(chan struct{})
	go func() {
		w.Wait()
		close(done)
	}()
	w.Signal()
	<-done
}

func TestWaiterReset(t *testing.T) {
	var w Waiter
	w.Signal()
	w.Wait()
	w.Reset()
	done := make(chan struct{})
	go func() {
		w.Wait()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Wait returned after Reset without a Signal")
	default:
	}
	w.Signal()
	<-done
}

func TestMutexManyCycles(t *testing.T) {
	// Rapid lock/unlock cycles from two goroutines, checking alternation
	// never corrupts state.
	var m Mutex
	var held bool
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				m.Lock()
				if held {
					t.Error("mutex held by two goroutines")
				}
				held = true
				held = false
				m.Unlock()
			}
		}()
	}
	wg.Wait()
}

// TestMutexSlowPath forces the contended path: a goroutine must enter
// the backoff loop while the mutex is held, then acquire after release.
func TestMutexSlowPath(t *testing.T) {
	var m Mutex
	m.Lock()
	acquired := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		m.Lock() // must spin: lock is held
		close(acquired)
		m.Unlock()
	}()
	<-started
	time.Sleep(10 * time.Millisecond) // let it reach the spin loop
	select {
	case <-acquired:
		t.Fatal("acquired while held")
	default:
	}
	m.Unlock()
	select {
	case <-acquired:
	case <-time.After(20 * time.Second):
		t.Fatal("never acquired after release")
	}
}

// TestWaiterWaitSpinsThenYields covers the parked-wait path: Signal
// arrives only after the waiter has entered its yield loop.
func TestWaiterLongWait(t *testing.T) {
	var w Waiter
	done := make(chan struct{})
	go func() {
		w.Wait()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond) // waiter is in the yield phase
	w.Signal()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("waiter stuck")
	}
}
