// Package spin provides busy-waiting synchronization primitives: a
// test-and-test-and-set spin mutex with exponential backoff and a
// spin-based condition variable.
//
// The paper's user-space evaluation replaces the Solaris kernel's
// turnstile sleep/wakeup with "our own spin-based condition variables to
// eliminate the cost of context switching" (§5.1). This package is that
// substitution: Mutex protects the GOLL/Solaris-like wait queues, and
// Waiter is the object a blocked thread spins on until a releasing
// thread signals it.
package spin

import (
	"sync/atomic"

	"ollock/internal/atomicx"
	"ollock/internal/park"
	"ollock/internal/trace"
)

// Mutex is a test-and-test-and-set spin lock with exponential backoff.
// The zero value is an unlocked mutex.
//
// It deliberately has no fairness guarantee: it protects short critical
// sections (queue manipulation) where throughput matters more than
// order, matching the "queue mutex" of the Solaris lock.
type Mutex struct {
	state atomic.Uint32
	_     [atomicx.CacheLineSize - 4]byte
}

// Lock acquires the mutex, spinning until it is available.
func (m *Mutex) Lock() {
	if m.state.CompareAndSwap(0, 1) {
		return
	}
	var b atomicx.Backoff
	for {
		// Test before test-and-set: spin on a read so the line stays
		// shared until it is actually free.
		for m.state.Load() != 0 {
			b.Pause()
		}
		if m.state.CompareAndSwap(0, 1) {
			return
		}
	}
}

// TryLock attempts to acquire the mutex without waiting, reporting
// whether it succeeded.
func (m *Mutex) TryLock() bool {
	return m.state.Load() == 0 && m.state.CompareAndSwap(0, 1)
}

// LockWith acquires the mutex waiting per pol: a TryLock fast path,
// then the policy's escalation ladder between probes. A nil policy
// pauses exactly like Lock; an adaptive/array policy escalates to
// yields and bounded sleeps, so an oversubscribed queue mutex cannot
// starve the holder of CPU.
func (m *Mutex) LockWith(pol *park.Policy) {
	if m.TryLock() {
		return
	}
	ld := pol.Ladder()
	for {
		for m.state.Load() != 0 {
			ld.Pause()
		}
		if m.state.CompareAndSwap(0, 1) {
			return
		}
	}
}

// Unlock releases the mutex. It must be called by the holder.
func (m *Mutex) Unlock() {
	m.state.Store(0)
}

// Waiter is a one-shot spin-based condition: one thread calls Wait, one
// (other) thread calls Signal exactly once. It replaces the
// condition-variable + mutex pair of the paper's pseudocode for blocked
// threads (the pairing with the queue mutex guarantees Signal cannot be
// lost: a thread enqueues its Waiter under the queue mutex before
// waiting, and releasing threads dequeue and Signal under the same
// mutex).
//
// A Waiter must be Reset before reuse.
//
// The cell is backed by park.Waiter: the plain Wait/Signal methods keep
// the paper's pure-spin behavior, and WaitWith/SignalWith route the
// same hand-off through a wait policy (spin, adaptive park, or waiting
// array) without changing the protocol.
type Waiter struct {
	w park.Waiter
}

// Wait blocks (by spinning, then yielding) until Signal has been called.
func (w *Waiter) Wait() {
	w.w.Wait(nil, 0, nil)
}

// WaitWith blocks until Signal(With), waiting per pol; id is the
// caller's proc id for counter striping and tr (nil ok) receives the
// park/unpark events.
func (w *Waiter) WaitWith(pol *park.Policy, id int, tr *trace.Local) {
	w.w.Wait(pol, id, tr)
}

// WaitUntil is WaitWith with a bound: true once signaled, false if dl
// expired first. A timed-out Waiter is left armed — the caller may
// WaitWith again to collect a signal that is still on its way (which
// the GOLL cancellation protocol does after losing the dequeue race).
func (w *Waiter) WaitUntil(pol *park.Policy, id int, tr *trace.Local, dl park.Deadline) bool {
	return w.w.WaitUntil(pol, id, tr, dl)
}

// Signal releases the thread blocked in Wait (or lets a future Wait
// return immediately).
func (w *Waiter) Signal() {
	w.w.Signal(nil)
}

// SignalWith is Signal under a wait policy: it additionally wakes a
// parked waiter or bumps its waiting-array slot.
func (w *Waiter) SignalWith(pol *park.Policy) {
	w.w.Signal(pol)
}

// Reset re-arms the Waiter for another Wait/Signal round. The caller
// must guarantee no thread is currently blocked on it.
func (w *Waiter) Reset() {
	w.w.Reset()
}
