// Package spin provides busy-waiting synchronization primitives: a
// test-and-test-and-set spin mutex with exponential backoff and a
// spin-based condition variable.
//
// The paper's user-space evaluation replaces the Solaris kernel's
// turnstile sleep/wakeup with "our own spin-based condition variables to
// eliminate the cost of context switching" (§5.1). This package is that
// substitution: Mutex protects the GOLL/Solaris-like wait queues, and
// Waiter is the object a blocked thread spins on until a releasing
// thread signals it.
package spin

import (
	"sync/atomic"

	"ollock/internal/atomicx"
)

// Mutex is a test-and-test-and-set spin lock with exponential backoff.
// The zero value is an unlocked mutex.
//
// It deliberately has no fairness guarantee: it protects short critical
// sections (queue manipulation) where throughput matters more than
// order, matching the "queue mutex" of the Solaris lock.
type Mutex struct {
	state atomic.Uint32
	_     [atomicx.CacheLineSize - 4]byte
}

// Lock acquires the mutex, spinning until it is available.
func (m *Mutex) Lock() {
	if m.state.CompareAndSwap(0, 1) {
		return
	}
	var b atomicx.Backoff
	for {
		// Test before test-and-set: spin on a read so the line stays
		// shared until it is actually free.
		for m.state.Load() != 0 {
			b.Pause()
		}
		if m.state.CompareAndSwap(0, 1) {
			return
		}
	}
}

// TryLock attempts to acquire the mutex without waiting, reporting
// whether it succeeded.
func (m *Mutex) TryLock() bool {
	return m.state.Load() == 0 && m.state.CompareAndSwap(0, 1)
}

// Unlock releases the mutex. It must be called by the holder.
func (m *Mutex) Unlock() {
	m.state.Store(0)
}

// Waiter is a one-shot spin-based condition: one thread calls Wait, one
// (other) thread calls Signal exactly once. It replaces the
// condition-variable + mutex pair of the paper's pseudocode for blocked
// threads (the pairing with the queue mutex guarantees Signal cannot be
// lost: a thread enqueues its Waiter under the queue mutex before
// waiting, and releasing threads dequeue and Signal under the same
// mutex).
//
// A Waiter must be Reset before reuse.
type Waiter struct {
	signaled atomicx.PaddedBool
}

// Wait blocks (by spinning, then yielding) until Signal has been called.
func (w *Waiter) Wait() {
	atomicx.SpinUntil(w.signaled.Load)
}

// Signal releases the thread blocked in Wait (or lets a future Wait
// return immediately).
func (w *Waiter) Signal() {
	w.signaled.Store(true)
}

// Reset re-arms the Waiter for another Wait/Signal round. The caller
// must guarantee no thread is currently blocked on it.
func (w *Waiter) Reset() {
	w.signaled.Store(false)
}
