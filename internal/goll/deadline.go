// Timed/cancellable acquisition surface for the GOLL lock. The cores
// live in goll.go (rlock/lock, deadline-threaded); this file adds the
// duration and context sugar plus the shared abandonment bookkeeping.
// See ALGORITHMS.md §17 for the abandonment protocol.
package goll

import (
	"context"
	"time"

	"ollock/internal/lockcore"
)

// abandon finalizes a failed timed acquisition: the kind's timeout or
// cancel counter (split by expiry cause), one KindCancel trace event,
// and — when ph is nonzero — the open wait-phase span's close.
func (p *Proc) abandon(ph lockcore.Phase, timeout, cancel lockcore.Event, dl lockcore.Deadline) {
	p.l.in.Inc(lockcore.CancelEvent(timeout, cancel, dl), p.id)
	p.pi.Emit(lockcore.KindCancel, 0, lockcore.CancelArg(dl))
	if ph != 0 {
		p.pi.End(ph)
	}
}

// RLockDeadline acquires for reading, abandoning on expiry; it reports
// whether the lock was acquired. A zero deadline never expires.
func (p *Proc) RLockDeadline(dl lockcore.Deadline) bool { return p.rlock(dl) }

// LockDeadline acquires for writing, abandoning on expiry; it reports
// whether the lock was acquired.
func (p *Proc) LockDeadline(dl lockcore.Deadline) bool { return p.lock(dl) }

// RLockFor acquires for reading, giving up after d. The try-first shape
// keeps the uncontended timed acquisition at untimed speed: anchoring
// the deadline costs a clock read, which only a failed immediate
// attempt — the one a non-positive d is owed anyway — has to pay.
func (p *Proc) RLockFor(d time.Duration) bool {
	if p.TryRLock() {
		return true
	}
	return p.rlock(lockcore.After(d))
}

// LockFor acquires for writing, giving up after d.
func (p *Proc) LockFor(d time.Duration) bool {
	if p.TryLock() {
		return true
	}
	return p.lock(lockcore.After(d))
}

// RLockCtx acquires for reading, abandoning when ctx is done. It
// returns nil on acquisition and the context's error otherwise.
func (p *Proc) RLockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dl := lockcore.FromContext(ctx)
	if p.rlock(dl) {
		return nil
	}
	return dl.Err()
}

// LockCtx acquires for writing, abandoning when ctx is done. It
// returns nil on acquisition and the context's error otherwise.
func (p *Proc) LockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dl := lockcore.FromContext(ctx)
	if p.lock(dl) {
		return nil
	}
	return dl.Err()
}
