// Package goll implements the GOLL lock — the general OLL reader-writer
// lock of §3 (Figure 3) of "Scalable Reader-Writer Locks".
//
// GOLL has the shape of the Solaris kernel reader-writer lock, but the
// central lockword is replaced by a C-SNZI, so uncontended readers never
// touch shared central state beyond their arrival node:
//
//	lock free       = C-SNZI open with zero surplus
//	write-acquired  = C-SNZI closed with zero surplus
//	read-acquired   = surplus nonzero (closed iff a writer waits)
//
// Conflicted threads queue in a mutex-protected wait queue
// (internal/waitq, the turnstile substitute), and releasing threads hand
// ownership over directly — a woken thread already owns the lock. The
// queue mutex is touched only in the presence of conflicting requests;
// in particular read-only workloads never acquire it.
//
// Beyond the paper's pseudocode this implementation adds the
// write-upgrade operation of §3.2.1 (using the two-counter C-SNZI root)
// and the symmetric downgrade, both of which the Solaris lock offers.
package goll

import (
	"fmt"
	"io"
	"sync/atomic"

	"ollock/internal/csnzi"
	"ollock/internal/lockcore"
	"ollock/internal/rind"
	"ollock/internal/spin"
	"ollock/internal/waitq"
)

// RWLock is a GOLL reader-writer lock. Use New, then one Proc per
// goroutine.
type RWLock struct {
	cs   rind.Indicator
	meta spin.Mutex
	q    waitq.Queue
	ids  atomic.Int64
	// in is the instrumentation bundle (zero = all off): the stats
	// block is shared with the lock's C-SNZI so one Snapshot covers
	// both layers, and the wait policy routes every blocking site.
	in lockcore.Instr
}

// Proc is a per-goroutine handle carrying the Local record of the
// paper's pseudocode (the C-SNZI ticket of the current read
// acquisition). A Proc supports one outstanding acquisition at a time.
type Proc struct {
	l        *RWLock
	id       int
	priority int
	ticket   rind.Ticket
	// pi is the proc's instrumentation view (buffered counters +
	// flight-recorder ring); every emission below is one predictable
	// branch when the corresponding layer is off.
	pi lockcore.ProcInstr
}

// SetPriority sets the scheduling priority used when this Proc has to
// wait (higher wins; default 0). The GOLL hand-off policy lets a
// strictly-higher-priority waiting writer overtake waiting readers —
// the "robust priority" flexibility the Solaris-style queue provides
// (§3). Priority has no effect on the conflict-free fast paths.
func (p *Proc) SetPriority(priority int) { p.priority = priority }

// Option configures the lock.
type Option func(*RWLock)

// WithCSNZI substitutes a custom-configured C-SNZI (tree width, fanout,
// arrival policy) — used by the ablation benchmarks.
func WithCSNZI(c *csnzi.CSNZI) Option {
	return func(l *RWLock) { l.cs = rind.WrapCSNZI(c) }
}

// WithIndicator substitutes an arbitrary read indicator (see
// internal/rind) for the default C-SNZI — the centralized-vs-tree
// ablation as an architectural knob.
func WithIndicator(ind rind.Indicator) Option {
	return func(l *RWLock) { l.cs = ind }
}

// WithInstr attaches the instrumentation bundle (see internal/lockcore):
// the stats block (goll.* hand-off and upgrade counters, shared with
// the C-SNZI's csnzi.* counters), the flight-recorder handle (arrive
// decisions, queue waits, indicator transitions, hand-offs), and the
// wait policy every blocking site routes through. The zero bundle (the
// default) spins exactly as the paper does, uninstrumented.
func WithInstr(in lockcore.Instr) Option { return func(l *RWLock) { l.in = in } }

// New returns an unlocked GOLL lock.
func New(opts ...Option) *RWLock {
	l := &RWLock{}
	for _, o := range opts {
		o(l)
	}
	if l.cs == nil {
		l.cs = rind.NewCSNZI()
	}
	l.cs = rind.Instrument(l.cs, l.in.Stats)
	l.in.AddDumper(l)
	return l
}

// NewProc registers a goroutine with the lock. Unlike the queue-based
// OLL locks, GOLL has no fixed capacity: any number of Procs may be
// created.
func (l *RWLock) NewProc() *Proc {
	id := int(l.ids.Add(1)) - 1
	return &Proc{l: l, id: id, pi: l.in.NewProc(id)}
}

// RLock acquires the lock for reading. On the conflict-free path this is
// a single C-SNZI arrival; otherwise the reader enqueues itself and is
// handed the lock (with a pre-made direct arrival) by a releasing
// writer.
func (p *Proc) RLock() { p.rlock(lockcore.Deadline{}) }

// rlock is the deadline-threaded read-acquire core; a zero deadline
// reproduces the untimed paths (the timed branches cost one None/
// Expired branch each, nothing on the conflict-free fast path).
//
// Cancellation protocol: a queued GOLL reader holds no indicator
// arrival — its DirectTicket is only a token telling RUnlock how to
// depart an arrival the *releaser* makes on its behalf
// (OpenWithArrivals). Abandonment is therefore pure queue surgery:
// take the metalock, unlink the entry if it is still queued, done —
// there is nothing to roll back in the C-SNZI. Losing the unlink race
// means a releaser already dequeued us into a hand-off batch and a
// signal (plus our pre-made arrival) is in flight: the canceling
// reader waits the short remainder out, then gives the acquisition
// straight back through the normal release path, so the hand-off
// chain never stalls on an abandoned waiter.
func (p *Proc) rlock(dl lockcore.Deadline) bool {
	l := p.l
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	slow := false
	for {
		p.ticket = l.cs.ArriveLocal(p.id, p.pi.LC)
		if p.ticket.Arrived() {
			p.pi.Acquired(lockcore.KindReadAcquired, t0, p.ticket.TraceRoute())
			p.pi.ProfAcquired(pt, slow)
			return true
		}
		if !slow {
			// Open the arrive phase retroactively: the fast path never
			// pays for this event.
			slow = true
			p.pi.BeginAt(t0, lockcore.PhaseArrive)
		}
		p.pi.Emit(lockcore.KindArriveFail, 0, 0)
		if !dl.None() && dl.Expired() {
			p.abandon(lockcore.PhaseArrive, lockcore.GOLLTimeout, lockcore.GOLLCancel, dl)
			return false
		}
		l.meta.LockWith(l.in.Wait)
		if _, open := l.cs.Query(); open {
			// The closer released before we got the mutex; retry the
			// fast path.
			l.meta.Unlock()
			continue
		}
		e := l.q.Enqueue(waitq.Reader, p.priority)
		l.meta.Unlock()
		p.pi.Emit(lockcore.KindQueueEnqueue, 0, 0)
		// The thread releasing the lock pre-arrives at the root for us
		// (OpenWithArrivals), so we will depart directly.
		p.ticket = l.cs.DirectTicket()
		p.pi.Begin(lockcore.PhaseQueueWait)
		if e.WaitUntil(l.in.Wait, p.id, p.pi.TR, dl) {
			p.pi.Acquired(lockcore.KindReadAcquired, t0, lockcore.RouteDirect)
			p.pi.ProfAcquired(pt, true)
			return true
		}
		// Expired while queued: the metalock decides who owns the entry.
		l.meta.LockWith(l.in.Wait)
		canceled := l.q.Cancel(e)
		l.meta.Unlock()
		if canceled {
			p.abandon(lockcore.PhaseQueueWait, lockcore.GOLLTimeout, lockcore.GOLLCancel, dl)
			return false
		}
		// A releaser dequeued us first: the signal and our pre-made
		// direct arrival are in flight. Collect the acquisition (the
		// timed-out waiter cell re-arms, so re-waiting is safe), then
		// give it back.
		e.WaitWith(l.in.Wait, p.id, p.pi.TR)
		p.pi.Acquired(lockcore.KindReadAcquired, t0, lockcore.RouteDirect)
		p.pi.ProfAcquired(pt, true)
		p.RUnlock()
		p.abandon(0, lockcore.GOLLTimeout, lockcore.GOLLCancel, dl)
		return false
	}
}

// RUnlock releases a read acquisition. A last reader departing a closed
// C-SNZI hands the lock to the waiting writer.
func (p *Proc) RUnlock() {
	l := p.l
	if l.cs.Depart(p.ticket) {
		p.pi.Released(lockcore.KindReadReleased)
		p.pi.ProfReleased()
		return
	}
	// The C-SNZI is closed with zero surplus: write-acquired state, to
	// be handed to the next waiter. A waiting writer must exist (readers
	// only queue behind a closer), but the queue may also hand to
	// readers if a policy lets them overtake (§3.2, footnote 1).
	p.pi.Emit(lockcore.KindIndDrain, 0, 0)
	l.meta.LockWith(l.in.Wait)
	batch := l.q.DequeueHandoff(waitq.Reader)
	if batch == nil {
		// The closer(s) we drained behind all abandoned their waits
		// between our Depart and the metalock: nobody to hand to, so
		// reopen the indicator ourselves.
		l.cs.Open()
		l.meta.Unlock()
		p.pi.Emit(lockcore.KindIndOpen, 0, 0)
		p.pi.Released(lockcore.KindReadReleased)
		p.pi.ProfReleased()
		return
	}
	if batch.Kind == waitq.Reader {
		// Readers overtook the waiting writer: move the lock straight to
		// the read-acquired state, keeping it closed while writers wait.
		l.cs.OpenWithArrivals(batch.Count(), l.q.NumWriters() != 0)
		p.pi.Emit(lockcore.KindIndOpen, 0, uint64(batch.Count()))
	}
	l.meta.Unlock()
	l.in.Inc(lockcore.GOLLHandoff, p.id)
	p.pi.Emit(lockcore.KindHandoff, 0, lockcore.PackHandoff(batch.Count(), batch.Kind == waitq.Writer))
	batch.SignalWith(l.in.Wait)
	p.pi.Released(lockcore.KindReadReleased)
	p.pi.ProfReleased()
}

// Lock acquires the lock for writing: one CAS (CloseIfEmpty) when the
// lock is free, otherwise close-and-enqueue under the queue mutex.
func (p *Proc) Lock() { p.lock(lockcore.Deadline{}) }

// lock is the deadline-threaded write-acquire core; a zero deadline
// reproduces the untimed paths.
//
// A canceled queued writer unlinks itself under the metalock and
// leaves the indicator closed — deliberately. Reopening would need to
// know whether other writers still wait and whether readers hold the
// surplus, all racing fresh arrivals; instead the protocol leans on
// the invariant that a closed indicator always has a live owner (the
// write holder, or the read group whose last departer hands off), and
// every owner's release path now tolerates an empty queue (the nil-
// batch branches in RUnlock/Unlock reopen it). The canceled writer's
// only trace is one already-failed reader retry round, not a stalled
// lock.
func (p *Proc) lock(dl lockcore.Deadline) bool {
	l := p.l
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	w0 := l.in.SpanStart()
	if l.cs.CloseIfEmpty() {
		p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteRoot)
		p.pi.ProfAcquired(pt, false)
		l.in.SpanObserve(lockcore.GOLLWriteWait, p.id, w0)
		return true
	}
	p.pi.BeginAt(t0, lockcore.PhaseArrive)
	if !dl.None() && dl.Expired() {
		p.abandon(lockcore.PhaseArrive, lockcore.GOLLTimeout, lockcore.GOLLCancel, dl)
		return false
	}
	l.meta.LockWith(l.in.Wait)
	if l.cs.Close() {
		// The lock drained between our fast path and here; Close
		// acquired it.
		l.meta.Unlock()
		p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteRoot)
		p.pi.ProfAcquired(pt, true)
		l.in.SpanObserve(lockcore.GOLLWriteWait, p.id, w0)
		return true
	}
	// The indicator is now closed over the readers holding it (by our
	// Close, or an earlier writer's); their last departer hands off.
	p.pi.Emit(lockcore.KindIndClose, 0, 0)
	e := l.q.Enqueue(waitq.Writer, p.priority)
	l.meta.Unlock()
	p.pi.Emit(lockcore.KindQueueEnqueue, 0, 1)
	p.pi.Begin(lockcore.PhaseQueueWait)
	if !e.WaitUntil(l.in.Wait, p.id, p.pi.TR, dl) {
		l.meta.LockWith(l.in.Wait)
		canceled := l.q.Cancel(e)
		l.meta.Unlock()
		if canceled {
			p.abandon(lockcore.PhaseQueueWait, lockcore.GOLLTimeout, lockcore.GOLLCancel, dl)
			return false
		}
		// A releaser already handed us the lock; collect it, release it,
		// report failure.
		e.WaitWith(l.in.Wait, p.id, p.pi.TR)
		p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteDirect)
		p.pi.ProfAcquired(pt, true)
		p.Unlock()
		p.abandon(0, lockcore.GOLLTimeout, lockcore.GOLLCancel, dl)
		return false
	}
	p.pi.Acquired(lockcore.KindWriteAcquired, t0, lockcore.RouteDirect)
	p.pi.ProfAcquired(pt, true)
	l.in.SpanObserve(lockcore.GOLLWriteWait, p.id, w0)
	return true
}

// Unlock releases a write acquisition, handing ownership to the next
// batch of waiters if any.
func (p *Proc) Unlock() {
	l := p.l
	l.meta.LockWith(l.in.Wait)
	batch := l.q.DequeueHandoff(waitq.Writer)
	if batch == nil {
		l.cs.Open()
		l.meta.Unlock()
		p.pi.Emit(lockcore.KindIndOpen, 0, 0)
		p.pi.Released(lockcore.KindWriteReleased)
		p.pi.ProfReleased()
		return
	}
	if batch.Kind == waitq.Reader {
		// Convert to read-acquired: surplus = group size, closed iff
		// writers still wait.
		l.cs.OpenWithArrivals(batch.Count(), l.q.NumWriters() != 0)
		p.pi.Emit(lockcore.KindIndOpen, 0, uint64(batch.Count()))
	}
	// For a writer batch the C-SNZI is already closed with zero surplus
	// (write-acquired); nothing to change.
	l.meta.Unlock()
	l.in.Inc(lockcore.GOLLHandoff, p.id)
	p.pi.Emit(lockcore.KindHandoff, 0, lockcore.PackHandoff(batch.Count(), batch.Kind == waitq.Writer))
	batch.SignalWith(l.in.Wait)
	p.pi.Released(lockcore.KindWriteReleased)
	p.pi.ProfReleased()
}

// TryRLock attempts a read acquisition without waiting, reporting
// whether it succeeded. It fails exactly when a writer holds the lock
// or waits for it (the C-SNZI is closed) — the same condition that
// would have queued the caller.
func (p *Proc) TryRLock() bool {
	p.ticket = p.l.cs.ArriveLocal(p.id, p.pi.LC)
	return p.ticket.Arrived()
}

// TryLock attempts a write acquisition without waiting, reporting
// whether it succeeded. It is the writer fast path alone: one CAS on a
// free lock.
func (p *Proc) TryLock() bool {
	return p.l.cs.CloseIfEmpty()
}

// TryUpgrade attempts to convert this Proc's read acquisition into a
// write acquisition (§3.2.1). It succeeds iff the caller is the only
// thread holding the lock; on failure the caller still holds the lock
// for reading. After a successful upgrade the caller must release with
// Unlock.
//
// The upgrade trades the caller's (possibly tree-based) arrival for a
// direct arrival at the root, then atomically swaps "sole direct
// arrival" for "closed, zero surplus" — even if the C-SNZI is already
// closed by a queued writer, in which case the upgrader simply takes
// ownership ahead of it (it will be handed the lock on our Unlock).
func (p *Proc) TryUpgrade() bool {
	l := p.l
	l.in.Inc(lockcore.GOLLUpgradeAttempt, p.id)
	p.ticket = l.cs.TradeToRoot(p.ticket)
	if l.cs.TryUpgrade() {
		return true
	}
	l.in.Inc(lockcore.GOLLUpgradeFail, p.id)
	return false
}

// Downgrade converts this Proc's write acquisition into a read
// acquisition without ever releasing the lock, admitting any waiting
// readers alongside (the Solaris rw_downgrade behaviour). The caller
// must subsequently release with RUnlock.
func (p *Proc) Downgrade() {
	l := p.l
	l.in.Inc(lockcore.GOLLDowngrade, p.id)
	l.meta.LockWith(l.in.Wait)
	readers := l.q.TakeReaders()
	// Surplus = us + admitted waiting readers; stays closed if writers
	// still wait so late readers keep queuing behind them.
	l.cs.OpenWithArrivals(1+readers.Count(), l.q.NumWriters() != 0)
	l.meta.Unlock()
	p.ticket = l.cs.DirectTicket()
	readers.SignalWith(l.in.Wait)
}

// DumpLockState implements trace.StateDumper: a human-readable
// description of the live indicator word and wait-queue chain, taken
// under the queue mutex (safe — the dumper holds no acquisition).
func (l *RWLock) DumpLockState(w io.Writer) {
	l.meta.LockWith(l.in.Wait)
	defer l.meta.Unlock()
	fmt.Fprintf(w, "goll: indicator %s\n", rind.Describe(l.cs))
	fmt.Fprintf(w, "goll: wait queue: %d waiters (%d writers, %d readers)\n",
		l.q.Len(), l.q.NumWriters(), l.q.NumReaders())
	for i, e := range l.q.Entries() {
		fmt.Fprintf(w, "goll:   queue node %d: %s priority=%d\n", i, e.Kind, e.Priority)
	}
}
