package goll

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ollock/internal/csnzi"
	"ollock/internal/xrand"
)

func TestReadersShare(t *testing.T) {
	l := New()
	p1, p2 := l.NewProc(), l.NewProc()
	p1.RLock()
	done := make(chan struct{})
	go func() {
		p2.RLock()
		close(done)
		p2.RUnlock()
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("readers failed to share")
	}
	p1.RUnlock()
}

// TestWriterHandsToReaderGroup: the Solaris policy — a releasing writer
// admits ALL waiting readers together.
func TestWriterHandsToReaderGroup(t *testing.T) {
	l := New()
	w := l.NewProc()
	w.Lock()
	const readers = 4
	var active atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := l.NewProc()
			p.RLock()
			active.Add(1)
			for active.Load() < readers {
				time.Sleep(time.Millisecond)
			}
			p.RUnlock()
		}()
	}
	time.Sleep(30 * time.Millisecond)
	w.Unlock()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatalf("reader group split: only %d admitted together", active.Load())
	}
}

// TestReaderHandsToWriter: last departing reader wakes the queued
// writer, which then owns the lock.
func TestReaderHandsToWriter(t *testing.T) {
	l := New()
	r1, r2 := l.NewProc(), l.NewProc()
	r1.RLock()
	r2.RLock()
	w := l.NewProc()
	writerIn := make(chan struct{})
	go func() {
		w.Lock()
		close(writerIn)
		w.Unlock()
	}()
	time.Sleep(30 * time.Millisecond)
	r1.RUnlock()
	select {
	case <-writerIn:
		t.Fatal("writer admitted with a reader still present")
	case <-time.After(30 * time.Millisecond):
	}
	r2.RUnlock()
	select {
	case <-writerIn:
	case <-time.After(20 * time.Second):
		t.Fatal("writer never handed the lock")
	}
}

// TestLateReadersQueueBehindWriter: with a writer waiting (C-SNZI
// closed), new readers must queue, not join the active group.
func TestLateReadersQueueBehindWriter(t *testing.T) {
	l := New()
	r1 := l.NewProc()
	r1.RLock()
	w := l.NewProc()
	writerDone := make(chan struct{})
	go func() {
		w.Lock()
		time.Sleep(10 * time.Millisecond)
		w.Unlock()
		close(writerDone)
	}()
	time.Sleep(30 * time.Millisecond) // writer closed the C-SNZI

	r2 := l.NewProc()
	r2In := make(chan struct{})
	go func() {
		r2.RLock()
		close(r2In)
		r2.RUnlock()
	}()
	select {
	case <-r2In:
		t.Fatal("late reader joined despite waiting writer")
	case <-time.After(30 * time.Millisecond):
	}
	r1.RUnlock() // hand off to writer, then writer hands to r2
	<-writerDone
	select {
	case <-r2In:
	case <-time.After(20 * time.Second):
		t.Fatal("late reader never admitted")
	}
}

func TestTryUpgradeSoleReader(t *testing.T) {
	l := New()
	p := l.NewProc()
	p.RLock()
	if !p.TryUpgrade() {
		t.Fatal("sole reader failed to upgrade")
	}
	// Now a writer: other readers must be excluded.
	r := l.NewProc()
	rIn := make(chan struct{})
	go func() {
		r.RLock()
		close(rIn)
		r.RUnlock()
	}()
	select {
	case <-rIn:
		t.Fatal("reader admitted during upgraded write hold")
	case <-time.After(50 * time.Millisecond):
	}
	p.Unlock()
	<-rIn
}

func TestTryUpgradeFailsWithTwoReaders(t *testing.T) {
	l := New()
	p1, p2 := l.NewProc(), l.NewProc()
	p1.RLock()
	p2.RLock()
	if p1.TryUpgrade() {
		t.Fatal("upgrade succeeded with two readers")
	}
	// p1 must still hold read ownership.
	p2.RUnlock()
	p1.RUnlock()
	// Lock must now be free for a writer.
	w := l.NewProc()
	w.Lock()
	w.Unlock()
}

func TestUpgradeWithTreeTicket(t *testing.T) {
	// Force tree arrivals so the upgrade exercises TradeToRoot.
	l := New(WithCSNZI(csnzi.New(csnzi.WithLeaves(4), csnzi.WithDirectRetries(0))))
	p := l.NewProc()
	p.RLock()
	if !p.TryUpgrade() {
		t.Fatal("tree-ticket sole reader failed to upgrade")
	}
	p.Unlock()
}

func TestDowngrade(t *testing.T) {
	l := New()
	p := l.NewProc()
	p.Lock()
	p.Downgrade()
	// Now read-held: another reader may join.
	r := l.NewProc()
	done := make(chan struct{})
	go func() {
		r.RLock()
		close(done)
		r.RUnlock()
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("reader blocked after downgrade")
	}
	p.RUnlock()
	// Fully released: writer can acquire.
	w := l.NewProc()
	w.Lock()
	w.Unlock()
}

func TestDowngradeAdmitsWaitingReaders(t *testing.T) {
	l := New()
	p := l.NewProc()
	p.Lock()
	r := l.NewProc()
	rIn := make(chan struct{})
	go func() {
		r.RLock()
		close(rIn)
		r.RUnlock()
	}()
	time.Sleep(30 * time.Millisecond) // reader queued
	p.Downgrade()
	select {
	case <-rIn:
	case <-time.After(20 * time.Second):
		t.Fatal("waiting reader not admitted by downgrade")
	}
	p.RUnlock()
}

// TestUpgradeAheadOfQueuedWriter: an upgrade may succeed even when a
// writer has closed the C-SNZI; the upgrader takes ownership first and
// the queued writer gets it on release.
func TestUpgradeAheadOfQueuedWriter(t *testing.T) {
	l := New()
	p := l.NewProc()
	p.RLock()
	w := l.NewProc()
	wIn := make(chan struct{})
	go func() {
		w.Lock()
		close(wIn)
		w.Unlock()
	}()
	time.Sleep(30 * time.Millisecond) // writer queued, C-SNZI closed
	if !p.TryUpgrade() {
		t.Fatal("sole reader failed to upgrade under a queued writer")
	}
	select {
	case <-wIn:
		t.Fatal("queued writer ran during upgraded hold")
	case <-time.After(30 * time.Millisecond):
	}
	p.Unlock()
	select {
	case <-wIn:
	case <-time.After(20 * time.Second):
		t.Fatal("queued writer never admitted after upgrader released")
	}
}

func TestMixedInvariantStress(t *testing.T) {
	l := New()
	var readers, writers atomic.Int32
	var bad atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := l.NewProc()
			r := xrand.New(uint64(id+1) * 179426549)
			for i := 0; i < 2000; i++ {
				if r.Bool(0.85) {
					p.RLock()
					readers.Add(1)
					if writers.Load() != 0 {
						bad.Add(1)
					}
					readers.Add(-1)
					p.RUnlock()
				} else {
					p.Lock()
					if writers.Add(1) != 1 || readers.Load() != 0 {
						bad.Add(1)
					}
					writers.Add(-1)
					p.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d exclusion violations", bad.Load())
	}
}

// TestWriterPriorityOvertakesReaders: a strictly-higher-priority waiting
// writer is preferred over waiting readers at a writer-release hand-off
// (the Solaris-policy priority rule).
func TestWriterPriorityOvertakesReaders(t *testing.T) {
	l := New()
	holder := l.NewProc()
	holder.Lock()

	// Queue two readers and a high-priority writer behind the holder.
	rIn := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		r := l.NewProc()
		go func() {
			r.RLock()
			rIn <- struct{}{}
			r.RUnlock()
		}()
	}
	time.Sleep(30 * time.Millisecond)
	hi := l.NewProc()
	hi.SetPriority(10)
	hiIn := make(chan struct{})
	go func() {
		hi.Lock()
		close(hiIn)
		time.Sleep(10 * time.Millisecond)
		hi.Unlock()
	}()
	time.Sleep(30 * time.Millisecond)

	holder.Unlock()
	// The high-priority writer must be admitted before the readers.
	select {
	case <-hiIn:
	case <-rIn:
		t.Fatal("reader admitted before a strictly-higher-priority writer")
	case <-time.After(20 * time.Second):
		t.Fatal("nobody admitted")
	}
	<-rIn
	<-rIn
}

// TestEqualPriorityWriterYieldsToReaders: with equal priorities the
// Solaris policy stands — a releasing writer hands to the reader group.
func TestEqualPriorityWriterYieldsToReaders(t *testing.T) {
	l := New()
	holder := l.NewProc()
	holder.Lock()
	rIn := make(chan struct{})
	r := l.NewProc()
	go func() {
		r.RLock()
		close(rIn)
		time.Sleep(10 * time.Millisecond)
		r.RUnlock()
	}()
	time.Sleep(30 * time.Millisecond)
	w := l.NewProc()
	wIn := make(chan struct{})
	go func() {
		w.Lock()
		close(wIn)
		w.Unlock()
	}()
	time.Sleep(30 * time.Millisecond)
	holder.Unlock()
	select {
	case <-rIn:
	case <-wIn:
		t.Fatal("equal-priority writer overtook waiting readers on writer release")
	case <-time.After(20 * time.Second):
		t.Fatal("nobody admitted")
	}
	<-wIn
}

func TestTryLockSemantics(t *testing.T) {
	l := New()
	p := l.NewProc()
	if !p.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	q := l.NewProc()
	if q.TryLock() {
		t.Fatal("TryLock on write-held lock succeeded")
	}
	if q.TryRLock() {
		t.Fatal("TryRLock on write-held lock succeeded")
	}
	p.Unlock()
	if !q.TryRLock() {
		t.Fatal("TryRLock on free lock failed")
	}
	r := l.NewProc()
	if !r.TryRLock() {
		t.Fatal("second TryRLock failed (readers share)")
	}
	if p.TryLock() {
		t.Fatal("TryLock with readers present succeeded")
	}
	q.RUnlock()
	r.RUnlock()
}

func TestTryRLockFailsWhileWriterWaits(t *testing.T) {
	l := New()
	holder := l.NewProc()
	holder.RLock()
	w := l.NewProc()
	wIn := make(chan struct{})
	go func() {
		w.Lock()
		close(wIn)
		w.Unlock()
	}()
	time.Sleep(30 * time.Millisecond) // writer queued: C-SNZI closed
	r := l.NewProc()
	if r.TryRLock() {
		t.Fatal("TryRLock succeeded while a writer was waiting")
	}
	holder.RUnlock()
	<-wIn
	if !r.TryRLock() {
		t.Fatal("TryRLock failed on a free lock")
	}
	r.RUnlock()
}
