package doctor

import (
	"strings"
	"testing"
	"time"

	"ollock/internal/metrics"
	"ollock/internal/obs"
)

// ruleSet collects the distinct rules fired over a window stream.
func ruleSet(findings []Finding) map[string]bool {
	out := map[string]bool{}
	for _, f := range findings {
		out[f.Rule] = true
	}
	return out
}

// TestScenariosFireTheirRule pins every scripted scenario to exactly
// the rule it demonstrates — and the healthy control to none.
func TestScenariosFireTheirRule(t *testing.T) {
	want := map[string]string{
		"healthy":               "",
		"writer-starvation":     "writer-starvation",
		"bias-thrash":           "bias-thrash",
		"park-storm":            "park-storm",
		"acquire-timeout-storm": "acquire-timeout-storm",
		"indicator-stall":       "indicator-stall",
	}
	if got := ScenarioNames(); len(got) != len(want) {
		t.Fatalf("scenario list %v does not cover expectations", got)
	}
	for name, rule := range want {
		ws, err := Scenario(name)
		if err != nil {
			t.Fatal(err)
		}
		findings := Diagnose(DefaultConfig(), ws)
		rules := ruleSet(findings)
		if rule == "" {
			if len(findings) != 0 {
				t.Errorf("healthy scenario produced findings: %v", findings)
			}
			continue
		}
		if !rules[rule] {
			t.Errorf("scenario %q did not fire %q (fired %v)", name, rule, rules)
		}
		for r := range rules {
			if r != rule {
				t.Errorf("scenario %q also fired unrelated rule %q", name, r)
			}
		}
		// Determinism: same scenario, same findings, every time.
		again := Diagnose(DefaultConfig(), ws)
		if len(again) != len(findings) {
			t.Errorf("scenario %q nondeterministic: %d then %d findings", name, len(findings), len(again))
		}
	}
	if _, err := Scenario("nope"); err == nil {
		t.Error("unknown scenario did not error")
	}
}

func TestWriterStarvationThresholds(t *testing.T) {
	cfg := DefaultConfig()
	base := Window{
		Lock:    "l",
		Seconds: 10,
		Deltas:  map[string]uint64{"csnzi.arrive.root": 1000},
		Hists: map[string]HistWindow{
			"goll.write.wait": {Count: 10, P99: cfg.WriteP99StarvationNs},
		},
	}
	if f := Diagnose(cfg, []Window{base}); len(f) != 1 || f[0].Rule != "writer-starvation" {
		t.Fatalf("at-threshold window did not fire: %v", f)
	}
	// Below the p99 threshold: quiet.
	w := base
	w.Hists = map[string]HistWindow{"goll.write.wait": {Count: 10, P99: cfg.WriteP99StarvationNs - 1}}
	if f := Diagnose(cfg, []Window{w}); len(f) != 0 {
		t.Fatalf("below-threshold window fired: %v", f)
	}
	// No reads: a slow writer without read pressure is not starvation.
	w = base
	w.Deltas = map[string]uint64{}
	if f := Diagnose(cfg, []Window{w}); len(f) != 0 {
		t.Fatalf("no-reads window fired: %v", f)
	}
	// Too few writes to trust the quantile.
	w = base
	w.Hists = map[string]HistWindow{"goll.write.wait": {Count: cfg.StarvationMinWrites - 1, P99: 1 << 40}}
	if f := Diagnose(cfg, []Window{w}); len(f) != 0 {
		t.Fatalf("min-writes guard did not hold: %v", f)
	}
	// ROLL overtakes sharpen the advice.
	w = base
	w.Deltas = map[string]uint64{"csnzi.arrive.root": 1000, "roll.overtake": 50}
	f := Diagnose(cfg, []Window{w})
	if len(f) != 1 || !strings.Contains(f[0].Advice, "FOLL") {
		t.Fatalf("overtake evidence did not adjust advice: %v", f)
	}
}

func TestBiasThrashThresholds(t *testing.T) {
	cfg := DefaultConfig()
	mk := func(revokes, reads uint64) Window {
		return Window{
			Lock:    "l",
			Seconds: 10,
			Deltas:  map[string]uint64{"bravo.revoke": revokes, "bravo.read.fast": reads},
		}
	}
	if f := Diagnose(cfg, []Window{mk(100, 1000)}); len(f) != 1 || f[0].Rule != "bias-thrash" {
		t.Fatalf("thrash window did not fire: %v", f)
	}
	// High ratio but below the absolute floor: quiet.
	if f := Diagnose(cfg, []Window{mk(cfg.ThrashMinRevokes-1, 10)}); len(f) != 0 {
		t.Fatalf("min-revokes guard did not hold: %v", f)
	}
	// Many revokes but dwarfed by reads: quiet.
	if f := Diagnose(cfg, []Window{mk(100, 1_000_000)}); len(f) != 0 {
		t.Fatalf("low-ratio window fired: %v", f)
	}
}

func TestParkStormThresholds(t *testing.T) {
	cfg := DefaultConfig()
	mk := func(parks, reads uint64) Window {
		return Window{
			Lock:    "l",
			Seconds: 10,
			Deltas:  map[string]uint64{"park.park": parks, "csnzi.arrive.root": reads},
		}
	}
	if f := Diagnose(cfg, []Window{mk(500, 100)}); len(f) != 1 || f[0].Rule != "park-storm" {
		t.Fatalf("storm window did not fire: %v", f)
	}
	if f := Diagnose(cfg, []Window{mk(cfg.StormMinParks-1, 1)}); len(f) != 0 {
		t.Fatalf("min-parks guard did not hold: %v", f)
	}
	if f := Diagnose(cfg, []Window{mk(500, 10_000)}); len(f) != 0 {
		t.Fatalf("low-ratio storm fired: %v", f)
	}
}

func TestAcquireTimeoutStormThresholds(t *testing.T) {
	cfg := DefaultConfig()
	mk := func(timeouts, cancels, reads uint64) Window {
		return Window{
			Lock:    "l",
			Seconds: 10,
			Deltas: map[string]uint64{
				"foll.timeout":      timeouts,
				"roll.cancel":       cancels,
				"csnzi.arrive.root": reads,
			},
		}
	}
	f := Diagnose(cfg, []Window{mk(400, 100, 500)})
	if len(f) != 1 || f[0].Rule != "acquire-timeout-storm" {
		t.Fatalf("storm window did not fire: %v", f)
	}
	if !strings.Contains(f[0].Summary, "400 timeouts, 100 cancels") {
		t.Errorf("summary does not split the causes: %q", f[0].Summary)
	}
	// Numerous but a small fraction of attempts: quiet.
	if f := Diagnose(cfg, []Window{mk(400, 100, 1_000_000)}); len(f) != 0 {
		t.Fatalf("low-ratio window fired: %v", f)
	}
	// High fraction but below the absolute floor: quiet.
	if f := Diagnose(cfg, []Window{mk(cfg.StormMinTimeouts-1, 0, 1)}); len(f) != 0 {
		t.Fatalf("min-timeouts guard did not hold: %v", f)
	}
	// No attempts at all: quiet (no divide-by-zero, no phantom ratio).
	if f := Diagnose(cfg, []Window{{Lock: "l", Seconds: 10, Deltas: map[string]uint64{}}}); len(f) != 0 {
		t.Fatalf("empty window fired: %v", f)
	}
}

func TestSignalsOf(t *testing.T) {
	w := Window{
		Seconds: 5,
		Deltas: map[string]uint64{
			"csnzi.arrive.root": 100,
			"csnzi.arrive.tree": 50,
			"bravo.read.fast":   850,
			"bravo.revoke":      10,
			"park.park":         220,
		},
		Hists: map[string]HistWindow{
			"goll.write.wait": {Count: 80},
			"roll.write.wait": {Count: 20},
		},
	}
	s := SignalsOf(w)
	if s.Reads != 1000 || s.Writes != 100 || s.Revocations != 10 || s.Parks != 220 {
		t.Fatalf("signals = %+v", s)
	}
	if s.RevocationsPerRead != 0.01 || s.ParksPerAcquire != 0.2 {
		t.Fatalf("ratios = %v / %v", s.RevocationsPerRead, s.ParksPerAcquire)
	}
}

// TestFromMetricsRoundTrip drives real obs blocks through the sampler
// and the converter and checks the doctor window carries exactly the
// in-scope names.
func TestFromMetricsRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	st := obs.New(obs.WithName("rt"), obs.WithScopes("csnzi", "goll"))
	reg.Register(st)
	clk := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s := metrics.New(reg, metrics.WithClock(func() time.Time { return clk }))
	s.SampleNow()
	st.Inc(obs.CSNZIArriveRoot, 0)
	st.Observe(obs.GOLLWriteWait, 0, 10_000)
	clk = clk.Add(2 * time.Second)
	s.SampleNow()

	ws := WindowsFrom(s, reg, time.Hour)
	if len(ws) != 1 {
		t.Fatalf("windows = %+v", ws)
	}
	w := ws[0]
	if w.Lock != "rt" || w.Seconds != 2 {
		t.Fatalf("window meta = %+v", w)
	}
	if w.Deltas["csnzi.arrive.root"] != 1 {
		t.Fatalf("delta missing: %+v", w.Deltas)
	}
	if _, ok := w.Deltas["bravo.revoke"]; ok {
		t.Fatal("out-of-scope counter present in doctor window")
	}
	h, ok := w.Hists["goll.write.wait"]
	if !ok || h.Count != 1 || h.Max != 10_000 {
		t.Fatalf("hist window = %+v (ok=%v)", h, ok)
	}
	if len(Diagnose(DefaultConfig(), ws)) != 0 {
		t.Fatal("tiny healthy workload produced findings")
	}
}

func TestReportRendering(t *testing.T) {
	if r := Report(nil); !strings.Contains(r, "no findings") {
		t.Fatalf("healthy report %q", r)
	}
	ws, _ := Scenario("park-storm")
	r := Report(Diagnose(DefaultConfig(), ws))
	for _, want := range []string{"[warning]", "park-storm", "parks.per.acquire", "advice:"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}
