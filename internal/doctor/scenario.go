package doctor

import (
	"fmt"
	"sort"
	"time"
)

// Scenarios are hand-scripted window streams, one per pathology the
// doctor diagnoses (plus a healthy control). They serve two masters:
// the test suite pins each rule to the exact windows that must (and
// must not) fire it, and `lockmon doctor -scenario NAME` demonstrates
// a diagnosis — and exercises the CI exit-code contract — without
// having to reproduce the pathology live on the host.

// scenarios maps name → window stream. Every stream describes 10
// seconds of one lock's life.
var scenarios = map[string]func() []Window{
	"healthy": func() []Window {
		// A busy, well-behaved GOLL+BRAVO lock: reads dominate, a few
		// writes complete quickly, one revocation, light parking.
		return []Window{{
			Lock:    "healthy",
			Seconds: 10,
			Deltas: map[string]uint64{
				"csnzi.arrive.root": 400_000,
				"csnzi.arrive.tree": 100_000,
				"bravo.read.fast":   1_500_000,
				"bravo.revoke":      1,
				"park.yield":        120,
				"park.park":         40,
				"park.unpark":       40,
			},
			Hists: map[string]HistWindow{
				"goll.write.wait":  {Count: 2_000, Sum: 2_000 * 40_000, P50: 12_000, P99: 900_000, Max: 3_000_000},
				"bravo.drain.wait": {Count: 1, Sum: 80_000, P50: 80_000, P99: 80_000, Max: 80_000},
				"park.wait":        {Count: 40, Sum: 40 * 200_000, P50: 150_000, P99: 800_000, Max: 1_200_000},
			},
		}}
	},
	"writer-starvation": func() []Window {
		// A ROLL lock under heavy read traffic: overtaking readers keep
		// writers waiting hundreds of milliseconds.
		return []Window{{
			Lock:    "starved",
			Seconds: 10,
			Deltas: map[string]uint64{
				"csnzi.arrive.root": 900_000,
				"csnzi.arrive.tree": 2_100_000,
				"roll.overtake":     48_000,
				"roll.read.enqueue": 1_200,
				"roll.read.join":    2_998_800,
			},
			Hists: map[string]HistWindow{
				"roll.write.wait": {
					Count: 25,
					Sum:   25 * 180_000_000,
					P50:   120_000_000,
					P99:   450_000_000,
					Max:   700_000_000,
				},
			},
		}}
	},
	"bias-thrash": func() []Window {
		// BRAVO under a mixed workload whose writers keep revoking the
		// bias: revocations run at 5% of reads and every re-arm is torn
		// down within the window.
		return []Window{{
			Lock:    "thrash",
			Seconds: 10,
			Deltas: map[string]uint64{
				"csnzi.arrive.root": 60_000,
				"bravo.read.fast":   40_000,
				"bravo.read.slow":   55_000,
				"bravo.bias.arm":    5_100,
				"bravo.revoke":      5_000,
			},
			Hists: map[string]HistWindow{
				"goll.write.wait":  {Count: 6_000, Sum: 6_000 * 2_000_000, P50: 1_500_000, P99: 9_000_000, Max: 20_000_000},
				"bravo.drain.wait": {Count: 5_000, Sum: 5_000 * 600_000, P50: 400_000, P99: 2_500_000, Max: 6_000_000},
			},
		}}
	},
	"park-storm": func() []Window {
		// Oversubscribed adaptive waiting: waiters park three times per
		// acquisition and spend most of the window descheduled.
		return []Window{{
			Lock:    "storm",
			Seconds: 10,
			Deltas: map[string]uint64{
				"csnzi.arrive.root": 5_000,
				"csnzi.arrive.tree": 3_000,
				"park.yield":        30_000,
				"park.park":         26_400,
				"park.unpark":       26_400,
			},
			Hists: map[string]HistWindow{
				"goll.write.wait": {Count: 800, Sum: 800 * 5_000_000, P50: 3_000_000, P99: 30_000_000, Max: 45_000_000},
				"park.wait":       {Count: 26_400, Sum: 26_400 * 2_500_000, P50: 1_800_000, P99: 12_000_000, Max: 30_000_000},
			},
		}}
	},
	"acquire-timeout-storm": func() []Window {
		// Timed acquisitions with deadlines well under the lock's
		// acquisition latency: most attempts expire in the queue and
		// roll their arrivals back instead of acquiring.
		return []Window{{
			Lock:    "impatient",
			Seconds: 10,
			Deltas: map[string]uint64{
				"csnzi.arrive.root": 8_000,
				"csnzi.arrive.tree": 2_000,
				"goll.timeout":      30_000,
				"goll.cancel":       6_000,
				"park.timeout":      20_000,
			},
			Hists: map[string]HistWindow{
				"goll.write.wait": {Count: 500, Sum: 500 * 2_000_000, P50: 1_500_000, P99: 4_000_000, Max: 9_000_000},
			},
		}}
	},
	"indicator-stall": func() []Window {
		// A watchdog-caught drain stall: the counters look quiet — the
		// lock is stuck, not busy.
		return []Window{{
			Lock:    "stalled",
			Seconds: 10,
			Deltas: map[string]uint64{
				"csnzi.arrive.root": 12,
				"csnzi.arrive.fail": 9_000,
			},
			Hists: map[string]HistWindow{
				"goll.write.wait": {Count: 4, Sum: 4 * 1_000_000, P50: 800_000, P99: 2_000_000, Max: 2_000_000},
			},
			Stalls: []StallInfo{{Phase: "drain_wait", Waited: 4 * time.Second}},
		}}
	},
}

// ScenarioNames returns the available scenario names, sorted.
func ScenarioNames() []string {
	out := make([]string, 0, len(scenarios))
	for n := range scenarios {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Scenario returns the scripted window stream for name.
func Scenario(name string) ([]Window, error) {
	fn, ok := scenarios[name]
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (have %v)", name, ScenarioNames())
	}
	return fn(), nil
}
