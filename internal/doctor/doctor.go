// Package doctor is the automated lock pathologist: a rule engine
// over sampled rate windows (internal/metrics) and watchdog signals
// (internal/trace) that turns raw counter deltas into typed findings
// — "this lock is starving its writers", "BRAVO is thrashing
// revocations", "the wait layer is park-storming" — each with the
// numeric evidence that fired the rule and the tuning advice the
// module's own knobs offer.
//
// The engine is deliberately a pure function over plain data:
// Diagnose(cfg, windows) has no clocks, no goroutines, and no
// dependence on the live lock — the same scripted window always
// yields the same findings. That is what makes the rules testable
// against exact counter streams from the deterministic simulator, and
// what lets `lockmon doctor -scenario` demonstrate each pathology
// without reproducing it on the host.
package doctor

import (
	"fmt"
	"time"
)

// Severity grades a finding.
type Severity uint8

const (
	Info Severity = iota
	Warning
	Critical
)

var sevNames = [...]string{"info", "warning", "critical"}

func (s Severity) String() string {
	if int(s) < len(sevNames) {
		return sevNames[s]
	}
	return "severity?"
}

// Evidence is one measured value that supported a finding.
type Evidence struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Finding is one diagnosed pathology on one lock.
type Finding struct {
	// Rule is the stable rule identifier ("writer-starvation",
	// "bias-thrash", "park-storm", "indicator-stall").
	Rule string `json:"rule"`
	// Lock is the registry key of the diagnosed lock.
	Lock     string     `json:"lock"`
	Severity Severity   `json:"-"`
	Summary  string     `json:"summary"`
	Evidence []Evidence `json:"evidence"`
	// Advice names the module knob that addresses the pathology.
	Advice string `json:"advice,omitempty"`
	// CallSite is the hottest contended call site attribution, present
	// when the window carried one (a call-site profiler was attached).
	CallSite string `json:"call_site,omitempty"`
}

// SeverityName surfaces the severity in JSON exports.
func (f Finding) SeverityName() string { return f.Severity.String() }

// HistWindow is a histogram's windowed view as plain numbers.
type HistWindow struct {
	Count uint64
	Sum   int64
	P50   int64
	P99   int64
	Max   int64
}

// StallInfo is one watchdog-reported stall, already reduced to data.
type StallInfo struct {
	Phase  string
	Waited time.Duration
}

// CallSite is a profiler-attributed call site, already reduced to data
// (the doctor stays a pure rule engine; the facade formats and attaches
// these from the call-site profiler's snapshot).
type CallSite struct {
	// Site is the rendered call site, e.g. "main.readHot (main.go:42)".
	Site string
	// Contentions and DelayNs are the site's rate-scaled contention
	// totals.
	Contentions uint64
	DelayNs     uint64
}

// Window is the doctor's input: one lock's activity over Seconds of
// wall time, as counter deltas and histogram windows keyed by the obs
// dotted names. Plain maps keep scripted scenarios and sim-harness
// streams trivial to construct.
type Window struct {
	Lock    string
	Seconds float64
	Deltas  map[string]uint64
	Hists   map[string]HistWindow
	Stalls  []StallInfo
	// HotSite is the lock's hottest contended call site, when a
	// call-site profiler was attached (see AttachHotSites).
	HotSite *CallSite
}

func (w Window) delta(name string) uint64 { return w.Deltas[name] }

// Signals are the derived per-window quantities the rules (and the
// bench harness) share: acquire mix and churn ratios.
type Signals struct {
	// Reads is the number of read acquisitions in the window: C-SNZI
	// arrivals (root + tree) plus BRAVO fast-path reads (which bypass
	// the indicator entirely).
	Reads uint64
	// Writes is the number of write acquisitions: the write-wait
	// histograms' counts (every write acquire samples exactly once).
	Writes uint64
	// Revocations is the BRAVO revocation count.
	Revocations uint64
	// Parks counts true descheduling events (park.park).
	Parks uint64
	// Timeouts and Cancels count abandoned timed acquisitions, split by
	// expiry cause (deadline vs. context), summed over the per-kind
	// counters.
	Timeouts uint64
	Cancels  uint64
	// RevocationsPerRead and ParksPerAcquire are the churn ratios the
	// thrash and storm rules threshold (0 when the denominator is 0).
	RevocationsPerRead float64
	ParksPerAcquire    float64
	// TimeoutsPerAttempt is the fraction of acquisition attempts
	// (successes plus abandonments) that were abandoned.
	TimeoutsPerAttempt float64
}

// writeWaitHists lists the per-kind write-acquire histograms; a
// window carries whichever its lock kind owns.
var writeWaitHists = []string{"goll.write.wait", "foll.write.wait", "roll.write.wait"}

// timeoutCounters and cancelCounters list the per-kind abandonment
// counters a timed acquisition bumps on expiry (deadline vs. context).
var (
	timeoutCounters = []string{"goll.timeout", "foll.timeout", "roll.timeout"}
	cancelCounters  = []string{"goll.cancel", "foll.cancel", "roll.cancel"}
)

// SignalsOf derives the shared quantities from one window.
func SignalsOf(w Window) Signals {
	var s Signals
	s.Reads = w.delta("csnzi.arrive.root") + w.delta("csnzi.arrive.tree") + w.delta("bravo.read.fast")
	for _, h := range writeWaitHists {
		s.Writes += w.Hists[h].Count
	}
	s.Revocations = w.delta("bravo.revoke")
	s.Parks = w.delta("park.park")
	for _, name := range timeoutCounters {
		s.Timeouts += w.delta(name)
	}
	for _, name := range cancelCounters {
		s.Cancels += w.delta(name)
	}
	if s.Reads > 0 {
		s.RevocationsPerRead = float64(s.Revocations) / float64(s.Reads)
	}
	if acq := s.Reads + s.Writes; acq > 0 {
		s.ParksPerAcquire = float64(s.Parks) / float64(acq)
	}
	if att := s.Reads + s.Writes + s.Timeouts + s.Cancels; att > 0 {
		s.TimeoutsPerAttempt = float64(s.Timeouts+s.Cancels) / float64(att)
	}
	return s
}

// Config holds the rule thresholds. The zero value is NOT usable;
// start from DefaultConfig.
type Config struct {
	// WriteP99StarvationNs fires writer-starvation when the windowed
	// write-acquire p99 meets it while reads keep flowing.
	WriteP99StarvationNs int64
	// StarvationMinWrites is the minimum write sample count before the
	// p99 is trusted (tiny windows produce noisy quantiles).
	StarvationMinWrites uint64
	// RevokesPerReadThrash and ThrashMinRevokes fire bias-thrash when
	// revocations are both frequent and numerous relative to reads.
	RevokesPerReadThrash float64
	ThrashMinRevokes     uint64
	// ParksPerAcquireStorm and StormMinParks fire park-storm when
	// waiters deschedule more often than they acquire.
	ParksPerAcquireStorm float64
	StormMinParks        uint64
	// TimeoutsPerAttemptStorm and StormMinTimeouts fire
	// acquire-timeout-storm when abandonments are both numerous and a
	// large fraction of all acquisition attempts.
	TimeoutsPerAttemptStorm float64
	StormMinTimeouts        uint64
}

// DefaultConfig returns the thresholds tuned for nanosecond-domain
// windows from real locks.
func DefaultConfig() Config {
	return Config{
		WriteP99StarvationNs: 50 * int64(time.Millisecond),
		StarvationMinWrites:  4,
		RevokesPerReadThrash: 0.02,
		ThrashMinRevokes:     8,
		ParksPerAcquireStorm: 1.0,
		StormMinParks:        64,

		TimeoutsPerAttemptStorm: 0.25,
		StormMinTimeouts:        32,
	}
}

// Diagnose runs every rule over every window and returns the findings
// in input order (windows outer, rules inner). It is pure: no clocks,
// no I/O, deterministic for identical inputs.
func Diagnose(cfg Config, windows []Window) []Finding {
	var out []Finding
	for _, w := range windows {
		sig := SignalsOf(w)
		out = append(out, ruleWriterStarvation(cfg, w, sig)...)
		out = append(out, ruleBiasThrash(cfg, w, sig)...)
		out = append(out, ruleParkStorm(cfg, w, sig)...)
		out = append(out, ruleAcquireTimeoutStorm(cfg, w, sig)...)
		out = append(out, ruleIndicatorStall(w)...)
	}
	return out
}

func ruleWriterStarvation(cfg Config, w Window, sig Signals) []Finding {
	if sig.Reads == 0 || sig.Writes < cfg.StarvationMinWrites {
		return nil
	}
	var worst HistWindow
	var worstName string
	for _, name := range writeWaitHists {
		if h, ok := w.Hists[name]; ok && h.Count > 0 && h.P99 > worst.P99 {
			worst, worstName = h, name
		}
	}
	if worstName == "" || worst.P99 < cfg.WriteP99StarvationNs {
		return nil
	}
	ev := []Evidence{
		{Name: worstName + ".p99", Value: float64(worst.P99), Unit: "ns"},
		{Name: "writes", Value: float64(sig.Writes), Unit: "count"},
		{Name: "read.rate", Value: float64(sig.Reads) / w.Seconds, Unit: "per_sec"},
	}
	advice := "prefer a writer-fair kind (GOLL/FOLL queue writers FIFO); if this lock is ROLL, reader overtaking is the likely cause"
	if ot := w.delta("roll.overtake"); ot > 0 {
		ev = append(ev, Evidence{Name: "roll.overtake", Value: float64(ot), Unit: "count"})
		advice = "ROLL reader preference is overtaking writers; switch to FOLL (writer-fair batching) for this workload"
	}
	f := Finding{
		Rule:     "writer-starvation",
		Lock:     w.Lock,
		Severity: Critical,
		Summary: fmt.Sprintf("write-acquire p99 %.1fms while reads flow at %.0f/s",
			float64(worst.P99)/1e6, float64(sig.Reads)/w.Seconds),
		Evidence: ev,
		Advice:   advice,
	}
	attachHotSite(&f, w)
	return []Finding{f}
}

func ruleBiasThrash(cfg Config, w Window, sig Signals) []Finding {
	if sig.Revocations < cfg.ThrashMinRevokes || sig.RevocationsPerRead < cfg.RevokesPerReadThrash {
		return nil
	}
	ev := []Evidence{
		{Name: "bravo.revoke", Value: float64(sig.Revocations), Unit: "count"},
		{Name: "revocations.per.read", Value: sig.RevocationsPerRead, Unit: "ratio"},
	}
	if h, ok := w.Hists["bravo.drain.wait"]; ok && h.Count > 0 {
		ev = append(ev, Evidence{Name: "bravo.drain.wait.p99", Value: float64(h.P99), Unit: "ns"})
	}
	f := Finding{
		Rule:     "bias-thrash",
		Lock:     w.Lock,
		Severity: Warning,
		Summary: fmt.Sprintf("BRAVO revoked bias %d times (%.3f per read) — writers keep tearing down the fast path",
			sig.Revocations, sig.RevocationsPerRead),
		Evidence: ev,
		Advice:   "raise WithBiasMultiplier to lengthen the inhibition window, or drop WithBias for write-heavy phases",
	}
	attachHotSite(&f, w)
	return []Finding{f}
}

func ruleParkStorm(cfg Config, w Window, sig Signals) []Finding {
	if sig.Parks < cfg.StormMinParks || sig.ParksPerAcquire < cfg.ParksPerAcquireStorm {
		return nil
	}
	ev := []Evidence{
		{Name: "park.park", Value: float64(sig.Parks), Unit: "count"},
		{Name: "parks.per.acquire", Value: sig.ParksPerAcquire, Unit: "ratio"},
	}
	if h, ok := w.Hists["park.wait"]; ok && h.Count > 0 {
		ev = append(ev, Evidence{Name: "park.wait.p50", Value: float64(h.P50), Unit: "ns"})
	}
	return []Finding{{
		Rule:     "park-storm",
		Lock:     w.Lock,
		Severity: Warning,
		Summary: fmt.Sprintf("%d parks in %.1fs (%.2f per acquire) — waiters deschedule faster than they acquire",
			sig.Parks, w.Seconds, sig.ParksPerAcquire),
		Evidence: ev,
		Advice:   "reduce oversubscription, or use WaitArray (TWA) so long-term waiters spin on private slots instead of churning the scheduler",
	}}
}

func ruleAcquireTimeoutStorm(cfg Config, w Window, sig Signals) []Finding {
	abandoned := sig.Timeouts + sig.Cancels
	if abandoned < cfg.StormMinTimeouts || sig.TimeoutsPerAttempt < cfg.TimeoutsPerAttemptStorm {
		return nil
	}
	ev := []Evidence{
		{Name: "acquire.timeouts", Value: float64(sig.Timeouts), Unit: "count"},
		{Name: "acquire.cancels", Value: float64(sig.Cancels), Unit: "count"},
		{Name: "timeouts.per.attempt", Value: sig.TimeoutsPerAttempt, Unit: "ratio"},
	}
	if pt := w.delta("park.timeout"); pt > 0 {
		ev = append(ev, Evidence{Name: "park.timeout", Value: float64(pt), Unit: "count"})
	}
	for _, name := range writeWaitHists {
		if h, ok := w.Hists[name]; ok && h.Count > 0 {
			ev = append(ev, Evidence{Name: name + ".p99", Value: float64(h.P99), Unit: "ns"})
			break
		}
	}
	f := Finding{
		Rule:     "acquire-timeout-storm",
		Lock:     w.Lock,
		Severity: Warning,
		Summary: fmt.Sprintf("%d of every 100 acquisition attempts abandoned (%d timeouts, %d cancels in %.1fs) — deadlines are shorter than the lock's acquisition latency",
			int(sig.TimeoutsPerAttempt*100), sig.Timeouts, sig.Cancels, w.Seconds),
		Evidence: ev,
		Advice:   "lengthen the deadlines (or stop passing near-expired contexts), shrink the critical sections that set the acquisition latency, or treat the timeouts as backpressure and shed load at the callers",
	}
	attachHotSite(&f, w)
	return []Finding{f}
}

// attachHotSite copies the window's profiler attribution, if any, onto
// a contention-shaped finding: the call site itself plus its delay as
// one more piece of evidence.
func attachHotSite(f *Finding, w Window) {
	if w.HotSite == nil {
		return
	}
	f.CallSite = w.HotSite.Site
	f.Evidence = append(f.Evidence,
		Evidence{Name: "hot.site.delay", Value: float64(w.HotSite.DelayNs), Unit: "ns"})
}

func ruleIndicatorStall(w Window) []Finding {
	var out []Finding
	for _, st := range w.Stalls {
		out = append(out, Finding{
			Rule:     "indicator-stall",
			Lock:     w.Lock,
			Severity: Critical,
			Summary: fmt.Sprintf("watchdog: %s stalled for %s — a reader or writer is stuck mid-acquisition",
				st.Phase, st.Waited),
			Evidence: []Evidence{{Name: "stall." + st.Phase, Value: st.Waited.Seconds(), Unit: "s"}},
			Advice:   "inspect the flight-recorder trace around the stalled proc; a drain that never completes usually means a lost unpark or a departed reader that never signaled",
		})
	}
	return out
}

// Report renders findings as the human text report cmd/lockmon
// prints. An empty slice renders the healthy line.
func Report(findings []Finding) string {
	if len(findings) == 0 {
		return "doctor: no findings — all sampled locks look healthy\n"
	}
	var b []byte
	for _, f := range findings {
		b = fmt.Appendf(b, "[%s] %s (lock=%s, rule=%s)\n", f.Severity, f.Summary, f.Lock, f.Rule)
		for _, e := range f.Evidence {
			b = fmt.Appendf(b, "    %-28s %.4g %s\n", e.Name, e.Value, e.Unit)
		}
		if f.CallSite != "" {
			b = fmt.Appendf(b, "    hottest contended call site: %s\n", f.CallSite)
		}
		if f.Advice != "" {
			b = fmt.Appendf(b, "    advice: %s\n", f.Advice)
		}
	}
	return string(b)
}
