package doctor

import (
	"time"

	"ollock/internal/metrics"
	"ollock/internal/obs"
	"ollock/internal/trace"
)

// FromMetrics reduces a sampler window to the doctor's plain-data
// shape. Only names the lock's scopes own appear in the maps (the
// array slots of out-of-scope events are zero anyway, but the maps
// are also what the report prints, and absent beats zero there). The
// registry supplies the scope information; a missing block falls back
// to including every nonzero slot.
func FromMetrics(w metrics.Window, reg *obs.Registry) Window {
	out := Window{
		Lock:    w.Key,
		Seconds: w.Seconds,
		Deltas:  map[string]uint64{},
		Hists:   map[string]HistWindow{},
	}
	includeEvent := func(e obs.Event) bool { return w.Deltas[e] != 0 }
	includeHist := func(h obs.HistID) bool { return w.Hists[h].Count() != 0 }
	if st := reg.Get(w.Key); st != nil {
		inE := map[obs.Event]bool{}
		inH := map[obs.HistID]bool{}
		st.EachCounter(func(e obs.Event, _ uint64) { inE[e] = true })
		st.EachHist(func(h obs.HistID, _ obs.Histogram) { inH[h] = true })
		includeEvent = func(e obs.Event) bool { return inE[e] }
		includeHist = func(h obs.HistID) bool { return inH[h] }
	}
	for e := obs.Event(0); e < obs.NumEvents; e++ {
		if includeEvent(e) {
			out.Deltas[e.String()] = w.Deltas[e]
		}
	}
	for h := obs.HistID(0); h < obs.NumHists; h++ {
		if !includeHist(h) {
			continue
		}
		hist := w.Hists[h]
		out.Hists[h.String()] = HistWindow{
			Count: hist.Count(),
			Sum:   hist.Sum(),
			P50:   hist.Quantile(0.5),
			P99:   hist.Quantile(0.99),
			Max:   hist.Max(),
		}
	}
	return out
}

// AttachStalls folds watchdog stalls into the window whose lock name
// matches (watchdog stalls carry the trace registration name, which
// the facade keeps equal to the stats name).
func AttachStalls(windows []Window, stalls []trace.Stall) []Window {
	for i := range windows {
		for _, st := range stalls {
			if st.Lock == windows[i].Lock {
				windows[i].Stalls = append(windows[i].Stalls, StallInfo{
					Phase:  st.Phase.String(),
					Waited: st.Waited,
				})
			}
		}
	}
	return windows
}

// AttachHotSites resolves each window's hottest contended call site
// through lookup (the facade binds it to the call-site profiler's
// snapshot, keyed by the lock's registered name — which the facade
// keeps equal to the stats name).
func AttachHotSites(windows []Window, lookup func(lock string) (CallSite, bool)) []Window {
	for i := range windows {
		if cs, ok := lookup(windows[i].Lock); ok {
			site := cs
			windows[i].HotSite = &site
		}
	}
	return windows
}

// WindowsFrom samples nothing itself: it reduces the sampler's
// retained rings to doctor windows spanning roughly the last d.
func WindowsFrom(s *metrics.Sampler, reg *obs.Registry, d time.Duration) []Window {
	mws := s.Windows(d)
	out := make([]Window, 0, len(mws))
	for _, mw := range mws {
		out = append(out, FromMetrics(mw, reg))
	}
	return out
}
