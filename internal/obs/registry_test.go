package obs

import (
	"reflect"
	"sync"
	"testing"
)

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	if key := r.Register(New()); key != "" {
		t.Fatalf("nil registry returned key %q", key)
	}
	if r.Len() != 0 || r.Names() != nil || r.Get("x") != nil {
		t.Fatal("nil registry not empty")
	}
	r.Each(func(string, *Stats) { t.Fatal("nil registry iterated") })

	r2 := NewRegistry()
	if key := r2.Register(nil); key != "" || r2.Len() != 0 {
		t.Fatalf("nil Stats registered as %q (len %d)", key, r2.Len())
	}
}

func TestRegistryKeysAndDedupe(t *testing.T) {
	r := NewRegistry()
	a := New(WithName("db"))
	b := New(WithName("db"))
	c := New()
	if key := r.Register(a); key != "db" {
		t.Fatalf("first db key %q", key)
	}
	if key := r.Register(b); key != "db#2" {
		t.Fatalf("second db key %q", key)
	}
	if key := r.Register(c); key != "lock" {
		t.Fatalf("unnamed key %q", key)
	}
	// Re-registering the same block is a no-op returning its key.
	if key := r.Register(a); key != "db" || r.Len() != 3 {
		t.Fatalf("re-register: key %q len %d", key, r.Len())
	}
	if got, want := r.Names(), []string{"db", "db#2", "lock"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if r.Get("db") != a || r.Get("db#2") != b || r.Get("lock") != c || r.Get("nope") != nil {
		t.Fatal("Get returned wrong blocks")
	}
}

func TestRegistryEachOrderAndIsolation(t *testing.T) {
	r := NewRegistry()
	blocks := []*Stats{New(WithName("a")), New(WithName("b")), New(WithName("c"))}
	for _, s := range blocks {
		r.Register(s)
	}
	var keys []string
	var seen []*Stats
	r.Each(func(key string, s *Stats) {
		keys = append(keys, key)
		seen = append(seen, s)
		// Registering mid-iteration must not deadlock or extend
		// the running iteration.
		r.Register(New(WithName("mid-" + key)))
	})
	if !reflect.DeepEqual(keys, []string{"a", "b", "c"}) {
		t.Fatalf("Each order %v", keys)
	}
	for i := range blocks {
		if seen[i] != blocks[i] {
			t.Fatalf("Each block %d mismatch", i)
		}
	}
	if r.Len() != 6 {
		t.Fatalf("Len after mid-iteration registers = %d, want 6", r.Len())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Register(New(WithName("con")))
				r.Each(func(key string, s *Stats) {
					if s == nil {
						t.Error("nil block in Each")
					}
				})
				r.Names()
				r.Len()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 8*50 {
		t.Fatalf("Len = %d, want %d", r.Len(), 8*50)
	}
	// Every key distinct.
	names := r.Names()
	set := map[string]bool{}
	for _, n := range names {
		if set[n] {
			t.Fatalf("duplicate key %q", n)
		}
		set[n] = true
	}
}
