package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramQuantileEmpty pins the empty-histogram contract: every
// quantile (including the clamped extremes) is 0, not a bucket
// midpoint.
func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{-1, 0, 0.5, 0.999, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
}

// TestHistogramQuantileSingleBucket puts every sample in one log
// bucket: every quantile must land in that bucket, clamped by the
// exact maximum (which can be below the bucket midpoint).
func TestHistogramQuantileSingleBucket(t *testing.T) {
	var h Histogram
	// 50 samples of 130, all in bucket [128,255]; midpoint is 191 but
	// the exact max (130) clamps every estimate.
	for i := 0; i < 50; i++ {
		h.Record(130)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 130 {
			t.Errorf("Quantile(%v) = %d, want 130 (midpoint clamped by exact max)", q, got)
		}
	}
}

// TestHistogramQuantileMaxBucketSaturation records samples in the top
// buckets, where the midpoint arithmetic would overflow: bucketMid
// saturates to MaxInt64 and the exact max clamps the estimate, so the
// reported quantile never overflows or exceeds an observed value.
func TestHistogramQuantileMaxBucketSaturation(t *testing.T) {
	var h Histogram
	h.Record(math.MaxInt64)
	h.Record(math.MaxInt64 - 1)
	h.Record(int64(1) << 62)
	for _, q := range []float64{0.5, 1} {
		got := h.Quantile(q)
		if got < 0 {
			t.Fatalf("Quantile(%v) = %d: midpoint arithmetic overflowed", q, got)
		}
		if got > math.MaxInt64 {
			t.Fatalf("Quantile(%v) = %d exceeds MaxInt64", q, got)
		}
	}
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Errorf("Quantile(1) = %d, want exact max MaxInt64", got)
	}
	if got := h.Quantile(0.01); got != int64(1)<<62 {
		// Bucket 63's midpoint saturates to MaxInt64; the clamp against
		// max keeps it, but the lowest sample's bucket is still 63 —
		// its midpoint saturates too, clamped to the histogram max...
		// which is MaxInt64. Accept either the saturated value or the
		// clamp; what matters is no overflow.
		if got != math.MaxInt64 {
			t.Errorf("Quantile(0.01) = %d, want a saturated, non-overflowed estimate", got)
		}
	}
}

// TestAddScopeSnapshotRace hammers AddScope against concurrent
// Snapshot and Scopes calls. Before the scope set was guarded, this
// was a map write racing map reads — run under -race this test fails
// on the old code.
func TestAddScopeSnapshotRace(t *testing.T) {
	s := New(WithName("race"), WithStripes(2), WithScopes("csnzi"))
	const iters = 200
	scopes := []string{"goll", "foll", "roll", "bravo"}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s.AddScope(scopes[i%len(scopes)])
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			sn := s.Snapshot()
			if _, ok := sn.Counters["csnzi.arrive.root"]; !ok {
				t.Error("csnzi scope vanished from snapshot")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = s.Scopes()
			s.Inc(CSNZIArriveRoot, i)
		}
	}()
	wg.Wait()
	got := s.Scopes()
	want := []string{"bravo", "csnzi", "foll", "goll", "roll"}
	if len(got) != len(want) {
		t.Fatalf("Scopes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scopes() = %v, want %v", got, want)
		}
	}
}
