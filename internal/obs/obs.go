// Package obs is the sharded zero-overhead-off instrumentation
// substrate for the lock stack: striped, cache-line-padded event
// counters and log-bucketed latency histograms that make the paper's
// mechanisms (C-SNZI tree arrivals, FOLL reader-group sharing, ROLL
// overtakes, BRAVO bias dynamics) observable in a live lock without
// destroying the scalability being measured.
//
// The design applies the paper's own trick to the measurement layer:
// each counter is a stripe of per-slot padded cells (internal/atomicx
// PaddedUint64), hashed by the caller's per-goroutine proc id, so
// concurrent increments land on disjoint cache lines and are only
// merged when a Snapshot is taken. An uninstrumented lock holds a nil
// *Stats; every hot-path method is a nil-guarded thin wrapper small
// enough for the compiler to inline, so the stats-off cost is one
// predictable branch and zero allocations:
//
//	var s *obs.Stats            // nil: instrumentation off
//	s.Inc(obs.CSNZIArriveRoot, id)  // compiles to a compare + branch
//
// Counter identities are a closed enum (Event) with stable dotted
// string names ("csnzi.arrive.root", "bravo.revoke", ...). The
// simulator ports (internal/sim/simlock) share the same enum, so real
// and simulated runs emit comparable Snapshots by construction; a test
// asserts the name sets match per lock kind.
//
// A Stats is created with the scopes (name prefixes) relevant to one
// lock kind; Snapshot reports exactly the counters in scope, zero or
// not, so "which counters can this lock emit" is part of the contract.
//
// Striping keeps concurrent writers apart, but each Inc is still an
// atomic RMW — a measurable tax on read paths that are themselves only
// a few atomics long. Hot paths therefore count through a per-proc
// Local (see local.go): plain stores into a proc-owned buffer, folded
// into the striped cells every FlushEvery events, at the documented
// cost of bounded Snapshot staleness. The deterministic simulator
// ports keep using Stats directly so their counters stay exact.
package obs

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ollock/internal/atomicx"
)

// Event identifies one countable lock-stack event. The enum is closed:
// every event any lock can emit is declared here, which is what lets
// real and simulated locks share counter names.
type Event uint8

// Lock-stack events. The glossary in ALGORITHMS.md maps each to the
// paper mechanism it witnesses.
const (
	// CSNZIArriveRoot counts reader arrivals taken directly at the
	// C-SNZI root (the §5.1 uncontended fast path).
	CSNZIArriveRoot Event = iota
	// CSNZIArriveTree counts reader arrivals diverted to the leaf tree
	// (the shouldArriveAtTree policy firing, §2.2/§5.1).
	CSNZIArriveTree
	// CSNZIArriveFail counts arrivals that failed because the C-SNZI
	// was closed (reader met a writer, Figure 1 semantics).
	CSNZIArriveFail
	// CSNZICASRetry counts failed root CASes inside Arrive (the
	// contention signal that drives the arrival policy).
	CSNZICASRetry
	// CSNZIClose counts successful open->closed transitions (writer
	// acquisitions and FOLL/ROLL group shutdowns).
	CSNZIClose
	// CSNZIOpen counts closed->open transitions, including
	// OpenWithArrivals hand-offs.
	CSNZIOpen

	// GOLLHandoff counts direct ownership hand-offs to a waiting batch
	// (releaser-wakes-owner, §3.1).
	GOLLHandoff
	// GOLLUpgradeAttempt counts TryUpgrade calls (§3.2.1).
	GOLLUpgradeAttempt
	// GOLLUpgradeFail counts TryUpgrade calls that failed (another
	// arrival existed).
	GOLLUpgradeFail
	// GOLLDowngrade counts write->read downgrades.
	GOLLDowngrade
	// GOLLTimeout counts GOLL acquisitions abandoned on deadline
	// expiry (RLockFor/LockFor returning false).
	GOLLTimeout
	// GOLLCancel counts GOLL acquisitions abandoned on context
	// cancellation (RLockCtx/LockCtx observing ctx.Done).
	GOLLCancel

	// FOLLReadJoin counts readers that joined an existing reader
	// node's group (the C-SNZI sharing of §4.2: no tail write).
	FOLLReadJoin
	// FOLLReadEnqueue counts readers that enqueued a fresh reader node
	// (first reader of a group).
	FOLLReadEnqueue
	// FOLLNodeRecycle counts reader nodes returned to the ring pool
	// (§4.2.1 availability accounting).
	FOLLNodeRecycle
	// FOLLTimeout counts FOLL acquisitions abandoned on deadline
	// expiry.
	FOLLTimeout
	// FOLLCancel counts FOLL acquisitions abandoned on context
	// cancellation.
	FOLLCancel

	// ROLLReadJoin counts readers that joined the reader node at the
	// tail (FOLL-style join, no overtaking involved).
	ROLLReadJoin
	// ROLLReadEnqueue counts readers that enqueued a fresh reader
	// node.
	ROLLReadEnqueue
	// ROLLNodeRecycle counts reader nodes returned to the ring pool.
	ROLLNodeRecycle
	// ROLLOvertake counts readers that joined a *waiting* group,
	// overtaking the writers queued between it and the tail (§4.3).
	ROLLOvertake
	// ROLLHintHit counts reads that joined via the lastReader hint
	// without any backward search (§4.3's optimization).
	ROLLHintHit
	// ROLLHintMiss counts reads that found a stale hint (set but not
	// joinable) and had to fall back to the search/enqueue path.
	ROLLHintMiss
	// ROLLTimeout counts ROLL acquisitions abandoned on deadline
	// expiry.
	ROLLTimeout
	// ROLLCancel counts ROLL acquisitions abandoned on context
	// cancellation.
	ROLLCancel

	// BravoFastRead counts read acquisitions that took the biased
	// visible-readers fast path.
	BravoFastRead
	// BravoSlowRead counts read acquisitions that went through the
	// underlying lock (bias off, or publish failed).
	BravoSlowRead
	// BravoBiasArm counts bias re-arms by the slow-path adaptive
	// policy.
	BravoBiasArm
	// BravoRevoke counts writer-side bias revocations (table scan +
	// reader drain).
	BravoRevoke
	// BravoSlotCollision counts fast-path attempts whose memoized slot
	// was occupied, forcing a probe (table pressure signal).
	BravoSlotCollision
	// BravoRevokeAbort counts revocations abandoned on deadline expiry:
	// the writer re-armed the bias, released the underlying lock, and
	// reported failure (graceful degradation under slow readers).
	BravoRevokeAbort

	// ParkYield counts waits that exhausted their hot-spin budget and
	// escalated to the Gosched ladder (one per wait episode).
	ParkYield
	// ParkPark counts waiters that parked outright — a channel park
	// under the adaptive policy, or a timed-sleep ladder at a
	// condition-wait site.
	ParkPark
	// ParkUnpark counts parked waiters woken by a grant.
	ParkUnpark
	// ParkArrayWait counts waits that moved onto a private waiting-
	// array slot (TWA long-term waiting; one per wait episode).
	ParkArrayWait
	// ParkTimeout counts timed waits that expired before the grant —
	// the park layer's view of every abandoned acquisition above it.
	ParkTimeout

	// NumEvents is the number of declared events (not itself an
	// event).
	NumEvents
)

var eventNames = [NumEvents]string{
	CSNZIArriveRoot:    "csnzi.arrive.root",
	CSNZIArriveTree:    "csnzi.arrive.tree",
	CSNZIArriveFail:    "csnzi.arrive.fail",
	CSNZICASRetry:      "csnzi.cas.retry",
	CSNZIClose:         "csnzi.close",
	CSNZIOpen:          "csnzi.open",
	GOLLHandoff:        "goll.handoff",
	GOLLUpgradeAttempt: "goll.upgrade.attempt",
	GOLLUpgradeFail:    "goll.upgrade.fail",
	GOLLDowngrade:      "goll.downgrade",
	GOLLTimeout:        "goll.timeout",
	GOLLCancel:         "goll.cancel",
	FOLLReadJoin:       "foll.read.join",
	FOLLReadEnqueue:    "foll.read.enqueue",
	FOLLNodeRecycle:    "foll.node.recycle",
	FOLLTimeout:        "foll.timeout",
	FOLLCancel:         "foll.cancel",
	ROLLReadJoin:       "roll.read.join",
	ROLLReadEnqueue:    "roll.read.enqueue",
	ROLLNodeRecycle:    "roll.node.recycle",
	ROLLOvertake:       "roll.overtake",
	ROLLHintHit:        "roll.hint.hit",
	ROLLHintMiss:       "roll.hint.miss",
	ROLLTimeout:        "roll.timeout",
	ROLLCancel:         "roll.cancel",
	BravoFastRead:      "bravo.read.fast",
	BravoSlowRead:      "bravo.read.slow",
	BravoBiasArm:       "bravo.bias.arm",
	BravoRevoke:        "bravo.revoke",
	BravoSlotCollision: "bravo.slot.collision",
	BravoRevokeAbort:   "bravo.revoke.abort",
	ParkYield:          "park.yield",
	ParkPark:           "park.park",
	ParkUnpark:         "park.unpark",
	ParkArrayWait:      "park.array.wait",
	ParkTimeout:        "park.timeout",
}

// String returns the event's stable dotted name.
func (e Event) String() string {
	if e < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("obs.Event(%d)", uint8(e))
}

// Scope returns the event's scope — the dotted name's first segment
// ("csnzi", "goll", "foll", "roll", "bravo").
func (e Event) Scope() string {
	name := e.String()
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// HistID identifies one latency histogram.
type HistID uint8

// Histograms. Real locks record nanoseconds; the simulator ports
// record virtual cycles — same buckets, different unit (the Snapshot
// carries only the shape).
const (
	// BravoDrainWait is the writer-side revocation drain wait: the
	// time one revocation spent scanning the visible-readers table and
	// waiting for published readers to leave.
	BravoDrainWait HistID = iota

	// GOLLWriteWait is the full write-acquire latency of the GOLL lock
	// (call entry to ownership), recorded once per write acquisition.
	// The metrics sampler's writer-starvation rule watches its windowed
	// p99.
	GOLLWriteWait
	// FOLLWriteWait is the FOLL write-acquire latency.
	FOLLWriteWait
	// ROLLWriteWait is the ROLL write-acquire latency — the histogram
	// that quantifies what reader preference costs writers.
	ROLLWriteWait

	// ParkWait is the time a waiter spent descheduled: from the park
	// decision (channel park or timed-sleep ladder) to the wake. The
	// park.park counter says how often waiters parked; this says for
	// how long — the pair separates a park storm (huge count, tiny
	// waits) from honest long waits.
	ParkWait

	// NumHists is the number of declared histograms.
	NumHists
)

var histNames = [NumHists]string{
	BravoDrainWait: "bravo.drain.wait",
	GOLLWriteWait:  "goll.write.wait",
	FOLLWriteWait:  "foll.write.wait",
	ROLLWriteWait:  "roll.write.wait",
	ParkWait:       "park.wait",
}

// String returns the histogram's stable dotted name.
func (h HistID) String() string {
	if h < NumHists {
		return histNames[h]
	}
	return fmt.Sprintf("obs.HistID(%d)", uint8(h))
}

// Scope returns the histogram's scope (first name segment).
func (h HistID) Scope() string {
	name := h.String()
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// maxStripes caps the stripe count; beyond ~32 slots the merge cost
// and footprint grow without contention benefit (slots are hashed by
// proc id, and collisions only cost sharing of one padded line).
const maxStripes = 32

// Stats is one lock's instrumentation block. A nil *Stats is valid
// and means "instrumentation off": every method on a nil receiver is
// an inlined no-op. Create with New.
type Stats struct {
	name    string
	stripes int
	mask    uint32
	scopeMu sync.RWMutex
	scopes  map[string]bool // nil = every scope; guarded by scopeMu
	cells   []atomicx.PaddedUint64
	hists   []histStripe
}

// histStripe is one stripe of every declared histogram: NumHists
// bucket arrays padded at both ends so stripes never share a cache
// line. Buckets within one stripe may share lines — by design, a
// stripe has a single dominant writer.
type histStripe struct {
	_ atomicx.Pad
	h [NumHists]stripeHist
	_ atomicx.Pad
}

// Option configures New.
type Option func(*Stats)

// WithName sets the stats block's name, used by Snapshot and as the
// expvar key suffix ("ollock.<name>").
func WithName(name string) Option { return func(s *Stats) { s.name = name } }

// WithStripes sets the number of counter stripes (rounded up to a
// power of two, capped). The default suits the host's parallelism;
// the deterministic simulator uses 1.
func WithStripes(n int) Option { return func(s *Stats) { s.stripes = n } }

// WithScopes restricts the Snapshot to counters whose scope (first
// name segment) is listed. An empty list reports every counter. The
// scopes define which counters a lock kind can emit, so two stats
// blocks with equal scopes produce Snapshots with equal name sets.
func WithScopes(scopes ...string) Option {
	return func(s *Stats) {
		if len(scopes) == 0 {
			return
		}
		s.scopes = make(map[string]bool, len(scopes))
		for _, sc := range scopes {
			s.scopes[sc] = true
		}
	}
}

// New returns an enabled Stats block. All counters start at zero.
func New(opts ...Option) *Stats {
	s := &Stats{stripes: defaultStripes()}
	for _, o := range opts {
		o(s)
	}
	s.stripes = clampPow2(s.stripes)
	s.mask = uint32(s.stripes - 1)
	s.cells = make([]atomicx.PaddedUint64, int(NumEvents)*s.stripes)
	s.hists = make([]histStripe, s.stripes)
	return s
}

func clampPow2(n int) int {
	if n < 1 {
		n = 1
	}
	if n > maxStripes {
		n = maxStripes
	}
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// Enabled reports whether instrumentation is on. Use it to gate
// instrumentation whose inputs are themselves expensive to gather
// (e.g. a time.Now pair around a drain wait).
func (s *Stats) Enabled() bool { return s != nil }

// Name returns the stats block's name ("" if unnamed). Nil-safe.
func (s *Stats) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Inc adds 1 to the event's counter on the caller's stripe. id is the
// caller's per-goroutine proc id (any stable small integer); distinct
// ids land on distinct padded cells. A nil receiver is a no-op — this
// wrapper stays within the inlining budget, so the stats-off hot path
// pays one branch.
func (s *Stats) Inc(e Event, id int) {
	if s == nil {
		return
	}
	s.cells[int(e)*s.stripes+int(uint32(id)&s.mask)].Add(1)
}

// Add adds delta to the event's counter on the caller's stripe. Nil
// receivers are no-ops.
func (s *Stats) Add(e Event, id int, delta uint64) {
	if s == nil {
		return
	}
	s.cells[int(e)*s.stripes+int(uint32(id)&s.mask)].Add(delta)
}

// Observe records one latency sample (nanoseconds for real locks,
// virtual cycles for simulated ones) into the histogram's stripe for
// the caller's proc id. Nil receivers are no-ops.
func (s *Stats) Observe(h HistID, id int, v int64) {
	if s == nil {
		return
	}
	s.observe(h, id, v)
}

//go:noinline
func (s *Stats) observe(h HistID, id int, v int64) {
	s.hists[int(uint32(id)&s.mask)].h[h].record(v)
}

// Count merges the event's stripes into one total. Nil-safe.
func (s *Stats) Count(e Event) uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for i := 0; i < s.stripes; i++ {
		total += s.cells[int(e)*s.stripes+i].Load()
	}
	return total
}

// Hist merges the histogram's stripes into one Histogram. Nil
// receivers return an empty histogram.
func (s *Stats) Hist(h HistID) Histogram {
	var out Histogram
	if s == nil {
		return out
	}
	for i := range s.hists {
		s.hists[i].h[h].mergeInto(&out)
	}
	return out
}

// inScope reports whether a counter scope is reported by Snapshot.
// Only the snapshot/report paths consult the scope set, so the RWMutex
// here costs nothing on the lock hot path.
func (s *Stats) inScope(scope string) bool {
	s.scopeMu.RLock()
	ok := s.scopes == nil || s.scopes[scope]
	s.scopeMu.RUnlock()
	return ok
}

// AddScope widens the snapshot scope set. Used by wrappers that adopt
// an existing block (e.g. the BRAVO wrapper over an OLL lock); a nil
// or unrestricted block is left as is. Safe concurrently with
// Snapshot: the scope set is guarded, so a wrapper constructed while
// another goroutine snapshots (e.g. an expvar poll) does not race.
func (s *Stats) AddScope(scope string) {
	if s == nil {
		return
	}
	s.scopeMu.Lock()
	if s.scopes != nil {
		s.scopes[scope] = true
	}
	s.scopeMu.Unlock()
}

// Scopes returns the sorted scope list ("" receiver or unrestricted
// block returns nil, meaning all scopes).
func (s *Stats) Scopes() []string {
	if s == nil {
		return nil
	}
	s.scopeMu.RLock()
	defer s.scopeMu.RUnlock()
	if s.scopes == nil {
		return nil
	}
	out := make([]string, 0, len(s.scopes))
	for sc := range s.scopes {
		out = append(out, sc)
	}
	sort.Strings(out)
	return out
}

// HistSnapshot is the merged, immutable view of one histogram.
type HistSnapshot struct {
	Count uint64 `json:"count"`
	// Sum is the exact sum of recorded samples (Sum/Count is the mean;
	// the Prometheus exporter emits it as the summary's _sum sample).
	Sum int64 `json:"sum"`
	// P50/P90/P99 are log-bucket midpoint estimates; Max is exact.
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// Snapshot is the merged, immutable view of a Stats block: every
// in-scope counter by name (zero or not — the name set is the lock
// kind's contract), and every in-scope histogram summarized.
type Snapshot struct {
	Name     string                  `json:"name,omitempty"`
	Counters map[string]uint64       `json:"counters"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// Snapshot merges all stripes into an immutable view. It is safe to
// call concurrently with ongoing increments; the result is a
// consistent-enough point-in-time merge (counters are read one cell
// at a time, as in any striped counter design). A nil receiver yields
// an empty snapshot.
func (s *Stats) Snapshot() Snapshot {
	out := Snapshot{Counters: map[string]uint64{}}
	if s == nil {
		return out
	}
	out.Name = s.name
	for e := Event(0); e < NumEvents; e++ {
		if s.inScope(e.Scope()) {
			out.Counters[e.String()] = s.Count(e)
		}
	}
	for h := HistID(0); h < NumHists; h++ {
		if !s.inScope(h.Scope()) {
			continue
		}
		m := s.Hist(h)
		if out.Hists == nil {
			out.Hists = map[string]HistSnapshot{}
		}
		out.Hists[h.String()] = HistSnapshot{
			Count: m.Count(),
			Sum:   m.Sum(),
			P50:   m.Quantile(0.50),
			P90:   m.Quantile(0.90),
			P99:   m.Quantile(0.99),
			Max:   m.Max(),
		}
	}
	return out
}

// Counter returns the snapshot's value for an event name, zero if
// absent.
func (sn Snapshot) Counter(name string) uint64 { return sn.Counters[name] }

// Names returns the snapshot's counter names, sorted.
func (sn Snapshot) Names() []string {
	out := make([]string, 0, len(sn.Counters))
	for k := range sn.Counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- expvar publishing ---

var (
	pubMu sync.Mutex
	// pubs maps expvar key -> current stats block. Re-publishing a
	// name (a fresh lock with the same name) swaps the block behind
	// the already-registered expvar.Func, since expvar forbids
	// duplicate registration.
	pubs = map[string]*Stats{}
)

// PublishExpvar registers the stats block under the expvar key
// "ollock.<name>", so live snapshots appear on /debug/vars alongside
// the runtime's. Publishing a second block under the same name
// atomically replaces the first (the expvar entry reflects the newest
// lock). Blocks without a name are not published.
func (s *Stats) PublishExpvar() {
	if s == nil || s.name == "" {
		return
	}
	key := "ollock." + s.name
	pubMu.Lock()
	defer pubMu.Unlock()
	if _, ok := pubs[key]; !ok {
		expvar.Publish(key, expvar.Func(func() any {
			pubMu.Lock()
			st := pubs[key]
			pubMu.Unlock()
			return st.Snapshot()
		}))
	}
	pubs[key] = s
}

// EachCounter calls fn for every in-scope event with its current
// merged total (zero or not — the in-scope set is the lock kind's
// contract, exactly as in Snapshot). Unlike Snapshot it allocates
// nothing, which is what lets the metrics sampler poll every
// registered block at a fixed period without map churn. Nil-safe.
func (s *Stats) EachCounter(fn func(e Event, total uint64)) {
	if s == nil {
		return
	}
	for e := Event(0); e < NumEvents; e++ {
		if s.inScope(e.Scope()) {
			fn(e, s.Count(e))
		}
	}
}

// EachHist calls fn for every in-scope histogram with its merged
// point-in-time copy. Nil-safe.
func (s *Stats) EachHist(fn func(h HistID, hist Histogram)) {
	if s == nil {
		return
	}
	for h := HistID(0); h < NumHists; h++ {
		if s.inScope(h.Scope()) {
			fn(h, s.Hist(h))
		}
	}
}

// AllEventNames returns the dotted names of every declared event,
// sorted — the counter-name universe shared by real and simulated
// locks.
func AllEventNames() []string {
	out := make([]string, 0, NumEvents)
	for e := Event(0); e < NumEvents; e++ {
		out = append(out, e.String())
	}
	sort.Strings(out)
	return out
}

// AllHistNames returns the dotted names of every declared histogram,
// sorted.
func AllHistNames() []string {
	out := make([]string, 0, NumHists)
	for h := HistID(0); h < NumHists; h++ {
		out = append(out, h.String())
	}
	sort.Strings(out)
	return out
}
