package obs

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHistDeltaMatchesInfix is the monotonic-delta property test: for
// a cumulative histogram observed at two points, DeltaFrom must equal
// the histogram of exactly the samples recorded in between.
func TestHistDeltaMatchesInfix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var cum, infix Histogram
		n1, n2 := rng.Intn(200), rng.Intn(200)
		for i := 0; i < n1; i++ {
			cum.Record(rng.Int63n(1 << 40))
		}
		prev := cum // copy at the window start
		for i := 0; i < n2; i++ {
			v := rng.Int63n(1 << 40)
			cum.Record(v)
			infix.Record(v)
		}
		d := cum.DeltaFrom(&prev)
		if d.Count() != infix.Count() || d.Sum() != infix.Sum() {
			t.Fatalf("trial %d: delta count/sum %d/%d, want %d/%d",
				trial, d.Count(), d.Sum(), infix.Count(), infix.Sum())
		}
		if d.Buckets() != infix.Buckets() {
			t.Fatalf("trial %d: delta buckets diverge from infix", trial)
		}
		// Delta max is the cumulative max by contract.
		if d.Max() != cum.Max() {
			t.Fatalf("trial %d: delta max %d, want cumulative %d", trial, d.Max(), cum.Max())
		}
		// Quantiles of the window must come from window buckets:
		// p100 midpoint cannot exceed the clamped cumulative max.
		if q := d.Quantile(1); q > cum.Max() {
			t.Fatalf("trial %d: delta p100 %d > max %d", trial, q, cum.Max())
		}
	}
}

func TestHistDeltaClampsMismatch(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	b.Record(10)
	b.Record(20)
	d := a.DeltaFrom(&b) // "newer" has fewer samples: degenerate pair
	if d.Count() != 0 || d.Sum() != 0 {
		t.Fatalf("mismatched delta not clamped: count %d sum %d", d.Count(), d.Sum())
	}
	for i, c := range d.Buckets() {
		if c != 0 {
			t.Fatalf("bucket %d = %d after clamp", i, c)
		}
	}
}

// TestHistSnapshotWhileWriting hammers Stats.Hist (the sampler's read
// path) against concurrent Observe calls and checks every snapshot is
// internally consistent and monotonic: counts/sums never run
// backwards between reads, bucket totals always equal the count, and
// the sum is never ahead of what has been handed out.
func TestHistSnapshotWhileWriting(t *testing.T) {
	s := New(WithStripes(8))
	const writers = 8
	const perWriter = 20000
	var issued atomic.Uint64 // samples fully recorded so far

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Observe(BravoDrainWait, id, 100)
				issued.Add(1)
			}
		}(w)
	}

	var rdr sync.WaitGroup
	rdr.Add(1)
	go func() {
		defer rdr.Done()
		var prev Histogram
		for {
			lo := issued.Load()
			h := s.Hist(BravoDrainWait)
			hi := issued.Load()
			var bucketTotal uint64
			for _, c := range h.Buckets() {
				bucketTotal += c
			}
			// Each sample's bucket/count/sum updates are separate
			// atomics, so a mid-record read may see them staggered —
			// but never outside [lo-writers, hi+writers] and never
			// behind a previous read.
			if bucketTotal > hi+writers || h.Count() > hi+writers {
				t.Errorf("read ahead of issue: buckets %d count %d issued %d", bucketTotal, h.Count(), hi)
				return
			}
			if h.Count()+writers < lo || bucketTotal+writers < lo {
				t.Errorf("read behind issue floor: buckets %d count %d issued>=%d", bucketTotal, h.Count(), lo)
				return
			}
			if h.Count() < prev.Count() || h.Sum() < prev.Sum() || h.Max() < prev.Max() {
				t.Errorf("snapshot ran backwards: %d/%d/%d after %d/%d/%d",
					h.Count(), h.Sum(), h.Max(), prev.Count(), prev.Sum(), prev.Max())
				return
			}
			d := h.DeltaFrom(&prev)
			if d.Count() > h.Count() {
				t.Errorf("delta count %d exceeds cumulative %d", d.Count(), h.Count())
				return
			}
			prev = h
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	wg.Wait()
	close(stop)
	rdr.Wait()

	final := s.Hist(BravoDrainWait)
	want := uint64(writers * perWriter)
	if final.Count() != want || final.Sum() != int64(want)*100 {
		t.Fatalf("final count/sum %d/%d, want %d/%d", final.Count(), final.Sum(), want, int64(want)*100)
	}
}
