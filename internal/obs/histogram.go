package obs

import (
	"math"
	"math/bits"
	"runtime"
	"sync/atomic"
)

// NumBuckets is the number of log2 buckets: bucket 0 holds values
// <= 0, bucket b (1..64) holds values in [2^(b-1), 2^b).
const NumBuckets = 65

// bucketOf maps a sample to its log2 bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketMid returns the representative value reported for a bucket
// (the arithmetic midpoint of its range; exact for buckets 0 and 1).
func bucketMid(b int) int64 {
	switch {
	case b <= 0:
		return 0
	case b >= 63:
		// 2^62.. overflows the midpoint arithmetic; saturate.
		return math.MaxInt64
	default:
		lo := int64(1) << (b - 1)
		hi := int64(1)<<b - 1
		return (lo + hi) / 2
	}
}

// Histogram is a single-writer log-bucketed histogram — the one
// histogram implementation in this module, reused by the harness's
// latency accounting and by Stats (which stripes atomic copies of the
// same buckets). The zero value is empty and ready to use. Not safe
// for concurrent writers; merge per-goroutine histograms instead.
type Histogram struct {
	buckets [NumBuckets]uint64
	count   uint64
	sum     int64
	max     int64
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest recorded sample (exact, not bucketed).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean of recorded samples (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Buckets returns a copy of the log2 bucket counts (bucket 0 holds
// values <= 0, bucket b holds [2^(b-1), 2^b)).
func (h *Histogram) Buckets() [NumBuckets]uint64 { return h.buckets }

// DeltaFrom returns the histogram of samples recorded between prev and
// h, where prev is an earlier copy of the same cumulative histogram:
// bucketwise count difference, count and sum differences. Differences
// are clamped at zero so a torn or mismatched pair degrades to an
// empty window instead of underflowing. Max carries the cumulative
// maximum (the window-local max is not recoverable from two
// snapshots); quantiles of the delta are still bucket-exact.
func (h *Histogram) DeltaFrom(prev *Histogram) Histogram {
	var d Histogram
	for i, c := range h.buckets {
		if p := prev.buckets[i]; c > p {
			d.buckets[i] = c - p
		}
	}
	if h.count > prev.count {
		d.count = h.count - prev.count
	}
	if h.sum > prev.sum {
		d.sum = h.sum - prev.sum
	}
	d.max = h.max
	return d
}

// Quantile returns the log-bucket midpoint estimate of the q-quantile
// (0 < q <= 1), clamped by the exact maximum. Empty histograms return
// 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for b, c := range h.buckets {
		seen += c
		if seen >= target {
			v := bucketMid(b)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// stripeHist is one stripe's atomic bucket array inside a Stats block:
// the same log buckets as Histogram, written with atomic adds because
// several proc ids can hash to one stripe.
type stripeHist struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

func (s *stripeHist) record(v int64) {
	s.buckets[bucketOf(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (s *stripeHist) mergeInto(h *Histogram) {
	for i := range s.buckets {
		h.buckets[i] += s.buckets[i].Load()
	}
	h.count += s.count.Load()
	h.sum += s.sum.Load()
	if m := s.max.Load(); m > h.max {
		h.max = m
	}
}

// defaultStripes sizes the stripe count to the host's parallelism:
// enough slots that concurrently incrementing procs rarely share a
// padded cell, without paying for stripes the machine cannot populate.
func defaultStripes() int {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}
