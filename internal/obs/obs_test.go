package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
)

func TestNilStatsIsNoOp(t *testing.T) {
	var s *Stats
	// None of these may panic or allocate.
	s.Inc(CSNZIArriveRoot, 3)
	s.Add(GOLLHandoff, 1, 5)
	s.Observe(BravoDrainWait, 0, 123)
	if s.Enabled() {
		t.Fatal("nil Stats reports Enabled")
	}
	if s.Count(CSNZIArriveRoot) != 0 {
		t.Fatal("nil Stats has a count")
	}
	if n := s.Name(); n != "" {
		t.Fatalf("nil Stats name %q", n)
	}
	sn := s.Snapshot()
	if len(sn.Counters) != 0 || len(sn.Hists) != 0 {
		t.Fatalf("nil Stats snapshot not empty: %+v", sn)
	}
}

func TestNilStatsZeroAllocs(t *testing.T) {
	var s *Stats
	if n := testing.AllocsPerRun(100, func() {
		s.Inc(CSNZIArriveRoot, 1)
		s.Add(CSNZICASRetry, 1, 2)
		s.Observe(BravoDrainWait, 1, 42)
	}); n != 0 {
		t.Fatalf("nil Stats path allocates %.1f/op, want 0", n)
	}
}

func TestEnabledStatsZeroAllocs(t *testing.T) {
	s := New()
	if n := testing.AllocsPerRun(100, func() {
		s.Inc(CSNZIArriveRoot, 1)
		s.Add(CSNZICASRetry, 1, 2)
		s.Observe(BravoDrainWait, 1, 42)
	}); n != 0 {
		t.Fatalf("enabled Stats path allocates %.1f/op, want 0", n)
	}
}

func TestStripedCountsMerge(t *testing.T) {
	s := New(WithStripes(8))
	const procs, per = 16, 1000
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Inc(FOLLReadJoin, id)
			}
		}(id)
	}
	wg.Wait()
	if got := s.Count(FOLLReadJoin); got != procs*per {
		t.Fatalf("merged count = %d, want %d", got, procs*per)
	}
	if got := s.Snapshot().Counter("foll.read.join"); got != procs*per {
		t.Fatalf("snapshot count = %d, want %d", got, procs*per)
	}
}

func TestSnapshotScopeFilter(t *testing.T) {
	s := New(WithName("x"), WithScopes("csnzi", "roll"))
	s.Inc(CSNZIArriveRoot, 0)
	s.Inc(BravoRevoke, 0) // out of scope: counted but not reported
	sn := s.Snapshot()
	for name := range sn.Counters {
		if !strings.HasPrefix(name, "csnzi.") && !strings.HasPrefix(name, "roll.") {
			t.Fatalf("out-of-scope counter %q in snapshot", name)
		}
	}
	if sn.Counter("csnzi.arrive.root") != 1 {
		t.Fatalf("csnzi.arrive.root = %d, want 1", sn.Counter("csnzi.arrive.root"))
	}
	if _, ok := sn.Counters["bravo.revoke"]; ok {
		t.Fatal("bravo.revoke reported despite scope filter")
	}
	// The name set is the scope contract: zero counters still appear.
	if _, ok := sn.Counters["roll.overtake"]; !ok {
		t.Fatal("in-scope zero counter roll.overtake missing")
	}
	// Out-of-scope histogram suppressed.
	if _, ok := sn.Hists["bravo.drain.wait"]; ok {
		t.Fatal("out-of-scope histogram reported")
	}
}

func TestEventNamesUniqueAndScoped(t *testing.T) {
	seen := map[string]bool{}
	for e := Event(0); e < NumEvents; e++ {
		name := e.String()
		if name == "" || strings.HasPrefix(name, "obs.Event") {
			t.Fatalf("event %d has no name", e)
		}
		if seen[name] {
			t.Fatalf("duplicate event name %q", name)
		}
		seen[name] = true
		if e.Scope() == name {
			t.Fatalf("event %q has no scope segment", name)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
	// 100 samples of 100ns, 10 of ~10000ns: p50 in the 100 bucket,
	// p99 in the 10000 bucket.
	for i := 0; i < 100; i++ {
		h.Record(100)
	}
	for i := 0; i < 10; i++ {
		h.Record(10_000)
	}
	p50 := h.Quantile(0.50)
	if p50 < 64 || p50 > 127 {
		t.Fatalf("p50 = %d, want within bucket [64,127]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 8192 || p99 > 16383 {
		t.Fatalf("p99 = %d, want within bucket [8192,16383]", p99)
	}
	if h.Max() != 10_000 {
		t.Fatalf("max = %d, want exact 10000", h.Max())
	}
	if h.Count() != 110 {
		t.Fatalf("count = %d, want 110", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	b.Record(1000)
	b.Record(2000)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	if a.Max() != 2000 {
		t.Fatalf("merged max = %d, want 2000", a.Max())
	}
	if a.Sum() != 3010 {
		t.Fatalf("merged sum = %d, want 3010", a.Sum())
	}
}

func TestStatsHistObserve(t *testing.T) {
	s := New(WithStripes(4))
	for id := 0; id < 8; id++ {
		s.Observe(BravoDrainWait, id, int64(1000*(id+1)))
	}
	m := s.Hist(BravoDrainWait)
	if m.Count() != 8 {
		t.Fatalf("hist count = %d, want 8", m.Count())
	}
	if m.Max() != 8000 {
		t.Fatalf("hist max = %d, want 8000", m.Max())
	}
	sn := s.Snapshot()
	hs, ok := sn.Hists["bravo.drain.wait"]
	if !ok {
		t.Fatal("snapshot missing bravo.drain.wait")
	}
	if hs.Count != 8 || hs.Max != 8000 {
		t.Fatalf("snapshot hist = %+v", hs)
	}
}

func TestPublishExpvarReplaces(t *testing.T) {
	s1 := New(WithName("test-lock"), WithScopes("goll"))
	s1.Inc(GOLLHandoff, 0)
	s1.PublishExpvar()
	v := expvar.Get("ollock.test-lock")
	if v == nil {
		t.Fatal("expvar key not published")
	}
	var sn Snapshot
	if err := json.Unmarshal([]byte(v.String()), &sn); err != nil {
		t.Fatalf("expvar value not JSON: %v", err)
	}
	if sn.Counter("goll.handoff") != 1 {
		t.Fatalf("published goll.handoff = %d, want 1", sn.Counter("goll.handoff"))
	}
	// Re-publishing under the same name swaps the block (no panic).
	s2 := New(WithName("test-lock"), WithScopes("goll"))
	s2.Inc(GOLLHandoff, 0)
	s2.Inc(GOLLHandoff, 1)
	s2.PublishExpvar()
	if err := json.Unmarshal([]byte(expvar.Get("ollock.test-lock").String()), &sn); err != nil {
		t.Fatalf("expvar value not JSON: %v", err)
	}
	if sn.Counter("goll.handoff") != 2 {
		t.Fatalf("after republish goll.handoff = %d, want 2", sn.Counter("goll.handoff"))
	}
}

func TestAllEventNamesSortedUnique(t *testing.T) {
	names := AllEventNames()
	if len(names) != int(NumEvents) {
		t.Fatalf("%d names for %d events", len(names), NumEvents)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("names not sorted/unique at %d: %q <= %q", i, names[i], names[i-1])
		}
	}
}
