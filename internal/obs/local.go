package obs

// FlushEvery bounds how many events a Local buffers before folding
// them into its parent's striped cells. It trades snapshot freshness
// for hot-path cost: a Snapshot taken while procs are running can lag
// by up to FlushEvery-1 events per proc, and the amortized shared-cell
// cost drops by the same factor.
const FlushEvery = 32

// Local is a per-proc buffered view of a Stats block — the second
// level of the striping story. The striped cells already keep
// concurrent procs off each other's cache lines, but every Inc is
// still an atomic read-modify-write; on a lock whose entire read path
// is a handful of atomics, two more per acquisition is a measurable
// tax. A Local moves that tax off the hot path: increments are plain
// stores into a proc-owned array, folded into the shared cells once
// every FlushEvery events via Stats.Add.
//
// A Local belongs to one proc (one goroutine at a time), exactly like
// the lock Procs that embed it; it needs no synchronization of its
// own. A nil *Local is valid and means "instrumentation off": Inc on
// a nil receiver is an inlined no-op branch, preserving the
// zero-overhead-off contract end to end.
type Local struct {
	parent  *Stats
	id      int
	n       uint32
	pending [NumEvents]uint32
}

// NewLocal returns a per-proc buffered view of s for proc id, or nil
// when s is nil — so uninstrumented locks hold a nil *Local and pay
// one predictable branch per event site.
func (s *Stats) NewLocal(id int) *Local {
	if s == nil {
		return nil
	}
	return &Local{parent: s, id: id}
}

// Inc buffers one occurrence of e. Nil receivers are no-ops. The whole
// body stays within the inlining budget (Flush, with its loop, is
// never inlined and is reached once per FlushEvery events), so the
// stats-off path compiles to a compare and branch and the stats-on
// path to two plain increments.
func (l *Local) Inc(e Event) {
	if l == nil {
		return
	}
	l.pending[e]++
	l.n++
	if l.n >= FlushEvery {
		l.Flush()
	}
}

// Flush folds the buffered counts into the parent's striped cells.
// Safe (and a no-op) on a nil or empty Local. Procs flush implicitly
// every FlushEvery events; call Flush explicitly before reading a
// Snapshot that must include this proc's tail.
func (l *Local) Flush() {
	if l == nil || l.n == 0 {
		return
	}
	for e := range l.pending {
		if c := l.pending[e]; c != 0 {
			l.parent.Add(Event(e), l.id, uint64(c))
			l.pending[e] = 0
		}
	}
	l.n = 0
}
