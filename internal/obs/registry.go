package obs

import (
	"fmt"
	"sync"
)

// Registry is an enumerable set of Stats blocks — the handle the
// metrics sampler (internal/metrics) polls. Where PublishExpvar makes
// one block visible to humans on /debug/vars, a Registry makes a
// whole fleet of blocks visible to machinery: the sampler iterates it
// every period without reaching into expvar's global string-keyed
// namespace, and tests can build private registries that see nothing
// but their own locks.
//
// Registration is keyed by the block's name; registering a second
// block under a taken key gets a deterministic "#2"-style suffix
// (several locks of one kind in one registry stay distinguishable),
// and re-registering the *same* block is a no-op. A nil *Registry is
// valid and ignores registrations, so callers can thread an optional
// registry without guarding every call site.
type Registry struct {
	mu    sync.RWMutex
	order []string
	keys  map[*Stats]string
	by    map[string]*Stats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{keys: map[*Stats]string{}, by: map[string]*Stats{}}
}

// Register adds s to the registry and returns the key it was filed
// under: the block's name ("lock" when unnamed), suffixed "#2", "#3",
// ... when the plain key is taken by a different block. Registering a
// block twice returns its existing key. Nil registries and nil blocks
// are no-ops (returning "").
func (r *Registry) Register(s *Stats) string {
	if r == nil || s == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if key, ok := r.keys[s]; ok {
		return key
	}
	base := s.Name()
	if base == "" {
		base = "lock"
	}
	key := base
	for n := 2; r.by[key] != nil; n++ {
		key = fmt.Sprintf("%s#%d", base, n)
	}
	r.keys[s] = key
	r.by[key] = s
	r.order = append(r.order, key)
	return key
}

// Each calls fn for every registered block in registration order.
// Registrations made by fn itself (or concurrently) are not seen by
// the running iteration.
func (r *Registry) Each(fn func(key string, s *Stats)) {
	if r == nil {
		return
	}
	r.mu.RLock()
	order := append([]string(nil), r.order...)
	blocks := make([]*Stats, len(order))
	for i, key := range order {
		blocks[i] = r.by[key]
	}
	r.mu.RUnlock()
	for i, key := range order {
		fn(key, blocks[i])
	}
}

// Get returns the block registered under key, nil if absent.
func (r *Registry) Get(key string) *Stats {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.by[key]
}

// Names returns the registered keys in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Len returns the number of registered blocks.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.order)
}
