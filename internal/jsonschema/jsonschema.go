// Package jsonschema is a deliberately small JSON-Schema-subset
// validator, just large enough to pin the shape of the machine-readable
// benchmark artifacts (BENCH_bravo.json) in CI without pulling in a
// dependency. It understands the draft keywords the checked-in schemas
// use — type, required, properties, additionalProperties, items,
// minItems, minimum, maximum, const, enum — and nothing else; unknown
// keywords are ignored, as the spec requires.
package jsonschema

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
)

// Schema is a parsed schema node. Decode one with encoding/json.
type Schema struct {
	Type                 string             `json:"type"`
	Required             []string           `json:"required"`
	Properties           map[string]*Schema `json:"properties"`
	AdditionalProperties *Schema            `json:"additionalProperties"`
	Items                *Schema            `json:"items"`
	MinItems             *int               `json:"minItems"`
	Minimum              *float64           `json:"minimum"`
	Maximum              *float64           `json:"maximum"`
	Const                any                `json:"const"`
	Enum                 []any              `json:"enum"`
}

// Validate checks doc (a value produced by encoding/json Unmarshal into
// any) against s and returns every violation found, each prefixed with
// a JSON-pointer-ish path. A nil error means the document conforms.
func Validate(s *Schema, doc any) error {
	var errs []string
	validate(s, doc, "$", &errs)
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("schema violations:\n  %s", strings.Join(errs, "\n  "))
}

// ValidateBytes unmarshals raw JSON and validates it.
func ValidateBytes(s *Schema, raw []byte) error {
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	return Validate(s, doc)
}

func validate(s *Schema, doc any, path string, errs *[]string) {
	if s == nil {
		return
	}
	if s.Type != "" && !hasType(s.Type, doc) {
		*errs = append(*errs, fmt.Sprintf("%s: got %s, want %s", path, typeName(doc), s.Type))
		return
	}
	if s.Const != nil && !reflect.DeepEqual(doc, s.Const) {
		*errs = append(*errs, fmt.Sprintf("%s: got %v, want const %v", path, doc, s.Const))
	}
	if len(s.Enum) > 0 {
		ok := false
		for _, v := range s.Enum {
			if reflect.DeepEqual(doc, v) {
				ok = true
				break
			}
		}
		if !ok {
			*errs = append(*errs, fmt.Sprintf("%s: %v not in enum %v", path, doc, s.Enum))
		}
	}
	switch v := doc.(type) {
	case float64:
		if s.Minimum != nil && v < *s.Minimum {
			*errs = append(*errs, fmt.Sprintf("%s: %v < minimum %v", path, v, *s.Minimum))
		}
		if s.Maximum != nil && v > *s.Maximum {
			*errs = append(*errs, fmt.Sprintf("%s: %v > maximum %v", path, v, *s.Maximum))
		}
	case map[string]any:
		for _, key := range s.Required {
			if _, ok := v[key]; !ok {
				*errs = append(*errs, fmt.Sprintf("%s: missing required property %q", path, key))
			}
		}
		keys := make([]string, 0, len(v))
		for key := range v {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			sub, known := s.Properties[key]
			if known {
				validate(sub, v[key], path+"."+key, errs)
			} else if s.AdditionalProperties != nil {
				validate(s.AdditionalProperties, v[key], path+"."+key, errs)
			}
		}
	case []any:
		if s.MinItems != nil && len(v) < *s.MinItems {
			*errs = append(*errs, fmt.Sprintf("%s: %d items < minItems %d", path, len(v), *s.MinItems))
		}
		if s.Items != nil {
			for i, item := range v {
				validate(s.Items, item, fmt.Sprintf("%s[%d]", path, i), errs)
			}
		}
	}
}

func hasType(want string, doc any) bool {
	switch want {
	case "object":
		_, ok := doc.(map[string]any)
		return ok
	case "array":
		_, ok := doc.([]any)
		return ok
	case "string":
		_, ok := doc.(string)
		return ok
	case "number":
		_, ok := doc.(float64)
		return ok
	case "integer":
		f, ok := doc.(float64)
		return ok && f == math.Trunc(f)
	case "boolean":
		_, ok := doc.(bool)
		return ok
	case "null":
		return doc == nil
	}
	return false
}

func typeName(doc any) string {
	switch doc.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "boolean"
	case nil:
		return "null"
	}
	return fmt.Sprintf("%T", doc)
}
