package jsonschema

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustSchema(t *testing.T, raw string) *Schema {
	t.Helper()
	var s Schema
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	return &s
}

func TestValidate(t *testing.T) {
	s := mustSchema(t, `{
		"type": "object",
		"required": ["name", "count", "items"],
		"properties": {
			"name":  {"type": "string", "const": "bench"},
			"count": {"type": "integer", "minimum": 0},
			"frac":  {"type": "number", "minimum": 0, "maximum": 1},
			"items": {
				"type": "array", "minItems": 1,
				"items": {"type": "object", "required": ["k"], "properties": {"k": {"type": "string"}}}
			},
			"counters": {"type": "object", "additionalProperties": {"type": "integer", "minimum": 0}}
		}
	}`)

	good := `{"name":"bench","count":3,"frac":0.5,"items":[{"k":"a"}],"counters":{"x":1,"y":0}}`
	if err := ValidateBytes(s, []byte(good)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}

	for _, tc := range []struct{ doc, wantErr string }{
		{`{"count":3,"items":[{"k":"a"}],"name":"other"}`, "want const"},
		{`{"count":3,"items":[{"k":"a"}]}`, `missing required property "name"`},
		{`{"name":"bench","count":-1,"items":[{"k":"a"}]}`, "minimum"},
		{`{"name":"bench","count":1.5,"items":[{"k":"a"}]}`, "want integer"},
		{`{"name":"bench","count":3,"frac":1.5,"items":[{"k":"a"}]}`, "maximum"},
		{`{"name":"bench","count":3,"items":[]}`, "minItems"},
		{`{"name":"bench","count":3,"items":[{}]}`, `missing required property "k"`},
		{`{"name":"bench","count":3,"items":[{"k":"a"}],"counters":{"x":-2}}`, "minimum"},
		{`[1,2]`, "want object"},
		{`{`, "not valid JSON"},
	} {
		err := ValidateBytes(s, []byte(tc.doc))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("doc %s: error %v, want substring %q", tc.doc, err, tc.wantErr)
		}
	}
}

func TestValidateReportsAllViolations(t *testing.T) {
	s := mustSchema(t, `{"type":"object","required":["a","b"]}`)
	err := ValidateBytes(s, []byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), `"a"`) || !strings.Contains(err.Error(), `"b"`) {
		t.Fatalf("want both missing properties reported, got %v", err)
	}
}
