package bravo

import (
	"sync"
	"sync/atomic"
	"testing"

	"ollock/internal/central"
	"ollock/internal/goll"
)

// newCentralBravo wraps the naive centralized lock — the simplest base,
// so these tests exercise the wrapper, not the base.
func newCentralBravo(opts ...Option) *Lock {
	base := central.New()
	return New(func() BaseProc { return base }, opts...)
}

func TestFastPathHitWhileBiased(t *testing.T) {
	l := newCentralBravo()
	if !l.Biased() {
		t.Fatal("lock must start read-biased")
	}
	p := l.NewProc()
	p.RLock()
	if !p.ReadFastPath() {
		t.Fatal("uncontended read on a biased lock did not take the fast path")
	}
	if readers[p.home&tableMask].Load() != l {
		t.Fatal("fast-path read did not publish its home slot")
	}
	p.RUnlock()
	if readers[p.home&tableMask].Load() == l {
		t.Fatal("RUnlock did not unpublish the slot")
	}
}

func TestWriterRevokesBias(t *testing.T) {
	l := newCentralBravo()
	p := l.NewProc()
	p.Lock()
	if l.Biased() {
		t.Fatal("bias still armed while a writer holds the lock")
	}
	if l.InhibitRemaining() == 0 {
		t.Fatal("revocation did not charge an inhibition window")
	}
	p.Unlock()
	if l.Biased() {
		t.Fatal("bias must stay off after write release (re-armed only by slow readers)")
	}
	// Reads now go the slow path until the window drains.
	p.RLock()
	if p.ReadFastPath() {
		t.Fatal("read took the fast path while the bias was revoked")
	}
	p.RUnlock()
}

func TestSlowReadersReArmBias(t *testing.T) {
	l := newCentralBravo()
	p := l.NewProc()
	p.Lock()
	p.Unlock()
	if l.Biased() {
		t.Fatal("bias armed right after revocation")
	}
	// The window is TableSize + drainWeight*0 slow reads; drive past it.
	limit := (TableSize + drainWeight) * 4
	for i := 0; i < limit && !l.Biased(); i++ {
		p.RLock()
		p.RUnlock()
	}
	if !l.Biased() {
		t.Fatalf("bias not re-armed after %d slow reads", limit)
	}
	p.RLock()
	if !p.ReadFastPath() {
		t.Fatal("read after re-arm did not take the fast path")
	}
	p.RUnlock()
}

func TestInhibitMultiplierScalesWindow(t *testing.T) {
	a := newCentralBravo()
	b := newCentralBravo(WithInhibitMultiplier(7))
	pa, pb := a.NewProc(), b.NewProc()
	pa.Lock()
	pa.Unlock()
	pb.Lock()
	pb.Unlock()
	if got, want := b.InhibitRemaining(), 7*a.InhibitRemaining(); got != want {
		t.Fatalf("multiplier-7 window = %d, want %d", got, want)
	}
}

func TestCollisionFallsBackToSlowPath(t *testing.T) {
	l := newCentralBravo()
	p := l.NewProc()
	// Occupy the proc's entire probe window with a foreign lock.
	other := newCentralBravo()
	for i := uint64(0); i < maxProbes; i++ {
		readers[(p.home+i)&tableMask].Store(other)
	}
	defer func() {
		for i := uint64(0); i < maxProbes; i++ {
			readers[(p.home+i)&tableMask].Store(nil)
		}
	}()
	p.RLock()
	if p.ReadFastPath() {
		t.Fatal("read claimed the fast path with every probe slot occupied")
	}
	if !l.Biased() {
		t.Fatal("collision fallback must not disturb the bias")
	}
	p.RUnlock()
}

// TestRevocationDrainsPublishedReader pins the core soundness property:
// a writer's Lock must not return while a fast-path reader is still
// inside its critical section.
func TestRevocationDrainsPublishedReader(t *testing.T) {
	l := newCentralBravo()
	r := l.NewProc()
	w := l.NewProc()
	r.RLock()
	if !r.ReadFastPath() {
		t.Fatal("setup: reader not on fast path")
	}
	inCS := make(chan struct{})
	wDone := make(chan struct{})
	go func() {
		w.Lock()
		close(inCS)
		w.Unlock()
		close(wDone)
	}()
	select {
	case <-inCS:
		t.Fatal("writer entered while a fast-path reader held the lock")
	default:
	}
	// Give the writer a moment to start revoking, then drain.
	for i := 0; i < 1000; i++ {
		if !l.Biased() {
			break
		}
	}
	select {
	case <-inCS:
		t.Fatal("writer entered while a fast-path reader held the lock")
	default:
	}
	r.RUnlock()
	<-wDone
}

// TestExclusionUnderChurn hammers the wrapper with a read-heavy mix and
// verifies the exclusion invariant while the bias is repeatedly revoked
// and re-armed — the wrapper's whole state machine in motion.
func TestExclusionUnderChurn(t *testing.T) {
	base := goll.New()
	l := New(func() BaseProc { return base.NewProc() })
	const goroutines = 8
	iters := 3000
	if testing.Short() {
		iters = 800
	}
	var readersIn, writersIn, violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := l.NewProc()
			for i := 0; i < iters; i++ {
				if (i+id)%16 != 0 {
					p.RLock()
					readersIn.Add(1)
					if writersIn.Load() != 0 {
						violations.Add(1)
					}
					readersIn.Add(-1)
					p.RUnlock()
				} else {
					p.Lock()
					if w := writersIn.Add(1); w != 1 {
						violations.Add(1)
					}
					if readersIn.Load() != 0 {
						violations.Add(1)
					}
					writersIn.Add(-1)
					p.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d exclusion violations", v)
	}
	// The table must be fully unpublished once everyone is done.
	for i := range readers {
		if readers[i].Load() == l {
			t.Fatalf("slot %d still published after all Procs released", i)
		}
	}
}

func TestZeroAllocFastPath(t *testing.T) {
	l := newCentralBravo()
	p := l.NewProc()
	allocs := testing.AllocsPerRun(200, func() {
		p.RLock()
		p.RUnlock()
	})
	if allocs != 0 {
		t.Fatalf("biased read fast path allocates %.1f objects per acquisition, want 0", allocs)
	}
	if !l.Biased() {
		t.Fatal("bias lost during alloc test — fast path not measured")
	}
}
