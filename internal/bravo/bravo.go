// Package bravo implements a BRAVO-style biased reader fast path over
// any reader-writer lock in this module (Dice & Kogan, "BRAVO — Biased
// Locking for Reader-Writer Locks", USENIX ATC 2019; see PAPERS.md).
//
// The wrapper composes with an existing lock rather than replacing it.
// While a lock is in "read-biased" mode, readers skip the underlying
// lock entirely: they publish themselves in a global visible-readers
// table (one cache-line-padded slot per reader), re-check the bias, and
// enter the critical section having touched no shared central state —
// not even the C-SNZI arrival the OLL locks already make cheap. A
// writer revokes the bias by clearing the flag and scanning the table
// for published readers of its lock, waiting for each to drain, and
// only then relies on the underlying lock for exclusion. Revocation is
// expensive, so after each one the bias stays off for a window
// proportional to the revocation cost; the window is counted in
// slow-path read acquisitions rather than wall time, which keeps the
// policy deterministic and lets the simulator port (internal/sim/
// simlock) share it unchanged.
//
// # Soundness
//
// Mutual exclusion between a fast-path reader and a writer is the
// classic Dekker-style publish/re-check protocol, relying on the
// sequential consistency of sync/atomic operations:
//
//	reader: W(slot = lock); R(bias)
//	writer: W(bias = 0);    R(slot)  [scan]
//
// If the reader's bias re-check observes 1, its slot write precedes the
// writer's bias write in the total order, so the writer's subsequent
// scan observes the slot and waits for the reader to drain. If the
// re-check observes 0, the reader unpublishes and falls back to the
// underlying lock, where the usual exclusion applies. The bias flag is
// only re-armed by a slow-path reader while it holds the underlying
// lock for reading, and only examined by a writer while it holds the
// underlying lock for writing, so arming and revocation can never run
// concurrently.
package bravo

import (
	"fmt"
	"io"
	"sync/atomic"

	"ollock/internal/atomicx"
	"ollock/internal/lockcore"
)

// BaseProc is the per-goroutine view of the wrapped lock: the same
// four-method contract every lock in this module exposes.
type BaseProc interface {
	RLock()
	RUnlock()
	Lock()
	Unlock()
}

// Visible-readers table. One global table is shared by every biased
// lock in the process (slots name the lock they were published for), as
// in the BRAVO paper: sizing is then a per-process decision rather than
// a per-lock one, and an idle lock costs nothing.
const (
	// tableShift sets the table to 1024 slots (128 KiB with padding).
	// The table only needs to be large relative to the number of
	// *concurrently published* readers, not the number of Procs;
	// collisions are harmless (the reader falls back to the slow path).
	tableShift = 10
	// TableSize is the number of visible-reader slots.
	TableSize = 1 << tableShift
	tableMask = TableSize - 1
	// maxProbes bounds the linear probe a reader attempts before giving
	// up on the fast path. Bounded probing keeps the worst-case fast
	// path O(1) while making collisions between distinct (lock, Proc)
	// pairs mostly invisible.
	maxProbes = 4
)

// readers is the global visible-readers table. A slot holds the *Lock a
// fast-path reader is currently reading under, or nil.
var readers [TableSize]atomicx.PaddedPointer[Lock]

// Adaptive inhibition policy defaults.
const (
	// drainWeight is how many scan operations one occupied slot is
	// charged as: draining a published reader costs an ownership
	// transfer plus an unbounded wait, versus a read hit for an empty
	// slot.
	drainWeight = 16
	// defaultMultiplier scales the revocation cost into the re-arm
	// window (BRAVO's N; it uses N=9 over wall time, but our window is
	// counted in slow-path reads, which are individually far more
	// expensive than the loads of a table scan).
	defaultMultiplier = 1
	// inhibitBatch is how many slow-path reads a Proc accumulates
	// locally before touching the shared inhibition counter. Batching
	// keeps the bias-off slow path from serializing every reader on one
	// hot word — the exact failure mode this module exists to avoid.
	inhibitBatch = 8
)

// lockSeq distinguishes Lock instances in slot hashing; it stands in
// for the lock's address (stable identity without unsafe).
var lockSeq atomic.Uint64

// Lock wraps an underlying reader-writer lock with the BRAVO biased
// reader fast path. Use New, then one Proc per goroutine via NewProc.
type Lock struct {
	newProc func() BaseProc
	salt    uint64
	mult    uint64
	ids     atomic.Int64
	// bias is 1 while readers may use the fast path.
	bias atomicx.PaddedUint32
	// inhibit counts the slow-path read acquisitions that must still
	// happen before the bias may be re-armed.
	inhibit atomicx.PaddedUint64
	// in is the instrumentation bundle (zero = all off). The stats
	// block covers only the wrapper's own events (bravo.*); share the
	// same trace handle with the underlying lock so wrapper and base
	// events interleave on one per-proc timeline, and the wait policy
	// routes revocation drain waits down its ladder.
	in lockcore.Instr
}

// Option configures the wrapper.
type Option func(*Lock)

// WithInhibitMultiplier scales the post-revocation window during which
// the read bias stays off (the paper's N; default 1). Larger values
// revoke less often but keep read-mostly phases on the slow path
// longer.
func WithInhibitMultiplier(n int) Option {
	return func(l *Lock) {
		if n > 0 {
			l.mult = uint64(n)
		}
	}
}

// WithInstr attaches the instrumentation bundle (see internal/lockcore):
// the stats block (fast vs. slow reads, bias arms, revocations, slot
// collisions under bravo.*, plus the bravo.drain.wait histogram), the
// flight-recorder handle (pass the same handle to the underlying lock
// so wrapper and base events interleave on one timeline), and the wait
// policy the revoking writer's per-slot drain wait descends instead of
// spinning unboundedly. The published reader itself never parks (its
// critical section is running), so drain waits use the condition form
// of the policy's ladder rather than a parked hand-off.
func WithInstr(in lockcore.Instr) Option { return func(l *Lock) { l.in = in } }

// New wraps the lock whose Procs newProc creates. The lock starts
// read-biased.
func New(newProc func() BaseProc, opts ...Option) *Lock {
	l := &Lock{newProc: newProc, mult: defaultMultiplier}
	for _, o := range opts {
		o(l)
	}
	l.salt = mix64(lockSeq.Add(1))
	l.bias.Store(1)
	l.in.AddDumper(l)
	return l
}

// Biased reports whether the read bias is currently armed (readers may
// attempt the fast path). Diagnostic; the answer can be stale by the
// time it returns.
func (l *Lock) Biased() bool { return l.bias.Load() != 0 }

// InhibitRemaining reports how many slow-path read acquisitions must
// still occur before the bias may be re-armed. Diagnostic.
func (l *Lock) InhibitRemaining() uint64 { return l.inhibit.Load() }

// Proc is the per-goroutine handle. It carries the identity that makes
// fast-path slot assignment O(1): the home slot is computed once here,
// not per acquisition.
type Proc struct {
	l    *Lock
	base BaseProc
	id   int
	home uint64
	// cur is the slot this Proc last published successfully, tried
	// first on the next acquisition. Memoization makes persistent hash
	// collisions self-resolving: two Procs sharing a home slot settle
	// into disjoint slots instead of ping-ponging one cache line.
	cur *atomicx.PaddedPointer[Lock]
	// slot is the published table slot while a fast-path read is held,
	// nil otherwise (including during slow-path reads and writes).
	slot *atomicx.PaddedPointer[Lock]
	// pend counts slow-path reads not yet folded into l.inhibit.
	pend uint64
	// pi is the proc's instrumentation view for wrapper-level events
	// (buffered counters + flight-recorder ring). The base Proc owns a
	// separate ring under the same lock id; each ring stays
	// single-writer.
	pi lockcore.ProcInstr
}

// NewProc registers a goroutine with the lock, creating the underlying
// Proc and assigning the visible-readers home slot.
func (l *Lock) NewProc() *Proc {
	id := uint64(l.ids.Add(1)) - 1
	home := mix64(l.salt^mix64(id+1)) & tableMask
	return &Proc{
		l:    l,
		base: l.newProc(),
		id:   int(id),
		home: home,
		cur:  &readers[home],
		pi:   l.in.NewProc(int(id)),
	}
}

// ReadFastPath reports whether the current read acquisition took the
// biased fast path. Only meaningful between RLock and RUnlock.
func (p *Proc) ReadFastPath() bool { return p.slot != nil }

// fastRead attempts the biased fast path: publish in the
// visible-readers table, re-check the bias, done — no shared central
// state touched. It reports whether the read acquisition completed;
// on false the caller falls back to the underlying lock.
func (p *Proc) fastRead(t0, pt int64) bool {
	l := p.l
	if l.bias.Load() == 0 {
		return false
	}
	// Memoized slot first: after settling this CAS is on a line no
	// other goroutine writes, so the whole fast path touches no
	// contended memory.
	s := p.cur
	if !s.CompareAndSwap(nil, l) {
		p.pi.Inc(lockcore.BravoSlotCollision)
		s = nil
		for i := uint64(0); i < maxProbes; i++ {
			cand := &readers[(p.home+i)&tableMask]
			if cand != p.cur && cand.Load() == nil && cand.CompareAndSwap(nil, l) {
				s = cand
				p.cur = cand
				break
			}
		}
	}
	if s != nil {
		// Publication must be visible before the re-check; both
		// are sequentially consistent atomics.
		if l.bias.Load() != 0 {
			p.slot = s
			p.pi.Inc(lockcore.BravoFastRead)
			p.pi.Acquired(lockcore.KindReadAcquired, t0, lockcore.RouteBravoFast)
			p.pi.ProfAcquired(pt, false)
			return true
		}
		// A writer revoked between our publish and re-check: unpublish
		// so its scan does not wait for us, and fall back to the slow
		// path.
		s.Store(nil)
		p.pi.Emit(lockcore.KindBravoRecheckFail, 0, 0)
	}
	return false
}

// RLock acquires the lock for reading. While the bias is armed this is
// the BRAVO fast path; otherwise it is the underlying lock's read
// acquisition plus the adaptive re-arm check.
func (p *Proc) RLock() {
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	if p.fastRead(t0, pt) {
		return
	}
	p.base.RLock()
	p.pi.Inc(lockcore.BravoSlowRead)
	if p.l.bias.Load() == 0 {
		p.slowReadArm()
	}
}

// slowReadArm runs the adaptive policy on the bias-off slow path: after
// enough slow reads have paid out the last revocation's cost, re-arm
// the bias. The caller holds the underlying lock for reading, so no
// writer can concurrently revoke (revocation requires the write lock).
func (p *Proc) slowReadArm() {
	l := p.l
	p.pend++
	if p.pend < inhibitBatch {
		return
	}
	v := l.inhibit.Load()
	switch {
	case v == 0:
		l.bias.Store(1)
		l.in.Inc(lockcore.BravoBiasArm, p.id)
	case v <= p.pend:
		// This batch drains the window; re-arming is (at most) one
		// batch away.
		l.inhibit.CompareAndSwap(v, 0)
	default:
		// Lossy decrement: a failed CAS means another reader made
		// progress for us, which is all the policy needs.
		l.inhibit.CompareAndSwap(v, v-p.pend)
	}
	p.pend = 0
}

// RUnlock releases a read acquisition: unpublish for a fast-path read,
// delegate for a slow-path one.
func (p *Proc) RUnlock() {
	if s := p.slot; s != nil {
		p.slot = nil
		s.Store(nil)
		p.pi.Released(lockcore.KindReadReleased)
		p.pi.ProfReleased()
		return
	}
	p.base.RUnlock()
}

// Lock acquires the lock for writing: underlying write acquisition
// first (which excludes every slow-path reader and other writer), then
// revocation of the read bias if it is armed (which drains every
// fast-path reader).
func (p *Proc) Lock() {
	// The profiler tick is taken here only for revocation attribution:
	// when this writer has to revoke the read bias, the cost is charged
	// to its call site as a contention-only sample. Hold accounting stays
	// with the base lock (which profiles its own Lock path), so the two
	// layers never double-count.
	pt := p.pi.ProfTick()
	p.base.Lock()
	if p.l.bias.Load() != 0 {
		p.pi.Begin(lockcore.PhaseRevoke)
		drained := p.l.revoke(p.id, p.pi.TR)
		p.pi.End(lockcore.PhaseRevoke)
		p.pi.Emit(lockcore.KindBravoRevoke, 0, uint64(drained))
		p.pi.ProfContended(pt)
	}
}

// Unlock releases a write acquisition. The bias stays off; only the
// slow-path readers' adaptive policy re-arms it.
func (p *Proc) Unlock() {
	p.base.Unlock()
}

// revoke clears the read bias and waits for every published reader of
// this lock to drain, returning how many readers it drained. Caller
// holds the underlying write lock, so no new fast-path reader can
// succeed (the re-check fails) and nobody can re-arm the bias (that
// requires the read lock).
func (l *Lock) revoke(id int, tr *lockcore.TraceLocal) int {
	drained, _ := l.revokeUntil(id, tr, lockcore.Deadline{})
	return drained
}

// revokeUntil is revoke with a bound: each per-slot drain wait also
// watches dl. On expiry the bias is restored — this must happen BEFORE
// the caller releases the underlying write lock, since the bias may
// only transition to 1 while the base lock is held (otherwise a
// fast-path read could overlap a writer that skipped revocation) — the
// abort is counted under bravo.revoke.abort, and the inhibition window
// is not charged (no revocation cost was actually paid out). Returns
// the number of published readers encountered and whether the
// revocation completed.
func (l *Lock) revokeUntil(id int, tr *lockcore.TraceLocal, dl lockcore.Deadline) (int, bool) {
	l.in.Inc(lockcore.BravoRevoke, id)
	// Sample the drain wait only when instrumented: the clock reads are
	// off the reader fast path, but revocation frequency is part of the
	// policy being measured, so keep them out of the uninstrumented run.
	start := l.in.SpanStart()
	l.bias.Store(0)
	drained := 0
	for i := range readers {
		s := &readers[i]
		if s.Load() == l {
			drained++
			if !lockcore.WaitCondUntil(l.in.Wait, id, tr, func() bool { return s.Load() != l }, dl) {
				l.in.Inc(lockcore.BravoRevokeAbort, id)
				l.bias.Store(1)
				return drained, false
			}
		}
	}
	l.in.SpanObserve(lockcore.BravoDrainWait, id, start)
	// Charge the revocation: a full-table scan plus a drain premium per
	// published reader, paid back by future slow-path reads before the
	// bias may return.
	l.inhibit.Store(uint64(TableSize+drainWeight*drained) * l.mult)
	return drained, true
}

// DumpLockState renders the wrapper's live state for the trace
// watchdog: bias flag, inhibition window, and every visible-readers
// slot currently published for this lock.
func (l *Lock) DumpLockState(w io.Writer) {
	fmt.Fprintf(w, "bravo: bias=%v inhibit=%d\n", l.Biased(), l.InhibitRemaining())
	published := 0
	for i := range readers {
		if readers[i].Load() == l {
			published++
			fmt.Fprintf(w, "bravo: visible reader published in slot %d\n", i)
		}
	}
	if published == 0 {
		fmt.Fprintf(w, "bravo: no visible readers published\n")
	}
}

// mix64 is the splitmix64 finalizer, used to spread (lock, Proc) pairs
// across the table.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
