// Timed/cancellable acquisition surface for the BRAVO wrapper. Reads
// compose trivially (the fast path never blocks; the slow path
// delegates the deadline to the wrapped lock). Writes are the
// interesting case: the wrapped lock's timed acquisition covers the
// queue wait, but the revocation drain that follows can block on
// fast-path readers' critical sections, so it watches the same
// deadline — and on expiry the bias is restored before the underlying
// lock is released (see revokeUntil for why that ordering is load-
// bearing). See ALGORITHMS.md §17.
package bravo

import (
	"context"
	"time"

	"ollock/internal/lockcore"
)

// DeadlineBase is the timed/try surface the wrapped lock's Procs must
// expose for the wrapper's timed/try variants: the lock kinds the
// facade marks Cancellable all satisfy it.
type DeadlineBase interface {
	BaseProc
	RLockDeadline(lockcore.Deadline) bool
	LockDeadline(lockcore.Deadline) bool
	TryRLock() bool
	TryLock() bool
}

func (p *Proc) deadlineBase() DeadlineBase {
	db, ok := p.base.(DeadlineBase)
	if !ok {
		panic("bravo: wrapped lock does not support timed acquisition")
	}
	return db
}

// RLockDeadline acquires for reading, abandoning on expiry; it reports
// whether the lock was acquired. A zero deadline never expires.
func (p *Proc) RLockDeadline(dl lockcore.Deadline) bool {
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	if p.fastRead(t0, pt) {
		return true
	}
	if !p.deadlineBase().RLockDeadline(dl) {
		return false
	}
	p.pi.Inc(lockcore.BravoSlowRead)
	if p.l.bias.Load() == 0 {
		p.slowReadArm()
	}
	return true
}

// LockDeadline acquires for writing, abandoning on expiry; it reports
// whether the lock was acquired. The deadline bounds both the wrapped
// lock's queue wait and the revocation drain: if the drain expires,
// the bias is restored, the wrapped lock released, and false returned.
func (p *Proc) LockDeadline(dl lockcore.Deadline) bool {
	pt := p.pi.ProfTick()
	base := p.deadlineBase()
	if !base.LockDeadline(dl) {
		return false
	}
	if p.l.bias.Load() != 0 {
		p.pi.Begin(lockcore.PhaseRevoke)
		drained, ok := p.l.revokeUntil(p.id, p.pi.TR, dl)
		p.pi.End(lockcore.PhaseRevoke)
		if !ok {
			// revokeUntil already restored the bias; only now is it
			// safe to give the underlying lock back.
			p.pi.Emit(lockcore.KindCancel, 0, lockcore.CancelArg(dl))
			base.Unlock()
			return false
		}
		p.pi.Emit(lockcore.KindBravoRevoke, 0, uint64(drained))
		p.pi.ProfContended(pt)
	}
	return true
}

// TryRLock acquires for reading without waiting; it reports success.
func (p *Proc) TryRLock() bool {
	t0 := p.pi.Now()
	pt := p.pi.ProfTick()
	if p.fastRead(t0, pt) {
		return true
	}
	if !p.deadlineBase().TryRLock() {
		return false
	}
	p.pi.Inc(lockcore.BravoSlowRead)
	if p.l.bias.Load() == 0 {
		p.slowReadArm()
	}
	return true
}

// TryLock acquires for writing without waiting; it reports success.
// With the bias armed, the revocation scan runs with an
// already-expired bound: it aborts (restoring the bias and releasing
// the underlying lock) the moment it meets a published fast-path
// reader, which is exactly the "lock is read-held" case a TryLock must
// report as failure.
func (p *Proc) TryLock() bool {
	base := p.deadlineBase()
	if !base.TryLock() {
		return false
	}
	if p.l.bias.Load() != 0 {
		drained, ok := p.l.revokeUntil(p.id, p.pi.TR, lockcore.After(0))
		if !ok {
			base.Unlock()
			return false
		}
		p.pi.Emit(lockcore.KindBravoRevoke, 0, uint64(drained))
	}
	return true
}

// RLockFor acquires for reading, giving up after d. The try-first shape
// keeps the uncontended timed acquisition at untimed speed: anchoring
// the deadline costs a clock read, which a biased fast-path read — the
// whole point of the wrapper — should never pay.
func (p *Proc) RLockFor(d time.Duration) bool {
	if p.TryRLock() {
		return true
	}
	return p.RLockDeadline(lockcore.After(d))
}

// LockFor acquires for writing, giving up after d. No try-first here: a
// TryLock with the bias armed runs a full expired-bound revocation scan
// whose abort would restore the bias only for LockDeadline to tear it
// down again, so the writer just anchors the deadline up front.
func (p *Proc) LockFor(d time.Duration) bool { return p.LockDeadline(lockcore.After(d)) }

// RLockCtx acquires for reading, abandoning when ctx is done. It
// returns nil on acquisition and the context's error otherwise.
func (p *Proc) RLockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dl := lockcore.FromContext(ctx)
	if p.RLockDeadline(dl) {
		return nil
	}
	return dl.Err()
}

// LockCtx acquires for writing, abandoning when ctx is done. It
// returns nil on acquisition and the context's error otherwise.
func (p *Proc) LockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dl := lockcore.FromContext(ctx)
	if p.LockDeadline(dl) {
		return nil
	}
	return dl.Err()
}
