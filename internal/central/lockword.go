package central

import (
	"fmt"

	"ollock/internal/atomicx"
)

// Lockword is the classic centralized closable reader count: a single
// CAS-able 64-bit word packing a closed flag (bit 63) and an arrival
// count (bits 0..62). It is the degenerate case of the paper's C-SNZI
// (a C-SNZI with zero leaves reduces to exactly this word) and the
// "central counter" point of BRAVO's read-indicator taxonomy.
//
// Two layers of this module build on it: the naive centralized RWLock
// in this package (which spins where an indicator would fail), and the
// rind.Central read indicator (which plugs the word under the OLL
// locks). Keeping both on one implementation is the point — the
// centralized-vs-distributed ablation then differs only in the
// indicator, not in incidental word-layout details.
//
// The zero Lockword is open with zero count.
type Lockword struct {
	w atomicx.PaddedUint64
}

// ClosedBit is the closed flag of the word; the remaining 63 bits hold
// the arrival count. "Closed with zero count" (write-acquired, in lock
// terms) is therefore the exact word value ClosedBit.
const ClosedBit = uint64(1) << 63

// Arrive attempts to increment the count. It fails, without modifying
// the word, iff the word is closed. CAS retries back off (tight retry
// loops on a single hot word are exactly where backoff pays).
func (l *Lockword) Arrive() bool {
	var b atomicx.Backoff
	for {
		w := l.w.Load()
		if w&ClosedBit != 0 {
			return false
		}
		if l.w.CompareAndSwap(w, w+1) {
			return true
		}
		b.Pause()
	}
}

// Depart decrements the count. It returns false iff the resulting word
// is closed with zero count — the departer was the last one out of a
// closed word and must hand over. It panics if the count is zero.
func (l *Lockword) Depart() bool {
	var b atomicx.Backoff
	for {
		w := l.w.Load()
		if w&^ClosedBit == 0 {
			panic("central: Depart without matching Arrive")
		}
		if l.w.CompareAndSwap(w, w-1) {
			return w-1 != ClosedBit
		}
		b.Pause()
	}
}

// Close transitions the word from open to closed, reporting whether
// this call made the transition and whether the closed word has zero
// count (acquired outright). An already-closed word is left unchanged
// (false, false).
func (l *Lockword) Close() (transitioned, acquired bool) {
	var b atomicx.Backoff
	for {
		w := l.w.Load()
		if w&ClosedBit != 0 {
			return false, false
		}
		if l.w.CompareAndSwap(w, w|ClosedBit) {
			return true, w == 0
		}
		b.Pause()
	}
}

// CloseIfEmpty closes the word only if it is open with zero count,
// reporting whether it did. One CAS: the writer fast path.
func (l *Lockword) CloseIfEmpty() bool {
	return l.w.Load() == 0 && l.w.CompareAndSwap(0, ClosedBit)
}

// Open reopens the word. It requires (and panics otherwise) that the
// word is closed with zero count.
func (l *Lockword) Open() {
	if w := l.w.Load(); w != ClosedBit {
		panic(fmt.Sprintf("central: Open on word %#x", w))
	}
	l.w.Store(0)
}

// OpenWithArrivals atomically opens the word, performs cnt arrivals,
// and, if close is set, closes it again. Like Open it requires the
// word to be closed with zero count.
func (l *Lockword) OpenWithArrivals(cnt int, close bool) {
	if cnt < 0 || uint64(cnt) >= ClosedBit {
		panic(fmt.Sprintf("central: OpenWithArrivals count %d out of range", cnt))
	}
	if w := l.w.Load(); w != ClosedBit {
		panic(fmt.Sprintf("central: OpenWithArrivals on word %#x", w))
	}
	w := uint64(cnt)
	if close {
		w |= ClosedBit
	}
	l.w.Store(w)
}

// TryUpgrade attempts to atomically transition from "count exactly one"
// to "closed with zero count", regardless of the open/closed state. On
// success the caller's arrival is consumed (do not Depart it). It fails
// if any other arrival exists.
func (l *Lockword) TryUpgrade() bool {
	var b atomicx.Backoff
	for {
		w := l.w.Load()
		if w&^ClosedBit != 1 {
			return false
		}
		if l.w.CompareAndSwap(w, ClosedBit) {
			return true
		}
		b.Pause()
	}
}

// Query returns whether the count is nonzero and whether the word is
// open.
func (l *Lockword) Query() (nonzero, open bool) {
	w := l.w.Load()
	return w&^ClosedBit != 0, w&ClosedBit == 0
}

// Count returns the current arrival count (diagnostic).
func (l *Lockword) Count() int { return int(l.w.Load() &^ ClosedBit) }

// Closed reports whether the word is closed (diagnostic).
func (l *Lockword) Closed() bool { return l.w.Load()&ClosedBit != 0 }
