// Timed acquisition for the centralized lock. The word protocol makes
// abandonment trivial — an acquisition that has not CASed the word yet
// holds nothing, so expiry is just leaving the retry loop — which is
// what makes this lock the reference semantics for the timed variants
// of the queue locks: same API, same return-value contract, none of
// the hand-off subtlety.
package central

import (
	"context"
	"time"

	"ollock/internal/lockcore"
)

// RLockDeadline acquires for reading, abandoning on expiry; it reports
// whether the lock was acquired. A zero deadline never expires.
func (l *RWLock) RLockDeadline(dl lockcore.Deadline) bool {
	if l.word.Arrive() {
		return true
	}
	ld := l.pol.Ladder()
	for {
		if dl.Expired() {
			return false
		}
		ld.Pause()
		if l.word.Arrive() {
			return true
		}
	}
}

// LockDeadline acquires for writing, abandoning on expiry; it reports
// whether the lock was acquired.
func (l *RWLock) LockDeadline(dl lockcore.Deadline) bool {
	if l.word.CloseIfEmpty() {
		return true
	}
	ld := l.pol.Ladder()
	for {
		if dl.Expired() {
			return false
		}
		ld.Pause()
		if l.word.CloseIfEmpty() {
			return true
		}
	}
}

// RLockFor acquires for reading, giving up after d. The try-first shape
// keeps the uncontended timed acquisition at untimed speed: anchoring
// the deadline costs a clock read, which only a failed immediate
// attempt — the one a non-positive d is owed anyway — has to pay.
func (l *RWLock) RLockFor(d time.Duration) bool {
	if l.word.Arrive() {
		return true
	}
	return l.RLockDeadline(lockcore.After(d))
}

// LockFor acquires for writing, giving up after d.
func (l *RWLock) LockFor(d time.Duration) bool {
	if l.word.CloseIfEmpty() {
		return true
	}
	return l.LockDeadline(lockcore.After(d))
}

// RLockCtx acquires for reading, abandoning when ctx is done. It
// returns nil on acquisition and the context's error otherwise.
func (l *RWLock) RLockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dl := lockcore.FromContext(ctx)
	if l.RLockDeadline(dl) {
		return nil
	}
	return dl.Err()
}

// LockCtx acquires for writing, abandoning when ctx is done. It
// returns nil on acquisition and the context's error otherwise.
func (l *RWLock) LockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dl := lockcore.FromContext(ctx)
	if l.LockDeadline(dl) {
		return nil
	}
	return dl.Err()
}
