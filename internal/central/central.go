// Package central implements the naive centralized reader-writer lock:
// a single CAS-able lockword holding a reader count and a writer bit,
// with every acquire and release hitting that one word.
//
// This is the degenerate case the paper's introduction criticizes
// ("serializing updates to central data structures to monitor the number
// of reader threads") and the C-SNZI with zero leaves reduces to. It is
// included as the floor baseline for the scalability experiments and as
// a correctness cross-check: it is simple enough to be obviously right.
package central

import (
	"ollock/internal/atomicx"
)

// Lockword layout: bit 63 = write-locked, bits 0..62 = reader count.
const writerBit = uint64(1) << 63

// RWLock is a centralized reader-writer lock. The zero value is an
// unlocked lock. It is writer-preferring only by CAS luck; no fairness
// is guaranteed (matching the classic "counter + flag" lock).
type RWLock struct {
	word atomicx.PaddedUint64
}

// New returns an unlocked centralized RW lock.
func New() *RWLock { return &RWLock{} }

// RLock acquires the lock for reading, spinning while a writer holds it.
func (l *RWLock) RLock() {
	var b atomicx.Backoff
	for {
		w := l.word.Load()
		if w&writerBit == 0 {
			if l.word.CompareAndSwap(w, w+1) {
				return
			}
			continue
		}
		b.Pause()
	}
}

// TryRLock attempts a read acquisition without waiting.
func (l *RWLock) TryRLock() bool {
	w := l.word.Load()
	return w&writerBit == 0 && l.word.CompareAndSwap(w, w+1)
}

// RUnlock releases a read acquisition.
func (l *RWLock) RUnlock() {
	for {
		w := l.word.Load()
		if w&^writerBit == 0 {
			panic("central: RUnlock without RLock")
		}
		if l.word.CompareAndSwap(w, w-1) {
			return
		}
	}
}

// Lock acquires the lock for writing, spinning until it is free.
func (l *RWLock) Lock() {
	var b atomicx.Backoff
	for {
		if l.word.Load() == 0 && l.word.CompareAndSwap(0, writerBit) {
			return
		}
		b.Pause()
	}
}

// TryLock attempts a write acquisition without waiting.
func (l *RWLock) TryLock() bool {
	return l.word.Load() == 0 && l.word.CompareAndSwap(0, writerBit)
}

// Unlock releases a write acquisition.
func (l *RWLock) Unlock() {
	if l.word.Load() != writerBit {
		panic("central: Unlock without Lock")
	}
	l.word.Store(0)
}

// Readers returns the current reader count (diagnostic).
func (l *RWLock) Readers() int { return int(l.word.Load() &^ writerBit) }

// WriteLocked reports whether a writer holds the lock (diagnostic).
func (l *RWLock) WriteLocked() bool { return l.word.Load()&writerBit != 0 }
