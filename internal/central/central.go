// Package central implements the naive centralized reader-writer lock:
// a single CAS-able lockword holding a reader count and a writer bit,
// with every acquire and release hitting that one word.
//
// This is the degenerate case the paper's introduction criticizes
// ("serializing updates to central data structures to monitor the number
// of reader threads") and the C-SNZI with zero leaves reduces to. It is
// included as the floor baseline for the scalability experiments and as
// a correctness cross-check: it is simple enough to be obviously right.
//
// The lockword itself is exported (Lockword) because it doubles as the
// centralized read indicator of internal/rind: the lock spins where the
// indicator reports failure, but the word transitions are identical.
package central

import (
	"ollock/internal/lockcore"
)

// RWLock is a centralized reader-writer lock. The zero value is an
// unlocked lock. It is writer-preferring only by CAS luck; no fairness
// is guaranteed (matching the classic "counter + flag" lock).
type RWLock struct {
	word Lockword
	// pol selects how contended acquisitions pause between lockword
	// retries (nil = the legacy backoff spin).
	pol *lockcore.Policy
}

// New returns an unlocked centralized RW lock.
func New() *RWLock { return &RWLock{} }

// SetWaitPolicy routes the lock's retry pauses through a wait policy
// (see internal/park via lockcore). Call before sharing the lock; a nil
// policy (the default) keeps the legacy exponential-backoff spin.
func (l *RWLock) SetWaitPolicy(pol *lockcore.Policy) { l.pol = pol }

// RLock acquires the lock for reading, spinning while a writer holds it.
func (l *RWLock) RLock() {
	ld := l.pol.Ladder()
	for !l.word.Arrive() {
		ld.Pause()
	}
}

// TryRLock attempts a read acquisition without waiting for the writer;
// it fails exactly when a writer holds the lock.
func (l *RWLock) TryRLock() bool {
	return l.word.Arrive()
}

// RUnlock releases a read acquisition.
func (l *RWLock) RUnlock() {
	l.word.Depart()
}

// Lock acquires the lock for writing, spinning until it is free.
func (l *RWLock) Lock() {
	ld := l.pol.Ladder()
	for !l.word.CloseIfEmpty() {
		ld.Pause()
	}
}

// TryLock attempts a write acquisition without waiting.
func (l *RWLock) TryLock() bool {
	return l.word.CloseIfEmpty()
}

// Unlock releases a write acquisition.
func (l *RWLock) Unlock() {
	l.word.Open()
}

// Readers returns the current reader count (diagnostic).
func (l *RWLock) Readers() int { return l.word.Count() }

// WriteLocked reports whether a writer holds the lock (diagnostic).
func (l *RWLock) WriteLocked() bool { return l.word.Closed() }
