package central

import (
	"sync"
	"testing"
)

func TestTryLockSemantics(t *testing.T) {
	l := New()
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on write-held lock succeeded")
	}
	if l.TryRLock() {
		t.Fatal("TryRLock on write-held lock succeeded")
	}
	l.Unlock()
	if !l.TryRLock() {
		t.Fatal("TryRLock on free lock failed")
	}
	if !l.TryRLock() {
		t.Fatal("second TryRLock failed (readers must share)")
	}
	if l.TryLock() {
		t.Fatal("TryLock with readers present succeeded")
	}
	l.RUnlock()
	l.RUnlock()
}

func TestDiagnostics(t *testing.T) {
	l := New()
	if l.Readers() != 0 || l.WriteLocked() {
		t.Fatal("fresh lock not clean")
	}
	l.RLock()
	l.RLock()
	if l.Readers() != 2 {
		t.Fatalf("Readers = %d, want 2", l.Readers())
	}
	l.RUnlock()
	l.RUnlock()
	l.Lock()
	if !l.WriteLocked() {
		t.Fatal("WriteLocked false while held")
	}
	l.Unlock()
}

func TestRUnlockPanicsWithoutRLock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RUnlock on free lock did not panic")
		}
	}()
	New().RUnlock()
}

func TestUnlockPanicsWithoutLock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock on free lock did not panic")
		}
	}()
	New().Unlock()
}

func TestContendedCounter(t *testing.T) {
	l := New()
	n := 0
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Lock()
				n++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if n != 12000 {
		t.Fatalf("n = %d, want 12000", n)
	}
}
