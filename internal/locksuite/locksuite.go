// Package locksuite provides a single correctness battery applied to
// every reader-writer lock in this module, plus the adapters that give
// all of them a common per-goroutine interface.
//
// The battery checks the properties a reader-writer lock must provide
// regardless of its fairness policy: writer/writer exclusion,
// reader/writer exclusion, actual reader concurrency (readers can
// overlap), and progress under oversubscription — and it runs a
// randomized mixed workload against an invariant checker. The tests
// live in this package's test files; other packages reuse the adapters
// for benchmarks and examples.
//
// The Locks table is generated from the kind registry
// (internal/lockcore): one entry per registered kind in registry
// order, the standard library's RWMutex as an external reference
// point, then the lock × read-indicator matrix for the kinds the
// registry marks IndicatorMatrix. Only the constructors live here.
package locksuite

import (
	"sync"

	"ollock/internal/bravo"
	"ollock/internal/central"
	"ollock/internal/foll"
	"ollock/internal/goll"
	"ollock/internal/hsieh"
	"ollock/internal/ksuh"
	"ollock/internal/lockcore"
	"ollock/internal/mcs"
	"ollock/internal/obs"
	"ollock/internal/rind"
	"ollock/internal/roll"
	"ollock/internal/solaris"
)

// Proc is the per-goroutine view of a reader-writer lock: one
// outstanding acquisition at a time, RLock/RUnlock and Lock/Unlock
// properly paired.
type Proc interface {
	RLock()
	RUnlock()
	Lock()
	Unlock()
}

// ProcMaker returns a new Proc for the calling goroutine. Implementations
// are safe for concurrent use.
type ProcMaker func() Proc

// Impl describes one lock implementation under test.
type Impl struct {
	// Name is the lock's short name (matches the paper's terminology).
	Name string
	// New creates a fresh lock instance sized for maxProcs goroutines
	// and returns its ProcMaker.
	New func(maxProcs int) ProcMaker
	// NewStats is like New but attaches an obs instrumentation block
	// (the same counters ollock.WithStats wires up) and returns it
	// alongside the ProcMaker. Nil for kinds without instrumentation.
	NewStats func(maxProcs int) (ProcMaker, *obs.Stats)
	// Upgradable marks locks whose Proc also implements Upgrader.
	Upgradable bool
}

// Upgrader is implemented by procs that support write upgrade and
// downgrade (the GOLL lock).
type Upgrader interface {
	TryUpgrade() bool
	Downgrade()
}

// TryProc is implemented by procs with non-blocking acquisition. Every
// implementation in Locks provides it (the suite asserts so); the
// queue-per-holder baselines (KSUH, MCS-RW) are conservative — their
// tries succeed only on an empty queue, so a try may fail alongside an
// active reader — while the rest guarantee reader overlap.
type TryProc interface {
	Proc
	TryRLock() bool
	TryLock() bool
}

// ctors maps registry kind names to constructors; statCtors to the
// instrumented variants (absent for uninstrumented kinds). A sync test
// in the module root asserts these tables and the registry agree.
var ctors = map[string]func(maxProcs int) ProcMaker{
	"goll":       newGOLL,
	"foll":       newFOLL,
	"roll":       newROLL,
	"ksuh":       newKSUH,
	"mcs-rw":     newMCSRW,
	"solaris":    newSolaris,
	"hsieh":      newHsieh,
	"central":    newCentral,
	"bravo-goll": newBravoGOLL,
	"bravo-roll": newBravoROLL,
}

var statCtors = map[string]func(maxProcs int) (ProcMaker, *obs.Stats){
	"goll":       newGOLLStats,
	"foll":       newFOLLStats,
	"roll":       newROLLStats,
	"bravo-goll": newBravoGOLLStats,
	"bravo-roll": newBravoROLLStats,
}

// indCtors builds the read-indicator matrix entries for the kinds the
// registry marks IndicatorMatrix.
var indCtors = map[string]func(rind.Factory) func(int) ProcMaker{
	"goll": newGOLLInd,
	"foll": newFOLLInd,
	"roll": newROLLInd,
}

// matrixFactory maps a lockcore.MatrixIndicators name to its rind
// factory.
func matrixFactory(name string) rind.Factory {
	switch name {
	case "central":
		return rind.CentralFactory()
	case "sharded":
		return rind.ShardedFactory(0)
	default:
		panic("locksuite: unknown matrix indicator " + name)
	}
}

// Locks enumerates every implementation in the module, generated from
// the kind registry: the three OLL locks, the prior-work baselines,
// the BRAVO-biased wrappers, the standard library's RWMutex as an
// external reference point, and the lock × read-indicator matrix
// (each IndicatorMatrix kind over the two non-default rind
// implementations; the plain entries cover the default C-SNZI).
var Locks = buildLocks()

func buildLocks() []Impl {
	descs := lockcore.Descs()
	out := make([]Impl, 0, len(descs)+1+3*len(lockcore.MatrixIndicators()))
	for _, d := range descs {
		out = append(out, Impl{
			Name:       d.Name,
			New:        ctors[d.Name],
			NewStats:   statCtors[d.Name],
			Upgradable: d.Caps.Upgrade,
		})
	}
	out = append(out, Impl{Name: "sync.RWMutex", New: newStdRW})
	for _, d := range descs {
		if !d.IndicatorMatrix {
			continue
		}
		build := indCtors[d.Name]
		for _, ind := range lockcore.MatrixIndicators() {
			out = append(out, Impl{
				Name:       d.Name + "-" + ind,
				New:        build(matrixFactory(ind)),
				Upgradable: d.Caps.Upgrade,
			})
		}
	}
	return out
}

// ByName returns the implementation with the given name, or nil.
func ByName(name string) *Impl {
	for i := range Locks {
		if Locks[i].Name == name {
			return &Locks[i]
		}
	}
	return nil
}

// --- adapters ---

func newGOLL(maxProcs int) ProcMaker {
	l := goll.New()
	return func() Proc { return l.NewProc() }
}

func newFOLL(maxProcs int) ProcMaker {
	l := foll.New(maxProcs)
	return func() Proc { return l.NewProc() }
}

func newROLL(maxProcs int) ProcMaker {
	l := roll.New(maxProcs)
	return func() Proc { return l.NewProc() }
}

type ksuhProc struct {
	l *ksuh.RWLock
	n ksuh.Node
}

func (p *ksuhProc) RLock()         { p.l.RLock(&p.n) }
func (p *ksuhProc) RUnlock()       { p.l.RUnlock(&p.n) }
func (p *ksuhProc) Lock()          { p.l.Lock(&p.n) }
func (p *ksuhProc) Unlock()        { p.l.Unlock(&p.n) }
func (p *ksuhProc) TryRLock() bool { return p.l.TryRLock(&p.n) }
func (p *ksuhProc) TryLock() bool  { return p.l.TryLock(&p.n) }

func newKSUH(maxProcs int) ProcMaker {
	l := ksuh.New()
	return func() Proc { return &ksuhProc{l: l} }
}

type mcsRWProc struct {
	l *mcs.RWLock
	n mcs.RWNode
}

func (p *mcsRWProc) RLock()         { p.l.RLock(&p.n) }
func (p *mcsRWProc) RUnlock()       { p.l.RUnlock(&p.n) }
func (p *mcsRWProc) Lock()          { p.l.Lock(&p.n) }
func (p *mcsRWProc) Unlock()        { p.l.Unlock(&p.n) }
func (p *mcsRWProc) TryRLock() bool { return p.l.TryRLock(&p.n) }
func (p *mcsRWProc) TryLock() bool  { return p.l.TryLock(&p.n) }

func newMCSRW(maxProcs int) ProcMaker {
	l := mcs.NewRWLock()
	return func() Proc { return &mcsRWProc{l: l} }
}

func newSolaris(maxProcs int) ProcMaker {
	l := solaris.New()
	return func() Proc { return l }
}

func newHsieh(maxProcs int) ProcMaker {
	l := hsieh.New(maxProcs)
	return func() Proc { return l.NewProc() }
}

func newCentral(maxProcs int) ProcMaker {
	l := central.New()
	return func() Proc { return l }
}

func newBravoGOLL(maxProcs int) ProcMaker {
	base := goll.New()
	l := bravo.New(func() bravo.BaseProc { return base.NewProc() })
	return func() Proc { return l.NewProc() }
}

func newBravoROLL(maxProcs int) ProcMaker {
	base := roll.New(maxProcs)
	l := bravo.New(func() bravo.BaseProc { return base.NewProc() })
	return func() Proc { return l.NewProc() }
}

// --- indicator-matrix adapters ---

func newGOLLInd(f rind.Factory) func(int) ProcMaker {
	return func(maxProcs int) ProcMaker {
		l := goll.New(goll.WithIndicator(f()))
		return func() Proc { return l.NewProc() }
	}
}

func newFOLLInd(f rind.Factory) func(int) ProcMaker {
	return func(maxProcs int) ProcMaker {
		l := foll.New(maxProcs, foll.WithIndicator(f))
		return func() Proc { return l.NewProc() }
	}
}

func newROLLInd(f rind.Factory) func(int) ProcMaker {
	return func(maxProcs int) ProcMaker {
		l := roll.New(maxProcs, roll.WithIndicator(f))
		return func() Proc { return l.NewProc() }
	}
}

// --- instrumented adapters ---
//
// Each mirrors ollock.WithStats: one obs block per lock instance, its
// scope set read from the kind's registry descriptor (plus the bravo
// scope for the pre-biased wrappers), shared across the BRAVO wrapper
// and its base so one Snapshot covers the whole stack.

// statsFor builds the obs block for a registered kind, deriving the
// scope set from the kind's descriptor the same way ollock.statScopes
// does.
func statsFor(name string) *obs.Stats {
	d, ok := lockcore.DescOf(name)
	if !ok {
		panic("locksuite: unregistered kind " + name)
	}
	scopes := append([]string{}, d.Scopes...)
	if d.ForceBias {
		scopes = append(scopes, "bravo")
	}
	return obs.New(obs.WithName(name), obs.WithScopes(scopes...))
}

func newGOLLStats(maxProcs int) (ProcMaker, *obs.Stats) {
	st := statsFor("goll")
	l := goll.New(goll.WithInstr(lockcore.Instr{Stats: st}))
	return func() Proc { return l.NewProc() }, st
}

func newFOLLStats(maxProcs int) (ProcMaker, *obs.Stats) {
	st := statsFor("foll")
	l := foll.New(maxProcs, foll.WithInstr(lockcore.Instr{Stats: st}))
	return func() Proc { return l.NewProc() }, st
}

func newROLLStats(maxProcs int) (ProcMaker, *obs.Stats) {
	st := statsFor("roll")
	l := roll.New(maxProcs, roll.WithInstr(lockcore.Instr{Stats: st}))
	return func() Proc { return l.NewProc() }, st
}

func newBravoGOLLStats(maxProcs int) (ProcMaker, *obs.Stats) {
	st := statsFor("bravo-goll")
	base := goll.New(goll.WithInstr(lockcore.Instr{Stats: st}))
	l := bravo.New(func() bravo.BaseProc { return base.NewProc() },
		bravo.WithInstr(lockcore.Instr{Stats: st}))
	return func() Proc { return l.NewProc() }, st
}

func newBravoROLLStats(maxProcs int) (ProcMaker, *obs.Stats) {
	st := statsFor("bravo-roll")
	base := roll.New(maxProcs, roll.WithInstr(lockcore.Instr{Stats: st}))
	l := bravo.New(func() bravo.BaseProc { return base.NewProc() },
		bravo.WithInstr(lockcore.Instr{Stats: st}))
	return func() Proc { return l.NewProc() }, st
}

type stdRWProc struct{ l *sync.RWMutex }

func (p stdRWProc) RLock()         { p.l.RLock() }
func (p stdRWProc) RUnlock()       { p.l.RUnlock() }
func (p stdRWProc) Lock()          { p.l.Lock() }
func (p stdRWProc) Unlock()        { p.l.Unlock() }
func (p stdRWProc) TryRLock() bool { return p.l.TryRLock() }
func (p stdRWProc) TryLock() bool  { return p.l.TryLock() }

func newStdRW(maxProcs int) ProcMaker {
	l := new(sync.RWMutex)
	return func() Proc { return stdRWProc{l} }
}
