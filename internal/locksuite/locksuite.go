// Package locksuite provides a single correctness battery applied to
// every reader-writer lock in this module, plus the adapters that give
// all of them a common per-goroutine interface.
//
// The battery checks the properties a reader-writer lock must provide
// regardless of its fairness policy: writer/writer exclusion,
// reader/writer exclusion, actual reader concurrency (readers can
// overlap), and progress under oversubscription — and it runs a
// randomized mixed workload against an invariant checker. The tests
// live in this package's test files; other packages reuse the adapters
// for benchmarks and examples.
package locksuite

import (
	"sync"

	"ollock/internal/bravo"
	"ollock/internal/central"
	"ollock/internal/foll"
	"ollock/internal/goll"
	"ollock/internal/hsieh"
	"ollock/internal/ksuh"
	"ollock/internal/mcs"
	"ollock/internal/obs"
	"ollock/internal/rind"
	"ollock/internal/roll"
	"ollock/internal/solaris"
)

// Proc is the per-goroutine view of a reader-writer lock: one
// outstanding acquisition at a time, RLock/RUnlock and Lock/Unlock
// properly paired.
type Proc interface {
	RLock()
	RUnlock()
	Lock()
	Unlock()
}

// ProcMaker returns a new Proc for the calling goroutine. Implementations
// are safe for concurrent use.
type ProcMaker func() Proc

// Impl describes one lock implementation under test.
type Impl struct {
	// Name is the lock's short name (matches the paper's terminology).
	Name string
	// New creates a fresh lock instance sized for maxProcs goroutines
	// and returns its ProcMaker.
	New func(maxProcs int) ProcMaker
	// NewStats is like New but attaches an obs instrumentation block
	// (the same counters ollock.WithStats wires up) and returns it
	// alongside the ProcMaker. Nil for kinds without instrumentation.
	NewStats func(maxProcs int) (ProcMaker, *obs.Stats)
	// Upgradable marks locks whose Proc also implements Upgrader.
	Upgradable bool
}

// Upgrader is implemented by procs that support write upgrade and
// downgrade (the GOLL lock).
type Upgrader interface {
	TryUpgrade() bool
	Downgrade()
}

// Locks enumerates every implementation in the module: the three OLL
// locks, the four prior-work baselines, the naive centralized lock, and
// the standard library's RWMutex as an external reference point.
var Locks = []Impl{
	{Name: "goll", New: newGOLL, NewStats: newGOLLStats, Upgradable: true},
	{Name: "foll", New: newFOLL, NewStats: newFOLLStats},
	{Name: "roll", New: newROLL, NewStats: newROLLStats},
	{Name: "ksuh", New: newKSUH},
	{Name: "mcs-rw", New: newMCSRW},
	{Name: "solaris", New: newSolaris},
	{Name: "hsieh", New: newHsieh},
	{Name: "central", New: newCentral},
	{Name: "sync.RWMutex", New: newStdRW},
	{Name: "bravo-goll", New: newBravoGOLL, NewStats: newBravoGOLLStats},
	{Name: "bravo-roll", New: newBravoROLL, NewStats: newBravoROLLStats},
	// The lock × read-indicator matrix (ollock.WithIndicator): each OLL
	// lock over the two non-default rind implementations. The plain
	// goll/foll/roll entries above cover the default C-SNZI indicator.
	{Name: "goll-central", New: newGOLLInd(rind.CentralFactory()), Upgradable: true},
	{Name: "goll-sharded", New: newGOLLInd(rind.ShardedFactory(0)), Upgradable: true},
	{Name: "foll-central", New: newFOLLInd(rind.CentralFactory())},
	{Name: "foll-sharded", New: newFOLLInd(rind.ShardedFactory(0))},
	{Name: "roll-central", New: newROLLInd(rind.CentralFactory())},
	{Name: "roll-sharded", New: newROLLInd(rind.ShardedFactory(0))},
}

// ByName returns the implementation with the given name, or nil.
func ByName(name string) *Impl {
	for i := range Locks {
		if Locks[i].Name == name {
			return &Locks[i]
		}
	}
	return nil
}

// --- adapters ---

func newGOLL(maxProcs int) ProcMaker {
	l := goll.New()
	return func() Proc { return l.NewProc() }
}

func newFOLL(maxProcs int) ProcMaker {
	l := foll.New(maxProcs)
	return func() Proc { return l.NewProc() }
}

func newROLL(maxProcs int) ProcMaker {
	l := roll.New(maxProcs)
	return func() Proc { return l.NewProc() }
}

type ksuhProc struct {
	l *ksuh.RWLock
	n ksuh.Node
}

func (p *ksuhProc) RLock()   { p.l.RLock(&p.n) }
func (p *ksuhProc) RUnlock() { p.l.RUnlock(&p.n) }
func (p *ksuhProc) Lock()    { p.l.Lock(&p.n) }
func (p *ksuhProc) Unlock()  { p.l.Unlock(&p.n) }

func newKSUH(maxProcs int) ProcMaker {
	l := ksuh.New()
	return func() Proc { return &ksuhProc{l: l} }
}

type mcsRWProc struct {
	l *mcs.RWLock
	n mcs.RWNode
}

func (p *mcsRWProc) RLock()   { p.l.RLock(&p.n) }
func (p *mcsRWProc) RUnlock() { p.l.RUnlock(&p.n) }
func (p *mcsRWProc) Lock()    { p.l.Lock(&p.n) }
func (p *mcsRWProc) Unlock()  { p.l.Unlock(&p.n) }

func newMCSRW(maxProcs int) ProcMaker {
	l := mcs.NewRWLock()
	return func() Proc { return &mcsRWProc{l: l} }
}

func newSolaris(maxProcs int) ProcMaker {
	l := solaris.New()
	return func() Proc { return l }
}

func newHsieh(maxProcs int) ProcMaker {
	l := hsieh.New(maxProcs)
	return func() Proc { return l.NewProc() }
}

func newCentral(maxProcs int) ProcMaker {
	l := central.New()
	return func() Proc { return l }
}

func newBravoGOLL(maxProcs int) ProcMaker {
	base := goll.New()
	l := bravo.New(func() bravo.BaseProc { return base.NewProc() })
	return func() Proc { return l.NewProc() }
}

func newBravoROLL(maxProcs int) ProcMaker {
	base := roll.New(maxProcs)
	l := bravo.New(func() bravo.BaseProc { return base.NewProc() })
	return func() Proc { return l.NewProc() }
}

// --- indicator-matrix adapters ---

func newGOLLInd(f rind.Factory) func(int) ProcMaker {
	return func(maxProcs int) ProcMaker {
		l := goll.New(goll.WithIndicator(f()))
		return func() Proc { return l.NewProc() }
	}
}

func newFOLLInd(f rind.Factory) func(int) ProcMaker {
	return func(maxProcs int) ProcMaker {
		l := foll.New(maxProcs, foll.WithIndicator(f))
		return func() Proc { return l.NewProc() }
	}
}

func newROLLInd(f rind.Factory) func(int) ProcMaker {
	return func(maxProcs int) ProcMaker {
		l := roll.New(maxProcs, roll.WithIndicator(f))
		return func() Proc { return l.NewProc() }
	}
}

// --- instrumented adapters ---
//
// Each mirrors ollock.WithStats: one obs block per lock instance, its
// scope set matching the facade's statScopes for that kind, shared
// across the BRAVO wrapper and its base so one Snapshot covers the
// whole stack.

func newGOLLStats(maxProcs int) (ProcMaker, *obs.Stats) {
	st := obs.New(obs.WithName("goll"), obs.WithScopes("csnzi", "goll"))
	l := goll.New(goll.WithStats(st))
	return func() Proc { return l.NewProc() }, st
}

func newFOLLStats(maxProcs int) (ProcMaker, *obs.Stats) {
	st := obs.New(obs.WithName("foll"), obs.WithScopes("csnzi", "foll"))
	l := foll.New(maxProcs, foll.WithStats(st))
	return func() Proc { return l.NewProc() }, st
}

func newROLLStats(maxProcs int) (ProcMaker, *obs.Stats) {
	st := obs.New(obs.WithName("roll"), obs.WithScopes("csnzi", "roll"))
	l := roll.New(maxProcs, roll.WithStats(st))
	return func() Proc { return l.NewProc() }, st
}

func newBravoGOLLStats(maxProcs int) (ProcMaker, *obs.Stats) {
	st := obs.New(obs.WithName("bravo-goll"), obs.WithScopes("csnzi", "goll", "bravo"))
	base := goll.New(goll.WithStats(st))
	l := bravo.New(func() bravo.BaseProc { return base.NewProc() }, bravo.WithStats(st))
	return func() Proc { return l.NewProc() }, st
}

func newBravoROLLStats(maxProcs int) (ProcMaker, *obs.Stats) {
	st := obs.New(obs.WithName("bravo-roll"), obs.WithScopes("csnzi", "roll", "bravo"))
	base := roll.New(maxProcs, roll.WithStats(st))
	l := bravo.New(func() bravo.BaseProc { return base.NewProc() }, bravo.WithStats(st))
	return func() Proc { return l.NewProc() }, st
}

type stdRWProc struct{ l *sync.RWMutex }

func (p stdRWProc) RLock()   { p.l.RLock() }
func (p stdRWProc) RUnlock() { p.l.RUnlock() }
func (p stdRWProc) Lock()    { p.l.Lock() }
func (p stdRWProc) Unlock()  { p.l.Unlock() }

func newStdRW(maxProcs int) ProcMaker {
	l := new(sync.RWMutex)
	return func() Proc { return stdRWProc{l} }
}
