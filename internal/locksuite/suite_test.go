package locksuite

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ollock/internal/xrand"
)

// forEachLock runs f as a subtest per lock implementation.
func forEachLock(t *testing.T, f func(t *testing.T, impl Impl)) {
	for _, impl := range Locks {
		impl := impl
		t.Run(impl.Name, func(t *testing.T) {
			t.Parallel()
			f(t, impl)
		})
	}
}

func TestWriterWriterExclusion(t *testing.T) {
	forEachLock(t, func(t *testing.T, impl Impl) {
		const goroutines, iters = 8, 1500
		mk := impl.New(goroutines)
		counter := 0 // unsynchronized: exclusion must protect it
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p := mk()
				for i := 0; i < iters; i++ {
					p.Lock()
					counter++
					p.Unlock()
				}
			}()
		}
		wg.Wait()
		if counter != goroutines*iters {
			t.Fatalf("counter = %d, want %d (writer exclusion violated)", counter, goroutines*iters)
		}
	})
}

func TestReaderWriterExclusion(t *testing.T) {
	forEachLock(t, func(t *testing.T, impl Impl) {
		const goroutines, iters = 8, 1200
		mk := impl.New(goroutines)
		var readers, writers atomic.Int32
		var violations atomic.Int32
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				p := mk()
				r := xrand.New(uint64(id)*2654435761 + 1)
				for i := 0; i < iters; i++ {
					if r.Bool(0.7) {
						p.RLock()
						readers.Add(1)
						if writers.Load() != 0 {
							violations.Add(1)
						}
						readers.Add(-1)
						p.RUnlock()
					} else {
						p.Lock()
						if w := writers.Add(1); w != 1 {
							violations.Add(1)
						}
						if readers.Load() != 0 {
							violations.Add(1)
						}
						writers.Add(-1)
						p.Unlock()
					}
				}
			}(g)
		}
		wg.Wait()
		if v := violations.Load(); v != 0 {
			t.Fatalf("%d exclusion violations observed", v)
		}
	})
}

// TestReaderConcurrency verifies readers genuinely overlap: one reader
// holds the lock until a second reader has also acquired it.
func TestReaderConcurrency(t *testing.T) {
	forEachLock(t, func(t *testing.T, impl Impl) {
		mk := impl.New(2)
		firstIn := make(chan struct{})
		secondIn := make(chan struct{})
		done := make(chan struct{})
		go func() {
			p := mk()
			p.RLock()
			close(firstIn)
			<-secondIn // only reachable if the second reader overlaps us
			p.RUnlock()
			close(done)
		}()
		go func() {
			p := mk()
			<-firstIn
			p.RLock()
			close(secondIn)
			p.RUnlock()
		}()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatal("readers failed to hold the lock concurrently")
		}
	})
}

// TestWriterBlocksReaders verifies a reader cannot acquire while a
// writer holds the lock.
func TestWriterBlocksReaders(t *testing.T) {
	forEachLock(t, func(t *testing.T, impl Impl) {
		mk := impl.New(2)
		w := mk()
		w.Lock()
		acquired := make(chan struct{})
		go func() {
			r := mk()
			r.RLock()
			close(acquired)
			r.RUnlock()
		}()
		select {
		case <-acquired:
			t.Fatal("reader acquired while writer held the lock")
		case <-time.After(50 * time.Millisecond):
		}
		w.Unlock()
		select {
		case <-acquired:
		case <-time.After(20 * time.Second):
			t.Fatal("reader never acquired after writer release")
		}
	})
}

// TestReaderBlocksWriter verifies a writer cannot acquire while readers
// hold the lock.
func TestReaderBlocksWriter(t *testing.T) {
	forEachLock(t, func(t *testing.T, impl Impl) {
		mk := impl.New(2)
		r := mk()
		r.RLock()
		acquired := make(chan struct{})
		go func() {
			w := mk()
			w.Lock()
			close(acquired)
			w.Unlock()
		}()
		select {
		case <-acquired:
			t.Fatal("writer acquired while a reader held the lock")
		case <-time.After(50 * time.Millisecond):
		}
		r.RUnlock()
		select {
		case <-acquired:
		case <-time.After(20 * time.Second):
			t.Fatal("writer never acquired after reader release")
		}
	})
}

// TestMixedStress hammers the lock with a random mix and validates the
// exclusion invariant via a guarded shared structure: each critical
// section checks and perturbs a multi-word value that only exclusion
// keeps consistent.
func TestMixedStress(t *testing.T) {
	readRatios := []float64{0.0, 0.5, 0.95, 1.0}
	forEachLock(t, func(t *testing.T, impl Impl) {
		for _, ratio := range readRatios {
			const goroutines, iters = 10, 800
			mk := impl.New(goroutines)
			var a, b int64 // writer keeps a == b; readers verify
			var wg sync.WaitGroup
			var violations atomic.Int32
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					p := mk()
					r := xrand.New(uint64(id+1) * 977)
					for i := 0; i < iters; i++ {
						if r.Bool(ratio) {
							p.RLock()
							if a != b {
								violations.Add(1)
							}
							p.RUnlock()
						} else {
							p.Lock()
							a++
							if a != b+1 {
								violations.Add(1)
							}
							b++
							p.Unlock()
						}
					}
				}(g)
			}
			wg.Wait()
			if v := violations.Load(); v != 0 {
				t.Fatalf("read ratio %v: %d invariant violations", ratio, v)
			}
			if a != b {
				t.Fatalf("read ratio %v: final a=%d b=%d", ratio, a, b)
			}
		}
	})
}

// TestOversubscription checks progress with many more goroutines than
// GOMAXPROCS (busy-wait loops must yield).
func TestOversubscription(t *testing.T) {
	forEachLock(t, func(t *testing.T, impl Impl) {
		const goroutines, iters = 32, 150
		mk := impl.New(goroutines)
		var total atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				p := mk()
				r := xrand.New(uint64(id+1) * 31337)
				for i := 0; i < iters; i++ {
					if r.Bool(0.9) {
						p.RLock()
						total.Add(1)
						p.RUnlock()
					} else {
						p.Lock()
						total.Add(1)
						p.Unlock()
					}
				}
			}(g)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("stalled: %d/%d operations completed", total.Load(), goroutines*iters)
		}
		if total.Load() != goroutines*iters {
			t.Fatalf("total = %d, want %d", total.Load(), goroutines*iters)
		}
	})
}

// TestAlternatingHandoff drives the worst case for hand-off logic:
// strict alternation between a reader group and writers.
func TestAlternatingHandoff(t *testing.T) {
	forEachLock(t, func(t *testing.T, impl Impl) {
		const rounds = 300
		mk := impl.New(4)
		var wg sync.WaitGroup
		var inWriter atomic.Bool
		var violations atomic.Int32
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p := mk()
				for i := 0; i < rounds; i++ {
					p.RLock()
					if inWriter.Load() {
						violations.Add(1)
					}
					p.RUnlock()
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := mk()
			for i := 0; i < rounds; i++ {
				p.Lock()
				inWriter.Store(true)
				inWriter.Store(false)
				p.Unlock()
			}
		}()
		wg.Wait()
		if v := violations.Load(); v != 0 {
			t.Fatalf("%d reader-during-writer violations", v)
		}
	})
}

// TestSequentialReuse exercises repeated acquire/release cycles from one
// goroutine, including kind switching, which stresses node reuse paths.
func TestSequentialReuse(t *testing.T) {
	forEachLock(t, func(t *testing.T, impl Impl) {
		mk := impl.New(1)
		p := mk()
		for i := 0; i < 500; i++ {
			p.RLock()
			p.RUnlock()
			p.Lock()
			p.Unlock()
			p.RLock()
			p.RUnlock()
		}
	})
}

// TestUpgradeDowngrade exercises the GOLL-specific upgrade/downgrade
// operations under contention.
func TestUpgradeDowngrade(t *testing.T) {
	for _, impl := range Locks {
		if !impl.Upgradable {
			continue
		}
		impl := impl
		t.Run(impl.Name, func(t *testing.T) {
			const goroutines, iters = 6, 400
			mk := impl.New(goroutines)
			var writers atomic.Int32
			var violations atomic.Int32
			var upgrades, failures atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					p := mk()
					u := p.(Upgrader)
					r := xrand.New(uint64(id+1) * 7919)
					for i := 0; i < iters; i++ {
						p.RLock()
						if r.Bool(0.5) && u.TryUpgrade() {
							upgrades.Add(1)
							if w := writers.Add(1); w != 1 {
								violations.Add(1)
							}
							writers.Add(-1)
							if r.Bool(0.5) {
								u.Downgrade()
								p.RUnlock()
							} else {
								p.Unlock()
							}
						} else {
							failures.Add(1)
							p.RUnlock()
						}
					}
				}(g)
			}
			wg.Wait()
			if v := violations.Load(); v != 0 {
				t.Fatalf("%d upgrade exclusion violations", v)
			}
			t.Logf("%s: %d upgrades, %d reads kept", impl.Name, upgrades.Load(), failures.Load())
		})
	}
}

// TestManyLocksIndependent verifies two lock instances do not interfere.
func TestManyLocksIndependent(t *testing.T) {
	forEachLock(t, func(t *testing.T, impl Impl) {
		mkA := impl.New(2)
		mkB := impl.New(2)
		a, b := mkA(), mkB()
		a.Lock()
		// Lock B must still be acquirable for writing while A is held.
		done := make(chan struct{})
		go func() {
			b.Lock()
			b.Unlock()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatal("independent lock blocked")
		}
		a.Unlock()
	})
}
