package locksuite

import (
	"sync"
	"sync/atomic"
	"testing"

	"ollock/internal/xrand"
)

// conservativeTry marks the queue-per-holder baselines whose tries
// succeed only on an empty queue: an active reader keeps its node
// queued, so a second try-read is guaranteed to fail instead of
// guaranteed to succeed.
var conservativeTry = map[string]bool{"ksuh": true, "mcs-rw": true}

// TestTrySemantics pins the non-blocking acquisition contract for every
// implementation: tries succeed on a free lock, fail under an
// exclusion-violating holder, never block, and leave the lock fully
// functional for blocking acquirers afterwards.
func TestTrySemantics(t *testing.T) {
	for _, impl := range Locks {
		impl := impl
		t.Run(impl.Name, func(t *testing.T) {
			mk := impl.New(4)
			p1, ok := mk().(TryProc)
			if !ok {
				t.Fatalf("%s proc does not implement TryProc", impl.Name)
			}
			p2 := mk().(TryProc)
			p3 := mk().(TryProc)

			// Fresh lock: try-write must succeed outright.
			if !p1.TryLock() {
				t.Fatal("TryLock failed on a fresh lock")
			}
			if p2.TryLock() {
				t.Fatal("TryLock succeeded while write-held")
			}
			if p2.TryRLock() {
				t.Fatal("TryRLock succeeded while write-held")
			}
			p1.Unlock()

			// Released: try-read must succeed again.
			if !p1.TryRLock() {
				t.Fatal("TryRLock failed on a free lock")
			}
			overlapped := p2.TryRLock()
			if conservativeTry[impl.Name] {
				if overlapped {
					t.Fatal("conservative try unexpectedly joined an active reader")
				}
			} else if !overlapped {
				t.Fatal("TryRLock failed alongside an active reader")
			}
			if p3.TryLock() {
				t.Fatal("TryLock succeeded while read-held")
			}
			if overlapped {
				p2.RUnlock()
			}
			p1.RUnlock()

			// Liveness: blocking acquisitions still work after the try
			// traffic (a try that corrupted queue or indicator state
			// would wedge or violate here).
			p3.Lock()
			p3.Unlock()
			p1.RLock()
			p2.RLock()
			p2.RUnlock()
			p1.RUnlock()
		})
	}
}

// TestTryHammer races try-only acquirers on every implementation: tries
// never block, so the test cannot deadlock, and every success runs the
// exclusion invariant body. This is the only concurrent coverage for
// the baselines the chaos torture's cancellable matrix skips.
func TestTryHammer(t *testing.T) {
	const threads, ops = 4, 3000
	for _, impl := range Locks {
		impl := impl
		t.Run(impl.Name, func(t *testing.T) {
			t.Parallel()
			mk := impl.New(threads)
			var readers, writers atomic.Int32
			var violations atomic.Int64
			var successes atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < threads; g++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					p := mk().(TryProc)
					rng := xrand.New(uint64(id)*0x9E3779B9 + 77)
					for i := 0; i < ops; i++ {
						if rng.Bool(0.7) {
							if p.TryRLock() {
								successes.Add(1)
								readers.Add(1)
								if writers.Load() != 0 {
									violations.Add(1)
								}
								readers.Add(-1)
								p.RUnlock()
							}
						} else {
							if p.TryLock() {
								successes.Add(1)
								if writers.Add(1) != 1 || readers.Load() != 0 {
									violations.Add(1)
								}
								writers.Add(-1)
								p.Unlock()
							}
						}
					}
				}(g)
			}
			wg.Wait()
			if v := violations.Load(); v != 0 {
				t.Errorf("%d exclusion violations", v)
			}
			if successes.Load() == 0 {
				t.Error("no try ever succeeded — tries are not making progress")
			}
		})
	}
}
