package locksuite

import (
	"sync"
	"sync/atomic"
	"testing"

	"ollock/internal/bravo"
	"ollock/internal/goll"
)

// TestBravoRevocationTorture hammers the arm/revoke cycle specifically:
// a pack of readers stream read acquisitions (alternating fast path and
// slow path as the bias toggles) while writers repeatedly revoke. The
// invariant counters catch any reader admitted during a write or writer
// admitted during reads; the low inhibition multiplier and small write
// gap maximize the number of bias transitions per second, which is where
// the publish/re-check and scan/drain races live.
func TestBravoRevocationTorture(t *testing.T) {
	const (
		readers       = 6
		writers       = 2
		opsPerReader  = 4000
		opsPerWriter  = 600
		checkInterval = 16
	)
	base := goll.New()
	l := bravo.New(func() bravo.BaseProc { return base.NewProc() })

	var inRead, inWrite atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := l.NewProc()
			for i := 0; i < opsPerReader; i++ {
				p.RLock()
				inRead.Add(1)
				if inWrite.Load() != 0 {
					violations.Add(1)
				}
				inRead.Add(-1)
				p.RUnlock()
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := l.NewProc()
			for i := 0; i < opsPerWriter; i++ {
				p.Lock()
				inWrite.Add(1)
				if inWrite.Load() != 1 || inRead.Load() != 0 {
					violations.Add(1)
				}
				// Hold the write lock across a few scheduler points so
				// readers pile up on the revoked slow path.
				if i%checkInterval == 0 {
					for j := 0; j < 8; j++ {
						if inRead.Load() != 0 {
							violations.Add(1)
						}
					}
				}
				inWrite.Add(-1)
				p.Unlock()
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d exclusion violations during revocation torture", v)
	}
}
