package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"ollock/internal/obs"
)

// Prometheus exposition (text format 0.0.4, OpenMetrics-compatible
// layout). Naming convention, documented in METRICS.md:
//
//   - every metric is prefixed "ollock_";
//   - obs dotted names map dot → underscore: csnzi.arrive.root →
//     ollock_csnzi_arrive_root_total;
//   - counters get the "_total" suffix and type "counter";
//   - histograms export as summaries named ollock_<name>_ns
//     (quantile labels 0.5/0.9/0.99 plus _sum, _count) with an
//     ollock_<name>_ns_max gauge alongside (the exact maximum, which
//     log-bucket quantiles are clamped by);
//   - every sample carries a lock="<registry key>" label;
//   - sampler self-metrics: ollock_sampler_samples_total,
//     ollock_sampler_period_seconds.

// PromName maps an obs dotted name to its Prometheus family name,
// without suffixes: "csnzi.arrive.root" → "ollock_csnzi_arrive_root".
func PromName(dotted string) string {
	return "ollock_" + strings.ReplaceAll(dotted, ".", "_")
}

var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// WritePrometheus writes the newest sample of every series in the
// exposition text format. Families are emitted contiguously (one HELP
// and TYPE line each), series sorted by lock label within a family.
func (s *Sampler) WritePrometheus(w io.Writer) error {
	snaps := s.Collect()
	// The Point arrays alone cannot distinguish "out of scope" from
	// "zero", so compute each lock's scope mask from the live block:
	// only in-scope names become samples, and a family appears only
	// when some lock carries it.
	type labeled struct {
		key      string
		p        Point
		hasEvent [obs.NumEvents]bool
		hasHist  [obs.NumHists]bool
	}
	latest := make([]*labeled, 0, len(snaps))
	for _, ss := range snaps {
		p, ok := ss.Latest()
		st := s.reg.Get(ss.Key)
		if !ok || st == nil {
			continue
		}
		l := &labeled{key: ss.Key, p: p}
		st.EachCounter(func(e obs.Event, _ uint64) { l.hasEvent[e] = true })
		st.EachHist(func(h obs.HistID, _ obs.Histogram) { l.hasHist[h] = true })
		latest = append(latest, l)
	}
	sort.Slice(latest, func(i, j int) bool { return latest[i].key < latest[j].key })

	bw := &errWriter{w: w}

	for e := obs.Event(0); e < obs.NumEvents; e++ {
		name := PromName(e.String()) + "_total"
		wrote := false
		for _, l := range latest {
			if !l.hasEvent[e] {
				continue
			}
			if !wrote {
				fmt.Fprintf(bw, "# HELP %s ollock counter %s\n", name, e.String())
				fmt.Fprintf(bw, "# TYPE %s counter\n", name)
				wrote = true
			}
			fmt.Fprintf(bw, "%s{lock=%q} %d\n", name, l.key, l.p.Counters[e])
		}
	}

	// Histogram families as summaries.
	for h := obs.HistID(0); h < obs.NumHists; h++ {
		base := PromName(h.String()) + "_ns"
		wrote := false
		for _, l := range latest {
			if !l.hasHist[h] {
				continue
			}
			if !wrote {
				fmt.Fprintf(bw, "# HELP %s ollock latency summary %s (nanoseconds)\n", base, h.String())
				fmt.Fprintf(bw, "# TYPE %s summary\n", base)
				wrote = true
			}
			hist := l.p.Hists[h]
			for _, q := range summaryQuantiles {
				fmt.Fprintf(bw, "%s{lock=%q,quantile=\"%g\"} %d\n", base, l.key, q, hist.Quantile(q))
			}
			fmt.Fprintf(bw, "%s_sum{lock=%q} %d\n", base, l.key, hist.Sum())
			fmt.Fprintf(bw, "%s_count{lock=%q} %d\n", base, l.key, hist.Count())
		}
		// The exact max rides in its own gauge family (a summary has no
		// max sample type).
		wroteMax := false
		for _, l := range latest {
			if !l.hasHist[h] {
				continue
			}
			if !wroteMax {
				fmt.Fprintf(bw, "# HELP %s_max exact maximum of %s (nanoseconds)\n", base, h.String())
				fmt.Fprintf(bw, "# TYPE %s_max gauge\n", base)
				wroteMax = true
			}
			fmt.Fprintf(bw, "%s_max{lock=%q} %d\n", base, l.key, l.p.Hists[h].Max())
		}
	}

	// Sampler self-metrics.
	fmt.Fprintf(bw, "# HELP ollock_sampler_samples_total sampling sweeps completed\n")
	fmt.Fprintf(bw, "# TYPE ollock_sampler_samples_total counter\n")
	fmt.Fprintf(bw, "ollock_sampler_samples_total %d\n", s.Samples())
	fmt.Fprintf(bw, "# HELP ollock_sampler_period_seconds configured sampling period\n")
	fmt.Fprintf(bw, "# TYPE ollock_sampler_period_seconds gauge\n")
	fmt.Fprintf(bw, "ollock_sampler_period_seconds %g\n", s.period.Seconds())
	fmt.Fprintf(bw, "# EOF\n")
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

// jsonHist is a histogram's JSON shape in the export.
type jsonHist struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
}

// jsonPoint is one sample in the JSON export.
type jsonPoint struct {
	Wall     time.Time           `json:"wall"`
	MonoSecs float64             `json:"mono_secs"`
	Counters map[string]uint64   `json:"counters"`
	Hists    map[string]jsonHist `json:"hists"`
}

// jsonSeries is one lock's ring in the JSON export.
type jsonSeries struct {
	Lock   string      `json:"lock"`
	Points []jsonPoint `json:"points"`
}

type jsonDoc struct {
	PeriodSecs float64      `json:"period_secs"`
	Samples    uint64       `json:"samples"`
	Series     []jsonSeries `json:"series"`
}

// WriteJSON writes the full retained time series (not just the newest
// point) as JSON. Counter and histogram maps carry only in-scope
// names, keyed by the obs dotted name.
func (s *Sampler) WriteJSON(w io.Writer) error {
	snaps := s.Collect()
	doc := jsonDoc{PeriodSecs: s.period.Seconds(), Samples: s.Samples(), Series: []jsonSeries{}}
	for _, ss := range snaps {
		st := s.reg.Get(ss.Key)
		js := jsonSeries{Lock: ss.Key, Points: make([]jsonPoint, 0, len(ss.Points))}
		for _, p := range ss.Points {
			jp := jsonPoint{
				Wall:     p.Wall,
				MonoSecs: p.Mono.Seconds(),
				Counters: map[string]uint64{},
				Hists:    map[string]jsonHist{},
			}
			st.EachCounter(func(e obs.Event, _ uint64) {
				jp.Counters[e.String()] = p.Counters[e]
			})
			st.EachHist(func(h obs.HistID, _ obs.Histogram) {
				hist := p.Hists[h]
				jp.Hists[h.String()] = jsonHist{
					Count: hist.Count(),
					Sum:   hist.Sum(),
					Max:   hist.Max(),
					P50:   hist.Quantile(0.5),
					P90:   hist.Quantile(0.9),
					P99:   hist.Quantile(0.99),
				}
			})
			js.Points = append(js.Points, jp)
		}
		doc.Series = append(doc.Series, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Handler returns an http.Handler serving the exporters: Prometheus
// text by default, JSON when the request has ?format=json, a path
// ending in ".json", or an Accept header preferring application/json.
// Mount it wherever the embedding server wants (conventionally
// /metrics).
func (s *Sampler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wantJSON := r.URL.Query().Get("format") == "json" ||
			strings.HasSuffix(r.URL.Path, ".json") ||
			strings.Contains(r.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = s.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.WritePrometheus(w)
	})
}
