package metrics

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// ValidateExposition is the format validator the CI smoke job pipes
// scraped output through: it checks the subset of the Prometheus text
// exposition format this module emits (and that a scraper parses) —
// line grammar, metric/label name charsets, float-parsable values,
// HELP/TYPE preceding their family's samples, families contiguous and
// not redeclared, summary sample names confined to the declared
// suffixes. An optional trailing "# EOF" marker (the OpenMetrics
// terminator WritePrometheus emits) is accepted.
func ValidateExposition(data []byte) error {
	var (
		metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		labelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
		// name{labels} value [timestamp]
		sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(\s+\d+)?$`)
		labelPair  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
	)

	type family struct {
		name    string
		typ     string
		hasHelp bool
		samples int
		closed  bool // a later family started; more samples = interleave
	}
	families := map[string]*family{}
	var current *family
	sawEOF := false
	lineNo := 0

	// familyOf maps a sample name to its family, folding summary
	// suffixes onto the declared base name.
	familyOf := func(name string) *family {
		if f := families[name]; f != nil {
			return f
		}
		for _, suf := range []string{"_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok {
				if f := families[base]; f != nil && f.typ == "summary" {
					return f
				}
			}
		}
		return nil
	}

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF {
			return fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "EOF":
				sawEOF = true
			case "HELP":
				if len(fields) < 3 {
					return fmt.Errorf("line %d: HELP without metric name", lineNo)
				}
				name := fields[2]
				if !metricName.MatchString(name) {
					return fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, name)
				}
				if f := families[name]; f != nil {
					return fmt.Errorf("line %d: family %q redeclared", lineNo, name)
				}
				if current != nil {
					current.closed = true
				}
				current = &family{name: name, hasHelp: true}
				families[name] = current
			case "TYPE":
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE needs name and type", lineNo)
				}
				name, typ := fields[2], strings.TrimSpace(fields[3])
				switch typ {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, typ)
				}
				f := families[name]
				if f == nil {
					if current != nil {
						current.closed = true
					}
					f = &family{name: name}
					families[name] = f
					current = f
				} else if f != current {
					return fmt.Errorf("line %d: TYPE for %q outside its family block", lineNo, name)
				}
				if f.samples > 0 {
					return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
				if f.typ != "" {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				f.typ = typ
			}
			continue
		}

		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: unparsable sample line %q", lineNo, line)
		}
		name, labels, value := m[1], m[2], m[3]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			switch value {
			case "+Inf", "-Inf", "NaN":
			default:
				return fmt.Errorf("line %d: unparsable value %q", lineNo, value)
			}
		}
		if labels != "" {
			body := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
			if body != "" {
				seen := map[string]bool{}
				for _, pair := range splitLabels(body) {
					lm := labelPair.FindStringSubmatch(pair)
					if lm == nil {
						return fmt.Errorf("line %d: bad label pair %q", lineNo, pair)
					}
					if !labelName.MatchString(lm[1]) {
						return fmt.Errorf("line %d: bad label name %q", lineNo, lm[1])
					}
					if seen[lm[1]] {
						return fmt.Errorf("line %d: duplicate label %q", lineNo, lm[1])
					}
					seen[lm[1]] = true
				}
			}
		}
		f := familyOf(name)
		if f != nil {
			if f.closed {
				return fmt.Errorf("line %d: sample for %q outside its contiguous family block", lineNo, name)
			}
			if f != current {
				return fmt.Errorf("line %d: sample for %q interleaved with family %q", lineNo, name, current.name)
			}
			if f.typ == "summary" && name == f.name {
				// base samples of a summary must carry quantile
				if !strings.Contains(labels, "quantile=") {
					return fmt.Errorf("line %d: summary %q sample without quantile label", lineNo, name)
				}
			}
			f.samples++
		} else if current != nil && strings.HasPrefix(name, current.name) {
			// suffixed sample of a typed family we don't model — fine
		} else if !metricName.MatchString(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, f := range families {
		if f.typ == "" {
			return fmt.Errorf("family %q has HELP but no TYPE", f.name)
		}
		if !f.hasHelp {
			return fmt.Errorf("family %q has TYPE but no HELP", f.name)
		}
		if f.samples == 0 {
			return fmt.Errorf("family %q declared but has no samples", f.name)
		}
	}
	return nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, body[start:])
	return out
}
