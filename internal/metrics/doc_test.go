package metrics

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"ollock/internal/obs"
)

// selfMetrics are the unlabeled pipeline-level families WritePrometheus
// appends after the per-lock families.
var selfMetrics = []string{
	"ollock_sampler_samples_total",
	"ollock_sampler_period_seconds",
}

// TestMetricsDocCoversExportedNames pins METRICS.md to the exporter,
// both directions: every family the exporter can emit appears in the
// document, and every `ollock_`-prefixed family the document mentions
// is one the exporter can emit. Adding an obs counter, renaming a
// histogram, or editing the doc alone fails here.
func TestMetricsDocCoversExportedNames(t *testing.T) {
	raw, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	exported := map[string]bool{}
	for _, n := range obs.AllEventNames() {
		exported[PromName(n)+"_total"] = true
	}
	for _, n := range obs.AllHistNames() {
		exported[PromName(n)+"_ns"] = true
		exported[PromName(n)+"_ns_max"] = true
	}
	for _, n := range selfMetrics {
		exported[n] = true
	}

	for name := range exported {
		if !strings.Contains(doc, "`"+name+"`") && !strings.Contains(doc, "`"+strings.TrimSuffix(name, "_max")+"`") {
			t.Errorf("exported family %s is not documented in METRICS.md", name)
		}
	}

	// Reverse: every documented ollock_* token must be exportable. The
	// summary families document their _max gauge via the prose rule, so
	// both the base and the _max forms are accepted.
	tokens := regexp.MustCompile("`(ollock_[a-z0-9_]+)`").FindAllStringSubmatch(doc, -1)
	seen := map[string]bool{}
	for _, m := range tokens {
		name := m[1]
		if seen[name] {
			continue
		}
		seen[name] = true
		// The convention section shows a family stem without its
		// suffix; accept a token when any exportable form of it exists.
		if !exported[name] && !exported[name+"_total"] && !exported[name+"_max"] &&
			!exported[strings.TrimSuffix(name, "_max")] {
			t.Errorf("METRICS.md documents %s, which the exporter never emits", name)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no ollock_* families found in METRICS.md — doc format changed?")
	}
}
