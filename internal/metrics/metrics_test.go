package metrics

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ollock/internal/obs"
)

// fakeClock scripts the sampler's time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testRegistry() (*obs.Registry, *obs.Stats) {
	reg := obs.NewRegistry()
	st := obs.New(obs.WithName("t"), obs.WithScopes("csnzi", "goll", "park"))
	reg.Register(st)
	return reg, st
}

func TestSamplerDeltasAndRates(t *testing.T) {
	reg, st := testRegistry()
	clk := newFakeClock()
	s := New(reg, WithClock(clk.now), WithRing(8))

	st.Inc(obs.CSNZIArriveRoot, 0)
	s.SampleNow()
	for i := 0; i < 10; i++ {
		st.Inc(obs.CSNZIArriveRoot, 0)
	}
	st.Observe(obs.GOLLWriteWait, 0, 1000)
	clk.advance(2 * time.Second)
	s.SampleNow()

	snaps := s.Collect()
	if len(snaps) != 1 || snaps[0].Key != "t" {
		t.Fatalf("Collect = %+v", snaps)
	}
	w, ok := snaps[0].Window(time.Hour) // spans the whole ring
	if !ok {
		t.Fatal("no window from 2 points")
	}
	if w.Seconds != 2 {
		t.Fatalf("window seconds = %v", w.Seconds)
	}
	if d := w.Deltas[obs.CSNZIArriveRoot]; d != 10 {
		t.Fatalf("delta = %d, want 10", d)
	}
	if r := w.Rates[obs.CSNZIArriveRoot]; r != 5 {
		t.Fatalf("rate = %v, want 5", r)
	}
	if c := w.Hists[obs.GOLLWriteWait].Count(); c != 1 {
		t.Fatalf("windowed hist count = %d, want 1", c)
	}
	// Out-of-scope counters stay zero.
	if w.Deltas[obs.BravoRevoke] != 0 {
		t.Fatal("out-of-scope counter nonzero")
	}
}

// TestRingWraparound drives more samples than the ring holds and
// checks retention, ordering, and window math across the wrap.
func TestRingWraparound(t *testing.T) {
	reg, st := testRegistry()
	clk := newFakeClock()
	s := New(reg, WithClock(clk.now), WithRing(4))

	for i := 0; i < 10; i++ {
		st.Inc(obs.CSNZIArriveRoot, 0)
		s.SampleNow()
		clk.advance(time.Second)
	}
	snaps := s.Collect()
	pts := snaps[0].Points
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want ring size 4", len(pts))
	}
	// Oldest-first: counters are cumulative 7,8,9,10.
	for i, want := range []uint64{7, 8, 9, 10} {
		if got := pts[i].Counters[obs.CSNZIArriveRoot]; got != want {
			t.Fatalf("point %d counter = %d, want %d", i, got, want)
		}
		if i > 0 && pts[i].Mono <= pts[i-1].Mono {
			t.Fatalf("points not monotonic: %v then %v", pts[i-1].Mono, pts[i].Mono)
		}
	}
	w, ok := snaps[0].Window(2 * time.Second)
	if !ok {
		t.Fatal("no 2s window")
	}
	if w.Deltas[obs.CSNZIArriveRoot] != 2 || w.Seconds != 2 {
		t.Fatalf("wrap window delta/secs = %d/%v, want 2/2", w.Deltas[obs.CSNZIArriveRoot], w.Seconds)
	}
	if s.Samples() != 10 {
		t.Fatalf("Samples = %d", s.Samples())
	}
}

// TestCollectDeepCopies pins tear-freedom: a snapshot taken before
// further sampling never changes.
func TestCollectDeepCopies(t *testing.T) {
	reg, st := testRegistry()
	clk := newFakeClock()
	s := New(reg, WithClock(clk.now), WithRing(4))
	st.Inc(obs.CSNZIArriveRoot, 0)
	s.SampleNow()
	before := s.Collect()
	val := before[0].Points[0].Counters[obs.CSNZIArriveRoot]

	for i := 0; i < 20; i++ {
		st.Inc(obs.CSNZIArriveRoot, 0)
		clk.advance(time.Second)
		s.SampleNow()
	}
	if got := before[0].Points[0].Counters[obs.CSNZIArriveRoot]; got != val {
		t.Fatalf("snapshot mutated: %d -> %d", val, got)
	}
}

// TestSampleCollectHammer races SampleNow, Collect, and live counter
// traffic; meaningful under -race.
func TestSampleCollectHammer(t *testing.T) {
	reg, st := testRegistry()
	s := New(reg, WithRing(8))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				st.Inc(obs.CSNZIArriveRoot, i&7)
				st.Observe(obs.ParkWait, i&7, int64(i))
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.SampleNow()
			}
		}
	}()
	go func() {
		defer wg.Done()
		var prev uint64
		for {
			select {
			case <-stop:
				return
			default:
				for _, ss := range s.Collect() {
					for i := 1; i < len(ss.Points); i++ {
						if ss.Points[i].Counters[obs.CSNZIArriveRoot] < ss.Points[i-1].Counters[obs.CSNZIArriveRoot] {
							t.Error("counter ran backwards within a ring")
							return
						}
					}
					if p, ok := ss.Latest(); ok {
						if c := p.Counters[obs.CSNZIArriveRoot]; c < prev {
							t.Error("latest counter ran backwards across collects")
							return
						} else {
							prev = c
						}
					}
				}
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestStartStopBackgroundLoop(t *testing.T) {
	reg, st := testRegistry()
	s := New(reg, WithPeriod(time.Millisecond))
	st.Inc(obs.CSNZIArriveRoot, 0)
	s.Start()
	s.Start() // double Start is a no-op
	deadline := time.After(5 * time.Second)
	for s.Samples() < 3 {
		select {
		case <-deadline:
			t.Fatal("background sampler took no samples")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	s.Stop()
	s.Stop() // double Stop is safe
	n := s.Samples()
	time.Sleep(5 * time.Millisecond)
	if s.Samples() != n {
		t.Fatal("sampler still running after Stop")
	}
}

func TestPrometheusOutputValidatesAndCovers(t *testing.T) {
	reg, st := testRegistry()
	st2 := obs.New(obs.WithName("t"), obs.WithScopes("bravo"))
	reg.Register(st2) // dedupes to t#2
	clk := newFakeClock()
	s := New(reg, WithClock(clk.now))
	st.Inc(obs.CSNZIArriveRoot, 0)
	st.Observe(obs.GOLLWriteWait, 0, 5000)
	st2.Inc(obs.BravoRevoke, 0)
	st2.Observe(obs.BravoDrainWait, 0, 777)
	s.SampleNow()

	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("own output fails validator: %v\n%s", err, out)
	}
	for _, want := range []string{
		`ollock_csnzi_arrive_root_total{lock="t"} 1`,
		`ollock_bravo_revoke_total{lock="t#2"} 1`,
		`ollock_goll_write_wait_ns_count{lock="t"} 1`,
		`ollock_goll_write_wait_ns_sum{lock="t"} 5000`,
		`ollock_goll_write_wait_ns_max{lock="t"} 5000`,
		`quantile="0.99"`,
		"ollock_sampler_samples_total 1",
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Scope separation: the bravo-only block must not export goll
	// counters, and vice versa.
	if strings.Contains(out, `ollock_goll_handoff_total{lock="t#2"}`) {
		t.Error("out-of-scope counter exported for t#2")
	}
	if strings.Contains(out, `ollock_bravo_read_fast_total{lock="t"}`) {
		t.Error("out-of-scope counter exported for t")
	}
}

func TestJSONExportShape(t *testing.T) {
	reg, st := testRegistry()
	clk := newFakeClock()
	s := New(reg, WithClock(clk.now))
	st.Inc(obs.CSNZIArriveRoot, 0)
	st.Observe(obs.ParkWait, 0, 123)
	s.SampleNow()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"lock": "t"`, `"csnzi.arrive.root": 1`, `"park.wait"`, `"count": 1`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON export missing %q in\n%s", want, out)
		}
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	reg, st := testRegistry()
	s := New(reg)
	st.Inc(obs.CSNZIArriveRoot, 0)
	s.SampleNow()
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("default content type %q", ct)
	}
	if err := ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("handler prom output invalid: %v", err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"series"`) {
		t.Fatal("json body missing series")
	}
}

// TestHandlerNegotiationEdgeCases pins the default-to-Prometheus rule:
// only an explicit JSON signal (Accept naming application/json, a
// ".json" path, or ?format=json) switches the body; absent, wildcard,
// and unknown Accept values all get the text exposition.
func TestHandlerNegotiationEdgeCases(t *testing.T) {
	reg, st := testRegistry()
	s := New(reg)
	st.Inc(obs.CSNZIArriveRoot, 0)
	s.SampleNow()
	h := s.Handler()

	serve := func(path, accept string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	wantText := func(name string, rec *httptest.ResponseRecorder) {
		t.Helper()
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s: content type %q, want text exposition", name, ct)
		}
		if err := ValidateExposition(rec.Body.Bytes()); err != nil {
			t.Errorf("%s: prom output invalid: %v", name, err)
		}
	}
	wantJSON := func(name string, rec *httptest.ResponseRecorder) {
		t.Helper()
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q, want application/json", name, ct)
		}
		if !strings.Contains(rec.Body.String(), `"series"`) {
			t.Errorf("%s: json body missing series", name)
		}
	}

	wantText("no Accept header", serve("/metrics", ""))
	wantText("Accept: */*", serve("/metrics", "*/*"))
	wantText("Accept: text/html", serve("/metrics", "text/html"))
	wantText("unknown Accept", serve("/metrics", "application/x-surprise"))
	wantJSON("Accept: application/json", serve("/metrics", "application/json"))
	wantJSON("Accept list naming json", serve("/metrics", "text/html, application/json;q=0.9"))
	wantJSON(".json path", serve("/metrics.json", ""))
	wantJSON(".json path beats Accept", serve("/metrics.json", "text/plain"))
	wantJSON("?format=json", serve("/metrics?format=json", "text/plain"))
}

func TestValidatorRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"interleaved families": "# HELP a a\n# TYPE a counter\na 1\n# HELP b b\n# TYPE b counter\nb 1\na 2\n",
		"type after samples":   "# HELP a a\na 1\n# TYPE a counter\n",
		"bad value":            "# HELP a a\n# TYPE a counter\na one\n",
		"bad label":            "# HELP a a\n# TYPE a counter\na{0bad=\"x\"} 1\n",
		"duplicate label":      "# HELP a a\n# TYPE a counter\na{x=\"1\",x=\"2\"} 1\n",
		"redeclared family":    "# HELP a a\n# TYPE a counter\na 1\n# HELP a a\n# TYPE a counter\na 2\n",
		"no samples":           "# HELP a a\n# TYPE a counter\n",
		"content after EOF":    "# HELP a a\n# TYPE a counter\na 1\n# EOF\na 2\n",
		"summary no quantile":  "# HELP s s\n# TYPE s summary\ns 1\n",
	}
	for name, in := range cases {
		if err := ValidateExposition([]byte(in)); err == nil {
			t.Errorf("%s: validator accepted malformed input", name)
		}
	}
	good := "# HELP s s\n# TYPE s summary\ns{quantile=\"0.5\"} 1\ns_sum 2\ns_count 1\n# EOF\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("validator rejected good summary: %v", err)
	}
}
