// Package metrics is the live observability pipeline over the obs
// layer: a periodic sampler that snapshots every Stats block in an
// obs.Registry into a fixed-size time-series ring, plus exporters —
// Prometheus/OpenMetrics text and JSON — served by an embeddable
// http.Handler.
//
// The counters and histograms in obs are cumulative; monitoring wants
// windows ("revocations per second over the last 10s"), and the
// doctor (internal/doctor) wants the same windows as plain data it
// can apply thresholds to. The sampler bridges the two: every period
// it walks the registry with the alloc-free EachCounter/EachHist
// iterators, stamps a monotonic-clock point, and appends it to a
// per-block ring. Collect returns deep copies under a mutex, so reads
// are tear-free: a reader never observes a half-written point, and a
// returned snapshot never mutates under the caller.
//
// The overhead discipline mirrors the rest of the module: the sampled
// locks pay nothing beyond their ordinary stats cost (the sampler
// only ever reads); a lock built without metrics pays nothing at all.
package metrics

import (
	"sync"
	"time"

	"ollock/internal/obs"
)

// Point is one sample of one Stats block: every in-scope counter and
// histogram at a single instant. Fixed-size arrays indexed by
// obs.Event / obs.HistID keep sampling alloc-light and make delta
// math trivial; out-of-scope slots stay zero.
type Point struct {
	// Wall is the wall-clock stamp (for export and display).
	Wall time.Time
	// Mono is the monotonic reading used for all rate math, as a
	// duration since the sampler started.
	Mono time.Duration
	// Counters holds cumulative totals, indexed by obs.Event.
	Counters [obs.NumEvents]uint64
	// Hists holds cumulative histogram copies, indexed by obs.HistID.
	Hists [obs.NumHists]obs.Histogram
}

// series is one block's ring of points.
type series struct {
	key    string
	st     *obs.Stats
	ring   []Point
	head   int // next write slot
	filled int // number of valid points, <= len(ring)
}

func (s *series) append(p Point) {
	s.ring[s.head] = p
	s.head = (s.head + 1) % len(s.ring)
	if s.filled < len(s.ring) {
		s.filled++
	}
}

// ordered returns the valid points oldest-first (copies).
func (s *series) ordered() []Point {
	out := make([]Point, s.filled)
	start := s.head - s.filled
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.filled; i++ {
		out[i] = s.ring[(start+i)%len(s.ring)]
	}
	return out
}

// Sampler periodically snapshots every block of a registry. Create
// with New; Start/Stop run the background loop, SampleNow pushes one
// sample synchronously (the push-free path tests and cmd tools use).
type Sampler struct {
	reg    *obs.Registry
	period time.Duration
	size   int
	now    func() time.Time // injectable clock (tests)

	mu      sync.Mutex
	started time.Time // first sample's wall time, anchors Mono
	series  map[string]*series
	order   []string
	samples uint64

	stop chan struct{}
	done chan struct{}
}

// Option configures New.
type Option func(*Sampler)

// WithPeriod sets the background sampling period (default 1s; floor
// 1ms).
func WithPeriod(d time.Duration) Option {
	return func(s *Sampler) {
		if d < time.Millisecond {
			d = time.Millisecond
		}
		s.period = d
	}
}

// WithRing sets how many points each block's ring retains (default
// 128, floor 2 — a window needs two points).
func WithRing(n int) Option {
	return func(s *Sampler) {
		if n < 2 {
			n = 2
		}
		s.size = n
	}
}

// WithClock injects the time source (tests script wraparound and rate
// math with it).
func WithClock(now func() time.Time) Option {
	return func(s *Sampler) { s.now = now }
}

// New returns a sampler over reg. The registry may keep growing after
// New: blocks registered later get a ring at their first sample.
func New(reg *obs.Registry, opts ...Option) *Sampler {
	s := &Sampler{
		reg:    reg,
		period: time.Second,
		size:   128,
		now:    time.Now,
		series: map[string]*series{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Period returns the configured sampling period.
func (s *Sampler) Period() time.Duration { return s.period }

// SampleNow takes one sample of every registered block immediately.
func (s *Sampler) SampleNow() {
	wall := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started.IsZero() {
		s.started = wall
	}
	mono := wall.Sub(s.started)
	s.reg.Each(func(key string, st *obs.Stats) {
		sr := s.series[key]
		if sr == nil {
			sr = &series{key: key, st: st, ring: make([]Point, s.size)}
			s.series[key] = sr
			s.order = append(s.order, key)
		}
		var p Point
		p.Wall = wall
		p.Mono = mono
		st.EachCounter(func(e obs.Event, total uint64) { p.Counters[e] = total })
		st.EachHist(func(h obs.HistID, hist obs.Histogram) { p.Hists[h] = hist })
		sr.append(p)
	})
	s.samples++
}

// Start launches the background sampling loop. Stop ends it; Start
// after Stop restarts it. Calling Start twice without Stop is a no-op
// the second time.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stop, s.done = stop, done
	s.mu.Unlock()

	go func() {
		defer close(done)
		t := time.NewTicker(s.period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.SampleNow()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to
// call when not started.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Samples returns how many sampling sweeps have run.
func (s *Sampler) Samples() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// SeriesSnapshot is a tear-free copy of one block's ring,
// oldest-first.
type SeriesSnapshot struct {
	Key    string
	Points []Point
}

// Collect returns a snapshot of every series in registration order.
// The copies are deep: later sampling never mutates a returned
// snapshot.
func (s *Sampler) Collect() []SeriesSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesSnapshot, 0, len(s.order))
	for _, key := range s.order {
		out = append(out, SeriesSnapshot{Key: key, Points: s.series[key].ordered()})
	}
	return out
}

// Latest returns the newest point of the series, false when the ring
// is empty.
func (ss SeriesSnapshot) Latest() (Point, bool) {
	if len(ss.Points) == 0 {
		return Point{}, false
	}
	return ss.Points[len(ss.Points)-1], true
}

// Window is the delta view between two points of one series: what
// happened over Seconds of monotonic time. This is the doctor's input
// shape.
type Window struct {
	Key     string
	Seconds float64
	// Deltas holds per-counter increments over the window.
	Deltas [obs.NumEvents]uint64
	// Rates holds per-counter increments divided by Seconds.
	Rates [obs.NumEvents]float64
	// Hists holds windowed histograms (bucketwise deltas; Max is the
	// cumulative max, see obs.Histogram.DeltaFrom).
	Hists [obs.NumHists]obs.Histogram
}

// Window computes the delta view spanning roughly the last d of the
// series: from the oldest retained point within d of the newest, to
// the newest. It reports false when the series has fewer than two
// points or the span is empty.
func (ss SeriesSnapshot) Window(d time.Duration) (Window, bool) {
	n := len(ss.Points)
	if n < 2 {
		return Window{}, false
	}
	newest := ss.Points[n-1]
	base := 0
	for i := n - 2; i >= 0; i-- {
		if newest.Mono-ss.Points[i].Mono >= d {
			base = i
			break
		}
	}
	return windowBetween(ss.Key, ss.Points[base], newest)
}

// windowBetween builds the delta view between two points.
func windowBetween(key string, from, to Point) (Window, bool) {
	span := to.Mono - from.Mono
	if span <= 0 {
		return Window{}, false
	}
	w := Window{Key: key, Seconds: span.Seconds()}
	for e := obs.Event(0); e < obs.NumEvents; e++ {
		if to.Counters[e] > from.Counters[e] {
			w.Deltas[e] = to.Counters[e] - from.Counters[e]
		}
		w.Rates[e] = float64(w.Deltas[e]) / w.Seconds
	}
	for h := obs.HistID(0); h < obs.NumHists; h++ {
		w.Hists[h] = to.Hists[h].DeltaFrom(&from.Hists[h])
	}
	return w, true
}

// Windows computes the last-d window of every collected series,
// skipping series too short to span one.
func (s *Sampler) Windows(d time.Duration) []Window {
	snaps := s.Collect()
	out := make([]Window, 0, len(snaps))
	for _, ss := range snaps {
		if w, ok := ss.Window(d); ok {
			out = append(out, w)
		}
	}
	return out
}
