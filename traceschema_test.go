package ollock_test

import (
	"bytes"
	"encoding/json"
	"os"
	"sync"
	"testing"

	"ollock"
	"ollock/internal/jsonschema"
	"ollock/internal/trace"
)

// TestRecordingConformsToSchema runs a small traced workload across
// every instrumented kind and validates the recording JSON against the
// checked-in schema — the in-repo version of the CI trace smoke job.
// It fails when an event kind, phase, or route is added to the code
// but not to TRACE_events.schema.json (or vice versa: the enum sync
// test below catches stale schema entries).
func TestRecordingConformsToSchema(t *testing.T) {
	raw, err := os.ReadFile("TRACE_events.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var schema jsonschema.Schema
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatal(err)
	}

	tracer := ollock.NewTracer(2048)
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL, ollock.KindBravoGOLL} {
		l := ollock.MustNew(kind, 4,
			ollock.WithTrace(tracer.Register(string(kind))),
			ollock.WithIndicator(ollock.IndicatorSharded))
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				p := l.NewProc()
				for i := 0; i < 200; i++ {
					if id == 3 && i%10 == 0 {
						p.Lock()
						p.Unlock()
					} else {
						p.RLock()
						p.RUnlock()
					}
				}
			}(g)
		}
		wg.Wait()
	}

	rec := tracer.Record()
	if len(rec.Events) == 0 {
		t.Fatal("workload recorded no events")
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := jsonschema.ValidateBytes(&schema, buf.Bytes()); err != nil {
		t.Fatalf("recording does not conform to TRACE_events.schema.json: %v", err)
	}
}

// TestSchemaKindEnumMatchesCode pins the schema's kind enum to the
// code's kind-name table exactly, both directions.
func TestSchemaKindEnumMatchesCode(t *testing.T) {
	raw, err := os.ReadFile("TRACE_events.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Properties struct {
			Events struct {
				Items struct {
					Properties struct {
						Kind struct {
							Enum []string `json:"enum"`
						} `json:"kind"`
					} `json:"properties"`
				} `json:"items"`
			} `json:"events"`
		} `json:"properties"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	schemaKinds := map[string]bool{}
	for _, k := range doc.Properties.Events.Items.Properties.Kind.Enum {
		schemaKinds[k] = true
	}
	if len(schemaKinds) == 0 {
		t.Fatal("schema kind enum is empty (schema layout changed?)")
	}
	codeKinds := map[string]bool{}
	for k := trace.Kind(1); k < trace.NumKinds; k++ {
		codeKinds[k.String()] = true
	}
	for k := range codeKinds {
		if !schemaKinds[k] {
			t.Errorf("kind %q missing from schema enum", k)
		}
	}
	for k := range schemaKinds {
		if !codeKinds[k] {
			t.Errorf("schema enum kind %q does not exist in code", k)
		}
	}
}
