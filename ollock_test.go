package ollock_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ollock"
)

func TestNewAllKinds(t *testing.T) {
	for _, kind := range ollock.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			l, err := ollock.New(kind, 8)
			if err != nil {
				t.Fatal(err)
			}
			p := l.NewProc()
			p.RLock()
			p.RUnlock()
			p.Lock()
			p.Unlock()
		})
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := ollock.New("no-such-lock", 1); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestMustNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	ollock.MustNew("bogus", 1)
}

func TestKindsCoverNew(t *testing.T) {
	if len(ollock.Kinds()) != 10 {
		t.Fatalf("Kinds() has %d entries, want 10", len(ollock.Kinds()))
	}
}

func TestWithBiasWrapsAnyKind(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL, ollock.Central} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			l := ollock.MustNew(kind, 4, ollock.WithBias())
			bl, ok := l.(*ollock.BravoLock)
			if !ok {
				t.Fatalf("WithBias returned %T, want *BravoLock", l)
			}
			if !bl.Biased() {
				t.Fatal("new biased lock is not read-biased")
			}
			p := bl.NewProc().(*ollock.BravoProc)
			p.RLock()
			if !p.ReadFastPath() {
				t.Fatal("first read under bias did not take the fast path")
			}
			p.RUnlock()
			p.Lock()
			p.Unlock()
			if bl.Biased() {
				t.Fatal("bias still armed after a write revoked it")
			}
		})
	}
}

func TestBravoKindsMatchWithBias(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.KindBravoGOLL, ollock.KindBravoROLL} {
		l := ollock.MustNew(kind, 4)
		if _, ok := l.(*ollock.BravoLock); !ok {
			t.Fatalf("New(%s) returned %T, want *BravoLock", kind, l)
		}
	}
}

func TestWithIndicatorAllCombos(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL, ollock.KindBravoGOLL, ollock.KindBravoROLL} {
		for _, ind := range ollock.IndicatorKinds() {
			kind, ind := kind, ind
			t.Run(string(kind)+"/"+string(ind), func(t *testing.T) {
				l, err := ollock.New(kind, 4, ollock.WithIndicator(ind))
				if err != nil {
					t.Fatal(err)
				}
				p := l.NewProc()
				p.RLock()
				p.RUnlock()
				p.Lock()
				p.Unlock()
			})
		}
	}
}

func TestWithIndicatorRejections(t *testing.T) {
	if _, err := ollock.New(ollock.GOLL, 1, ollock.WithIndicator("no-such-indicator")); err == nil {
		t.Fatal("expected error for unknown indicator kind")
	}
	if _, err := ollock.New(ollock.KSUH, 1, ollock.WithIndicator(ollock.IndicatorSharded)); err == nil {
		t.Fatal("expected error for indicator on a fixed-tracking kind")
	}
	// The default indicator is accepted everywhere (it is a no-op).
	if _, err := ollock.New(ollock.KSUH, 1, ollock.WithIndicator(ollock.IndicatorCSNZI)); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCounterAllKinds(t *testing.T) {
	for _, kind := range ollock.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			const goroutines, iters = 6, 400
			l := ollock.MustNew(kind, goroutines)
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					p := l.NewProc()
					for i := 0; i < iters; i++ {
						if i%5 == 0 {
							p.Lock()
							counter++
							p.Unlock()
						} else {
							p.RLock()
							_ = counter
							p.RUnlock()
						}
					}
				}()
			}
			wg.Wait()
			if counter != goroutines*iters/5 {
				t.Fatalf("counter = %d, want %d", counter, goroutines*iters/5)
			}
		})
	}
}

func TestGOLLProcImplementsUpgrader(t *testing.T) {
	l := ollock.NewGOLL()
	p := l.NewProc()
	u, ok := p.(ollock.Upgrader)
	if !ok {
		t.Fatal("GOLL proc does not implement Upgrader")
	}
	p.RLock()
	if !u.TryUpgrade() {
		t.Fatal("upgrade failed for sole reader")
	}
	u.Downgrade()
	p.RUnlock()
}

func TestCSNZIPublicSurface(t *testing.T) {
	c := ollock.NewCSNZI(ollock.CSNZIWithLeaves(8), ollock.CSNZIWithFanout(4))
	tk := c.Arrive(0)
	if !tk.Arrived() {
		t.Fatal("arrive failed on open C-SNZI")
	}
	if nz, open := c.Query(); !nz || !open {
		t.Fatal("query mismatch")
	}
	if !c.Depart(tk) {
		t.Fatal("depart from open C-SNZI returned false")
	}
	if !c.CloseIfEmpty() {
		t.Fatal("close-if-empty failed on drained C-SNZI")
	}
	c.Open()
}

func TestSNZIPublicSurface(t *testing.T) {
	s := ollock.NewSNZI()
	tk := s.Arrive(0)
	if !s.Query() {
		t.Fatal("no surplus after arrive")
	}
	s.Depart(tk)
	if s.Query() {
		t.Fatal("surplus after depart")
	}
}

func TestMCSMutexPublicSurface(t *testing.T) {
	m := ollock.NewMCSMutex()
	const goroutines, iters = 6, 800
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.NewProc()
			for i := 0; i < iters; i++ {
				p.Lock()
				counter++
				p.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

func TestReaderParallelismAllKinds(t *testing.T) {
	// Readers must overlap for every kind: reader A holds until reader B
	// arrives.
	for _, kind := range ollock.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			l := ollock.MustNew(kind, 2)
			var overlapped atomic.Bool
			aIn := make(chan struct{})
			done := make(chan struct{})
			go func() {
				p := l.NewProc()
				p.RLock()
				close(aIn)
				for !overlapped.Load() {
					runtime.Gosched()
				}
				p.RUnlock()
				close(done)
			}()
			go func() {
				p := l.NewProc()
				<-aIn
				p.RLock()
				overlapped.Store(true)
				p.RUnlock()
			}()
			<-done
		})
	}
}

func ExampleGOLLLock() {
	l := ollock.NewGOLL()
	p := l.NewProc()

	p.RLock()
	fmt.Println("reading")
	p.RUnlock()

	p.Lock()
	fmt.Println("writing")
	p.Unlock()
	// Output:
	// reading
	// writing
}

func ExampleGOLLProc_TryUpgrade() {
	l := ollock.NewGOLL()
	p := l.NewProc().(*ollock.GOLLProc)

	p.RLock()
	if p.TryUpgrade() {
		fmt.Println("upgraded to writer")
		p.Unlock()
	} else {
		p.RUnlock()
	}
	// Output:
	// upgraded to writer
}

func ExampleNew() {
	l := ollock.MustNew(ollock.ROLL, 4)
	var wg sync.WaitGroup
	sum := 0
	for i := 1; i <= 4; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			p := l.NewProc()
			p.Lock()
			sum += v
			p.Unlock()
		}(i)
	}
	wg.Wait()
	fmt.Println(sum)
	// Output:
	// 10
}
