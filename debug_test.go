package ollock_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ollock"
	"ollock/internal/prof"
)

// debugGet serves one request against the handler and returns the
// recorder.
func debugGet(h http.Handler, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// TestDebugHandlerSurface wires all three components, runs a contended
// workload, and walks every endpoint of the unified debug surface.
func TestDebugHandlerSurface(t *testing.T) {
	p := ollock.NewProfiler(1)
	tr := ollock.NewTracer(0)
	m := ollock.NewMetrics(ollock.MetricsProfiler(p))
	l, err := ollock.New("goll", 4,
		ollock.WithMetrics(m),
		ollock.WithStats("goll"),
		ollock.WithProfile(p.Register("goll")),
		ollock.WithTrace(tr.Register("goll")))
	if err != nil {
		t.Fatal(err)
	}
	profileWorkload(t, l, 1000)
	m.Sample()

	h := ollock.DebugHandler(p, m, tr)

	rec := debugGet(h, "/debug/ollock/")
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("index: code %d type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	for _, want := range []string{"/debug/ollock/profile", "/debug/ollock/holds", "/debug/ollock/folded",
		"/debug/ollock/metrics", "/debug/ollock/doctor", "/debug/ollock/trace"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("index missing %s", want)
		}
	}
	if strings.Contains(rec.Body.String(), "not attached") {
		t.Error("index marks a component as missing with all three wired")
	}

	rec = debugGet(h, "/debug/ollock/profile")
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("profile: code %d type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	parsed, err := prof.Parse(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("profile endpoint body does not parse: %v", err)
	}
	if len(parsed.Samples) == 0 || parsed.SampleTypes[0].Type != "contentions" {
		t.Fatalf("profile endpoint: %d samples, types %+v", len(parsed.Samples), parsed.SampleTypes)
	}

	rec = debugGet(h, "/debug/ollock/holds")
	parsed, err = prof.Parse(rec.Body.Bytes())
	if err != nil || len(parsed.SampleTypes) != 2 || parsed.SampleTypes[0].Type != "holds" {
		t.Fatalf("holds endpoint: err %v, types %+v", err, parsed.SampleTypes)
	}

	rec = debugGet(h, "/debug/ollock/folded")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goll;") {
		t.Fatalf("folded: code %d body %q", rec.Code, rec.Body.String())
	}
	if rec := debugGet(h, "/debug/ollock/folded?metric=hold"); rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("folded?metric=hold: code %d empty=%v", rec.Code, rec.Body.Len() == 0)
	}

	// A sub-second delta profile against live (here: idle) locks still
	// returns a valid, possibly empty, profile.
	rec = debugGet(h, "/debug/ollock/profile?seconds=0.05")
	if rec.Code != http.StatusOK {
		t.Fatalf("delta profile: code %d", rec.Code)
	}
	if _, err := prof.Parse(rec.Body.Bytes()); err != nil {
		t.Fatalf("delta profile does not parse: %v", err)
	}

	rec = debugGet(h, "/debug/ollock/metrics")
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("metrics: code %d type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	if !strings.Contains(rec.Body.String(), "ollock_") {
		t.Error("metrics endpoint body has no ollock_ families")
	}
	rec = debugGet(h, "/debug/ollock/metrics.json")
	if rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("metrics.json content type %q", rec.Header().Get("Content-Type"))
	}

	rec = debugGet(h, "/debug/ollock/doctor")
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("doctor: code %d type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var doc struct {
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("doctor body is not the findings document: %v", err)
	}
	if rec := debugGet(h, "/debug/ollock/doctor?window=10s"); rec.Code != http.StatusOK {
		t.Errorf("doctor?window=10s: code %d", rec.Code)
	}

	rec = debugGet(h, "/debug/ollock/trace")
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("trace: code %d type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Error("trace endpoint did not emit valid JSON")
	}
}

// TestDebugHandlerErrors pins the failure modes: bad parameters are
// 400s, unknown subpaths 404, and each endpoint 404s when its
// component is not wired.
func TestDebugHandlerErrors(t *testing.T) {
	p := ollock.NewProfiler(1)
	m := ollock.NewMetrics()
	full := ollock.DebugHandler(p, m, ollock.NewTracer(0))

	for _, path := range []string{
		"/debug/ollock/profile?seconds=abc",
		"/debug/ollock/profile?seconds=-1",
		"/debug/ollock/doctor?window=nonsense",
	} {
		if rec := debugGet(full, path); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, rec.Code)
		}
	}
	if rec := debugGet(full, "/debug/ollock/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown subpath = %d, want 404", rec.Code)
	}

	bare := ollock.DebugHandler(nil, nil, nil)
	for _, path := range []string{
		"/debug/ollock/profile", "/debug/ollock/holds", "/debug/ollock/folded",
		"/debug/ollock/metrics", "/debug/ollock/metrics.json",
		"/debug/ollock/doctor", "/debug/ollock/trace",
	} {
		if rec := debugGet(bare, path); rec.Code != http.StatusNotFound {
			t.Errorf("GET %s with nothing attached = %d, want 404", path, rec.Code)
		}
	}
	rec := debugGet(bare, "/debug/ollock/")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "not attached") {
		t.Errorf("bare index: code %d, body should mark components missing", rec.Code)
	}
}
