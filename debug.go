package ollock

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// DebugHandler unifies the module's observability surfaces under one
// HTTP prefix, net/http/pprof-style. Mount it at /debug/ollock/:
//
//	mux.Handle("/debug/ollock/", ollock.DebugHandler(prof, met, tr))
//
// Endpoints (each answers 404 when its component is nil):
//
//	/debug/ollock/              index of everything below
//	/debug/ollock/profile       contention profile, pprof protobuf
//	/debug/ollock/holds         hold profile, pprof protobuf
//	/debug/ollock/folded        folded flamegraph stacks (?metric=hold)
//	/debug/ollock/metrics       Prometheus/OpenMetrics exposition
//	/debug/ollock/metrics.json  JSON time series
//	/debug/ollock/doctor        pathology findings, JSON
//	/debug/ollock/trace         Chrome trace-event JSON (Perfetto)
//
// The profile and folded endpoints take ?seconds=N to serve a delta
// profile — snapshot, wait N seconds (honouring request cancellation),
// snapshot again, encode the difference — so
// `go tool pprof http://host/debug/ollock/profile?seconds=5` sees only
// the contention of those five seconds. The doctor endpoint takes
// ?window=D (a Go duration, e.g. 30s) to bound the diagnosed history.
//
// Any of the three components may be nil; pass whatever the process
// actually wires up.
func DebugHandler(p *Profiler, m *Metrics, t *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/ollock/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/ollock/" && r.URL.Path != "/debug/ollock" {
			http.NotFound(w, r)
			return
		}
		serveDebugIndex(w, p, m, t)
	})
	mux.HandleFunc("/debug/ollock/profile", serveLockProfile(p, ProfileContention))
	mux.HandleFunc("/debug/ollock/holds", serveLockProfile(p, ProfileHold))
	mux.HandleFunc("/debug/ollock/folded", func(w http.ResponseWriter, r *http.Request) {
		if p == nil {
			http.Error(w, "ollock: no profiler attached", http.StatusNotFound)
			return
		}
		metric := ProfileContention
		if r.URL.Query().Get("metric") == "hold" {
			metric = ProfileHold
		}
		snap, err := debugSnapshot(p, r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteFolded(w, metric)
	})
	metricsHandler := func(w http.ResponseWriter, r *http.Request) {
		if m == nil {
			http.Error(w, "ollock: no metrics pipeline attached", http.StatusNotFound)
			return
		}
		m.Handler().ServeHTTP(w, r)
	}
	mux.HandleFunc("/debug/ollock/metrics", metricsHandler)
	mux.HandleFunc("/debug/ollock/metrics.json", metricsHandler)
	mux.HandleFunc("/debug/ollock/doctor", func(w http.ResponseWriter, r *http.Request) {
		if m == nil {
			http.Error(w, "ollock: no metrics pipeline attached", http.StatusNotFound)
			return
		}
		var window time.Duration
		if s := r.URL.Query().Get("window"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil {
				http.Error(w, "ollock: bad window: "+err.Error(), http.StatusBadRequest)
				return
			}
			window = d
		}
		findings := m.Diagnose(window)
		type jsonFinding struct {
			Severity string `json:"severity"`
			Finding
		}
		out := struct {
			Findings []jsonFinding `json:"findings"`
		}{Findings: []jsonFinding{}}
		for _, f := range findings {
			out.Findings = append(out.Findings, jsonFinding{Severity: f.SeverityName(), Finding: f})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/debug/ollock/trace", func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "ollock: no tracer attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		WriteChromeTrace(w, t)
	})
	return mux
}

// serveLockProfile serves one pprof endpoint: cumulative by default,
// delta under ?seconds=N.
func serveLockProfile(p *Profiler, m ProfileMetric) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if p == nil {
			http.Error(w, "ollock: no profiler attached", http.StatusNotFound)
			return
		}
		snap, err := debugSnapshot(p, r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf(`attachment; filename="ollock-%s.pb.gz"`, m))
		snap.WriteProfile(w, m)
	}
}

// debugSnapshot resolves a request to a profile snapshot: the
// cumulative profile, or — under ?seconds=N — the delta accumulated
// over the next N seconds (cancelled early if the client goes away).
func debugSnapshot(p *Profiler, r *http.Request) (*ProfileSnapshot, error) {
	sec := r.URL.Query().Get("seconds")
	if sec == "" {
		return p.Profile(), nil
	}
	n, err := strconv.ParseFloat(sec, 64)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("ollock: bad seconds parameter %q", sec)
	}
	before := p.Profile()
	timer := time.NewTimer(time.Duration(n * float64(time.Second)))
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-r.Context().Done():
		return nil, r.Context().Err()
	}
	return p.Profile().Sub(before), nil
}

// serveDebugIndex renders the endpoint index, marking which components
// are wired up in this process.
func serveDebugIndex(w http.ResponseWriter, p *Profiler, m *Metrics, t *Tracer) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	status := func(on bool) string {
		if on {
			return ""
		}
		return "  (not attached)"
	}
	fmt.Fprintf(w, "ollock debug surface\n\n")
	fmt.Fprintf(w, "/debug/ollock/profile       pprof contention profile (?seconds=N for a delta)%s\n", status(p != nil))
	fmt.Fprintf(w, "/debug/ollock/holds         pprof hold profile (?seconds=N for a delta)%s\n", status(p != nil))
	fmt.Fprintf(w, "/debug/ollock/folded        folded flamegraph stacks (?metric=hold, ?seconds=N)%s\n", status(p != nil))
	fmt.Fprintf(w, "/debug/ollock/metrics       Prometheus/OpenMetrics exposition%s\n", status(m != nil))
	fmt.Fprintf(w, "/debug/ollock/metrics.json  JSON time series%s\n", status(m != nil))
	fmt.Fprintf(w, "/debug/ollock/doctor        pathology findings, JSON (?window=30s)%s\n", status(m != nil))
	fmt.Fprintf(w, "/debug/ollock/trace         Chrome trace-event JSON for Perfetto%s\n", status(t != nil))
}
