// Package ollock provides scalable reader-writer locks for Go,
// reproducing "Scalable Reader-Writer Locks" (Lev, Luchangco, Olszewski,
// SPAA 2009).
//
// The package exposes the paper's three OLL locks —
//
//   - GOLL: general lock with a Solaris-style wait queue, flexible
//     fairness, and write upgrade/downgrade;
//   - FOLL: FIFO distributed-queue lock (MCS-style) where successive
//     readers share one queue node through a C-SNZI;
//   - ROLL: FOLL with reader preference (readers overtake queued writers
//     to join a waiting reader group);
//
// — along with the closable scalable nonzero indicator (C-SNZI) they are
// built on, and the prior-work baselines the paper compares against
// (KSUH, the MCS fair reader-writer lock, a Solaris-like lock, the
// Hsieh–Weihl lock, and a naive centralized lock).
//
// # Per-goroutine handles
//
// These algorithms keep per-thread state (queue nodes, C-SNZI arrival
// tickets). Go has no thread-local storage, so each participating
// goroutine creates one Proc handle per lock and acquires through it:
//
//	l := ollock.NewROLL(64) // up to 64 participating goroutines
//	p := l.NewProc()        // one per goroutine, create once
//	p.RLock()
//	...read...
//	p.RUnlock()
//
// A Proc supports one outstanding acquisition at a time and must not be
// shared between goroutines while an acquisition is outstanding.
//
// # Choosing a lock
//
// For read-dominated workloads at high core counts, ROLL gives the best
// throughput; FOLL adds strict FIFO fairness at some cost under writer
// pressure; GOLL supports unbounded participants, priorities, and write
// upgrade, at the price of a queue mutex under contention. See
// EXPERIMENTS.md for measured comparisons reproducing the paper's
// Figure 5.
package ollock

import (
	"fmt"

	"ollock/internal/chaos"
	"ollock/internal/foll"
	"ollock/internal/goll"
	"ollock/internal/lockcore"
	"ollock/internal/obs"
	"ollock/internal/park"
	"ollock/internal/prof"
	"ollock/internal/rind"
	"ollock/internal/roll"
	"ollock/internal/trace"
)

// Proc is a per-goroutine handle on a reader-writer lock. RLock/RUnlock
// and Lock/Unlock must be properly paired; one acquisition may be
// outstanding per Proc at a time.
type Proc interface {
	// RLock acquires the lock for reading (shared mode).
	RLock()
	// RUnlock releases a read acquisition.
	RUnlock()
	// Lock acquires the lock for writing (exclusive mode).
	Lock()
	// Unlock releases a write acquisition.
	Unlock()
}

// Upgrader is implemented by Procs that support in-place conversion
// between read and write ownership (the GOLL lock).
type Upgrader interface {
	// TryUpgrade converts a read acquisition into a write acquisition.
	// It succeeds iff the caller is the only holder; on failure the read
	// acquisition is retained.
	TryUpgrade() bool
	// Downgrade converts a write acquisition into a read acquisition
	// without releasing the lock, admitting any waiting readers.
	Downgrade()
}

// Lock is a reader-writer lock instance; create Procs from it, one per
// participating goroutine.
type Lock interface {
	NewProc() Proc
}

// Kind names a lock algorithm.
type Kind string

// Available lock algorithms.
const (
	// GOLL is the general OLL lock (§3 of the paper).
	GOLL Kind = "goll"
	// FOLL is the FIFO distributed-queue OLL lock (§4.2).
	FOLL Kind = "foll"
	// ROLL is the reader-preference distributed-queue OLL lock (§4.3).
	ROLL Kind = "roll"
	// KSUH is the Krieger–Stumm–Unrau–Hanna fair lock (ICPP '93).
	KSUH Kind = "ksuh"
	// MCSRW is the Mellor-Crummey & Scott fair reader-writer lock
	// (PPoPP '91).
	MCSRW Kind = "mcs-rw"
	// Solaris is a user-space version of the Solaris kernel lock.
	Solaris Kind = "solaris"
	// Hsieh is the Hsieh–Weihl private-mutex lock (IPPS '92).
	Hsieh Kind = "hsieh"
	// Central is a naive centralized counter+flag lock.
	Central Kind = "central"
	// KindBravoGOLL is GOLL wrapped with the BRAVO biased reader fast
	// path (equivalent to New(GOLL, n, WithBias())).
	KindBravoGOLL Kind = "bravo-goll"
	// KindBravoROLL is ROLL wrapped with the BRAVO biased reader fast
	// path (equivalent to New(ROLL, n, WithBias())).
	KindBravoROLL Kind = "bravo-roll"
)

// Kinds lists every available lock kind in registry order, OLL locks
// first. The list is derived from the kind registry
// (internal/lockcore) — the single source of truth this facade, the
// command-line tools, and the simulator's lock table all share.
func Kinds() []Kind {
	descs := lockcore.Descs()
	out := make([]Kind, len(descs))
	for i, d := range descs {
		out[i] = Kind(d.Name)
	}
	return out
}

// KindInfo describes one lock kind: its name, a one-line summary, and
// the capability flags that decide which New options it accepts. The
// command-line tools derive their kind enumerations and help text from
// this; the values come from the same registry descriptor that drives
// New's validation, so a capability shown here is exactly a
// combination New accepts.
type KindInfo struct {
	// Kind is the registry name.
	Kind Kind
	// Doc is a one-line description of the algorithm.
	Doc string
	// Indicator reports whether the kind accepts WithIndicator.
	Indicator bool
	// Wait reports whether the kind accepts a non-default WithWait mode.
	Wait bool
	// Upgrade reports whether the kind's Procs implement Upgrader.
	Upgrade bool
	// Priority reports whether the kind's Procs support SetPriority.
	Priority bool
	// BoundedProcs reports whether the kind has a fixed participant
	// capacity: maxProcs must be >= 1 and at most maxProcs Procs may be
	// created.
	BoundedProcs bool
	// Instrumented reports whether WithStats attaches counters to the
	// kind (uninstrumented kinds accept the option but record nothing).
	Instrumented bool
	// Profiled reports whether the kind accepts WithProfile (its
	// acquire/release paths carry call-site profiler hooks).
	Profiled bool
	// Cancellable reports whether the kind's Procs implement
	// DeadlineProc: timed (RLockFor/LockFor) and context-cancellable
	// (RLockCtx/LockCtx) acquisition with safe abandonment.
	Cancellable bool
	// Biased marks the pre-biased wrapper kinds (bravo-*), equivalent
	// to New of the base kind with WithBias.
	Biased bool
	// Figure5 marks the kinds plotted in the paper's Figure 5.
	Figure5 bool
}

func kindInfo(d lockcore.KindDesc) KindInfo {
	return KindInfo{
		Kind:         Kind(d.Name),
		Doc:          d.Doc,
		Indicator:    d.Caps.Indicator,
		Wait:         d.Caps.Wait,
		Upgrade:      d.Caps.Upgrade,
		Priority:     d.Caps.Priority,
		BoundedProcs: d.Caps.BoundedProcs,
		Instrumented: d.Caps.Instrumented,
		Profiled:     d.Caps.Profiled,
		Cancellable:  d.Caps.Cancellable,
		Biased:       d.ForceBias,
		Figure5:      d.Figure5,
	}
}

// KindInfos lists every kind's KindInfo, in Kinds() order.
func KindInfos() []KindInfo {
	descs := lockcore.Descs()
	out := make([]KindInfo, len(descs))
	for i, d := range descs {
		out[i] = kindInfo(d)
	}
	return out
}

// InfoOf returns the KindInfo for a kind; ok is false for unknown
// kinds.
func InfoOf(kind Kind) (KindInfo, bool) {
	d, ok := lockcore.DescOf(string(kind))
	if !ok {
		return KindInfo{}, false
	}
	return kindInfo(d), true
}

// IndicatorKind names a read-indicator implementation (see
// internal/rind): the mechanism through which readers announce and
// retract their presence inside an OLL lock.
type IndicatorKind string

// Available read indicators for the OLL locks.
const (
	// IndicatorCSNZI is the paper's closable scalable nonzero
	// indicator tree — the default.
	IndicatorCSNZI IndicatorKind = "csnzi"
	// IndicatorCentral is a single CAS-able counter word, the
	// degenerate centralized indicator (the ablation floor).
	IndicatorCentral IndicatorKind = "central"
	// IndicatorSharded is the cache-line-padded per-proc
	// ingress/egress counter array behind a closable gate word
	// (BRAVO-style ingress-egress indicator).
	IndicatorSharded IndicatorKind = "sharded"
)

// IndicatorKinds lists every available read indicator.
func IndicatorKinds() []IndicatorKind {
	return []IndicatorKind{IndicatorCSNZI, IndicatorCentral, IndicatorSharded}
}

// WaitMode names a waiting policy (see internal/park): what a blocked
// goroutine does with its CPU between the moment it starts waiting and
// the moment it is granted the lock.
type WaitMode string

// Available wait modes for WithWait.
const (
	// WaitSpin is the paper's §5.1 behavior and the default: waiters
	// spin (with bounded exponential backoff) until granted. Lowest
	// hand-off latency, but every waiter burns a CPU, so throughput
	// collapses when runnable goroutines exceed GOMAXPROCS.
	WaitSpin WaitMode = "spin"
	// WaitAdaptive escalates each wait through a spin → yield → park
	// ladder: a bounded hot spin, a round of runtime.Gosched yields,
	// then parking on a per-waiter channel. Releasers only pay a wake-up
	// when the waiter actually parked (a wake hint in the waiter).
	WaitAdaptive WaitMode = "adaptive"
	// WaitArray moves long-term waiters onto private padded slots of a
	// fixed hashed waiting array (TWA-style, Dice & Kogan 2018):
	// instead of every waiter polling the shared grant word, each polls
	// its own slot — gently — and the releaser bumps exactly the slots
	// it grants. Waits without a cooperating signaler degrade to the
	// adaptive ladder.
	WaitArray WaitMode = "array"
)

// WaitModes lists every available wait mode.
func WaitModes() []WaitMode { return []WaitMode{WaitSpin, WaitAdaptive, WaitArray} }

// parkMode maps a WaitMode to its internal/park mode.
func parkMode(m WaitMode) (park.Mode, error) {
	switch m {
	case "", WaitSpin:
		return park.ModeSpin, nil
	case WaitAdaptive:
		return park.ModeAdaptive, nil
	case WaitArray:
		return park.ModeArray, nil
	default:
		return park.ModeSpin, fmt.Errorf("ollock: unknown wait mode %q", m)
	}
}

// Option configures New.
type Option func(*newConfig)

type newConfig struct {
	bias      bool
	biasMult  int
	withStats bool
	statsName string
	indicator IndicatorKind
	wait      WaitMode
	lt        *trace.LockTrace
	lp        *prof.LockProf
	metrics   *Metrics
	chaos     *chaos.Injector
}

// WithBias wraps the created lock with the BRAVO biased reader fast path
// (see BravoLock): while the lock is read-biased, readers bypass the
// underlying lock entirely via a visible-readers table, and writers
// revoke the bias before entering. Worth enabling for read-dominated
// workloads; see README.md for the trade-off discussion.
func WithBias() Option {
	return func(c *newConfig) { c.bias = true }
}

// WithBiasMultiplier is WithBias with the post-revocation inhibition
// window scaled by n (the BRAVO paper's N parameter; default 1). Larger
// values revoke less often under mixed workloads at the price of keeping
// read-mostly phases on the slow path longer.
func WithBiasMultiplier(n int) Option {
	return func(c *newConfig) {
		c.bias = true
		c.biasMult = n
	}
}

// WithIndicator selects the read indicator backing an OLL lock (GOLL,
// FOLL, ROLL, and their BRAVO-wrapped variants): the paper's C-SNZI
// tree (the default), a degenerate centralized counter word, or a
// sharded ingress/egress counter array. Baseline kinds have their own
// fixed reader-tracking mechanisms; New returns an error when a
// non-default indicator is requested for one. Composes with WithStats
// (every indicator reports through the same csnzi.* counter names) and
// WithBias.
func WithIndicator(k IndicatorKind) Option {
	return func(c *newConfig) { c.indicator = k }
}

// WithWait selects the wait policy for the created lock: what a blocked
// goroutine does between starting to wait and being granted the lock.
// The default, WaitSpin, is the paper's pure spinning (§5.1 eliminates
// context switches by design); WaitAdaptive and WaitArray trade a
// little hand-off latency for robustness when goroutines outnumber
// GOMAXPROCS — see README.md for the measured crossover. Applies to the
// OLL locks (GOLL, FOLL, ROLL, their BRAVO-wrapped variants) and
// Central; the other baseline kinds keep their fixed waiting behavior
// and New returns an error if a non-default mode is requested for one.
// Composes with WithStats (park.* counters), WithBias (revocation drain
// waits descend the ladder), WithIndicator (sharded gate waits ride the
// policy), and WithTrace (park/unpark events).
func WithWait(m WaitMode) Option {
	return func(c *newConfig) { c.wait = m }
}

// WithChaos arms a deterministic-schedule fault injector on the
// created lock (torture testing only): the lock's instrumentation emit
// sites — which mark exactly the protocol's linearization points
// (enqueue published, indicator closed, hand-off decided) — gain
// randomized delays, yields, and micro-sleeps drawn from a per-proc
// schedule seeded by seed, widening the race windows a stress run
// explores. The decisions each Proc makes are a pure function of
// (seed, proc id, call index), so a failing seed re-biases the same
// windows on re-run. Applies to the instrumented kinds (the OLL locks
// and their BRAVO-wrapped variants); New returns an error for others.
// Never enable in production: acquisitions are delayed on purpose.
func WithChaos(seed uint64) Option {
	return func(c *newConfig) { c.chaos = chaos.New(seed) }
}

// ChaosCountOf returns the number of faults injected so far into a
// lock created with WithChaos. The second result is false when the
// lock carries no injector.
func ChaosCountOf(l Lock) (uint64, bool) {
	c, ok := l.(chaosCarrier)
	if !ok || c.lockChaos() == nil {
		return 0, false
	}
	return c.lockChaos().Count(), true
}

// chaosCarrier is implemented by the lock wrappers that can carry a
// chaos injector.
type chaosCarrier interface {
	lockChaos() *chaos.Injector
}

// WithStats attaches a striped instrumentation block to the created
// lock, counting the internal events of its algorithm (C-SNZI arrival
// routing, GOLL hand-offs, FOLL/ROLL queue behaviour, BRAVO bias
// transitions; see ALGORITHMS.md for the counter glossary). Read the
// counters with SnapshotOf. A lock created without WithStats pays
// nothing for the machinery beyond one predictable nil-check branch
// per event site.
//
// If name is non-empty the block is also published through expvar
// under "ollock.<name>" (re-using a name replaces the previous
// block); an empty name defaults to the kind string and skips the
// expvar registration.
func WithStats(name string) Option {
	return func(c *newConfig) {
		c.withStats = true
		c.statsName = name
	}
}

// Snapshot is an immutable point-in-time view of an instrumented
// lock's counters and histograms. See internal/obs for the field
// semantics.
type Snapshot = obs.Snapshot

// HistSnapshot summarizes one latency histogram inside a Snapshot.
type HistSnapshot = obs.HistSnapshot

// statsCarrier is implemented by the lock wrappers that can carry an
// instrumentation block.
type statsCarrier interface {
	lockStats() *obs.Stats
}

// SnapshotOf returns a consistent-enough snapshot of the counters of a
// lock created with WithStats. The second result is false when the
// lock is uninstrumented (not created through New with WithStats) or
// its kind has no instrumentation.
func SnapshotOf(l Lock) (Snapshot, bool) {
	c, ok := l.(statsCarrier)
	if !ok || c.lockStats() == nil {
		return Snapshot{}, false
	}
	return c.lockStats().Snapshot(), true
}

// statScopes returns the obs counter scopes a lock kind reports,
// read from its registry descriptor: every OLL lock carries its own
// scope plus the C-SNZI substrate, a biased wrapper adds the bravo
// scope on top, and a non-spin wait policy adds the park scope (pure
// spinning emits no park events, so the default keeps the historical
// name set exactly). Baseline kinds have no instrumentation.
func statScopes(kind Kind, bias, parked bool) []string {
	var s []string
	if d, ok := lockcore.DescOf(string(kind)); ok {
		s = append(s, d.Scopes...)
	}
	if bias {
		s = append(s, "bravo")
	}
	if parked {
		s = append(s, "park")
	}
	return s
}

// New creates a lock of the given kind sized for maxProcs participating
// goroutines. GOLL, KSUH, MCSRW, Solaris and Central ignore maxProcs
// (they have no fixed capacity); FOLL, ROLL and Hsieh admit at most
// maxProcs Procs and New reports an error unless maxProcs >= 1. Options
// apply to any kind: WithBias wraps the result in the BRAVO biased
// reader fast path.
//
// Kind dispatch and option validation are driven by the kind registry
// (internal/lockcore): each kind's descriptor says which options it
// takes (see KindInfos), and New rejects an inapplicable option with a
// uniform error naming the kind and the rejected value.
func New(kind Kind, maxProcs int, opts ...Option) (Lock, error) {
	var cfg newConfig
	for _, o := range opts {
		o(&cfg)
	}
	wmode, err := parkMode(cfg.wait)
	if err != nil {
		return nil, err
	}
	desc, ok := lockcore.DescOf(string(kind))
	if !ok {
		return nil, fmt.Errorf("ollock: unknown lock kind %q", kind)
	}
	bias := cfg.bias || desc.ForceBias
	parked := wmode != park.ModeSpin
	if parked && !desc.Caps.Wait {
		return nil, fmt.Errorf("ollock: lock kind %q does not take a wait policy (%q)", kind, cfg.wait)
	}
	if desc.Caps.BoundedProcs && maxProcs < 1 {
		return nil, fmt.Errorf("ollock: lock kind %q requires maxProcs >= 1 (got %d)", kind, maxProcs)
	}
	if cfg.lp != nil && !desc.Caps.Profiled {
		return nil, fmt.Errorf("ollock: lock kind %q does not take a profiler (WithProfile)", kind)
	}
	if cfg.chaos != nil && !desc.Caps.Instrumented {
		return nil, fmt.Errorf("ollock: lock kind %q does not take a chaos injector (WithChaos)", kind)
	}
	var st *obs.Stats
	if cfg.withStats {
		name := cfg.statsName
		if name == "" {
			name = string(kind)
		}
		st = obs.New(obs.WithName(name), obs.WithScopes(statScopes(kind, bias, parked)...))
	}
	// One policy is shared by every wait site in the stack — queue
	// waiters, queue-mutex contenders, indicator gates, and (under
	// WithBias) revocation drains — so park.* counters and the waiting
	// array aggregate across layers the way one lock's waiters actually
	// interleave.
	var pol *park.Policy
	if parked {
		pol = park.New(wmode, park.WithStats(st))
	}
	var sealFn func(uint64)
	if cfg.lt != nil && cfg.indicator == IndicatorSharded {
		se := &sealEmitter{tr: cfg.lt.NewLocal(-1)}
		sealFn = se.emit
	}
	factory, err := indicatorFactory(cfg.indicator, sealFn, pol)
	if err != nil {
		return nil, err
	}
	if factory != nil && !desc.Caps.Indicator {
		return nil, fmt.Errorf("ollock: lock kind %q does not take a read indicator (%q)", kind, cfg.indicator)
	}
	baseName := desc.Name
	if desc.ForceBias {
		baseName = desc.BiasBase
	}
	build, ok := builders[baseName]
	if !ok {
		return nil, fmt.Errorf("ollock: lock kind %q has no registered constructor", kind)
	}
	base := build(maxProcs, buildArgs{st: st, lt: cfg.lt, pol: pol, lp: cfg.lp, ch: cfg.chaos, factory: factory})
	if cfg.withStats && cfg.statsName != "" {
		st.PublishExpvar()
	}
	if cfg.metrics != nil {
		cfg.metrics.reg.Register(st)
	}
	if bias {
		// The wrapper shares the base lock's profiler registration:
		// wrapper-owned events (fast-path reads, revocations) and base
		// events land in one per-lock profile.
		return wrapBiasStats(base, cfg.biasMult, st, cfg.lt, pol, cfg.lp, cfg.chaos), nil
	}
	return base, nil
}

// buildArgs carries the cross-cutting pieces New assembles — the stats
// block, trace handle, wait policy, profiler registration, and
// read-indicator factory — into a kind's registered constructor.
type buildArgs struct {
	st      *obs.Stats
	lt      *trace.LockTrace
	pol     *park.Policy
	lp      *prof.LockProf
	ch      *chaos.Injector
	factory rind.Factory
}

// instr bundles the instrumentation arguments into the lockcore.Instr
// the algorithm packages take.
func (a buildArgs) instr() lockcore.Instr {
	return lockcore.Instr{Stats: a.st, Trace: a.lt, Wait: a.pol, Prof: a.lp, Chaos: a.ch}
}

// builders maps base kind names to constructors. The bravo-* wrapper
// kinds have no entry — New dispatches them through their descriptor's
// BiasBase and applies the wrapper afterwards. A sync test asserts
// every registered kind resolves to a builder.
var builders = map[string]func(maxProcs int, a buildArgs) Lock{
	"goll": func(_ int, a buildArgs) Lock {
		gopts := []goll.Option{goll.WithInstr(a.instr())}
		if a.factory != nil {
			gopts = append(gopts, goll.WithIndicator(a.factory()))
		}
		return &GOLLLock{l: goll.New(gopts...), stats: a.st, chaos: a.ch}
	},
	"foll": func(n int, a buildArgs) Lock {
		fopts := []foll.Option{foll.WithInstr(a.instr())}
		if a.factory != nil {
			fopts = append(fopts, foll.WithIndicator(a.factory))
		}
		return &FOLLLock{l: foll.New(n, fopts...), stats: a.st, chaos: a.ch}
	},
	"roll": func(n int, a buildArgs) Lock {
		ropts := []roll.Option{roll.WithInstr(a.instr())}
		if a.factory != nil {
			ropts = append(ropts, roll.WithIndicator(a.factory))
		}
		return &ROLLLock{l: roll.New(n, ropts...), stats: a.st, chaos: a.ch}
	},
	"ksuh":    func(int, buildArgs) Lock { return NewKSUH() },
	"mcs-rw":  func(int, buildArgs) Lock { return NewMCSRW() },
	"solaris": func(int, buildArgs) Lock { return NewSolaris() },
	"hsieh":   func(n int, _ buildArgs) Lock { return NewHsieh(n) },
	"central": func(_ int, a buildArgs) Lock {
		cl := NewCentral()
		cl.l.SetWaitPolicy(a.pol)
		return cl
	},
}

// indicatorFactory maps an IndicatorKind to a rind.Factory, or nil for
// the default (the locks build their own C-SNZI when given no
// indicator, preserving the pre-option construction path exactly).
// sealFn, when non-nil, is installed as the seal hook on every sharded
// indicator the factory produces (trace ind.seal events); pol, when
// non-nil, routes the sharded indicator's gate waits and CAS retries
// through the lock's wait policy.
func indicatorFactory(k IndicatorKind, sealFn func(uint64), pol *park.Policy) (rind.Factory, error) {
	switch k {
	case "", IndicatorCSNZI:
		return nil, nil
	case IndicatorCentral:
		return rind.CentralFactory(), nil
	case IndicatorSharded:
		f := rind.ShardedFactory(0)
		if sealFn == nil && pol == nil {
			return f, nil
		}
		return func() rind.Indicator {
			ind := f()
			if s, ok := ind.(*rind.Sharded); ok {
				if sealFn != nil {
					s.SetSealHook(sealFn)
				}
				s.SetWaitPolicy(pol)
			}
			return ind
		}, nil
	default:
		return nil, fmt.Errorf("ollock: unknown indicator kind %q", k)
	}
}

// MustNew is New, panicking on error; convenient for tables of kinds
// known at compile time.
func MustNew(kind Kind, maxProcs int, opts ...Option) Lock {
	l, err := New(kind, maxProcs, opts...)
	if err != nil {
		panic(err)
	}
	return l
}
