# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build build-386 test race registry-check bench bench-json bench-json-check fig5 fig5-plot fig5-real fairness stress clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

# 32-bit build smoke (64-bit atomics must stay alignment-safe).
build-386:
	GOARCH=386 $(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The kind-registry guards: capability matrix and host ↔ locksuite ↔
# sim sync tests under the race detector, the import-layering boundary,
# and a short New fuzz over arbitrary option combinations.
registry-check:
	$(GO) test -race -run 'TestCapabilityMatrix|TestKindsMatchRegistry|TestLocksuiteMatchesRegistry|TestSimlockMatchesRegistry|TestBoundedProcsValidated|TestAlgorithmPackageLayering' .
	$(GO) test -run FuzzNew -fuzz FuzzNew -fuzztime 20s .
	$(GO) test ./internal/lockcore/

# The full benchmark sweep (real-goroutine + simulated Figure 5 panels,
# micro-benchmarks, ablations).
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable BRAVO read-ratio sweep on the simulated T5440
# (biased vs unbiased, mean of 3 seeded runs; deterministic). The
# output is validated against the checked-in schema.
bench-json:
	$(GO) run ./cmd/benchbravo -runs 3 -out BENCH_bravo.json
	$(GO) run ./cmd/benchcheck -schema BENCH_bravo.schema.json BENCH_bravo.json

# Validate the checked-in benchmark artifact without regenerating it.
bench-json-check:
	$(GO) run ./cmd/benchcheck -schema BENCH_bravo.schema.json BENCH_bravo.json

# Regenerate the paper's Figure 5 on the simulated T5440.
fig5:
	$(GO) run ./cmd/simfig5 -runs 2 -ops 200

fig5-plot:
	$(GO) run ./cmd/simfig5 -plot

# Real goroutines on this host (meaningful on big multicore machines).
fig5-real:
	$(GO) run ./cmd/benchfig5

fairness:
	$(GO) run ./cmd/simfair

stress:
	$(GO) run ./cmd/locktest -threads 32 -ops 100000 -upgrade

clean:
	$(GO) clean ./...
