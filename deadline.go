package ollock

import (
	"context"
	"time"
)

// This file declares the timed/cancellable acquisition surface of the
// facade. The algorithms implement it natively (see ALGORITHMS.md §17
// for the abandonment protocols); the facade only names the contract
// and pins, with compile-time assertions, which kinds provide it.

// TryProc is implemented by the Procs of every lock kind in this
// package: non-blocking acquisition attempts alongside the blocking
// four-method contract. For the queue-based baselines (KSUH, MCS-RW)
// the Try methods are conservative — they can fail while a blocking
// acquisition would have succeeded without waiting — but a true result
// always means the lock is held.
type TryProc interface {
	Proc
	// TryRLock acquires for reading without waiting; it reports success.
	TryRLock() bool
	// TryLock acquires for writing without waiting; it reports success.
	TryLock() bool
}

// DeadlineProc is the timed/cancellable acquisition surface: it is
// implemented by the Procs of the kinds whose KindInfo.Cancellable is
// true (the OLL locks, their BRAVO-wrapped variants, and Central).
//
// A timed acquisition that gives up has acquired nothing and needs no
// release; abandonment is safe at any point of the wait. Under the
// hood a queued waiter that expires either unlinks itself (GOLL), or
// marks its queue node abandoned so the next hand-off skips it and
// recycles the node (FOLL/ROLL) — in both cases the lock's hand-off
// and pool accounting stay exact, which the chaos torture runner
// (cmd/locktest -chaos) and the locksuite cancellation battery verify.
//
// Expired timed acquisitions are counted per kind (goll.timeout,
// foll.timeout, roll.timeout — see METRICS.md) and emit a "cancel"
// trace event, so timeout storms show up in the doctor's findings.
type DeadlineProc interface {
	TryProc
	// RLockFor acquires for reading, giving up after d; it reports
	// whether the lock was acquired. A non-positive d still makes one
	// immediate attempt (it never blocks).
	RLockFor(d time.Duration) bool
	// LockFor acquires for writing, giving up after d; it reports
	// whether the lock was acquired.
	LockFor(d time.Duration) bool
	// RLockCtx acquires for reading, abandoning when ctx is done. It
	// returns nil on acquisition and the context's error otherwise.
	RLockCtx(ctx context.Context) error
	// LockCtx acquires for writing, abandoning when ctx is done. It
	// returns nil on acquisition and the context's error otherwise.
	LockCtx(ctx context.Context) error
}

// Compile-time assertions: every kind's Proc is a TryProc, and every
// Cancellable kind's Proc is a DeadlineProc. A locksuite test asserts
// the converse — that the runtime Proc of each kind matches its
// registry capability.
var (
	_ DeadlineProc = (*GOLLProc)(nil)
	_ DeadlineProc = (*FOLLProc)(nil)
	_ DeadlineProc = (*ROLLProc)(nil)
	_ DeadlineProc = (*BravoProc)(nil)
	_ DeadlineProc = (*CentralLock)(nil)

	_ TryProc = (*KSUHProc)(nil)
	_ TryProc = (*MCSRWProc)(nil)
	_ TryProc = (*SolarisLock)(nil)
	_ TryProc = (*HsiehProc)(nil)
)
