// Command benchbravo runs the BRAVO read-ratio sweep on the simulated
// T5440 and emits a machine-readable JSON series — the perf-trajectory
// artifact behind `make bench-json` (BENCH_bravo.json).
//
// For each base lock (goll, roll) it measures the bravo-wrapped and
// unwrapped variants at every read percentage of the paper's Figure 5
// (100/99/95/80/50/0), averaging over -runs seeded runs (default 3, the
// paper's methodology). The sweep also carries a read-indicator
// dimension (ollock.WithIndicator): the default C-SNZI keeps the full
// grid, and the central and sharded indicators are measured at the
// 100/99/0 read percentages. These sim rows (env "sim") are
// deterministic for a given seed, so they are reproducible bit-for-bit
// on any host.
//
// A second section (env "host", rows with oversub > 0) measures the
// wait-policy dimension (ollock.WithWait) on real goroutines: for each
// OLL lock (goll, roll), wait policy (spin, adaptive, array) and
// oversubscription multiplier (goroutines = N x GOMAXPROCS), it runs
// the harness workload at two read mixes and reports throughput,
// speedup over the pure-spin policy at the same point, and p99
// acquisition latencies. These rows are host-dependent; their purpose
// is the relative ordering (parking policies must win when goroutines
// outnumber GOMAXPROCS), not absolute numbers.
//
// Usage:
//
//	benchbravo [-threads 64,256] [-ops N] [-runs N] [-seed N]
//	           [-oversub 1,4,16] [-oversubops N] [-out FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"ollock"
	"ollock/internal/harness"
	"ollock/internal/lockcore"
	"ollock/internal/locksuite"
	"ollock/internal/sim"
	"ollock/internal/sim/simlock"
)

// Series is one measured point. In the sim section it is a (lock,
// indicator, threads, read-ratio) point with its unwrapped base
// alongside so the wrapper's effect is self-contained; in the host
// section it is a (lock, wait-policy, oversubscription, read-ratio)
// point whose base is the pure-spin policy at the same coordinates.
type Series struct {
	// Env is "sim" for deterministic simulated rows and "host" for
	// real-goroutine oversubscription rows.
	Env  string `json:"env"`
	Lock string `json:"lock"`
	Base string `json:"base"`
	// Indicator is the read indicator backing both the wrapped and the
	// base lock (csnzi, central, sharded; see ollock.WithIndicator).
	Indicator string `json:"indicator"`
	// WaitPolicy is the wait mode of ollock.WithWait (spin, adaptive,
	// array). Sim rows always use spin (the paper's behavior).
	WaitPolicy string `json:"wait_policy"`
	// Oversub is the oversubscription multiplier of a host row
	// (goroutines = Oversub x GOMAXPROCS); 0 marks a sim row, where
	// simulated threads never outnumber the simulated cores.
	Oversub          int     `json:"oversub"`
	Threads          int     `json:"threads"`
	ReadFraction     float64 `json:"read_fraction"`
	Runs             int     `json:"runs"`
	Throughput       float64 `json:"throughput_acq_per_s"`
	BaseThroughput   float64 `json:"base_throughput_acq_per_s"`
	Speedup          float64 `json:"speedup"`
	FastReadFraction float64 `json:"fast_read_fraction"`
	Revocations      int64   `json:"revocations"`
	// P99ReadNs / P99WriteNs are host-row p99 acquisition latencies in
	// nanoseconds (harness.RunLatency); zero on sim rows.
	P99ReadNs  int64 `json:"p99_read_ns"`
	P99WriteNs int64 `json:"p99_write_ns"`
	// BiasArms counts slow-path bias re-arms (bravo.bias.arm), summed
	// over runs.
	BiasArms int64 `json:"bias_arms"`
	// TreeArriveFraction is the share of C-SNZI arrivals diverted to
	// the leaf tree: csnzi.arrive.tree / (tree + root). Zero when no
	// arrival reached the underlying lock (pure fast-path regimes).
	TreeArriveFraction float64 `json:"tree_arrive_fraction"`
	// Counters is the lock stack's full obs counter set (csnzi.*,
	// goll.*/roll.*, bravo.*), summed over runs.
	Counters map[string]uint64 `json:"counters"`
	// Metrics is the sampled-metrics view of the row: the derived rates
	// the pathology doctor evaluates (see ALGORITHMS.md §14), so
	// trajectory dashboards can track revocation and park churn without
	// reprocessing the raw counters.
	Metrics MetricsSummary `json:"metrics"`
}

// MetricsSummary carries per-acquisition rates derived the same way
// internal/doctor derives its signals: reads are bravo fast reads plus
// C-SNZI arrivals, writes are the write-wait histogram counts (exactly
// one observation per write acquisition).
type MetricsSummary struct {
	// RevocationsPerRead is bravo.revoke per read acquisition — the
	// bias-thrash signal (0 for unwrapped rows and all-write mixes).
	RevocationsPerRead float64 `json:"revocations_per_read"`
	// ParksPerAcquire is park.park per acquisition — the park-storm
	// signal (0 under the spin policy, which never parks).
	ParksPerAcquire float64 `json:"parks_per_acquire"`
}

// summarize derives the MetricsSummary from summed counters and the
// summed write-acquisition count.
func summarize(counters map[string]uint64, writes uint64) MetricsSummary {
	var s MetricsSummary
	reads := counters["bravo.read.fast"] + counters["csnzi.arrive.root"] + counters["csnzi.arrive.tree"]
	if reads > 0 {
		s.RevocationsPerRead = float64(counters["bravo.revoke"]) / float64(reads)
	}
	if acq := reads + writes; acq > 0 {
		s.ParksPerAcquire = float64(counters["park.park"]) / float64(acq)
	}
	return s
}

// Output is the BENCH_bravo.json document.
type Output struct {
	Tool    string   `json:"tool"`
	Machine string   `json:"machine"`
	Ops     int      `json:"ops_per_thread"`
	Seed    uint64   `json:"seed"`
	Series  []Series `json:"series"`
}

var readFractions = []float64{1.00, 0.99, 0.95, 0.80, 0.50, 0.00}

// indicatorFractions is the reduced sweep for the non-default
// indicators: the read-dominated regimes the indicator choice is about,
// plus the all-writer floor.
var indicatorFractions = []float64{1.00, 0.99, 0.00}

// indicators lists the read-indicator dimension of the sweep; csnzi is
// the default and keeps the full read-fraction grid.
var indicators = []string{"csnzi", "central", "sharded"}

// oversubFractions are the host-section read mixes: the read-dominated
// regime where BRAVO-style fast reads matter, the balanced mix where
// writer handoff dominates, and the all-writer floor — the pure
// lock-convoy regime where parking pays off hardest.
var oversubFractions = []float64{0.95, 0.50, 0.00}

// factories returns the (base, bravo-wrapped) factory pair for a base
// lock over the named indicator. The default csnzi uses the registered
// factories; the others use the lock × indicator matrix entries, with
// the wrapper built inline (NewBravo adopts the base's stats block
// either way).
// biasBases lists the base kinds of the registry's pre-biased wrapper
// kinds (bravo-goll → goll, ...), in registry order — the pairs this
// benchmark compares.
func biasBases() []string {
	var out []string
	for _, d := range lockcore.Descs() {
		if d.ForceBias {
			out = append(out, d.BiasBase)
		}
	}
	return out
}

// biasBaseKinds is biasBases as ollock.Kind values for the host section.
func biasBaseKinds() []ollock.Kind {
	var out []ollock.Kind
	for _, name := range biasBases() {
		out = append(out, ollock.Kind(name))
	}
	return out
}

func factories(baseName, indicator string) (base, wrapped simlock.Factory, err error) {
	lookup := func(name string) (simlock.Factory, error) {
		f := simlock.ByName(name)
		if f == nil {
			return simlock.Factory{}, fmt.Errorf("missing factory for %s", name)
		}
		return *f, nil
	}
	if indicator == "csnzi" {
		if base, err = lookup(baseName); err != nil {
			return
		}
		wrapped, err = lookup("bravo-" + baseName)
		return
	}
	if base, err = lookup(baseName + "-" + indicator); err != nil {
		return
	}
	wrapped = simlock.Factory{
		Name: "bravo-" + baseName,
		New: func(m *sim.Machine, n int) simlock.Lock {
			return simlock.NewBravo(m, n, base.New(m, n))
		},
	}
	return
}

func main() {
	threadsFlag := flag.String("threads", "64,256", "comma-separated simulated thread counts")
	ops := flag.Int("ops", 120, "acquisitions per simulated thread")
	runs := flag.Int("runs", 3, "seeded runs to average (paper uses 3)")
	seed := flag.Uint64("seed", 42, "base PRNG seed")
	oversub := flag.String("oversub", "1,4,16", "comma-separated host oversubscription multipliers (goroutines = mult x GOMAXPROCS); empty disables the host section")
	oversubOps := flag.Int("oversubops", 500000, "acquisitions per goroutine in the host oversubscription section (large enough that each goroutine outlives a scheduler slice, so real lock convoys form)")
	out := flag.String("out", "", "write JSON here (default stdout)")
	flag.Parse()

	threads, err := parseInts(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbravo:", err)
		os.Exit(2)
	}

	doc := Output{Tool: "benchbravo", Machine: "sim-T5440", Ops: *ops, Seed: *seed}
	for _, baseName := range biasBases() {
		for _, indicator := range indicators {
			base, wrapped, err := factories(baseName, indicator)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchbravo:", err)
				os.Exit(1)
			}
			fracs := readFractions
			if indicator != "csnzi" {
				fracs = indicatorFractions
			}
			for _, n := range threads {
				for _, frac := range fracs {
					s := Series{
						Env: "sim", Lock: wrapped.Name, Base: baseName,
						Indicator: indicator, WaitPolicy: "spin",
						Threads: n, ReadFraction: frac, Runs: *runs,
					}
					var fast, slow, revs int64
					var writes uint64
					counters := map[string]uint64{}
					for r := 0; r < *runs; r++ {
						runSeed := *seed + uint64(r)
						// Re-create the wrapped lock per run to read its
						// counters.
						m := simlock.RunInstrumented(wrapped, sim.T5440(), n, frac, *ops, runSeed)
						s.Throughput += m.Result.Throughput
						fast += m.FastReads
						slow += m.SlowReads
						revs += m.Revocations
						for k, v := range m.Snapshot.Counters {
							counters[k] += v
						}
						for name, h := range m.Snapshot.Hists {
							if strings.HasSuffix(name, ".write.wait") {
								writes += h.Count
							}
						}
						b := simlock.RunExperiment(base, sim.T5440(), n, frac, *ops, runSeed)
						s.BaseThroughput += b.Throughput
					}
					s.Counters = counters
					s.Metrics = summarize(counters, writes)
					s.BiasArms = int64(counters["bravo.bias.arm"])
					if tot := counters["csnzi.arrive.tree"] + counters["csnzi.arrive.root"]; tot > 0 {
						s.TreeArriveFraction = float64(counters["csnzi.arrive.tree"]) / float64(tot)
					}
					s.Throughput /= float64(*runs)
					s.BaseThroughput /= float64(*runs)
					if s.BaseThroughput > 0 {
						s.Speedup = s.Throughput / s.BaseThroughput
					}
					if fast+slow > 0 {
						s.FastReadFraction = float64(fast) / float64(fast+slow)
					}
					s.Revocations = revs / int64(*runs)
					doc.Series = append(doc.Series, s)
					fmt.Fprintf(os.Stderr, "%-11s ind=%-8s t=%-4d read%%=%-5.1f %.3e vs %.3e acq/s (%.2fx, fast=%.0f%%, revs=%d)\n",
						s.Lock, s.Indicator, n, frac*100, s.Throughput, s.BaseThroughput, s.Speedup, s.FastReadFraction*100, s.Revocations)
				}
			}
		}
	}

	if *oversub != "" {
		mults, err := parseInts(*oversub)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchbravo:", err)
			os.Exit(2)
		}
		doc.Series = append(doc.Series, oversubSweep(mults, *oversubOps, *runs, *seed)...)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbravo:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchbravo:", err)
		os.Exit(1)
	}
}

// hostImpl adapts an ollock facade lock to the harness: one shared lock
// instance per measurement pass, each goroutine getting its own proc.
// Every created lock is instrumented and collected through sink so the
// sweep can sum its counters afterwards (the stats overhead — one
// striped increment per internal event — is paid identically by every
// wait mode, so the spin-relative speedups stay comparable).
func hostImpl(kind ollock.Kind, mode ollock.WaitMode, sink *hostLocks) locksuite.Impl {
	return locksuite.Impl{
		Name: string(kind) + "+" + string(mode),
		New: func(maxProcs int) locksuite.ProcMaker {
			l := ollock.MustNew(kind, maxProcs, ollock.WithWait(mode), ollock.WithStats(""))
			sink.add(l)
			return func() locksuite.Proc { return l.NewProc() }
		},
	}
}

// hostLocks collects the lock instances a measurement created (the
// harness re-creates the lock per pass), for post-run counter sums.
type hostLocks struct {
	mu    sync.Mutex
	locks []ollock.Lock
}

func (h *hostLocks) add(l ollock.Lock) {
	h.mu.Lock()
	h.locks = append(h.locks, l)
	h.mu.Unlock()
}

// sum folds every collected lock's counters (and write-wait histogram
// counts) into one map + write total.
func (h *hostLocks) sum() (map[string]uint64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	counters := map[string]uint64{}
	var writes uint64
	for _, l := range h.locks {
		sn, ok := ollock.SnapshotOf(l)
		if !ok {
			continue
		}
		for _, name := range sn.Names() {
			counters[name] += sn.Counters[name]
		}
		for name, hist := range sn.Hists {
			if strings.HasSuffix(name, ".write.wait") {
				writes += hist.Count
			}
		}
	}
	return counters, writes
}

// oversubSweep runs the host (real goroutine) wait-policy section: for
// each OLL lock, oversubscription multiplier and read mix, measure the
// three wait policies and report each parking policy's speedup over
// pure spin at the same point. Throughput is harness.Run's mean over
// runs — no per-acquisition clock reads, so the measured op is the
// lock and nothing else; the p99 fields come from one additional
// harness.RunLatency pass, whose per-op timestamps would otherwise pad
// every mode's op by two clock reads and compress the ratio.
func oversubSweep(mults []int, ops, runs int, seed uint64) []Series {
	procs := runtime.GOMAXPROCS(0)
	var out []Series
	for _, kind := range biasBaseKinds() {
		for _, mult := range mults {
			threads := mult * procs
			for _, frac := range oversubFractions {
				var spinTP float64
				for _, mode := range ollock.WaitModes() {
					s := Series{
						Env: "host", Lock: string(kind), Base: string(kind),
						Indicator: "csnzi", WaitPolicy: string(mode),
						Oversub: mult, Threads: threads,
						ReadFraction: frac, Runs: runs,
					}
					var sink hostLocks
					cfg := harness.Config{
						Impl:         hostImpl(kind, mode, &sink),
						Threads:      threads,
						ReadFraction: frac,
						OpsPerThread: ops,
						Runs:         runs,
						Seed:         seed,
					}
					s.Throughput = harness.Run(cfg).Throughput
					lat := harness.RunLatency(cfg)
					s.P99ReadNs = lat.Read.P99.Nanoseconds()
					s.P99WriteNs = lat.Write.P99.Nanoseconds()
					var writes uint64
					s.Counters, writes = sink.sum()
					s.Metrics = summarize(s.Counters, writes)
					if mode == ollock.WaitSpin {
						spinTP = s.Throughput
					}
					s.BaseThroughput = spinTP
					if spinTP > 0 {
						s.Speedup = s.Throughput / spinTP
					}
					out = append(out, s)
					fmt.Fprintf(os.Stderr, "%-11s wait=%-8s over=%-3dx t=%-4d read%%=%-5.1f %.3e acq/s (%.2fx vs spin, p99 r=%dus w=%dus)\n",
						s.Lock, s.WaitPolicy, mult, threads, frac*100, s.Throughput, s.Speedup,
						s.P99ReadNs/1000, s.P99WriteNs/1000)
				}
			}
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
