package main

import (
	"encoding/json"
	"os"
	"testing"

	"ollock/internal/jsonschema"
)

// TestCheckedInJSONMatchesSchema pins the checked-in BENCH_bravo.json
// to the checked-in schema, so regenerating the artifact with a changed
// field set (or editing the schema without regenerating) fails
// `go test ./...` — the same check CI applies to a freshly generated
// file via cmd/benchcheck.
func TestCheckedInJSONMatchesSchema(t *testing.T) {
	rawSchema, err := os.ReadFile("../../BENCH_bravo.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var schema jsonschema.Schema
	if err := json.Unmarshal(rawSchema, &schema); err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile("../../BENCH_bravo.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonschema.ValidateBytes(&schema, doc); err != nil {
		t.Fatal(err)
	}
}

// TestSeriesMarshalMatchesSchema validates a Series marshalled from the
// Go struct itself, catching a schema/struct drift even when
// BENCH_bravo.json is stale.
func TestSeriesMarshalMatchesSchema(t *testing.T) {
	rawSchema, err := os.ReadFile("../../BENCH_bravo.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var schema jsonschema.Schema
	if err := json.Unmarshal(rawSchema, &schema); err != nil {
		t.Fatal(err)
	}
	doc := Output{
		Tool: "benchbravo", Machine: "sim-T5440", Ops: 1, Seed: 1,
		Series: []Series{{
			Env: "sim", Lock: "bravo-goll", Base: "goll",
			Indicator: "csnzi", WaitPolicy: "spin",
			Threads: 1, ReadFraction: 1, Runs: 1,
			Counters: map[string]uint64{"csnzi.arrive.root": 1},
		}, {
			Env: "host", Lock: "goll", Base: "goll",
			Indicator: "csnzi", WaitPolicy: "adaptive", Oversub: 16,
			Threads: 16, ReadFraction: 0.5, Runs: 3,
			P99ReadNs: 1, P99WriteNs: 1,
			Counters: map[string]uint64{},
		}},
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonschema.ValidateBytes(&schema, raw); err != nil {
		t.Fatal(err)
	}
}
